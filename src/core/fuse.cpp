#include "core/fuse.hpp"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#include "core/error.hpp"
#include "ops/dispatch.hpp"
#include "ops/eltwise.hpp"

namespace fastchg::replay::fuse {

// The interpreter routes its arithmetic micros through the dispatched op
// library (`ew::` below).  A local variable in run_span is named `ops`, so
// the library namespace is reached through this alias only.
namespace ew = ::fastchg::ops::eltwise;

namespace {

bool env_fuse_default() {
  const char* v = std::getenv("FASTCHG_FUSE");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0);
}

std::atomic<bool>& fuse_flag() {
  static std::atomic<bool> on{env_fuse_default()};
  return on;
}

}  // namespace

bool fuse_enabled() { return fuse_flag().load(std::memory_order_relaxed); }

void set_fuse_enabled(bool on) {
  fuse_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Descriptor builders

StepDesc ew_unary(EOp op, index_t n, float s0, float s1) {
  StepDesc d;
  d.kind = StepDesc::Kind::kEltwise;
  d.ew.op = op;
  d.ew.s0 = s0;
  d.ew.s1 = s1;
  d.ew.a = Addr::kElem;
  d.ew.n = n;
  return d;
}

StepDesc ew_binary(EOp op, Addr a, Addr b, index_t n, index_t cols) {
  StepDesc d;
  d.kind = StepDesc::Kind::kEltwise;
  d.ew.op = op;
  d.ew.a = a;
  d.ew.b = b;
  d.ew.n = n;
  d.ew.cols = cols;
  return d;
}

StepDesc ew_broadcast(Addr a, index_t n, index_t cols) {
  StepDesc d;
  d.kind = StepDesc::Kind::kEltwise;
  d.ew.op = EOp::kCopy;
  d.ew.a = a;
  d.ew.n = n;
  d.ew.cols = cols;
  return d;
}

StepDesc ew_accum(index_t n) {
  StepDesc d;
  d.kind = StepDesc::Kind::kEltwise;
  d.ew.op = EOp::kAccum;
  d.ew.a = Addr::kElem;
  d.ew.n = n;
  return d;
}

StepDesc gather_desc(std::shared_ptr<const std::vector<index_t>> idx,
                     index_t src_rows, index_t w) {
  StepDesc d;
  d.kind = StepDesc::Kind::kGather;
  d.index.idx = std::move(idx);
  d.index.rows = src_rows;
  d.index.w = w;
  return d;
}

StepDesc scatter_desc(std::shared_ptr<const std::vector<index_t>> idx,
                      index_t dst_rows, index_t w) {
  StepDesc d;
  d.kind = StepDesc::Kind::kScatter;
  d.index.idx = std::move(idx);
  d.index.rows = dst_rows;
  d.index.w = w;
  return d;
}

StepDesc reduce_desc(EOp op, index_t n, index_t cols) {
  StepDesc d;
  d.kind = StepDesc::Kind::kReduce;
  d.ew.op = op;
  d.ew.n = n;
  d.ew.cols = cols;
  return d;
}

// ---------------------------------------------------------------------------
// Per-element evaluator: each case is byte-for-byte the eager lambda from
// autograd/ops.cpp.  Differential tests (test_fuse.cpp) pin this.

float eval_ew(EOp op, float a, float b, float s0, float s1) {
  switch (op) {
    case EOp::kCopy:
      return a;
    case EOp::kAdd:
      return a + b;
    case EOp::kSub:
      return a - b;
    case EOp::kMul:
      return a * b;
    case EOp::kDiv:
      return a / b;
    case EOp::kAddS:
      return a + s0;
    case EOp::kMulS:
      return a * s0;
    case EOp::kPowS:
      return std::pow(a, s0);
    case EOp::kNeg:
      return -a;
    case EOp::kExp:
      return std::exp(a);
    case EOp::kLog:
      return std::log(a);
    case EOp::kSqrt:
      return std::sqrt(a);
    case EOp::kSin:
      return std::sin(a);
    case EOp::kCos:
      return std::cos(a);
    case EOp::kAcos:
      return std::acos(a);
    case EOp::kTanh:
      return std::tanh(a);
    case EOp::kSigmoid:
      return 1.0f / (1.0f + std::exp(-a));
    case EOp::kSilu:
      return a / (1.0f + std::exp(-a));
    case EOp::kAbs:
      return std::fabs(a);
    case EOp::kSign:
      return a > 0.0f ? 1.0f : (a < 0.0f ? -1.0f : 0.0f);
    case EOp::kRecip:
      return 1.0f / a;
    case EOp::kSquare:
      return a * a;
    case EOp::kClamp:
      return a < s0 ? s0 : (a > s1 ? s1 : a);
    case EOp::kClampMask:
      return (a >= s0 && a <= s1) ? 1.0f : 0.0f;
    case EOp::kAccum:
    case EOp::kSumAll:
    case EOp::kSumDim0:
    case EOp::kSumDim1:
      break;  // store/reduce micro-ops; handled by the span runner
  }
  FASTCHG_CHECK(false, "fuse: eval_ew on non-value op");
}

// ---------------------------------------------------------------------------
// Span analysis (the legality checker)

namespace {

/// One micro-op of a compiled span.  Operands read either a span register
/// (per-element value of an earlier micro) or an external slot through an
/// addressing mode; stores go to slab/baked slots.
struct Micro {
  EOp op = EOp::kCopy;
  float s0 = 0.0f, s1 = 0.0f;
  int areg = -1, breg = -1;
  int aslot = -1, bslot = -1;
  Addr aaddr = Addr::kNone, baddr = Addr::kNone;
  bool gather_load = false;  ///< a = src[idx[r]*w + c]
  int reg = -1;              ///< register written (value-producing micros)
  int store = -1;            ///< slot written (or -1)
  // 0 = no store, 1 = elementwise store, 2 = accumulate (+=),
  // 3 = scatter-add, 4 = reduction
  std::uint8_t skind = 0;
  std::shared_ptr<const std::vector<index_t>> idx;  ///< gather/scatter rows
  index_t w = 1;
};

struct Kern {
  index_t n = 0;
  index_t cols = 0;  ///< 0 = flat iteration
  std::vector<Micro> ops;
  std::vector<std::pair<int, std::size_t>> zeros;  ///< memset before the loop
  bool sum_all_tail = false;                       ///< final scalar store
};

/// Incremental state while growing a candidate span.
struct SpanState {
  index_t n = 0;
  index_t cols = 0;  ///< merged geometry constraint (0 = unconstrained)
  int counted = 0;
  std::unordered_map<int, int> reg_of;      ///< slot -> producing micro
  std::unordered_map<int, bool> elem_read;  ///< slot -> all reads kElem
  // slot -> write kind: 1 elementwise (store/accum/reduce), 3 scatter
  std::unordered_map<int, std::uint8_t> writes;
  std::vector<Micro> micros;
  bool terminated = false;
};

bool merge_cols(SpanState& st, index_t cols) {
  if (cols <= 0) return true;
  if (st.cols == 0) {
    if (st.n % cols != 0) return false;
    st.cols = cols;
    return true;
  }
  return st.cols == cols;
}

/// Register an external read of `slot` with addressing `ad`.  Fails when
/// the slot is already written in-span by anything but an elementwise
/// store read back elementwise.
bool note_ext_read(SpanState& st, int slot, Addr ad) {
  auto w = st.writes.find(slot);
  if (w != st.writes.end()) {
    if (w->second != 1 || ad != Addr::kElem) return false;
  }
  auto it = st.elem_read.find(slot);
  const bool elem = ad == Addr::kElem;
  if (it == st.elem_read.end()) {
    st.elem_read.emplace(slot, elem);
  } else {
    it->second = it->second && elem;
  }
  return true;
}

/// Register an in-span write of `slot` (`kind` 1 elementwise, 3 scatter).
/// Fails on hazards with earlier reads/writes of the same slot.
bool note_write(SpanState& st, int slot, std::uint8_t kind, bool allow_rmw) {
  auto r = st.elem_read.find(slot);
  if (r != st.elem_read.end() && (kind != 1 || !r->second)) return false;
  auto w = st.writes.find(slot);
  if (w != st.writes.end()) {
    // Multiple elementwise writers (repeated grad accumulation into one
    // accumulator) preserve per-element order; anything else is a hazard.
    if (!(allow_rmw && w->second == 1 && kind == 1)) return false;
    return true;
  }
  st.writes.emplace(slot, kind);
  return true;
}

/// Resolve an operand (register ref when the slot was produced in-span,
/// external slot read otherwise).  In-span refs must be elementwise.
bool resolve_operand(SpanState& st, int slot, Addr ad, int& reg_out,
                     int& slot_out) {
  auto it = st.reg_of.find(slot);
  if (it != st.reg_of.end()) {
    if (ad != Addr::kElem) return false;
    reg_out = it->second;
    slot_out = -1;
    return true;
  }
  if (!note_ext_read(st, slot, ad)) return false;
  reg_out = -1;
  slot_out = slot;
  return true;
}

/// Try to admit step `s` into the span.  Returns false (state possibly
/// half-advanced -- callers only use the state of *successful* spans, a
/// failed admit discards it) when the step would make the span illegal.
bool admit(SpanState& st, const TapeStep& s,
           const std::vector<TapeSlot>& slots) {
  if (static_cast<int>(st.micros.size()) >= kMaxSpanOps) return false;
  if (st.terminated) return false;
  const StepDesc& d = s.desc;
  Micro m;
  switch (d.kind) {
    case StepDesc::Kind::kOpaque:
      return false;

    case StepDesc::Kind::kEltwise: {
      if (d.ew.n <= 0) return false;
      if (st.micros.empty()) st.n = d.ew.n;
      if (d.ew.n != st.n) return false;
      if (!merge_cols(st, d.ew.cols)) return false;
      m.op = d.ew.op;
      m.s0 = d.ew.s0;
      m.s1 = d.ew.s1;
      if (d.ew.op == EOp::kAccum) {
        // ins = {dst, src}, outs = {dst}: dst += src elementwise.
        if (s.ins.size() != 2 || s.outs.size() != 1) return false;
        const int dst = s.outs[0];
        if (!resolve_operand(st, s.ins[1], Addr::kElem, m.areg, m.aslot))
          return false;
        m.aaddr = Addr::kElem;
        if (!note_ext_read(st, dst, Addr::kElem)) return false;
        if (!note_write(st, dst, 1, /*allow_rmw=*/true)) return false;
        m.store = dst;
        m.skind = 2;
      } else {
        if (s.ins.empty() || s.outs.size() != 1) return false;
        if (d.ew.a == Addr::kNone) return false;
        if (!resolve_operand(st, s.ins[0], d.ew.a, m.areg, m.aslot))
          return false;
        m.aaddr = d.ew.a;
        if (d.ew.b != Addr::kNone) {
          if (s.ins.size() != 2) return false;
          if (!resolve_operand(st, s.ins[1], d.ew.b, m.breg, m.bslot))
            return false;
          m.baddr = d.ew.b;
        }
        const int out = s.outs[0];
        if (!slots[static_cast<std::size_t>(out)].planned) return false;
        if (!note_write(st, out, 1, /*allow_rmw=*/false)) return false;
        m.reg = static_cast<int>(st.micros.size());
        st.reg_of.emplace(out, m.reg);
      }
      break;
    }

    case StepDesc::Kind::kGather: {
      if (s.ins.size() != 1 || s.outs.size() != 1 || !d.index.idx)
        return false;
      const int src = s.ins[0];
      const int out = s.outs[0];
      if (st.reg_of.count(src)) return false;  // source must be external
      const index_t k = static_cast<index_t>(d.index.idx->size());
      const index_t n = k * d.index.w;
      if (st.micros.empty()) st.n = n;
      if (n != st.n) return false;
      if (!merge_cols(st, d.index.w > 1 ? d.index.w : 1)) return false;
      // Arbitrary-row read: poisons elementwise-only status for hazards.
      if (st.writes.count(src)) return false;
      auto it = st.elem_read.find(src);
      if (it == st.elem_read.end()) {
        st.elem_read.emplace(src, false);
      } else {
        it->second = false;
      }
      if (!slots[static_cast<std::size_t>(out)].planned) return false;
      if (!note_write(st, out, 1, /*allow_rmw=*/false)) return false;
      m.gather_load = true;
      m.aslot = src;
      m.idx = d.index.idx;
      m.w = d.index.w;
      m.reg = static_cast<int>(st.micros.size());
      st.reg_of.emplace(out, m.reg);
      break;
    }

    case StepDesc::Kind::kScatter: {
      if (s.ins.size() != 1 || s.outs.size() != 1 || !d.index.idx)
        return false;
      if (st.micros.empty()) return false;  // only as an epilogue
      const int src = s.ins[0];
      const int out = s.outs[0];
      const index_t k = static_cast<index_t>(d.index.idx->size());
      if (k * d.index.w != st.n) return false;
      if (!merge_cols(st, d.index.w > 1 ? d.index.w : 1)) return false;
      if (!resolve_operand(st, src, Addr::kElem, m.areg, m.aslot))
        return false;
      m.aaddr = Addr::kElem;
      if (st.elem_read.count(out)) return false;
      if (!note_write(st, out, 3, /*allow_rmw=*/false)) return false;
      m.store = out;
      m.skind = 3;
      m.idx = d.index.idx;
      m.w = d.index.w;
      st.terminated = true;
      break;
    }

    case StepDesc::Kind::kReduce: {
      if (s.ins.size() != 1 || s.outs.size() != 1) return false;
      if (st.micros.empty()) return false;  // only as an epilogue
      if (d.ew.n != st.n) return false;
      if (d.ew.op == EOp::kSumDim0 || d.ew.op == EOp::kSumDim1) {
        if (!merge_cols(st, d.ew.cols)) return false;
      }
      if (!resolve_operand(st, s.ins[0], Addr::kElem, m.areg, m.aslot))
        return false;
      m.aaddr = Addr::kElem;
      const int out = s.outs[0];
      if (st.elem_read.count(out) || st.writes.count(out)) return false;
      st.writes.emplace(out, 3);  // non-elementwise write pattern
      m.op = d.ew.op;
      m.store = out;
      m.skind = 4;
      st.terminated = true;
      break;
    }
  }
  if (s.counted) ++st.counted;
  st.micros.push_back(std::move(m));
  return true;
}

/// Grow the longest legal span starting at `begin`.  Returns its state and
/// sets `end` one past the last admitted step; a span shorter than two
/// steps is reported as empty (end == begin).
SpanState grow_span(const std::vector<TapeStep>& steps,
                    const std::vector<TapeSlot>& slots, int begin, int& end) {
  SpanState st;
  int j = begin;
  const int limit = static_cast<int>(steps.size());
  while (j < limit) {
    SpanState trial = st;  // admit() may half-advance on failure
    if (!admit(trial, steps[static_cast<std::size_t>(j)], slots)) break;
    st = std::move(trial);
    ++j;
    if (st.terminated) break;
  }
  if (j - begin < 2) {
    end = begin;
    return SpanState{};
  }
  end = j;
  return st;
}

}  // namespace

std::vector<Span> find_spans(const std::vector<TapeStep>& steps,
                             const std::vector<TapeSlot>& slots) {
  std::vector<Span> spans;
  int i = 0;
  const int limit = static_cast<int>(steps.size());
  while (i < limit) {
    int end = i;
    const SpanState st = grow_span(steps, slots, i, end);
    if (end > i) {
      spans.push_back(Span{i, end, st.counted});
      i = end;
    } else {
      ++i;
    }
  }
  return spans;
}

// ---------------------------------------------------------------------------
// Span compilation and execution

namespace {

/// Block width of the vectorized span interpreter.  Spans execute in
/// row-aligned chunks of at most kBlock elements: short rows are batched
/// RR = kBlock/C whole rows to a chunk (feature rows of width 16..64 are
/// the common case -- per-row chunks would leave every op loop too short
/// to amortize the micro dispatch), long rows split at column boundaries.
/// Within a chunk every operand collapses to a contiguous pointer (kElem,
/// in-span registers), a broadcast tile (kRow/kCol across batched rows),
/// or one scalar, so each micro runs as a tight per-op loop the compiler
/// can vectorize -- the op switch sits outside the element loop.
/// Elementwise micros are pure per element, so interchanging the
/// micro/element loops at chunk granularity cannot change any value;
/// reductions and scatters still visit elements in exactly the eager
/// order (chunks advance r-major, rows inside a chunk run in order).
constexpr index_t kBlock = 256;

// Column sub-chunk boundaries must land on vector-width multiples: every
// non-final sub-chunk of a split row is exactly kBlock long, so forcing
// kBlock to a kVecWidth multiple keeps c0 vector-aligned for all of them
// and only the final sub-chunk carries a scalar tail.  An AVX2 row then
// never straddles a register-file chunk mid-vector.
static_assert(kBlock % ::fastchg::ops::kVecWidth == 0,
              "span block must be a vector-width multiple");

/// Resolve one operand of `m` for the chunk of RR rows starting at row
/// r0, flat offset i0, column offset c0 (nonzero only when RR == 1 and
/// the row is split), L elements total.  Returns L contiguous values;
/// kRow/kCol broadcasts stage through `tmp`.
inline const float* chunk_operand(const Micro& m, bool b, float* const* S,
                                  const float* const* regptr, float* tmp,
                                  index_t r0, index_t c0, index_t i0,
                                  index_t L, index_t C, index_t RR) {
  const int reg = b ? m.breg : m.areg;
  if (reg >= 0) return regptr[reg];
  const float* p = S[b ? m.bslot : m.aslot];
  switch (b ? m.baddr : m.aaddr) {
    case Addr::kElem:
      return p + i0;
    case Addr::kRow:
      if (RR == 1) return p + c0;  // single (possibly split) row
      for (index_t rr = 0; rr < RR; ++rr) {
        std::memcpy(tmp + rr * C, p, static_cast<std::size_t>(C) * 4);
      }
      return tmp;
    case Addr::kScalar: {
      const float v = p[0];
      for (index_t j = 0; j < L; ++j) tmp[j] = v;
      return tmp;
    }
    case Addr::kCol: {
      if (RR == 1) {
        const float v = p[r0];
        for (index_t j = 0; j < L; ++j) tmp[j] = v;
        return tmp;
      }
      for (index_t rr = 0; rr < RR; ++rr) {
        const float v = p[r0 + rr];
        for (index_t j = 0; j < C; ++j) tmp[rr * C + j] = v;
      }
      return tmp;
    }
    case Addr::kNone:
      break;
  }
  return nullptr;
}

void run_span(const Kern& K, float* const* S) {
  for (const auto& [slot, bytes] : K.zeros) {
    std::memset(S[slot], 0, bytes);
  }
  // Geometry: row length C (flat spans run as one row), rows R.  Row/col
  // operands only occur when a cols constraint was merged, so the flat
  // C = n case never sees kRow/kCol addressing.
  const index_t C = K.cols > 1 ? K.cols : K.n;
  const index_t R = C > 0 ? K.n / C : 0;
  const bool colchunk = C > kBlock;  // rows split at column boundaries
  float regs[kMaxSpanOps][kBlock];
  // Where each micro's chunk values live: escaping values are computed
  // straight into their slab slot (no copy-out pass), eliminated ones into
  // the stack register file; consumers read through this table either way.
  const float* regptr[kMaxSpanOps];
  float ta[kBlock], tb[kBlock];
  double acc = 0.0;
  const Micro* ops = K.ops.data();
  const std::size_t nops = K.ops.size();
  for (index_t i0 = 0; i0 < K.n;) {
    const index_t r0 = i0 / C;
    const index_t c0 = i0 - r0 * C;
    const index_t RR =
        colchunk ? 1
                 : (kBlock / C < R - r0 ? kBlock / C : R - r0);
    // Split rows advance in kBlock columns (a kVecWidth multiple by the
    // static_assert above), rounded down so only the final sub-chunk has a
    // non-multiple length.
    const index_t L =
        colchunk
            ? (C - c0 <= kBlock
                   ? C - c0
                   : (kBlock / ::fastchg::ops::kVecWidth) *
                         ::fastchg::ops::kVecWidth)
            : RR * C;
    {
      for (std::size_t k = 0; k < nops; ++k) {
        const Micro& m = ops[k];
        if (m.gather_load) {
          const float* src = S[m.aslot];
          if (m.w > 1) {
            // Wide gather (cols == w): each source row segment is
            // contiguous.  Single-row chunks alias the source in place --
            // no copy unless the output escapes; batched rows gather into
            // the register tile (or straight into the slab slot).
            if (RR == 1) {
              const float* sp =
                  src + (*m.idx)[static_cast<std::size_t>(r0)] * m.w + c0;
              if (m.skind == 1) {
                float* o = S[m.store] + i0;
                for (index_t j = 0; j < L; ++j) o[j] = sp[j];
                regptr[m.reg] = o;
              } else {
                regptr[m.reg] = sp;
              }
            } else {
              float* o = m.skind == 1 ? S[m.store] + i0 : regs[m.reg];
              for (index_t rr = 0; rr < RR; ++rr) {
                const float* sp =
                    src +
                    (*m.idx)[static_cast<std::size_t>(r0 + rr)] * m.w;
                std::memcpy(o + rr * C, sp,
                            static_cast<std::size_t>(C) * 4);
              }
              regptr[m.reg] = o;
            }
          } else {
            // Scalar gather (w == 1): element index == row index.
            float* o = m.skind == 1 ? S[m.store] + i0 : regs[m.reg];
            const index_t* ix = m.idx->data() + i0;
            for (index_t j = 0; j < L; ++j) o[j] = src[ix[j]];
            regptr[m.reg] = o;
          }
          continue;
        }
        switch (m.skind) {
          case 0:
          case 1: {
            float* o = m.skind == 1 ? S[m.store] + i0 : regs[m.reg];
            regptr[m.reg] = o;
            // Chunk-constant operands (kScalar always; kCol only in
            // single-row chunks) feed the four arithmetic ops and copy
            // directly, skipping the ta/tb broadcast staging pass.  The
            // per-element float expressions are unchanged.
            const bool asc =
                m.areg < 0 &&
                (m.aaddr == Addr::kScalar ||
                 (m.aaddr == Addr::kCol && RR == 1));
            const bool bsc =
                m.breg < 0 &&
                (m.baddr == Addr::kScalar ||
                 (m.baddr == Addr::kCol && RR == 1));
            if (bsc && !asc &&
                (m.op == EOp::kAdd || m.op == EOp::kSub ||
                 m.op == EOp::kMul || m.op == EOp::kDiv)) {
              const float vb =
                  S[m.bslot][m.baddr == Addr::kScalar ? 0 : r0];
              const float* pa2 = chunk_operand(m, false, S, regptr, ta, r0,
                                               c0, i0, L, C, RR);
              switch (m.op) {
                case EOp::kAdd:
                  ew::add_s(L, pa2, vb, o);
                  break;
                case EOp::kSub:
                  ew::sub_s(L, pa2, vb, o);
                  break;
                case EOp::kMul:
                  ew::mul_s(L, pa2, vb, o);
                  break;
                default:
                  ew::div_s(L, pa2, vb, o);
                  break;
              }
              break;
            }
            // Row/col-broadcast operands in multi-row chunks: per-row
            // loops straight on the source row, skipping the tile staging
            // pass through ta/tb.  Element expressions are unchanged --
            // only the iteration is regrouped row by row, in order.
            if (RR > 1 &&
                (m.op == EOp::kAdd || m.op == EOp::kSub ||
                 m.op == EOp::kMul || m.op == EOp::kDiv)) {
              const bool abc = m.areg < 0 && (m.aaddr == Addr::kRow ||
                                              m.aaddr == Addr::kCol);
              const bool bbc = m.breg < 0 && (m.baddr == Addr::kRow ||
                                              m.baddr == Addr::kCol);
              if (bbc && !abc && !asc) {
                const float* pa = chunk_operand(m, false, S, regptr, ta, r0,
                                                c0, i0, L, C, RR);
                const float* q = S[m.bslot];
                const bool row = m.baddr == Addr::kRow;
                for (index_t rr = 0; rr < RR; ++rr) {
                  const float* s = pa + rr * C;
                  float* d = o + rr * C;
                  if (row) {
                    switch (m.op) {
                      case EOp::kAdd:
                        ew::add(C, s, q, d);
                        break;
                      case EOp::kSub:
                        ew::sub(C, s, q, d);
                        break;
                      case EOp::kMul:
                        ew::mul(C, s, q, d);
                        break;
                      default:
                        ew::div(C, s, q, d);
                        break;
                    }
                  } else {
                    const float v = q[r0 + rr];
                    switch (m.op) {
                      case EOp::kAdd:
                        ew::add_s(C, s, v, d);
                        break;
                      case EOp::kSub:
                        ew::sub_s(C, s, v, d);
                        break;
                      case EOp::kMul:
                        ew::mul_s(C, s, v, d);
                        break;
                      default:
                        ew::div_s(C, s, v, d);
                        break;
                    }
                  }
                }
                break;
              }
              if (abc && !bbc && !bsc &&
                  (m.breg >= 0 || m.baddr == Addr::kElem)) {
                const float* pb = chunk_operand(m, true, S, regptr, tb, r0,
                                                c0, i0, L, C, RR);
                const float* q = S[m.aslot];
                const bool row = m.aaddr == Addr::kRow;
                for (index_t rr = 0; rr < RR; ++rr) {
                  const float* s = pb + rr * C;
                  float* d = o + rr * C;
                  if (row) {
                    switch (m.op) {
                      case EOp::kAdd:
                        ew::add(C, q, s, d);
                        break;
                      case EOp::kSub:
                        ew::sub(C, q, s, d);
                        break;
                      case EOp::kMul:
                        ew::mul(C, q, s, d);
                        break;
                      default:
                        ew::div(C, q, s, d);
                        break;
                    }
                  } else {
                    const float v = q[r0 + rr];
                    switch (m.op) {
                      case EOp::kAdd:
                        ew::add_s(C, s, v, d);
                        break;
                      case EOp::kSub:
                        ew::rsub_s(C, s, v, d);
                        break;
                      case EOp::kMul:
                        ew::mul_s(C, s, v, d);
                        break;
                      default:
                        ew::rdiv_s(C, s, v, d);
                        break;
                    }
                  }
                }
                break;
              }
            }
            if (RR > 1 && m.op == EOp::kCopy && m.areg < 0 &&
                m.aaddr == Addr::kRow) {
              // Row broadcast materialization: straight per-row copies.
              const float* q = S[m.aslot];
              for (index_t rr = 0; rr < RR; ++rr) {
                std::memcpy(o + rr * C, q,
                            static_cast<std::size_t>(C) * 4);
              }
              break;
            }
            const float* pa =
                asc ? nullptr
                    : chunk_operand(m, false, S, regptr, ta, r0, c0, i0, L,
                                    C, RR);
            if (asc && !bsc) {
              const float va =
                  S[m.aslot][m.aaddr == Addr::kScalar ? 0 : r0];
              if (m.op == EOp::kCopy) {
                for (index_t j = 0; j < L; ++j) o[j] = va;
                break;
              }
              if (m.op == EOp::kAdd || m.op == EOp::kSub ||
                  m.op == EOp::kMul || m.op == EOp::kDiv) {
                const float* pb2 = chunk_operand(m, true, S, regptr, tb, r0,
                                                 c0, i0, L, C, RR);
                switch (m.op) {
                  case EOp::kAdd:
                    ew::add_s(L, pb2, va, o);
                    break;
                  case EOp::kSub:
                    ew::rsub_s(L, pb2, va, o);
                    break;
                  case EOp::kMul:
                    ew::mul_s(L, pb2, va, o);
                    break;
                  default:
                    ew::rdiv_s(L, pb2, va, o);
                    break;
                }
                break;
              }
            }
            const float* pb =
                m.breg >= 0 || m.baddr != Addr::kNone
                    ? chunk_operand(m, true, S, regptr, tb, r0, c0, i0, L,
                                    C, RR)
                    : nullptr;
            // Arithmetic micros dispatch through ew:: (per-element IEEE
            // ops: bit-exact at every tier); transcendental micros stay
            // byte-for-byte the eager lambda from autograd/ops.cpp
            // (eval_ew pins the correspondence) at all tiers.
            switch (m.op) {
              case EOp::kCopy:
                for (index_t j = 0; j < L; ++j) o[j] = pa[j];
                break;
              case EOp::kAdd:
                ew::add(L, pa, pb, o);
                break;
              case EOp::kSub:
                ew::sub(L, pa, pb, o);
                break;
              case EOp::kMul:
                ew::mul(L, pa, pb, o);
                break;
              case EOp::kDiv:
                ew::div(L, pa, pb, o);
                break;
              case EOp::kAddS:
                ew::add_s(L, pa, m.s0, o);
                break;
              case EOp::kMulS:
                ew::mul_s(L, pa, m.s0, o);
                break;
              case EOp::kPowS:
                for (index_t j = 0; j < L; ++j) o[j] = std::pow(pa[j], m.s0);
                break;
              case EOp::kNeg:
                ew::neg(L, pa, o);
                break;
              case EOp::kExp:
                for (index_t j = 0; j < L; ++j) o[j] = std::exp(pa[j]);
                break;
              case EOp::kLog:
                for (index_t j = 0; j < L; ++j) o[j] = std::log(pa[j]);
                break;
              case EOp::kSqrt:
                ew::sqrt(L, pa, o);
                break;
              case EOp::kSin:
                for (index_t j = 0; j < L; ++j) o[j] = std::sin(pa[j]);
                break;
              case EOp::kCos:
                for (index_t j = 0; j < L; ++j) o[j] = std::cos(pa[j]);
                break;
              case EOp::kAcos:
                for (index_t j = 0; j < L; ++j) o[j] = std::acos(pa[j]);
                break;
              case EOp::kTanh:
                for (index_t j = 0; j < L; ++j) o[j] = std::tanh(pa[j]);
                break;
              case EOp::kSigmoid:
                for (index_t j = 0; j < L; ++j) {
                  o[j] = 1.0f / (1.0f + std::exp(-pa[j]));
                }
                break;
              case EOp::kSilu:
                for (index_t j = 0; j < L; ++j) {
                  o[j] = pa[j] / (1.0f + std::exp(-pa[j]));
                }
                break;
              case EOp::kAbs:
                ew::abs(L, pa, o);
                break;
              case EOp::kSign:
                ew::sign(L, pa, o);
                break;
              case EOp::kRecip:
                ew::recip(L, pa, o);
                break;
              case EOp::kSquare:
                ew::square(L, pa, o);
                break;
              case EOp::kClamp:
                ew::clamp(L, pa, m.s0, m.s1, o);
                break;
              case EOp::kClampMask:
                ew::clamp_mask(L, pa, m.s0, m.s1, o);
                break;
              case EOp::kAccum:
              case EOp::kSumAll:
              case EOp::kSumDim0:
              case EOp::kSumDim1:
                FASTCHG_CHECK(false, "fuse: store op in value position");
            }
            break;
          }
          case 2: {  // dst += src, element order identical to eager
            const float* pa = chunk_operand(m, false, S, regptr, ta, r0, c0,
                                            i0, L, C, RR);
            ew::acc(L, pa, S[m.store] + i0);
            break;
          }
          case 3: {  // scatter-add, r-major order identical to eager
            const float* pa = chunk_operand(m, false, S, regptr, ta, r0, c0,
                                            i0, L, C, RR);
            if (m.w > 1) {
              if (RR == 1) {
                ew::acc(L, pa,
                        S[m.store] +
                            (*m.idx)[static_cast<std::size_t>(r0)] * m.w +
                            c0);
              } else {
                for (index_t rr = 0; rr < RR; ++rr) {
                  float* d =
                      S[m.store] +
                      (*m.idx)[static_cast<std::size_t>(r0 + rr)] * m.w;
                  ew::acc(C, pa + rr * C, d);
                }
              }
            } else {
              float* d = S[m.store];
              const index_t* ix = m.idx->data() + i0;
              for (index_t j = 0; j < L; ++j) d[ix[j]] += pa[j];
            }
            break;
          }
          case 4: {
            const float* pa = chunk_operand(m, false, S, regptr, ta, r0, c0,
                                            i0, L, C, RR);
            if (m.op == EOp::kSumDim0) {
              // out[c] += v in r-major order: float accumulation, exactly
              // the eager sequence of += per column.
              if (RR == 1) {
                ew::acc(L, pa, S[m.store] + c0);
              } else {
                float* d = S[m.store];
                for (index_t rr = 0; rr < RR; ++rr) {
                  ew::acc(C, pa + rr * C, d);
                }
              }
            } else if (m.op == EOp::kSumDim1 && RR > 1) {
              // Whole rows per chunk: one double accumulator per row, in
              // eager element order.
              for (index_t rr = 0; rr < RR; ++rr) {
                const float* s = pa + rr * C;
                double a = 0.0;
                for (index_t j = 0; j < C; ++j) {
                  a += static_cast<double>(s[j]);
                }
                S[m.store][r0 + rr] = static_cast<float>(a);
              }
            } else {
              // Flat sum / split-row per-row double accumulator, carried
              // across column sub-chunks in eager element order.
              for (index_t j = 0; j < L; ++j) {
                acc += static_cast<double>(pa[j]);
              }
              if (m.op == EOp::kSumDim1 && c0 + L == C) {
                S[m.store][r0] = static_cast<float>(acc);
                acc = 0.0;
              }
            }
            break;
          }
        }
      }
    }
    i0 += L;
  }
  if (K.sum_all_tail) {
    S[K.ops.back().store][0] = static_cast<float>(acc);
  }
}

}  // namespace

FuseStats fuse_tape(std::vector<TapeStep>& steps,
                    const std::vector<TapeSlot>& slots) {
  FuseStats stats;
  const int limit = static_cast<int>(steps.size());

  // Global reader index: which steps read each slot (for the
  // single-consumer / escape analysis that decides elimination).
  std::vector<std::vector<int>> readers(slots.size());
  for (int s = 0; s < limit; ++s) {
    for (int in : steps[static_cast<std::size_t>(s)].ins) {
      readers[static_cast<std::size_t>(in)].push_back(s);
    }
  }

  std::vector<TapeStep> out;
  out.reserve(steps.size());
  int i = 0;
  while (i < limit) {
    int end = i;
    SpanState st = grow_span(steps, slots, i, end);
    if (end == i) {
      out.push_back(std::move(steps[static_cast<std::size_t>(i)]));
      ++i;
      continue;
    }

    auto kern = std::make_shared<Kern>();
    kern->n = st.n;
    kern->cols = st.cols;

    std::vector<int> fused_ins;
    std::vector<int> fused_outs;
    auto add_unique = [](std::vector<int>& v, int slot) {
      for (int s : v) {
        if (s == slot) return;
      }
      v.push_back(slot);
    };

    // Decide materialization per value-producing micro: an in-span value
    // escapes when its slot is a tap/bound reservation or has a reader
    // outside [i, end).
    for (int s = i; s < end; ++s) {
      const TapeStep& step = steps[static_cast<std::size_t>(s)];
      Micro& m = st.micros[static_cast<std::size_t>(s - i)];
      if (m.reg >= 0) {
        const int slot = step.outs[0];
        const TapeSlot& meta = slots[static_cast<std::size_t>(slot)];
        bool escapes = meta.reserved || !meta.planned;
        for (int rd : readers[static_cast<std::size_t>(slot)]) {
          if (rd < i || rd >= end) {
            escapes = true;
            break;
          }
        }
        if (escapes) {
          m.store = slot;
          m.skind = 1;
          add_unique(fused_outs, slot);
        } else {
          ++stats.slots_eliminated;
        }
      } else if (m.skind == 2) {  // accumulate: dst is read and written
        add_unique(fused_ins, m.store);
        add_unique(fused_outs, m.store);
      } else if (m.skind == 3) {  // scatter: zero-filled destination
        const TapeSlot& meta = slots[static_cast<std::size_t>(m.store)];
        kern->zeros.emplace_back(
            m.store, static_cast<std::size_t>(meta.numel) * sizeof(float));
        add_unique(fused_outs, m.store);
      } else if (m.skind == 4) {
        if (m.op == EOp::kSumDim0) {
          const TapeSlot& meta = slots[static_cast<std::size_t>(m.store)];
          kern->zeros.emplace_back(
              m.store, static_cast<std::size_t>(meta.numel) * sizeof(float));
        }
        if (m.op == EOp::kSumAll) kern->sum_all_tail = true;
        add_unique(fused_outs, m.store);
      }
      // External operand reads become fused-step inputs.
      if (!m.gather_load && m.areg < 0 && m.aslot >= 0) {
        add_unique(fused_ins, m.aslot);
      }
      if (m.gather_load) add_unique(fused_ins, m.aslot);
      if (m.breg < 0 && m.bslot >= 0) add_unique(fused_ins, m.bslot);
    }

    kern->ops = std::move(st.micros);

    TapeStep fused;
    fused.op = "fused";
    fused.counted = st.counted > 0;
    fused.ins = std::move(fused_ins);
    fused.outs = std::move(fused_outs);
    fused.fn = [kern](float* const* S) { run_span(*kern, S); };
    out.push_back(std::move(fused));

    ++stats.spans;
    stats.kernels_removed +=
        static_cast<std::size_t>(st.counted - (st.counted > 0 ? 1 : 0));
    i = end;
  }

  steps = std::move(out);
  return stats;
}

}  // namespace fastchg::replay::fuse
