// Static memory planning for recorded-step replay (core/replay.hpp).
//
// A captured step program knows every intermediate buffer's size and
// lifetime interval [def, last] in recorded-op order.  From those intervals
// this planner assigns each buffer an exact byte offset inside one
// contiguous slab, so a replayed step performs zero allocations: every
// intermediate lives at a fixed address and buffers whose lifetimes do not
// overlap share bytes.
//
// The planner is first-fit over buffers ordered by decreasing size (ties
// broken by definition order): for each buffer it collects the address
// ranges of already-placed buffers whose lifetimes intersect and slots the
// buffer into the lowest aligned gap.  It also reports the max-live lower
// bound (the largest sum of concurrently-live bytes at any op index); no
// plan for the recorded order can use fewer bytes than that.  On the
// nested / disjoint lifetime patterns an autograd step produces the two
// coincide, which tests assert on hand-built cases; plan_valid() is the
// brute-force checker that any plan must pass regardless.
#pragma once

#include <cstddef>
#include <vector>

namespace fastchg::replay {

/// One intermediate buffer: payload size plus the recorded-op interval
/// during which it must hold its value.  `def` is the op index that writes
/// it, `last` the final op index that reads it (inclusive; >= def).
struct BufferLife {
  std::size_t bytes = 0;
  int def = 0;
  int last = 0;
  std::size_t offset = 0;  ///< assigned by plan_memory()
};

struct MemPlan {
  /// 64-byte offset alignment: keeps every planned buffer on a cache-line
  /// boundary (and ready for the SIMD kernel tier).
  static constexpr std::size_t kAlign = 64;

  std::vector<BufferLife> buffers;    ///< input order preserved
  std::size_t slab_bytes = 0;         ///< extent the plan occupies
  std::size_t lower_bound_bytes = 0;  ///< max concurrently-live bytes
};

/// Size a buffer occupies in the slab (payload rounded up to kAlign).
std::size_t aligned_bytes(std::size_t bytes);

/// Assign offsets; `buffers` keeps its order (buffer i in == buffer i out).
MemPlan plan_memory(std::vector<BufferLife> buffers);

/// Brute-force validity check: every pair of buffers with intersecting
/// lifetimes occupies disjoint address ranges, every buffer fits inside
/// slab_bytes, and slab_bytes is exactly the furthest byte used.
bool plan_valid(const MemPlan& plan);

}  // namespace fastchg::replay
