// Error handling: all invariant violations throw fastchg::Error with a
// formatted message and source location.  Following the C++ Core Guidelines
// (E.2, I.10) we use exceptions for errors that cannot be handled locally and
// never error codes.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fastchg {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_error(const char* file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace fastchg

/// Check a runtime invariant; on failure throw fastchg::Error carrying the
/// streamed message, e.g. FASTCHG_CHECK(a == b, "shape mismatch " << a).
#define FASTCHG_CHECK(cond, msg)                             \
  do {                                                       \
    if (!(cond)) {                                           \
      std::ostringstream fastchg_os_;                        \
      fastchg_os_ << "check failed (" #cond "): " << msg;    \
      ::fastchg::detail::throw_error(__FILE__, __LINE__,     \
                                     fastchg_os_.str());     \
    }                                                        \
  } while (0)
