#include "core/memplan.hpp"

#include <algorithm>
#include <numeric>

namespace fastchg::replay {

namespace {

bool lifetimes_intersect(const BufferLife& a, const BufferLife& b) {
  return a.def <= b.last && b.def <= a.last;
}

}  // namespace

std::size_t aligned_bytes(std::size_t bytes) {
  const std::size_t a = MemPlan::kAlign;
  if (bytes == 0) bytes = 1;
  return (bytes + a - 1) / a * a;
}

MemPlan plan_memory(std::vector<BufferLife> buffers) {
  MemPlan plan;

  // Lower bound: at every op index, the bytes of all live buffers must
  // coexist, so the worst op index bounds any plan for this order.
  int horizon = 0;
  for (const BufferLife& b : buffers) horizon = std::max(horizon, b.last);
  for (int t = 0; t <= horizon; ++t) {
    std::size_t live = 0;
    for (const BufferLife& b : buffers) {
      if (b.def <= t && t <= b.last) live += aligned_bytes(b.bytes);
    }
    plan.lower_bound_bytes = std::max(plan.lower_bound_bytes, live);
  }

  // First-fit decreasing: big buffers claim low offsets first, small ones
  // fill the gaps between lifetimes.
  std::vector<std::size_t> order(buffers.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    const std::size_t bi = aligned_bytes(buffers[i].bytes);
    const std::size_t bj = aligned_bytes(buffers[j].bytes);
    if (bi != bj) return bi > bj;
    if (buffers[i].def != buffers[j].def) {
      return buffers[i].def < buffers[j].def;
    }
    return i < j;
  });

  std::vector<std::size_t> placed;  // indices already assigned
  placed.reserve(buffers.size());
  std::vector<std::pair<std::size_t, std::size_t>> busy;  // [start, end)
  for (std::size_t idx : order) {
    BufferLife& b = buffers[idx];
    const std::size_t need = aligned_bytes(b.bytes);
    busy.clear();
    for (std::size_t p : placed) {
      if (lifetimes_intersect(b, buffers[p])) {
        busy.emplace_back(buffers[p].offset,
                          buffers[p].offset + aligned_bytes(buffers[p].bytes));
      }
    }
    std::sort(busy.begin(), busy.end());
    std::size_t at = 0;
    for (const auto& [lo, hi] : busy) {
      if (at + need <= lo) break;  // fits in the gap before this range
      at = std::max(at, hi);
    }
    // Page-congruence avoidance: a buffer placed 4 KiB-aliased with a
    // co-live buffer serializes kernels that stream over both on false
    // store-to-load dependencies (observed as a 6x slowdown of an
    // unchanged loop when a repack landed its operands on aliased
    // offsets).  Co-live is the proxy for co-accessed: nudge the offset
    // by whole cache lines, a bounded number of times, keeping the
    // first-fit position when no clean slot is nearby.
    const auto aliases = [&](std::size_t cand) {
      for (std::size_t p : placed) {
        if (lifetimes_intersect(b, buffers[p]) &&
            buffers[p].offset % 4096 == cand % 4096) {
          return true;
        }
      }
      return false;
    };
    const auto fits = [&](std::size_t cand) {
      for (const auto& [lo, hi] : busy) {
        if (cand < hi && lo < cand + need) return false;
      }
      return true;
    };
    if (aliases(at)) {
      for (std::size_t k = 1; k <= 8; ++k) {
        const std::size_t cand = at + k * MemPlan::kAlign;
        if (fits(cand) && !aliases(cand)) {
          at = cand;
          break;
        }
      }
    }
    b.offset = at;
    placed.push_back(idx);
    plan.slab_bytes = std::max(plan.slab_bytes, at + need);
  }

  plan.buffers = std::move(buffers);
  return plan;
}

bool plan_valid(const MemPlan& plan) {
  std::size_t extent = 0;
  for (const BufferLife& b : plan.buffers) {
    const std::size_t end = b.offset + aligned_bytes(b.bytes);
    if (b.offset % MemPlan::kAlign != 0) return false;
    if (end > plan.slab_bytes) return false;
    if (b.last < b.def) return false;
    extent = std::max(extent, end);
  }
  if (!plan.buffers.empty() && extent != plan.slab_bytes) return false;
  for (std::size_t i = 0; i < plan.buffers.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.buffers.size(); ++j) {
      const BufferLife& a = plan.buffers[i];
      const BufferLife& b = plan.buffers[j];
      if (!lifetimes_intersect(a, b)) continue;
      const std::size_t a_end = a.offset + aligned_bytes(a.bytes);
      const std::size_t b_end = b.offset + aligned_bytes(b.bytes);
      if (a.offset < b_end && b.offset < a_end) return false;
    }
  }
  return plan.slab_bytes >= plan.lower_bound_bytes;
}

}  // namespace fastchg::replay
