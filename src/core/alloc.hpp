// Pluggable tensor-memory allocators: tracked system malloc, a size-bucketed
// recycling pool, and RAII arena scopes (docs/memory.md).
//
// Motivation (paper Fig. 8c): the trainer, every virtual device in
// DataParallelTrainer, and the serve micro-batcher replay the same graph
// shapes thousands of times, yet the seed implementation paid one heap
// allocation (plus a shared_ptr control block) per op output, every step.
// PyTorch-style caching allocators fix this by recycling freed blocks
// instead of returning them to the OS; this header is that layer.
//
// Design:
//   * `Allocator` is the byte-level interface Tensor storage (and the
//     autograd Node headers, via `StlAdapter` + allocate_shared) draw from.
//   * `SystemAllocator` is the seed behavior: every allocate() is a real
//     heap allocation, counted in perf::counters().system_allocs -- the
//     "mallocs per step" metric the perf gate watches.
//   * `PoolAllocator` rounds requests up to power-of-two buckets and keeps
//     freed blocks on per-bucket free lists; a steady-state step whose
//     shapes repeat is served entirely from the lists (pool_hits), never
//     touching the system allocator.  Slabs persist across steps.
//   * Every block remembers its source allocator via a shared_ptr
//     (`AllocatorPtr`), so (i) a block freed on another thread returns to
//     the pool that owns it -- never cross-pollinating a foreign pool --
//     and (ii) a pool cannot die before its last outstanding block,
//     whatever the destruction order of trainers, engines, and models.
//   * `ArenaScope` installs an allocator as the calling thread's current
//     one for its lifetime (nestable), emits a "mem.arena" trace span, and
//     marks a pool epoch on exit: the step-scoped lifetime the trainer,
//     the per-device loops, and the serve workers wrap around hot regions.
//
// Pooling is on by default; FASTCHG_ALLOC=system (or set_pooling_enabled)
// restores the seed allocator globally -- bit-exactness between the two
// modes is asserted by tests and bench_memory_arena, since the allocator
// changes where bytes live, never their values.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "perf/trace.hpp"

namespace fastchg::alloc {

/// Every allocator in this header returns 64-byte-aligned blocks *by
/// construction*: SystemAllocator uses aligned operator new, and pool
/// buckets are power-of-two multiples of kMinBlock (= 64) carved from
/// upstream, so recycling preserves the alignment.  The SIMD op library
/// (src/ops/) treats this as a performance contract -- a full cache line /
/// AVX-512-ready vector per arena block -- not a correctness requirement
/// (kernels use unaligned loads); debug builds assert it on every pool
/// return path.
inline constexpr std::size_t kArenaAlign = 64;

/// Byte-level allocation interface.  `deallocate` must receive the same
/// `bytes` the matching `allocate` was called with (the pool re-derives the
/// bucket from it).  Implementations are thread-safe.
class Allocator {
 public:
  virtual ~Allocator() = default;
  virtual void* allocate(std::size_t bytes) = 0;
  virtual void deallocate(void* p, std::size_t bytes) = 0;
  virtual const char* name() const = 0;
};

/// Shared handle: blocks hold one, so an allocator outlives every block it
/// issued regardless of owner destruction order.
using AllocatorPtr = std::shared_ptr<Allocator>;

/// The seed path: one tracked heap allocation per request.  Counts every
/// allocate() into perf::counters().system_allocs (the mallocs_per_step
/// numerator); also the upstream the pools draw slabs from.
class SystemAllocator final : public Allocator {
 public:
  void* allocate(std::size_t bytes) override;
  void deallocate(void* p, std::size_t bytes) override;
  const char* name() const override { return "system"; }
};

/// Process-wide SystemAllocator singleton.
AllocatorPtr system_allocator();

/// Point-in-time accounting of one pool (all byte figures are in rounded
/// bucket sizes, i.e. actual slab bytes, not logical tensor bytes).
struct PoolStats {
  std::uint64_t hits = 0;         ///< allocations served from a free list
  std::uint64_t misses = 0;       ///< allocations that went upstream
  std::uint64_t live_blocks = 0;  ///< blocks currently handed out
  std::uint64_t live_bytes = 0;
  std::uint64_t free_blocks = 0;  ///< blocks parked on the free lists
  std::uint64_t free_bytes = 0;
  std::uint64_t slab_bytes = 0;   ///< live + free: bytes held from upstream
  std::uint64_t high_water = 0;   ///< peak slab_bytes over the pool's life
  /// Sum over buckets of the peak live bytes per bucket since the last
  /// trim_watermark() call -- the "recent demand" the watermark-trim policy
  /// keeps slabs for.  Tracked per bucket (not as one total) so a trim
  /// never releases blocks a steady-state step re-faults: each bucket keeps
  /// what *it* recently needed, and only buckets idle over the whole window
  /// are returned upstream.  (Slab bytes would be useless here: slabs only
  /// shrink at trims, so their window peak can never fall below the current
  /// holding.)
  std::uint64_t window_high_water = 0;
  std::uint64_t trimmed_bytes = 0;  ///< slab bytes returned upstream by trims
  std::uint64_t epochs = 0;       ///< ArenaScope exits observed
};

/// Size-bucketed recycling allocator.  allocate() rounds to the next power
/// of two (>= kMinBlock) and pops the bucket's free list when possible;
/// deallocate() pushes the block back instead of freeing it.  All methods
/// are mutex-guarded: blocks may be freed from any thread (the prefetch
/// thread collates batches the main thread releases; serve workers tear
/// down graphs whose leaves the caller allocated).
class PoolAllocator final : public Allocator {
 public:
  static constexpr std::size_t kMinBlock = 64;
  /// Requests above this bypass the buckets entirely (rare one-off giants
  /// would otherwise pin a power-of-two slab forever).
  static constexpr std::size_t kMaxPooled = std::size_t{1} << 30;

  explicit PoolAllocator(AllocatorPtr upstream = system_allocator());
  /// Returns every free-listed slab upstream.  No live blocks can remain:
  /// each holds an AllocatorPtr keeping the pool alive until it is freed.
  ~PoolAllocator() override;

  void* allocate(std::size_t bytes) override;
  void deallocate(void* p, std::size_t bytes) override;
  const char* name() const override { return "pool"; }

  /// Return all free-listed blocks upstream (live blocks are untouched).
  void trim();
  /// Partial trim for long-lived servers: release free-listed blocks
  /// (largest buckets first) until slab_bytes <= target_bytes or no free
  /// blocks remain.  Returns the bytes released.
  std::uint64_t trim_to(std::size_t target_bytes);
  /// Watermark policy (docs/memory.md): trim free blocks down to the
  /// per-bucket live high water observed since the previous trim_watermark
  /// call, stopping once slab_bytes <= total demand + `slack_bytes`, then
  /// rebase the observation window.  Releasing per bucket (largest first)
  /// means a steady-state workload whose shapes repeat never re-faults
  /// after a trim -- only buckets idle across the window go upstream.  A
  /// shard calling this between ticks keeps slabs sized to recent demand
  /// instead of the lifetime peak.  Returns the bytes released (also
  /// counted into perf pool_trimmed_bytes).
  std::uint64_t trim_watermark(std::size_t slack_bytes);
  /// Mark the end of a step-scoped epoch (ArenaScope calls this on exit).
  void end_epoch();
  PoolStats stats() const;

  /// Bucket size a request of `bytes` occupies (exposed for tests).
  static std::size_t bucket_size(std::size_t bytes);

 private:
  AllocatorPtr upstream_;
  mutable std::mutex mu_;
  std::array<std::vector<void*>, 64> free_;  ///< indexed by log2(bucket)
  /// Per-bucket live bytes and their window peak (demand watermark inputs;
  /// pass-through blocks above kMaxPooled are excluded).
  std::array<std::uint64_t, 64> bucket_live_{};
  std::array<std::uint64_t, 64> bucket_window_{};
  PoolStats st_;
};

/// Global pooling switch, initialized from FASTCHG_ALLOC ("system" / "off" /
/// "0" disable pooling; anything else, or unset, enables it).  Read by
/// current_allocator() and ArenaScope at call time: existing blocks always
/// return to the allocator that issued them regardless of the switch.
bool pooling_enabled();
void set_pooling_enabled(bool on);

/// The calling thread's default PoolAllocator (created on first use; kept
/// alive by its blocks even after the thread exits).  Per-thread pools mean
/// serve workers and the prefetch thread recycle independently without
/// lock contention on a shared free list.
AllocatorPtr thread_pool();

/// Allocator new tensor storage on this thread draws from right now: the
/// innermost ArenaScope's allocator, else the thread pool (pooling on),
/// else the system allocator.
AllocatorPtr current_allocator();

/// RAII step scope: installs `a` (default: the thread pool) as the calling
/// thread's current allocator, records a "mem.arena" trace span for the
/// scope's extent, and marks a pool epoch on exit.  Nestable; inert when
/// pooling is disabled.  Blocks may outlive the scope -- the scope bounds
/// *where recycling happens*, not block lifetime.
class ArenaScope {
 public:
  ArenaScope();
  explicit ArenaScope(AllocatorPtr a);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  perf::TraceSpan span_;
  AllocatorPtr prev_;
  AllocatorPtr installed_;
  bool active_ = false;
};

/// Minimal STL allocator over the current Allocator, so shared control
/// blocks (tensor Storage headers, autograd Nodes) ride the pool too via
/// std::allocate_shared -- in steady state an op output costs zero system
/// allocations: data block and header are both free-list hits.
template <class T>
struct StlAdapter {
  using value_type = T;

  explicit StlAdapter(AllocatorPtr alloc) : a(std::move(alloc)) {}
  template <class U>
  StlAdapter(const StlAdapter<U>& o) : a(o.a) {}  // NOLINT(runtime/explicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(a->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) { a->deallocate(p, n * sizeof(T)); }

  template <class U>
  bool operator==(const StlAdapter<U>& o) const { return a == o.a; }
  template <class U>
  bool operator!=(const StlAdapter<U>& o) const { return !(*this == o); }

  AllocatorPtr a;
};

}  // namespace fastchg::alloc
