#include "core/parallel_for.hpp"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "core/error.hpp"

namespace fastchg {

namespace {

int initial_thread_count() {
  if (const char* env = std::getenv("FASTCHG_NUM_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Minimal fork-join pool: the caller becomes worker 0; helpers pick up the
/// remaining chunks of the current parallel_for and go back to sleep.
class Pool {
 public:
  explicit Pool(int workers) : target_workers_(workers) { spawn(); }

  ~Pool() { shutdown(); }

  int workers() const { return target_workers_; }

  void resize(int workers) {
    FASTCHG_CHECK(workers >= 1, "set_num_threads: " << workers);
    shutdown();
    target_workers_ = workers;
    spawn();
  }

  void run(index_t begin, index_t end, index_t chunk,
           const std::function<void(index_t, index_t)>& fn) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      begin_ = begin;
      end_ = end;
      chunk_ = chunk;
      fn_ = &fn;
      next_ = begin;
      busy_ = static_cast<int>(threads_.size());
      ++generation_;
    }
    cv_.notify_all();
    work();  // caller participates
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return busy_ == 0; });
    fn_ = nullptr;
  }

 private:
  void spawn() {
    stop_ = false;
    const int helpers = target_workers_ - 1;
    for (int i = 0; i < helpers; ++i) {
      threads_.emplace_back([this] { helper_loop(); });
    }
  }

  void shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  void helper_loop() {
    std::uint64_t seen = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
      }
      work();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --busy_;
      }
      done_cv_.notify_all();
    }
  }

  void work() {
    while (true) {
      index_t lo;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (next_ >= end_ || fn_ == nullptr) return;
        lo = next_;
        next_ += chunk_;
      }
      const index_t hi = std::min(lo + chunk_, end_);
      (*fn_)(lo, hi);
    }
  }

  int target_workers_;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_, done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;
  int busy_ = 0;
  index_t begin_ = 0, end_ = 0, chunk_ = 1, next_ = 0;
  const std::function<void(index_t, index_t)>* fn_ = nullptr;
};

Pool& pool() {
  static Pool p(initial_thread_count());
  return p;
}

/// Depth of pool-scheduled chunks on this thread.  A nested parallel_for
/// (a tensor kernel inside a micro-batch that is itself a pool chunk) must
/// not re-enter Pool::run -- the pool's dispatch state is per-call, so a
/// re-entrant run() from a worker would corrupt it or deadlock.  Nested
/// calls run inline instead.
thread_local int t_pool_depth = 0;

struct PoolDepthGuard {
  PoolDepthGuard() { ++t_pool_depth; }
  ~PoolDepthGuard() { --t_pool_depth; }
};

}  // namespace

int num_threads() { return pool().workers(); }

void set_num_threads(int n) { pool().resize(n); }

bool in_parallel_region() { return t_pool_depth > 0; }

void parallel_for(index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& fn) {
  if (end <= begin) return;
  const index_t n = end - begin;
  const int workers = pool().workers();
  if (t_pool_depth > 0 || workers == 1 || n < grain) {
    fn(begin, end);
    return;
  }
  // ~4 chunks per worker for dynamic balance, but never below the grain.
  index_t chunk = std::max<index_t>(grain, n / (4 * workers) + 1);
  const std::function<void(index_t, index_t)> guarded =
      [&fn](index_t lo, index_t hi) {
        PoolDepthGuard depth;
        fn(lo, hi);
      };
  pool().run(begin, end, chunk, guarded);
}

}  // namespace fastchg
