#include "core/rng.hpp"

#include <algorithm>
#include <sstream>

#include "core/error.hpp"

namespace fastchg {

std::string Rng::state() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::set_state(const std::string& s) {
  std::istringstream is(s);
  is >> engine_;
  FASTCHG_CHECK(!is.fail(), "Rng::set_state: malformed engine state");
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

index_t Rng::randint(index_t lo, index_t hi) {
  std::uniform_int_distribution<index_t> d(lo, hi);
  return d(engine_);
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  std::discrete_distribution<std::size_t> d(weights.begin(), weights.end());
  return d(engine_);
}

void Rng::fill_uniform(Tensor& t, float lo, float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  float* p = t.data();
  for (index_t i = 0; i < t.numel(); ++i) p[i] = d(engine_);
}

void Rng::fill_normal(Tensor& t, float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  float* p = t.data();
  for (index_t i = 0; i < t.numel(); ++i) p[i] = d(engine_);
}

}  // namespace fastchg
