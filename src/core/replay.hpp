// Recorded-step replay: capture the op sequence once, then execute a flat
// pre-planned program with no autograd-graph rebuild, no shared_ptr
// control-block churn, and no per-op dispatch.
//
// The paper's Fig. 8 shows the trained step settling into a constant
// 947-kernel schedule; pooling (PR 5) already exploits that regularity at
// the allocator.  This layer exploits it at the op stream itself, the way a
// CUDA graph (or tt-metal's program cache) does:
//
//   capture   The integration site runs one ordinary eager step inside a
//             RecorderScope.  Every kernel in ops.cpp (and the fused
//             kernels in basis/nn) additionally pushes a re-runnable
//             closure addressing its buffers by *slot id*, and the
//             recorder tracks each intermediate's lifetime interval.
//   plan      finish() feeds the lifetimes to core/memplan.hpp, which
//             assigns every intermediate an exact offset inside one
//             contiguous slab (non-overlapping lifetimes share bytes).
//   replay    Program::run() binds the new batch's input pointers into the
//             slot table and executes the closure list front to back.  No
//             Nodes, no backward traversal, no Tensor handles, no
//             dispatch: just the same arithmetic loops over planned
//             addresses, bit-identical to eager by construction (the
//             closures reuse the very loop bodies the eager kernels run).
//
// Slot classes:
//   bound     batch tensors registered via bind_input() before capture and
//             re-pointed at the new batch every replay (positions, images,
//             lattices, labels).
//   baked     everything else the step reads but no recorded op writes:
//             parameters, gradient accumulators, topology-derived
//             constants.  The recorder pins the capture-time tensor, so
//             the storage stays alive and *current values* are always
//             visible through the stable pointer (Adam updates in place).
//             expect_stable() registers pointers to re-validate at bind
//             time, so a storage replacement (checkpoint restore,
//             set_atom_ref) falls back to eager instead of reading stale
//             memory.
//   planned   op outputs, placed in the slab by the memory plan.
//
// Cache keying: a program is only valid for batches with identical
// topology and composition, because index vectors (gather/scatter),
// species, atom counts and volumes are baked into the closures.  The
// KeyBuilder below hashes exactly that material (data::replay_key);
// anything float-valued that flows through bound slots (positions, images,
// labels) is deliberately *not* key material.  A key miss runs eager; the
// second sighting of a key captures (so gradient accumulators are warm and
// the tape records `grad += g`, which composes with gradient
// accumulation); later sightings replay.  Any bind/validation mismatch
// falls back to eager and invalidates the program for re-capture.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/fuse.hpp"
#include "core/memplan.hpp"
#include "core/tensor.hpp"
#include "ops/dispatch.hpp"

namespace fastchg::replay {

/// Global gate: FASTCHG_REPLAY=off|0 disables capture and replay at every
/// integration site (they run pure eager and touch no replay counters).
/// Defaults to on; set_replay_enabled overrides the environment (tests).
bool replay_enabled();
void set_replay_enabled(bool on);

/// FNV-1a accumulator for program cache keys.  Sites hash topology and
/// composition (see data::replay_key); bound float payloads stay out.
struct KeyBuilder {
  std::uint64_t h = 1469598103934665603ull;

  void mix_bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void mix(std::uint64_t v) { mix_bytes(&v, sizeof(v)); }
  void mix_indices(const std::vector<index_t>& v) {
    mix(static_cast<std::uint64_t>(v.size()));
    if (!v.empty()) mix_bytes(v.data(), v.size() * sizeof(index_t));
  }
  /// Defined-ness flag plus dims: rebindable tensors contribute their
  /// shape (a shape change must miss) but never their float contents.
  void mix_shape(const Tensor& t) {
    if (!t.defined()) {
      mix(0xdefu);
      return;
    }
    mix(static_cast<std::uint64_t>(t.dim()) + 1);
    for (index_t d = 0; d < t.dim(); ++d) {
      mix(static_cast<std::uint64_t>(t.size(d)));
    }
  }
};

/// A captured, planned, replayable step program.
class Program {
 public:
  using StepFn = std::function<void(float* const*)>;

  ~Program();
  Program(const Program&) = delete;
  Program& operator=(const Program&) = delete;

  /// Re-point bound slots at this batch's tensors and re-validate the
  /// stable pointers registered at capture.  `inputs` and `stable` must be
  /// built by the same helpers the capture used (same order).  Returns
  /// false on any mismatch (count, numel, or a replaced stable storage);
  /// the caller then runs eager and invalidates the cache entry.
  bool bind(const std::vector<Tensor>& inputs,
            const std::vector<Tensor>& stable);

  /// Execute the closure list.  Requires a successful bind() on this
  /// thread-exclusive program (ProgramCache leases enforce exclusivity).
  void run();

  /// Capture-order tap values (copies of the tapped slots after run()).
  std::size_t tap_count() const { return taps_.size(); }
  Tensor tap_value(std::size_t i) const;

  /// Structure fingerprint: hash over (op, counted, slots) of every step,
  /// seeded with the SIMD tier active at capture.  Two captures of the
  /// same seeded step under the same tier produce the same fingerprint.
  std::uint64_t fingerprint() const { return fingerprint_; }
  /// SIMD dispatch tier the tape was captured under.  bind() refuses a
  /// program whose tier differs from ops::active_tier(), so a mid-run
  /// FASTCHG_SIMD override can never mix tiers inside one tape: the caller
  /// falls back to eager and recaptures under the new tier.
  ops::Tier tier() const { return tier_; }
  std::size_t num_steps() const { return steps_.size(); }
  std::size_t plan_bytes() const { return plan_.slab_bytes; }
  const MemPlan& plan() const { return plan_; }

  /// Offline-fusion outcome for this program (core/fuse.hpp).  When the
  /// fusion stage is off (FASTCHG_FUSE=off) all four report the raw tape:
  /// zero spans, zero removed, counted == raw.
  std::size_t fused_spans() const { return fused_spans_; }
  std::size_t fused_kernels_removed() const { return fused_kernels_removed_; }
  std::size_t fused_slots_eliminated() const { return fused_slots_eliminated_; }
  /// Counted kernels on the tape before / after fusion.  Replay launch
  /// counters report `counted_kernels()` -- the measured fusion win is the
  /// gap to `raw_counted_kernels()` (what eager would have launched).
  std::uint64_t raw_counted_kernels() const { return raw_counted_; }
  std::uint64_t counted_kernels() const { return counted_; }

 private:
  friend class Recorder;
  friend class ProgramCache;
  Program() = default;

  struct Step {
    const char* op;
    StepFn fn;
  };

  std::vector<Step> steps_;
  std::vector<float*> slots_;
  std::vector<Tensor> baked_;              ///< pinned storages (slot order)
  std::vector<int> bound_slots_;           ///< slot id per bind_input (-1 if unused)
  std::vector<index_t> bound_numel_;
  std::vector<const float*> stable_ptrs_;  ///< expect_stable pointers
  std::vector<int> tap_slots_;
  std::vector<Shape> tap_shapes_;
  std::vector<Tensor> taps_;               ///< filled by run()
  std::vector<std::pair<const char*, std::uint64_t>> kernel_counts_;
  std::vector<std::pair<int, std::size_t>> planned_;  ///< (slot, offset)
  MemPlan plan_;
  Tensor slab_;
  std::uint64_t fingerprint_ = 0;
  ops::Tier tier_ = ops::Tier::kScalar;
  std::size_t fused_spans_ = 0;
  std::size_t fused_kernels_removed_ = 0;
  std::size_t fused_slots_eliminated_ = 0;
  std::uint64_t raw_counted_ = 0;
  std::uint64_t counted_ = 0;
  std::mutex run_mu_;  ///< slab exclusivity (leased via ProgramCache)
};

/// Records one eager step.  The site constructs a Recorder, registers the
/// bound inputs and stable pointers, runs the step inside a RecorderScope,
/// registers taps, and calls finish().  Kernels observe the active
/// recorder through Recorder::active() (thread-local; zero-cost when off).
class Recorder {
 public:
  using StepFn = Program::StepFn;

  /// Captures ops::active_tier() and mixes it into the fingerprint: tapes
  /// recorded under different SIMD tiers never share a fingerprint (or a
  /// cache entry that binds).
  Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// The recorder installed on this thread (nullptr almost always).
  static Recorder* active();

  // ---- site API ---------------------------------------------------------
  /// Register a rebindable input (call before the step, in the site's
  /// fixed order).  Undefined tensors are recorded as unused placeholders
  /// so capture and replay bind lists always align positionally.
  void bind_input(const Tensor& t);
  /// Register a pointer to re-validate at every bind (parameter values,
  /// gradient accumulators, the AtomRef table).
  void expect_stable(const Tensor& t);
  /// Register an output to copy out after every replay (call after the
  /// step, before finish()).
  void tap(const Tensor& t);
  /// Plan lifetimes, materialize the slab, and seal the program.
  std::shared_ptr<Program> finish();

  // ---- kernel API (ops.cpp, fused kernels, loss) ------------------------
  /// Slot of a tensor the next step reads (pins it; creates a baked slot
  /// for storage the recorder has not seen).
  int note_input(const Tensor& t);
  /// Slot for a freshly produced tensor (planned intermediate).
  int note_output(const Tensor& t);
  /// Append a step.  `ins`/`out` are the slots the closure reads/writes
  /// (lifetime + fingerprint metadata; `out` may appear in `ins` for
  /// read-modify-write steps).  `counted` steps contribute to the
  /// kernel-launch counters on replay exactly as their eager kernel did.
  /// `desc` is the step's semantic tag for the offline fusion stage;
  /// kernels that omit it record an opaque (never-fused) step.
  void push(const char* op, bool counted, const std::vector<int>& ins,
            int out, StepFn fn, fuse::StepDesc desc = fuse::StepDesc{});
  void push(const char* op, bool counted, std::initializer_list<int> ins,
            int out, StepFn fn, fuse::StepDesc desc = fuse::StepDesc{}) {
    push(op, counted, std::vector<int>(ins), out, std::move(fn),
         std::move(desc));
  }
  /// Leaf-gradient accumulation hook (ag::backward): dst += src.
  void note_accumulate(const Tensor& dst, const Tensor& src);

 private:
  friend class RecorderScope;

  struct SlotInfo {
    index_t numel = 0;
    bool planned = false;  ///< produced by a recorded step
  };

  int slot_for(const Tensor& t, bool as_output);

  std::unordered_map<const float*, int> by_ptr_;
  std::vector<SlotInfo> slots_;
  std::vector<Tensor> pinned_;  ///< one per slot, keeps storage alive
  /// Pre-plan tape: closures plus the dataflow/semantic metadata the
  /// fusion stage consumes.  Lifetimes are derived in finish(), after
  /// fusion has (possibly) rewritten the step list.
  std::vector<fuse::TapeStep> tape_;
  std::vector<int> bound_slots_;
  std::vector<index_t> bound_numel_;
  std::vector<const float*> stable_ptrs_;
  std::vector<int> tap_slots_;
  std::vector<Shape> tap_shapes_;
  std::uint64_t fingerprint_ = 1469598103934665603ull;
  ops::Tier tier_ = ops::Tier::kScalar;
  bool finished_ = false;
};

/// Installs a recorder as the thread's active recorder (RAII).
class RecorderScope {
 public:
  explicit RecorderScope(Recorder& r);
  ~RecorderScope();
  RecorderScope(const RecorderScope&) = delete;
  RecorderScope& operator=(const RecorderScope&) = delete;

 private:
  Recorder* prev_;
};

/// Per-site program cache with LRU eviction and warm-up sightings.
///
/// acquire() is the single decision point:
///   kReplay   a captured program exists and its run lock was acquired
///             (the Lease holds it); counted as replay_hits.
///   kCapture  second sighting of the key: run eager under a Recorder and
///             store() the result; counted as replay_misses.
///   kEager    first sighting, capture already in flight on another
///             thread, or the program is busy on another thread
///             (counted as replay_misses / replay_fallbacks).
/// Thread-safe; concurrent replay of the *same* program falls back to
/// eager rather than serializing serve workers behind one slab.
class ProgramCache {
 public:
  enum class Action { kEager, kCapture, kReplay };

  struct Lease {
    Action action = Action::kEager;
    std::shared_ptr<Program> program;
    std::unique_lock<std::mutex> lock;  ///< program run lock when kReplay
  };

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fallbacks = 0;
    std::uint64_t captures = 0;
    std::uint64_t evictions = 0;
    /// Fusion outcome aggregated over every program store()d into this
    /// cache (re-captures count again; eviction does not subtract).
    std::uint64_t fused_spans = 0;
    std::uint64_t fused_kernels_removed = 0;
  };

  explicit ProgramCache(std::size_t capacity = 8);

  Lease acquire(std::uint64_t key);
  /// Install a captured program (clears the key's capture-in-flight flag).
  void store(std::uint64_t key, std::shared_ptr<Program> program);
  /// Abandon a capture (non-finite step, exception): the key stays eager
  /// until a later sighting captures again.
  void abort_capture(std::uint64_t key);
  /// Drop a program whose bind/validation failed; counted as a fallback.
  /// The next sighting re-captures.
  void invalidate(std::uint64_t key);

  Stats stats() const;
  std::size_t size() const;       ///< cached programs (not sightings)
  std::size_t capacity() const { return capacity_; }
  /// Snapshot of every cached program (golden-tape tests inspect fused
  /// span/kernel counts without knowing the keys).
  std::vector<std::shared_ptr<Program>> programs() const;

 private:
  struct Entry {
    std::shared_ptr<Program> program;
    std::uint64_t sightings = 0;
    std::uint64_t last_used = 0;
    bool capturing = false;
  };

  void evict_locked();

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::size_t capacity_;
  std::uint64_t clock_ = 0;
  Stats stats_;
};

}  // namespace fastchg::replay
