// Kernel-level threading: a tiny persistent thread pool with an OpenMP-style
// parallel_for.  Heavy tensor kernels (matmul, large elementwise loops)
// split their row ranges across workers; on a single-core host (or with
// FASTCHG_NUM_THREADS=1) everything runs inline with zero overhead, keeping
// results bit-identical across thread counts (ranges are disjoint and no
// reductions cross partitions).
#pragma once

#include <functional>

#include "core/tensor.hpp"

namespace fastchg {

/// Current worker count (>= 1).  Initialized from FASTCHG_NUM_THREADS, else
/// std::thread::hardware_concurrency().
int num_threads();

/// Override the worker count (rebuilds the pool; not thread-safe with
/// concurrent parallel_for calls).
void set_num_threads(int n);

/// Invoke fn(begin_i, end_i) over a partition of [begin, end).  Ranges are
/// contiguous, disjoint, and cover the interval exactly.  Runs inline when
/// the range is shorter than `grain` or only one worker exists.
///
/// Nesting is safe: a parallel_for issued from inside a worker chunk (e.g. a
/// tensor kernel launched by a serve micro-batch running on the pool) runs
/// its whole range inline on that worker instead of re-entering the shared
/// pool.  Outer callers therefore own the parallelism; inner kernels
/// degrade to serial per worker, keeping results bit-identical.
void parallel_for(index_t begin, index_t end, index_t grain,
                  const std::function<void(index_t, index_t)>& fn);

/// True while the calling thread is executing inside a parallel_for chunk
/// scheduled on the pool (nested parallel_for calls run inline then).
bool in_parallel_region();

}  // namespace fastchg
