// Offline fusion over recorded-step tapes (core/replay.hpp).
//
// Replay (PR 8) hands every hot path a flat op program with exact buffer
// lifetimes.  This pass exploits that substrate the way "The Importance of
// Being Scalable" argues NNIP speed must be found -- fewer, denser kernels
// -- without touching a line of eager code: it walks the captured tape
// *offline* (between capture and the first replay), finds fusible runs, and
// rewrites each run into a single closure that streams intermediates
// through a stack register file instead of slab slots.  Buffers that only
// ever feed the next op in a run stop existing: they get no slab offset,
// so the static memory plan shrinks along with the kernel count.
//
// What fuses (a *span* is a maximal contiguous run of fusible steps):
//
//   elementwise chains   unary/binary arithmetic (add, mul, silu, ...) and
//                        broadcasts, in any DAG shape inside the run --
//                        each step's value lives in a register; an output
//                        some later op outside the run still reads is
//                        additionally stored to its slab slot.
//   gather prologues     index_select feeding the run: the fused loop
//                        reads src[idx[r]*w + c] directly instead of
//                        materializing the gathered copy.
//   scatter epilogues    index_add consuming the run's value: the fused
//                        loop accumulates rows into the destination in the
//                        same r-major order the eager kernel used.
//   reduction epilogues  sum_all / sum_dim consuming the run's value with
//                        the same accumulator type and traversal order as
//                        the eager loop (bit-exact by construction).
//   grad accumulation    `grad += g` steps become in-run `+=` stores.
//
// Legality (checked per span; anything else splits the run):
//   * every in-run value reference is elementwise (Addr::kElem) with the
//     run's element count -- a row/col/scalar read of an in-run value
//     would need the whole intermediate materialized first;
//   * row/col/gather/scatter geometry agrees on a single `cols`;
//   * an external slot is never both read and written inside one span
//     unless every read is elementwise and every write is elementwise
//     (scatter writes touch arbitrary rows, so a scatter target is never
//     readable in-span);
//   * tap slots and bound inputs are never eliminated, and only planned
//     slots (op outputs) can be; baked parameter/accumulator slots keep
//     their stable storage, so expect_stable() pins are never disturbed;
//   * spans are capped at kMaxSpanOps micro-ops (the register file is a
//     fixed stack array).
//
// Bit-exactness argument: all fused forms evaluate, per element, exactly
// the float expressions the eager kernels evaluate, in exactly the order
// the eager kernels visit elements (flat or r-major).  Elementwise ops are
// pure per-element, so interchanging the step loop and the element loop
// cannot change any result; reductions and scatters keep their eager
// accumulation order.  tests/test_fuse.cpp proves this differentially
// (fused vs unfused vs eager, max diff exactly 0.0) over random tapes and
// all three integration sites, and fuzzes this file's legality checker.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/tensor.hpp"

namespace fastchg::replay::fuse {

/// Global gate: FASTCHG_FUSE=off|0 disables the fusion stage (captured
/// programs keep their raw one-closure-per-kernel form).  Defaults to on;
/// set_fuse_enabled overrides the environment (tests).
bool fuse_enabled();
void set_fuse_enabled(bool on);

/// Fused spans hold per-element values in a fixed stack register file; a
/// longer run is split into multiple spans at this boundary.
constexpr int kMaxSpanOps = 32;

/// Elementwise micro-op vocabulary.  Every entry mirrors one eager lambda
/// in autograd/ops.cpp byte-for-byte (eval_ew below is the single shared
/// evaluator, so the differential tests pin the correspondence).
enum class EOp : std::uint8_t {
  kCopy,  ///< v = a (broadcast / materialize)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kAddS,   ///< v = a + s0
  kMulS,   ///< v = a * s0
  kPowS,   ///< v = pow(a, s0)
  kNeg,
  kExp,
  kLog,
  kSqrt,
  kSin,
  kCos,
  kAcos,
  kTanh,
  kSigmoid,
  kSilu,
  kAbs,
  kSign,
  kRecip,
  kSquare,
  kClamp,      ///< s0 = lo, s1 = hi
  kClampMask,  ///< (a in [s0, s1]) ? 1 : 0
  kAccum,      ///< dst += a (gradient accumulation; store-only)
  kSumAll,     ///< reduction: double accumulator over all elements
  kSumDim0,    ///< reduction: out[c] += v, float accumulation (eager order)
  kSumDim1,    ///< reduction: per-row double accumulator
};

/// How an operand is addressed relative to the output element (r, c, i):
/// full elementwise, one scalar, a row vector indexed by c, or a column
/// vector indexed by r.  Mirrors the broadcast patterns ops.cpp allows.
enum class Addr : std::uint8_t { kNone, kElem, kScalar, kRow, kCol };

struct EwDesc {
  EOp op = EOp::kCopy;
  float s0 = 0.0f;
  float s1 = 0.0f;
  Addr a = Addr::kNone;
  Addr b = Addr::kNone;
  index_t n = 0;     ///< output elements (reductions: input elements)
  index_t cols = 0;  ///< row length when any operand uses kRow/kCol
};

/// Gather (index_select0) / scatter (index_add0) geometry.
struct IndexDesc {
  std::shared_ptr<const std::vector<index_t>> idx;
  index_t rows = 0;  ///< gather: source rows; scatter: destination rows
  index_t w = 1;     ///< row width
};

/// Semantic tag a kernel attaches to its recorded step.  kOpaque steps
/// (matmul, the hand-fused basis/nn kernels, masks) are never fused and
/// act as span barriers.
struct StepDesc {
  enum class Kind : std::uint8_t {
    kOpaque,
    kEltwise,
    kGather,
    kScatter,
    kReduce,
  };
  Kind kind = Kind::kOpaque;
  EwDesc ew;
  IndexDesc index;
};

// Convenience builders for the recording kernels.
StepDesc ew_unary(EOp op, index_t n, float s0 = 0.0f, float s1 = 0.0f);
StepDesc ew_binary(EOp op, Addr a, Addr b, index_t n, index_t cols);
StepDesc ew_broadcast(Addr a, index_t n, index_t cols);
StepDesc ew_accum(index_t n);
StepDesc gather_desc(std::shared_ptr<const std::vector<index_t>> idx,
                     index_t src_rows, index_t w);
StepDesc scatter_desc(std::shared_ptr<const std::vector<index_t>> idx,
                      index_t dst_rows, index_t w);
StepDesc reduce_desc(EOp op, index_t n, index_t cols);

/// One recorded step in pre-plan form: the closure plus the dataflow and
/// semantic metadata the fusion pass needs.  `ins`/`outs` list every slot
/// the closure reads/writes (a slot may appear in both for
/// read-modify-write steps such as grad accumulation).
struct TapeStep {
  const char* op = "";
  bool counted = false;
  std::vector<int> ins;
  std::vector<int> outs;
  StepDesc desc;
  std::function<void(float* const*)> fn;
};

/// What the fusion pass may assume about a slot.  `planned` slots are op
/// outputs the memory planner would place in the slab (the only
/// candidates for elimination); `reserved` slots must stay materialized
/// whatever their readers (taps, bound inputs).
struct TapeSlot {
  index_t numel = 0;
  bool planned = false;
  bool reserved = false;
};

/// A legal fusible run [begin, end) over the tape, as found by the
/// legality checker.  Exposed separately from fuse_tape so tests can fuzz
/// span discovery on synthetic tapes without executing them.
struct Span {
  int begin = 0;
  int end = 0;
  int counted = 0;  ///< counted kernels the span covers
};

/// Find every legal fusible span (>= 2 steps each, non-overlapping, in
/// tape order).  Pure analysis: does not touch the closures.
std::vector<Span> find_spans(const std::vector<TapeStep>& steps,
                             const std::vector<TapeSlot>& slots);

struct FuseStats {
  std::size_t spans = 0;
  std::size_t kernels_removed = 0;   ///< counted kernels fused away
  std::size_t slots_eliminated = 0;  ///< intermediates with no slab slot
};

/// Rewrite `steps` in place: every legal span collapses into one fused
/// TapeStep ("fused", counted once) whose closure streams the run through
/// a register file; eliminated intermediates vanish from the tape (no
/// step writes them, so the caller's lifetime scan drops them from the
/// plan).  Returns what changed.
FuseStats fuse_tape(std::vector<TapeStep>& steps,
                    const std::vector<TapeSlot>& slots);

/// The shared per-element evaluator (also used by tests to pin the
/// fused/eager correspondence).  `b` is ignored for unary ops.
float eval_ew(EOp op, float a, float b, float s0, float s1);

}  // namespace fastchg::replay::fuse
