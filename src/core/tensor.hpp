// Dense row-major float32 tensor with shared, memory-tracked storage.
//
// Design notes:
//  * Always contiguous.  Views exist only through reshape() (which shares
//    storage); every other op produces a fresh tensor.  This keeps the
//    autograd layer simple and makes the memory tracker exact.
//  * float32 throughout: the paper trains CHGNet in single precision and
//    explicitly discusses why half precision is not usable for interatomic
//    potentials; double precision would distort the memory comparisons of
//    Fig. 8(c).
//  * Allocation and deallocation are reported to fastchg::perf so benches can
//    record live/peak bytes including autograd intermediates.  The tracker
//    always sees *logical* tensor bytes; which physical allocator backs the
//    storage (pooled or system, see core/alloc.hpp) never changes those
//    numbers.
//  * Storage is drawn from alloc::current_allocator() at creation time and
//    returned to the same allocator on release, so a tensor allocated inside
//    an ArenaScope recycles through that scope's pool even if it is freed
//    later, on another thread.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/alloc.hpp"
#include "core/error.hpp"

namespace fastchg {

using index_t = std::int64_t;
using Shape = std::vector<index_t>;

index_t numel_of(const Shape& shape);
std::string shape_str(const Shape& shape);
bool same_shape(const Shape& a, const Shape& b);

class Tensor {
 public:
  /// Empty 0-d tensor (numel() == 0, dim() == 0).
  Tensor() = default;

  /// Uninitialized tensor of the given shape.
  static Tensor empty(Shape shape);
  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  /// 0-d style scalar represented as shape {1}.
  static Tensor scalar(float value) { return full({1}, value); }
  static Tensor from_vector(const std::vector<float>& v, Shape shape);
  /// Zero-copy: adopts the vector's buffer as tensor storage (no element
  /// copy, no allocator round-trip).  The data/batch collate paths stage
  /// rows into a std::vector and hand the buffer over wholesale.
  static Tensor from_vector(std::vector<float>&& v, Shape shape);

  bool defined() const { return storage_ != nullptr; }
  const Shape& shape() const { return shape_; }
  index_t dim() const { return static_cast<index_t>(shape_.size()); }
  index_t size(index_t d) const;
  index_t numel() const { return numel_; }

  float* data();
  const float* data() const;
  float item() const;  ///< value of a 1-element tensor

  /// New tensor sharing storage with a different shape (numel must match).
  Tensor reshape(Shape shape) const;
  /// Deep copy.
  Tensor clone() const;

  /// Fill in place.
  void fill_(float value);
  /// this += other (same shape); used by the optimizer/allreduce hot paths.
  void add_(const Tensor& other, float alpha = 1.0f);
  void mul_(float s);

  /// Copy out to a std::vector (test convenience).
  std::vector<float> to_vector() const;

  /// True if storage is shared with `other`.
  bool shares_storage(const Tensor& other) const {
    return storage_ != nullptr && storage_ == other.storage_;
  }

  /// Allocator that issued this tensor's data block, or nullptr for an
  /// undefined tensor / a buffer adopted from a std::vector.  Test hook for
  /// pool-isolation assertions (e.g. every replica tensor in
  /// DataParallelTrainer must come from its own device pool).
  const alloc::Allocator* source_allocator() const;

 private:
  struct Storage;  // tracked allocation
  std::shared_ptr<Storage> storage_;
  Shape shape_;
  index_t numel_ = 0;
};

/// Total bytes a tensor of `n` floats occupies (tracker granularity).
inline std::uint64_t tensor_bytes(index_t n) {
  return static_cast<std::uint64_t>(n) * sizeof(float);
}

}  // namespace fastchg
