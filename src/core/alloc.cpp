#include "core/alloc.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <new>

#include "core/error.hpp"
#include "perf/counters.hpp"

namespace fastchg::alloc {

namespace {

// Innermost ArenaScope allocator for this thread; null means "no scope" and
// current_allocator() falls through to the thread pool / system allocator.
thread_local AllocatorPtr t_current;

}  // namespace

void* SystemAllocator::allocate(std::size_t bytes) {
  perf::track_system_alloc();
  // Aligned form: the arena contract (kArenaAlign, alloc.hpp) starts here;
  // pool buckets inherit it because they are carved from these blocks.
  return ::operator new(bytes, std::align_val_t{kArenaAlign});
}

void SystemAllocator::deallocate(void* p, std::size_t /*bytes*/) {
  ::operator delete(p, std::align_val_t{kArenaAlign});
}

namespace {
[[maybe_unused]] inline bool arena_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kArenaAlign == 0;
}
}  // namespace

AllocatorPtr system_allocator() {
  static AllocatorPtr a = std::make_shared<SystemAllocator>();
  return a;
}

std::size_t PoolAllocator::bucket_size(std::size_t bytes) {
  return std::bit_ceil(std::max(bytes, kMinBlock));
}

namespace {
int bucket_index(std::size_t rounded) {
  return std::countr_zero(rounded);
}
}  // namespace

PoolAllocator::PoolAllocator(AllocatorPtr upstream)
    : upstream_(std::move(upstream)) {
  FASTCHG_CHECK(upstream_ != nullptr, "PoolAllocator requires an upstream");
}

PoolAllocator::~PoolAllocator() {
  trim();
  // Live blocks keep the pool alive via their AllocatorPtr, so reaching the
  // destructor means every block issued has been returned.
  FASTCHG_CHECK(st_.live_blocks == 0,
                "PoolAllocator destroyed with live blocks");
}

void* PoolAllocator::allocate(std::size_t bytes) {
  if (bytes > kMaxPooled) {
    // Pass-through: counted as a miss, but never bucketed.
    perf::track_pool_miss();
    std::lock_guard<std::mutex> lock(mu_);
    ++st_.misses;
    ++st_.live_blocks;
    st_.live_bytes += bytes;
    void* p = upstream_->allocate(bytes);
    assert(arena_aligned(p));
    return p;
  }
  const std::size_t sz = bucket_size(bytes);
  const int bi = bucket_index(sz);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = free_[bi];
    if (!list.empty()) {
      void* p = list.back();
      list.pop_back();
      ++st_.hits;
      ++st_.live_blocks;
      st_.live_bytes += sz;
      --st_.free_blocks;
      st_.free_bytes -= sz;
      bucket_live_[bi] += sz;
      if (bucket_live_[bi] > bucket_window_[bi]) {
        bucket_window_[bi] = bucket_live_[bi];
      }
      perf::track_pool_hit();
      assert(arena_aligned(p));
      return p;
    }
  }
  // Miss: grow the slab set by one block of the rounded size.  The upstream
  // call happens outside mu_ so concurrent hits aren't serialized behind it.
  void* p = upstream_->allocate(sz);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++st_.misses;
    ++st_.live_blocks;
    st_.live_bytes += sz;
    st_.slab_bytes += sz;
    if (st_.slab_bytes > st_.high_water) st_.high_water = st_.slab_bytes;
    bucket_live_[bi] += sz;
    if (bucket_live_[bi] > bucket_window_[bi]) {
      bucket_window_[bi] = bucket_live_[bi];
    }
  }
  perf::track_pool_miss();
  perf::track_pool_slab(static_cast<std::int64_t>(sz));
  assert(arena_aligned(p));
  return p;
}

void PoolAllocator::deallocate(void* p, std::size_t bytes) {
  if (p == nullptr) return;
  if (bytes > kMaxPooled) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --st_.live_blocks;
      st_.live_bytes -= bytes;
    }
    upstream_->deallocate(p, bytes);
    return;
  }
  const std::size_t sz = bucket_size(bytes);
  const int bi = bucket_index(sz);
  std::lock_guard<std::mutex> lock(mu_);
  free_[bi].push_back(p);
  --st_.live_blocks;
  st_.live_bytes -= sz;
  ++st_.free_blocks;
  st_.free_bytes += sz;
  bucket_live_[bi] -= sz;
}

void PoolAllocator::trim() {
  // Collect under the lock, release upstream outside it.
  std::vector<std::pair<void*, std::size_t>> blocks;
  std::uint64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < free_.size(); ++i) {
      const std::size_t sz = std::size_t{1} << i;
      for (void* p : free_[i]) {
        blocks.emplace_back(p, sz);
        freed += sz;
      }
      free_[i].clear();
    }
    st_.free_blocks = 0;
    st_.free_bytes = 0;
    st_.slab_bytes -= freed;
    st_.trimmed_bytes += freed;
  }
  for (auto& [p, sz] : blocks) upstream_->deallocate(p, sz);
  if (freed > 0) {
    perf::track_pool_slab(-static_cast<std::int64_t>(freed));
    perf::track_pool_trim(freed);
  }
}

std::uint64_t PoolAllocator::trim_to(std::size_t target_bytes) {
  std::vector<std::pair<void*, std::size_t>> blocks;
  std::uint64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Largest buckets first: one released slab makes the most progress
    // toward the target, so small warm buckets survive the trim.
    for (std::size_t i = free_.size(); i-- > 0 && st_.slab_bytes > target_bytes;) {
      const std::size_t sz = std::size_t{1} << i;
      auto& list = free_[i];
      while (!list.empty() && st_.slab_bytes > target_bytes) {
        blocks.emplace_back(list.back(), sz);
        list.pop_back();
        freed += sz;
        --st_.free_blocks;
        st_.free_bytes -= sz;
        st_.slab_bytes -= sz;
      }
    }
    st_.trimmed_bytes += freed;
  }
  for (auto& [p, sz] : blocks) upstream_->deallocate(p, sz);
  if (freed > 0) {
    perf::track_pool_slab(-static_cast<std::int64_t>(freed));
    perf::track_pool_trim(freed);
  }
  return freed;
}

std::uint64_t PoolAllocator::trim_watermark(std::size_t slack_bytes) {
  std::vector<std::pair<void*, std::size_t>> blocks;
  std::uint64_t freed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t demand = 0;
    for (std::uint64_t w : bucket_window_) demand += w;
    const std::uint64_t target = demand + slack_bytes;
    // Largest buckets first, but each bucket only gives up blocks above its
    // *own* window peak: a bucket the steady-state workload touched keeps
    // its working set, so the next identical step re-faults nothing.
    for (std::size_t i = free_.size();
         i-- > 0 && st_.slab_bytes > target;) {
      const std::size_t sz = std::size_t{1} << i;
      auto& list = free_[i];
      std::uint64_t held = bucket_live_[i] + sz * list.size();
      while (!list.empty() && st_.slab_bytes > target &&
             held > bucket_window_[i]) {
        blocks.emplace_back(list.back(), sz);
        list.pop_back();
        freed += sz;
        held -= sz;
        --st_.free_blocks;
        st_.free_bytes -= sz;
        st_.slab_bytes -= sz;
      }
    }
    st_.trimmed_bytes += freed;
    // Rebase the observation window to current live demand.
    for (std::size_t i = 0; i < bucket_window_.size(); ++i) {
      bucket_window_[i] = bucket_live_[i];
    }
  }
  for (auto& [p, sz] : blocks) upstream_->deallocate(p, sz);
  if (freed > 0) {
    perf::track_pool_slab(-static_cast<std::int64_t>(freed));
    perf::track_pool_trim(freed);
  }
  return freed;
}

void PoolAllocator::end_epoch() {
  std::lock_guard<std::mutex> lock(mu_);
  ++st_.epochs;
}

PoolStats PoolAllocator::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PoolStats st = st_;
  st.window_high_water = 0;
  for (std::uint64_t w : bucket_window_) st.window_high_water += w;
  return st;
}

namespace {

bool pooling_default_from_env() {
  const char* env = std::getenv("FASTCHG_ALLOC");
  if (env == nullptr) return true;
  return std::strcmp(env, "system") != 0 && std::strcmp(env, "off") != 0 &&
         std::strcmp(env, "0") != 0;
}

std::atomic<bool>& pooling_flag() {
  static std::atomic<bool> on{pooling_default_from_env()};
  return on;
}

}  // namespace

bool pooling_enabled() {
  return pooling_flag().load(std::memory_order_relaxed);
}

void set_pooling_enabled(bool on) {
  pooling_flag().store(on, std::memory_order_relaxed);
}

AllocatorPtr thread_pool() {
  thread_local AllocatorPtr pool = std::make_shared<PoolAllocator>();
  return pool;
}

AllocatorPtr current_allocator() {
  if (t_current) return t_current;
  if (pooling_enabled()) return thread_pool();
  return system_allocator();
}

ArenaScope::ArenaScope()
    : ArenaScope(pooling_enabled() ? thread_pool() : nullptr) {}

ArenaScope::ArenaScope(AllocatorPtr a) : span_("mem.arena", "mem") {
  if (a != nullptr && pooling_enabled()) {
    installed_ = std::move(a);
    prev_ = std::exchange(t_current, installed_);
    active_ = true;
  }
}

ArenaScope::~ArenaScope() {
  if (!active_) return;
  t_current = std::move(prev_);
  if (auto* pool = dynamic_cast<PoolAllocator*>(installed_.get())) {
    pool->end_epoch();
  }
}

}  // namespace fastchg::alloc
