// Deterministic random number utilities.  Every stochastic component
// (dataset generation, weight init, samplers) takes an explicit Rng so runs
// are reproducible and tests can pin seeds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace fastchg {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedULL) : engine_(seed) {}

  double uniform(double lo = 0.0, double hi = 1.0);
  double normal(double mean = 0.0, double stddev = 1.0);
  /// Integer in [lo, hi] inclusive.
  index_t randint(index_t lo, index_t hi);
  /// Sample from a discrete distribution given (unnormalized) weights.
  std::size_t categorical(const std::vector<double>& weights);
  /// In-place Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), engine_);
  }

  void fill_uniform(Tensor& t, float lo, float hi);
  void fill_normal(Tensor& t, float mean, float stddev);

  /// Serialized engine state (checkpointing).  `set_state` restores a stream
  /// saved with `state` so the sequence of draws continues exactly.
  std::string state() const;
  void set_state(const std::string& s);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace fastchg
