#include "core/replay.hpp"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>

#include "core/error.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::replay {

namespace {

bool env_replay_default() {
  const char* v = std::getenv("FASTCHG_REPLAY");
  if (v == nullptr) return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "OFF") == 0 || std::strcmp(v, "false") == 0);
}

std::atomic<bool>& replay_flag() {
  static std::atomic<bool> on{env_replay_default()};
  return on;
}

thread_local Recorder* tl_recorder = nullptr;

}  // namespace

bool replay_enabled() { return replay_flag().load(std::memory_order_relaxed); }

void set_replay_enabled(bool on) {
  replay_flag().store(on, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Program

Program::~Program() {
  if (slab_.defined()) {
    perf::track_replay_plan_bytes(
        -static_cast<std::int64_t>(plan_.slab_bytes));
  }
}

bool Program::bind(const std::vector<Tensor>& inputs,
                   const std::vector<Tensor>& stable) {
  perf::TraceSpan span("replay.bind", "replay");
  // Tier pinning: the tape's closures dispatch through ops::active_tier()
  // at run time, so a program captured under another tier would silently
  // mix kernels from two tiers in one step.  Refuse; the caller runs eager
  // and recaptures under the current tier.
  if (ops::active_tier() != tier_) return false;
  if (inputs.size() != bound_slots_.size()) return false;
  if (stable.size() != stable_ptrs_.size()) return false;
  // Stable pointers first: a replaced storage (checkpoint restore,
  // set_atom_ref, a grad re-seated by set_grad) means the baked addresses
  // are stale and the program must be recaptured.
  for (std::size_t i = 0; i < stable.size(); ++i) {
    const float* now = stable[i].defined() ? stable[i].data() : nullptr;
    if (now != stable_ptrs_[i]) return false;
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const int slot = bound_slots_[i];
    if (slot < 0) {
      // Undefined at capture (e.g. labels in a no-label serve batch); the
      // replay batch must agree.
      if (inputs[i].defined()) return false;
      continue;
    }
    if (!inputs[i].defined()) return false;
    if (inputs[i].numel() != bound_numel_[i]) return false;
    slots_[static_cast<std::size_t>(slot)] =
        const_cast<float*>(inputs[i].data());
  }
  return true;
}

void Program::run() {
  perf::TraceSpan span("replay.run", "replay");
  float* const* table = slots_.data();
  for (const Step& s : steps_) s.fn(table);
  // Kernel accounting: one aggregated record per distinct op name, so the
  // launch counters match what the eager kernels would have recorded.
  for (const auto& [name, n] : kernel_counts_) perf::count_kernels(name, n);
  for (std::size_t i = 0; i < tap_slots_.size(); ++i) {
    Tensor& dst = taps_[i];
    const float* src = slots_[static_cast<std::size_t>(tap_slots_[i])];
    std::memcpy(dst.data(), src,
                static_cast<std::size_t>(dst.numel()) * sizeof(float));
  }
}

Tensor Program::tap_value(std::size_t i) const {
  FASTCHG_CHECK(i < taps_.size(), "replay tap index out of range");
  return taps_[i];
}

// ---------------------------------------------------------------------------
// Recorder

Recorder::Recorder() : tier_(ops::active_tier()) {
  // Mix the tier into the FNV basis so same-structure tapes captured under
  // different tiers get distinct fingerprints.
  fingerprint_ ^= static_cast<std::uint64_t>(tier_) + 0x9e3779b97f4a7c15ull;
  fingerprint_ *= 1099511628211ull;
}

Recorder* Recorder::active() { return tl_recorder; }

int Recorder::slot_for(const Tensor& t, bool as_output) {
  FASTCHG_CHECK(t.defined(), "replay: slot for undefined tensor");
  const float* p = t.data();
  auto it = by_ptr_.find(p);
  if (it != by_ptr_.end()) return it->second;
  const int id = static_cast<int>(slots_.size());
  SlotInfo info;
  info.numel = t.numel();
  info.planned = as_output;
  slots_.push_back(info);
  // Pin the storage for the duration of the capture so the pool cannot
  // recycle this address into a later, different tensor (which would merge
  // two logically distinct slots).  finish() drops the pins for planned
  // and bound slots and retains only the baked ones.
  pinned_.push_back(t);
  by_ptr_.emplace(p, id);
  return id;
}

void Recorder::bind_input(const Tensor& t) {
  if (!t.defined()) {
    bound_slots_.push_back(-1);
    bound_numel_.push_back(0);
    return;
  }
  bound_slots_.push_back(slot_for(t, /*as_output=*/false));
  bound_numel_.push_back(t.numel());
}

void Recorder::expect_stable(const Tensor& t) {
  stable_ptrs_.push_back(t.defined() ? t.data() : nullptr);
  if (t.defined()) slot_for(t, /*as_output=*/false);  // pin it too
}

void Recorder::tap(const Tensor& t) {
  FASTCHG_CHECK(t.defined(), "replay: tap of undefined tensor");
  tap_slots_.push_back(slot_for(t, /*as_output=*/false));
  tap_shapes_.push_back(t.shape());
}

void Recorder::push(const char* op, bool counted, const std::vector<int>& ins,
                    int out, StepFn fn, fuse::StepDesc desc) {
  // Fingerprint mixes the *raw* tape (pre-fusion), so two captures of the
  // same seeded step match whatever FASTCHG_FUSE says.
  fingerprint_ ^= 0x9e3779b97f4a7c15ull;
  KeyBuilder kb;
  kb.h = fingerprint_;
  kb.mix_bytes(op, std::strlen(op));
  kb.mix(counted ? 1u : 2u);
  kb.mix(static_cast<std::uint64_t>(ins.size()));
  for (int s : ins) kb.mix(static_cast<std::uint64_t>(s));
  kb.mix(static_cast<std::uint64_t>(out) + 7u);
  fingerprint_ = kb.h;
  fuse::TapeStep step;
  step.op = op;
  step.counted = counted;
  step.ins = ins;
  if (out >= 0) step.outs.push_back(out);
  step.desc = std::move(desc);
  step.fn = std::move(fn);
  tape_.push_back(std::move(step));
}

void Recorder::note_accumulate(const Tensor& dst, const Tensor& src) {
  const int d = slot_for(dst, /*as_output=*/false);
  const int s = slot_for(src, /*as_output=*/false);
  const index_t n = dst.numel();
  push(
      "grad_accum", /*counted=*/false, {d, s}, d,
      [d, s, n](float* const* S) {
        float* dp = S[d];
        const float* sp = S[s];
        for (index_t i = 0; i < n; ++i) dp[i] += sp[i];
      },
      fuse::ew_accum(n));
}

int Recorder::note_input(const Tensor& t) {
  return slot_for(t, /*as_output=*/false);
}

int Recorder::note_output(const Tensor& t) {
  return slot_for(t, /*as_output=*/true);
}

std::shared_ptr<Program> Recorder::finish() {
  FASTCHG_CHECK(!finished_, "replay: Recorder::finish() called twice");
  finished_ = true;

  std::uint64_t raw_counted = 0;
  for (const auto& s : tape_) raw_counted += s.counted ? 1 : 0;

  // Offline fusion stage: between capture and first replay, on the sealed
  // tape.  Tap and bound slots are reservations the pass must keep
  // materialized; baked slots are not `planned`, so they are never
  // eliminated either.
  fuse::FuseStats fstats;
  if (fuse::fuse_enabled() && !tape_.empty()) {
    std::vector<fuse::TapeSlot> fslots(slots_.size());
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      fslots[i].numel = slots_[i].numel;
      fslots[i].planned = slots_[i].planned;
    }
    for (int ts : tap_slots_) {
      fslots[static_cast<std::size_t>(ts)].reserved = true;
    }
    for (int bs : bound_slots_) {
      if (bs >= 0) fslots[static_cast<std::size_t>(bs)].reserved = true;
    }
    fstats = fuse::fuse_tape(tape_, fslots);
    perf::track_fuse(fstats.spans, fstats.kernels_removed);
  }

  // Lifetime scan over the (possibly fused) tape: a planned slot lives
  // from its first to its last access.  Slots fusion eliminated are never
  // touched by any remaining step, so they simply drop out of the plan.
  struct Life {
    int def = -1;
    int last = -1;
  };
  std::vector<Life> life(slots_.size());
  for (std::size_t idx = 0; idx < tape_.size(); ++idx) {
    const int at = static_cast<int>(idx);
    auto touch = [&](int slot) {
      if (!slots_[static_cast<std::size_t>(slot)].planned) return;
      Life& l = life[static_cast<std::size_t>(slot)];
      if (l.def < 0) l.def = at;
      l.last = at;
    };
    for (int s : tape_[idx].ins) touch(s);
    for (int o : tape_[idx].outs) touch(o);
  }
  // Taps must survive to the end of the program (they are copied out after
  // the last step), whatever their last recorded reader was.
  const int end = tape_.empty() ? 0 : static_cast<int>(tape_.size()) - 1;
  for (int ts : tap_slots_) {
    Life& l = life[static_cast<std::size_t>(ts)];
    if (slots_[static_cast<std::size_t>(ts)].planned && l.def >= 0) {
      l.last = std::max(l.last, end);
    }
  }

  // Lifetimes -> static plan.  Only planned slots (op outputs) that
  // survived fusion get slab offsets; bound and baked slots keep external
  // storage.
  std::vector<BufferLife> lives;
  std::vector<int> planned_slots;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].planned || life[i].def < 0) continue;
    BufferLife b;
    b.bytes = static_cast<std::size_t>(slots_[i].numel) * sizeof(float);
    b.def = life[i].def;
    b.last = life[i].last;
    lives.push_back(b);
    planned_slots.push_back(static_cast<int>(i));
  }
  MemPlan plan = plan_memory(std::move(lives));

  // Replay kernel accounting reflects the fused tape (the fused-vs-raw gap
  // *is* the measured win); aggregate per distinct op name as before.
  std::vector<std::pair<const char*, std::uint64_t>> counts;
  std::uint64_t counted = 0;
  for (const auto& s : tape_) {
    if (!s.counted) continue;
    ++counted;
    bool merged = false;
    for (auto& [name, n] : counts) {
      if (name == s.op || std::strcmp(name, s.op) == 0) {
        n += 1;
        merged = true;
        break;
      }
    }
    if (!merged) counts.emplace_back(s.op, 1);
  }

  auto prog = std::shared_ptr<Program>(new Program());
  prog->plan_ = std::move(plan);
  prog->steps_.reserve(tape_.size());
  for (auto& s : tape_) {
    prog->steps_.push_back(Program::Step{s.op, std::move(s.fn)});
  }
  tape_.clear();
  prog->fingerprint_ = fingerprint_;
  prog->tier_ = tier_;
  prog->fused_spans_ = fstats.spans;
  prog->fused_kernels_removed_ = fstats.kernels_removed;
  prog->fused_slots_eliminated_ = fstats.slots_eliminated;
  prog->raw_counted_ = raw_counted;
  prog->counted_ = counted;
  prog->bound_slots_ = std::move(bound_slots_);
  prog->bound_numel_ = std::move(bound_numel_);
  prog->stable_ptrs_ = std::move(stable_ptrs_);
  prog->tap_slots_ = std::move(tap_slots_);
  prog->tap_shapes_ = std::move(tap_shapes_);
  prog->kernel_counts_ = std::move(counts);

  // Materialize the slab and resolve every slot to its final pointer.
  const std::size_t slab_bytes = prog->plan_.slab_bytes;
  if (slab_bytes > 0) {
    prog->slab_ = Tensor::zeros(
        {static_cast<index_t>((slab_bytes + sizeof(float) - 1) /
                              sizeof(float))});
  } else {
    prog->slab_ = Tensor::zeros({1});
  }
  perf::track_replay_plan_bytes(static_cast<std::int64_t>(slab_bytes));

  prog->slots_.assign(slots_.size(), nullptr);
  float* slab_base = prog->slab_.data();
  // The slab rides a pool/system tensor, so the arena contract applies;
  // memplan offsets are 64-byte multiples, keeping every planned slot
  // aligned too.
  assert(reinterpret_cast<std::uintptr_t>(slab_base) % alloc::kArenaAlign ==
         0);
  for (std::size_t k = 0; k < planned_slots.size(); ++k) {
    const int slot = planned_slots[k];
    const std::size_t off = prog->plan_.buffers[k].offset;
    prog->slots_[static_cast<std::size_t>(slot)] =
        slab_base + off / sizeof(float);
    prog->planned_.emplace_back(slot, off);
  }
  // Baked slots: everything that is neither planned nor bound keeps its
  // capture-time storage, retained by the program so in-place updates
  // (Adam moments applied to params, grad accumulators, zero_grad fills)
  // stay visible through a stable address.
  std::vector<char> is_bound(slots_.size(), 0);
  for (int bs : prog->bound_slots_) {
    if (bs >= 0) is_bound[static_cast<std::size_t>(bs)] = 1;
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].planned || is_bound[i]) continue;
    prog->baked_.push_back(pinned_[i]);
    prog->slots_[i] = pinned_[i].data();
  }
  // Taps are copied into preallocated tensors on every run().
  for (const Shape& s : prog->tap_shapes_) {
    prog->taps_.push_back(Tensor::zeros(s));
  }

  pinned_.clear();
  by_ptr_.clear();
  return prog;
}

// ---------------------------------------------------------------------------
// RecorderScope

RecorderScope::RecorderScope(Recorder& r) : prev_(tl_recorder) {
  tl_recorder = &r;
}

RecorderScope::~RecorderScope() { tl_recorder = prev_; }

// ---------------------------------------------------------------------------
// ProgramCache

ProgramCache::ProgramCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

ProgramCache::Lease ProgramCache::acquire(std::uint64_t key) {
  Lease lease;
  if (!replay_enabled()) return lease;  // inert: no counters, no state
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.lookups;
  ++clock_;
  Entry& e = entries_[key];
  e.last_used = clock_;
  ++e.sightings;
  if (e.program) {
    std::unique_lock<std::mutex> run_lock(e.program->run_mu_,
                                          std::try_to_lock);
    if (run_lock.owns_lock()) {
      ++stats_.hits;
      perf::track_replay_hit();
      lease.action = Action::kReplay;
      lease.program = e.program;
      lease.lock = std::move(run_lock);
      return lease;
    }
    // Another worker is replaying this exact program; running eager beats
    // serializing behind its slab.
    ++stats_.misses;
    ++stats_.fallbacks;
    perf::track_replay_miss();
    perf::track_replay_fallback();
    return lease;
  }
  ++stats_.misses;
  perf::track_replay_miss();
  // Capture on the *second* sighting: the first eager pass warms state the
  // tape must see in steady form (gradient accumulators exist, so backward
  // records `grad += g` instead of the first-touch clone).
  if (e.sightings >= 2 && !e.capturing) {
    e.capturing = true;
    lease.action = Action::kCapture;
  }
  return lease;
}

void ProgramCache::store(std::uint64_t key,
                         std::shared_ptr<Program> program) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // invalidated while capturing
  it->second.capturing = false;
  if (program) {
    stats_.fused_spans += program->fused_spans();
    stats_.fused_kernels_removed += program->fused_kernels_removed();
  }
  it->second.program = std::move(program);
  ++stats_.captures;
  perf::track_replay_capture();
  evict_locked();
}

void ProgramCache::abort_capture(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) it->second.capturing = false;
}

void ProgramCache::invalidate(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.fallbacks;
  perf::track_replay_fallback();
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  // Reset the warm-up count too: whatever invalidated the program (storage
  // replacement) warrants a fresh eager sighting before re-capture.
  it->second.program.reset();
  it->second.sightings = 1;
  it->second.capturing = false;
}

ProgramCache::Stats ProgramCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::shared_ptr<Program>> ProgramCache::programs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<Program>> out;
  for (const auto& [k, e] : entries_) {
    if (e.program) out.push_back(e.program);
  }
  return out;
}

std::size_t ProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [k, e] : entries_) {
    if (e.program) ++n;
  }
  return n;
}

void ProgramCache::evict_locked() {
  // LRU over entries that actually hold programs; sighting-only entries
  // are bookkeeping and stay (they are two words each).
  while (true) {
    std::size_t with_prog = 0;
    std::uint64_t oldest_used = 0;
    std::uint64_t oldest_key = 0;
    bool found = false;
    for (const auto& [k, e] : entries_) {
      if (!e.program) continue;
      ++with_prog;
      if (!found || e.last_used < oldest_used) {
        oldest_used = e.last_used;
        oldest_key = k;
        found = true;
      }
    }
    if (with_prog <= capacity_ || !found) break;
    entries_.erase(oldest_key);
    ++stats_.evictions;
  }
}

}  // namespace fastchg::replay
