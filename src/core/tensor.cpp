#include "core/tensor.hpp"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <sstream>

#include "ops/eltwise.hpp"
#include "perf/counters.hpp"

namespace fastchg {

index_t numel_of(const Shape& shape) {
  index_t n = 1;
  for (index_t d : shape) {
    FASTCHG_CHECK(d >= 0, "negative dimension in shape " << shape_str(shape));
    n *= d;
  }
  return shape.empty() ? 0 : n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

bool same_shape(const Shape& a, const Shape& b) { return a == b; }

// Tracked storage block.  Two backing modes:
//  * allocator-backed: the data block comes from `alloc` (pool or system)
//    and is returned to the same allocator on destruction -- this is how
//    graph teardown feeds the pool's free lists;
//  * adopted-vector: from_vector(&&) moves a std::vector in wholesale and
//    uses its buffer directly (alloc == nullptr), skipping both the copy
//    and the allocation.
// Either way the perf tracker records logical tensor bytes, so
// bytes_live/bytes_peak are identical whichever allocator (or adoption
// path) backed the tensor.
struct Tensor::Storage {
  Storage(index_t n, const alloc::AllocatorPtr& a)
      : alloc(a),
        ptr(static_cast<float*>(a->allocate(payload_bytes(n)))),
        n(n) {
    perf::track_alloc(tensor_bytes(n));
  }
  explicit Storage(std::vector<float>&& v)
      : adopted(std::move(v)),
        ptr(adopted.data()),
        n(static_cast<index_t>(adopted.size())) {
    perf::track_alloc(tensor_bytes(n));
  }
  ~Storage() {
    perf::track_free(tensor_bytes(n));
    if (alloc) alloc->deallocate(ptr, payload_bytes(n));
  }
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  static std::size_t payload_bytes(index_t n) {
    return static_cast<std::size_t>(n) * sizeof(float);
  }

  alloc::AllocatorPtr alloc;   // null in adopted-vector mode
  std::vector<float> adopted;  // owns the buffer in adopted-vector mode
  float* ptr;
  index_t n;
};

Tensor Tensor::empty(Shape shape) {
  Tensor t;
  t.numel_ = numel_of(shape);
  t.shape_ = std::move(shape);
  // allocate_shared puts the shared_ptr control block + Storage header on
  // the same allocator as the data, so a steady-state tensor costs zero
  // system allocations: header and payload are both pool hits.
  alloc::AllocatorPtr a = alloc::current_allocator();
  t.storage_ = std::allocate_shared<Storage>(
      alloc::StlAdapter<Storage>(a), std::max<index_t>(t.numel_, 1), a);
  return t;
}

Tensor Tensor::zeros(Shape shape) {
  Tensor t = empty(std::move(shape));
  std::memset(t.data(), 0, static_cast<std::size_t>(t.numel_) * sizeof(float));
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = empty(std::move(shape));
  std::fill_n(t.data(), t.numel_, value);
  return t;
}

Tensor Tensor::from_vector(const std::vector<float>& v, Shape shape) {
  Tensor t = empty(std::move(shape));
  FASTCHG_CHECK(static_cast<index_t>(v.size()) == t.numel_,
                "from_vector: " << v.size() << " values for shape "
                                << shape_str(t.shape_));
  std::copy(v.begin(), v.end(), t.data());
  return t;
}

Tensor Tensor::from_vector(std::vector<float>&& v, Shape shape) {
  const index_t n = numel_of(shape);
  FASTCHG_CHECK(static_cast<index_t>(v.size()) == n,
                "from_vector: " << v.size() << " values for shape "
                                << shape_str(shape));
  // Empty shapes keep the 1-float minimum storage empty() guarantees.
  if (v.empty()) return empty(std::move(shape));
  // Move-adoption uses the vector's buffer as-is, which a stock malloc only
  // aligns to 16 bytes.  When it misses the arena contract (kArenaAlign),
  // fall back to the copying overload so every tensor payload stays
  // 64-byte-aligned for the SIMD op library.
  if (reinterpret_cast<std::uintptr_t>(v.data()) % alloc::kArenaAlign != 0) {
    return from_vector(v, std::move(shape));
  }
  Tensor t;
  t.numel_ = n;
  t.shape_ = std::move(shape);
  alloc::AllocatorPtr a = alloc::current_allocator();
  t.storage_ = std::allocate_shared<Storage>(alloc::StlAdapter<Storage>(a),
                                             std::move(v));
  return t;
}

index_t Tensor::size(index_t d) const {
  FASTCHG_CHECK(d >= 0 && d < dim(),
                "size(" << d << ") on tensor of dim " << dim());
  return shape_[static_cast<std::size_t>(d)];
}

float* Tensor::data() {
  FASTCHG_CHECK(defined(), "data() on undefined tensor");
  return storage_->ptr;
}

const float* Tensor::data() const {
  FASTCHG_CHECK(defined(), "data() on undefined tensor");
  return storage_->ptr;
}

const alloc::Allocator* Tensor::source_allocator() const {
  return storage_ ? storage_->alloc.get() : nullptr;
}

float Tensor::item() const {
  FASTCHG_CHECK(numel_ == 1, "item() on tensor of numel " << numel_);
  return data()[0];
}

Tensor Tensor::reshape(Shape shape) const {
  FASTCHG_CHECK(defined(), "reshape() on undefined tensor");
  const index_t n = numel_of(shape);
  FASTCHG_CHECK(n == numel_, "reshape " << shape_str(shape_) << " -> "
                                        << shape_str(shape));
  Tensor t;
  t.storage_ = storage_;
  t.shape_ = std::move(shape);
  t.numel_ = n;
  return t;
}

Tensor Tensor::clone() const {
  FASTCHG_CHECK(defined(), "clone() on undefined tensor");
  Tensor t = empty(shape_);
  std::memcpy(t.data(), data(),
              static_cast<std::size_t>(numel_) * sizeof(float));
  return t;
}

void Tensor::fill_(float value) { std::fill_n(data(), numel_, value); }

void Tensor::add_(const Tensor& other, float alpha) {
  FASTCHG_CHECK(same_shape(shape_, other.shape_),
                "add_: " << shape_str(shape_) << " vs "
                         << shape_str(other.shape_));
  // ops::eltwise::axpy rounds the product before the add at every tier
  // (bit-exact class), matching the seed's `a[i] += alpha * b[i]`.
  ops::eltwise::axpy(numel_, alpha, other.data(), data());
}

void Tensor::mul_(float s) { ops::eltwise::scale(numel_, s, data()); }

std::vector<float> Tensor::to_vector() const {
  return std::vector<float>(data(), data() + numel_);
}

}  // namespace fastchg
