#include "chgnet/charge.hpp"

#include <cmath>
#include <limits>

#include "core/error.hpp"

namespace fastchg::model {

std::vector<ChargeState> charge_states(index_t z) {
  FASTCHG_CHECK(z >= 1, "charge_states: species " << z);
  const double zf = static_cast<double>(z);
  // Base oxidation state and number of accessible states derived smoothly
  // from Z, spanning anions through cations (e.g. synthetic "oxygen"-like
  // species get negative states, so charge neutrality is reachable for
  // realistic compositions); expected moments spread with the state,
  // anchored at the species' mu.
  const int base = static_cast<int>(std::lround(3.0 * std::sin(0.61 * zf)));
  const int nstates = 2 + static_cast<int>(z % 3);  // 2..4 states
  const double mu0 = 2.0 * std::fabs(std::sin(0.30 * zf));
  std::vector<ChargeState> states;
  states.reserve(static_cast<std::size_t>(nstates));
  for (int s = 0; s < nstates; ++s) {
    ChargeState st;
    st.oxidation = base + s - nstates / 2;
    st.expected_magmom =
        std::fabs(mu0 + 0.8 * static_cast<double>(s - nstates / 2));
    states.push_back(st);
  }
  return states;
}

ChargeAssignment infer_charges(const std::vector<index_t>& species,
                               const std::vector<double>& magmoms) {
  FASTCHG_CHECK(species.size() == magmoms.size(),
                "infer_charges: " << species.size() << " species vs "
                                  << magmoms.size() << " magmoms");
  const std::size_t n = species.size();
  ChargeAssignment out;
  out.oxidation.resize(n);

  std::vector<std::vector<ChargeState>> catalogs(n);
  std::vector<std::size_t> chosen(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    catalogs[i] = charge_states(species[i]);
    double best = std::numeric_limits<double>::max();
    for (std::size_t s = 0; s < catalogs[i].size(); ++s) {
      const double err =
          std::fabs(magmoms[i] - catalogs[i][s].expected_magmom);
      if (err < best) {
        best = err;
        chosen[i] = s;
      }
    }
    out.penalty += best;
    out.total_charge += catalogs[i][chosen[i]].oxidation;
  }

  // Greedy neutrality repair: repeatedly apply the reassignment that moves
  // the total toward zero at the lowest penalty cost per unit of charge.
  // (Anions are not modelled separately; the synthetic catalogs include
  // negative states for some Z, so zero is usually reachable.)
  int guard = static_cast<int>(4 * n) + 8;
  while (out.total_charge != 0 && guard-- > 0) {
    const int want = out.total_charge > 0 ? -1 : +1;  // desired charge delta
    double best_cost = std::numeric_limits<double>::max();
    std::size_t best_atom = n;
    std::size_t best_state = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const double cur_err =
          std::fabs(magmoms[i] - catalogs[i][chosen[i]].expected_magmom);
      for (std::size_t s = 0; s < catalogs[i].size(); ++s) {
        if (s == chosen[i]) continue;
        const int dq = catalogs[i][s].oxidation -
                       catalogs[i][chosen[i]].oxidation;
        if (dq * want <= 0) continue;  // moves the wrong way
        // Never overshoot past zero.
        if (std::abs(out.total_charge + dq) >= std::abs(out.total_charge)) {
          continue;
        }
        const double err =
            std::fabs(magmoms[i] - catalogs[i][s].expected_magmom);
        const double cost = (err - cur_err) / std::abs(dq);
        if (cost < best_cost) {
          best_cost = cost;
          best_atom = i;
          best_state = s;
        }
      }
    }
    if (best_atom == n) break;  // neutrality unreachable
    const double cur_err = std::fabs(
        magmoms[best_atom] -
        catalogs[best_atom][chosen[best_atom]].expected_magmom);
    const double new_err =
        std::fabs(magmoms[best_atom] -
                  catalogs[best_atom][best_state].expected_magmom);
    out.total_charge += catalogs[best_atom][best_state].oxidation -
                        catalogs[best_atom][chosen[best_atom]].oxidation;
    out.penalty += new_err - cur_err;
    chosen[best_atom] = best_state;
  }

  for (std::size_t i = 0; i < n; ++i) {
    out.oxidation[i] = catalogs[i][chosen[i]].oxidation;
  }
  out.neutral = (out.total_charge == 0);
  return out;
}

}  // namespace fastchg::model
