// Charge-informed post-processing (the capability that makes CHGNet "the
// only charge-informed GNN potential"): atomic charges (oxidation states)
// are inferred from predicted magnetic moments, because ions of the same
// element in different oxidation states carry distinct moments (the paper's
// example: Mn in LixMnO2).  Each species has a catalog of plausible
// oxidation states with expected moments; each atom is assigned the state
// closest to its predicted moment, then a global charge-neutrality
// constraint is enforced by greedily re-assigning the atoms whose moments
// discriminate least between states.
//
// With synthetic species, the catalog is generated deterministically from Z
// (mirroring how every other species property in this repo is derived).
#pragma once

#include <vector>

#include "core/tensor.hpp"

namespace fastchg::model {

struct ChargeState {
  int oxidation;           ///< e.g. +2, +3
  double expected_magmom;  ///< mu_B for that state
};

/// Candidate oxidation states for species `z` (2-4 states, deterministic).
std::vector<ChargeState> charge_states(index_t z);

struct ChargeAssignment {
  std::vector<int> oxidation;  ///< per atom
  double penalty = 0.0;        ///< sum |magmom - expected| over atoms
  bool neutral = false;        ///< total charge reached zero
  int total_charge = 0;
};

/// Infer per-atom oxidation states from predicted moments, then push the
/// total charge toward zero via minimal-penalty reassignments.
ChargeAssignment infer_charges(const std::vector<index_t>& species,
                               const std::vector<double>& magmoms);

}  // namespace fastchg::model
