#include "chgnet/embedding_layer.hpp"

namespace fastchg::model {

FeatureEmbedding::FeatureEmbedding(const ModelConfig& cfg, Rng& rng)
    : packed_(cfg.packed_linears),
      atom_embed_(cfg.num_species, cfg.feat_dim, rng),
      bond_e0_(cfg.num_radial, cfg.feat_dim, rng),
      bond_ea_(cfg.num_radial, cfg.feat_dim, rng),
      bond_eb_(cfg.num_radial, cfg.feat_dim, rng),
      bond_packed_(cfg.num_radial,
                   {cfg.feat_dim, cfg.feat_dim, cfg.feat_dim}, rng),
      angle_feat_(cfg.num_angular, cfg.feat_dim, rng) {
  add_child("atom_embed", &atom_embed_);
  if (packed_) {
    add_child("bond_packed", &bond_packed_);
  } else {
    add_child("bond_e0", &bond_e0_);
    add_child("bond_ea", &bond_ea_);
    add_child("bond_eb", &bond_eb_);
  }
  add_child("angle_feat", &angle_feat_);
}

Var FeatureEmbedding::atoms(const std::vector<index_t>& species) const {
  return atom_embed_.forward(species);
}

FeatureEmbedding::BondFeatures FeatureEmbedding::bonds(const Var& rbf) const {
  if (packed_) {
    Var all = bond_packed_.forward(rbf);
    return {bond_packed_.head(0, all), bond_packed_.head(1, all),
            bond_packed_.head(2, all)};
  }
  return {bond_e0_.forward(rbf), bond_ea_.forward(rbf),
          bond_eb_.forward(rbf)};
}

Var FeatureEmbedding::angles(const Var& fourier) const {
  return angle_feat_.forward(fourier);
}

}  // namespace fastchg::model
