// Interaction block (paper Sec. II-B (3) and III-B "Dependency
// Elimination").
//
// Reference dependencies (Eq. 10):
//   v^{t+1} = AtomConv(v^t, e^t)
//   e^{t+1} = BondConv(v^{t+1}, e^t, a^t)
//   a^{t+1} = AngleUpdate(v^{t+1}, e^{t+1}, a^t)
//
// With dependency_elimination (Eq. 11) BondConv and AngleUpdate read the
// *stale* features v^t, e^t; their inputs become identical, so the shared
// [v_i, e_ij, e_ik, a_ijk] concat is built once and the three updates are
// independent (on a GPU they would run concurrently).
#pragma once

#include <vector>

#include "chgnet/config.hpp"
#include "nn/gated_mlp.hpp"
#include "nn/linear.hpp"

namespace fastchg::model {

using ag::Var;

/// Non-owning view of the batched graph topology used by the blocks.
struct GraphTopo {
  index_t num_atoms = 0;
  index_t num_edges = 0;
  index_t num_angles = 0;
  const std::vector<index_t>* edge_src = nullptr;
  const std::vector<index_t>* edge_dst = nullptr;
  const std::vector<index_t>* angle_e1 = nullptr;
  const std::vector<index_t>* angle_e2 = nullptr;
  const std::vector<index_t>* angle_center = nullptr;
  /// [E,1] 0/1 mask, defined only when the batch mixes angle-free and
  /// angle-carrying structures.  A structure with no angles skips the bond
  /// update entirely when served alone (Alg. 1 line 12), so inside a fused
  /// batch its edges must not receive the bond projection's bias either --
  /// otherwise a structure's output would depend on its batchmates.
  Var bond_update_mask;
};

/// Mutable per-layer feature state.
struct BlockState {
  Var v;  ///< [A,C] atom features
  Var e;  ///< [E,C] bond features
  Var a;  ///< [G,C] angle features
};

class InteractionBlock : public nn::Module {
 public:
  /// `last` blocks only run AtomConv (matching reference CHGNet, whose final
  /// block updates atoms only).
  InteractionBlock(const ModelConfig& cfg, bool last, Rng& rng);

  /// In-place update of `s`.  `ea` / `eb` are the bond weight tensors
  /// e_ij^a, e_ij^b of Eq. 2 ([E,C] each).
  void apply(BlockState& s, const GraphTopo& topo, const Var& ea,
             const Var& eb) const;

  bool last() const { return last_; }

 private:
  Var atom_conv(const BlockState& s, const GraphTopo& topo,
                const Var& ea) const;

  bool last_;
  bool eliminate_deps_;
  nn::GatedMLP atom_mlp_;   ///< [3C] -> C
  nn::GatedMLP bond_mlp_;   ///< [4C] -> C
  nn::GatedMLP angle_mlp_;  ///< [4C] -> C
  nn::Linear atom_proj_;    ///< L_v
  nn::Linear bond_proj_;    ///< L_e
};

}  // namespace fastchg::model
