#include "chgnet/model.hpp"

#include "autograd/ops.hpp"
#include "perf/trace.hpp"

namespace fastchg::model {

using namespace ag::ops;

namespace {

Var identity3() {
  Tensor id = Tensor::zeros({3, 3});
  id.data()[0] = id.data()[4] = id.data()[8] = 1.0f;
  return constant(std::move(id));
}

/// Integer-index subvector [lo, hi) of `v`, optionally rebased by `-base`.
std::vector<index_t> slice_vec(const std::vector<index_t>& v, index_t lo,
                               index_t hi, index_t base = 0) {
  std::vector<index_t> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (index_t i = lo; i < hi; ++i) {
    out.push_back(v[static_cast<std::size_t>(i)] - base);
  }
  return out;
}

}  // namespace

CHGNet::CHGNet(const ModelConfig& cfg, std::uint64_t seed)
    : cfg_(cfg),
      init_rng_(seed),
      embed_(cfg, init_rng_),
      rbf_(cfg.num_radial, cfg.atom_cutoff, cfg.envelope_p,
           cfg.fused_kernels, cfg.factored_envelope),
      fourier_(cfg.num_angular, cfg.fused_kernels),
      energy_head_(cfg, init_rng_),
      magmom_head_(cfg, init_rng_) {
  add_child("embed", &embed_);
  add_child("rbf", &rbf_);
  for (index_t l = 0; l < cfg.num_layers; ++l) {
    const bool last = (l + 1 == cfg.num_layers);
    blocks_.push_back(
        std::make_unique<InteractionBlock>(cfg, last, init_rng_));
    add_child("block" + std::to_string(l), blocks_.back().get());
  }
  add_child("energy_head", &energy_head_);
  add_child("magmom_head", &magmom_head_);
  if (cfg.decoupled_heads) {
    force_head_.emplace(cfg, init_rng_);
    stress_head_.emplace(cfg, init_rng_);
    add_child("force_head", &*force_head_);
    add_child("stress_head", &*stress_head_);
  }
}

Var CHGNet::angles_from_rij(const Var& rij, const Var& rlen,
                            const std::vector<index_t>& e1,
                            const std::vector<index_t>& e2) const {
  Var u = index_select0(rij, e1);
  Var v = index_select0(rij, e2);
  Var dots = sum_dim(mul(u, v), 1, /*keepdim=*/true);            // [G,1]
  Var lens = mul(index_select0(rlen, e1), index_select0(rlen, e2));
  Var cosq = clamp(div(dots, lens), -1.0f + 1e-6f, 1.0f - 1e-6f);
  return acos_op(cosq);
}

// ---------------------------------------------------------------------------
// Alg. 1: serial per-sample basis computation (reference CHGNet).  Every
// structure runs its own chain of small kernels; the results are
// concatenated at the end -- exactly the CPU-bound pattern the paper
// criticizes.
// ---------------------------------------------------------------------------
CHGNet::BasisOut CHGNet::compute_basis_serial(const data::Batch& b,
                                              bool with_strain) const {
  BasisOut out;
  Var pos0(b.cart, /*requires_grad=*/with_strain);
  Var image_all = constant(b.edge_image);
  Var id = identity3();

  std::vector<Var> pos_parts, rij_parts, rlen_parts, rbf_parts, ft_parts;
  std::vector<Var> lattices;
  for (index_t s = 0; s < b.num_structs; ++s) {
    Var lat = constant(b.lattices[static_cast<std::size_t>(s)]);
    if (with_strain) {
      Var eps(Tensor::zeros({3, 3}), /*requires_grad=*/true);
      out.strains.push_back(eps);
      Var defo = add(id, eps);
      Var pos_s = narrow(pos0, 0, b.atom_first[s],
                         b.atom_first[s + 1] - b.atom_first[s]);
      pos_parts.push_back(matmul(pos_s, defo));
      lat = matmul(lat, defo);
    }
    lattices.push_back(lat);
  }
  Var pos = with_strain ? cat(pos_parts, 0) : pos0;
  out.pos = pos0;

  for (index_t s = 0; s < b.num_structs; ++s) {
    const index_t e0 = b.edge_first[s], e1 = b.edge_first[s + 1];
    const index_t ne = e1 - e0;
    if (ne == 0) continue;
    Var img = narrow(image_all, 0, e0, ne);
    Var shift = matmul(img, lattices[static_cast<std::size_t>(s)]);
    Var ri = index_select0(pos, slice_vec(b.edge_src, e0, e1));
    Var rj = index_select0(pos, slice_vec(b.edge_dst, e0, e1));
    Var rij = add(sub(rj, ri), shift);
    Var rlen = sqrt_op(sum_dim(square(rij), 1, /*keepdim=*/true));
    rij_parts.push_back(rij);
    rlen_parts.push_back(rlen);
    rbf_parts.push_back(rbf_.forward(rlen));

    const index_t a0 = b.angle_first[s], a1 = b.angle_first[s + 1];
    if (a1 > a0) {  // Alg. 1 line 12: skip samples without angles
      Var theta = angles_from_rij(rij, rlen,
                                  slice_vec(b.angle_e1, a0, a1, e0),
                                  slice_vec(b.angle_e2, a0, a1, e0));
      ft_parts.push_back(fourier_.forward(theta));
    }
  }
  out.rij = cat(rij_parts, 0);
  out.rlen = cat(rlen_parts, 0);
  out.rbf = cat(rbf_parts, 0);
  if (!ft_parts.empty()) out.fourier = cat(ft_parts, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Alg. 2: batched basis computation.  One dense block-diagonal image matrix
// multiplication produces every edge shift at once; sRBF and Fourier run on
// the whole batch in single launches.
// ---------------------------------------------------------------------------
CHGNet::BasisOut CHGNet::compute_basis_batched(const data::Batch& b,
                                               bool with_strain) const {
  BasisOut out;
  Var pos0(b.cart, /*requires_grad=*/with_strain);
  Var id = identity3();

  Var pos;
  std::vector<Var> lattices;
  if (with_strain) {
    std::vector<Var> pos_parts;
    for (index_t s = 0; s < b.num_structs; ++s) {
      Var eps(Tensor::zeros({3, 3}), /*requires_grad=*/true);
      out.strains.push_back(eps);
      Var defo = add(id, eps);
      pos_parts.push_back(matmul(narrow(pos0, 0, b.atom_first[s],
                                        b.atom_first[s + 1] -
                                            b.atom_first[s]),
                                 defo));
      lattices.push_back(
          matmul(constant(b.lattices[static_cast<std::size_t>(s)]), defo));
    }
    pos = cat(pos_parts, 0);
  } else {
    pos = pos0;
    for (index_t s = 0; s < b.num_structs; ++s) {
      lattices.push_back(constant(b.lattices[static_cast<std::size_t>(s)]));
    }
  }
  out.pos = pos0;

  Var lat_cat = cat(lattices, 0);                       // [3S,3]
  Var shifts = matmul(constant(b.image_blockdiag), lat_cat);  // [E,3]
  Var ri = index_select0(pos, b.edge_src);
  Var rj = index_select0(pos, b.edge_dst);
  out.rij = add(sub(rj, ri), shifts);
  out.rlen = sqrt_op(sum_dim(square(out.rij), 1, /*keepdim=*/true));
  out.rbf = rbf_.forward(out.rlen);
  if (b.num_angles > 0) {
    Var theta = angles_from_rij(out.rij, out.rlen, b.angle_e1, b.angle_e2);
    out.fourier = fourier_.forward(theta);
  }
  return out;
}

ModelOutput CHGNet::forward(const data::Batch& b, ForwardMode mode) const {
  const bool decoupled = cfg_.decoupled_heads;
  // Decoupled inference needs no graph at all -- this is where FastCHGNet's
  // MD speedup (Table II) comes from.
  std::optional<ag::NoGradGuard> nograd;
  if (decoupled && mode == ForwardMode::kEval) nograd.emplace();

  perf::TraceSpan span_fwd("model.forward", "model");
  const bool with_strain = !decoupled;
  BasisOut geo;
  {
    perf::TraceSpan span("model.basis", "model");
    geo = cfg_.batched_basis ? compute_basis_batched(b, with_strain)
                             : compute_basis_serial(b, with_strain);
  }

  FeatureEmbedding::BondFeatures bf;
  BlockState st;
  {
    perf::TraceSpan span("model.embed", "model");
    bf = embed_.bonds(geo.rbf);
    st.v = embed_.atoms(b.species);
    st.e = bf.e0;
    if (b.num_angles > 0) st.a = embed_.angles(geo.fourier);
  }

  GraphTopo topo;
  topo.num_atoms = b.num_atoms;
  topo.num_edges = b.num_edges;
  topo.num_angles = b.num_angles;
  topo.edge_src = &b.edge_src;
  topo.edge_dst = &b.edge_dst;
  topo.angle_e1 = &b.angle_e1;
  topo.angle_e2 = &b.angle_e2;
  topo.angle_center = &b.angle_center;
  if (b.num_angles > 0 && b.num_structs > 1) {
    // Mixed batch detection: structures without angles must not have their
    // bond features touched by the (biased) bond update, or a fused serve
    // batch would diverge from serving the same structure alone.
    bool mixed = false;
    for (index_t s = 0; s < b.num_structs; ++s) {
      if (b.angle_first[s + 1] == b.angle_first[s]) {
        mixed = true;
        break;
      }
    }
    if (mixed) {
      Tensor mask = Tensor::empty({b.num_edges, 1});
      for (index_t s = 0; s < b.num_structs; ++s) {
        const float has_angles =
            b.angle_first[s + 1] > b.angle_first[s] ? 1.0f : 0.0f;
        for (index_t e = b.edge_first[s]; e < b.edge_first[s + 1]; ++e) {
          mask.data()[e] = has_angles;
        }
      }
      topo.bond_update_mask = constant(std::move(mask));
    }
  }

  Var magmom_features;
  {
    perf::TraceSpan span("model.interaction", "model");
    for (const auto& block : blocks_) {
      // CHGNet supervises magmoms on the features entering the final block.
      if (cfg_.magmom_intermediate && block->last()) magmom_features = st.v;
      block->apply(st, topo, bf.ea, bf.eb);
    }
  }
  if (!magmom_features.defined()) magmom_features = st.v;

  ModelOutput outp;
  {
    perf::TraceSpan span("model.readout", "model");
    outp.energy_per_atom =
        energy_head_.forward(st.v, b.atom_struct, b.num_structs, b.natoms);
    if (atom_ref_.defined()) {
      // AtomRef composition baseline: mean per-species reference energy of
      // each structure, added as a constant (no force/stress contribution).
      Var ref_atom = index_select0(constant(atom_ref_), b.species);  // [A,1]
      Tensor inv_n = Tensor::empty({b.num_structs, 1});
      for (index_t s = 0; s < b.num_structs; ++s) {
        inv_n.data()[s] =
            1.0f / static_cast<float>(b.natoms[static_cast<std::size_t>(s)]);
      }
      Var ref_pa = mul(index_add0(b.num_structs, b.atom_struct, ref_atom),
                       constant(std::move(inv_n)));
      outp.energy_per_atom = add(outp.energy_per_atom, ref_pa);
    }
    outp.magmom = magmom_head_.forward(magmom_features);

    if (decoupled) {
      outp.forces = force_head_->forward(st.e, geo.rij, geo.rlen, b.edge_src,
                                         b.num_atoms);
      outp.stress = stress_head_->forward(st.v, b);
      return outp;
    }
  }

  perf::TraceSpan span_deriv("model.derivative_readout", "model");
  // Derivative readout: F = -dE/dx, sigma = (1/V) dE/deps.  In training the
  // gradient graph itself must be differentiable (create_graph) so the Huber
  // loss over forces/stress can update the weights -- the second-order pass
  // whose cost and memory the decoupled heads eliminate.
  Tensor natoms_t = Tensor::empty({b.num_structs, 1});
  for (index_t s = 0; s < b.num_structs; ++s) {
    natoms_t.data()[s] =
        static_cast<float>(b.natoms[static_cast<std::size_t>(s)]);
  }
  Var e_sum = sum_all(mul(outp.energy_per_atom, constant(std::move(natoms_t))));
  std::vector<Var> wrt = {geo.pos};
  wrt.insert(wrt.end(), geo.strains.begin(), geo.strains.end());
  const bool create_graph = (mode == ForwardMode::kTrain);
  std::vector<Var> grads = ag::grad(e_sum, wrt, Var(), create_graph);

  outp.forces = grads[0].defined()
                    ? neg(grads[0])
                    : constant(Tensor::zeros({b.num_atoms, 3}));
  std::vector<Var> stress_rows;
  stress_rows.reserve(static_cast<std::size_t>(b.num_structs));
  for (index_t s = 0; s < b.num_structs; ++s) {
    const Var& g = grads[static_cast<std::size_t>(1 + s)];
    if (g.defined()) {
      stress_rows.push_back(mul_scalar(
          reshape(g, {1, 9}),
          1.0f / static_cast<float>(b.volumes[static_cast<std::size_t>(s)])));
    } else {
      stress_rows.push_back(constant(Tensor::zeros({1, 9})));
    }
  }
  outp.stress = cat(stress_rows, 0);
  return outp;
}

void CHGNet::set_atom_ref(std::vector<float> e0) {
  FASTCHG_CHECK(static_cast<index_t>(e0.size()) == cfg_.num_species + 1,
                "set_atom_ref: " << e0.size() << " entries for "
                                 << cfg_.num_species << " species");
  atom_ref_ = Tensor::from_vector(std::move(e0), {cfg_.num_species + 1, 1});
}

std::unique_ptr<CHGNet> make_fastchgnet(std::uint64_t seed) {
  return std::make_unique<CHGNet>(ModelConfig::fast(), seed);
}

std::unique_ptr<CHGNet> make_reference_chgnet(std::uint64_t seed) {
  return std::make_unique<CHGNet>(ModelConfig::reference(), seed);
}

}  // namespace fastchg::model
