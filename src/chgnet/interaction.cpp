#include "chgnet/interaction.hpp"

#include "autograd/ops.hpp"

namespace fastchg::model {

using namespace ag::ops;

InteractionBlock::InteractionBlock(const ModelConfig& cfg, bool last,
                                   Rng& rng)
    : last_(last),
      eliminate_deps_(cfg.dependency_elimination),
      atom_mlp_(3 * cfg.feat_dim, cfg.feat_dim, rng, cfg.fused_kernels),
      bond_mlp_(4 * cfg.feat_dim, cfg.feat_dim, rng, cfg.fused_kernels),
      angle_mlp_(4 * cfg.feat_dim, cfg.feat_dim, rng, cfg.fused_kernels),
      atom_proj_(cfg.feat_dim, cfg.feat_dim, rng),
      bond_proj_(cfg.feat_dim, cfg.feat_dim, rng) {
  add_child("atom_mlp", &atom_mlp_);
  if (!last) {
    add_child("bond_mlp", &bond_mlp_);
    add_child("angle_mlp", &angle_mlp_);
  }
  add_child("atom_proj", &atom_proj_);
  if (!last) add_child("bond_proj", &bond_proj_);
}

Var InteractionBlock::atom_conv(const BlockState& s, const GraphTopo& topo,
                                const Var& ea) const {
  // f_v = [v_i, v_j, e_ij]; message = e^a ⊙ phi_v(f_v); aggregate at i.
  Var v_src = index_select0(s.v, *topo.edge_src);
  Var v_dst = index_select0(s.v, *topo.edge_dst);
  Var f_v = cat({v_src, v_dst, s.e}, 1);
  Var msg = mul(ea, atom_mlp_.forward(f_v));
  Var agg = index_add0(topo.num_atoms, *topo.edge_src, msg);
  return add(s.v, atom_proj_.forward(agg));
}

void InteractionBlock::apply(BlockState& s, const GraphTopo& topo,
                             const Var& ea, const Var& eb) const {
  Var v_new = atom_conv(s, topo, ea);
  if (last_ || topo.num_angles == 0) {
    s.v = v_new;
    return;
  }

  // Bond/Angle convolutions.  Eq. 10 uses the fresh v^{t+1} (and, for the
  // angle update, the fresh e^{t+1}); Eq. 11 uses the stale features, which
  // makes the BondConv and AngleUpdate inputs identical.
  const Var& v_for_bond = eliminate_deps_ ? s.v : v_new;
  Var v_center = index_select0(v_for_bond, *topo.angle_center);
  Var e1 = index_select0(s.e, *topo.angle_e1);
  Var e2 = index_select0(s.e, *topo.angle_e2);
  Var f_e = cat({v_center, e1, e2, s.a}, 1);  // [G,4C]

  Var w = mul(index_select0(eb, *topo.angle_e1),
              index_select0(eb, *topo.angle_e2));
  Var bond_msg = mul(w, bond_mlp_.forward(f_e));
  Var bond_agg = index_add0(topo.num_edges, *topo.angle_e1, bond_msg);
  Var bond_upd = bond_proj_.forward(bond_agg);
  // Zero-angle structures in a mixed batch: their aggregate is exactly zero,
  // but the projection bias is not -- mask it off so their bonds match the
  // single-structure path (which skips this update) bit for bit.
  if (topo.bond_update_mask.defined()) {
    bond_upd = mul(topo.bond_update_mask, bond_upd);
  }
  Var e_new = add(s.e, bond_upd);

  Var a_new;
  if (eliminate_deps_) {
    // Eq. 11: AngleUpdate shares f_e exactly -- no regathering, no
    // dependency on e^{t+1}.
    a_new = add(s.a, angle_mlp_.forward(f_e));
  } else {
    // Eq. 10: AngleUpdate rebuilds its input from the *updated* bonds.
    Var e1n = index_select0(e_new, *topo.angle_e1);
    Var e2n = index_select0(e_new, *topo.angle_e2);
    Var f_a = cat({v_center, e1n, e2n, s.a}, 1);
    a_new = add(s.a, angle_mlp_.forward(f_a));
  }

  s.v = v_new;
  s.e = e_new;
  s.a = a_new;
}

}  // namespace fastchg::model
