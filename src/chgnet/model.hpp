// CHGNet / FastCHGNet model.
//
// A single class implements both: every optimization the paper describes is
// an independent switch in ModelConfig (see config.hpp), so the Fig. 8
// step-by-step ablation, the Table-I accuracy comparison and the Table-II
// MD benchmark all run through this one forward implementation.
//
// Forward pipeline:
//   1. geometry + basis      (Alg. 1 serial per-sample  OR  Alg. 2 batched)
//   2. feature embedding     (Eq. 2; packed GEMM when packed_linears)
//   3. num_layers interaction blocks (Eq. 10 or Eq. 11)
//   4. readout: energy (+magmom) always; force/stress either by autograd
//      differentiation of the energy (reference; needs double backward in
//      training) or by the decoupled Force/Stress heads (FastCHGNet).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "basis/fourier.hpp"
#include "basis/rbf.hpp"
#include "chgnet/embedding_layer.hpp"
#include "chgnet/interaction.hpp"
#include "chgnet/readout.hpp"
#include "data/batch.hpp"
#include "fastchgnet/heads.hpp"

namespace fastchg::model {

struct ModelOutput {
  Var energy_per_atom;  ///< [S,1] eV/atom
  Var forces;           ///< [A,3] eV/A
  Var stress;           ///< [S,9] eV/A^3
  Var magmom;           ///< [A,1] mu_B
};

enum class ForwardMode {
  kTrain,  ///< derivative readout uses create_graph=true (2nd order ready)
  kEval,   ///< no training graph; decoupled models run fully grad-free
};

class CHGNet : public nn::Module {
 public:
  explicit CHGNet(const ModelConfig& cfg, std::uint64_t seed = 0);

  ModelOutput forward(const data::Batch& b,
                      ForwardMode mode = ForwardMode::kTrain) const;

  const ModelConfig& config() const { return cfg_; }

  /// Install per-species reference energies (CHGNet's AtomRef composition
  /// model; typically fitted by train::fit_atom_ref).  `e0` is indexed by
  /// atomic number and must have num_species + 1 entries.  The reference is
  /// a fixed additive term: it shifts energies but not forces or stress.
  /// Takes the vector by value and adopts its buffer as tensor storage
  /// (callers passing an rvalue pay zero copies).
  void set_atom_ref(std::vector<float> e0);
  bool has_atom_ref() const { return atom_ref_.defined(); }
  /// The installed reference-energy table (undefined Tensor when absent);
  /// exposed so full-state checkpoints can persist it.
  const Tensor& atom_ref() const { return atom_ref_; }

 private:
  struct BasisOut {
    Var pos;                  ///< [A,3] (strained when derivatives needed)
    std::vector<Var> strains; ///< S x [3,3], empty on the decoupled path
    Var rij;                  ///< [E,3]
    Var rlen;                 ///< [E,1]
    Var rbf;                  ///< [E,num_radial]
    Var fourier;              ///< [G,num_angular]; undefined when G == 0
  };

  BasisOut compute_basis_serial(const data::Batch& b, bool with_strain) const;
  BasisOut compute_basis_batched(const data::Batch& b,
                                 bool with_strain) const;
  /// Angle cosine/acos from bond vectors for a [G] slice of the angle lists.
  Var angles_from_rij(const Var& rij, const Var& rlen,
                      const std::vector<index_t>& e1,
                      const std::vector<index_t>& e2) const;

  ModelConfig cfg_;
  Rng init_rng_;  ///< declared before the submodules; consumed at init only
  FeatureEmbedding embed_;
  basis::RadialBasis rbf_;
  basis::AngularBasis fourier_;
  std::vector<std::unique_ptr<InteractionBlock>> blocks_;
  EnergyHead energy_head_;
  MagmomHead magmom_head_;
  std::optional<ForceHead> force_head_;    ///< decoupled_heads only
  std::optional<StressHead> stress_head_;  ///< decoupled_heads only
  Tensor atom_ref_;                        ///< [num_species+1, 1] or undefined
};

/// Convenience factory: FastCHGNet as published ("F/S head" variant).
std::unique_ptr<CHGNet> make_fastchgnet(std::uint64_t seed = 0);
/// Reference CHGNet.
std::unique_ptr<CHGNet> make_reference_chgnet(std::uint64_t seed = 0);

}  // namespace fastchg::model
