#include "chgnet/config.hpp"

#include "core/error.hpp"

namespace fastchg::model {

ModelConfig ModelConfig::reference() { return ModelConfig{}; }

ModelConfig ModelConfig::fast() {
  ModelConfig c;
  c.batched_basis = true;
  c.fused_kernels = true;
  c.factored_envelope = true;
  c.packed_linears = true;
  c.dependency_elimination = true;
  c.decoupled_heads = true;
  return c;
}

ModelConfig ModelConfig::fast_no_head() {
  ModelConfig c = fast();
  c.decoupled_heads = false;
  return c;
}

ModelConfig ModelConfig::optimization_stage(int stage) {
  FASTCHG_CHECK(stage >= 0 && stage <= 3,
                "optimization_stage: " << stage << " not in [0,3]");
  ModelConfig c;
  if (stage >= 1) c.batched_basis = true;
  if (stage >= 2) {
    c.fused_kernels = true;
    c.factored_envelope = true;
    c.packed_linears = true;
    c.dependency_elimination = true;
  }
  if (stage >= 3) c.decoupled_heads = true;
  return c;
}

std::string ModelConfig::tag() const {
  if (!batched_basis && !fused_kernels && !decoupled_heads) {
    return "CHGNet(reference)";
  }
  std::string t = "FastCHGNet[";
  t += batched_basis ? "batched" : "serial";
  if (fused_kernels) t += "+fused";
  if (decoupled_heads) t += "+heads";
  t += "]";
  return t;
}

}  // namespace fastchg::model
