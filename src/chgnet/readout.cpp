#include "chgnet/readout.hpp"

#include "autograd/ops.hpp"
#include "perf/trace.hpp"

namespace fastchg::model {

using namespace ag::ops;

EnergyHead::EnergyHead(const ModelConfig& cfg, Rng& rng)
    : fc1_(cfg.feat_dim, cfg.feat_dim, rng), fc2_(cfg.feat_dim, 1, rng) {
  add_child("fc1", &fc1_);
  add_child("fc2", &fc2_);
}

Var EnergyHead::forward(const Var& atom_feat,
                        const std::vector<index_t>& atom_struct,
                        index_t num_structs,
                        const std::vector<index_t>& natoms) const {
  perf::TraceSpan span("readout.energy", "model");
  Var per_atom = fc2_.forward(silu(fc1_.forward(atom_feat)));  // [A,1]
  Var per_struct = index_add0(num_structs, atom_struct, per_atom);  // [S,1]
  Tensor inv_n = Tensor::empty({num_structs, 1});
  for (index_t s = 0; s < num_structs; ++s) {
    inv_n.data()[s] =
        1.0f / static_cast<float>(natoms[static_cast<std::size_t>(s)]);
  }
  return mul(per_struct, constant(std::move(inv_n)));  // energy per atom
}

MagmomHead::MagmomHead(const ModelConfig& cfg, Rng& rng)
    : proj_(cfg.feat_dim, 1, rng) {
  add_child("proj", &proj_);
}

Var MagmomHead::forward(const Var& atom_feat) const {
  perf::TraceSpan span("readout.magmom", "model");
  return proj_.forward(atom_feat);
}

}  // namespace fastchg::model
