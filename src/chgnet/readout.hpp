// Output layer (paper Sec. II-B (4)): energy is a nonlinear projection of
// the final atom features summed per structure; the magmom head is a linear
// projection per atom.  Force/stress are produced either by automatic
// differentiation of the energy (reference) or by the decoupled heads in
// src/fastchgnet/heads.hpp.
#pragma once

#include <vector>

#include "chgnet/config.hpp"
#include "nn/linear.hpp"

namespace fastchg::model {

using ag::Var;

class EnergyHead : public nn::Module {
 public:
  EnergyHead(const ModelConfig& cfg, Rng& rng);

  /// Final atom features [A,C] -> energy per atom [S,1] (the mean of the
  /// per-atom contributions of each structure).
  Var forward(const Var& atom_feat, const std::vector<index_t>& atom_struct,
              index_t num_structs,
              const std::vector<index_t>& natoms) const;

 private:
  nn::Linear fc1_, fc2_;
};

class MagmomHead : public nn::Module {
 public:
  MagmomHead(const ModelConfig& cfg, Rng& rng);
  /// Final atom features [A,C] -> magnetic moments [A,1].
  Var forward(const Var& atom_feat) const;

 private:
  nn::Linear proj_;
};

}  // namespace fastchg::model
