// Model configuration.  All optimization switches off reproduces reference
// CHGNet; all on reproduces FastCHGNet ("F/S head"); all on except
// decoupled_heads is the paper's FastCHGNet "w/o head" variant.  The Fig. 8
// step-by-step ablation walks through optimization_stage(0..3).
#pragma once

#include <string>

#include "core/tensor.hpp"

namespace fastchg::model {

struct ModelConfig {
  index_t feat_dim = 64;      ///< atom/bond/angle feature width (paper: 64)
  index_t num_radial = 31;    ///< radial basis size (paper: 31)
  index_t num_angular = 31;   ///< angular basis size (paper: 31, odd)
  index_t num_layers = 3;     ///< interaction blocks (paper: 3)
  index_t num_species = 96;   ///< embedding rows (89 elements + margin)
  int envelope_p = 8;         ///< smoothing coefficient p (paper: 8)
  double atom_cutoff = 6.0;   ///< A; must match the dataset's GraphConfig
  double bond_cutoff = 3.0;

  // ---- optimization switches (all false = reference CHGNet) ----
  bool batched_basis = false;        ///< Alg. 2 batched basis vs Alg. 1 serial
  bool fused_kernels = false;        ///< fused sRBF / Fourier / GatedMLP / LN
  bool factored_envelope = false;    ///< Eq. 13 redundancy bypass vs Eq. 12
  bool packed_linears = false;       ///< Fig. 3a weight-concat GEMM packing
  bool dependency_elimination = false;  ///< Eq. 11 stale-feature block
  bool decoupled_heads = false;      ///< Force/Stress heads vs derivatives
  /// Read the magmom head from the features *entering* the final
  /// interaction block instead of the final atom features (real CHGNet
  /// supervises site magmoms on intermediate features).  Off by default to
  /// keep this repo's pinned golden values stable.
  bool magmom_intermediate = false;

  /// Reference CHGNet (v0.3.0-like).
  static ModelConfig reference();
  /// FastCHGNet, "F/S head" row of Table I.
  static ModelConfig fast();
  /// FastCHGNet, "w/o head" row of Table I (derivative F/S retained).
  static ModelConfig fast_no_head();
  /// Fig. 8 step-by-step: 0 = reference, 1 = +parallel basis,
  /// 2 = +kernel fusion & redundancy bypass, 3 = +decoupling.
  static ModelConfig optimization_stage(int stage);
  /// Human-readable tag for bench output.
  std::string tag() const;
};

}  // namespace fastchg::model
