// Feature embedding (paper Eq. 2): atomic numbers -> node features, radial
// basis -> {bond feature e^0, atom-conv weights e^a, bond-conv weights e^b}
// via three linears sharing the same sRBF input (packed into one GEMM when
// packed_linears is on -- Fig. 3a), angular basis -> angle features.
#pragma once

#include <vector>

#include "chgnet/config.hpp"
#include "nn/embedding.hpp"
#include "nn/linear.hpp"

namespace fastchg::model {

using ag::Var;

class FeatureEmbedding : public nn::Module {
 public:
  FeatureEmbedding(const ModelConfig& cfg, Rng& rng);

  /// Atomic numbers -> [A,C].
  Var atoms(const std::vector<index_t>& species) const;

  struct BondFeatures {
    Var e0;  ///< [E,C] initial bond features
    Var ea;  ///< [E,C] atom-conv weights
    Var eb;  ///< [E,C] bond-conv weights
  };
  /// Radial basis [E,B] -> the three bond tensors.
  BondFeatures bonds(const Var& rbf) const;

  /// Angular basis [G,B] -> [G,C].
  Var angles(const Var& fourier) const;

 private:
  bool packed_;
  nn::Embedding atom_embed_;
  // Unpacked path: three separate shared-input linears (reference CHGNet).
  nn::Linear bond_e0_, bond_ea_, bond_eb_;
  // Packed path: one [B, 3C] GEMM (FastCHGNet).
  nn::PackedLinear bond_packed_;
  nn::Linear angle_feat_;
};

}  // namespace fastchg::model
