// Data-parallel training over a virtual GPU cluster.
//
// Each virtual device holds a full parameter replica (exactly like DDP).
// Devices execute their shard sequentially on this machine; the per-device
// compute is *measured*, the gradient all-reduce is performed for real
// (tensor averaging across replicas) while its wall time comes from the
// ring cost model, and the simulated step time is
//     max_d(compute_d) + exposed_allreduce + exposed_h2d.
// The optimizer then steps every replica with identical averaged gradients,
// keeping all replicas bit-identical (asserted in tests), which is the DDP
// invariant.
#pragma once

#include <memory>
#include <vector>

#include "parallel/bucketing.hpp"
#include "parallel/comm_model.hpp"
#include "parallel/sampler.hpp"
#include "train/trainer.hpp"

namespace fastchg::parallel {

struct DataParallelConfig {
  int num_devices = 4;
  index_t global_batch = 32;
  bool load_balance = true;   ///< Fig. 4 sampler vs default sharding
  bool overlap_comm = true;   ///< bucketed all-reduce overlap
  bool prefetch = true;       ///< H2D double buffering
  CommConfig comm;
  float base_lr = 3e-4f;
  bool scale_lr = true;       ///< Eq. 14 on the *global* batch
  index_t lr_k = 128;
  train::LossWeights weights;
  float huber_delta = 0.1f;
  bool fit_atom_ref = true;  ///< fit the AtomRef baseline on first epoch
  std::uint64_t seed = 0;
};

struct IterationTiming {
  std::vector<double> device_compute_s;  ///< measured per device
  double max_compute_s = 0.0;
  double comm_s = 0.0;          ///< raw all-reduce time (model)
  double exposed_comm_s = 0.0;  ///< after overlap
  double h2d_s = 0.0;
  double exposed_h2d_s = 0.0;
  double step_s = 0.0;          ///< simulated wall time of the step
};

struct EpochResult {
  double simulated_seconds = 0.0;  ///< sum of step_s (virtual cluster)
  double measured_seconds = 0.0;   ///< actual wall time on this machine
  double mean_loss = 0.0;
  std::vector<IterationTiming> iterations;
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(const model::ModelConfig& mcfg,
                      const DataParallelConfig& cfg,
                      std::uint64_t model_seed = 0);

  EpochResult train_epoch(const data::Dataset& ds,
                          const std::vector<index_t>& rows, index_t epoch);

  int num_devices() const { return cfg_.num_devices; }
  const model::CHGNet& replica(int d) const { return *replicas_[d]; }
  model::CHGNet& master() { return *replicas_[0]; }
  float effective_lr() const { return lr_; }

  /// Max elementwise parameter difference across replicas (DDP invariant).
  float replica_divergence() const;

  /// Bytes of gradient traffic per all-reduce (= model size in bytes).
  std::uint64_t gradient_bytes() const;

  /// DDP-style gradient buckets used by the comm-cost accounting.
  int num_gradient_buckets() const { return num_buckets_; }

 private:
  void all_reduce_gradients();

  DataParallelConfig cfg_;
  std::vector<std::unique_ptr<model::CHGNet>> replicas_;
  std::vector<std::unique_ptr<train::Adam>> opts_;
  float lr_;
  int num_buckets_ = 1;
};

/// Rough per-shard H2D payload: positions, labels, images, index arrays.
std::uint64_t shard_bytes(const data::Dataset& ds,
                          const std::vector<index_t>& rows);

}  // namespace fastchg::parallel
