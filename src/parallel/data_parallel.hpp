// Data-parallel training over a virtual GPU cluster.
//
// Each virtual device holds a full parameter replica (exactly like DDP).
// Devices execute their shard sequentially on this machine; the per-device
// compute is *measured*, the gradient all-reduce is performed for real
// (tensor averaging across replicas) while its wall time comes from the
// ring cost model, and the simulated step time is
//     max_d(compute_d) + exposed_allreduce + exposed_h2d.
// The optimizer then steps every replica with identical averaged gradients,
// keeping all replicas bit-identical (asserted in tests), which is the DDP
// invariant.
//
// Fault tolerance (see fault.hpp and docs/virtual_cluster.md):
//   * a FaultPlan can kill devices, slow them down, or degrade the links;
//   * on device failure the trainer recovers *elastically*: the ring
//     shrinks to the survivors, the remaining rows are re-sharded through
//     the sampler, the LR is rescaled per Eq. 14 for the reduced global
//     batch, and the ring re-form + parameter re-broadcast is charged to
//     the step time;
//   * on device join the ring grows back: the lead replica streams its full
//     state (params + Adam moments + AtomRef) to the joiner through a
//     fixed-size staging buffer (train::StateStreamer, so a join never
//     spikes bytes_peak), the unconsumed rows are re-sharded across the
//     enlarged ring, the LR rescales back up (inverse Eq. 14), and the
//     broadcast + ring re-form is charged to the step time in its own
//     `join` trace lane;
//   * a non-finite loss/gradient guard skips the poisoned step (replicas
//     skip together, preserving the DDP invariant) and backs off the LR;
//   * a divergence watchdog re-broadcasts from the lead replica if the
//     bit-identity invariant is ever violated;
//   * save_checkpoint / resume persist the full training state (weights,
//     Adam moments, LR, alive set) for bit-identical continuation.
#pragma once

#include <memory>
#include <vector>

#include "parallel/bucketing.hpp"
#include "parallel/comm_model.hpp"
#include "parallel/fault.hpp"
#include "parallel/sampler.hpp"
#include "train/trainer.hpp"

namespace fastchg::parallel {

struct DataParallelConfig {
  int num_devices = 4;
  index_t global_batch = 32;
  bool load_balance = true;   ///< Fig. 4 sampler vs default sharding
  bool overlap_comm = true;   ///< bucketed all-reduce overlap
  bool prefetch = true;       ///< H2D double buffering
  CommConfig comm;
  float base_lr = 3e-4f;
  bool scale_lr = true;       ///< Eq. 14 on the *global* batch
  index_t lr_k = 128;
  train::LossWeights weights;
  float huber_delta = 0.1f;
  bool fit_atom_ref = true;  ///< fit the AtomRef baseline on first epoch
  std::uint64_t seed = 0;
  /// Skip optimizer steps whose loss or averaged gradient is non-finite
  /// and multiply the LR by `lr_backoff` (replicas skip together).
  bool guard_nonfinite = true;
  float lr_backoff = 0.5f;
  /// Replica-divergence watchdog: every N iterations compare the replicas
  /// elementwise and re-broadcast from the lead replica when the worst
  /// difference exceeds `divergence_tolerance`.  0 = off (the invariant is
  /// already asserted in tests; the watchdog is for belt-and-braces runs).
  index_t divergence_check_every = 0;
  float divergence_tolerance = 0.0f;
};

struct IterationTiming {
  std::vector<double> device_compute_s;  ///< measured per *alive* device
  double max_compute_s = 0.0;
  double comm_s = 0.0;          ///< raw all-reduce time (model)
  double exposed_comm_s = 0.0;  ///< after overlap
  double h2d_s = 0.0;
  double exposed_h2d_s = 0.0;
  double recovery_s = 0.0;      ///< ring re-form + re-broadcast charged here
  double join_s = 0.0;          ///< join re-form + state broadcast charged here
  double step_s = 0.0;          ///< simulated wall time of the step
  int num_alive = 0;            ///< ring size during this iteration
};

struct EpochResult {
  double simulated_seconds = 0.0;  ///< sum of step_s (virtual cluster)
  double measured_seconds = 0.0;   ///< actual wall time on this machine
  double mean_loss = 0.0;
  std::vector<IterationTiming> iterations;
  index_t skipped_steps = 0;       ///< non-finite guard activations
  std::vector<int> failed_devices; ///< devices lost this epoch
  std::vector<int> joined_devices; ///< devices that rejoined this epoch
  index_t rebroadcasts = 0;        ///< divergence-watchdog repairs
  double recovery_seconds = 0.0;   ///< total simulated recovery cost
  double join_seconds = 0.0;       ///< total simulated join cost
};

class DataParallelTrainer {
 public:
  DataParallelTrainer(const model::ModelConfig& mcfg,
                      const DataParallelConfig& cfg,
                      std::uint64_t model_seed = 0);

  /// Train one epoch; `faults` (optional) injects failures / stragglers /
  /// comm degradation / joins at epoch-local iterations.  Devices that fail
  /// stay dead for subsequent epochs unless a join event brings them back.
  EpochResult train_epoch(const data::Dataset& ds,
                          const std::vector<index_t>& rows, index_t epoch,
                          const FaultPlan* faults = nullptr);

  int num_devices() const { return cfg_.num_devices; }
  /// Devices still in the ring (all of them until a failure is injected).
  int num_alive() const { return static_cast<int>(alive_.size()); }
  const std::vector<int>& alive_devices() const { return alive_; }

  const model::CHGNet& replica(int d) const { return *replicas_[d]; }
  /// Mutable replica access (tests use this to inject divergence).
  model::CHGNet& replica(int d) { return *replicas_[d]; }
  /// The lead replica: source of truth for checkpoints and re-broadcasts
  /// (the first surviving device).
  model::CHGNet& master() { return *replicas_[static_cast<std::size_t>(alive_.front())]; }
  float effective_lr() const { return lr_; }
  index_t skipped_steps() const { return skipped_steps_; }

  /// Max elementwise parameter difference across *alive* replicas (DDP
  /// invariant).
  float replica_divergence() const;

  /// Full-state checkpoint of the lead replica: weights, AtomRef, Adam
  /// moments, LR, guard state, the alive set, and `next_epoch` (the epoch
  /// a resumed run should pass to train_epoch).  Atomic write.
  void save_checkpoint(const std::string& path, index_t next_epoch) const;
  /// Restore a checkpoint into all replicas/optimizers; returns the stored
  /// next_epoch.
  index_t resume(const std::string& path);

  /// Bytes of gradient traffic per all-reduce (= model size in bytes).
  std::uint64_t gradient_bytes() const;

  /// DDP-style gradient buckets used by the comm-cost accounting.
  int num_gradient_buckets() const { return num_buckets_; }

  /// Device `d`'s memory pool.  Each virtual device owns one PoolAllocator:
  /// its replica's parameters, per-shard activations and gradients all live
  /// there, so replicas never contend on a shared free list or recycle each
  /// other's blocks (isolation is asserted in tests via
  /// Tensor::source_allocator()).
  const alloc::AllocatorPtr& device_pool(int d) const {
    return device_pools_[static_cast<std::size_t>(d)];
  }

  /// Device `d`'s recorded-step replay cache (core/replay.hpp).  One cache
  /// per virtual device: programs bake that replica's parameter/gradient
  /// pointers, so they must never be shared across replicas.
  const replay::ProgramCache& replay_cache(int d) const {
    return *replay_caches_[static_cast<std::size_t>(d)];
  }

 private:
  void all_reduce_gradients();
  /// Copy the lead replica's parameters over every other survivor.
  void broadcast_from_master();
  /// Eq. 14 LR for the current ring size, including guard backoff.
  float elastic_lr() const;
  /// Simulated cost of shrinking the ring and re-syncing parameters.
  double recovery_cost_seconds() const;
  /// Simulated cost of re-forming the enlarged ring plus streaming
  /// `state_bytes` of full replica state lead -> joiner(s).
  double join_cost_seconds(std::uint64_t state_bytes) const;

  DataParallelConfig cfg_;
  /// Simulated-clock cursor for the trace's per-device timeline lanes
  /// (advances by step_s per iteration, monotone across epochs).
  double sim_trace_cursor_s_ = 0.0;
  std::vector<std::unique_ptr<model::CHGNet>> replicas_;
  std::vector<std::unique_ptr<train::Adam>> opts_;
  std::vector<alloc::AllocatorPtr> device_pools_;  ///< one pool per device
  /// One replay program cache per device (keys are namespaced by device id
  /// as well, so even a hash collision cannot cross replicas).
  std::vector<std::unique_ptr<replay::ProgramCache>> replay_caches_;
  std::vector<int> alive_;  ///< device ids still in the ring, ascending
  float lr_;
  float backoff_scale_ = 1.0f;
  index_t skipped_steps_ = 0;
  int num_buckets_ = 1;
};

/// Rough per-shard H2D payload: positions, labels, images, index arrays.
std::uint64_t shard_bytes(const data::Dataset& ds,
                          const std::vector<index_t>& rows);

}  // namespace fastchg::parallel
