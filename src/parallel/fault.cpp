#include "parallel/fault.hpp"

#include <cctype>
#include <cstdlib>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace fastchg::parallel {

FaultPlan FaultPlan::random(std::uint64_t seed, int num_devices,
                            index_t iterations, double failure_prob,
                            double straggler_prob, double comm_prob) {
  FASTCHG_CHECK(num_devices >= 1, "FaultPlan::random: devices");
  Rng rng(seed);
  FaultPlan plan;
  for (index_t it = 0; it < iterations; ++it) {
    for (int d = 0; d < num_devices; ++d) {
      if (rng.uniform() < failure_prob) {
        plan.events.push_back({FaultKind::kDeviceFailure, it, d, 1.0, 1});
      }
      if (rng.uniform() < straggler_prob) {
        plan.events.push_back({FaultKind::kStraggler, it, d,
                               rng.uniform(2.0, 8.0), rng.randint(1, 3)});
      }
    }
    if (rng.uniform() < comm_prob) {
      plan.events.push_back({FaultKind::kCommDegrade, it, -1,
                             rng.uniform(2.0, 10.0), rng.randint(1, 3)});
    }
  }
  return plan;
}

namespace {

/// Split `s` on any of the characters in `seps`, dropping empty tokens.
std::vector<std::string> split_tokens(const std::string& s,
                                      const char* seps) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (std::string(seps).find(c) != std::string::npos) {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

long parse_long(const std::string& s, const std::string& token) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  FASTCHG_CHECK(end != nullptr && *end == '\0' && !s.empty(),
                "fault plan: bad integer '" << s << "' in '" << token << "'");
  return v;
}

double parse_double(const std::string& s, const std::string& token) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  FASTCHG_CHECK(end != nullptr && *end == '\0' && !s.empty(),
                "fault plan: bad number '" << s << "' in '" << token << "'");
  return v;
}

/// Split off an optional `*factor` and `#duration` suffix from `body`.
void parse_suffixes(std::string& body, const std::string& token,
                    double& factor, index_t& duration) {
  if (auto hash = body.find('#'); hash != std::string::npos) {
    duration =
        static_cast<index_t>(parse_long(body.substr(hash + 1), token));
    FASTCHG_CHECK(duration >= 1, "fault plan: duration must be >= 1 in '"
                                     << token << "'");
    body.erase(hash);
  }
  if (auto star = body.find('*'); star != std::string::npos) {
    factor = parse_double(body.substr(star + 1), token);
    FASTCHG_CHECK(factor >= 1.0, "fault plan: factor must be >= 1 in '"
                                     << token << "'");
    body.erase(star);
  }
}

}  // namespace

FaultPlan parse_fault_plan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& token : split_tokens(spec, ",;")) {
    FaultEvent ev;
    std::string body;
    if (token.rfind("fail:", 0) == 0) {
      ev.kind = FaultKind::kDeviceFailure;
      body = token.substr(5);
    } else if (token.rfind("join:", 0) == 0) {
      ev.kind = FaultKind::kDeviceJoin;
      body = token.substr(5);
    } else if (token.rfind("slow:", 0) == 0) {
      ev.kind = FaultKind::kStraggler;
      body = token.substr(5);
    } else if (token.rfind("comm@", 0) == 0) {
      ev.kind = FaultKind::kCommDegrade;
      body = token.substr(4);  // keep the '@' for uniform handling below
    } else {
      FASTCHG_CHECK(false, "fault plan: unknown event '"
                               << token
                               << "' (expected fail:D@I, join:D@I, "
                                  "slow:D@I*F#N, or comm@I*F#N)");
    }
    const auto at = body.find('@');
    FASTCHG_CHECK(at != std::string::npos,
                  "fault plan: missing '@iteration' in '" << token << "'");
    std::string iter_part = body.substr(at + 1);
    parse_suffixes(iter_part, token, ev.factor, ev.duration);
    ev.iteration = static_cast<index_t>(parse_long(iter_part, token));
    if (ev.kind != FaultKind::kCommDegrade) {
      ev.device = static_cast<int>(parse_long(body.substr(0, at), token));
      FASTCHG_CHECK(ev.device >= 0,
                    "fault plan: bad device in '" << token << "'");
    }
    FASTCHG_CHECK(ev.kind == FaultKind::kDeviceFailure ||
                      ev.kind == FaultKind::kDeviceJoin || ev.factor > 1.0,
                  "fault plan: '" << token
                                  << "' needs a *factor > 1 to have any "
                                     "effect");
    plan.events.push_back(ev);
  }
  return plan;
}

std::vector<int> FaultInjector::failures_at(index_t iter) const {
  std::vector<int> out;
  if (!plan_) return out;
  for (const FaultEvent& ev : plan_->events) {
    if (ev.kind == FaultKind::kDeviceFailure && ev.iteration == iter) {
      out.push_back(ev.device);
    }
  }
  return out;
}

std::vector<int> FaultInjector::joins_at(index_t iter) const {
  std::vector<int> out;
  if (!plan_) return out;
  for (const FaultEvent& ev : plan_->events) {
    if (ev.kind == FaultKind::kDeviceJoin && ev.iteration == iter) {
      out.push_back(ev.device);
    }
  }
  return out;
}

index_t FaultInjector::transient_failures_at(int device, index_t iter) const {
  index_t d = 0;
  if (!plan_) return d;
  for (const FaultEvent& ev : plan_->events) {
    if (ev.kind == FaultKind::kDeviceFailure && ev.device == device &&
        ev.iteration == iter) {
      d = std::max(d, ev.duration);
    }
  }
  return d;
}

double FaultInjector::compute_multiplier(int device, index_t iter) const {
  double f = 1.0;
  if (!plan_) return f;
  for (const FaultEvent& ev : plan_->events) {
    if (ev.kind == FaultKind::kStraggler && ev.device == device &&
        iter >= ev.iteration && iter < ev.iteration + ev.duration) {
      f *= ev.factor;
    }
  }
  return f;
}

double FaultInjector::comm_factor(index_t iter) const {
  double f = 1.0;
  if (!plan_) return f;
  for (const FaultEvent& ev : plan_->events) {
    if (ev.kind == FaultKind::kCommDegrade && iter >= ev.iteration &&
        iter < ev.iteration + ev.duration) {
      f *= ev.factor;
    }
  }
  return f;
}

}  // namespace fastchg::parallel
