// Interconnect cost model for the virtual-GPU cluster (DESIGN.md Sec. 2).
//
// Ring all-reduce of N bytes over P devices:
//   t = 2 (P-1)/P * N / BW  +  2 (P-1) * latency
// BW is the NVLink-class intra-node bandwidth while the ring fits on one
// node (paper: 4 GPUs/node) and the fat-tree InfiniBand bandwidth once it
// spans nodes -- this bandwidth cliff is what bends the paper's strong-
// scaling curve (efficiency 82.5% -> 66% from 8 to 32 GPUs).
//
// Overlap accounting mirrors the paper's "Communication Overlap" and "Data
// Prefetch" optimizations: bucketed all-reduce hides up to a fraction of the
// backward pass; prefetch hides host-to-device copies behind compute.
#pragma once

#include <cstdint>

namespace fastchg::parallel {

struct CommConfig {
  double intra_node_bw = 150e9;  ///< B/s effective all-reduce bandwidth (NVLink)
  double inter_node_bw = 18e9;   ///< B/s across the fat-tree
  double latency = 15e-6;        ///< s per intra-node ring hop (alpha_intra)
  double inter_latency = 25e-6;  ///< s per fat-tree hop (alpha_inter)
  int gpus_per_node = 4;         ///< paper: 4 GPUs used per node
  double h2d_bw = 24e9;          ///< B/s PCIe host-to-device
  /// Gradient bucketing: the model's many small parameter tensors are
  /// reduced in `buckets` separate all-reduce calls (DDP-style).  Each call
  /// pays the full ring latency; only the bandwidth part can hide behind
  /// the backward pass.
  int buckets = 40;
  /// Two-level all-reduce when the ring spans nodes: reduce-scatter within
  /// each node over NVLink, ring the node leaders over the fat-tree, then
  /// broadcast the result back intra-node (NCCL-style).  Cheaper than a
  /// flat inter-node ring, whose every hop pays the fat-tree alpha.
  ///
  /// This switch selects the COST model and trace decomposition only: the
  /// gradient averaging arithmetic is canonical (ascending device order)
  /// in both modes, so hierarchical and flat runs are bit-identical.
  bool hierarchical = true;
};

/// Ring all-reduce wall time for `bytes` over `num_devices` in ONE call.
double ring_allreduce_seconds(std::uint64_t bytes, int num_devices,
                              const CommConfig& cfg = {});

/// Bucketed all-reduce cost, split into the overlappable bandwidth part and
/// the per-bucket latency part that stays exposed.  When the two-level
/// schedule is active the three phase fields decompose the same total
/// (reduce_scatter_s + leader_ring_s + broadcast_s == total()); they stay
/// zero for flat or single-node rings.
struct AllReduceCost {
  double bandwidth_s = 0.0;
  double latency_s = 0.0;
  double reduce_scatter_s = 0.0;  ///< intra-node reduce-scatter phase
  double leader_ring_s = 0.0;     ///< inter-node ring across group leaders
  double broadcast_s = 0.0;       ///< intra-node broadcast of the result
  double total() const { return bandwidth_s + latency_s; }
};
AllReduceCost bucketed_allreduce_cost(std::uint64_t bytes, int num_devices,
                                      const CommConfig& cfg = {});

/// Exposed (non-hidden) communication when gradient bucketing overlaps the
/// all-reduce with up to `overlap_fraction` of the backward pass.
double exposed_comm_seconds(double comm_s, double backward_s, bool overlap,
                            double overlap_fraction = 0.8);

/// Host-to-device copy time for `bytes`.
double h2d_seconds(std::uint64_t bytes, const CommConfig& cfg = {});

/// Exposed copy time with/without the prefetch pipeline (double-buffering
/// hides the copy behind the previous iteration's compute).
double exposed_h2d_seconds(double copy_s, double compute_s, bool prefetch);

}  // namespace fastchg::parallel
