#include "parallel/data_parallel.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "autograd/ops.hpp"
#include "perf/timer.hpp"
#include "perf/trace.hpp"
#include "train/atom_ref.hpp"
#include "train/checkpoint.hpp"

namespace fastchg::parallel {

namespace {

/// Key namespace for DP device replay sites; the device id is mixed in so
/// two replicas never alias keys (their programs bake different pointers).
constexpr std::uint64_t kDpReplaySeed = 0x4450444556ull;  // "DPDEV"

std::vector<Tensor> replay_stable(const std::vector<ag::Var>& params) {
  std::vector<Tensor> v;
  v.reserve(2 * params.size());
  for (const ag::Var& p : params) {
    v.push_back(p.value());
    v.push_back(p.grad());
  }
  return v;
}

bool grads_warm(const std::vector<ag::Var>& params) {
  for (const ag::Var& p : params) {
    if (!p.has_grad()) return false;
  }
  return true;
}

}  // namespace

DataParallelTrainer::DataParallelTrainer(const model::ModelConfig& mcfg,
                                         const DataParallelConfig& cfg,
                                         std::uint64_t model_seed)
    : cfg_(cfg),
      lr_(cfg.scale_lr
              ? train::scaled_init_lr(cfg.global_batch, cfg.lr_k, cfg.base_lr)
              : cfg.base_lr) {
  FASTCHG_CHECK(cfg.num_devices >= 1, "DataParallelTrainer: devices");
  FASTCHG_CHECK(cfg.global_batch % cfg.num_devices == 0,
                "DataParallelTrainer: global batch "
                    << cfg.global_batch << " not divisible by "
                    << cfg.num_devices
                    << " devices (elastic recovery keeps the per-device "
                       "batch fixed)");
  for (int d = 0; d < cfg.num_devices; ++d) {
    // One pool per virtual device, installed while the replica and its
    // optimizer state are built so their tensors live in the device's pool
    // from the start (mirrors per-GPU caching-allocator instances).
    device_pools_.push_back(std::make_shared<alloc::PoolAllocator>());
    alloc::ArenaScope arena(device_pools_.back());
    replicas_.push_back(std::make_unique<model::CHGNet>(mcfg, model_seed));
    if (d > 0) replicas_[static_cast<std::size_t>(d)]->copy_parameters_from(*replicas_[0]);
    opts_.push_back(std::make_unique<train::Adam>(
        replicas_.back()->parameters(), lr_));
    replay_caches_.push_back(std::make_unique<replay::ProgramCache>(8));
    alive_.push_back(d);
  }
  // DDP-style 64 KiB gradient buckets determine the all-reduce call count
  // in the comm-cost accounting.
  num_buckets_ = static_cast<int>(
      make_gradient_buckets(replicas_[0]->parameters(), 64 * 1024).size());
}

std::uint64_t DataParallelTrainer::gradient_bytes() const {
  return tensor_bytes(replicas_[0]->num_parameters());
}

float DataParallelTrainer::elastic_lr() const {
  const index_t per_device = cfg_.global_batch / cfg_.num_devices;
  const index_t global = per_device * static_cast<index_t>(alive_.size());
  const float base = cfg_.scale_lr
                         ? train::scaled_init_lr(global, cfg_.lr_k,
                                                 cfg_.base_lr)
                         : cfg_.base_lr;
  return base * backoff_scale_;
}

double DataParallelTrainer::join_cost_seconds(
    std::uint64_t state_bytes) const {
  // Re-forming the enlarged ring costs the same barrier as a shrink, plus
  // the full-state broadcast streamed lead -> joiner (params + both Adam
  // moments + AtomRef), paid at the slower tier once the grown ring spans
  // nodes: a joiner generally lands wherever the scheduler has capacity.
  const int p = num_alive();
  const bool spans = p > cfg_.comm.gpus_per_node;
  const double bw = spans ? cfg_.comm.inter_node_bw : cfg_.comm.intra_node_bw;
  const double lat = spans ? cfg_.comm.inter_latency : cfg_.comm.latency;
  return 2.0 * (p - 1) * cfg_.comm.latency + lat +
         static_cast<double>(state_bytes) / bw;
}

double DataParallelTrainer::recovery_cost_seconds() const {
  // Re-forming the ring costs a barrier over the survivors (NCCL-style
  // communicator re-init, charged as one latency per hop in each
  // direction) plus a parameter re-broadcast so every survivor provably
  // holds the same weights -- same traffic shape as one all-reduce.
  const int p = num_alive();
  if (p <= 1) return 2.0 * cfg_.comm.latency;  // lone survivor: barrier only
  return 2.0 * (p - 1) * cfg_.comm.latency +
         ring_allreduce_seconds(gradient_bytes(), p, cfg_.comm);
}

void DataParallelTrainer::all_reduce_gradients() {
  // Average gradients across the surviving replicas -- the arithmetic NCCL
  // would do on the shrunken communicator.
  std::vector<std::vector<ag::Var>> params;
  params.reserve(alive_.size());
  for (int d : alive_) {
    params.push_back(replicas_[static_cast<std::size_t>(d)]->parameters());
  }
  const float inv_p = 1.0f / static_cast<float>(params.size());
  for (std::size_t i = 0; i < params[0].size(); ++i) {
    // Some replicas may lack a grad (e.g. parameter unused on a shard with
    // no angles); treat missing as zero.
    Tensor sum = Tensor::zeros(params[0][i].shape());
    for (auto& dev_params : params) {
      if (dev_params[i].has_grad()) sum.add_(dev_params[i].grad());
    }
    sum.mul_(inv_p);
    for (auto& dev_params : params) {
      // Copy into the existing accumulator rather than replacing its
      // storage: replay programs bake the gradient pointers (and so does
      // Adam's hot loop), so the all-reduce must keep them stable.
      ag::Var& p = dev_params[i];
      if (p.has_grad()) {
        std::copy(sum.data(), sum.data() + sum.numel(),
                  p.mutable_grad().data());
      } else {
        p.set_grad(sum.clone());
      }
    }
  }
}

void DataParallelTrainer::broadcast_from_master() {
  const model::CHGNet& src = *replicas_[static_cast<std::size_t>(alive_.front())];
  for (std::size_t i = 1; i < alive_.size(); ++i) {
    replicas_[static_cast<std::size_t>(alive_[i])]->copy_parameters_from(src);
  }
}

float DataParallelTrainer::replica_divergence() const {
  float worst = 0.0f;
  auto ref = replicas_[static_cast<std::size_t>(alive_.front())]->parameters();
  for (std::size_t d = 1; d < alive_.size(); ++d) {
    auto other = replicas_[static_cast<std::size_t>(alive_[d])]->parameters();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const float* a = ref[i].value().data();
      const float* b = other[i].value().data();
      for (index_t k = 0; k < ref[i].numel(); ++k) {
        worst = std::max(worst, std::fabs(a[k] - b[k]));
      }
    }
  }
  return worst;
}

std::uint64_t shard_bytes(const data::Dataset& ds,
                          const std::vector<index_t>& rows) {
  std::uint64_t bytes = 0;
  for (index_t row : rows) {
    const data::GraphData& g = ds[row].graph;
    // positions + forces [A,3]*2, magmom [A], edge images [E,3],
    // src/dst int64 [E]*2, angle indices [G]*2, misc labels.
    bytes += static_cast<std::uint64_t>(g.num_atoms) * (7 * 4);
    bytes += static_cast<std::uint64_t>(g.num_edges()) * (3 * 4 + 2 * 8);
    bytes += static_cast<std::uint64_t>(g.num_angles()) * (2 * 8);
    bytes += 64;  // lattice, energy, stress
  }
  return bytes;
}

EpochResult DataParallelTrainer::train_epoch(
    const data::Dataset& ds, const std::vector<index_t>& rows,
    index_t epoch, const FaultPlan* faults) {
  perf::Timer wall;
  EpochResult result;

  if (cfg_.fit_atom_ref && !master().has_atom_ref()) {
    const std::vector<float> e0 = train::fit_atom_ref(
        ds, rows, master().config().num_species);
    for (auto& r : replicas_) r->set_atom_ref(e0);
  }

  const FaultInjector inj(faults);
  const index_t per_device = cfg_.global_batch / cfg_.num_devices;
  const std::vector<index_t> loads = sample_workloads(ds);
  const auto make_plan = [&](const std::vector<index_t>& rws) {
    SamplerConfig scfg;
    scfg.num_devices = num_alive();
    scfg.global_batch = per_device * static_cast<index_t>(alive_.size());
    scfg.seed = cfg_.seed + static_cast<std::uint64_t>(epoch);
    return cfg_.load_balance ? load_balance_sharding(rws, loads, scfg)
                             : default_sharding(rws, loads, scfg);
  };
  ShardPlan plan = make_plan(rows);

  double loss_sum = 0.0;
  index_t loss_count = 0;
  index_t iter = 0;       // epoch-local, monotone across re-sharding
  std::size_t pos = 0;    // iterations consumed from the current plan
  double pending_recovery_s = 0.0;
  double pending_join_s = 0.0;
  // Rows not yet consumed from the current plan — both elastic transitions
  // (shrink and join) re-shard exactly this set over the new ring.
  const auto collect_remaining = [&plan, &pos]() {
    std::vector<index_t> remaining;
    for (std::size_t i = pos; i < plan.iterations.size(); ++i) {
      for (const auto& shard : plan.iterations[i]) {
        remaining.insert(remaining.end(), shard.begin(), shard.end());
      }
    }
    return remaining;
  };
  while (pos < plan.iterations.size()) {
    // -- failures scheduled for this iteration: shrink the ring, re-shard
    //    the unconsumed rows, rescale the LR (Eq. 14 on the new global
    //    batch), and charge the ring re-form to the next step.
    std::vector<int> failed;
    for (int d : inj.failures_at(iter)) {
      if (std::find(alive_.begin(), alive_.end(), d) != alive_.end()) {
        failed.push_back(d);
      }
    }
    if (!failed.empty()) {
      for (int d : failed) {
        alive_.erase(std::remove(alive_.begin(), alive_.end(), d),
                     alive_.end());
        result.failed_devices.push_back(d);
      }
      FASTCHG_CHECK(!alive_.empty(),
                    "DataParallelTrainer: every device failed at iteration "
                        << iter << " of epoch " << epoch);
      const std::vector<index_t> remaining = collect_remaining();
      lr_ = elastic_lr();
      for (int d : alive_) {
        opts_[static_cast<std::size_t>(d)]->set_lr(lr_);
      }
      const double reform = recovery_cost_seconds();
      pending_recovery_s += reform;
      result.recovery_seconds += reform;
      plan = make_plan(remaining);
      pos = 0;
      if (plan.iterations.empty()) break;  // too few rows left for a batch
    }

    // -- joins scheduled for this iteration: previously-failed devices
    //    re-enter the ring.  The lead replica streams its full state to
    //    each joiner through the fixed staging buffer (bit-identical
    //    afterwards, asserted in tests), the unconsumed rows re-shard over
    //    the enlarged ring, the LR rescales back up (inverse Eq. 14), and
    //    the broadcast + ring re-form is charged to the next step.
    std::vector<int> joined;
    for (int d : inj.joins_at(iter)) {
      if (d < 0 || d >= cfg_.num_devices) continue;
      if (std::find(alive_.begin(), alive_.end(), d) == alive_.end() &&
          std::find(joined.begin(), joined.end(), d) == joined.end()) {
        joined.push_back(d);
      }
    }
    if (!joined.empty()) {
      const auto lead = static_cast<std::size_t>(alive_.front());
      train::StateStreamer streamer;
      std::uint64_t streamed = 0;
      for (int d : joined) {
        // Stream into the joiner's own pool: its replica tensors already
        // live there, and the chunked copy allocates nothing model-sized.
        alloc::ArenaScope arena(device_pools_[static_cast<std::size_t>(d)]);
        streamed += train::broadcast_state(
            *replicas_[lead], *opts_[lead],
            *replicas_[static_cast<std::size_t>(d)],
            *opts_[static_cast<std::size_t>(d)], streamer);
        alive_.push_back(d);
        result.joined_devices.push_back(d);
      }
      std::sort(alive_.begin(), alive_.end());
      lr_ = elastic_lr();
      for (int d : alive_) {
        opts_[static_cast<std::size_t>(d)]->set_lr(lr_);
      }
      const double cost = join_cost_seconds(streamed);
      pending_join_s += cost;
      result.join_seconds += cost;
      plan = make_plan(collect_remaining());
      pos = 0;
      if (plan.iterations.empty()) break;  // too few rows left for a batch
    }

    const auto& shards = plan.iterations[pos];
    IterationTiming it;
    it.num_alive = num_alive();
    it.device_compute_s.resize(shards.size());
    std::uint64_t max_bytes = 0;
    bool finite = true;
    for (std::size_t d = 0; d < shards.size(); ++d) {
      perf::TraceSpan span_dev("dp.device_compute", "dp");
      perf::Timer t;
      // Step-scoped arena on this device's own pool: batch tensors, forward
      // activations and the backward graph recycle within the device, never
      // crossing into a sibling replica's pool.
      alloc::ArenaScope arena(
          device_pools_[static_cast<std::size_t>(alive_[d])]);
      data::Batch b = data::collate_indices(ds, shards[d]);
      const int dev = alive_[d];
      model::CHGNet& net = *replicas_[static_cast<std::size_t>(dev)];
      net.zero_grad();

      // Recorded-step replay, one program cache per device (a replica's
      // programs bake its own parameter/gradient pointers).  Same protocol
      // as the single-device trainer: eager, capture, then replay.
      const std::vector<ag::Var> dev_params = net.parameters();
      replay::ProgramCache& cache =
          *replay_caches_[static_cast<std::size_t>(dev)];
      std::uint64_t key = 0;
      replay::ProgramCache::Lease lease;
      if (grads_warm(dev_params)) {
        key = data::replay_key(
            b, kDpReplaySeed + static_cast<std::uint64_t>(dev));
        lease = cache.acquire(key);
        if (lease.action == replay::ProgramCache::Action::kReplay &&
            !lease.program->bind(data::replay_inputs(b),
                                 replay_stable(dev_params))) {
          cache.invalidate(key);
          lease = replay::ProgramCache::Lease{};
        }
      }

      float loss_value = 0.0f;
      bool ran_backward = false;
      if (lease.action == replay::ProgramCache::Action::kReplay) {
        perf::TraceSpan span_rp("dp.replay", "dp");
        lease.program->run();
        loss_value = lease.program->tap_value(0).data()[0];
        ran_backward = true;
      } else {
        const bool capturing =
            lease.action == replay::ProgramCache::Action::kCapture;
        replay::Recorder rec;
        std::optional<replay::RecorderScope> scope;
        if (capturing) {
          for (const Tensor& t : data::replay_inputs(b)) rec.bind_input(t);
          for (const Tensor& t : replay_stable(dev_params)) {
            rec.expect_stable(t);
          }
          scope.emplace(rec);
        }
        model::ModelOutput out = net.forward(b, model::ForwardMode::kTrain);
        train::LossResult loss =
            train::chgnet_loss(out, b, cfg_.weights, cfg_.huber_delta);
        loss_value = loss.total.item();
        if (std::isfinite(loss_value) || !cfg_.guard_nonfinite) {
          ag::backward(loss.total);
          ran_backward = true;
        }
        if (capturing) {
          scope.reset();
          if (ran_backward) {
            rec.tap(loss.total.value());
            cache.store(key, rec.finish());
          } else {
            cache.abort_capture(key);
          }
        }
      }

      const bool dev_finite = std::isfinite(loss_value);
      if (dev_finite || !cfg_.guard_nonfinite) {
        // With the guard off this preserves the unguarded semantics exactly
        // (backward + stats even for a poisoned loss).
        loss_sum += loss_value;
        ++loss_count;
      }
      finite = finite && dev_finite;
      it.device_compute_s[d] =
          t.seconds() * inj.compute_multiplier(alive_[d], iter);
      max_bytes = std::max(max_bytes, shard_bytes(ds, shards[d]));
    }

    if (finite || !cfg_.guard_nonfinite) {
      perf::TraceSpan span_ar("dp.allreduce", "dp");
      all_reduce_gradients();
      if (cfg_.guard_nonfinite) {
        // A finite loss can still overflow in backward; check the averaged
        // gradient once (it is identical on every replica).
        finite = train::gradients_finite(
            replicas_[static_cast<std::size_t>(alive_.front())]->parameters());
      }
    }
    if (cfg_.guard_nonfinite && !finite) {
      // Guard: every replica skips this step together (preserving the DDP
      // invariant) and the LR backs off for the rest of the run.
      for (auto& r : replicas_) r->zero_grad();
      backoff_scale_ *= cfg_.lr_backoff;
      lr_ = elastic_lr();
      for (int d : alive_) opts_[static_cast<std::size_t>(d)]->set_lr(lr_);
      ++result.skipped_steps;
      ++skipped_steps_;
    } else {
      perf::TraceSpan span_opt("dp.optimizer", "dp");
      for (int d : alive_) opts_[static_cast<std::size_t>(d)]->step();
    }

    // -- divergence watchdog: if the bit-identity invariant is ever broken
    //    (flaky memory, a buggy kernel), repair by re-broadcasting from the
    //    lead replica; the broadcast is charged like a recovery.
    if (cfg_.divergence_check_every > 0 && num_alive() > 1 &&
        (iter + 1) % cfg_.divergence_check_every == 0) {
      if (replica_divergence() > cfg_.divergence_tolerance) {
        broadcast_from_master();
        ++result.rebroadcasts;
        const double cost =
            ring_allreduce_seconds(gradient_bytes(), num_alive(), cfg_.comm);
        pending_recovery_s += cost;
        result.recovery_seconds += cost;
      }
    }

    it.max_compute_s = *std::max_element(it.device_compute_s.begin(),
                                         it.device_compute_s.end());
    CommConfig comm_cfg = cfg_.comm;
    comm_cfg.buckets = num_buckets_;
    const double degrade = inj.comm_factor(iter);
    comm_cfg.intra_node_bw /= degrade;
    comm_cfg.inter_node_bw /= degrade;
    comm_cfg.latency *= degrade;
    const AllReduceCost cost =
        bucketed_allreduce_cost(gradient_bytes(), num_alive(), comm_cfg);
    it.comm_s = cost.total();
    // Backward is roughly 2/3 of fwd+bwd compute; the bucketed all-reduce's
    // bandwidth part can hide inside it, the per-bucket latency cannot.
    it.exposed_comm_s =
        cfg_.overlap_comm
            ? exposed_comm_seconds(cost.bandwidth_s, 0.66 * it.max_compute_s,
                                   true) +
                  cost.latency_s
            : cost.total();
    it.h2d_s = h2d_seconds(max_bytes, comm_cfg);
    it.exposed_h2d_s =
        exposed_h2d_seconds(it.h2d_s, it.max_compute_s, cfg_.prefetch);
    it.recovery_s = pending_recovery_s;
    pending_recovery_s = 0.0;
    it.join_s = pending_join_s;
    pending_join_s = 0.0;
    it.step_s = it.max_compute_s + it.exposed_comm_s + it.exposed_h2d_s +
                it.recovery_s + it.join_s;
    // Per-device simulated-time lanes: each alive device's spans tile its
    // lane exactly — compute, then slack waiting for the straggler, then the
    // exposed comm/H2D and any recovery — so every lane advances by step_s
    // and the trace is an independent witness of the timing ledger.
    if (perf::trace_enabled()) {
      for (std::size_t d = 0; d < shards.size(); ++d) {
        const int dev = alive_[d];
        double t = sim_trace_cursor_s_;
        perf::trace_sim_span("compute", "device", dev, t,
                             it.device_compute_s[d]);
        t += it.device_compute_s[d];
        const double slack = it.max_compute_s - it.device_compute_s[d];
        if (slack > 0.0) {
          perf::trace_sim_span("straggler_slack", "device", dev, t, slack);
          t += slack;
        }
        if (it.exposed_comm_s > 0.0) {
          perf::trace_sim_span("allreduce_exposed", "device", dev, t,
                               it.exposed_comm_s);
          t += it.exposed_comm_s;
        }
        if (it.exposed_h2d_s > 0.0) {
          perf::trace_sim_span("h2d_exposed", "device", dev, t,
                               it.exposed_h2d_s);
          t += it.exposed_h2d_s;
        }
        if (it.recovery_s > 0.0) {
          perf::trace_sim_span("recovery", "device", dev, t, it.recovery_s);
          t += it.recovery_s;
        }
        if (it.join_s > 0.0) {
          perf::trace_sim_span("join", "device", dev, t, it.join_s);
        }
      }
      sim_trace_cursor_s_ += it.step_s;
    }
    result.simulated_seconds += it.step_s;
    result.iterations.push_back(std::move(it));
    ++iter;
    ++pos;
  }
  // Recovery/join cost charged but never attached to a step (an elastic
  // transition on the last iteration) still counts toward the epoch.
  if (perf::trace_enabled() &&
      (pending_recovery_s > 0.0 || pending_join_s > 0.0)) {
    for (int dev : alive_) {
      double t = sim_trace_cursor_s_;
      if (pending_recovery_s > 0.0) {
        perf::trace_sim_span("recovery", "device", dev, t,
                             pending_recovery_s);
        t += pending_recovery_s;
      }
      if (pending_join_s > 0.0) {
        perf::trace_sim_span("join", "device", dev, t, pending_join_s);
      }
    }
    sim_trace_cursor_s_ += pending_recovery_s + pending_join_s;
  }
  result.simulated_seconds += pending_recovery_s + pending_join_s;
  result.mean_loss =
      loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
  result.measured_seconds = wall.seconds();
  return result;
}

void DataParallelTrainer::save_checkpoint(const std::string& path,
                                          index_t next_epoch) const {
  const auto lead = static_cast<std::size_t>(alive_.front());
  nn::PayloadWriter w;
  w.put_u64(static_cast<std::uint64_t>(cfg_.num_devices));
  w.put_u64(alive_.size());
  for (int d : alive_) w.put_u64(static_cast<std::uint64_t>(d));
  w.put_f32(lr_);
  w.put_f32(backoff_scale_);
  w.put_u64(static_cast<std::uint64_t>(skipped_steps_));
  w.put_u64(static_cast<std::uint64_t>(next_epoch));
  std::vector<nn::Section> sections;
  sections.push_back({train::kSectionElastic, w.take()});
  sections.push_back(train::adam_section(*opts_[lead]));
  sections.push_back(train::atom_ref_section(*replicas_[lead]));
  nn::save_parameters(*replicas_[lead], path, sections);
}

index_t DataParallelTrainer::resume(const std::string& path) {
  const std::vector<nn::Section> sections =
      nn::load_checkpoint(*replicas_[0], path);
  index_t next_epoch = 0;
  {
    nn::PayloadReader r(
        train::require_section(sections, train::kSectionElastic).payload);
    const auto devices = static_cast<int>(r.get_u64());
    FASTCHG_CHECK(devices == cfg_.num_devices,
                  "checkpoint: saved for " << devices << " devices, trainer "
                                           << "has " << cfg_.num_devices);
    const std::uint64_t alive_count = r.get_u64();
    FASTCHG_CHECK(alive_count >= 1 &&
                      alive_count <= static_cast<std::uint64_t>(devices),
                  "checkpoint: implausible alive count " << alive_count);
    alive_.clear();
    for (std::uint64_t i = 0; i < alive_count; ++i) {
      const auto d = static_cast<int>(r.get_u64());
      FASTCHG_CHECK(d >= 0 && d < devices,
                    "checkpoint: alive device " << d << " out of range");
      alive_.push_back(d);
    }
    lr_ = r.get_f32();
    backoff_scale_ = r.get_f32();
    skipped_steps_ = static_cast<index_t>(r.get_u64());
    next_epoch = static_cast<index_t>(r.get_u64());
    FASTCHG_CHECK(r.done(), "checkpoint: elastic section has trailing bytes");
  }
  // Weights landed in replica 0; mirror them (and the AtomRef) everywhere,
  // then give every optimizer the identical restored Adam state -- after
  // which the survivors are bit-identical, exactly as before the save.
  train::restore_atom_ref(*replicas_[0],
                          train::require_section(sections,
                                                 train::kSectionAtomRef));
  for (std::size_t d = 1; d < replicas_.size(); ++d) {
    replicas_[d]->copy_parameters_from(*replicas_[0]);
    if (replicas_[0]->has_atom_ref()) {
      replicas_[d]->set_atom_ref(replicas_[0]->atom_ref().to_vector());
    }
  }
  const nn::Section& adam = train::require_section(sections,
                                                   train::kSectionAdam);
  for (auto& opt : opts_) {
    train::restore_adam(*opt, adam);
    opt->set_lr(lr_);
  }
  return next_epoch;
}

}  // namespace fastchg::parallel
