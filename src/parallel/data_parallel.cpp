#include "parallel/data_parallel.hpp"

#include <algorithm>
#include <cmath>

#include "autograd/ops.hpp"
#include "perf/timer.hpp"
#include "train/atom_ref.hpp"

namespace fastchg::parallel {

DataParallelTrainer::DataParallelTrainer(const model::ModelConfig& mcfg,
                                         const DataParallelConfig& cfg,
                                         std::uint64_t model_seed)
    : cfg_(cfg),
      lr_(cfg.scale_lr
              ? train::scaled_init_lr(cfg.global_batch, cfg.lr_k, cfg.base_lr)
              : cfg.base_lr) {
  FASTCHG_CHECK(cfg.num_devices >= 1, "DataParallelTrainer: devices");
  for (int d = 0; d < cfg.num_devices; ++d) {
    replicas_.push_back(std::make_unique<model::CHGNet>(mcfg, model_seed));
    if (d > 0) replicas_[static_cast<std::size_t>(d)]->copy_parameters_from(*replicas_[0]);
    opts_.push_back(std::make_unique<train::Adam>(
        replicas_.back()->parameters(), lr_));
  }
  // DDP-style 64 KiB gradient buckets determine the all-reduce call count
  // in the comm-cost accounting.
  num_buckets_ = static_cast<int>(
      make_gradient_buckets(replicas_[0]->parameters(), 64 * 1024).size());
}

std::uint64_t DataParallelTrainer::gradient_bytes() const {
  return tensor_bytes(replicas_[0]->num_parameters());
}

void DataParallelTrainer::all_reduce_gradients() {
  // Average gradients across replicas -- the arithmetic NCCL would do.
  std::vector<std::vector<ag::Var>> params;
  params.reserve(replicas_.size());
  for (auto& r : replicas_) params.push_back(r->parameters());
  const float inv_p = 1.0f / static_cast<float>(replicas_.size());
  for (std::size_t i = 0; i < params[0].size(); ++i) {
    // Some replicas may lack a grad (e.g. parameter unused on a shard with
    // no angles); treat missing as zero.
    Tensor sum = Tensor::zeros(params[0][i].shape());
    for (auto& dev_params : params) {
      if (dev_params[i].has_grad()) sum.add_(dev_params[i].grad());
    }
    sum.mul_(inv_p);
    for (auto& dev_params : params) {
      dev_params[i].set_grad(sum.clone());
    }
  }
}

float DataParallelTrainer::replica_divergence() const {
  float worst = 0.0f;
  auto ref = replicas_[0]->parameters();
  for (std::size_t d = 1; d < replicas_.size(); ++d) {
    auto other = replicas_[d]->parameters();
    for (std::size_t i = 0; i < ref.size(); ++i) {
      const float* a = ref[i].value().data();
      const float* b = other[i].value().data();
      for (index_t k = 0; k < ref[i].numel(); ++k) {
        worst = std::max(worst, std::fabs(a[k] - b[k]));
      }
    }
  }
  return worst;
}

std::uint64_t shard_bytes(const data::Dataset& ds,
                          const std::vector<index_t>& rows) {
  std::uint64_t bytes = 0;
  for (index_t row : rows) {
    const data::GraphData& g = ds[row].graph;
    // positions + forces [A,3]*2, magmom [A], edge images [E,3],
    // src/dst int64 [E]*2, angle indices [G]*2, misc labels.
    bytes += static_cast<std::uint64_t>(g.num_atoms) * (7 * 4);
    bytes += static_cast<std::uint64_t>(g.num_edges()) * (3 * 4 + 2 * 8);
    bytes += static_cast<std::uint64_t>(g.num_angles()) * (2 * 8);
    bytes += 64;  // lattice, energy, stress
  }
  return bytes;
}

EpochResult DataParallelTrainer::train_epoch(
    const data::Dataset& ds, const std::vector<index_t>& rows,
    index_t epoch) {
  perf::Timer wall;
  EpochResult result;

  if (cfg_.fit_atom_ref && !replicas_[0]->has_atom_ref()) {
    const std::vector<float> e0 = train::fit_atom_ref(
        ds, rows, replicas_[0]->config().num_species);
    for (auto& r : replicas_) r->set_atom_ref(e0);
  }

  SamplerConfig scfg;
  scfg.num_devices = cfg_.num_devices;
  scfg.global_batch = cfg_.global_batch;
  scfg.seed = cfg_.seed + static_cast<std::uint64_t>(epoch);
  const std::vector<index_t> loads = sample_workloads(ds);
  ShardPlan plan = cfg_.load_balance
                       ? load_balance_sharding(rows, loads, scfg)
                       : default_sharding(rows, loads, scfg);

  double loss_sum = 0.0;
  index_t loss_count = 0;
  for (const auto& shards : plan.iterations) {
    IterationTiming it;
    it.device_compute_s.resize(shards.size());
    std::uint64_t max_bytes = 0;
    for (std::size_t d = 0; d < shards.size(); ++d) {
      perf::Timer t;
      data::Batch b = data::collate_indices(ds, shards[d]);
      model::CHGNet& net = *replicas_[d];
      net.zero_grad();
      model::ModelOutput out = net.forward(b, model::ForwardMode::kTrain);
      train::LossResult loss =
          train::chgnet_loss(out, b, cfg_.weights, cfg_.huber_delta);
      ag::backward(loss.total);
      it.device_compute_s[d] = t.seconds();
      loss_sum += loss.total.item();
      ++loss_count;
      max_bytes = std::max(max_bytes, shard_bytes(ds, shards[d]));
    }
    all_reduce_gradients();
    for (auto& opt : opts_) opt->step();

    it.max_compute_s = *std::max_element(it.device_compute_s.begin(),
                                         it.device_compute_s.end());
    CommConfig comm_cfg = cfg_.comm;
    comm_cfg.buckets = num_buckets_;
    const AllReduceCost cost =
        bucketed_allreduce_cost(gradient_bytes(), cfg_.num_devices, comm_cfg);
    it.comm_s = cost.total();
    // Backward is roughly 2/3 of fwd+bwd compute; the bucketed all-reduce's
    // bandwidth part can hide inside it, the per-bucket latency cannot.
    it.exposed_comm_s =
        cfg_.overlap_comm
            ? exposed_comm_seconds(cost.bandwidth_s, 0.66 * it.max_compute_s,
                                   true) +
                  cost.latency_s
            : cost.total();
    it.h2d_s = h2d_seconds(max_bytes, cfg_.comm);
    it.exposed_h2d_s =
        exposed_h2d_seconds(it.h2d_s, it.max_compute_s, cfg_.prefetch);
    it.step_s = it.max_compute_s + it.exposed_comm_s + it.exposed_h2d_s;
    result.simulated_seconds += it.step_s;
    result.iterations.push_back(std::move(it));
  }
  result.mean_loss =
      loss_count > 0 ? loss_sum / static_cast<double>(loss_count) : 0.0;
  result.measured_seconds = wall.seconds();
  return result;
}

}  // namespace fastchg::parallel
