// Strong / weak scaling harness (paper Fig. 10) over the virtual cluster.
//
// The paper's scaling experiments use a global batch of 2048 (strong) and
// 512 per GPU (weak) -- workloads far beyond what one CPU core can execute
// per measurement point.  Instead we (1) *calibrate* a linear per-sample
// cost model  t = fixed + a*atoms + b*bonds + g*angles  from real measured
// iterations of the actual model on this machine, then (2) simulate each
// cluster configuration: per-device compute from the calibrated model over
// the exact shard assignment the sampler produces, plus the ring all-reduce
// cost model.  `compute_scale` rescales substrate throughput to
// A100-equivalent so the compute/communication ratio -- the quantity that
// determines scaling efficiency -- matches the paper's hardware.
#pragma once

#include <vector>

#include "parallel/data_parallel.hpp"

namespace fastchg::parallel {

struct CostModel {
  double fixed = 0.0;      ///< s per iteration (launch/driver overhead)
  double per_atom = 0.0;   ///< s per atom
  double per_bond = 0.0;   ///< s per bond
  double per_angle = 0.0;  ///< s per angle

  double predict(index_t atoms, index_t bonds, index_t angles) const;
  /// Total predicted compute for a shard of dataset rows.
  double shard_seconds(const data::Dataset& ds,
                       const std::vector<index_t>& rows) const;
};

/// Fit the cost model by measuring real fwd+bwd+loss iterations of `net` on
/// randomly drawn batches of the given sizes (least squares).
CostModel calibrate_cost_model(const model::CHGNet& net,
                               const data::Dataset& ds,
                               const std::vector<index_t>& batch_sizes,
                               int reps_per_size, std::uint64_t seed);

struct ScalingConfig {
  std::vector<int> device_counts{4, 8, 16, 32};
  index_t strong_global_batch = 2048;   ///< paper Fig. 10(a)
  index_t weak_per_device_batch = 512;  ///< paper Fig. 10(b)
  bool load_balance = true;
  bool overlap_comm = true;
  CommConfig comm;
  /// Substrate -> A100 throughput rescaling applied to calibrated compute.
  double compute_scale = 1.0;
  /// Per-device, per-iteration multiplicative compute jitter (sigma of a
  /// N(1, sigma) factor).  Real clusters show kernel-timing / dataloader
  /// variation that makes the max-over-devices grow ~ sigma*sqrt(2 ln P);
  /// the paper attributes its 16->32-GPU efficiency drop to exactly this
  /// class of synchronization overhead.  Set 0 for the idealized model.
  double straggler_sigma = 0.08;
  std::uint64_t seed = 0;
};

struct ScalingPoint {
  int devices = 0;
  double epoch_seconds = 0.0;     ///< simulated
  double iter_seconds = 0.0;      ///< simulated mean per-iteration
  double comm_fraction = 0.0;     ///< exposed comm / step time
  double speedup = 1.0;           ///< vs the smallest device count
  double efficiency = 1.0;        ///< speedup / (P / P0)
  /// Load-balance sampler quality: coefficient of variation (std/mean) of
  /// per-device compute within an iteration, averaged over the epoch.  The
  /// synchronized step pays the max, so CoV is the imbalance tax.
  double load_cov = 0.0;
  /// Per-iteration comm-model breakdown at this ring size (raw, pre-overlap).
  double comm_bandwidth_s = 0.0;  ///< overlappable all-reduce bandwidth term
  double comm_latency_s = 0.0;    ///< exposed per-bucket ring latency term
  /// Two-level-schedule phase decomposition (zero for flat / single node).
  double reduce_scatter_s = 0.0;
  double leader_ring_s = 0.0;
  double broadcast_s = 0.0;
};

/// Fixed global batch, devices swept (Fig. 10a).
std::vector<ScalingPoint> strong_scaling(const CostModel& cost,
                                         const data::Dataset& ds,
                                         std::uint64_t model_bytes,
                                         const ScalingConfig& cfg);

/// Fixed per-device batch; efficiency measured on per-iteration time
/// (Fig. 10b).
std::vector<ScalingPoint> weak_scaling(const CostModel& cost,
                                       const data::Dataset& ds,
                                       std::uint64_t model_bytes,
                                       const ScalingConfig& cfg);

}  // namespace fastchg::parallel
