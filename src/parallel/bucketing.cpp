#include "parallel/bucketing.hpp"

#include "core/error.hpp"

namespace fastchg::parallel {

std::vector<GradientBucket> make_gradient_buckets(
    const std::vector<ag::Var>& params, std::uint64_t target_bytes) {
  FASTCHG_CHECK(target_bytes > 0, "make_gradient_buckets: target_bytes");
  std::vector<GradientBucket> buckets;
  GradientBucket current;
  // Backward produces gradients roughly in reverse registration order
  // (outputs first), so buckets fill back-to-front like DDP's.
  for (std::size_t k = params.size(); k-- > 0;) {
    const std::uint64_t bytes = tensor_bytes(params[k].numel());
    if (!current.param_indices.empty() &&
        current.bytes + bytes > target_bytes) {
      buckets.push_back(std::move(current));
      current = GradientBucket{};
    }
    current.param_indices.push_back(k);
    current.bytes += bytes;
  }
  if (!current.param_indices.empty()) buckets.push_back(std::move(current));
  return buckets;
}

}  // namespace fastchg::parallel
