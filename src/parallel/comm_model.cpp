#include "parallel/comm_model.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace fastchg::parallel {

double ring_allreduce_seconds(std::uint64_t bytes, int num_devices,
                              const CommConfig& cfg) {
  FASTCHG_CHECK(num_devices >= 1, "ring_allreduce: devices");
  if (num_devices == 1) return 0.0;
  const double p = static_cast<double>(num_devices);
  const bool spans_nodes = num_devices > cfg.gpus_per_node;
  const double bw = spans_nodes ? cfg.inter_node_bw : cfg.intra_node_bw;
  // A flat ring spanning nodes pays the fat-tree alpha on every hop; this
  // is exactly the term the two-level schedule avoids.
  const double lat = spans_nodes ? cfg.inter_latency : cfg.latency;
  return 2.0 * (p - 1.0) / p * static_cast<double>(bytes) / bw +
         2.0 * (p - 1.0) * lat;
}

AllReduceCost bucketed_allreduce_cost(std::uint64_t bytes, int num_devices,
                                      const CommConfig& cfg) {
  AllReduceCost cost;
  if (num_devices <= 1) return cost;
  const double p = static_cast<double>(num_devices);
  const double n = static_cast<double>(bytes);
  const double bkt = static_cast<double>(std::max(cfg.buckets, 1));
  if (num_devices <= cfg.gpus_per_node) {
    cost.bandwidth_s = 2.0 * (p - 1.0) / p * n / cfg.intra_node_bw;
    cost.latency_s = bkt * 2.0 * (p - 1.0) * cfg.latency;
    return cost;
  }
  if (!cfg.hierarchical) {
    cost.bandwidth_s = 2.0 * (p - 1.0) / p * n / cfg.inter_node_bw;
    cost.latency_s = bkt * 2.0 * (p - 1.0) * cfg.inter_latency;
    return cost;
  }
  // Two-level schedule, three phases (NCCL-style):
  //   1. reduce-scatter within each node group of up to G devices
  //   2. ring all-reduce of the node partials across the M group leaders
  //   3. broadcast of the reduced result back within each node group
  // M = ceil(P/G) so elastic (non-divisible) ring sizes are well-defined;
  // the intra phases are paced by the largest group.
  const double g =
      static_cast<double>(std::min(num_devices, cfg.gpus_per_node));
  const double m = static_cast<double>(
      (num_devices + cfg.gpus_per_node - 1) / cfg.gpus_per_node);
  const double rs_bw = (g - 1.0) / g * n / cfg.intra_node_bw;
  const double rs_lat = bkt * (g - 1.0) * cfg.latency;
  const double lr_bw = 2.0 * (m - 1.0) / m * n / cfg.inter_node_bw;
  const double lr_lat = bkt * 2.0 * (m - 1.0) * cfg.inter_latency;
  cost.reduce_scatter_s = rs_bw + rs_lat;
  cost.leader_ring_s = lr_bw + lr_lat;
  cost.broadcast_s = rs_bw + rs_lat;  // same traffic pattern in reverse
  cost.bandwidth_s = 2.0 * rs_bw + lr_bw;
  cost.latency_s = 2.0 * rs_lat + lr_lat;
  return cost;
}

double exposed_comm_seconds(double comm_s, double backward_s, bool overlap,
                            double overlap_fraction) {
  if (!overlap) return comm_s;
  return std::max(0.0, comm_s - overlap_fraction * backward_s);
}

double h2d_seconds(std::uint64_t bytes, const CommConfig& cfg) {
  return static_cast<double>(bytes) / cfg.h2d_bw;
}

double exposed_h2d_seconds(double copy_s, double compute_s, bool prefetch) {
  if (!prefetch) return copy_s;
  return std::max(0.0, copy_s - compute_s);
}

}  // namespace fastchg::parallel
