#include "parallel/comm_model.hpp"

#include <algorithm>

#include "core/error.hpp"

namespace fastchg::parallel {

double ring_allreduce_seconds(std::uint64_t bytes, int num_devices,
                              const CommConfig& cfg) {
  FASTCHG_CHECK(num_devices >= 1, "ring_allreduce: devices");
  if (num_devices == 1) return 0.0;
  const double p = static_cast<double>(num_devices);
  const double bw = num_devices <= cfg.gpus_per_node ? cfg.intra_node_bw
                                                     : cfg.inter_node_bw;
  return 2.0 * (p - 1.0) / p * static_cast<double>(bytes) / bw +
         2.0 * (p - 1.0) * cfg.latency;
}

AllReduceCost bucketed_allreduce_cost(std::uint64_t bytes, int num_devices,
                                      const CommConfig& cfg) {
  AllReduceCost cost;
  if (num_devices <= 1) return cost;
  const double p = static_cast<double>(num_devices);
  const double n = static_cast<double>(bytes);
  const double bkt = static_cast<double>(std::max(cfg.buckets, 1));
  if (num_devices <= cfg.gpus_per_node) {
    cost.bandwidth_s = 2.0 * (p - 1.0) / p * n / cfg.intra_node_bw;
    cost.latency_s = bkt * 2.0 * (p - 1.0) * cfg.latency;
    return cost;
  }
  if (!cfg.hierarchical) {
    cost.bandwidth_s = 2.0 * (p - 1.0) / p * n / cfg.inter_node_bw;
    cost.latency_s = bkt * 2.0 * (p - 1.0) * cfg.latency;
    return cost;
  }
  // Two-level: intra-node ring over G devices, then inter-node ring over
  // the M = P/G node leaders (NCCL-style reduce + broadcast halves).
  const double g = static_cast<double>(cfg.gpus_per_node);
  const double m = p / g;
  cost.bandwidth_s = 2.0 * (g - 1.0) / g * n / cfg.intra_node_bw +
                     2.0 * (m - 1.0) / m * n / cfg.inter_node_bw;
  cost.latency_s = bkt * 2.0 * ((g - 1.0) + (m - 1.0)) * cfg.latency;
  return cost;
}

double exposed_comm_seconds(double comm_s, double backward_s, bool overlap,
                            double overlap_fraction) {
  if (!overlap) return comm_s;
  return std::max(0.0, comm_s - overlap_fraction * backward_s);
}

double h2d_seconds(std::uint64_t bytes, const CommConfig& cfg) {
  return static_cast<double>(bytes) / cfg.h2d_bw;
}

double exposed_h2d_seconds(double copy_s, double compute_s, bool prefetch) {
  if (!prefetch) return copy_s;
  return std::max(0.0, copy_s - compute_s);
}

}  // namespace fastchg::parallel
