#include "parallel/sampler.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.hpp"
#include "core/rng.hpp"

namespace fastchg::parallel {

std::vector<index_t> sample_workloads(const data::Dataset& ds) {
  std::vector<index_t> w(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    w[static_cast<std::size_t>(i)] = ds[i].graph.feature_number();
  }
  return w;
}

namespace {

/// Shuffled copy of `rows` chopped into global batches.
std::vector<std::vector<index_t>> global_batches(
    const std::vector<index_t>& rows, const SamplerConfig& cfg) {
  FASTCHG_CHECK(cfg.num_devices > 0, "sampler: num_devices");
  FASTCHG_CHECK(cfg.global_batch % cfg.num_devices == 0,
                "sampler: global batch " << cfg.global_batch
                                         << " not divisible by "
                                         << cfg.num_devices << " devices");
  std::vector<index_t> order = rows;
  Rng rng(cfg.seed);
  rng.shuffle(order);
  std::vector<std::vector<index_t>> batches;
  for (std::size_t lo = 0; lo < order.size();
       lo += static_cast<std::size_t>(cfg.global_batch)) {
    const std::size_t hi =
        std::min(order.size(), lo + static_cast<std::size_t>(cfg.global_batch));
    if (cfg.drop_last &&
        hi - lo < static_cast<std::size_t>(cfg.global_batch)) {
      break;
    }
    batches.emplace_back(order.begin() + lo, order.begin() + hi);
  }
  return batches;
}

}  // namespace

ShardPlan default_sharding(const std::vector<index_t>& rows,
                           const std::vector<index_t>& workloads,
                           const SamplerConfig& cfg) {
  (void)workloads;  // the default sampler is workload-oblivious
  ShardPlan plan;
  for (auto& batch : global_batches(rows, cfg)) {
    const std::size_t per_dev = batch.size() / static_cast<std::size_t>(cfg.num_devices);
    std::vector<std::vector<index_t>> devs(
        static_cast<std::size_t>(cfg.num_devices));
    for (std::size_t d = 0; d < devs.size(); ++d) {
      devs[d].assign(batch.begin() + static_cast<std::ptrdiff_t>(d * per_dev),
                     batch.begin() +
                         static_cast<std::ptrdiff_t>((d + 1) * per_dev));
    }
    plan.iterations.push_back(std::move(devs));
  }
  return plan;
}

ShardPlan load_balance_sharding(const std::vector<index_t>& rows,
                                const std::vector<index_t>& workloads,
                                const SamplerConfig& cfg) {
  ShardPlan plan;
  for (auto& batch : global_batches(rows, cfg)) {
    // Sort this global batch by workload ascending (paper Fig. 4).
    std::sort(batch.begin(), batch.end(), [&](index_t a, index_t b) {
      return workloads[static_cast<std::size_t>(a)] <
             workloads[static_cast<std::size_t>(b)];
    });
    std::vector<std::vector<index_t>> devs(
        static_cast<std::size_t>(cfg.num_devices));
    std::size_t lo = 0, hi = batch.size();
    std::size_t d = 0;
    // Each device takes the smallest and the largest remaining in turn.
    while (lo < hi) {
      devs[d].push_back(batch[lo++]);
      if (lo < hi) devs[d].push_back(batch[--hi]);
      d = (d + 1) % devs.size();
    }
    plan.iterations.push_back(std::move(devs));
  }
  return plan;
}

BalanceStats analyze_plan(const ShardPlan& plan,
                          const std::vector<index_t>& workloads) {
  BalanceStats st;
  st.min_load = std::numeric_limits<index_t>::max();
  double cov_sum = 0.0;
  for (const auto& devs : plan.iterations) {
    std::vector<index_t> loads;
    loads.reserve(devs.size());
    for (const auto& shard : devs) {
      index_t load = 0;
      for (index_t row : shard) {
        load += workloads[static_cast<std::size_t>(row)];
      }
      loads.push_back(load);
      st.min_load = std::min(st.min_load, load);
      st.max_load = std::max(st.max_load, load);
    }
    const double mean =
        static_cast<double>(std::accumulate(loads.begin(), loads.end(),
                                            index_t{0})) /
        static_cast<double>(loads.size());
    double var = 0.0;
    for (index_t l : loads) {
      const double d = static_cast<double>(l) - mean;
      var += d * d;
    }
    var /= static_cast<double>(loads.size());
    if (mean > 0.0) cov_sum += std::sqrt(var) / mean;
    st.per_device_load.push_back(std::move(loads));
  }
  if (!plan.iterations.empty()) {
    st.mean_cov = cov_sum / static_cast<double>(plan.iterations.size());
  }
  if (st.per_device_load.empty()) st.min_load = 0;
  return st;
}

}  // namespace fastchg::parallel
