// Gradient bucketing (paper Sec. III-C "Communication Overlap"): instead of
// one all-reduce after the full backward pass, parameters are grouped into
// byte-bounded buckets that are reduced as soon as their gradients are
// ready, overlapping communication with the remaining backward compute.
// The bucket count feeds the per-call latency term of the comm model.
#pragma once

#include <cstdint>
#include <vector>

#include "autograd/variable.hpp"

namespace fastchg::parallel {

struct GradientBucket {
  std::vector<std::size_t> param_indices;  ///< into the parameter list
  std::uint64_t bytes = 0;
};

/// Greedily pack parameters (in reverse registration order, the order their
/// gradients become available during backward) into buckets of at most
/// `target_bytes` each.  A single parameter larger than the target gets its
/// own bucket.
std::vector<GradientBucket> make_gradient_buckets(
    const std::vector<ag::Var>& params, std::uint64_t target_bytes);

}  // namespace fastchg::parallel
