// Batch sharding across (virtual) GPUs.
//
// DefaultSampler: shuffle, chunk into global batches, deal contiguous shards
// -- the baseline whose per-device workload spread is the gray band of
// Fig. 9 (CoV 0.186 in the paper).
//
// LoadBalanceSampler (paper Fig. 4): per global batch, sort samples by
// workload (atoms + bonds + angles) ascending, then each device in turn
// takes the smallest and the largest remaining sample until none remain.
// This pairs heavy samples with light ones and drops the CoV several-fold
// (0.064 in the paper).
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace fastchg::parallel {

struct SamplerConfig {
  int num_devices = 4;
  index_t global_batch = 32;  ///< total samples per iteration
  std::uint64_t seed = 0;
  bool drop_last = true;      ///< drop the ragged final global batch
};

/// iterations[i][d] = dataset rows assigned to device d at iteration i.
struct ShardPlan {
  std::vector<std::vector<std::vector<index_t>>> iterations;
  index_t num_iterations() const {
    return static_cast<index_t>(iterations.size());
  }
};

/// Per-sample workload measure used for balancing (paper's feature number).
std::vector<index_t> sample_workloads(const data::Dataset& ds);

ShardPlan default_sharding(const std::vector<index_t>& rows,
                           const std::vector<index_t>& workloads,
                           const SamplerConfig& cfg);

ShardPlan load_balance_sharding(const std::vector<index_t>& rows,
                                const std::vector<index_t>& workloads,
                                const SamplerConfig& cfg);

/// Workload statistics of a plan (Fig. 9's curves and CoV criterion).
struct BalanceStats {
  /// per_device_load[i][d] = total feature number on device d at iter i.
  std::vector<std::vector<index_t>> per_device_load;
  double mean_cov = 0.0;  ///< mean over iterations of stddev/mean across devices
  index_t min_load = 0;
  index_t max_load = 0;
};

BalanceStats analyze_plan(const ShardPlan& plan,
                          const std::vector<index_t>& workloads);

}  // namespace fastchg::parallel
