// Deterministic fault injection for the virtual GPU cluster.
//
// At the paper's scale (32 GPUs for 1.5 h, vs 8.3 days for the baseline)
// device failures, stragglers, and degraded links are the norm, not the
// exception.  A FaultPlan is an explicit, seed-reproducible schedule of
// such events; DataParallelTrainer::train_epoch consumes it and reacts:
//
//   * kDeviceFailure  -- the device leaves the ring at the given iteration;
//                        the trainer shrinks the ring, re-shards the
//                        remaining rows, rescales the LR per Eq. 14 for the
//                        reduced global batch, and charges the ring re-form
//                        plus parameter re-broadcast to the step time.
//   * kStraggler      -- the device's measured compute time is multiplied
//                        by `factor` for `duration` iterations (the max
//                        over devices, i.e. the step time, absorbs it).
//   * kCommDegrade    -- all-reduce bandwidth is divided and ring latency
//                        multiplied by `factor` for `duration` iterations.
//   * kDeviceJoin     -- a previously-failed device rejoins the ring; the
//                        trainer re-shards across the enlarged ring, streams
//                        a full-state broadcast (params + Adam moments) from
//                        the lead replica to the joiner, rescales the LR per
//                        Eq. 14 for the grown global batch, and charges the
//                        join cost to the step time.
//
// Iteration indices are epoch-local.  Events naming an already-dead device
// (or joins naming an already-alive one) are no-ops, so one plan can be
// replayed over multiple epochs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/tensor.hpp"

namespace fastchg::parallel {

enum class FaultKind { kDeviceFailure, kStraggler, kCommDegrade, kDeviceJoin };

struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceFailure;
  index_t iteration = 0;  ///< epoch-local iteration the event fires at
  int device = -1;        ///< target device (ignored for kCommDegrade)
  double factor = 1.0;    ///< compute multiplier / comm slowdown (>= 1)
  index_t duration = 1;   ///< iterations the effect lasts (not failures)
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }

  /// Deterministic random plan: each (device, iteration) cell fails with
  /// `failure_prob`, straggles with `straggler_prob` (factor uniform in
  /// [2, 8], duration 1..3), and each iteration degrades comms with
  /// `comm_prob` (factor uniform in [2, 10], duration 1..3).  Identical
  /// seeds produce identical plans.
  static FaultPlan random(std::uint64_t seed, int num_devices,
                          index_t iterations, double failure_prob,
                          double straggler_prob = 0.0,
                          double comm_prob = 0.0);
};

/// Parse a CLI fault-plan spec: comma/semicolon-separated events of
///   fail:D@I          device D fails at iteration I
///   join:D@I          device D rejoins the ring at iteration I
///   slow:D@I*F#N      device D runs F-times slower for N iterations from I
///   comm@I*F#N        comms degrade F-fold for N iterations from I
/// e.g. "fail:3@1,join:3@6,slow:0@2*4#3,comm@5*2.5#2".  Throws on
/// malformed specs.
FaultPlan parse_fault_plan(const std::string& spec);

/// Stateless query view over a FaultPlan (nullptr plan = no faults).
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan* plan) : plan_(plan) {}

  /// Devices scheduled to fail exactly at `iter`.
  std::vector<int> failures_at(index_t iter) const;
  /// Devices scheduled to (re)join the ring exactly at `iter`.
  std::vector<int> joins_at(index_t iter) const;
  /// Transient-fault view used by the serving layer: a kDeviceFailure event
  /// with duration d at `iter` fails the first d attempts of request `iter`
  /// (the trainer instead treats failures as permanent ring departures).
  /// Returns the max duration over matching events; 0 = no fault scheduled.
  index_t transient_failures_at(int device, index_t iter) const;
  /// Product of active straggler factors for `device` at `iter` (1 = none).
  double compute_multiplier(int device, index_t iter) const;
  /// Product of active comm-degradation factors at `iter` (1 = none).
  double comm_factor(index_t iter) const;

 private:
  const FaultPlan* plan_;
};

}  // namespace fastchg::parallel
