#include "parallel/scaling.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "autograd/ops.hpp"
#include "perf/timer.hpp"
#include "train/loss.hpp"

namespace fastchg::parallel {

double CostModel::predict(index_t atoms, index_t bonds,
                          index_t angles) const {
  const double t = fixed + per_atom * static_cast<double>(atoms) +
                   per_bond * static_cast<double>(bonds) +
                   per_angle * static_cast<double>(angles);
  return std::max(t, 0.0);
}

double CostModel::shard_seconds(const data::Dataset& ds,
                                const std::vector<index_t>& rows) const {
  index_t atoms = 0, bonds = 0, angles = 0;
  for (index_t r : rows) {
    atoms += ds[r].graph.num_atoms;
    bonds += ds[r].graph.num_edges();
    angles += ds[r].graph.num_angles();
  }
  return predict(atoms, bonds, angles);
}

namespace {

/// Solve the 4x4 system A x = b via Gaussian elimination w/ partial pivot.
std::array<double, 4> solve4(std::array<std::array<double, 4>, 4> a,
                             std::array<double, 4> b) {
  for (int col = 0; col < 4; ++col) {
    int pivot = col;
    for (int r = col + 1; r < 4; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    FASTCHG_CHECK(std::fabs(a[col][col]) > 1e-30,
                  "cost-model fit: singular normal equations");
    for (int r = col + 1; r < 4; ++r) {
      const double f = a[r][col] / a[col][col];
      for (int c = col; c < 4; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::array<double, 4> x{};
  for (int r = 3; r >= 0; --r) {
    double acc = b[r];
    for (int c = r + 1; c < 4; ++c) acc -= a[r][c] * x[c];
    x[r] = acc / a[r][r];
  }
  return x;
}

}  // namespace

CostModel calibrate_cost_model(const model::CHGNet& net,
                               const data::Dataset& ds,
                               const std::vector<index_t>& batch_sizes,
                               int reps_per_size, std::uint64_t seed) {
  Rng rng(seed);
  std::array<std::array<double, 4>, 4> xtx{};
  std::array<double, 4> xty{};
  train::LossWeights weights;
  for (index_t bs : batch_sizes) {
    for (int rep = 0; rep < reps_per_size; ++rep) {
      std::vector<index_t> rows;
      rows.reserve(static_cast<std::size_t>(bs));
      for (index_t i = 0; i < bs; ++i) {
        rows.push_back(rng.randint(0, ds.size() - 1));
      }
      data::Batch b = data::collate_indices(ds, rows);
      perf::Timer t;
      model::ModelOutput out = net.forward(b, model::ForwardMode::kTrain);
      train::LossResult loss = train::chgnet_loss(out, b, weights);
      ag::backward(loss.total);
      const double secs = t.seconds();
      const std::array<double, 4> feat = {
          1.0, static_cast<double>(b.num_atoms),
          static_cast<double>(b.num_edges),
          static_cast<double>(b.num_angles)};
      for (int i = 0; i < 4; ++i) {
        for (int j = 0; j < 4; ++j) xtx[i][j] += feat[i] * feat[j];
        xty[i] += feat[i] * secs;
      }
    }
  }
  // Tikhonov damping keeps the fit stable when the sampled batch sizes give
  // nearly collinear (atoms, bonds, angles) totals.
  for (int i = 0; i < 4; ++i) xtx[i][i] += 1e-9;
  const std::array<double, 4> x = solve4(xtx, xty);
  CostModel cm;
  cm.fixed = std::max(0.0, x[0]);
  cm.per_atom = std::max(0.0, x[1]);
  cm.per_bond = std::max(0.0, x[2]);
  cm.per_angle = std::max(0.0, x[3]);
  return cm;
}

namespace {

std::vector<ScalingPoint> simulate(const CostModel& cost,
                                   const data::Dataset& ds,
                                   std::uint64_t model_bytes,
                                   const ScalingConfig& cfg, bool weak) {
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    rows[static_cast<std::size_t>(i)] = i;
  }
  const std::vector<index_t> loads = sample_workloads(ds);

  std::vector<ScalingPoint> points;
  for (int p : cfg.device_counts) {
    SamplerConfig scfg;
    scfg.num_devices = p;
    scfg.global_batch =
        weak ? cfg.weak_per_device_batch * static_cast<index_t>(p)
             : cfg.strong_global_batch;
    scfg.seed = cfg.seed;
    ShardPlan plan = cfg.load_balance
                         ? load_balance_sharding(rows, loads, scfg)
                         : default_sharding(rows, loads, scfg);
    FASTCHG_CHECK(plan.num_iterations() > 0,
                  "scaling: dataset smaller than one global batch ("
                      << ds.size() << " samples, batch "
                      << scfg.global_batch << ")");
    // Deterministic straggler model: kernel-timing / dataloader jitter with
    // per-device sigma makes the synchronized step track the *expected
    // maximum* over P devices, ~ 1 + sigma * sqrt(2 ln P).
    const double straggler =
        1.0 + cfg.straggler_sigma *
                  std::sqrt(2.0 * std::log(static_cast<double>(p)));
    // The comm cost depends only on (bytes, ring size), not the iteration.
    const AllReduceCost comm = bucketed_allreduce_cost(model_bytes, p,
                                                       cfg.comm);
    double epoch = 0.0, comm_exposed_sum = 0.0, cov_sum = 0.0;
    for (const auto& shards : plan.iterations) {
      double max_compute = 0.0, sum = 0.0, sumsq = 0.0;
      for (const auto& shard : shards) {
        const double c = cost.shard_seconds(ds, shard) * cfg.compute_scale;
        max_compute = std::max(max_compute, c);
        sum += c;
        sumsq += c * c;
      }
      const double np = static_cast<double>(shards.size());
      const double mean = sum / np;
      if (mean > 0.0) {
        const double var = std::max(0.0, sumsq / np - mean * mean);
        cov_sum += std::sqrt(var) / mean;
      }
      max_compute *= straggler;
      // Only the bandwidth part can hide behind the backward pass; the
      // per-bucket ring latency stays exposed.
      const double exposed =
          cfg.overlap_comm
              ? exposed_comm_seconds(comm.bandwidth_s, 0.66 * max_compute,
                                     true) +
                    comm.latency_s
              : comm.total();
      epoch += max_compute + exposed;
      comm_exposed_sum += exposed;
    }
    ScalingPoint pt;
    pt.devices = p;
    pt.epoch_seconds = epoch;
    pt.iter_seconds = epoch / static_cast<double>(plan.num_iterations());
    pt.comm_fraction = comm_exposed_sum / std::max(epoch, 1e-30);
    pt.load_cov = cov_sum / static_cast<double>(plan.num_iterations());
    pt.comm_bandwidth_s = comm.bandwidth_s;
    pt.comm_latency_s = comm.latency_s;
    pt.reduce_scatter_s = comm.reduce_scatter_s;
    pt.leader_ring_s = comm.leader_ring_s;
    pt.broadcast_s = comm.broadcast_s;
    points.push_back(pt);
  }
  // Speedup/efficiency relative to the smallest device count (paper: 4).
  if (!points.empty()) {
    const double t0 = weak ? points.front().iter_seconds
                           : points.front().epoch_seconds;
    const double p0 = points.front().devices;
    for (ScalingPoint& pt : points) {
      const double t =
          weak ? pt.iter_seconds : pt.epoch_seconds;
      pt.speedup = t0 / t;
      // Weak scaling: ideal keeps iteration time flat (speedup 1).
      pt.efficiency =
          weak ? pt.speedup : pt.speedup / (pt.devices / p0);
    }
  }
  return points;
}

}  // namespace

std::vector<ScalingPoint> strong_scaling(const CostModel& cost,
                                         const data::Dataset& ds,
                                         std::uint64_t model_bytes,
                                         const ScalingConfig& cfg) {
  return simulate(cost, ds, model_bytes, cfg, /*weak=*/false);
}

std::vector<ScalingPoint> weak_scaling(const CostModel& cost,
                                       const data::Dataset& ds,
                                       std::uint64_t model_bytes,
                                       const ScalingConfig& cfg) {
  return simulate(cost, ds, model_bytes, cfg, /*weak=*/true);
}

}  // namespace fastchg::parallel
