#include "fastchgnet/quantize.hpp"

#include <cmath>

namespace fastchg::model {

std::vector<std::int8_t> quantize_tensor(Tensor& t, float& scale_out,
                                         index_t* nonfinite_out) {
  float max_abs = 0.0f;
  float* p = t.data();
  const index_t n = t.numel();
  index_t nonfinite = 0;
  for (index_t i = 0; i < n; ++i) {
    // A single NaN/Inf weight would poison max|w|, giving a NaN scale and a
    // NaN round-trip for *every* element; keep the scale over the finite
    // weights only.
    if (!std::isfinite(p[i])) {
      ++nonfinite;
      continue;
    }
    max_abs = std::max(max_abs, std::fabs(p[i]));
  }
  scale_out = max_abs > 0.0f ? max_abs / 127.0f : 1.0f;
  std::vector<std::int8_t> codes(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) {
      // Clamp poisoned weights to exact zero so the dequantized tensor is
      // finite (the caller decides whether a nonzero count is fatal).
      codes[static_cast<std::size_t>(i)] = 0;
      p[i] = 0.0f;
      continue;
    }
    const float q = std::nearbyint(p[i] / scale_out);
    const float clamped = std::min(127.0f, std::max(-127.0f, q));
    codes[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(clamped);
    p[i] = clamped * scale_out;  // dequantized value used by inference
  }
  if (nonfinite_out != nullptr) *nonfinite_out += nonfinite;
  return codes;
}

QuantizationReport quantize_for_inference(nn::Module& m) {
  QuantizationReport rep;
  for (auto& [name, p] : m.named_parameters()) {
    Tensor& t = p.node()->value;
    Tensor original = t.clone();
    float scale = 0.0f;
    (void)quantize_tensor(t, scale, &rep.nonfinite);
    const float* a = original.data();
    const float* b = t.data();
    for (index_t i = 0; i < t.numel(); ++i) {
      if (!std::isfinite(a[i])) continue;  // counted, not an error metric
      const double err = std::fabs(static_cast<double>(a[i]) - b[i]);
      rep.max_abs_error = std::max(rep.max_abs_error, err);
      rep.mean_abs_error += err;
    }
    rep.tensors += 1;
    rep.elements += t.numel();
    rep.fp32_bytes += static_cast<double>(t.numel()) * 4.0;
    rep.int8_bytes += static_cast<double>(t.numel()) + 4.0;  // codes + scale
  }
  const index_t finite = rep.elements - rep.nonfinite;
  if (finite > 0) {
    rep.mean_abs_error /= static_cast<double>(finite);
  }
  return rep;
}

}  // namespace fastchg::model
