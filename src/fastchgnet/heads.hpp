// FastCHGNet's decoupled readout heads (paper Sec. III-B, Fig. 2c/d).
//
// ForceHead (Eq. 7): per-bond scalar magnitude n_ij = MLP(e_ij) applied to
// the bond direction x_ij, aggregated on the central atom:
//     F_i = sum_j n_ij * x_ij / |x_ij|
// Since e_ij is rotation-invariant and x_ij rotates with the structure, the
// prediction is rotation-equivariant by construction (Eq. 8); a property
// test verifies this numerically.
//
// StressHead (Eq. 9): a per-atom [3x3] coefficient from MLP(v_i), contracted
// with the structure's normalized lattice outer-product matrix
// sum_{ij} l_i/|l_i| (x) l_j/|l_j|, scaled by a learnable scalar.
#pragma once

#include <vector>

#include "chgnet/config.hpp"
#include "data/batch.hpp"
#include "nn/linear.hpp"

namespace fastchg::model {

using ag::Var;

class ForceHead : public nn::Module {
 public:
  ForceHead(const ModelConfig& cfg, Rng& rng);

  /// bond features [E,C], bond vectors rij [E,3], lengths [E,1] -> [A,3].
  Var forward(const Var& bond_feat, const Var& rij, const Var& rlen,
              const std::vector<index_t>& edge_src, index_t num_atoms) const;

 private:
  nn::Linear fc1_, fc2_;
};

class StressHead : public nn::Module {
 public:
  StressHead(const ModelConfig& cfg, Rng& rng);

  /// atom features [A,C] -> stress [S,9] (row-major 3x3 per structure).
  Var forward(const Var& atom_feat, const data::Batch& batch) const;

  /// The normalized lattice outer-product matrix of Eq. 9, flattened [1,9].
  static Tensor lattice_outer(const Tensor& lattice);

 private:
  nn::Linear fc1_, fc2_;
  Var scale_;
};

}  // namespace fastchg::model
