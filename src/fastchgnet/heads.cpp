#include "fastchgnet/heads.hpp"

#include <cmath>

#include "autograd/ops.hpp"
#include "core/replay.hpp"
#include "perf/trace.hpp"

namespace fastchg::model {

using namespace ag::ops;

namespace {
/// Outer-product-of-normalized-lattice-rows loop, shared by the eager call
/// and the replay closure (lattices are rebindable batch inputs, so the
/// value must be recomputed on every replayed step).
void lattice_outer_loop(const float* l, float* po) {
  float nrm[3];
  for (int i = 0; i < 3; ++i) {
    nrm[i] = std::sqrt(l[i * 3] * l[i * 3] + l[i * 3 + 1] * l[i * 3 + 1] +
                       l[i * 3 + 2] * l[i * 3 + 2]);
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      double acc = 0.0;
      for (int a = 0; a < 3; ++a) {
        for (int b = 0; b < 3; ++b) {
          // (sum_ab lhat_a (x) lhat_b)_{ij} = sum_ab lhat_a[i]*lhat_b[j]
          acc += (l[a * 3 + i] / nrm[a]) * (l[b * 3 + j] / nrm[b]);
        }
      }
      po[i * 3 + j] = static_cast<float>(acc);
    }
  }
}
}  // namespace

ForceHead::ForceHead(const ModelConfig& cfg, Rng& rng)
    : fc1_(cfg.feat_dim, cfg.feat_dim, rng), fc2_(cfg.feat_dim, 1, rng) {
  add_child("fc1", &fc1_);
  add_child("fc2", &fc2_);
}

Var ForceHead::forward(const Var& bond_feat, const Var& rij, const Var& rlen,
                       const std::vector<index_t>& edge_src,
                       index_t num_atoms) const {
  perf::TraceSpan span("readout.force_head", "model");
  Var n = fc2_.forward(silu(fc1_.forward(bond_feat)));  // [E,1]
  Var dir = div(rij, rlen);                             // unit bond vectors
  Var per_edge = mul(n, dir);                           // [E,3] col-broadcast
  return index_add0(num_atoms, edge_src, per_edge);     // [A,3]
}

StressHead::StressHead(const ModelConfig& cfg, Rng& rng)
    : fc1_(cfg.feat_dim, cfg.feat_dim, rng), fc2_(cfg.feat_dim, 9, rng) {
  add_child("fc1", &fc1_);
  add_child("fc2", &fc2_);
  scale_ = add_parameter("scale", Tensor::scalar(0.1f));
}

Tensor StressHead::lattice_outer(const Tensor& lattice) {
  FASTCHG_CHECK(same_shape(lattice.shape(), {3, 3}),
                "lattice_outer: " << shape_str(lattice.shape()));
  Tensor out = Tensor::empty({1, 9});
  lattice_outer_loop(lattice.data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    // counted=false: the eager path records no kernel launch for this
    // helper, so neither does replay.
    const int sl = rec->note_input(lattice);
    const int so = rec->note_output(out);
    rec->push("lattice_outer", /*counted=*/false, {sl}, so,
              [sl, so](float* const* S) {
                lattice_outer_loop(S[sl], S[so]);
              });
  }
  return out;
}

Var StressHead::forward(const Var& atom_feat,
                        const data::Batch& batch) const {
  perf::TraceSpan span("readout.stress_head", "model");
  Var coeff = fc2_.forward(silu(fc1_.forward(atom_feat)));  // [A,9]
  // Per-structure lattice outer-product matrices, gathered per atom.
  std::vector<Var> outers;
  outers.reserve(batch.lattices.size());
  for (const Tensor& lat : batch.lattices) {
    outers.push_back(constant(lattice_outer(lat)));
  }
  Var outer_all = cat(outers, 0);                              // [S,9]
  Var outer_atom = index_select0(outer_all, batch.atom_struct);  // [A,9]
  Var contrib = mul(coeff, outer_atom);
  Var per_struct =
      index_add0(batch.num_structs, batch.atom_struct, contrib);  // [S,9]
  return mul(per_struct, scale_);
}

}  // namespace fastchg::model
