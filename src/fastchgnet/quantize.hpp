// Post-training weight quantization (paper Sec. VII future work: "we will
// try to apply model compression and quantization to further accelerate").
//
// Symmetric per-tensor int8 quantization of every parameter:
//   q = round(w / scale),  scale = max|w| / 127
// applied as a round-trip (quantize -> dequantize in place), which is the
// standard way to evaluate the accuracy cost of int8 *inference* without an
// int8 kernel library.  The paper notes interatomic-potential training is
// too accuracy-sensitive for low precision; quantize_for_inference lets the
// repo quantify exactly how much test accuracy an int8 deployment of a
// trained FastCHGNet would give up (see tests and EXPERIMENTS.md).
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace fastchg::model {

struct QuantizationReport {
  index_t tensors = 0;
  index_t elements = 0;
  /// Non-finite weights encountered: excluded from the scale computation
  /// (one NaN would otherwise poison max|w| and with it every weight) and
  /// clamped to 0 in the dequantized output.  Non-zero here means the
  /// checkpoint is corrupt; serving should fall back to a clean replica.
  index_t nonfinite = 0;
  double max_abs_error = 0.0;   ///< worst |w - dequant(quant(w))|, finite w
  double mean_abs_error = 0.0;
  double fp32_bytes = 0.0;      ///< parameter payload before
  double int8_bytes = 0.0;      ///< payload after (1 byte + shared scale)
};

/// Round-trip int8-quantize every parameter of `m` in place and report the
/// introduced error and compression ratio.
QuantizationReport quantize_for_inference(nn::Module& m);

/// Quantize one tensor (returns the int8 codes; `t` is overwritten with the
/// dequantized values).  Non-finite elements are skipped when computing the
/// scale, coded as 0 and counted into `*nonfinite_out` when given.
/// Exposed for tests.
std::vector<std::int8_t> quantize_tensor(Tensor& t, float& scale_out,
                                         index_t* nonfinite_out = nullptr);

}  // namespace fastchg::model
