// Dataset caching: save labelled crystals (with their GraphConfig) to a
// binary file and reload without regenerating or relabelling.  Graphs are
// rebuilt on load (deterministic given the crystals + config), keeping the
// file small and format-stable.
#pragma once

#include <string>

#include "data/dataset.hpp"

namespace fastchg::data {

void save_dataset(const Dataset& ds, const std::string& path);

/// Load a dataset saved with save_dataset.  Throws fastchg::Error on
/// missing file, bad magic, or truncation.
Dataset load_dataset(const std::string& path);

}  // namespace fastchg::data
