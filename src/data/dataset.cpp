#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace fastchg::data {

Dataset Dataset::generate(index_t n, std::uint64_t seed,
                          const GeneratorConfig& gen_cfg,
                          const GraphConfig& graph_cfg,
                          const OracleParams& oracle_params) {
  Rng rng(seed);
  std::vector<Crystal> crystals;
  crystals.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    crystals.push_back(random_crystal(rng, gen_cfg));
  }
  return from_crystals(std::move(crystals), graph_cfg, oracle_params, true);
}

Dataset Dataset::from_crystals(std::vector<Crystal> crystals,
                               const GraphConfig& graph_cfg,
                               const OracleParams& oracle_params,
                               bool relabel) {
  Dataset ds;
  ds.graph_cfg_ = graph_cfg;
  Oracle oracle(oracle_params);
  ds.samples_.reserve(crystals.size());
  for (Crystal& c : crystals) {
    if (relabel) oracle.label(c);
    GraphData g = build_graph(c, graph_cfg);
    ds.samples_.push_back({std::move(c), std::move(g)});
  }
  return ds;
}

Dataset::Split Dataset::split(double val_frac, double test_frac,
                              std::uint64_t seed) const {
  std::vector<index_t> idx(static_cast<std::size_t>(size()));
  std::iota(idx.begin(), idx.end(), 0);
  Rng rng(seed);
  rng.shuffle(idx);
  const auto n = static_cast<std::size_t>(size());
  const auto n_val = static_cast<std::size_t>(std::floor(val_frac * n));
  const auto n_test = static_cast<std::size_t>(std::floor(test_frac * n));
  Split s;
  s.val.assign(idx.begin(), idx.begin() + n_val);
  s.test.assign(idx.begin() + n_val, idx.begin() + n_val + n_test);
  s.train.assign(idx.begin() + n_val + n_test, idx.end());
  return s;
}

namespace {
Dataset::Histogram make_hist(const std::vector<index_t>& values,
                             index_t num_bins) {
  Dataset::Histogram h;
  if (values.empty()) return h;
  const index_t max_v = *std::max_element(values.begin(), values.end());
  const double width = std::max<double>(1.0, static_cast<double>(max_v) /
                                                 static_cast<double>(num_bins));
  h.edges.resize(static_cast<std::size_t>(num_bins));
  h.counts.assign(static_cast<std::size_t>(num_bins), 0);
  for (std::size_t b = 0; b < h.edges.size(); ++b) {
    h.edges[b] = width * static_cast<double>(b + 1);
  }
  for (index_t v : values) {
    auto b = static_cast<std::size_t>(static_cast<double>(v) / width);
    if (b >= h.counts.size()) b = h.counts.size() - 1;
    h.counts[b]++;
  }
  return h;
}
}  // namespace

Dataset::DistributionStats Dataset::distribution(index_t num_bins) const {
  std::vector<index_t> atoms, bonds, angles;
  for (const Sample& s : samples_) {
    atoms.push_back(s.graph.num_atoms);
    bonds.push_back(s.graph.num_edges());
    angles.push_back(s.graph.num_angles());
  }
  DistributionStats st;
  st.atoms = make_hist(atoms, num_bins);
  st.bonds = make_hist(bonds, num_bins);
  st.angles = make_hist(angles, num_bins);
  auto mean = [](const std::vector<index_t>& v) {
    if (v.empty()) return 0.0;
    return static_cast<double>(std::accumulate(v.begin(), v.end(),
                                               index_t{0})) /
           static_cast<double>(v.size());
  };
  auto maxv = [](const std::vector<index_t>& v) -> index_t {
    return v.empty() ? 0 : *std::max_element(v.begin(), v.end());
  };
  st.mean_atoms = mean(atoms);
  st.mean_bonds = mean(bonds);
  st.mean_angles = mean(angles);
  st.max_atoms = maxv(atoms);
  st.max_bonds = maxv(bonds);
  st.max_angles = maxv(angles);
  return st;
}

}  // namespace fastchg::data
