#include "data/neighbor.hpp"

#include <cmath>

#include "core/error.hpp"

namespace fastchg::data {

namespace {

/// Perpendicular plane spacings h_k = V / |a_u x a_v|.
std::array<double, 3> plane_spacings(const Mat3& lattice) {
  const double vol = std::fabs(det3(lattice));
  std::array<double, 3> h{};
  for (int k = 0; k < 3; ++k) {
    const Vec3 u = {lattice[(k + 1) % 3][0], lattice[(k + 1) % 3][1],
                    lattice[(k + 1) % 3][2]};
    const Vec3 v = {lattice[(k + 2) % 3][0], lattice[(k + 2) % 3][1],
                    lattice[(k + 2) % 3][2]};
    h[k] = vol / norm(cross(u, v));
  }
  return h;
}

}  // namespace

std::array<int, 3> image_search_range(const Mat3& lattice, double cutoff) {
  // Perpendicular spacing of the planes spanned by the other two vectors:
  // h_k = V / |a_u x a_v|; we need ceil(cutoff / h_k) images along k for
  // positions wrapped into the home cell.
  const auto h = plane_spacings(lattice);
  std::array<int, 3> range{};
  for (int k = 0; k < 3; ++k) {
    range[k] = static_cast<int>(std::ceil(cutoff / h[k]));
  }
  return range;
}

bool cell_list_applicable(const Mat3& lattice, double cutoff) {
  const auto h = plane_spacings(lattice);
  for (int k = 0; k < 3; ++k) {
    if (static_cast<int>(std::floor(h[k] / cutoff)) < 3) return false;
  }
  return true;
}

NeighborList build_neighbor_list(const Crystal& c, double cutoff) {
  NeighborList nl;
  const index_t n = c.natoms();
  const std::vector<Vec3> cart = c.wrapped_cart();
  const auto range = image_search_range(c.lattice, cutoff);
  const double cut2 = cutoff * cutoff;
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      for (int na = -range[0]; na <= range[0]; ++na) {
        for (int nb = -range[1]; nb <= range[1]; ++nb) {
          for (int nc = -range[2]; nc <= range[2]; ++nc) {
            if (i == j && na == 0 && nb == 0 && nc == 0) continue;
            const Vec3 img{static_cast<double>(na), static_cast<double>(nb),
                           static_cast<double>(nc)};
            const Vec3 shift = mat_vec(c.lattice, img);
            const Vec3 d{cart[j][0] + shift[0] - cart[i][0],
                         cart[j][1] + shift[1] - cart[i][1],
                         cart[j][2] + shift[2] - cart[i][2]};
            const double d2 = dot(d, d);
            if (d2 > cut2 || d2 < 1e-12) continue;
            nl.src.push_back(i);
            nl.dst.push_back(j);
            nl.image.push_back(img);
            nl.rij.push_back(d);
            nl.dist.push_back(std::sqrt(d2));
          }
        }
      }
    }
  }
  return nl;
}


NeighborList build_neighbor_list_cell(const Crystal& c, double cutoff) {
  FASTCHG_CHECK(cell_list_applicable(c.lattice, cutoff),
                "cell list needs a cell >= 3 cutoffs wide in every "
                "perpendicular direction (cutoff " << cutoff << ")");
  const index_t n = c.natoms();
  NeighborList nl;
  const auto h = plane_spacings(c.lattice);
  int nc[3];
  for (int k = 0; k < 3; ++k) {
    nc[k] = static_cast<int>(std::floor(h[k] / cutoff));
  }
  // Bin atoms by wrapped fractional coordinate.
  std::vector<Vec3> wfrac(static_cast<std::size_t>(n));
  std::vector<Vec3> cart(static_cast<std::size_t>(n));
  const auto nbins =
      static_cast<std::size_t>(nc[0]) * nc[1] * nc[2];
  std::vector<std::vector<index_t>> bins(nbins);
  auto bin_of = [&](int a, int b, int cc) {
    return (static_cast<std::size_t>(a) * nc[1] + b) * nc[2] + cc;
  };
  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    wfrac[si] = wrap_frac(c.frac[si]);
    cart[si] = mat_vec(c.lattice, wfrac[si]);
    int b[3];
    for (int k = 0; k < 3; ++k) {
      b[k] = std::min(nc[k] - 1,
                      static_cast<int>(wfrac[si][k] * nc[k]));
    }
    bins[bin_of(b[0], b[1], b[2])].push_back(i);
  }
  const double cut2 = cutoff * cutoff;
  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    int b[3];
    for (int k = 0; k < 3; ++k) {
      b[k] = std::min(nc[k] - 1,
                      static_cast<int>(wfrac[si][k] * nc[k]));
    }
    for (int da = -1; da <= 1; ++da) {
      for (int db = -1; db <= 1; ++db) {
        for (int dc = -1; dc <= 1; ++dc) {
          int bb[3] = {b[0] + da, b[1] + db, b[2] + dc};
          Vec3 img{};
          for (int k = 0; k < 3; ++k) {
            if (bb[k] < 0) {
              bb[k] += nc[k];
              img[k] = -1.0;
            } else if (bb[k] >= nc[k]) {
              bb[k] -= nc[k];
              img[k] = 1.0;
            }
          }
          // Neighbour j sits in bin bb of image `img` relative to i:
          // r_j(image) = cart_j + img @ L.
          const Vec3 shift = mat_vec(c.lattice, img);
          for (index_t j : bins[bin_of(bb[0], bb[1], bb[2])]) {
            if (j == i && img[0] == 0 && img[1] == 0 && img[2] == 0) {
              continue;
            }
            const auto sj = static_cast<std::size_t>(j);
            const Vec3 d{cart[sj][0] + shift[0] - cart[si][0],
                         cart[sj][1] + shift[1] - cart[si][1],
                         cart[sj][2] + shift[2] - cart[si][2]};
            const double d2 = dot(d, d);
            if (d2 > cut2 || d2 < 1e-12) continue;
            nl.src.push_back(i);
            nl.dst.push_back(j);
            nl.image.push_back(img);
            nl.rij.push_back(d);
            nl.dist.push_back(std::sqrt(d2));
          }
        }
      }
    }
  }
  return nl;
}

NeighborList build_neighbor_list_auto(const Crystal& c, double cutoff) {
  return cell_list_applicable(c.lattice, cutoff)
             ? build_neighbor_list_cell(c, cutoff)
             : build_neighbor_list(c, cutoff);
}

}  // namespace fastchg::data
