#include "data/prefetch.hpp"

#include "core/alloc.hpp"

namespace fastchg::data {

PrefetchLoader::PrefetchLoader(const data::Dataset& ds,
                               std::vector<std::vector<index_t>> plan,
                               std::size_t depth)
    : ds_(ds), plan_(std::move(plan)), depth_(std::max<std::size_t>(depth, 1)) {
  thread_ = std::thread([this] { worker(); });
}

PrefetchLoader::~PrefetchLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PrefetchLoader::worker() {
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    // Collate outside the lock -- this is the overlapped work.  The arena
    // pins each batch's tensors to this thread's pool: the main thread
    // frees them mid-step and the blocks flow back here (the pool is
    // mutex-guarded and outlives the thread via shared ownership), so the
    // next epoch's loader re-serves them.
    alloc::ArenaScope arena;
    data::Batch b = data::collate_indices(ds_, plan_[i]);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_.size() < depth_ || stop_; });
    if (stop_) return;
    ready_.push_back(std::move(b));
    ++produced_;
    cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  produced_ = plan_.size();
  cv_.notify_all();
}

std::optional<data::Batch> PrefetchLoader::next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return !ready_.empty() || (produced_ == plan_.size() && ready_.empty());
  });
  if (ready_.empty()) return std::nullopt;
  data::Batch b = std::move(ready_.front());
  ready_.pop_front();
  cv_.notify_all();
  return b;
}

}  // namespace fastchg::data
