#include "data/prefetch.hpp"

#include "core/alloc.hpp"

namespace fastchg::data {

PrefetchLoader::PrefetchLoader(const data::Dataset& ds,
                               std::vector<std::vector<index_t>> plan,
                               std::size_t depth, alloc::AllocatorPtr arena)
    : ds_(ds),
      plan_(std::move(plan)),
      depth_(std::max<std::size_t>(depth, 1)),
      arena_(std::move(arena)) {
  thread_ = std::thread([this] { worker(); });
}

PrefetchLoader::~PrefetchLoader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void PrefetchLoader::worker() {
  for (std::size_t i = 0; i < plan_.size(); ++i) {
    // Collate outside the lock -- this is the overlapped work.  The arena
    // pins each batch's tensors to a pool the main thread's frees flow
    // back into (pools are mutex-guarded and outlive the thread via shared
    // ownership): the consumer's own step pool when one was handed over --
    // so collation re-serves the very blocks the trainer frees mid-step --
    // else this thread's pool, recycled across the loader's own batches.
    std::optional<alloc::ArenaScope> scope;
    if (arena_) {
      scope.emplace(arena_);
    } else {
      scope.emplace();
    }
    data::Batch b = data::collate_indices(ds_, plan_[i]);
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return ready_.size() < depth_ || stop_; });
    if (stop_) return;
    ready_.push_back(std::move(b));
    ++produced_;
    cv_.notify_all();
  }
  std::lock_guard<std::mutex> lock(mu_);
  produced_ = plan_.size();
  cv_.notify_all();
}

std::optional<data::Batch> PrefetchLoader::next() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] {
    return !ready_.empty() || (produced_ == plan_.size() && ready_.empty());
  });
  if (ready_.empty()) return std::nullopt;
  data::Batch b = std::move(ready_.front());
  ready_.pop_front();
  cv_.notify_all();
  return b;
}

}  // namespace fastchg::data
