// Periodic neighbour list: all directed pairs (i -> j, image n) with
// 0 < |r_j + n@L - r_i| <= cutoff.  Image search range per lattice direction
// is derived from the perpendicular plane spacings so skewed cells are
// handled correctly.
#pragma once

#include <vector>

#include "data/crystal.hpp"

namespace fastchg::data {

struct NeighborList {
  std::vector<index_t> src;    ///< central atom i
  std::vector<index_t> dst;    ///< neighbour atom j
  std::vector<Vec3> image;     ///< integer lattice image n of j
  std::vector<double> dist;    ///< |r_ij|
  std::vector<Vec3> rij;       ///< r_j + n@L - r_i

  index_t size() const { return static_cast<index_t>(src.size()); }
};

/// Build the directed neighbour list of `c` within `cutoff` (Angstrom).
/// Brute force over atom pairs x periodic images: O(N^2), exact for any
/// cell shape/size.
NeighborList build_neighbor_list(const Crystal& c, double cutoff);

/// O(N) cell-list neighbour search for cells at least 3 cutoffs wide in
/// every perpendicular direction (the MD-supercell regime); throws
/// fastchg::Error otherwise.  Produces the same edge set as the brute-force
/// search (verified by property tests), in a different order.
NeighborList build_neighbor_list_cell(const Crystal& c, double cutoff);

/// Dispatch: cell list when the cell qualifies, else brute force.
NeighborList build_neighbor_list_auto(const Crystal& c, double cutoff);

/// True if build_neighbor_list_cell supports this (lattice, cutoff).
bool cell_list_applicable(const Mat3& lattice, double cutoff);

/// Number of periodic images to search along each lattice direction.
std::array<int, 3> image_search_range(const Mat3& lattice, double cutoff);

}  // namespace fastchg::data
