// Synthetic DFT oracle (MPtrj substitute; see DESIGN.md Sec. 2).
//
// A smooth, species-parameterized classical potential plays the role of the
// DFT ground truth:
//   E = sum_i E0(Z_i)
//     + 1/2 sum_{directed pairs} Morse(r; Z_i, Z_j) * switch(r)
//     + 1/2 sum_{ordered angle pairs} lambda_i (cos t - c0_i)^2 h(r1) h(r2)
// Forces and stress are the oracle's *analytic* derivatives, so the labels
// are exactly energy-consistent -- which the derivative-based reference
// CHGNet requires -- and the virial stress matches the strain derivative
// (verified by a property test).  Magnetic moments are a smooth function of
// species and local coordination, giving the magmom head a learnable target.
#pragma once

#include "data/crystal.hpp"

namespace fastchg::data {

struct OracleParams {
  double pair_cutoff = 6.0;    ///< A; matches the atom-graph cutoff
  double triple_cutoff = 3.0;  ///< A; matches the bond-graph cutoff
};

/// Per-species smooth parameter set, derived deterministically from Z.
struct SpeciesParams {
  double e0;      ///< isolated-atom reference energy (eV)
  double d;       ///< Morse well depth (eV)
  double r0;      ///< Morse equilibrium distance (A)
  double lambda;  ///< three-body strength (eV)
  double c0;      ///< preferred cosine
  double mu;      ///< magnetic moment scale (mu_B)
  double w;       ///< coordination weight
};

SpeciesParams species_params(index_t z);

class Oracle {
 public:
  explicit Oracle(OracleParams p = {}) : p_(p) {}

  struct Result {
    double energy = 0.0;
    std::vector<Vec3> forces;
    Mat3 stress{};  ///< eV/A^3, virial convention sigma = (1/V) dE/deps
    std::vector<double> magmom;
  };

  Result evaluate(const Crystal& c) const;
  double energy_only(const Crystal& c) const { return evaluate(c).energy; }
  /// Evaluate and write the labels into the crystal.
  void label(Crystal& c) const;

  const OracleParams& params() const { return p_; }

 private:
  OracleParams p_;
};

}  // namespace fastchg::data
