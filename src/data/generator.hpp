// Synthetic MPtrj-like structure generator.
//
// The paper's load-balancing and scaling results hinge on MPtrj's long-tail
// distribution of atoms/bonds/angles per structure (Fig. 5).  The generator
// reproduces that shape: cell sizes are drawn from a clipped log-normal,
// species from a Z-weighted categorical over 89 elements, lattices are
// randomly sheared, and atoms are placed with a minimum-distance rejection
// loop so the oracle potential stays in a physical regime.
#pragma once

#include <string>
#include <vector>

#include "core/rng.hpp"
#include "data/crystal.hpp"

namespace fastchg::data {

struct GeneratorConfig {
  index_t min_atoms = 2;
  index_t max_atoms = 64;
  double lognormal_mu = 2.3;     ///< of atom count (exp(2.3) ~ 10 atoms)
  double lognormal_sigma = 0.7;  ///< long tail
  double vol_per_atom_min = 14.0;  ///< A^3
  double vol_per_atom_max = 24.0;
  double shear_max = 0.15;       ///< relative off-diagonal lattice shear
  double min_dist = 1.7;         ///< A, placement rejection threshold
  index_t num_species = 89;      ///< elements 1..89, like MPtrj
};

/// One random unlabelled crystal.
Crystal random_crystal(Rng& rng, const GeneratorConfig& cfg = {});

/// Fixed benchmark structures standing in for the paper's Table-II systems
/// (LiMnO2, LiTiPO5, Li9Co7O16): correct stoichiometry and atom counts,
/// cell volumes tuned so the atom/bond/angle workload is in the same regime
/// as the paper's feature numbers (1088 / 3582 / 10188).
Crystal make_reference_structure(const std::string& name);

}  // namespace fastchg::data
