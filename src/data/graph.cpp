#include "data/graph.hpp"

namespace fastchg::data {

GraphData build_graph(const Crystal& c, const GraphConfig& cfg) {
  GraphData g;
  g.num_atoms = c.natoms();
  g.species = c.species;

  NeighborList nl = build_neighbor_list(c, cfg.atom_cutoff);
  g.edge_src = std::move(nl.src);
  g.edge_dst = std::move(nl.dst);
  g.edge_image = std::move(nl.image);
  g.edge_dist = std::move(nl.dist);

  // Group short edges by their central atom, then emit ordered pairs.
  const index_t ne = g.num_edges();
  std::vector<std::vector<index_t>> short_by_src(
      static_cast<std::size_t>(g.num_atoms));
  for (index_t e = 0; e < ne; ++e) {
    if (g.edge_dist[static_cast<std::size_t>(e)] <= cfg.bond_cutoff) {
      g.short_edges.push_back(e);
      short_by_src[static_cast<std::size_t>(
                       g.edge_src[static_cast<std::size_t>(e)])]
          .push_back(e);
    }
  }
  for (const auto& edges : short_by_src) {
    for (index_t e1 : edges) {
      for (index_t e2 : edges) {
        if (e1 == e2) continue;
        g.angle_e1.push_back(e1);
        g.angle_e2.push_back(e2);
      }
    }
  }
  return g;
}

}  // namespace fastchg::data
