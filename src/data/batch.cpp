#include "data/batch.hpp"

#include <cstring>
#include <utility>

#include "core/error.hpp"
#include "core/replay.hpp"

namespace fastchg::data {

Batch collate(const std::vector<const Sample*>& samples,
              bool with_labels) {
  FASTCHG_CHECK(!samples.empty(), "collate: empty batch");
  Batch b;
  b.num_structs = static_cast<index_t>(samples.size());
  for (const Sample* s : samples) {
    b.num_atoms += s->graph.num_atoms;
    b.num_edges += s->graph.num_edges();
    b.num_angles += s->graph.num_angles();
  }
  const index_t A = b.num_atoms, E = b.num_edges, S = b.num_structs;

  // Dense per-atom/per-edge/per-struct tensors are staged in plain vectors
  // (rows append in batch order, so every write below is a push_back) and
  // adopted wholesale by Tensor::from_vector(&&) at the end -- one buffer
  // per tensor, no element copy.  image_blockdiag is the exception: its
  // writes scatter into a zero background, so it stays a zeros() tensor.
  std::vector<float> cart_v, image_v, forces_v, magmom_v, energy_v, stress_v;
  cart_v.reserve(static_cast<std::size_t>(A) * 3);
  image_v.reserve(static_cast<std::size_t>(E) * 3);
  if (with_labels) {
    forces_v.reserve(static_cast<std::size_t>(A) * 3);
    magmom_v.reserve(static_cast<std::size_t>(A));
    energy_v.reserve(static_cast<std::size_t>(S));
    stress_v.reserve(static_cast<std::size_t>(S) * 9);
  }
  b.image_blockdiag = Tensor::zeros({E, 3 * S});

  b.species.reserve(static_cast<std::size_t>(A));
  b.edge_src.reserve(static_cast<std::size_t>(E));
  b.edge_dst.reserve(static_cast<std::size_t>(E));
  b.edge_struct.reserve(static_cast<std::size_t>(E));
  b.atom_struct.reserve(static_cast<std::size_t>(A));

  b.atom_first.push_back(0);
  b.edge_first.push_back(0);
  b.angle_first.push_back(0);

  index_t atom_off = 0, edge_off = 0;
  index_t si = 0;
  for (const Sample* sp : samples) {
    const Crystal& c = sp->crystal;
    const GraphData& g = sp->graph;
    const index_t n = g.num_atoms;
    const index_t ne = g.num_edges();

    Tensor lat = Tensor::empty({3, 3});
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j)
        lat.data()[i * 3 + j] = static_cast<float>(c.lattice[i][j]);
    b.lattices.push_back(lat);
    b.volumes.push_back(c.volume());
    b.natoms.push_back(n);

    const std::vector<Vec3> cart = c.wrapped_cart();
    // Unlabelled crystals (e.g. MD snapshots) carry empty label vectors;
    // collate fills zeros so inference batches work too.
    const bool has_forces = with_labels && c.forces.size() == c.frac.size();
    const bool has_magmom = with_labels && c.magmom.size() == c.frac.size();
    for (index_t i = 0; i < n; ++i) {
      const auto siz = static_cast<std::size_t>(i);
      for (int d = 0; d < 3; ++d) {
        cart_v.push_back(static_cast<float>(cart[siz][d]));
        if (with_labels) {
          forces_v.push_back(
              has_forces ? static_cast<float>(c.forces[siz][d]) : 0.0f);
        }
      }
      b.species.push_back(c.species[siz]);
      b.atom_struct.push_back(si);
      if (with_labels) {
        magmom_v.push_back(
            has_magmom ? static_cast<float>(c.magmom[siz]) : 0.0f);
      }
    }
    for (index_t e = 0; e < ne; ++e) {
      const auto se = static_cast<std::size_t>(e);
      b.edge_src.push_back(g.edge_src[se] + atom_off);
      b.edge_dst.push_back(g.edge_dst[se] + atom_off);
      b.edge_struct.push_back(si);
      for (int d = 0; d < 3; ++d) {
        const float img = static_cast<float>(g.edge_image[se][d]);
        image_v.push_back(img);
        b.image_blockdiag.data()[(edge_off + e) * 3 * S + 3 * si + d] = img;
      }
    }
    for (std::size_t a = 0; a < g.angle_e1.size(); ++a) {
      b.angle_e1.push_back(g.angle_e1[a] + edge_off);
      b.angle_e2.push_back(g.angle_e2[a] + edge_off);
      b.angle_center.push_back(
          g.edge_src[static_cast<std::size_t>(g.angle_e1[a])] + atom_off);
    }

    if (with_labels) {
      energy_v.push_back(
          static_cast<float>(c.energy / static_cast<double>(n)));
      for (int i = 0; i < 3; ++i)
        for (int j = 0; j < 3; ++j)
          stress_v.push_back(static_cast<float>(c.stress[i][j]));
    }

    atom_off += n;
    edge_off += ne;
    ++si;
    b.atom_first.push_back(atom_off);
    b.edge_first.push_back(edge_off);
    b.angle_first.push_back(static_cast<index_t>(b.angle_e1.size()));
  }

  b.cart = Tensor::from_vector(std::move(cart_v), {A, 3});
  b.edge_image = Tensor::from_vector(std::move(image_v), {E, 3});
  if (with_labels) {
    b.energy_per_atom = Tensor::from_vector(std::move(energy_v), {S, 1});
    b.forces = Tensor::from_vector(std::move(forces_v), {A, 3});
    b.stress = Tensor::from_vector(std::move(stress_v), {S, 9});
    b.magmom = Tensor::from_vector(std::move(magmom_v), {A, 1});
  }
  return b;
}

Batch collate_indices(const Dataset& ds, const std::vector<index_t>& idx) {
  std::vector<const Sample*> samples;
  samples.reserve(idx.size());
  for (index_t i : idx) samples.push_back(&ds[i]);
  return collate(samples);
}

std::uint64_t replay_key(const Batch& b, std::uint64_t seed) {
  replay::KeyBuilder k;
  k.mix(seed);
  k.mix(static_cast<std::uint64_t>(b.num_structs));
  k.mix(static_cast<std::uint64_t>(b.num_atoms));
  k.mix(static_cast<std::uint64_t>(b.num_edges));
  k.mix(static_cast<std::uint64_t>(b.num_angles));
  // Composition: species are baked into the embedding gathers; volumes are
  // baked as scalar attributes of the energy normalization.  Hash volume
  // bit patterns (not rounded values) -- any numeric change must miss.
  k.mix_indices(b.species);
  k.mix_indices(b.natoms);
  k.mix(static_cast<std::uint64_t>(b.volumes.size()));
  for (double v : b.volumes) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    k.mix(bits);
  }
  // Topology: every index vector ends up inside gather/scatter closures.
  k.mix_indices(b.edge_src);
  k.mix_indices(b.edge_dst);
  k.mix_indices(b.edge_struct);
  k.mix_indices(b.angle_e1);
  k.mix_indices(b.angle_e2);
  k.mix_indices(b.angle_center);
  k.mix_indices(b.atom_struct);
  k.mix_indices(b.atom_first);
  k.mix_indices(b.edge_first);
  k.mix_indices(b.angle_first);
  // Bound-tensor geometry: shape + definedness only, never float payloads.
  k.mix_shape(b.cart);
  k.mix_shape(b.edge_image);
  k.mix_shape(b.image_blockdiag);
  k.mix(static_cast<std::uint64_t>(b.lattices.size()));
  for (const Tensor& lat : b.lattices) k.mix_shape(lat);
  k.mix_shape(b.energy_per_atom);
  k.mix_shape(b.forces);
  k.mix_shape(b.stress);
  k.mix_shape(b.magmom);
  return k.h;
}

std::vector<Tensor> replay_inputs(const Batch& b) {
  std::vector<Tensor> in;
  in.reserve(8 + b.lattices.size());
  in.push_back(b.cart);
  in.push_back(b.edge_image);
  in.push_back(b.image_blockdiag);
  for (const Tensor& lat : b.lattices) in.push_back(lat);
  // Labels may be undefined (serve batches); bind() records the
  // definedness pattern so positions still line up.
  in.push_back(b.energy_per_atom);
  in.push_back(b.forces);
  in.push_back(b.stress);
  in.push_back(b.magmom);
  return in;
}

}  // namespace fastchg::data
