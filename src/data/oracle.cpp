#include "data/oracle.hpp"

#include <cmath>

#include "data/graph.hpp"
#include "data/neighbor.hpp"

namespace fastchg::data {

namespace {

/// Smootherstep that falls from 1 at x=0 to 0 at x=1 with zero slope at both
/// ends (keeps forces continuous at the cutoff).
inline double switch_down(double x) {
  if (x <= 0.0) return 1.0;
  if (x >= 1.0) return 0.0;
  return 1.0 - x * x * x * (10.0 - 15.0 * x + 6.0 * x * x);
}

inline double switch_down_deriv(double x) {
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return -30.0 * x * x * (1.0 - 2.0 * x + x * x);
}

}  // namespace

SpeciesParams species_params(index_t z) {
  const double zf = static_cast<double>(z);
  SpeciesParams p;
  p.e0 = -3.0 + 2.0 * std::sin(0.05 * zf);
  p.d = 1.2 + 0.5 * std::cos(0.21 * zf);
  p.r0 = 2.0 + 0.5 * std::sin(0.37 * zf);
  p.lambda = 0.30 + 0.20 * std::sin(0.13 * zf);
  p.c0 = -0.30 + 0.30 * std::cos(0.40 * zf);
  p.mu = 2.0 * std::fabs(std::sin(0.30 * zf));
  p.w = 0.8 + 0.4 * std::cos(0.17 * zf);
  return p;
}

Oracle::Result Oracle::evaluate(const Crystal& c) const {
  Result res;
  const index_t n = c.natoms();
  res.forces.assign(static_cast<std::size_t>(n), Vec3{});
  res.magmom.assign(static_cast<std::size_t>(n), 0.0);
  const double vol = c.volume();

  // dE/dr accumulators (forces = -dE/dr at the end).
  std::vector<Vec3> de(static_cast<std::size_t>(n), Vec3{});
  Mat3 virial{};  // sum u_a (dE/du)_b

  std::vector<SpeciesParams> sp;
  sp.reserve(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    sp.push_back(species_params(c.species[static_cast<std::size_t>(i)]));
    res.energy += sp.back().e0;
  }

  // ---- pair term over directed edges (1/2 factor) -------------------------
  NeighborList nl = build_neighbor_list(c, p_.pair_cutoff);
  std::vector<double> coord(static_cast<std::size_t>(n), 0.0);
  for (index_t e = 0; e < nl.size(); ++e) {
    const auto i = static_cast<std::size_t>(nl.src[e]);
    const auto j = static_cast<std::size_t>(nl.dst[e]);
    const double r = nl.dist[e];
    const Vec3& u = nl.rij[e];
    const SpeciesParams& pi = sp[i];
    const SpeciesParams& pj = sp[j];
    const double dij = std::sqrt(pi.d * pj.d);
    const double r0 = 0.5 * (pi.r0 + pj.r0);
    const double a = 1.7 / r0;
    const double ema = std::exp(-a * (r - r0));
    const double morse = dij * (ema * ema - 2.0 * ema);
    const double dmorse = dij * (-2.0 * a * ema * ema + 2.0 * a * ema);
    const double x = r / p_.pair_cutoff;
    const double s = switch_down(x);
    const double ds = switch_down_deriv(x) / p_.pair_cutoff;
    const double phi = morse * s;
    const double dphi = dmorse * s + morse * ds;

    res.energy += 0.5 * phi;
    // dE/du for this edge: 0.5 * dphi * u/r
    const double k = 0.5 * dphi / r;
    for (int d = 0; d < 3; ++d) {
      const double g = k * u[d];
      de[j][d] += g;
      de[i][d] -= g;
    }
    for (int aa = 0; aa < 3; ++aa)
      for (int bb = 0; bb < 3; ++bb) virial[aa][bb] += u[aa] * k * u[bb];

    // coordination for the magmom model
    coord[i] += s * pj.w;
  }

  // ---- three-body term over ordered short-bond pairs (1/2 factor) ---------
  GraphConfig gc;
  gc.atom_cutoff = p_.triple_cutoff;  // only short bonds needed here
  gc.bond_cutoff = p_.triple_cutoff;
  GraphData g3 = build_graph(c, gc);
  const std::vector<Vec3> cart = c.wrapped_cart();
  auto edge_vec = [&](index_t e) -> Vec3 {
    const auto se = static_cast<std::size_t>(e);
    const Vec3 shift = mat_vec(c.lattice, g3.edge_image[se]);
    const auto i = static_cast<std::size_t>(g3.edge_src[se]);
    const auto j = static_cast<std::size_t>(g3.edge_dst[se]);
    return {cart[j][0] + shift[0] - cart[i][0],
            cart[j][1] + shift[1] - cart[i][1],
            cart[j][2] + shift[2] - cart[i][2]};
  };
  for (std::size_t ang = 0; ang < g3.angle_e1.size(); ++ang) {
    const index_t e1 = g3.angle_e1[ang];
    const index_t e2 = g3.angle_e2[ang];
    const auto i = static_cast<std::size_t>(
        g3.edge_src[static_cast<std::size_t>(e1)]);
    const auto j = static_cast<std::size_t>(
        g3.edge_dst[static_cast<std::size_t>(e1)]);
    const auto kk = static_cast<std::size_t>(
        g3.edge_dst[static_cast<std::size_t>(e2)]);
    const Vec3 u = edge_vec(e1);
    const Vec3 v = edge_vec(e2);
    const double ru = norm(u), rv = norm(v);
    const double cosq = dot(u, v) / (ru * rv);
    const SpeciesParams& pi = sp[i];
    const double xu = ru / p_.triple_cutoff, xv = rv / p_.triple_cutoff;
    const double hu = switch_down(xu), hv = switch_down(xv);
    const double dhu = switch_down_deriv(xu) / p_.triple_cutoff;
    const double dhv = switch_down_deriv(xv) / p_.triple_cutoff;
    const double dc = cosq - pi.c0;
    const double pref = 0.5;  // ordered pairs double-count

    res.energy += pref * pi.lambda * dc * dc * hu * hv;

    const double dEdcos = pref * 2.0 * pi.lambda * dc * hu * hv;
    const double dEdru = pref * pi.lambda * dc * dc * dhu * hv;
    const double dEdrv = pref * pi.lambda * dc * dc * hu * dhv;
    Vec3 dEdu{}, dEdv{};
    for (int d = 0; d < 3; ++d) {
      const double dcos_du = v[d] / (ru * rv) - cosq * u[d] / (ru * ru);
      const double dcos_dv = u[d] / (ru * rv) - cosq * v[d] / (rv * rv);
      dEdu[d] = dEdcos * dcos_du + dEdru * u[d] / ru;
      dEdv[d] = dEdcos * dcos_dv + dEdrv * v[d] / rv;
    }
    for (int d = 0; d < 3; ++d) {
      de[j][d] += dEdu[d];
      de[kk][d] += dEdv[d];
      de[i][d] -= dEdu[d] + dEdv[d];
    }
    for (int aa = 0; aa < 3; ++aa) {
      for (int bb = 0; bb < 3; ++bb) {
        virial[aa][bb] += u[aa] * dEdu[bb] + v[aa] * dEdv[bb];
      }
    }
  }

  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    for (int d = 0; d < 3; ++d) res.forces[si][d] = -de[si][d];
    // Smooth coordination- and species-dependent magnetic moment.
    res.magmom[si] =
        sp[si].mu * (0.5 + 0.5 * std::tanh(0.6 * (coord[si] - 6.0)));
  }
  for (int aa = 0; aa < 3; ++aa)
    for (int bb = 0; bb < 3; ++bb) res.stress[aa][bb] = virial[aa][bb] / vol;
  return res;
}

void Oracle::label(Crystal& c) const {
  Result r = evaluate(c);
  c.energy = r.energy;
  c.forces = std::move(r.forces);
  c.stress = r.stress;
  c.magmom = std::move(r.magmom);
}

}  // namespace fastchg::data
