// Verlet (skin-buffered) neighbour caching for MD.
//
// Rebuilding the neighbour list from scratch every MD step is the dominant
// per-step cost for small systems (the Table-II regime).  The classic fix:
// build the candidate list once with cutoff + skin, then on subsequent
// steps only *filter* the cached candidates by their current distances.  A
// full rebuild is triggered when any atom has moved more than skin/2 since
// the reference snapshot -- the standard sufficient condition that no pair
// can have entered the true cutoff unseen.
//
// Images are re-based on each query so the returned graph is exactly what
// build_graph would produce for the current wrapped coordinates (verified
// by equivalence tests over MD-like random walks).
#pragma once

#include "data/graph.hpp"

namespace fastchg::data {

class VerletList {
 public:
  /// skin > 0 (Angstrom).  Cutoffs as in GraphConfig.
  VerletList(GraphConfig cfg, double skin = 1.0);

  /// Graph of `c` under the configured cutoffs; candidates are reused
  /// across calls while the skin criterion holds.
  GraphData graph(const Crystal& c);

  index_t queries() const { return queries_; }
  index_t rebuilds() const { return rebuilds_; }

 private:
  bool needs_rebuild(const Crystal& c) const;
  void rebuild(const Crystal& c);

  GraphConfig cfg_;
  double skin_;
  index_t queries_ = 0;
  index_t rebuilds_ = 0;

  // Reference snapshot (at last rebuild).
  bool has_ref_ = false;
  Mat3 ref_lattice_{};
  std::vector<Vec3> ref_frac_;      ///< wrapped
  NeighborList candidates_;         ///< within cutoff + skin, ref images
};

}  // namespace fastchg::data
