// Data prefetch (paper Sec. III-C "Other Optimization"): while the current
// batch is being processed, the next mini-batch is collated asynchronously
// on a background thread -- the CPU-side analogue of the paper's separate
// copy stream.  A bounded queue provides back-pressure.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/alloc.hpp"
#include "data/batch.hpp"

namespace fastchg::data {

class PrefetchLoader {
 public:
  /// Collates `plan[i]` for i = 0..n-1 ahead of consumption, keeping at most
  /// `depth` ready batches in flight.  With `arena` set, batch tensors are
  /// drawn from that allocator instead of the worker's thread-local pool --
  /// the consumer hands its own step pool over so the blocks it frees
  /// mid-step are the ones the loader re-serves, and the steady state stops
  /// touching the system allocator entirely.
  PrefetchLoader(const data::Dataset& ds,
                 std::vector<std::vector<index_t>> plan, std::size_t depth = 2,
                 alloc::AllocatorPtr arena = nullptr);
  ~PrefetchLoader();
  PrefetchLoader(const PrefetchLoader&) = delete;
  PrefetchLoader& operator=(const PrefetchLoader&) = delete;

  /// Blocking pop of the next batch; std::nullopt once the plan is
  /// exhausted.  Batches arrive in plan order.
  std::optional<data::Batch> next();

  std::size_t batches_total() const { return plan_.size(); }

 private:
  void worker();

  const data::Dataset& ds_;
  std::vector<std::vector<index_t>> plan_;
  std::size_t depth_;
  alloc::AllocatorPtr arena_;  ///< consumer's pool; nullptr = thread pool

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<data::Batch> ready_;
  std::size_t produced_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fastchg::data
