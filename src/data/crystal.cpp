#include "data/crystal.hpp"

#include <cmath>

namespace fastchg::data {

Vec3 mat_vec(const Mat3& m, const Vec3& v) {
  // row-vector convention: out = v @ m
  Vec3 out{};
  for (int j = 0; j < 3; ++j) {
    out[j] = v[0] * m[0][j] + v[1] * m[1][j] + v[2] * m[2][j];
  }
  return out;
}

Mat3 mat_mul(const Mat3& a, const Mat3& b) {
  Mat3 out{};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      for (int k = 0; k < 3; ++k) out[i][j] += a[i][k] * b[k][j];
  return out;
}

double det3(const Mat3& m) {
  return m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1]) -
         m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0]) +
         m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]);
}

Mat3 inv3(const Mat3& m) {
  const double d = det3(m);
  // A singular matrix here is almost always a degenerate lattice that
  // slipped past validation; dividing by ~0 would propagate Inf/NaN into
  // every downstream coordinate.  Fail loudly instead (serving entry points
  // reject such cells with a typed error before ever reaching this).
  FASTCHG_CHECK(std::isfinite(d) && std::fabs(d) > 1e-12,
                "inv3: singular or non-finite matrix (det " << d << ")");
  Mat3 inv{};
  inv[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) / d;
  inv[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) / d;
  inv[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) / d;
  inv[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) / d;
  inv[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) / d;
  inv[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) / d;
  inv[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) / d;
  inv[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) / d;
  inv[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) / d;
  return inv;
}

Vec3 cross(const Vec3& a, const Vec3& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

double dot(const Vec3& a, const Vec3& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

double norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

std::vector<Vec3> Crystal::cart() const {
  std::vector<Vec3> out(frac.size());
  for (std::size_t i = 0; i < frac.size(); ++i) {
    out[i] = mat_vec(lattice, frac[i]);
  }
  return out;
}

Vec3 wrap_frac(const Vec3& f) {
  Vec3 w;
  for (int d = 0; d < 3; ++d) {
    w[d] = f[d] - std::floor(f[d]);
  }
  return w;
}

std::vector<Vec3> Crystal::wrapped_cart() const {
  std::vector<Vec3> out(frac.size());
  for (std::size_t i = 0; i < frac.size(); ++i) {
    out[i] = mat_vec(lattice, wrap_frac(frac[i]));
  }
  return out;
}

double Crystal::volume() const { return std::fabs(det3(lattice)); }

Crystal make_supercell(const Crystal& c, int na, int nb, int nc) {
  Crystal s;
  const double fa = na, fb = nb, fc = nc;
  for (int j = 0; j < 3; ++j) {
    s.lattice[0][j] = c.lattice[0][j] * fa;
    s.lattice[1][j] = c.lattice[1][j] * fb;
    s.lattice[2][j] = c.lattice[2][j] * fc;
  }
  for (int ia = 0; ia < na; ++ia) {
    for (int ib = 0; ib < nb; ++ib) {
      for (int ic = 0; ic < nc; ++ic) {
        for (std::size_t atom = 0; atom < c.frac.size(); ++atom) {
          s.frac.push_back({(c.frac[atom][0] + ia) / fa,
                            (c.frac[atom][1] + ib) / fb,
                            (c.frac[atom][2] + ic) / fc});
          s.species.push_back(c.species[atom]);
        }
      }
    }
  }
  return s;
}

}  // namespace fastchg::data
