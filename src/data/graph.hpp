// Molecular graph extraction (paper Sec. II-B (1)): from a crystal build
//  * the atom graph G^a: directed edges within `atom_cutoff` (default 6 A);
//  * the bond graph G^b: angles between pairs of *short* bonds (dist <=
//    `bond_cutoff`, default 3 A) sharing a central atom; each angle
//    references two atom-graph edge indices (e_ij, e_ik) with common src i.
#pragma once

#include <vector>

#include "data/neighbor.hpp"

namespace fastchg::data {

struct GraphConfig {
  double atom_cutoff = 6.0;  ///< A (paper default)
  double bond_cutoff = 3.0;  ///< A (paper default)
};

struct GraphData {
  index_t num_atoms = 0;
  std::vector<index_t> species;

  // Atom graph (directed).
  std::vector<index_t> edge_src;
  std::vector<index_t> edge_dst;
  std::vector<Vec3> edge_image;
  std::vector<double> edge_dist;  ///< |r_ij| at build time (convenience)

  // Bond graph: indices into the edge arrays; both edges share src and have
  // edge_dist <= bond_cutoff.  Ordered pairs (e1 != e2), matching Eq. 5's
  // sum over k != j.
  std::vector<index_t> angle_e1;
  std::vector<index_t> angle_e2;

  // Edge indices whose dist <= bond_cutoff (the bond-graph nodes).
  std::vector<index_t> short_edges;

  index_t num_edges() const { return static_cast<index_t>(edge_src.size()); }
  index_t num_angles() const {
    return static_cast<index_t>(angle_e1.size());
  }
  /// Paper's workload measure (Fig. 9): atoms + bonds + angles.
  index_t feature_number() const {
    return num_atoms + num_edges() + num_angles();
  }
};

GraphData build_graph(const Crystal& c, const GraphConfig& cfg = {});

}  // namespace fastchg::data
