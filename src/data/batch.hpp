// Graph batching: concatenate a set of samples into one disjoint-union graph
// with atom/edge index offsets, plus label tensors and the auxiliary
// matrices that Alg. 2's batched ("parallel") basis computation needs.
//
// The block-diagonal image matrix B_I [E, 3S] is materialized densely, just
// as the paper describes -- it notes the zero padding "leads to increased
// memory demands" (Fig. 8c), which our memory tracker reproduces.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace fastchg::data {

struct Batch {
  index_t num_structs = 0;
  index_t num_atoms = 0;
  index_t num_edges = 0;
  index_t num_angles = 0;

  std::vector<index_t> species;       ///< [A], atomic numbers
  Tensor cart;                        ///< [A,3] cartesian positions
  std::vector<Tensor> lattices;       ///< S tensors [3,3]
  std::vector<double> volumes;        ///< [S]
  std::vector<index_t> natoms;        ///< [S]

  std::vector<index_t> edge_src;      ///< [E], atom-offset adjusted
  std::vector<index_t> edge_dst;      ///< [E]
  Tensor edge_image;                  ///< [E,3] integer images
  Tensor image_blockdiag;             ///< [E,3S] dense block-diagonal (Alg. 2)
  std::vector<index_t> edge_struct;   ///< [E] owning structure

  std::vector<index_t> angle_e1;      ///< [G], edge-offset adjusted
  std::vector<index_t> angle_e2;      ///< [G]
  std::vector<index_t> angle_center;  ///< [G], central atom (atom-offset adjusted)
  std::vector<index_t> atom_struct;   ///< [A]

  // Per-structure ranges for the serial (Alg. 1) path.
  std::vector<index_t> atom_first;    ///< [S+1]
  std::vector<index_t> edge_first;    ///< [S+1]
  std::vector<index_t> angle_first;   ///< [S+1]

  // Labels (undefined when collated with with_labels = false).
  Tensor energy_per_atom;             ///< [S,1], eV/atom
  Tensor forces;                      ///< [A,3], eV/A
  Tensor stress;                      ///< [S,9], eV/A^3 row-major
  Tensor magmom;                      ///< [A,1], mu_B

  index_t feature_number() const {
    return num_atoms + num_edges + num_angles;
  }
};

/// Collate samples (non-owning pointers must outlive the call).  The serving
/// path collates with `with_labels = false`: inference batches never read
/// the label tensors, so skipping them avoids allocating and filling
/// A*(3+1) + S*10 floats per micro-batch (the label tensors stay undefined).
Batch collate(const std::vector<const Sample*>& samples,
              bool with_labels = true);

/// Convenience: collate dataset rows by index.
Batch collate_indices(const Dataset& ds, const std::vector<index_t>& idx);

/// Replay program-cache key for this batch (core/replay.hpp): hashes the
/// full topology and composition -- counts, species, per-structure atom
/// counts and volumes, every index vector, and the shapes/definedness of
/// the float tensors.  Everything float-valued that flows through bound
/// slots (positions, images, lattices, labels) is deliberately excluded:
/// a captured program is reusable across batches that differ only in those
/// values.  `seed` namespaces the key per integration site (e.g. one key
/// space per DP virtual device).
std::uint64_t replay_key(const Batch& b, std::uint64_t seed);

/// The rebindable inputs of a step on this batch, in the fixed order both
/// capture (Recorder::bind_input) and replay (Program::bind) use.
std::vector<Tensor> replay_inputs(const Batch& b);

}  // namespace fastchg::data
