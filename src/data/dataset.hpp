// Dataset: labelled crystals plus their prebuilt graphs, train/val/test
// splitting (paper: 0.9 / 0.05 / 0.05), and the distribution statistics
// behind Fig. 5 and the load-balance analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "data/generator.hpp"
#include "data/graph.hpp"
#include "data/oracle.hpp"

namespace fastchg::data {

struct Sample {
  Crystal crystal;
  GraphData graph;
};

class Dataset {
 public:
  Dataset() = default;

  /// Generate `n` random crystals, label them with the oracle, and build
  /// their graphs.  Deterministic given `seed`.
  static Dataset generate(index_t n, std::uint64_t seed,
                          const GeneratorConfig& gen_cfg = {},
                          const GraphConfig& graph_cfg = {},
                          const OracleParams& oracle_params = {});

  /// Wrap existing crystals (labels them if `relabel`).
  static Dataset from_crystals(std::vector<Crystal> crystals,
                               const GraphConfig& graph_cfg = {},
                               const OracleParams& oracle_params = {},
                               bool relabel = true);

  index_t size() const { return static_cast<index_t>(samples_.size()); }
  const Sample& operator[](index_t i) const {
    return samples_[static_cast<std::size_t>(i)];
  }

  struct Split {
    std::vector<index_t> train, val, test;
  };
  /// Shuffled split by fraction; train gets the remainder.
  Split split(double val_frac, double test_frac, std::uint64_t seed) const;

  struct Histogram {
    std::vector<double> edges;       ///< bin upper bounds
    std::vector<index_t> counts;
  };
  struct DistributionStats {
    Histogram atoms, bonds, angles;
    double mean_atoms = 0, mean_bonds = 0, mean_angles = 0;
    index_t max_atoms = 0, max_bonds = 0, max_angles = 0;
  };
  /// Per-structure atom/bond/angle histograms (Fig. 5).
  DistributionStats distribution(index_t num_bins = 20) const;

  const GraphConfig& graph_config() const { return graph_cfg_; }

 private:
  std::vector<Sample> samples_;
  GraphConfig graph_cfg_;
};

}  // namespace fastchg::data
