#include "data/verlet.hpp"

#include <cmath>

#include "core/error.hpp"
#include "data/neighbor.hpp"

namespace fastchg::data {

VerletList::VerletList(GraphConfig cfg, double skin)
    : cfg_(cfg), skin_(skin) {
  FASTCHG_CHECK(skin > 0.0, "VerletList: skin " << skin);
}

bool VerletList::needs_rebuild(const Crystal& c) const {
  if (!has_ref_) return true;
  if (c.frac.size() != ref_frac_.size()) return true;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (c.lattice[i][j] != ref_lattice_[i][j]) return true;  // cell moved
    }
  }
  const double limit2 = 0.25 * skin_ * skin_;  // (skin/2)^2
  for (std::size_t i = 0; i < c.frac.size(); ++i) {
    Vec3 df;
    for (int d = 0; d < 3; ++d) {
      double delta = wrap_frac(c.frac[i])[d] - ref_frac_[i][d];
      delta -= std::round(delta);  // minimum-image displacement
      df[d] = delta;
    }
    const Vec3 dr = mat_vec(c.lattice, df);
    if (dot(dr, dr) > limit2) return true;
  }
  return false;
}

void VerletList::rebuild(const Crystal& c) {
  candidates_ = build_neighbor_list_auto(c, cfg_.atom_cutoff + skin_);
  ref_lattice_ = c.lattice;
  ref_frac_.resize(c.frac.size());
  for (std::size_t i = 0; i < c.frac.size(); ++i) {
    ref_frac_[i] = wrap_frac(c.frac[i]);
  }
  has_ref_ = true;
  ++rebuilds_;
}

GraphData VerletList::graph(const Crystal& c) {
  ++queries_;
  if (needs_rebuild(c)) rebuild(c);

  const std::size_t n = c.frac.size();
  // Per-atom drift since the reference, unwrapped (|drift| <= skin/2), and
  // the integer cell offset between the atom's current wrapped image and
  // its unwrapped position -- needed to re-base the cached edge images so
  // the returned graph matches build_graph on the *current* wrapped coords.
  std::vector<Vec3> unwrapped(n);   // cartesian, in the reference frame
  std::vector<std::array<int, 3>> off(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 now = wrap_frac(c.frac[i]);
    Vec3 f;
    for (int d = 0; d < 3; ++d) {
      double delta = now[d] - ref_frac_[i][d];
      delta -= std::round(delta);
      f[d] = ref_frac_[i][d] + delta;            // unwrapped fractional
      off[i][d] = static_cast<int>(std::lround(now[d] - f[d]));
    }
    unwrapped[i] = mat_vec(c.lattice, f);
  }

  GraphData g;
  g.num_atoms = c.natoms();
  g.species = c.species;
  for (index_t e = 0; e < candidates_.size(); ++e) {
    const auto i = static_cast<std::size_t>(candidates_.src[e]);
    const auto j = static_cast<std::size_t>(candidates_.dst[e]);
    const Vec3 shift = mat_vec(c.lattice, candidates_.image[e]);
    const Vec3 d{unwrapped[j][0] + shift[0] - unwrapped[i][0],
                 unwrapped[j][1] + shift[1] - unwrapped[i][1],
                 unwrapped[j][2] + shift[2] - unwrapped[i][2]};
    const double dist = norm(d);
    if (dist > cfg_.atom_cutoff || dist < 1e-6) continue;
    g.edge_src.push_back(candidates_.src[e]);
    g.edge_dst.push_back(candidates_.dst[e]);
    // Re-base the image onto the wrapped coordinates collate() will use:
    // r_j(wrapped) = r_j(unwrapped) + off_j @ L, so the image shrinks by
    // (off_j - off_i).
    Vec3 img = candidates_.image[e];
    for (int dd = 0; dd < 3; ++dd) {
      img[dd] += static_cast<double>(off[i][dd] - off[j][dd]);
    }
    g.edge_image.push_back(img);
    g.edge_dist.push_back(dist);
  }

  // Bond graph over short edges, exactly as build_graph does.
  std::vector<std::vector<index_t>> short_by_src(n);
  for (index_t e = 0; e < g.num_edges(); ++e) {
    if (g.edge_dist[static_cast<std::size_t>(e)] <= cfg_.bond_cutoff) {
      g.short_edges.push_back(e);
      short_by_src[static_cast<std::size_t>(
                       g.edge_src[static_cast<std::size_t>(e)])]
          .push_back(e);
    }
  }
  for (const auto& edges : short_by_src) {
    for (index_t e1 : edges) {
      for (index_t e2 : edges) {
        if (e1 == e2) continue;
        g.angle_e1.push_back(e1);
        g.angle_e2.push_back(e2);
      }
    }
  }
  return g;
}

}  // namespace fastchg::data
