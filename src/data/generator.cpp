#include "data/generator.hpp"

#include <cmath>

#include "core/error.hpp"

namespace fastchg::data {

namespace {

/// Minimum-image distance between two fractional positions (search over the
/// 27 nearest images; adequate for the compact cells we generate).
double min_image_dist(const Mat3& lat, const Vec3& fa, const Vec3& fb) {
  double best = 1e30;
  for (int na = -1; na <= 1; ++na) {
    for (int nb = -1; nb <= 1; ++nb) {
      for (int nc = -1; nc <= 1; ++nc) {
        const Vec3 df{fb[0] - fa[0] + na, fb[1] - fa[1] + nb,
                      fb[2] - fa[2] + nc};
        const Vec3 d = mat_vec(lat, df);
        best = std::min(best, norm(d));
      }
    }
  }
  return best;
}

Crystal build_cell(Rng& rng, index_t natoms,
                   const std::vector<index_t>& species, double vol_per_atom,
                   double shear_max, double min_dist) {
  Crystal c;
  c.species = species;
  const double len =
      std::cbrt(vol_per_atom * static_cast<double>(natoms));
  // Random anisotropy + shear around a cube of the right volume.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      if (i == j) {
        c.lattice[i][j] = len * rng.uniform(0.85, 1.2);
      } else {
        c.lattice[i][j] = len * rng.uniform(-shear_max, shear_max);
      }
    }
  }
  c.frac.resize(static_cast<std::size_t>(natoms));
  for (index_t i = 0; i < natoms; ++i) {
    Vec3 f{};
    bool placed = false;
    for (int attempt = 0; attempt < 60 && !placed; ++attempt) {
      f = {rng.uniform(), rng.uniform(), rng.uniform()};
      placed = true;
      for (index_t j = 0; j < i; ++j) {
        if (min_image_dist(c.lattice, c.frac[static_cast<std::size_t>(j)],
                           f) < min_dist) {
          placed = false;
          break;
        }
      }
    }
    c.frac[static_cast<std::size_t>(i)] = f;  // last try kept if crowded
  }
  return c;
}

}  // namespace

Crystal random_crystal(Rng& rng, const GeneratorConfig& cfg) {
  const double ln = rng.normal(cfg.lognormal_mu, cfg.lognormal_sigma);
  index_t natoms = static_cast<index_t>(std::lround(std::exp(ln)));
  natoms = std::max(cfg.min_atoms, std::min(cfg.max_atoms, natoms));

  // Z-weighted species draw: lighter elements more common, mimicking the
  // oxide-dominated composition of MPtrj.
  std::vector<double> weights(static_cast<std::size_t>(cfg.num_species));
  for (std::size_t z = 0; z < weights.size(); ++z) {
    weights[z] = 1.0 / (1.0 + 0.08 * static_cast<double>(z));
  }
  std::vector<index_t> species(static_cast<std::size_t>(natoms));
  for (auto& s : species) {
    s = static_cast<index_t>(rng.categorical(weights)) + 1;
  }
  const double vpa = rng.uniform(cfg.vol_per_atom_min, cfg.vol_per_atom_max);
  return build_cell(rng, natoms, species, vpa, cfg.shear_max, cfg.min_dist);
}

Crystal make_reference_structure(const std::string& name) {
  std::vector<index_t> species;
  double vol_per_atom = 0.0;
  std::uint64_t seed = 0;
  if (name == "LiMnO2") {
    // 2x (Li Mn O2) = 8 atoms
    species = {3, 3, 25, 25, 8, 8, 8, 8};
    vol_per_atom = 19.5;
    seed = 101;
  } else if (name == "LiTiPO5") {
    // 4x (Li Ti P O5) = 32 atoms
    for (int r = 0; r < 4; ++r) {
      species.push_back(3);
      species.push_back(22);
      species.push_back(15);
      for (int o = 0; o < 5; ++o) species.push_back(8);
    }
    vol_per_atom = 10.0;
    seed = 202;
  } else if (name == "Li9Co7O16") {
    // Li9 Co7 O16 = 32 atoms
    for (int r = 0; r < 9; ++r) species.push_back(3);
    for (int r = 0; r < 7; ++r) species.push_back(27);
    for (int r = 0; r < 16; ++r) species.push_back(8);
    vol_per_atom = 7.4;
    seed = 303;
  } else {
    FASTCHG_CHECK(false, "unknown reference structure '" << name << "'");
  }
  Rng rng(seed);
  return build_cell(rng, static_cast<index_t>(species.size()), species,
                    vol_per_atom, /*shear_max=*/0.05, /*min_dist=*/1.6);
}

}  // namespace fastchg::data
