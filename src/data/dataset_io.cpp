#include "data/dataset_io.hpp"

#include <cmath>
#include <fstream>

#include "core/error.hpp"

namespace fastchg::data {

namespace {

constexpr std::uint32_t kMagic = 0xDA7A5E7u;
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  FASTCHG_CHECK(is.good(), "dataset file: truncated");
  return v;
}

/// On-disk per-atom record, matching save_dataset's write order exactly
/// (all fields 8-byte, so the struct has no padding).  Reading a row's
/// atoms as one block replaces 8 stream reads per atom with one read per
/// row -- load_dataset is the cold-start path for every bench and the CLI.
struct AtomRecord {
  std::int64_t species;
  double frac[3];
  double forces[3];
  double magmom;
};
static_assert(sizeof(AtomRecord) == 64, "dataset row layout drifted");

/// A corrupted row must never reach training: a single non-finite label
/// would poison every replica's gradients.  Validate each crystal as it is
/// decoded so the error names the offending row.
void validate_row(const Crystal& c, std::uint64_t row) {
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      FASTCHG_CHECK(std::isfinite(c.lattice[i][j]),
                    "load_dataset: row " << row << ": non-finite lattice");
      FASTCHG_CHECK(std::isfinite(c.stress[i][j]),
                    "load_dataset: row " << row << ": non-finite stress");
    }
  }
  FASTCHG_CHECK(std::isfinite(c.energy),
                "load_dataset: row " << row << ": non-finite energy");
  for (index_t a = 0; a < c.natoms(); ++a) {
    const auto sa = static_cast<std::size_t>(a);
    FASTCHG_CHECK(c.species[sa] >= 1 && c.species[sa] <= 118,
                  "load_dataset: row " << row << ": atomic number "
                                       << c.species[sa]
                                       << " out of range [1, 118]");
    for (int d = 0; d < 3; ++d) {
      FASTCHG_CHECK(std::isfinite(c.frac[sa][d]),
                    "load_dataset: row " << row << ": non-finite position");
      FASTCHG_CHECK(std::isfinite(c.forces[sa][d]),
                    "load_dataset: row " << row << ": non-finite force");
    }
    FASTCHG_CHECK(std::isfinite(c.magmom[sa]),
                  "load_dataset: row " << row << ": non-finite magmom");
  }
}

}  // namespace

void save_dataset(const Dataset& ds, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  FASTCHG_CHECK(os.is_open(), "save_dataset: cannot open '" << path << "'");
  write_pod(os, kMagic);
  write_pod(os, kVersion);
  write_pod(os, ds.graph_config().atom_cutoff);
  write_pod(os, ds.graph_config().bond_cutoff);
  write_pod(os, static_cast<std::uint64_t>(ds.size()));
  for (index_t s = 0; s < ds.size(); ++s) {
    const Crystal& c = ds[s].crystal;
    write_pod(os, static_cast<std::uint64_t>(c.natoms()));
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) write_pod(os, c.lattice[i][j]);
    }
    for (index_t a = 0; a < c.natoms(); ++a) {
      const auto sa = static_cast<std::size_t>(a);
      write_pod(os, static_cast<std::int64_t>(c.species[sa]));
      for (int d = 0; d < 3; ++d) write_pod(os, c.frac[sa][d]);
      for (int d = 0; d < 3; ++d) write_pod(os, c.forces[sa][d]);
      write_pod(os, c.magmom[sa]);
    }
    write_pod(os, c.energy);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) write_pod(os, c.stress[i][j]);
    }
  }
  FASTCHG_CHECK(os.good(), "save_dataset: write failed");
}

Dataset load_dataset(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FASTCHG_CHECK(is.is_open(), "load_dataset: cannot open '" << path << "'");
  FASTCHG_CHECK(read_pod<std::uint32_t>(is) == kMagic,
                "load_dataset: '" << path << "' is not a dataset file");
  const auto version = read_pod<std::uint32_t>(is);
  FASTCHG_CHECK(version == kVersion,
                "load_dataset: unsupported version " << version);
  GraphConfig gc;
  gc.atom_cutoff = read_pod<double>(is);
  gc.bond_cutoff = read_pod<double>(is);
  const auto n = read_pod<std::uint64_t>(is);
  FASTCHG_CHECK(n < (1u << 24), "load_dataset: implausible sample count");
  std::vector<Crystal> crystals;
  crystals.reserve(static_cast<std::size_t>(n));
  std::vector<AtomRecord> row_buf;  // reused staging buffer across rows
  for (std::uint64_t s = 0; s < n; ++s) {
    Crystal c;
    const auto natoms = read_pod<std::uint64_t>(is);
    FASTCHG_CHECK(natoms < (1u << 20), "load_dataset: implausible atoms");
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) c.lattice[i][j] = read_pod<double>(is);
    }
    c.species.resize(static_cast<std::size_t>(natoms));
    c.frac.resize(static_cast<std::size_t>(natoms));
    c.forces.resize(static_cast<std::size_t>(natoms));
    c.magmom.resize(static_cast<std::size_t>(natoms));
    row_buf.resize(static_cast<std::size_t>(natoms));
    if (natoms > 0) {
      is.read(reinterpret_cast<char*>(row_buf.data()),
              static_cast<std::streamsize>(natoms * sizeof(AtomRecord)));
      FASTCHG_CHECK(is.good(), "dataset file: truncated");
    }
    for (std::uint64_t a = 0; a < natoms; ++a) {
      const AtomRecord& r = row_buf[a];
      c.species[a] = static_cast<index_t>(r.species);
      for (int d = 0; d < 3; ++d) c.frac[a][d] = r.frac[d];
      for (int d = 0; d < 3; ++d) c.forces[a][d] = r.forces[d];
      c.magmom[a] = r.magmom;
    }
    c.energy = read_pod<double>(is);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) c.stress[i][j] = read_pod<double>(is);
    }
    validate_row(c, s);
    crystals.push_back(std::move(c));
  }
  return Dataset::from_crystals(std::move(crystals), gc, {},
                                /*relabel=*/false);
}

}  // namespace fastchg::data
