// Periodic crystal structure with DFT-style labels.
//
// Units: Angstrom for lengths, eV for energies, eV/A for forces, eV/A^3 for
// stress (multiply by 160.21766 for GPa), Bohr magneton for magmoms --
// matching the property set CHGNet trains on (energy, force, stress, magmom).
#pragma once

#include <array>
#include <vector>

#include "core/tensor.hpp"

namespace fastchg::data {

using Vec3 = std::array<double, 3>;
using Mat3 = std::array<std::array<double, 3>, 3>;

/// eV/A^3 -> GPa conversion factor.
inline constexpr double kEvA3ToGPa = 160.21766208;

struct Crystal {
  Mat3 lattice{};                    ///< rows are lattice vectors a, b, c
  std::vector<Vec3> frac;            ///< fractional coordinates, [N]
  std::vector<index_t> species;      ///< atomic numbers, [N]

  // Labels (filled by the oracle; zero until labelled).
  double energy = 0.0;               ///< total energy, eV
  std::vector<Vec3> forces;          ///< eV/A, [N]
  Mat3 stress{};                     ///< eV/A^3
  std::vector<double> magmom;        ///< mu_B, [N]

  index_t natoms() const { return static_cast<index_t>(frac.size()); }
  /// Cartesian coordinates r = f @ L.
  std::vector<Vec3> cart() const;
  /// Cartesian coordinates with fractional parts wrapped into [0,1).
  /// All geometry consumers (neighbour lists, the oracle, batch collation)
  /// use this canonical image so out-of-cell inputs are handled uniformly.
  std::vector<Vec3> wrapped_cart() const;
  double volume() const;
};

/// Componentwise f - floor(f).
Vec3 wrap_frac(const Vec3& f);

/// na x nb x nc supercell of `c` (labels are dropped; relabel afterwards if
/// needed).  Useful for size-extensivity checks and MD on larger cells.
Crystal make_supercell(const Crystal& c, int na, int nb, int nc);

// Small dense 3x3 / vector helpers shared across the data layer.
Vec3 mat_vec(const Mat3& m_t, const Vec3& v);  ///< v @ m (row vector times matrix)
Mat3 mat_mul(const Mat3& a, const Mat3& b);
double det3(const Mat3& m);
Mat3 inv3(const Mat3& m);
Vec3 cross(const Vec3& a, const Vec3& b);
double dot(const Vec3& a, const Vec3& b);
double norm(const Vec3& a);

}  // namespace fastchg::data
