// Reduce op family: sum_all, sum_dim0 (column sums), sum_dim1 (row sums)
// over row-major [rows, cols] arrays (docs/ops.md).
//
// Exactness policy per op:
//  - sum_dim0 is *dispatched and bit-exact*: each output column is a serial
//    chain of float += in row order; vectorizing across columns does not
//    change any column's accumulation order.
//  - sum_all and sum_dim1 are *pinned to the scalar reference at every
//    tier*: the reference accumulates serially in double, and any 8-wide
//    reassociation produces different partial sums.  The replay/fusion
//    interpreter carries the same serial double accumulator across column
//    sub-chunks, and the exact-0.0 fuse-vs-eager gates depend on every
//    path agreeing bit-for-bit -- so the dispatching entry points below
//    always run the scalar kernel.  The avx2:: variants exist only for the
//    differential tests and the bench (tolerance-gated there).
#pragma once

#include <cstdint>

#include "ops/dispatch.hpp"

namespace fastchg::ops::reduce {

using index_t = std::int64_t;

/// Serial double-accumulator sum of x[0..n).  Pinned scalar at all tiers.
double sum_all(index_t n, const float* x);

/// o[c] = sum_r x[r, c].  Dispatched; bit-exact across tiers.
void sum_dim0(index_t rows, index_t cols, const float* x, float* o);

/// o[r] = (float)(double-accumulated sum of row r).  Pinned scalar.
void sum_dim1(index_t rows, index_t cols, const float* x, float* o);

namespace scalar {
double sum_all(index_t n, const float* x);
void sum_dim0(index_t rows, index_t cols, const float* x, float* o);
void sum_dim1(index_t rows, index_t cols, const float* x, float* o);
}  // namespace scalar

namespace avx2 {
/// 4-wide double lanes, horizontally summed at the end.  Reassociates --
/// tolerance-gated, test/bench only; never reachable through the
/// dispatching sum_all/sum_dim1 above.
double sum_all(index_t n, const float* x);
void sum_dim0(index_t rows, index_t cols, const float* x, float* o);
void sum_dim1(index_t rows, index_t cols, const float* x, float* o);
}  // namespace avx2

}  // namespace fastchg::ops::reduce
