// Eltwise op family: dense per-element arithmetic on float arrays
// (docs/ops.md).  Every kernel here is in the *bit-exact* class: the AVX2
// variant evaluates the identical IEEE-754 single-precision expression per
// element (mul-then-add, never FMA; vdivps/vsqrtps are correctly rounded),
// so scalar and AVX2 tiers produce bitwise identical outputs for any input
// including NaN/Inf.  The pool/replay/fuse 0.0-diff gates may therefore run
// under either tier.
//
// All entry points tolerate unaligned and aliased pointers (o may equal a
// or b); 64-byte alignment (the arena contract, core/alloc.cpp) is a
// performance property, not a correctness requirement.
//
// The `scalar::` inline loops are the reference kernels -- byte-for-byte
// the arithmetic the seed wrote in autograd/ops.cpp -- and double as the
// fallback tier.  The dispatching wrappers (fastchg::ops::eltwise) read
// ops::active_tier() per call.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "ops/dispatch.hpp"

namespace fastchg::ops::eltwise {

using index_t = std::int64_t;

namespace scalar {

inline void add(index_t n, const float* a, const float* b, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
inline void sub(index_t n, const float* a, const float* b, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
inline void mul(index_t n, const float* a, const float* b, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
inline void div(index_t n, const float* a, const float* b, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}
inline void add_s(index_t n, const float* a, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] + s;
}
inline void sub_s(index_t n, const float* a, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] - s;
}
inline void rsub_s(index_t n, const float* a, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = s - a[i];
}
inline void mul_s(index_t n, const float* a, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
inline void div_s(index_t n, const float* a, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] / s;
}
inline void rdiv_s(index_t n, const float* a, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = s / a[i];
}
inline void neg(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = -a[i];
}
inline void abs(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = std::fabs(a[i]);
}
inline void square(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = a[i] * a[i];
}
inline void recip(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = 1.0f / a[i];
}
inline void sqrt(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] = std::sqrt(a[i]);
}
inline void sign(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) {
    o[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
}
inline void clamp(index_t n, const float* a, float lo, float hi, float* o) {
  for (index_t i = 0; i < n; ++i) {
    o[i] = a[i] < lo ? lo : (a[i] > hi ? hi : a[i]);
  }
}
inline void clamp_mask(index_t n, const float* a, float lo, float hi,
                       float* o) {
  for (index_t i = 0; i < n; ++i) {
    o[i] = (a[i] >= lo && a[i] <= hi) ? 1.0f : 0.0f;
  }
}
/// o[i] += a[i]  (grad accumulation / scatter rows / sum_dim0 columns)
inline void acc(index_t n, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] += a[i];
}
/// o[i] += s * a[i]  (optimizer / allreduce axpy; mul then add, no FMA)
inline void axpy(index_t n, float s, const float* a, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] += s * a[i];
}
/// o[i] *= s
inline void scale(index_t n, float s, float* o) {
  for (index_t i = 0; i < n; ++i) o[i] *= s;
}

}  // namespace scalar

// Dispatching entry points (tier read per call; see ops/dispatch.hpp).
void add(index_t n, const float* a, const float* b, float* o);
void sub(index_t n, const float* a, const float* b, float* o);
void mul(index_t n, const float* a, const float* b, float* o);
void div(index_t n, const float* a, const float* b, float* o);
void add_s(index_t n, const float* a, float s, float* o);
void sub_s(index_t n, const float* a, float s, float* o);
void rsub_s(index_t n, const float* a, float s, float* o);
void mul_s(index_t n, const float* a, float s, float* o);
void div_s(index_t n, const float* a, float s, float* o);
void rdiv_s(index_t n, const float* a, float s, float* o);
void neg(index_t n, const float* a, float* o);
void abs(index_t n, const float* a, float* o);
void square(index_t n, const float* a, float* o);
void recip(index_t n, const float* a, float* o);
void sqrt(index_t n, const float* a, float* o);
void sign(index_t n, const float* a, float* o);
void clamp(index_t n, const float* a, float lo, float hi, float* o);
void clamp_mask(index_t n, const float* a, float lo, float hi, float* o);
void acc(index_t n, const float* a, float* o);
void axpy(index_t n, float s, const float* a, float* o);
void scale(index_t n, float s, float* o);

// AVX2 variants (eltwise_avx2.cpp; forwarding stubs when the toolchain
// cannot build AVX2).  Exposed so the differential tests can pin
// scalar-vs-AVX2 bit-exactness explicitly rather than through the tier.
namespace avx2 {
void add(index_t n, const float* a, const float* b, float* o);
void sub(index_t n, const float* a, const float* b, float* o);
void mul(index_t n, const float* a, const float* b, float* o);
void div(index_t n, const float* a, const float* b, float* o);
void add_s(index_t n, const float* a, float s, float* o);
void sub_s(index_t n, const float* a, float s, float* o);
void rsub_s(index_t n, const float* a, float s, float* o);
void mul_s(index_t n, const float* a, float s, float* o);
void div_s(index_t n, const float* a, float s, float* o);
void rdiv_s(index_t n, const float* a, float s, float* o);
void neg(index_t n, const float* a, float* o);
void abs(index_t n, const float* a, float* o);
void square(index_t n, const float* a, float* o);
void recip(index_t n, const float* a, float* o);
void sqrt(index_t n, const float* a, float* o);
void sign(index_t n, const float* a, float* o);
void clamp(index_t n, const float* a, float lo, float hi, float* o);
void clamp_mask(index_t n, const float* a, float lo, float hi, float* o);
void acc(index_t n, const float* a, float* o);
void axpy(index_t n, float s, const float* a, float* o);
void scale(index_t n, float s, float* o);
}  // namespace avx2

}  // namespace fastchg::ops::eltwise
