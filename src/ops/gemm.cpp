// Tier-dispatching GEMM.  The scalar reference and the threading driver
// both live in this baseline-ISA TU; the AVX2 TU (gemm_avx2.cpp) exports
// only the non-inline row-range kernel, so no weak symbol compiled with
// AVX2 codegen can leak into the scalar path on a host without AVX2.
#include "ops/gemm.hpp"

#include <cstring>

#include "core/parallel_for.hpp"

namespace fastchg::ops::gemm {

namespace scalar {

void matmul(index_t m, index_t k, index_t n, const float* a, const float* b,
            float* o) {
  std::memset(o, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  parallel_for(0, m, /*grain=*/16, [&](index_t lo, index_t hi) {
    for (index_t i = lo; i < hi; ++i) {
      float* orow = o + i * n;
      const float* arow = a + i * k;
      for (index_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        const float* brow = b + kk * n;
        for (index_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

}  // namespace scalar

namespace avx2 {

void matmul(index_t m, index_t k, index_t n, const float* a, const float* b,
            float* o) {
  parallel_for(0, m, /*grain=*/16, [&](index_t lo, index_t hi) {
    matmul_rows(lo, hi, k, n, a, b, o);
  });
}

}  // namespace avx2

void matmul(index_t m, index_t k, index_t n, const float* a, const float* b,
            float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::matmul(m, k, n, a, b, o);
    return;
  }
  scalar::matmul(m, k, n, a, b, o);
}

}  // namespace fastchg::ops::gemm
