// AVX2+FMA row-range GEMM kernel.  Keeps the reference k-association --
// for each output row the kk loop is outermost, so every orow[j] sees the
// same sequence of (a[i,kk] * b[kk,j]) contributions in the same order --
// but evaluates them with vfmadd, so the product is not rounded before the
// add.  That makes this family tolerance-gated, not bit-exact.
//
// Register tiling: the hot micro-kernel is 2 rows x 32 columns -- eight
// __m256 accumulators held across the whole k loop (enough independent FMA
// chains to cover the FMA latency) with each b-row load feeding both rows.
// Leftover columns fall to 16-wide, 8-wide, then scalar tiles; a leftover
// row runs the single-row path.  Accumulators start at zero so no memset
// of o is needed.
#include "ops/gemm.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace fastchg::ops::gemm::avx2 {

namespace {

/// Single-row tail: columns [j0, n) of row `arow` -> `orow`.
void row_tail(index_t j0, index_t k, index_t n, const float* arow,
              const float* b, float* orow) {
  index_t j = j0;
  for (; j + 16 <= n; j += 16) {
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (index_t kk = 0; kk < k; ++kk) {
      const __m256 av = _mm256_set1_ps(arow[kk]);
      const float* brow = b + kk * n + j;
      acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow), acc0);
      acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(brow + 8), acc1);
    }
    _mm256_storeu_ps(orow + j, acc0);
    _mm256_storeu_ps(orow + j + 8, acc1);
  }
  for (; j + 8 <= n; j += 8) {
    __m256 acc = _mm256_setzero_ps();
    for (index_t kk = 0; kk < k; ++kk) {
      acc = _mm256_fmadd_ps(_mm256_set1_ps(arow[kk]),
                            _mm256_loadu_ps(b + kk * n + j), acc);
    }
    _mm256_storeu_ps(orow + j, acc);
  }
  for (; j < n; ++j) {
    float acc = 0.0f;
    for (index_t kk = 0; kk < k; ++kk) acc += arow[kk] * b[kk * n + j];
    orow[j] = acc;
  }
}

}  // namespace

void matmul_rows(index_t r0, index_t r1, index_t k, index_t n, const float* a,
                 const float* b, float* o) {
  index_t i = r0;
  for (; i + 2 <= r1; i += 2) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    float* o0 = o + i * n;
    float* o1 = o0 + n;
    index_t j = 0;
    for (; j + 32 <= n; j += 32) {
      __m256 c00 = _mm256_setzero_ps(), c01 = _mm256_setzero_ps();
      __m256 c02 = _mm256_setzero_ps(), c03 = _mm256_setzero_ps();
      __m256 c10 = _mm256_setzero_ps(), c11 = _mm256_setzero_ps();
      __m256 c12 = _mm256_setzero_ps(), c13 = _mm256_setzero_ps();
      for (index_t kk = 0; kk < k; ++kk) {
        const __m256 av0 = _mm256_set1_ps(a0[kk]);
        const __m256 av1 = _mm256_set1_ps(a1[kk]);
        const float* brow = b + kk * n + j;
        const __m256 b0 = _mm256_loadu_ps(brow);
        const __m256 b1 = _mm256_loadu_ps(brow + 8);
        const __m256 b2 = _mm256_loadu_ps(brow + 16);
        const __m256 b3 = _mm256_loadu_ps(brow + 24);
        c00 = _mm256_fmadd_ps(av0, b0, c00);
        c01 = _mm256_fmadd_ps(av0, b1, c01);
        c02 = _mm256_fmadd_ps(av0, b2, c02);
        c03 = _mm256_fmadd_ps(av0, b3, c03);
        c10 = _mm256_fmadd_ps(av1, b0, c10);
        c11 = _mm256_fmadd_ps(av1, b1, c11);
        c12 = _mm256_fmadd_ps(av1, b2, c12);
        c13 = _mm256_fmadd_ps(av1, b3, c13);
      }
      _mm256_storeu_ps(o0 + j, c00);
      _mm256_storeu_ps(o0 + j + 8, c01);
      _mm256_storeu_ps(o0 + j + 16, c02);
      _mm256_storeu_ps(o0 + j + 24, c03);
      _mm256_storeu_ps(o1 + j, c10);
      _mm256_storeu_ps(o1 + j + 8, c11);
      _mm256_storeu_ps(o1 + j + 16, c12);
      _mm256_storeu_ps(o1 + j + 24, c13);
    }
    if (j < n) {
      row_tail(j, k, n, a0, b, o0);
      row_tail(j, k, n, a1, b, o1);
    }
  }
  for (; i < r1; ++i) {
    row_tail(0, k, n, a + i * k, b, o + i * n);
  }
}

}  // namespace fastchg::ops::gemm::avx2

#else  // toolchain cannot build AVX2: forward to the scalar reference

namespace fastchg::ops::gemm::avx2 {

void matmul_rows(index_t r0, index_t r1, index_t k, index_t n, const float* a,
                 const float* b, float* o) {
  for (index_t i = r0; i < r1; ++i) {
    float* orow = o + i * n;
    const float* arow = a + i * k;
    for (index_t j = 0; j < n; ++j) orow[j] = 0.0f;
    for (index_t kk = 0; kk < k; ++kk) {
      const float av = arow[kk];
      const float* brow = b + kk * n;
      for (index_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
}

}  // namespace fastchg::ops::gemm::avx2

#endif
