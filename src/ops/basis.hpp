// Basis op family: the fused sRBF and Fourier expansion loops
// (docs/ops.md).  *Tolerance-gated*: the scalar tier calls libm
// sinf/cosf, the AVX2 tier evaluates Cephes-style polynomial kernels
// (ops/vecmath256.hpp) that agree with libm to a couple of ulps but not
// bitwise.  Each tier is individually deterministic, and the eager kernel
// and its replay closure run through the same dispatch, so same-tier
// replay/fusion comparisons still read exactly 0.0.
//
// Layering: fastchg_core cannot see basis/envelope.hpp (fastchg_model), so
// the polynomial cutoff envelope arrives as a function pointer.  It is
// evaluated once per edge in scalar code on both tiers.
#pragma once

#include <cstdint>

#include "ops/dispatch.hpp"

namespace fastchg::ops::basis {

using index_t = std::int64_t;

/// Smooth-cutoff envelope u(x) with polynomial order p (basis/envelope.hpp).
using EnvFn = double (*)(double xi, int p);

/// Fused sRBF rows: o[i, n] = c*u(r/rc)/r * sin(freq[n] * r/rc) for each of
/// the e edges; freq has nb entries.
void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o);

/// Fused Fourier rows over g angles: o[i, 0] = c0;
/// o[i, n] = cos(n*t)*cinv and o[i, order+n] = sin(n*t)*cinv for
/// n = 1..order (row width 2*order+1).
void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o);

namespace scalar {
void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o);
void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o);
}  // namespace scalar

namespace avx2 {
void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o);
void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o);
}  // namespace avx2

}  // namespace fastchg::ops::basis
