// AVX2 gather/scatter kernels.  gather_rows stays memcpy (already optimal
// and bitwise trivial); scatter_add_rows vectorizes the per-row += across
// the width w.  Source rows are still visited strictly in order, so each
// destination column accumulates the same values in the same order as the
// scalar reference -- bitwise identical, including colliding indices.
#include "ops/gather_scatter.hpp"

#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace fastchg::ops::gather_scatter::avx2 {

void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o) {
  for (index_t r = 0; r < k; ++r) {
    std::memcpy(o + r * w, x + idx[r] * w,
                static_cast<std::size_t>(w) * sizeof(float));
  }
}

void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o) {
  std::memset(o, 0, static_cast<std::size_t>(rows * w) * sizeof(float));
  for (index_t r = 0; r < k; ++r) {
    float* orow = o + idx[r] * w;
    const float* srow = s + r * w;
    index_t c = 0;
    for (; c + 8 <= w; c += 8) {
      _mm256_storeu_ps(orow + c, _mm256_add_ps(_mm256_loadu_ps(orow + c),
                                               _mm256_loadu_ps(srow + c)));
    }
    for (; c < w; ++c) orow[c] += srow[c];
  }
}

}  // namespace fastchg::ops::gather_scatter::avx2

#else  // toolchain cannot build AVX2: forward to the scalar reference

namespace fastchg::ops::gather_scatter::avx2 {

void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o) {
  scalar::gather_rows(k, w, idx, x, o);
}

void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o) {
  scalar::scatter_add_rows(k, rows, w, idx, s, o);
}

}  // namespace fastchg::ops::gather_scatter::avx2

#endif
