// Baseline-ISA TU: scalar references and dispatch for the reduce family.
// sum_all / sum_dim1 deliberately ignore the tier (see reduce.hpp).
#include "ops/reduce.hpp"

#include <cstring>

namespace fastchg::ops::reduce {

namespace scalar {

double sum_all(index_t n, const float* x) {
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

void sum_dim0(index_t rows, index_t cols, const float* x, float* o) {
  std::memset(o, 0, static_cast<std::size_t>(cols) * sizeof(float));
  for (index_t r = 0; r < rows; ++r)
    for (index_t c = 0; c < cols; ++c) o[c] += x[r * cols + c];
}

void sum_dim1(index_t rows, index_t cols, const float* x, float* o) {
  for (index_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (index_t c = 0; c < cols; ++c) acc += x[r * cols + c];
    o[r] = static_cast<float>(acc);
  }
}

}  // namespace scalar

double sum_all(index_t n, const float* x) {
  // Pinned: serial double accumulation is part of the bit-exactness
  // contract shared with the fused-span interpreter.
  return scalar::sum_all(n, x);
}

void sum_dim0(index_t rows, index_t cols, const float* x, float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::sum_dim0(rows, cols, x, o);
    return;
  }
  scalar::sum_dim0(rows, cols, x, o);
}

void sum_dim1(index_t rows, index_t cols, const float* x, float* o) {
  // Pinned for the same reason as sum_all.
  scalar::sum_dim1(rows, cols, x, o);
}

}  // namespace fastchg::ops::reduce
