// Gather/scatter op family: row gathers (index_select) and row
// scatter-adds (index_add / graph message aggregation) over row-major
// [rows, w] arrays (docs/ops.md).  Both ops are in the *bit-exact* class:
//
//  - gather_rows copies whole rows (memcpy semantics -- no arithmetic at
//    all), so the tiers are trivially identical.
//  - scatter_add_rows walks the source rows in order r = 0..k-1 and
//    accumulates each destination column with a single += per visit.  Any
//    vectorization across the width w keeps the per-column accumulation
//    order identical, so sums are bitwise equal to the scalar reference
//    even when indices collide.
//
// Bounds are the caller's contract (the autograd layer FASTCHG_CHECKs
// indices before calling); kernels here assume valid indices.
#pragma once

#include <cstdint>

#include "ops/dispatch.hpp"

namespace fastchg::ops::gather_scatter {

using index_t = std::int64_t;

/// o[r, :] = x[idx[r], :] for r in [0, k).  x is [rows, w]; o is [k, w].
void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o);

/// o[idx[r], :] += s[r, :] for r in [0, k), after zeroing o ([rows, w]).
void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o);

namespace scalar {
void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o);
void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o);
}  // namespace scalar

namespace avx2 {
void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o);
void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o);
}  // namespace avx2

}  // namespace fastchg::ops::gather_scatter
