// AVX2 basis kernels.  The per-edge prefactor (envelope, division) stays
// scalar; the inner row of sin/cos evaluations runs 8-wide through the
// Cephes kernels in vecmath256.hpp.  Partial rows (nb % 8 != 0 -- e.g. the
// Fourier order-7 rows in the default model) use maskload/maskstore so
// every lane of a row goes through the same polynomial path.
//
// |freq[n] * x| <= pi * nb and |n * theta| <= order * pi stay far inside
// the reduction range of sincos256 (~8192).
#include "ops/basis.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "ops/vecmath256.hpp"

namespace fastchg::ops::basis::avx2 {

void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o) {
  const __m256i iota =
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  for (index_t i = 0; i < e; ++i) {
    const float rv = r[i];
    const float x = rv / rc;
    const float u = static_cast<float>(env(x, p));
    const float pre = c * u / rv;
    const __m256 vx = _mm256_set1_ps(x);
    const __m256 vpre = _mm256_set1_ps(pre);
    float* row = o + i * nb;
    index_t n = 0;
    for (; n + 8 <= nb; n += 8) {
      const __m256 f = _mm256_loadu_ps(freq + n);
      const __m256 s = vecmath::sin256(_mm256_mul_ps(f, vx));
      _mm256_storeu_ps(row + n, _mm256_mul_ps(vpre, s));
    }
    if (n < nb) {
      const __m256i mask =
          _mm256_cmpgt_epi32(_mm256_set1_epi32(static_cast<int>(nb - n)),
                             iota);
      const __m256 f = _mm256_maskload_ps(freq + n, mask);
      const __m256 s = vecmath::sin256(_mm256_mul_ps(f, vx));
      _mm256_maskstore_ps(row + n, mask, _mm256_mul_ps(vpre, s));
    }
  }
}

void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o) {
  const index_t nb = 2 * order + 1;
  const __m256 iota_f =
      _mm256_setr_ps(0.0f, 1.0f, 2.0f, 3.0f, 4.0f, 5.0f, 6.0f, 7.0f);
  const __m256i iota_i =
      _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  const __m256 vcinv = _mm256_set1_ps(cinv);
  for (index_t i = 0; i < g; ++i) {
    float* row = o + i * nb;
    row[0] = c0;
    const __m256 vt = _mm256_set1_ps(t[i]);
    for (index_t n = 1; n <= order; n += 8) {
      const index_t rem = order - n + 1;
      const __m256 vn =
          _mm256_add_ps(_mm256_set1_ps(static_cast<float>(n)), iota_f);
      __m256 vs, vc;
      vecmath::sincos256(_mm256_mul_ps(vn, vt), &vs, &vc);
      if (rem >= 8) {
        _mm256_storeu_ps(row + n, _mm256_mul_ps(vc, vcinv));
        _mm256_storeu_ps(row + order + n, _mm256_mul_ps(vs, vcinv));
      } else {
        const __m256i mask = _mm256_cmpgt_epi32(
            _mm256_set1_epi32(static_cast<int>(rem)), iota_i);
        _mm256_maskstore_ps(row + n, mask, _mm256_mul_ps(vc, vcinv));
        _mm256_maskstore_ps(row + order + n, mask,
                            _mm256_mul_ps(vs, vcinv));
      }
    }
  }
}

}  // namespace fastchg::ops::basis::avx2

#else  // toolchain cannot build AVX2: forward to the scalar reference

namespace fastchg::ops::basis::avx2 {

void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o) {
  scalar::srbf(e, nb, rc, c, p, env, r, freq, o);
}

void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o) {
  scalar::fourier(g, order, c0, cinv, t, o);
}

}  // namespace fastchg::ops::basis::avx2

#endif
