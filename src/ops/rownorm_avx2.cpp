// AVX2 rownorm kernels.  Row statistics run in 4-wide double lanes
// (reassociated vs. the serial scalar reference -- this family is
// tolerance-gated); normalization and the gated activation run 8-wide in
// float, with sigmoids through the Cephes exp256 kernel.
#include "ops/rownorm.hpp"

#include <cmath>

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include "ops/vecmath256.hpp"

namespace fastchg::ops::rownorm::avx2 {

namespace {

inline double hsum_pd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

/// Double-accumulated mean and variance of row[0..n), like the scalar
/// reference but with 4-wide lanes.
inline void row_mean_var(const float* row, index_t n, double& mean,
                         double& var) {
  __m256d acc = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(row + i);
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc = _mm256_add_pd(acc, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double m = hsum_pd(acc);
  for (; i < n; ++i) m += row[i];
  m /= static_cast<double>(n);

  const __m256d vm = _mm256_set1_pd(m);
  __m256d vacc = _mm256_setzero_pd();
  i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(row + i);
    const __m256d d0 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_castps256_ps128(v)), vm);
    const __m256d d1 =
        _mm256_sub_pd(_mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)), vm);
    vacc = _mm256_fmadd_pd(d0, d0, vacc);
    vacc = _mm256_fmadd_pd(d1, d1, vacc);
  }
  double v2 = hsum_pd(vacc);
  for (; i < n; ++i) {
    const double d = row[i] - m;
    v2 += d * d;
  }
  mean = m;
  var = v2 / static_cast<double>(n);
}

/// 8-wide sigmoid(x) = 1 / (1 + e^-x).
inline __m256 sigmoid256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);
  const __m256 e = vecmath::exp256(
      _mm256_xor_ps(x, _mm256_castsi256_ps(_mm256_set1_epi32(
                            static_cast<int>(0x80000000u)))));
  return _mm256_div_ps(one, _mm256_add_ps(one, e));
}

}  // namespace

void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o) {
  for (index_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    double mean, var;
    row_mean_var(row, cols, mean, var);
    const float mf = static_cast<float>(mean);
    const float rstd = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    float* orow = o + r * cols;
    const __m256 vm = _mm256_set1_ps(mf);
    const __m256 vr = _mm256_set1_ps(rstd);
    index_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      const __m256 xh =
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(row + c), vm), vr);
      _mm256_storeu_ps(
          o + r * cols + c,
          _mm256_fmadd_ps(xh, _mm256_loadu_ps(g + c), _mm256_loadu_ps(b + c)));
    }
    for (; c < cols; ++c) {
      orow[c] = (row[c] - mf) * rstd * g[c] + b[c];
    }
  }
}

void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o) {
  for (index_t r = 0; r < rows; ++r) {
    const float* core = x + r * 2 * c;
    const float* gate = core + c;
    double m, v;
    row_mean_var(core, c, m, v);
    const float mc = static_cast<float>(m);
    const float rc = 1.0f / std::sqrt(static_cast<float>(v) + eps);
    row_mean_var(gate, c, m, v);
    const float mg = static_cast<float>(m);
    const float rg = 1.0f / std::sqrt(static_cast<float>(v) + eps);
    float* orow = o + r * c;
    const __m256 vmc = _mm256_set1_ps(mc);
    const __m256 vrc = _mm256_set1_ps(rc);
    const __m256 vmg = _mm256_set1_ps(mg);
    const __m256 vrg = _mm256_set1_ps(rg);
    index_t i = 0;
    for (; i + 8 <= c; i += 8) {
      const __m256 cn = _mm256_fmadd_ps(
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(core + i), vmc), vrc),
          _mm256_loadu_ps(gc + i), _mm256_loadu_ps(bc + i));
      const __m256 gn = _mm256_fmadd_ps(
          _mm256_mul_ps(_mm256_sub_ps(_mm256_loadu_ps(gate + i), vmg), vrg),
          _mm256_loadu_ps(gg + i), _mm256_loadu_ps(bg + i));
      const __m256 sc = sigmoid256(cn);
      const __m256 sg = sigmoid256(gn);
      _mm256_storeu_ps(orow + i,
                       _mm256_mul_ps(sg, _mm256_mul_ps(cn, sc)));
    }
    for (; i < c; ++i) {
      const float cn = (core[i] - mc) * rc * gc[i] + bc[i];
      const float gn = (gate[i] - mg) * rg * gg[i] + bg[i];
      const float sc = 1.0f / (1.0f + std::exp(-cn));
      const float sg = 1.0f / (1.0f + std::exp(-gn));
      orow[i] = sg * (cn * sc);
    }
  }
}

}  // namespace fastchg::ops::rownorm::avx2

#else  // toolchain cannot build AVX2: forward to the scalar reference

namespace fastchg::ops::rownorm::avx2 {

void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o) {
  scalar::layernorm(rows, cols, eps, x, g, b, o);
}

void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o) {
  scalar::gated_act(rows, c, eps, x, gc, bc, gg, bg, o);
}

}  // namespace fastchg::ops::rownorm::avx2

#endif
