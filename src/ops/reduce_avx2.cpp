// AVX2 reduce kernels.  sum_dim0 vectorizes across columns: for each row
// the 8-wide += preserves every column's serial accumulation order, so it
// is bitwise identical to the scalar reference and safe to dispatch.
// sum_all / sum_dim1 reassociate the serial double chain into 4 double
// lanes -- numerically excellent but not bitwise; they are reachable only
// through the avx2:: namespace (tests and bench), never via dispatch.
#include "ops/reduce.hpp"

#include <cstring>

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace fastchg::ops::reduce::avx2 {

namespace {

inline double hsum_pd(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
}

inline double sum_range_pd(index_t n, const float* x) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  index_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    acc0 = _mm256_add_pd(acc0, _mm256_cvtps_pd(_mm256_castps256_ps128(v)));
    acc1 = _mm256_add_pd(acc1, _mm256_cvtps_pd(_mm256_extractf128_ps(v, 1)));
  }
  double acc = hsum_pd(_mm256_add_pd(acc0, acc1));
  for (; i < n; ++i) acc += x[i];
  return acc;
}

}  // namespace

double sum_all(index_t n, const float* x) { return sum_range_pd(n, x); }

void sum_dim0(index_t rows, index_t cols, const float* x, float* o) {
  std::memset(o, 0, static_cast<std::size_t>(cols) * sizeof(float));
  for (index_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    index_t c = 0;
    for (; c + 8 <= cols; c += 8) {
      _mm256_storeu_ps(o + c, _mm256_add_ps(_mm256_loadu_ps(o + c),
                                            _mm256_loadu_ps(row + c)));
    }
    for (; c < cols; ++c) o[c] += row[c];
  }
}

void sum_dim1(index_t rows, index_t cols, const float* x, float* o) {
  for (index_t r = 0; r < rows; ++r) {
    o[r] = static_cast<float>(sum_range_pd(cols, x + r * cols));
  }
}

}  // namespace fastchg::ops::reduce::avx2

#else  // toolchain cannot build AVX2: forward to the scalar reference

namespace fastchg::ops::reduce::avx2 {

double sum_all(index_t n, const float* x) { return scalar::sum_all(n, x); }

void sum_dim0(index_t rows, index_t cols, const float* x, float* o) {
  scalar::sum_dim0(rows, cols, x, o);
}

void sum_dim1(index_t rows, index_t cols, const float* x, float* o) {
  scalar::sum_dim1(rows, cols, x, o);
}

}  // namespace fastchg::ops::reduce::avx2

#endif
