// Baseline-ISA TU: scalar references and tier dispatch for gather/scatter.
#include "ops/gather_scatter.hpp"

#include <cstring>

namespace fastchg::ops::gather_scatter {

namespace scalar {

void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o) {
  for (index_t r = 0; r < k; ++r) {
    std::memcpy(o + r * w, x + idx[r] * w,
                static_cast<std::size_t>(w) * sizeof(float));
  }
}

void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o) {
  std::memset(o, 0, static_cast<std::size_t>(rows * w) * sizeof(float));
  for (index_t r = 0; r < k; ++r) {
    float* orow = o + idx[r] * w;
    const float* srow = s + r * w;
    for (index_t c = 0; c < w; ++c) orow[c] += srow[c];
  }
}

}  // namespace scalar

void gather_rows(index_t k, index_t w, const index_t* idx, const float* x,
                 float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::gather_rows(k, w, idx, x, o);
    return;
  }
  scalar::gather_rows(k, w, idx, x, o);
}

void scatter_add_rows(index_t k, index_t rows, index_t w, const index_t* idx,
                      const float* s, float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::scatter_add_rows(k, rows, w, idx, s, o);
    return;
  }
  scalar::scatter_add_rows(k, rows, w, idx, s, o);
}

}  // namespace fastchg::ops::gather_scatter
