// GEMM op family: C[m,n] = A[m,k] * B[k,n], row-major, beta = 0
// (docs/ops.md).  This family is *tolerance-gated*: the AVX2 tier keeps the
// scalar kernel's k-association (accumulate over kk in order) but uses FMA,
// so products are not rounded before the add and results differ from the
// scalar tier by O(1 ulp) per accumulation step.  Each tier on its own is
// deterministic: rows are partitioned by parallel_for, every output element
// is owned by exactly one task, so results are invariant to thread count.
//
// The scalar reference is byte-for-byte the seed's matmul_loop
// (autograd/ops.cpp): memset, then parallel rows in an i-k-j loop.
#pragma once

#include <cstdint>

#include "ops/dispatch.hpp"

namespace fastchg::ops::gemm {

using index_t = std::int64_t;

/// Dispatching entry point (tier read per call).
void matmul(index_t m, index_t k, index_t n, const float* a, const float* b,
            float* o);

namespace scalar {
/// Reference kernel: memset + parallel_for over rows, i-k-j.
void matmul(index_t m, index_t k, index_t n, const float* a, const float* b,
            float* o);
}  // namespace scalar

namespace avx2 {
/// Full AVX2 matmul (threads like the scalar kernel).  Forwards to scalar
/// when the toolchain cannot build AVX2.
void matmul(index_t m, index_t k, index_t n, const float* a, const float* b,
            float* o);
/// Row-range kernel [r0, r1): the non-inline symbol the threaded driver
/// calls, exposed for single-threaded differential tests.
void matmul_rows(index_t r0, index_t r1, index_t k, index_t n, const float* a,
                 const float* b, float* o);
}  // namespace avx2

}  // namespace fastchg::ops::gemm
