#include "ops/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace fastchg::ops {

namespace {

bool cpu_has_avx2_fma() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

Tier env_default_tier() {
  if (!avx2_supported()) return Tier::kScalar;
  const char* v = std::getenv("FASTCHG_SIMD");
  if (v == nullptr || std::strcmp(v, "auto") == 0 ||
      std::strcmp(v, "") == 0) {
    return Tier::kAvx2;
  }
  if (std::strcmp(v, "scalar") == 0 || std::strcmp(v, "off") == 0 ||
      std::strcmp(v, "0") == 0) {
    return Tier::kScalar;
  }
  // "avx2" (or anything else) asks for the vector tier; avx2_supported()
  // already vetoed hosts/builds that cannot run it.
  return Tier::kAvx2;
}

std::atomic<int>& tier_flag() {
  static std::atomic<int> t{static_cast<int>(env_default_tier())};
  return t;
}

}  // namespace

bool avx2_supported() {
  static const bool ok = detail::avx2_kernels_compiled() && cpu_has_avx2_fma();
  return ok;
}

Tier active_tier() {
  return static_cast<Tier>(tier_flag().load(std::memory_order_relaxed));
}

void set_simd_tier(Tier t) {
  if (t == Tier::kAvx2 && !avx2_supported()) t = Tier::kScalar;
  tier_flag().store(static_cast<int>(t), std::memory_order_relaxed);
}

void reset_simd_tier() {
  tier_flag().store(static_cast<int>(env_default_tier()),
                    std::memory_order_relaxed);
}

const char* tier_name(Tier t) {
  return t == Tier::kAvx2 ? "avx2" : "scalar";
}

}  // namespace fastchg::ops
