// Baseline-ISA TU: scalar references (byte-for-byte the seed's fused loops
// from nn/layernorm.cpp and nn/gated_mlp.cpp) and tier dispatch.
#include "ops/rownorm.hpp"

#include <cmath>

namespace fastchg::ops::rownorm {

namespace scalar {

void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o) {
  for (index_t r = 0; r < rows; ++r) {
    const float* row = x + r * cols;
    double mean = 0.0;
    for (index_t c = 0; c < cols; ++c) mean += row[c];
    mean /= static_cast<double>(cols);
    double var = 0.0;
    for (index_t c = 0; c < cols; ++c) {
      const double d = row[c] - mean;
      var += d * d;
    }
    var /= static_cast<double>(cols);
    const float rstd = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    float* orow = o + r * cols;
    for (index_t c = 0; c < cols; ++c) {
      orow[c] = (row[c] - static_cast<float>(mean)) * rstd * g[c] + b[c];
    }
  }
}

void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o) {
  auto ln_row = [eps](const float* row, index_t n, float& mean, float& rstd) {
    double m = 0.0;
    for (index_t i = 0; i < n; ++i) m += row[i];
    m /= static_cast<double>(n);
    double v = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const double d = row[i] - m;
      v += d * d;
    }
    v /= static_cast<double>(n);
    mean = static_cast<float>(m);
    rstd = 1.0f / std::sqrt(static_cast<float>(v) + eps);
  };
  for (index_t r = 0; r < rows; ++r) {
    const float* core = x + r * 2 * c;
    const float* gate = core + c;
    float mc, rc, mg, rg;
    ln_row(core, c, mc, rc);
    ln_row(gate, c, mg, rg);
    float* orow = o + r * c;
    for (index_t i = 0; i < c; ++i) {
      const float cn = (core[i] - mc) * rc * gc[i] + bc[i];
      const float gn = (gate[i] - mg) * rg * gg[i] + bg[i];
      const float sc = 1.0f / (1.0f + std::exp(-cn));  // shared sigmoid
      const float sg = 1.0f / (1.0f + std::exp(-gn));
      orow[i] = sg * (cn * sc);  // sigmoid(gate) * silu(core)
    }
  }
}

}  // namespace scalar

void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::layernorm(rows, cols, eps, x, g, b, o);
    return;
  }
  scalar::layernorm(rows, cols, eps, x, g, b, o);
}

void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::gated_act(rows, c, eps, x, gc, bc, gg, bg, o);
    return;
  }
  scalar::gated_act(rows, c, eps, x, gc, bc, gg, bg, o);
}

}  // namespace fastchg::ops::rownorm
