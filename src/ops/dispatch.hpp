// Runtime SIMD dispatch for the op library (docs/ops.md).
//
// Every op family under src/ops/ ships two implementations: a scalar
// reference kernel (the seed arithmetic, loop for loop) and an AVX2+FMA
// variant compiled in its own translation unit with -mavx2 -mfma.  Which
// one runs is a process-wide *tier*, resolved once at startup from a cpuid
// probe plus the FASTCHG_SIMD environment override, mirroring the
// FASTCHG_ALLOC / FASTCHG_REPLAY / FASTCHG_FUSE kill-switch idiom:
//
//   FASTCHG_SIMD=auto    (default) AVX2 when the host supports AVX2+FMA
//   FASTCHG_SIMD=scalar  force the scalar reference kernels everywhere
//   FASTCHG_SIMD=avx2    force AVX2 (falls back to scalar when the host
//                        or the build cannot run it)
//
// set_simd_tier() overrides the environment at runtime (tests sweep both
// tiers differentially).  Recorded-step programs capture the tier into
// their fingerprint and re-validate it at bind time, so a mid-run override
// can never mix tiers inside one replayed tape (core/replay.hpp).
//
// Op classes (the bit-exactness contract, asserted by tests/test_ops.cpp):
//   bit-exact         scalar and AVX2 produce bitwise identical floats:
//                     all eltwise arithmetic (IEEE add/sub/mul/div/sqrt,
//                     sign ops, clamps -- lane order does not matter for
//                     pure per-element ops), gather rows, scatter-add rows
//                     (row order preserved), column-wise sum_dim0 (per-
//                     column accumulation order preserved).  The serve
//                     path's pool/replay/fuse 0.0-diff gates ride only on
//                     these.
//   tolerance-gated   reassociating reductions (sum_all on wide lanes),
//                     FMA GEMMs, and polynomial transcendentals (basis
//                     sin/cos, rownorm exp) -- per-op bounds are pinned in
//                     tests/test_ops.cpp.
#pragma once

namespace fastchg::ops {

enum class Tier : int {
  kScalar = 0,  ///< reference kernels, bit-identical to the seed loops
  kAvx2 = 1,    ///< AVX2+FMA kernels (x86 hosts with both features)
};

/// The tier every ops:: entry point dispatches on right now.
Tier active_tier();

/// Override the tier (tests; also honors hardware limits: requesting
/// kAvx2 on a host/build without AVX2+FMA resolves to kScalar).
void set_simd_tier(Tier t);

/// Reset to the FASTCHG_SIMD / cpuid default (tests restore state).
void reset_simd_tier();

/// True when the host CPU *and* this build can run the AVX2+FMA kernels.
bool avx2_supported();

/// "scalar" / "avx2" (trace + bench labels).
const char* tier_name(Tier t);

/// Vector width (floats) of the widest tier; chunked interpreters round
/// sub-chunk boundaries to this so vector rows never straddle a chunk.
inline constexpr int kVecWidth = 8;

namespace detail {
/// Defined by eltwise_avx2.cpp: true when the _avx2 translation units were
/// really compiled with AVX2+FMA (false on toolchains without -mavx2,
/// where they contain forwarding stubs).
bool avx2_kernels_compiled();
}  // namespace detail

}  // namespace fastchg::ops
