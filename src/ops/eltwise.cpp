// Tier-dispatching entry points for the eltwise family.  This TU is
// compiled with the baseline ISA (no -mavx2), so the scalar:: fallbacks
// here can never be auto-vectorized into something the reference loop is
// not; the AVX2 bodies live in eltwise_avx2.cpp.
#include "ops/eltwise.hpp"

namespace fastchg::ops::eltwise {

#define FASTCHG_ELTWISE_DISPATCH(name, params, args)  \
  void name params {                                  \
    if (active_tier() == Tier::kAvx2) {               \
      avx2::name args;                                \
      return;                                         \
    }                                                 \
    scalar::name args;                                \
  }

FASTCHG_ELTWISE_DISPATCH(add, (index_t n, const float* a, const float* b, float* o), (n, a, b, o))
FASTCHG_ELTWISE_DISPATCH(sub, (index_t n, const float* a, const float* b, float* o), (n, a, b, o))
FASTCHG_ELTWISE_DISPATCH(mul, (index_t n, const float* a, const float* b, float* o), (n, a, b, o))
FASTCHG_ELTWISE_DISPATCH(div, (index_t n, const float* a, const float* b, float* o), (n, a, b, o))
FASTCHG_ELTWISE_DISPATCH(add_s, (index_t n, const float* a, float s, float* o), (n, a, s, o))
FASTCHG_ELTWISE_DISPATCH(sub_s, (index_t n, const float* a, float s, float* o), (n, a, s, o))
FASTCHG_ELTWISE_DISPATCH(rsub_s, (index_t n, const float* a, float s, float* o), (n, a, s, o))
FASTCHG_ELTWISE_DISPATCH(mul_s, (index_t n, const float* a, float s, float* o), (n, a, s, o))
FASTCHG_ELTWISE_DISPATCH(div_s, (index_t n, const float* a, float s, float* o), (n, a, s, o))
FASTCHG_ELTWISE_DISPATCH(rdiv_s, (index_t n, const float* a, float s, float* o), (n, a, s, o))
FASTCHG_ELTWISE_DISPATCH(neg, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(abs, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(square, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(recip, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(sqrt, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(sign, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(clamp, (index_t n, const float* a, float lo, float hi, float* o), (n, a, lo, hi, o))
FASTCHG_ELTWISE_DISPATCH(clamp_mask, (index_t n, const float* a, float lo, float hi, float* o), (n, a, lo, hi, o))
FASTCHG_ELTWISE_DISPATCH(acc, (index_t n, const float* a, float* o), (n, a, o))
FASTCHG_ELTWISE_DISPATCH(axpy, (index_t n, float s, const float* a, float* o), (n, s, a, o))
FASTCHG_ELTWISE_DISPATCH(scale, (index_t n, float s, float* o), (n, s, o))

#undef FASTCHG_ELTWISE_DISPATCH

}  // namespace fastchg::ops::eltwise
