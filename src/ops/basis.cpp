// Baseline-ISA TU: scalar references (byte-for-byte the seed's fused loops
// from basis/rbf.cpp and basis/fourier.cpp) and tier dispatch.
#include "ops/basis.hpp"

#include <cmath>

namespace fastchg::ops::basis {

namespace scalar {

void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o) {
  for (index_t i = 0; i < e; ++i) {
    const float rv = r[i];
    const float x = rv / rc;
    const float u = static_cast<float>(env(x, p));
    const float pre = c * u / rv;
    float* row = o + i * nb;
    for (index_t n = 0; n < nb; ++n) {
      row[n] = pre * std::sin(freq[n] * x);
    }
  }
}

void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o) {
  const index_t nb = 2 * order + 1;
  for (index_t i = 0; i < g; ++i) {
    float* row = o + i * nb;
    row[0] = c0;
    const float tv = t[i];
    for (index_t n = 1; n <= order; ++n) {
      const float nt = static_cast<float>(n) * tv;
      row[n] = std::cos(nt) * cinv;
      row[order + n] = std::sin(nt) * cinv;
    }
  }
}

}  // namespace scalar

void srbf(index_t e, index_t nb, float rc, float c, int p, EnvFn env,
          const float* r, const float* freq, float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::srbf(e, nb, rc, c, p, env, r, freq, o);
    return;
  }
  scalar::srbf(e, nb, rc, c, p, env, r, freq, o);
}

void fourier(index_t g, index_t order, float c0, float cinv, const float* t,
             float* o) {
  if (active_tier() == Tier::kAvx2) {
    avx2::fourier(g, order, c0, cinv, t, o);
    return;
  }
  scalar::fourier(g, order, c0, cinv, t, o);
}

}  // namespace fastchg::ops::basis
