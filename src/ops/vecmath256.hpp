// 8-wide float transcendentals (Cephes-style polynomial kernels) for the
// AVX2 tier of the basis and rownorm families.  Results agree with libm to
// a couple of ulps, not bitwise -- every caller is tolerance-gated
// (docs/ops.md); never use these inside a bit-exact op.
//
// Include only from *_avx2.cpp translation units compiled with
// -mavx2 -mfma; the explicit _mm256_fmadd_ps calls below survive
// -ffp-contract=off (that flag only disallows *implicit* contraction).
//
// Argument range: the 3-step Cody-Waite reduction in sincos256 is accurate
// for |x| up to ~8192, far beyond the basis kernels' |freq * x| <~ 64.
#pragma once

#include <immintrin.h>

namespace fastchg::ops::vecmath {

/// e^x, clamped to the finite-float exponent range.
inline __m256 exp256(__m256 x) {
  const __m256 one = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, _mm256_set1_ps(88.3762626647949f));
  x = _mm256_max_ps(x, _mm256_set1_ps(-88.3762626647949f));

  // n = round(x / ln2); r = x - n*ln2 via two-term Cody-Waite.
  __m256 fx = _mm256_fmadd_ps(x, _mm256_set1_ps(1.44269504088896341f),
                              _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(0.693359375f), x);
  x = _mm256_fnmadd_ps(fx, _mm256_set1_ps(-2.12194440e-4f), x);

  __m256 z = _mm256_mul_ps(x, x);
  __m256 y = _mm256_set1_ps(1.9875691500e-4f);
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
  y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
  y = _mm256_fmadd_ps(y, z, x);
  y = _mm256_add_ps(y, one);

  // scale by 2^n through the exponent field
  __m256i n = _mm256_cvttps_epi32(fx);
  n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
  n = _mm256_slli_epi32(n, 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

/// sin(x) and cos(x) in one quadrant reduction.
inline void sincos256(__m256 x, __m256* s, __m256* c) {
  const __m256 sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(
      static_cast<int>(0x80000000u)));
  const __m256 inv_sign_mask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));

  __m256 sign_bit_sin = _mm256_and_ps(x, sign_mask);
  x = _mm256_and_ps(x, inv_sign_mask);

  // quadrant index: j = (int(x * 4/pi) + 1) & ~1
  __m256 y = _mm256_mul_ps(x, _mm256_set1_ps(1.27323954473516f));
  __m256i emm2 = _mm256_cvttps_epi32(y);
  emm2 = _mm256_add_epi32(emm2, _mm256_set1_epi32(1));
  emm2 = _mm256_and_si256(emm2, _mm256_set1_epi32(~1));
  y = _mm256_cvtepi32_ps(emm2);

  __m256i emm4 = emm2;

  // sin flips sign in quadrants 4..7
  __m256i emm0 = _mm256_and_si256(emm2, _mm256_set1_epi32(4));
  emm0 = _mm256_slli_epi32(emm0, 29);
  const __m256 swap_sign_bit_sin = _mm256_castsi256_ps(emm0);

  // polynomial select: quadrants 0 and 3 use the sin polynomial for sin
  emm2 = _mm256_and_si256(emm2, _mm256_set1_epi32(2));
  emm2 = _mm256_cmpeq_epi32(emm2, _mm256_setzero_si256());
  const __m256 poly_mask = _mm256_castsi256_ps(emm2);

  // extended-precision x = x - j*(pi/4) (3-step Cody-Waite)
  x = _mm256_fnmadd_ps(y, _mm256_set1_ps(0.78515625f), x);
  x = _mm256_fnmadd_ps(y, _mm256_set1_ps(2.4187564849853515625e-4f), x);
  x = _mm256_fnmadd_ps(y, _mm256_set1_ps(3.77489497744594108e-8f), x);

  // cos flips sign in quadrants 2..5
  emm4 = _mm256_sub_epi32(emm4, _mm256_set1_epi32(2));
  emm4 = _mm256_andnot_si256(emm4, _mm256_set1_epi32(4));
  emm4 = _mm256_slli_epi32(emm4, 29);
  const __m256 sign_bit_cos = _mm256_castsi256_ps(emm4);

  sign_bit_sin = _mm256_xor_ps(sign_bit_sin, swap_sign_bit_sin);

  const __m256 z = _mm256_mul_ps(x, x);

  // cos polynomial on [-pi/4, pi/4]
  __m256 y1 = _mm256_set1_ps(2.443315711809948e-5f);
  y1 = _mm256_fmadd_ps(y1, z, _mm256_set1_ps(-1.388731625493765e-3f));
  y1 = _mm256_fmadd_ps(y1, z, _mm256_set1_ps(4.166664568298827e-2f));
  y1 = _mm256_mul_ps(y1, z);
  y1 = _mm256_mul_ps(y1, z);
  y1 = _mm256_fnmadd_ps(z, _mm256_set1_ps(0.5f), y1);
  y1 = _mm256_add_ps(y1, _mm256_set1_ps(1.0f));

  // sin polynomial on [-pi/4, pi/4]
  __m256 y2 = _mm256_set1_ps(-1.9515295891e-4f);
  y2 = _mm256_fmadd_ps(y2, z, _mm256_set1_ps(8.3321608736e-3f));
  y2 = _mm256_fmadd_ps(y2, z, _mm256_set1_ps(-1.6666654611e-1f));
  y2 = _mm256_mul_ps(y2, z);
  y2 = _mm256_fmadd_ps(y2, x, x);

  const __m256 ysin = _mm256_blendv_ps(y1, y2, poly_mask);
  const __m256 ycos = _mm256_blendv_ps(y2, y1, poly_mask);

  *s = _mm256_xor_ps(ysin, sign_bit_sin);
  *c = _mm256_xor_ps(ycos, sign_bit_cos);
}

inline __m256 sin256(__m256 x) {
  __m256 s, c;
  sincos256(x, &s, &c);
  return s;
}

inline __m256 cos256(__m256 x) {
  __m256 s, c;
  sincos256(x, &s, &c);
  return c;
}

}  // namespace fastchg::ops::vecmath
