// Rownorm op family: fused per-row normalization kernels -- LayerNorm
// forward and the GatedMLP packed gated activation (docs/ops.md).
// *Tolerance-gated*: the scalar tier accumulates mean/variance serially in
// double and calls libm expf for the sigmoids; the AVX2 tier uses 4-wide
// double accumulator lanes (reassociated) and the Cephes exp256 kernel.
// Differences are O(1e-7) relative -- well inside the 1e-5 fused-vs-
// composite gates in test_nn.  Eager kernels and their replay closures
// share one dispatch, so same-tier comparisons are still bitwise.
#pragma once

#include <cstdint>

#include "ops/dispatch.hpp"

namespace fastchg::ops::rownorm {

using index_t = std::int64_t;

/// o[r, c] = (x[r, c] - mean_r) * rstd_r * g[c] + b[c], with mean/var in
/// double and rstd = 1/sqrt((float)var + eps).
void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o);

/// Packed gated activation: rows of x are [core | gate] (width 2c); each
/// half is layer-normalized with its own gamma/beta, then
/// o = sigmoid(gate_n) * silu(core_n)  (width c).
void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o);

namespace scalar {
void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o);
void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o);
}  // namespace scalar

namespace avx2 {
void layernorm(index_t rows, index_t cols, float eps, const float* x,
               const float* g, const float* b, float* o);
void gated_act(index_t rows, index_t c, float eps, const float* x,
               const float* gc, const float* bc, const float* gg,
               const float* bg, float* o);
}  // namespace avx2

}  // namespace fastchg::ops::rownorm
