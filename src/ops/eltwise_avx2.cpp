// AVX2 kernels for the eltwise family.  Compiled with -mavx2 -mfma
// -ffp-contract=off (src/CMakeLists.txt): every operation below evaluates
// the exact IEEE-754 single-precision expression of its scalar reference
// (vaddps/vsubps/vmulps/vdivps/vsqrtps are correctly rounded; axpy is an
// explicit mul *then* add, never contracted to FMA), so the two tiers are
// bitwise identical -- the property the pool/replay/fuse 0.0-diff gates
// ride on.  Tails run the scalar reference loop, which is per-element
// identical by the same argument.
//
// On toolchains that cannot build AVX2 this TU degrades to forwarding
// stubs and detail::avx2_kernels_compiled() reports false, which pins
// ops::avx2_supported() (and therefore the default tier) to scalar.
#include "ops/eltwise.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace fastchg::ops {

namespace detail {
bool avx2_kernels_compiled() { return true; }
}  // namespace detail

namespace eltwise::avx2 {

namespace {
constexpr index_t kW = 8;
}  // namespace

#define FASTCHG_BIN_OP(name, VEXPR, SEXPR)                            \
  void name(index_t n, const float* a, const float* b, float* o) {    \
    index_t i = 0;                                                    \
    for (; i + kW <= n; i += kW) {                                    \
      const __m256 va = _mm256_loadu_ps(a + i);                       \
      const __m256 vb = _mm256_loadu_ps(b + i);                       \
      _mm256_storeu_ps(o + i, VEXPR);                                 \
    }                                                                 \
    for (; i < n; ++i) o[i] = SEXPR;                                  \
  }

FASTCHG_BIN_OP(add, _mm256_add_ps(va, vb), a[i] + b[i])
FASTCHG_BIN_OP(sub, _mm256_sub_ps(va, vb), a[i] - b[i])
FASTCHG_BIN_OP(mul, _mm256_mul_ps(va, vb), a[i] * b[i])
FASTCHG_BIN_OP(div, _mm256_div_ps(va, vb), a[i] / b[i])
#undef FASTCHG_BIN_OP

#define FASTCHG_SCALARB_OP(name, VEXPR, SEXPR)                        \
  void name(index_t n, const float* a, float s, float* o) {           \
    const __m256 vs = _mm256_set1_ps(s);                              \
    (void)vs;                                                         \
    index_t i = 0;                                                    \
    for (; i + kW <= n; i += kW) {                                    \
      const __m256 va = _mm256_loadu_ps(a + i);                       \
      _mm256_storeu_ps(o + i, VEXPR);                                 \
    }                                                                 \
    for (; i < n; ++i) o[i] = SEXPR;                                  \
  }

FASTCHG_SCALARB_OP(add_s, _mm256_add_ps(va, vs), a[i] + s)
FASTCHG_SCALARB_OP(sub_s, _mm256_sub_ps(va, vs), a[i] - s)
FASTCHG_SCALARB_OP(rsub_s, _mm256_sub_ps(vs, va), s - a[i])
FASTCHG_SCALARB_OP(mul_s, _mm256_mul_ps(va, vs), a[i] * s)
FASTCHG_SCALARB_OP(div_s, _mm256_div_ps(va, vs), a[i] / s)
FASTCHG_SCALARB_OP(rdiv_s, _mm256_div_ps(vs, va), s / a[i])
#undef FASTCHG_SCALARB_OP

void neg(index_t n, const float* a, float* o) {
  const __m256 m =
      _mm256_castsi256_ps(_mm256_set1_epi32(static_cast<int>(0x80000000u)));
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(o + i, _mm256_xor_ps(_mm256_loadu_ps(a + i), m));
  }
  for (; i < n; ++i) o[i] = -a[i];
}

void abs(index_t n, const float* a, float* o) {
  const __m256 m = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(o + i, _mm256_and_ps(_mm256_loadu_ps(a + i), m));
  }
  for (; i < n; ++i) o[i] = std::fabs(a[i]);
}

void square(index_t n, const float* a, float* o) {
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 va = _mm256_loadu_ps(a + i);
    _mm256_storeu_ps(o + i, _mm256_mul_ps(va, va));
  }
  for (; i < n; ++i) o[i] = a[i] * a[i];
}

void recip(index_t n, const float* a, float* o) {
  // vdivps, not vrcpps: the dispatched op is bit-exact, approximations are
  // not allowed here.
  const __m256 one = _mm256_set1_ps(1.0f);
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(o + i, _mm256_div_ps(one, _mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = 1.0f / a[i];
}

void sqrt(index_t n, const float* a, float* o) {
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(o + i, _mm256_sqrt_ps(_mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] = std::sqrt(a[i]);
}

void sign(index_t n, const float* a, float* o) {
  const __m256 zero = _mm256_setzero_ps();
  const __m256 pone = _mm256_set1_ps(1.0f);
  const __m256 mone = _mm256_set1_ps(-1.0f);
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 pos = _mm256_and_ps(_mm256_cmp_ps(va, zero, _CMP_GT_OQ), pone);
    const __m256 neg_ = _mm256_and_ps(_mm256_cmp_ps(va, zero, _CMP_LT_OQ), mone);
    _mm256_storeu_ps(o + i, _mm256_or_ps(pos, neg_));
  }
  for (; i < n; ++i) o[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
}

void clamp(index_t n, const float* a, float lo, float hi, float* o) {
  // Two blends reproduce the scalar ternary exactly, including NaN
  // passthrough (both compares are false for NaN, so v survives).
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 va = _mm256_loadu_ps(a + i);
    __m256 r = _mm256_blendv_ps(va, vlo, _mm256_cmp_ps(va, vlo, _CMP_LT_OQ));
    r = _mm256_blendv_ps(r, vhi, _mm256_cmp_ps(va, vhi, _CMP_GT_OQ));
    _mm256_storeu_ps(o + i, r);
  }
  for (; i < n; ++i) o[i] = a[i] < lo ? lo : (a[i] > hi ? hi : a[i]);
}

void clamp_mask(index_t n, const float* a, float lo, float hi, float* o) {
  const __m256 vlo = _mm256_set1_ps(lo);
  const __m256 vhi = _mm256_set1_ps(hi);
  const __m256 one = _mm256_set1_ps(1.0f);
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 va = _mm256_loadu_ps(a + i);
    const __m256 in = _mm256_and_ps(_mm256_cmp_ps(va, vlo, _CMP_GE_OQ),
                                    _mm256_cmp_ps(va, vhi, _CMP_LE_OQ));
    _mm256_storeu_ps(o + i, _mm256_and_ps(in, one));
  }
  for (; i < n; ++i) o[i] = (a[i] >= lo && a[i] <= hi) ? 1.0f : 0.0f;
}

void acc(index_t n, const float* a, float* o) {
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(
        o + i, _mm256_add_ps(_mm256_loadu_ps(o + i), _mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) o[i] += a[i];
}

void axpy(index_t n, float s, const float* a, float* o) {
  // Mul then add, deliberately NOT _mm256_fmadd_ps: the scalar reference
  // (built without FMA in the ISA) rounds the product first, and this op
  // is in the bit-exact class.  -ffp-contract=off keeps the compiler from
  // re-fusing the pair.
  const __m256 vs = _mm256_set1_ps(s);
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    const __m256 p = _mm256_mul_ps(vs, _mm256_loadu_ps(a + i));
    _mm256_storeu_ps(o + i, _mm256_add_ps(_mm256_loadu_ps(o + i), p));
  }
  for (; i < n; ++i) o[i] += s * a[i];
}

void scale(index_t n, float s, float* o) {
  const __m256 vs = _mm256_set1_ps(s);
  index_t i = 0;
  for (; i + kW <= n; i += kW) {
    _mm256_storeu_ps(o + i, _mm256_mul_ps(_mm256_loadu_ps(o + i), vs));
  }
  for (; i < n; ++i) o[i] *= s;
}

}  // namespace eltwise::avx2
}  // namespace fastchg::ops

#else  // !(__AVX2__ && __FMA__): forwarding stubs, tier stays scalar

namespace fastchg::ops {

namespace detail {
bool avx2_kernels_compiled() { return false; }
}  // namespace detail

namespace eltwise::avx2 {

void add(index_t n, const float* a, const float* b, float* o) { scalar::add(n, a, b, o); }
void sub(index_t n, const float* a, const float* b, float* o) { scalar::sub(n, a, b, o); }
void mul(index_t n, const float* a, const float* b, float* o) { scalar::mul(n, a, b, o); }
void div(index_t n, const float* a, const float* b, float* o) { scalar::div(n, a, b, o); }
void add_s(index_t n, const float* a, float s, float* o) { scalar::add_s(n, a, s, o); }
void sub_s(index_t n, const float* a, float s, float* o) { scalar::sub_s(n, a, s, o); }
void rsub_s(index_t n, const float* a, float s, float* o) { scalar::rsub_s(n, a, s, o); }
void mul_s(index_t n, const float* a, float s, float* o) { scalar::mul_s(n, a, s, o); }
void div_s(index_t n, const float* a, float s, float* o) { scalar::div_s(n, a, s, o); }
void rdiv_s(index_t n, const float* a, float s, float* o) { scalar::rdiv_s(n, a, s, o); }
void neg(index_t n, const float* a, float* o) { scalar::neg(n, a, o); }
void abs(index_t n, const float* a, float* o) { scalar::abs(n, a, o); }
void square(index_t n, const float* a, float* o) { scalar::square(n, a, o); }
void recip(index_t n, const float* a, float* o) { scalar::recip(n, a, o); }
void sqrt(index_t n, const float* a, float* o) { scalar::sqrt(n, a, o); }
void sign(index_t n, const float* a, float* o) { scalar::sign(n, a, o); }
void clamp(index_t n, const float* a, float lo, float hi, float* o) { scalar::clamp(n, a, lo, hi, o); }
void clamp_mask(index_t n, const float* a, float lo, float hi, float* o) { scalar::clamp_mask(n, a, lo, hi, o); }
void acc(index_t n, const float* a, float* o) { scalar::acc(n, a, o); }
void axpy(index_t n, float s, const float* a, float* o) { scalar::axpy(n, s, a, o); }
void scale(index_t n, float s, float* o) { scalar::scale(n, s, o); }

}  // namespace eltwise::avx2
}  // namespace fastchg::ops

#endif
