#include "train/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "core/error.hpp"

namespace fastchg::train {

CosineAnnealingLR::CosineAnnealingLR(float init_lr, index_t total_steps,
                                     float min_lr)
    : init_lr_(init_lr), min_lr_(min_lr), total_steps_(total_steps) {
  FASTCHG_CHECK(total_steps > 0, "CosineAnnealingLR: total_steps");
}

float CosineAnnealingLR::lr_at(index_t t) const {
  const double x = std::min<double>(1.0, static_cast<double>(t) /
                                             static_cast<double>(total_steps_));
  return static_cast<float>(
      min_lr_ + 0.5 * (init_lr_ - min_lr_) * (1.0 + std::cos(M_PI * x)));
}

float scaled_init_lr(index_t batch_size, index_t k, float base_lr) {
  return static_cast<float>(batch_size) / static_cast<float>(k) * base_lr;
}

}  // namespace fastchg::train
