// AtomRef: per-species reference energies fitted by (ridge) least squares
// on the training set, exactly like CHGNet's composition model.  The GNN
// then only has to learn the bonding residual, which is what makes training
// converge in a reasonable number of steps.
//
// Model: E_s / N_s  ~=  sum_z f_{s,z} * e0_z, where f_{s,z} is the fraction
// of atoms of species z in structure s.
#pragma once

#include <vector>

#include "data/dataset.hpp"

namespace fastchg::train {

/// Fit reference energies over the given dataset rows.  Returns a
/// [num_species + 1]-sized vector indexed by atomic number (index 0 unused).
/// `ridge` regularizes species that occur rarely.
std::vector<float> fit_atom_ref(const data::Dataset& ds,
                                const std::vector<index_t>& rows,
                                index_t num_species, double ridge = 1e-3);

/// Dense symmetric-system solver (Gaussian elimination with partial
/// pivoting); exposed for tests.
std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b,
                                std::size_t n);

}  // namespace fastchg::train
