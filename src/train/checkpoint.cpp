#include "train/checkpoint.hpp"

#include "core/error.hpp"

namespace fastchg::train {

const nn::Section* find_section(const std::vector<nn::Section>& sections,
                                const std::string& name) {
  for (const nn::Section& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const nn::Section& require_section(const std::vector<nn::Section>& sections,
                                   const std::string& name) {
  const nn::Section* s = find_section(sections, name);
  FASTCHG_CHECK(s != nullptr,
                "checkpoint: missing required section '"
                    << name
                    << "' (weights-only file? use load_parameters instead "
                       "of resume)");
  return *s;
}

nn::Section adam_section(const Adam& opt) {
  nn::PayloadWriter w;
  w.put_u64(static_cast<std::uint64_t>(opt.step_count()));
  w.put_f32(opt.lr());
  const auto& m = opt.exp_avg();
  const auto& v = opt.exp_avg_sq();
  w.put_u64(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    w.put_tensor(m[i]);
    w.put_tensor(v[i]);
  }
  return {kSectionAdam, w.take()};
}

void restore_adam(Adam& opt, const nn::Section& s) {
  nn::PayloadReader r(s.payload);
  const auto t = static_cast<index_t>(r.get_u64());
  const float lr = r.get_f32();
  const std::uint64_t count = r.get_u64();
  std::vector<Tensor> m, v;
  m.reserve(static_cast<std::size_t>(count));
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    m.push_back(r.get_tensor());
    v.push_back(r.get_tensor());
  }
  FASTCHG_CHECK(r.done(), "checkpoint: adam section has trailing bytes");
  opt.restore_state(std::move(m), std::move(v), t);
  opt.set_lr(lr);
}

nn::Section atom_ref_section(const model::CHGNet& net) {
  nn::PayloadWriter w;
  w.put_u64(net.has_atom_ref() ? 1 : 0);
  if (net.has_atom_ref()) w.put_tensor(net.atom_ref());
  return {kSectionAtomRef, w.take()};
}

void restore_atom_ref(model::CHGNet& net, const nn::Section& s) {
  nn::PayloadReader r(s.payload);
  if (r.get_u64() == 0) return;  // saved model had no AtomRef fitted yet
  const Tensor t = r.get_tensor();
  FASTCHG_CHECK(r.done(), "checkpoint: atom_ref section has trailing bytes");
  net.set_atom_ref(t.to_vector());
}

nn::Section rng_section(const std::string& name, const Rng& rng) {
  nn::PayloadWriter w;
  w.put_string(rng.state());
  return {name, w.take()};
}

void restore_rng(Rng& rng, const nn::Section& s) {
  nn::PayloadReader r(s.payload);
  rng.set_state(r.get_string());
  FASTCHG_CHECK(r.done(), "checkpoint: rng section has trailing bytes");
}

StateStreamer::StateStreamer(std::size_t chunk_bytes) {
  const std::size_t elems =
      std::max<std::size_t>(1, chunk_bytes / sizeof(float));
  staging_ = Tensor::zeros({static_cast<index_t>(elems)});
}

std::uint64_t StateStreamer::stream(const Tensor& src, Tensor& dst) {
  FASTCHG_CHECK(same_shape(src.shape(), dst.shape()),
                "StateStreamer: shape mismatch " << shape_str(src.shape())
                                                 << " vs "
                                                 << shape_str(dst.shape()));
  const index_t chunk = staging_.numel();
  const float* s = src.data();
  float* wire = staging_.data();
  float* d = dst.data();
  for (index_t off = 0; off < src.numel(); off += chunk) {
    const index_t n = std::min(chunk, src.numel() - off);
    // "Send" into the bounded wire buffer, then "receive" on the joiner:
    // the staging tensor is the only extra memory the broadcast ever holds.
    std::copy(s + off, s + off + n, wire);
    std::copy(wire, wire + n, d + off);
  }
  const auto bytes = static_cast<std::uint64_t>(src.numel()) * sizeof(float);
  bytes_streamed_ += bytes;
  return bytes;
}

std::uint64_t broadcast_state(const model::CHGNet& src, const Adam& src_opt,
                              model::CHGNet& dst, Adam& dst_opt,
                              StateStreamer& streamer) {
  std::uint64_t bytes = 0;
  auto sp = src.parameters();
  auto dp = dst.parameters();
  FASTCHG_CHECK(sp.size() == dp.size(),
                "broadcast_state: parameter count mismatch");
  for (std::size_t i = 0; i < sp.size(); ++i) {
    bytes += streamer.stream(sp[i].value(), dp[i].node()->value);
  }
  const auto& sm = src_opt.exp_avg();
  const auto& sv = src_opt.exp_avg_sq();
  auto& dm = dst_opt.exp_avg_mut();
  auto& dv = dst_opt.exp_avg_sq_mut();
  FASTCHG_CHECK(sm.size() == dm.size() && sv.size() == dv.size(),
                "broadcast_state: moment count mismatch");
  for (std::size_t i = 0; i < sm.size(); ++i) {
    bytes += streamer.stream(sm[i], dm[i]);
  }
  for (std::size_t i = 0; i < sv.size(); ++i) {
    bytes += streamer.stream(sv[i], dv[i]);
  }
  dst_opt.set_step_count(src_opt.step_count());
  dst_opt.set_lr(src_opt.lr());
  if (src.has_atom_ref()) dst.set_atom_ref(src.atom_ref().to_vector());
  return bytes;
}

}  // namespace fastchg::train
