#include "train/checkpoint.hpp"

#include "core/error.hpp"

namespace fastchg::train {

const nn::Section* find_section(const std::vector<nn::Section>& sections,
                                const std::string& name) {
  for (const nn::Section& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const nn::Section& require_section(const std::vector<nn::Section>& sections,
                                   const std::string& name) {
  const nn::Section* s = find_section(sections, name);
  FASTCHG_CHECK(s != nullptr,
                "checkpoint: missing required section '"
                    << name
                    << "' (weights-only file? use load_parameters instead "
                       "of resume)");
  return *s;
}

nn::Section adam_section(const Adam& opt) {
  nn::PayloadWriter w;
  w.put_u64(static_cast<std::uint64_t>(opt.step_count()));
  w.put_f32(opt.lr());
  const auto& m = opt.exp_avg();
  const auto& v = opt.exp_avg_sq();
  w.put_u64(m.size());
  for (std::size_t i = 0; i < m.size(); ++i) {
    w.put_tensor(m[i]);
    w.put_tensor(v[i]);
  }
  return {kSectionAdam, w.take()};
}

void restore_adam(Adam& opt, const nn::Section& s) {
  nn::PayloadReader r(s.payload);
  const auto t = static_cast<index_t>(r.get_u64());
  const float lr = r.get_f32();
  const std::uint64_t count = r.get_u64();
  std::vector<Tensor> m, v;
  m.reserve(static_cast<std::size_t>(count));
  v.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    m.push_back(r.get_tensor());
    v.push_back(r.get_tensor());
  }
  FASTCHG_CHECK(r.done(), "checkpoint: adam section has trailing bytes");
  opt.restore_state(std::move(m), std::move(v), t);
  opt.set_lr(lr);
}

nn::Section atom_ref_section(const model::CHGNet& net) {
  nn::PayloadWriter w;
  w.put_u64(net.has_atom_ref() ? 1 : 0);
  if (net.has_atom_ref()) w.put_tensor(net.atom_ref());
  return {kSectionAtomRef, w.take()};
}

void restore_atom_ref(model::CHGNet& net, const nn::Section& s) {
  nn::PayloadReader r(s.payload);
  if (r.get_u64() == 0) return;  // saved model had no AtomRef fitted yet
  const Tensor t = r.get_tensor();
  FASTCHG_CHECK(r.done(), "checkpoint: atom_ref section has trailing bytes");
  net.set_atom_ref(t.to_vector());
}

nn::Section rng_section(const std::string& name, const Rng& rng) {
  nn::PayloadWriter w;
  w.put_string(rng.state());
  return {name, w.take()};
}

void restore_rng(Rng& rng, const nn::Section& s) {
  nn::PayloadReader r(s.payload);
  rng.set_state(r.get_string());
  FASTCHG_CHECK(r.done(), "checkpoint: rng section has trailing bytes");
}

}  // namespace fastchg::train
