#include "train/adam.hpp"

#include <cmath>

#include "core/error.hpp"

namespace fastchg::train {

Adam::Adam(std::vector<Var> params, float lr, float beta1, float beta2,
           float eps)
    : params_(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.push_back(Tensor::zeros(p.shape()));
    v_.push_back(Tensor::zeros(p.shape()));
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Var& p = params_[i];
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    float* w = p.node()->value.data();
    const index_t n = p.numel();
    for (index_t k = 0; k < n; ++k) {
      m[k] = beta1_ * m[k] + (1.0f - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0f - beta2_) * g[k] * g[k];
      const float mhat = m[k] / bc1;
      const float vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

void Adam::zero_grad() {
  for (Var& p : params_) p.zero_grad();
}

void Adam::restore_state(std::vector<Tensor> m, std::vector<Tensor> v,
                         index_t t) {
  FASTCHG_CHECK(m.size() == params_.size() && v.size() == params_.size(),
                "Adam::restore_state: " << m.size() << "/" << v.size()
                                        << " moment tensors for "
                                        << params_.size() << " parameters");
  for (std::size_t i = 0; i < params_.size(); ++i) {
    FASTCHG_CHECK(same_shape(m[i].shape(), params_[i].shape()) &&
                      same_shape(v[i].shape(), params_[i].shape()),
                  "Adam::restore_state: moment " << i << " shape mismatch");
  }
  m_ = std::move(m);
  v_ = std::move(v);
  t_ = t;
}

}  // namespace fastchg::train
