#include "train/metrics.hpp"

#include <cmath>

#include "data/crystal.hpp"

namespace fastchg::train {

void RegressionStats::add(const Tensor& pred, const Tensor& target) {
  FASTCHG_CHECK(pred.numel() == target.numel(),
                "RegressionStats: " << pred.numel() << " vs "
                                    << target.numel());
  const float* p = pred.data();
  const float* t = target.data();
  for (index_t i = 0; i < pred.numel(); ++i) {
    add(static_cast<double>(p[i]), static_cast<double>(t[i]));
  }
}

void RegressionStats::add(double pred, double target) {
  ++n_;
  const double err = pred - target;
  abs_err_sum_ += std::fabs(err);
  sum_t_ += target;
  sum_t2_ += target * target;
  sum_sq_err_ += err * err;
  if (keep_pairs_) {
    pairs_.emplace_back(static_cast<float>(pred),
                        static_cast<float>(target));
  }
}

double RegressionStats::mae() const {
  return n_ > 0 ? abs_err_sum_ / static_cast<double>(n_) : 0.0;
}

double RegressionStats::r2() const {
  if (n_ < 2) return 0.0;
  const double mean_t = sum_t_ / static_cast<double>(n_);
  const double ss_tot = sum_t2_ - static_cast<double>(n_) * mean_t * mean_t;
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - sum_sq_err_ / ss_tot;
}

EvalMetrics evaluate_model(const model::CHGNet& net, const data::Dataset& ds,
                           const std::vector<index_t>& indices,
                           index_t batch_size, RegressionStats* energy_pairs,
                           RegressionStats* force_pairs) {
  RegressionStats e_stats, f_stats, s_stats, m_stats;
  if (energy_pairs == nullptr) energy_pairs = &e_stats;
  if (force_pairs == nullptr) force_pairs = &f_stats;
  for (std::size_t lo = 0; lo < indices.size();
       lo += static_cast<std::size_t>(batch_size)) {
    const std::size_t hi =
        std::min(indices.size(), lo + static_cast<std::size_t>(batch_size));
    std::vector<index_t> rows(indices.begin() + lo, indices.begin() + hi);
    data::Batch b = data::collate_indices(ds, rows);
    model::ModelOutput out = net.forward(b, model::ForwardMode::kEval);
    energy_pairs->add(out.energy_per_atom.value(), b.energy_per_atom);
    force_pairs->add(out.forces.value(), b.forces);
    s_stats.add(out.stress.value(), b.stress);
    m_stats.add(out.magmom.value(), b.magmom);
  }
  EvalMetrics m;
  m.energy_mae_mev_atom = energy_pairs->mae() * 1e3;
  m.force_mae_mev_a = force_pairs->mae() * 1e3;
  m.stress_mae_gpa = s_stats.mae() * data::kEvA3ToGPa;
  m.magmom_mae_mmub = m_stats.mae() * 1e3;
  m.energy_r2 = energy_pairs->r2();
  m.force_r2 = force_pairs->r2();
  return m;
}

}  // namespace fastchg::train
