// Adam optimizer (paper Sec. IV: 'Adam' with initial LR 3e-4).
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace fastchg::train {

using ag::Var;

class Adam {
 public:
  explicit Adam(std::vector<Var> params, float lr = 3e-4f,
                float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  /// Apply one update from the parameters' accumulated .grad tensors.
  void step();
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }
  index_t step_count() const { return t_; }

  /// Checkpoint access: first/second moment estimates in parameter order.
  const std::vector<Tensor>& exp_avg() const { return m_; }
  const std::vector<Tensor>& exp_avg_sq() const { return v_; }
  /// Restore moments and the bias-correction step count saved from another
  /// Adam over a structurally identical parameter list.
  void restore_state(std::vector<Tensor> m, std::vector<Tensor> v, index_t t);
  /// Mutable moment access for the elastic join's in-place state streaming
  /// (the broadcast copies chunk-by-chunk into the existing tensors, so no
  /// model-sized staging buffer is ever allocated).
  std::vector<Tensor>& exp_avg_mut() { return m_; }
  std::vector<Tensor>& exp_avg_sq_mut() { return v_; }
  void set_step_count(index_t t) { t_ = t; }

 private:
  std::vector<Var> params_;
  std::vector<Tensor> m_, v_;
  float lr_, beta1_, beta2_, eps_;
  index_t t_ = 0;
};

}  // namespace fastchg::train
