// Evaluation metrics: MAE (Table I) and R^2 (Fig. 7), with unit conversions
// matching the paper's reporting (meV/atom, meV/A, GPa, milli-mu_B).
#pragma once

#include <vector>

#include "chgnet/model.hpp"
#include "data/batch.hpp"

namespace fastchg::train {

/// Streaming accumulator for MAE and R^2 over many batches.
class RegressionStats {
 public:
  void add(const Tensor& pred, const Tensor& target);
  void add(double pred, double target);
  double mae() const;
  double r2() const;
  index_t count() const { return n_; }
  /// (prediction, target) pairs retained for parity plots (Fig. 7).
  const std::vector<std::pair<float, float>>& pairs() const { return pairs_; }
  void keep_pairs(bool keep) { keep_pairs_ = keep; }

 private:
  index_t n_ = 0;
  double abs_err_sum_ = 0.0;
  double sum_t_ = 0.0, sum_t2_ = 0.0, sum_sq_err_ = 0.0;
  bool keep_pairs_ = false;
  std::vector<std::pair<float, float>> pairs_;
};

struct EvalMetrics {
  double energy_mae_mev_atom = 0.0;  ///< meV/atom
  double force_mae_mev_a = 0.0;      ///< meV/A
  double stress_mae_gpa = 0.0;       ///< GPa
  double magmom_mae_mmub = 0.0;      ///< milli-mu_B
  double energy_r2 = 0.0;
  double force_r2 = 0.0;
};

/// Evaluate `net` on the given dataset rows (eval mode, batched).
EvalMetrics evaluate_model(const model::CHGNet& net, const data::Dataset& ds,
                           const std::vector<index_t>& indices,
                           index_t batch_size,
                           RegressionStats* energy_pairs = nullptr,
                           RegressionStats* force_pairs = nullptr);

}  // namespace fastchg::train
