// Full-state training checkpoints (format v2, see docs/checkpoint_format.md).
//
// nn::serialize handles the weights; the section codecs here persist
// everything else a bit-identical resume needs: Adam first/second moments
// and step count, scheduler position (global step + next epoch), guard
// state (LR backoff), the data-order RNG stream, and the model's AtomRef
// table.  Trainer and DataParallelTrainer compose these into their
// save_checkpoint / resume paths.
#pragma once

#include <string>
#include <vector>

#include "chgnet/model.hpp"
#include "nn/serialize.hpp"
#include "train/adam.hpp"

namespace fastchg::train {

/// Section names used by the trainers.
inline constexpr const char* kSectionAdam = "adam";
inline constexpr const char* kSectionTrainer = "trainer";
inline constexpr const char* kSectionAtomRef = "atom_ref";
inline constexpr const char* kSectionRng = "rng";
inline constexpr const char* kSectionElastic = "elastic";

/// Find a section by name; nullptr when absent.
const nn::Section* find_section(const std::vector<nn::Section>& sections,
                                const std::string& name);
/// Like find_section but throws a descriptive error when absent (used for
/// sections a resume cannot proceed without).
const nn::Section& require_section(const std::vector<nn::Section>& sections,
                                   const std::string& name);

/// Optimizer moments + bias-correction step + current LR.
nn::Section adam_section(const Adam& opt);
void restore_adam(Adam& opt, const nn::Section& s);

/// AtomRef reference-energy table (encodes "absent" too, so a resume never
/// silently refits a different baseline).
nn::Section atom_ref_section(const model::CHGNet& net);
void restore_atom_ref(model::CHGNet& net, const nn::Section& s);

/// Serialized Rng engine state.
nn::Section rng_section(const std::string& name, const Rng& rng);
void restore_rng(Rng& rng, const nn::Section& s);

/// Chunked state streaming for the elastic-join full-state broadcast.
///
/// Copies tensor state source -> destination through ONE fixed-size staging
/// tensor (default 64 KiB) allocated at construction, so broadcasting a full
/// replica (params + both Adam moments) never materializes a model-sized
/// buffer and the tracked `bytes_peak` stays flat during joins.  The staging
/// block models the bounded pipeline buffer a real NCCL broadcast streams
/// through.
class StateStreamer {
 public:
  explicit StateStreamer(std::size_t chunk_bytes = 64 * 1024);

  /// Chunked elementwise copy (shapes must match); returns bytes streamed.
  std::uint64_t stream(const Tensor& src, Tensor& dst);

  std::uint64_t bytes_streamed() const { return bytes_streamed_; }
  std::size_t chunk_bytes() const {
    return static_cast<std::size_t>(staging_.numel()) * sizeof(float);
  }

 private:
  Tensor staging_;
  std::uint64_t bytes_streamed_ = 0;
};

/// Full-state broadcast lead -> joiner for the elastic join protocol:
/// parameters, both Adam moments (+ bias-correction step count and LR), and
/// the AtomRef table, all streamed chunk-by-chunk.  After it returns the
/// joiner is bit-identical to the lead replica.  Returns the total bytes
/// streamed (the payload the join cost model charges to simulated time).
std::uint64_t broadcast_state(const model::CHGNet& src, const Adam& src_opt,
                              model::CHGNet& dst, Adam& dst_opt,
                              StateStreamer& streamer);

}  // namespace fastchg::train
