// Single-device trainer: mini-batch loop, Adam, cosine annealing, optional
// Eq.-14 LR scaling, per-epoch loss/metric tracking.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "train/adam.hpp"
#include "train/atom_ref.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "train/scheduler.hpp"

namespace fastchg::train {

struct TrainConfig {
  index_t batch_size = 32;
  index_t epochs = 10;
  float base_lr = 3e-4f;
  bool scale_lr = false;   ///< apply Eq. 14 with lr_k
  index_t lr_k = 128;
  float min_lr = 1e-5f;
  LossWeights weights;
  float huber_delta = 0.1f;
  std::uint64_t shuffle_seed = 42;
  /// Fit CHGNet's AtomRef composition baseline on the training rows before
  /// the first epoch (strongly recommended; see atom_ref.hpp).
  bool fit_atom_ref = true;
  /// Collate the next mini-batch on a background thread while the current
  /// one trains (the paper's "Data Prefetch" optimization).
  bool prefetch = true;
  /// Gradient accumulation: each optimizer step averages the gradients of
  /// this many consecutive mini-batches (large-batch training on a memory
  /// budget; 1 = off).
  index_t accumulation_steps = 1;
};

struct EpochStats {
  double mean_loss = 0.0;
  double energy_loss = 0.0;
  double force_loss = 0.0;
  double stress_loss = 0.0;
  double magmom_loss = 0.0;
  double seconds = 0.0;
  index_t iterations = 0;
  /// Weighted validation loss (energy+force+stress+magmom MAEs, loss
  /// weights applied); NaN when fit() ran without a validation split.
  double val_score = std::numeric_limits<double>::quiet_NaN();
};

class Trainer {
 public:
  Trainer(model::CHGNet& net, const TrainConfig& cfg);

  /// Train on the given dataset rows; returns per-epoch stats.
  std::vector<EpochStats> fit(const data::Dataset& ds,
                              const std::vector<index_t>& train_idx);

  /// Train with validation-based early stopping: stops after `patience`
  /// epochs without val_score improvement and restores the best weights.
  std::vector<EpochStats> fit(const data::Dataset& ds,
                              const std::vector<index_t>& train_idx,
                              const std::vector<index_t>& val_idx,
                              index_t patience);

  /// One epoch (exposed for the benchmarks' fine-grained control).
  EpochStats train_epoch(const data::Dataset& ds,
                         const std::vector<index_t>& train_idx,
                         index_t epoch);

  EvalMetrics evaluate(const data::Dataset& ds,
                       const std::vector<index_t>& idx) const;

  /// Effective initial LR after optional Eq.-14 scaling.
  float initial_lr() const { return init_lr_; }
  Adam& optimizer() { return opt_; }

  /// Optional per-epoch callback (epoch index, stats).
  std::function<void(index_t, const EpochStats&)> on_epoch;

 private:
  model::CHGNet& net_;
  TrainConfig cfg_;
  float init_lr_;
  Adam opt_;
  index_t global_step_ = 0;
};

}  // namespace fastchg::train
