// Single-device trainer: mini-batch loop, Adam, cosine annealing, optional
// Eq.-14 LR scaling, per-epoch loss/metric tracking, non-finite training
// guards, and full-state checkpoint / resume.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "core/alloc.hpp"
#include "core/replay.hpp"
#include "train/adam.hpp"
#include "train/atom_ref.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "train/scheduler.hpp"

namespace fastchg::train {

struct TrainConfig {
  index_t batch_size = 32;
  index_t epochs = 10;
  float base_lr = 3e-4f;
  bool scale_lr = false;   ///< apply Eq. 14 with lr_k
  index_t lr_k = 128;
  float min_lr = 1e-5f;
  LossWeights weights;
  float huber_delta = 0.1f;
  std::uint64_t shuffle_seed = 42;
  /// Fit CHGNet's AtomRef composition baseline on the training rows before
  /// the first epoch (strongly recommended; see atom_ref.hpp).
  bool fit_atom_ref = true;
  /// Collate the next mini-batch on a background thread while the current
  /// one trains (the paper's "Data Prefetch" optimization).
  bool prefetch = true;
  /// Gradient accumulation: each optimizer step averages the gradients of
  /// this many consecutive mini-batches (large-batch training on a memory
  /// budget; 1 = off).
  index_t accumulation_steps = 1;
  /// Training guard: when a step produces a non-finite loss or gradient,
  /// skip the optimizer update (so NaN/Inf never reaches the weights) and
  /// multiply the effective LR by `lr_backoff` for the rest of the run.
  bool guard_nonfinite = true;
  float lr_backoff = 0.5f;
};

struct EpochStats {
  double mean_loss = 0.0;
  double energy_loss = 0.0;
  double force_loss = 0.0;
  double stress_loss = 0.0;
  double magmom_loss = 0.0;
  double seconds = 0.0;
  index_t iterations = 0;
  /// Steps the non-finite guard skipped (loss or gradient NaN/Inf).
  index_t skipped_steps = 0;
  /// Weighted validation loss (energy+force+stress+magmom MAEs, loss
  /// weights applied); NaN when fit() ran without a validation split.
  double val_score = std::numeric_limits<double>::quiet_NaN();
};

class Trainer {
 public:
  Trainer(model::CHGNet& net, const TrainConfig& cfg);

  /// Train on the given dataset rows; returns per-epoch stats.  After a
  /// resume() this continues from the checkpointed epoch up to cfg.epochs.
  std::vector<EpochStats> fit(const data::Dataset& ds,
                              const std::vector<index_t>& train_idx);

  /// Train with validation-based early stopping: stops after `patience`
  /// epochs without val_score improvement and restores the best weights.
  /// A non-finite val_score counts as "no improvement".
  std::vector<EpochStats> fit(const data::Dataset& ds,
                              const std::vector<index_t>& train_idx,
                              const std::vector<index_t>& val_idx,
                              index_t patience);

  /// One epoch (exposed for the benchmarks' fine-grained control).
  EpochStats train_epoch(const data::Dataset& ds,
                         const std::vector<index_t>& train_idx,
                         index_t epoch);

  EvalMetrics evaluate(const data::Dataset& ds,
                       const std::vector<index_t>& idx) const;

  /// Full-state checkpoint: weights, AtomRef, Adam moments, global step,
  /// epoch position, guard state, and the data-order RNG stream.  Written
  /// atomically (temp file + rename).  resume() restores all of it so
  /// continuing the run is bit-identical to never having stopped.
  void save_checkpoint(const std::string& path) const;
  void resume(const std::string& path);

  /// Effective initial LR after optional Eq.-14 scaling.
  float initial_lr() const { return init_lr_; }
  Adam& optimizer() { return opt_; }
  /// The next epoch fit() would run (0 on a fresh trainer; restored by
  /// resume()).
  index_t next_epoch() const { return next_epoch_; }
  /// Scheduler steps taken so far (restored by resume()).
  index_t global_step() const { return global_step_; }
  /// Cumulative LR multiplier applied by the non-finite guard (1 = never
  /// triggered).
  float lr_backoff_scale() const { return backoff_scale_; }
  /// Total steps skipped by the guard across all epochs.
  index_t skipped_steps() const { return skipped_steps_; }

  /// Recorded-step replay cache (hit/miss/capture stats for tests and
  /// benchmarks; see core/replay.hpp).
  const replay::ProgramCache& replay_cache() const { return replay_cache_; }

  /// Optional per-epoch callback (epoch index, stats).
  std::function<void(index_t, const EpochStats&)> on_epoch;

 private:
  model::CHGNet& net_;
  TrainConfig cfg_;
  float init_lr_;
  Adam opt_;
  index_t global_step_ = 0;
  index_t next_epoch_ = 0;
  float backoff_scale_ = 1.0f;
  index_t skipped_steps_ = 0;
  Rng shuffle_rng_{0};  ///< data-order stream; reseeded per epoch
  /// Step arena: every step's graph (activations, Nodes, gradients) is
  /// allocated here and recycled on teardown, so after the first step's
  /// warm-up a steady-state step touches the system allocator ~zero times
  /// (see docs/memory.md; asserted by bench_memory_arena).
  alloc::AllocatorPtr step_pool_ = std::make_shared<alloc::PoolAllocator>();
  /// Recorded-step replay: the second time a batch topology is seen the
  /// whole forward+loss+backward step is captured as a flat closure program
  /// (core/replay.hpp); later sightings replay it with no graph rebuild.
  /// Only engaged once every parameter gradient is warm, so the tape records
  /// pure `grad += g` accumulation (composes with accumulation_steps).
  replay::ProgramCache replay_cache_{8};
};

/// True when every accumulated gradient of `params` is finite (params
/// without a gradient are ignored).
bool gradients_finite(const std::vector<ag::Var>& params);

}  // namespace fastchg::train
