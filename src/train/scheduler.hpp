// Learning-rate schedule: cosine annealing (paper Sec. IV) plus the linear
// large-batch scaling rule of Eq. 14: init_LR = batch/k * 3e-4, k = 128.
#pragma once

#include "core/tensor.hpp"

namespace fastchg::train {

class CosineAnnealingLR {
 public:
  CosineAnnealingLR(float init_lr, index_t total_steps, float min_lr = 0.0f);
  /// LR at step t (clamped to total_steps).
  float lr_at(index_t t) const;

 private:
  float init_lr_, min_lr_;
  index_t total_steps_;
};

/// Eq. 14: scale the base LR linearly with the global batch size.
float scaled_init_lr(index_t batch_size, index_t k = 128,
                     float base_lr = 3e-4f);

}  // namespace fastchg::train
