#include "train/trainer.hpp"

#include <cmath>
#include <optional>

#include "autograd/ops.hpp"
#include "core/rng.hpp"
#include "data/prefetch.hpp"
#include "perf/timer.hpp"
#include "perf/trace.hpp"
#include "train/checkpoint.hpp"

namespace fastchg::train {

namespace {

/// Key namespace for the trainer's replay site (one key space per site so
/// e.g. a DP device replica never replays a trainer program).
constexpr std::uint64_t kTrainerReplaySeed = 0x545241494eull;  // "TRAIN"

/// Pointer-stability validation list for trainer replay programs: parameter
/// values and gradient accumulators, in parameter order.  Any storage
/// replacement (checkpoint restore) fails bind() and triggers re-capture.
std::vector<Tensor> replay_stable(const std::vector<ag::Var>& params) {
  std::vector<Tensor> v;
  v.reserve(2 * params.size());
  for (const ag::Var& p : params) {
    v.push_back(p.value());
    v.push_back(p.grad());
  }
  return v;
}

/// Define a zero gradient for any parameter that has none yet.  Replay is
/// only sound once every gradient tensor exists: the tape records in-place
/// `grad += g`, and a grad first materialized *during* capture (backward's
/// first-touch clone) would be invisible to later replays.  A parameter
/// backward never reaches (an architecturally unused block) keeps an
/// all-zero grad, for which Adam's update is a bitwise no-op -- identical
/// to the skip it applies to a grad-less parameter.
void warm_grads(const std::vector<ag::Var>& params) {
  for (ag::Var p : params) {
    if (!p.has_grad()) p.set_grad(Tensor::zeros(p.shape()));
  }
}

}  // namespace

bool gradients_finite(const std::vector<ag::Var>& params) {
  for (const ag::Var& p : params) {
    if (!p.has_grad()) continue;
    const float* g = p.grad().data();
    for (index_t k = 0; k < p.numel(); ++k) {
      if (!std::isfinite(g[k])) return false;
    }
  }
  return true;
}

Trainer::Trainer(model::CHGNet& net, const TrainConfig& cfg)
    : net_(net),
      cfg_(cfg),
      init_lr_(cfg.scale_lr ? scaled_init_lr(cfg.batch_size, cfg.lr_k,
                                             cfg.base_lr)
                            : cfg.base_lr),
      opt_(net.parameters(), init_lr_),
      shuffle_rng_(cfg.shuffle_seed) {}

EpochStats Trainer::train_epoch(const data::Dataset& ds,
                                const std::vector<index_t>& train_idx,
                                index_t epoch) {
  if (cfg_.fit_atom_ref && !net_.has_atom_ref()) {
    net_.set_atom_ref(fit_atom_ref(ds, train_idx, net_.config().num_species));
  }
  perf::Timer timer;
  perf::TraceSpan span_epoch("train.epoch", "train");
  EpochStats st;
  std::vector<index_t> order = train_idx;
  shuffle_rng_ = Rng(cfg_.shuffle_seed + static_cast<std::uint64_t>(epoch));
  shuffle_rng_.shuffle(order);

  const index_t steps_per_epoch = std::max<index_t>(
      1, (static_cast<index_t>(order.size()) + cfg_.batch_size - 1) /
             cfg_.batch_size);
  CosineAnnealingLR sched(init_lr_, cfg_.epochs * steps_per_epoch,
                          cfg_.min_lr);

  // Mini-batch plan; with prefetch on, batches are collated one step ahead
  // on a background thread (the paper's "Data Prefetch").  With gradient
  // accumulation the optimizer steps once per `accumulation_steps`
  // micro-batches, averaging their gradients (loss scaled by 1/A).
  const index_t accum = std::max<index_t>(1, cfg_.accumulation_steps);
  std::vector<std::vector<index_t>> plan;
  for (std::size_t lo = 0; lo < order.size();
       lo += static_cast<std::size_t>(cfg_.batch_size)) {
    const std::size_t hi =
        std::min(order.size(), lo + static_cast<std::size_t>(cfg_.batch_size));
    plan.emplace_back(order.begin() + lo, order.begin() + hi);
  }
  // The loader collates into the trainer's own step pool (pool-aware
  // handoff): batch blocks freed mid-step recycle straight back to the
  // collation of step N+1, so a steady-state step allocates nothing from
  // the system allocator even with prefetch on.
  std::optional<data::PrefetchLoader> loader;
  if (cfg_.prefetch) loader.emplace(ds, plan, /*depth=*/2, step_pool_);

  const std::vector<ag::Var> params = net_.parameters();
  index_t micro = 0;
  for (std::size_t step = 0; step < plan.size(); ++step) {
    perf::TraceSpan span_step("train.step", "train");
    // Step-scoped arena: forward activations, graph nodes, gradients and
    // loss temporaries all come from step_pool_ and are recycled as the
    // graph tears down, so step N+1 re-serves step N's blocks.
    alloc::ArenaScope arena(step_pool_);
    data::Batch b = [&] {
      perf::TraceSpan span("train.data_prefetch", "train");
      return cfg_.prefetch ? std::move(*loader->next())
                           : data::collate_indices(ds, plan[step]);
    }();

    opt_.set_lr(sched.lr_at(global_step_) * backoff_scale_);
    if (micro == 0) opt_.zero_grad();

    // Recorded-step replay (core/replay.hpp): 1st sighting of this batch
    // topology runs eager, 2nd captures the step tape, 3rd+ replays it.
    // zero_grad and the optimizer stay outside the tape, so the program is
    // exactly "forward + loss + backward-accumulate" and composes with
    // gradient accumulation unchanged.
    std::uint64_t key = 0;
    replay::ProgramCache::Lease lease;
    if (replay::replay_enabled()) {
      warm_grads(params);
      key = data::replay_key(b, kTrainerReplaySeed);
      lease = replay_cache_.acquire(key);
      if (lease.action == replay::ProgramCache::Action::kReplay &&
          !lease.program->bind(data::replay_inputs(b),
                               replay_stable(params))) {
        // A stable pointer moved (e.g. checkpoint restore) or the bind
        // lists diverged: drop the program and run this step eager.
        replay_cache_.invalidate(key);
        lease = replay::ProgramCache::Lease{};
      }
    }

    double loss_total = 0.0, loss_energy = 0.0, loss_force = 0.0,
           loss_stress = 0.0, loss_magmom = 0.0;
    bool finite = true;
    if (lease.action == replay::ProgramCache::Action::kReplay) {
      {
        perf::TraceSpan span("train.replay", "train");
        lease.program->run();
      }
      loss_energy = lease.program->tap_value(0).data()[0];
      loss_force = lease.program->tap_value(1).data()[0];
      loss_stress = lease.program->tap_value(2).data()[0];
      loss_magmom = lease.program->tap_value(3).data()[0];
      loss_total = lease.program->tap_value(4).data()[0];
      // The tape always includes backward; a non-finite loss means the
      // accumulated gradients are garbage, but the guard branch below
      // zeroes them -- the exact state the eager guard converges to.
      finite = !cfg_.guard_nonfinite ||
               (std::isfinite(loss_total) && gradients_finite(params));
    } else {
      const bool capturing =
          lease.action == replay::ProgramCache::Action::kCapture;
      replay::Recorder rec;
      std::optional<replay::RecorderScope> scope;
      if (capturing) {
        for (const Tensor& t : data::replay_inputs(b)) rec.bind_input(t);
        for (const Tensor& t : replay_stable(params)) rec.expect_stable(t);
        scope.emplace(rec);
      }
      model::ModelOutput out;
      LossResult loss;
      {
        perf::TraceSpan span("train.forward", "train");
        out = net_.forward(b, model::ForwardMode::kTrain);
        loss = chgnet_loss(out, b, cfg_.weights, cfg_.huber_delta);
      }
      loss_total = loss.total.item();
      loss_energy = loss.energy;
      loss_force = loss.force;
      loss_stress = loss.stress;
      loss_magmom = loss.magmom;

      // With the guard on, a non-finite loss skips backward entirely (its
      // gradients would be garbage anyway); a finite loss can still produce
      // non-finite gradients, so those are checked after backward.
      finite = !cfg_.guard_nonfinite || std::isfinite(loss_total);
      const bool ran_backward = finite;
      if (finite) {
        perf::TraceSpan span("train.backward", "train");
        ag::backward(accum == 1
                         ? loss.total
                         : ag::ops::mul_scalar(
                               loss.total, 1.0f / static_cast<float>(accum)));
        if (cfg_.guard_nonfinite) finite = gradients_finite(params);
      }
      if (capturing) {
        scope.reset();
        if (ran_backward) {
          // Tap the per-property scalars so a replayed step reports the
          // same stats an eager step reads via .item().
          rec.tap(loss.energy_v.value());
          rec.tap(loss.force_v.value());
          rec.tap(loss.stress_v.value());
          rec.tap(loss.magmom_v.value());
          rec.tap(loss.total.value());
          replay_cache_.store(key, rec.finish());
        } else {
          // Backward was skipped: the tape is structurally incomplete.
          replay_cache_.abort_capture(key);
        }
      }
    }

    if (cfg_.guard_nonfinite && !finite) {
      // Training guard: drop this step (and the current accumulation
      // window) so NaN/Inf never reaches the weights, and back the LR off
      // for the rest of the run.  The scheduler still advances, keeping
      // the LR trajectory aligned with the planned step count.
      opt_.zero_grad();
      micro = 0;
      backoff_scale_ *= cfg_.lr_backoff;
      ++st.skipped_steps;
      ++skipped_steps_;
      ++global_step_;
      continue;
    }

    if (++micro == accum || step + 1 == plan.size()) {
      perf::TraceSpan span("train.optimizer", "train");
      opt_.step();
      micro = 0;
    }

    st.mean_loss += loss_total;
    st.energy_loss += loss_energy;
    st.force_loss += loss_force;
    st.stress_loss += loss_stress;
    st.magmom_loss += loss_magmom;
    ++st.iterations;
    ++global_step_;
  }
  const double n = std::max<double>(1.0, static_cast<double>(st.iterations));
  st.mean_loss /= n;
  st.energy_loss /= n;
  st.force_loss /= n;
  st.stress_loss /= n;
  st.magmom_loss /= n;
  st.seconds = timer.seconds();
  next_epoch_ = epoch + 1;
  return st;
}

std::vector<EpochStats> Trainer::fit(const data::Dataset& ds,
                                     const std::vector<index_t>& train_idx) {
  std::vector<EpochStats> history;
  for (index_t e = next_epoch_; e < cfg_.epochs; ++e) {
    history.push_back(train_epoch(ds, train_idx, e));
    if (on_epoch) on_epoch(e, history.back());
  }
  return history;
}

std::vector<EpochStats> Trainer::fit(const data::Dataset& ds,
                                     const std::vector<index_t>& train_idx,
                                     const std::vector<index_t>& val_idx,
                                     index_t patience) {
  FASTCHG_CHECK(!val_idx.empty(), "fit: empty validation split");
  std::vector<EpochStats> history;
  double best_score = std::numeric_limits<double>::max();
  index_t since_best = 0;
  std::vector<Tensor> best_weights;
  auto params = net_.parameters();
  for (index_t e = next_epoch_; e < cfg_.epochs; ++e) {
    EpochStats st = train_epoch(ds, train_idx, e);
    EvalMetrics m = evaluate(ds, val_idx);
    st.val_score = cfg_.weights.energy * m.energy_mae_mev_atom +
                   cfg_.weights.force * m.force_mae_mev_a +
                   cfg_.weights.stress * m.stress_mae_gpa +
                   cfg_.weights.magmom * m.magmom_mae_mmub;
    history.push_back(st);
    if (on_epoch) on_epoch(e, history.back());
    // A NaN val_score must count as "no improvement": NaN comparisons are
    // all false, so make the branch explicit rather than relying on the
    // ordering of the two arms.
    const bool improved =
        std::isfinite(st.val_score) && st.val_score < best_score;
    if (improved) {
      best_score = st.val_score;
      since_best = 0;
      best_weights.clear();
      for (const auto& p : params) best_weights.push_back(p.value().clone());
    } else if (++since_best > patience) {
      break;  // early stop
    }
  }
  // Restore the best-validation weights.
  if (!best_weights.empty()) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      Tensor& dst = params[i].node()->value;
      std::copy(best_weights[i].data(),
                best_weights[i].data() + best_weights[i].numel(),
                dst.data());
    }
  }
  return history;
}

EvalMetrics Trainer::evaluate(const data::Dataset& ds,
                              const std::vector<index_t>& idx) const {
  return evaluate_model(net_, ds, idx, cfg_.batch_size);
}

void Trainer::save_checkpoint(const std::string& path) const {
  nn::PayloadWriter w;
  w.put_u64(static_cast<std::uint64_t>(global_step_));
  w.put_u64(static_cast<std::uint64_t>(next_epoch_));
  w.put_f32(backoff_scale_);
  w.put_u64(static_cast<std::uint64_t>(skipped_steps_));
  std::vector<nn::Section> sections;
  sections.push_back({kSectionTrainer, w.take()});
  sections.push_back(adam_section(opt_));
  sections.push_back(atom_ref_section(net_));
  sections.push_back(rng_section(kSectionRng, shuffle_rng_));
  nn::save_parameters(net_, path, sections);
}

void Trainer::resume(const std::string& path) {
  const std::vector<nn::Section> sections = nn::load_checkpoint(net_, path);
  {
    nn::PayloadReader r(require_section(sections, kSectionTrainer).payload);
    global_step_ = static_cast<index_t>(r.get_u64());
    next_epoch_ = static_cast<index_t>(r.get_u64());
    backoff_scale_ = r.get_f32();
    skipped_steps_ = static_cast<index_t>(r.get_u64());
    FASTCHG_CHECK(r.done(), "checkpoint: trainer section has trailing bytes");
  }
  restore_adam(opt_, require_section(sections, kSectionAdam));
  restore_atom_ref(net_, require_section(sections, kSectionAtomRef));
  if (const nn::Section* s = find_section(sections, kSectionRng)) {
    restore_rng(shuffle_rng_, *s);
  }
}

}  // namespace fastchg::train
