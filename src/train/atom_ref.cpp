#include "train/atom_ref.hpp"

#include <cmath>

#include "core/error.hpp"

namespace fastchg::train {

std::vector<double> solve_dense(std::vector<double> a, std::vector<double> b,
                                std::size_t n) {
  FASTCHG_CHECK(a.size() == n * n && b.size() == n, "solve_dense: sizes");
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r * n + col]) > std::fabs(a[pivot * n + col])) {
        pivot = r;
      }
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a[col * n + c], a[pivot * n + c]);
      std::swap(b[col], b[pivot]);
    }
    FASTCHG_CHECK(std::fabs(a[col * n + col]) > 1e-30,
                  "solve_dense: singular matrix at column " << col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t r = n; r-- > 0;) {
    double acc = b[r];
    for (std::size_t c = r + 1; c < n; ++c) acc -= a[r * n + c] * x[c];
    x[r] = acc / a[r * n + r];
  }
  return x;
}

std::vector<float> fit_atom_ref(const data::Dataset& ds,
                                const std::vector<index_t>& rows,
                                index_t num_species, double ridge) {
  const auto ns = static_cast<std::size_t>(num_species + 1);
  std::vector<double> xtx(ns * ns, 0.0);
  std::vector<double> xty(ns, 0.0);
  std::vector<double> frac(ns, 0.0);
  for (index_t row : rows) {
    const data::Crystal& c = ds[row].crystal;
    std::fill(frac.begin(), frac.end(), 0.0);
    const double inv_n = 1.0 / static_cast<double>(c.natoms());
    for (index_t z : c.species) {
      FASTCHG_CHECK(z >= 1 && z <= num_species,
                    "fit_atom_ref: species " << z << " out of range");
      frac[static_cast<std::size_t>(z)] += inv_n;
    }
    const double target = c.energy * inv_n;
    for (std::size_t i = 0; i < ns; ++i) {
      if (frac[i] == 0.0) continue;
      xty[i] += frac[i] * target;
      for (std::size_t j = 0; j < ns; ++j) {
        if (frac[j] != 0.0) xtx[i * ns + j] += frac[i] * frac[j];
      }
    }
  }
  for (std::size_t i = 0; i < ns; ++i) xtx[i * ns + i] += ridge;
  const std::vector<double> e0 = solve_dense(std::move(xtx), std::move(xty), ns);
  std::vector<float> out(ns, 0.0f);
  for (std::size_t i = 0; i < ns; ++i) out[i] = static_cast<float>(e0[i]);
  return out;
}

}  // namespace fastchg::train
