// CHGNet training loss: Huber loss over energy / force / stress / magmom
// with per-property prefactors (paper: 2 / 1.5 / 0.1 / 0.1, delta = 0.1).
#pragma once

#include "chgnet/model.hpp"
#include "data/batch.hpp"

namespace fastchg::train {

using ag::Var;

struct LossWeights {
  float energy = 2.0f;
  float force = 1.5f;
  float stress = 0.1f;
  float magmom = 0.1f;
};

/// Elementwise Huber loss, mean-reduced:
///   0.5 d^2            for |d| <= delta
///   delta(|d| - delta/2) otherwise
Var huber(const Var& pred, const Var& target, float delta);

struct LossResult {
  Var total;        ///< weighted sum (scalar, graph-bearing)
  double energy;    ///< unweighted per-property values (detached)
  double force;
  double stress;
  double magmom;
  /// Unweighted component scalars as Vars.  The trainer taps their value
  /// tensors for recorded-step replay, so a replayed step can report the
  /// same per-property stats an eager step computes via .item().
  Var energy_v;
  Var force_v;
  Var stress_v;
  Var magmom_v;
};

LossResult chgnet_loss(const model::ModelOutput& out, const data::Batch& b,
                       const LossWeights& w = {}, float delta = 0.1f);

}  // namespace fastchg::train
