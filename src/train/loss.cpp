#include "train/loss.hpp"

#include "autograd/ops.hpp"
#include "core/replay.hpp"

namespace fastchg::train {

using namespace ag::ops;

namespace {
void huber_mask_loop(index_t n, float delta, const float* p, float* m) {
  for (index_t i = 0; i < n; ++i) {
    m[i] = p[i] <= delta ? 1.0f : 0.0f;
  }
}
}  // namespace

Var huber(const Var& pred, const Var& target, float delta) {
  Var d = sub(pred, target);
  Var ad = abs_op(d);
  // Branch mask as a constant (standard subgradient treatment).  The mask
  // depends on |d| values, so it is recorded for replay (counted=false:
  // the eager path records no kernel launch for it).
  Tensor mask_t = Tensor::empty(ad.shape());
  const index_t n = ad.numel();
  huber_mask_loop(n, delta, ad.value().data(), mask_t.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sa = rec->note_input(ad.value());
    const int sm = rec->note_output(mask_t);
    rec->push("huber_mask", /*counted=*/false, {sa}, sm,
              [n, delta, sa, sm](float* const* S) {
                huber_mask_loop(n, delta, S[sa], S[sm]);
              });
  }
  Var mask = constant(std::move(mask_t));
  Var quad = mul_scalar(square(d), 0.5f);
  Var lin = mul_scalar(add_scalar(ad, -0.5f * delta), delta);
  Var loss = add(mul(mask, quad), mul(sub(ones_like(mask), mask), lin));
  return mean_all(loss);
}

LossResult chgnet_loss(const model::ModelOutput& out, const data::Batch& b,
                       const LossWeights& w, float delta) {
  Var le = huber(out.energy_per_atom, constant(b.energy_per_atom), delta);
  Var lf = huber(out.forces, constant(b.forces), delta);
  Var ls = huber(out.stress, constant(b.stress), delta);
  Var lm = huber(out.magmom, constant(b.magmom), delta);
  LossResult r;
  r.energy = le.item();
  r.force = lf.item();
  r.stress = ls.item();
  r.magmom = lm.item();
  r.total = add(add(mul_scalar(le, w.energy), mul_scalar(lf, w.force)),
                add(mul_scalar(ls, w.stress), mul_scalar(lm, w.magmom)));
  r.energy_v = le;
  r.force_v = lf;
  r.stress_v = ls;
  r.magmom_v = lm;
  return r;
}

}  // namespace fastchg::train
