#include "train/loss.hpp"

#include "autograd/ops.hpp"

namespace fastchg::train {

using namespace ag::ops;

Var huber(const Var& pred, const Var& target, float delta) {
  Var d = sub(pred, target);
  Var ad = abs_op(d);
  // Branch mask as a constant (standard subgradient treatment).
  Tensor mask_t = Tensor::empty(ad.shape());
  {
    const float* p = ad.value().data();
    float* m = mask_t.data();
    for (index_t i = 0; i < ad.numel(); ++i) {
      m[i] = p[i] <= delta ? 1.0f : 0.0f;
    }
  }
  Var mask = constant(std::move(mask_t));
  Var quad = mul_scalar(square(d), 0.5f);
  Var lin = mul_scalar(add_scalar(ad, -0.5f * delta), delta);
  Var loss = add(mul(mask, quad), mul(sub(ones_like(mask), mask), lin));
  return mean_all(loss);
}

LossResult chgnet_loss(const model::ModelOutput& out, const data::Batch& b,
                       const LossWeights& w, float delta) {
  Var le = huber(out.energy_per_atom, constant(b.energy_per_atom), delta);
  Var lf = huber(out.forces, constant(b.forces), delta);
  Var ls = huber(out.stress, constant(b.stress), delta);
  Var lm = huber(out.magmom, constant(b.magmom), delta);
  LossResult r;
  r.energy = le.item();
  r.force = lf.item();
  r.stress = ls.item();
  r.magmom = lm.item();
  r.total = add(add(mul_scalar(le, w.energy), mul_scalar(lf, w.force)),
                add(mul_scalar(ls, w.stress), mul_scalar(lm, w.magmom)));
  return r;
}

}  // namespace fastchg::train
