#include "basis/envelope.hpp"

#include <cmath>

#include "autograd/ops.hpp"

namespace fastchg::basis {

using namespace ag::ops;

namespace {
struct Coeffs {
  float c1, c2, c3;
};
Coeffs coeffs(int p) {
  const float pf = static_cast<float>(p);
  return {(pf + 1) * (pf + 2) / 2, pf * (pf + 2), pf * (pf + 1) / 2};
}
}  // namespace

Var envelope_naive(const Var& xi, int p) {
  const Coeffs c = coeffs(p);
  // Three independent pow evaluations -- the redundancy Eq. 13 removes.
  Var t1 = mul_scalar(pow_scalar(xi, static_cast<float>(p)), c.c1);
  Var t2 = mul_scalar(pow_scalar(xi, static_cast<float>(p + 1)), c.c2);
  Var t3 = mul_scalar(pow_scalar(xi, static_cast<float>(p + 2)), c.c3);
  return add_scalar(add(sub(t2, t1), neg(t3)), 1.0f);
}

Var envelope_factored(const Var& xi, int p) {
  const Coeffs c = coeffs(p);
  // u = 1 - xi^p * (c1 - xi*(c2 - c3*xi))   (single pow + Horner)
  Var xp = pow_scalar(xi, static_cast<float>(p));
  Var inner = add_scalar(neg(mul(xi, add_scalar(mul_scalar(xi, -c.c3), c.c2))),
                         c.c1);
  return add_scalar(neg(mul(xp, inner)), 1.0f);
}

Var envelope_deriv_ops(const Var& xi, int p) {
  const Coeffs c = coeffs(p);
  const float pf = static_cast<float>(p);
  // du/dxi = -c1 p xi^(p-1) + c2 (p+1) xi^p - c3 (p+2) xi^(p+1)
  //        = xi^(p-1) * (-c1 p + xi*(c2 (p+1) - c3 (p+2) xi))
  Var xpm1 = pow_scalar(xi, pf - 1.0f);
  Var inner = add_scalar(
      mul(xi, add_scalar(mul_scalar(xi, -c.c3 * (pf + 2)), c.c2 * (pf + 1))),
      -c.c1 * pf);
  return mul(xpm1, inner);
}

double envelope_value(double xi, int p) {
  const double pf = p;
  const double c1 = (pf + 1) * (pf + 2) / 2, c2 = pf * (pf + 2),
               c3 = pf * (pf + 1) / 2;
  const double xp = std::pow(xi, pf);
  return 1.0 - xp * (c1 - xi * (c2 - c3 * xi));
}

double envelope_deriv(double xi, int p) {
  const double pf = p;
  const double c1 = (pf + 1) * (pf + 2) / 2, c2 = pf * (pf + 2),
               c3 = pf * (pf + 1) / 2;
  const double xpm1 = std::pow(xi, pf - 1);
  return xpm1 * (-c1 * pf + xi * (c2 * (pf + 1) - c3 * (pf + 2) * xi));
}

}  // namespace fastchg::basis
