#include "basis/rbf.hpp"

#include <cmath>

#include "autograd/ops.hpp"
#include "core/replay.hpp"
#include "ops/basis.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::basis {

using namespace ag::ops;
using ag::make_op_node;

namespace {
/// Fused sRBF forward loop, shared by the eager kernel and its replay
/// closure (bit-identical results by construction).
void srbf_loop(index_t e, index_t nb, float rc, float c, int p,
               const float* pr, const float* pf, float* po) {
  // Dispatched: scalar tier is this function's old body verbatim; the AVX2
  // tier evaluates sin() with the Cephes polynomial (tolerance-gated class).
  // envelope_value lives in fastchg_model (above fastchg_core in the layer
  // stack), so it crosses into ops::basis as a plain function pointer.
  ::fastchg::ops::basis::srbf(e, nb, rc, c, p, &envelope_value, pr, pf, po);
}
}  // namespace

RadialBasis::RadialBasis(index_t num_basis, double cutoff, int p, bool fused,
                         bool factored_envelope)
    : nb_(num_basis),
      cutoff_(cutoff),
      p_(p),
      fused_(fused),
      factored_(factored_envelope) {
  Tensor freq = Tensor::empty({num_basis});
  for (index_t n = 0; n < num_basis; ++n) {
    freq.data()[n] = static_cast<float>(M_PI) * static_cast<float>(n + 1);
  }
  freq_ = add_parameter("freq", std::move(freq));
}

Var RadialBasis::forward(const Var& r) const {
  FASTCHG_CHECK(r.value().dim() == 2 && r.size(1) == 1,
                "RadialBasis: r must be [E,1], got " << shape_str(r.shape()));
  perf::TraceSpan span("basis.rbf", "basis");
  return fused_ ? forward_fused(r) : forward_reference(r);
}

Var RadialBasis::forward_reference(const Var& r) const {
  const float inv_rc = 1.0f / static_cast<float>(cutoff_);
  const float c = std::sqrt(2.0f / static_cast<float>(cutoff_));
  const index_t e = r.size(0);
  Var x = mul_scalar(r, inv_rc);                      // [E,1]
  Var u = factored_ ? envelope_factored(x, p_) : envelope_naive(x, p_);
  Var xb = broadcast_to(x, {e, nb_});                 // [E,B]
  Var arg = mul(xb, freq_);                           // row broadcast
  Var s = sin_op(arg);                                // [E,B]
  Var out = mul_scalar(mul(div(s, r), u), c);         // col broadcasts
  return out;
}

Var RadialBasis::forward_fused(const Var& r) const {
  perf::count_kernel("fused_srbf");
  const index_t e = r.size(0);
  const float rc = static_cast<float>(cutoff_);
  const float c = std::sqrt(2.0f / rc);
  Tensor out = Tensor::empty({e, nb_});
  srbf_loop(e, nb_, rc, c, p_, r.value().data(), freq_.value().data(),
            out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sr = rec->note_input(r.value());
    const int sf = rec->note_input(freq_.value());  // baked parameter slot
    const int so = rec->note_output(out);
    const index_t nbv = nb_;
    const int pv = p_;
    rec->push("fused_srbf", /*counted=*/true, {sr, sf}, so,
              [e, nbv, rc, c, pv, sr, sf, so](float* const* S) {
                srbf_loop(e, nbv, rc, c, pv, S[sr], S[sf], S[so]);
              });
  }
  const index_t nb = nb_;
  const int p = p_;
  Var rr = r;
  Var freq = freq_;
  const double cutoff = cutoff_;
  return make_op_node(
      "fused_srbf", std::move(out), {r, freq_},
      [rr, freq, nb, p, cutoff](const Var& g) -> std::vector<Var> {
        const float rc = static_cast<float>(cutoff);
        const float c = std::sqrt(2.0f / rc);
        const index_t e = rr.size(0);
        Var x = mul_scalar(rr, 1.0f / rc);                 // [E,1]
        Var u = envelope_factored(x, p);                   // [E,1]
        Var du = mul_scalar(envelope_deriv_ops(x, p), 1.0f / rc);  // du/dr
        Var xb = broadcast_to(x, {e, nb});
        Var arg = mul(xb, freq);                           // [E,B]
        Var sarg = sin_op(arg);
        Var carg = cos_op(arg);
        Var inv_r = reciprocal(rr);                        // [E,1]
        // d out / d r = c * [ freq/rc * cos(arg) * u/r
        //                     + sin(arg) * (du/dr / r - u / r^2) ]
        Var term1 = mul(mul(carg, freq),
                        mul_scalar(mul(u, inv_r), 1.0f / rc));
        Var term2 = mul(sarg, mul(sub(du, mul(u, inv_r)), inv_r));
        Var dr = mul_scalar(add(term1, term2), c);         // [E,B]
        Var g_r = sum_dim(mul(g, dr), 1, /*keepdim=*/true);  // [E,1]
        // d out / d freq_n = c * x * cos(arg) * u / r
        Var dfreq = mul(mul(carg, broadcast_to(mul_scalar(mul(x, inv_r), c),
                                               {e, nb})),
                        broadcast_to(u, {e, nb}));
        Var g_freq = reshape(sum_dim(mul(g, dfreq), 0, true), freq.shape());
        return {g_r, g_freq};
      });
}

}  // namespace fastchg::basis
