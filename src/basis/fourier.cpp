#include "basis/fourier.hpp"

#include <cmath>

#include "autograd/ops.hpp"
#include "core/replay.hpp"
#include "ops/basis.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::basis {

using namespace ag::ops;
using ag::make_op_node;

namespace {
const float kInvSqrtPi = 1.0f / std::sqrt(static_cast<float>(M_PI));
const float kConstTerm = 1.0f / std::sqrt(2.0f * static_cast<float>(M_PI));

/// Fused Fourier forward loop, shared by the eager kernel and its replay
/// closure.
void fourier_loop(index_t g, index_t order, const float* pt, float* po) {
  // Dispatched: scalar tier is this function's old body verbatim; the AVX2
  // tier evaluates sin/cos with the Cephes polynomial (tolerance-gated).
  ::fastchg::ops::basis::fourier(g, order, kConstTerm, kInvSqrtPi, pt, po);
}
}  // namespace

AngularBasis::AngularBasis(index_t num_basis, bool fused) : fused_(fused) {
  FASTCHG_CHECK(num_basis >= 3 && num_basis % 2 == 1,
                "AngularBasis: num_basis must be odd >= 3, got " << num_basis);
  order_ = (num_basis - 1) / 2;
}

Var AngularBasis::forward(const Var& theta) const {
  FASTCHG_CHECK(theta.value().dim() == 2 && theta.size(1) == 1,
                "AngularBasis: theta must be [G,1], got "
                    << shape_str(theta.shape()));
  perf::TraceSpan span("basis.fourier", "basis");
  return fused_ ? forward_fused(theta) : forward_reference(theta);
}

Var AngularBasis::forward_reference(const Var& theta) const {
  const index_t g = theta.size(0);
  std::vector<Var> parts;
  parts.reserve(static_cast<std::size_t>(2 * order_ + 1));
  parts.push_back(
      ag::ops::constant(Tensor::full({g, 1}, kConstTerm)));
  // One scalar-mul + cos kernel and one + sin kernel per order: the long
  // chain of tiny launches the fused version collapses.
  for (index_t n = 1; n <= order_; ++n) {
    Var nt = mul_scalar(theta, static_cast<float>(n));
    parts.push_back(mul_scalar(cos_op(nt), kInvSqrtPi));
  }
  for (index_t n = 1; n <= order_; ++n) {
    Var nt = mul_scalar(theta, static_cast<float>(n));
    parts.push_back(mul_scalar(sin_op(nt), kInvSqrtPi));
  }
  return cat(parts, 1);
}

Var AngularBasis::forward_fused(const Var& theta) const {
  perf::count_kernel("fused_fourier");
  const index_t g = theta.size(0);
  const index_t nb = 2 * order_ + 1;
  Tensor out = Tensor::empty({g, nb});
  fourier_loop(g, order_, theta.value().data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int st = rec->note_input(theta.value());
    const int so = rec->note_output(out);
    const index_t ov = order_;
    rec->push("fused_fourier", /*counted=*/true, {st}, so,
              [g, ov, st, so](float* const* S) {
                fourier_loop(g, ov, S[st], S[so]);
              });
  }
  const index_t order = order_;
  Var th = theta;
  return make_op_node(
      "fused_fourier", std::move(out), {theta},
      [th, order, g](const Var& grad) -> std::vector<Var> {
        // d cos(n t)/dt = -n sin(n t);  d sin(n t)/dt = n cos(n t)
        Tensor nvec = Tensor::empty({order});
        for (index_t n = 0; n < order; ++n) {
          nvec.data()[n] = static_cast<float>(n + 1);
        }
        Var nrow = ag::ops::constant(std::move(nvec));     // [order]
        Var tb = broadcast_to(th, {g, order});             // [G,order]
        Var narg = mul(tb, nrow);
        Var dcos = mul_scalar(mul(sin_op(narg), nrow), -kInvSqrtPi);
        Var dsin = mul_scalar(mul(cos_op(narg), nrow), kInvSqrtPi);
        Var gcos = narrow(grad, 1, 1, order);
        Var gsin = narrow(grad, 1, 1 + order, order);
        Var gt = sum_dim(add(mul(gcos, dcos), mul(gsin, dsin)), 1,
                         /*keepdim=*/true);
        return {gt};
      });
}

}  // namespace fastchg::basis
