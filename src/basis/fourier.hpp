// Fourier expansion of bond angles (CHGNet):
//
//   FT(theta) = [ 1/sqrt(2), cos(n theta), sin(n theta) ]_{n=1..order} / sqrt(pi)
//
// num_basis = 2*order + 1 (31 with order 15, the paper's setting).
//
// Reference path: one cos + one sin kernel per order plus a concat -- the
// "numerous elementwise operations" the paper fuses.  Fused path: a single
// forward kernel with an op-composed (double-differentiable) backward.
#pragma once

#include "nn/module.hpp"

namespace fastchg::basis {

using ag::Var;

class AngularBasis : public nn::Module {
 public:
  /// num_basis must be odd (1 constant + order cos + order sin).
  AngularBasis(index_t num_basis, bool fused);

  /// theta: [G,1] angles (radians) -> [G, num_basis].
  Var forward(const Var& theta) const;

  index_t num_basis() const { return 2 * order_ + 1; }
  index_t order() const { return order_; }

 private:
  Var forward_reference(const Var& theta) const;
  Var forward_fused(const Var& theta) const;

  index_t order_;
  bool fused_;
};

}  // namespace fastchg::basis
