// Polynomial envelope u(xi), xi = r / r_cut (DimeNet / CHGNet smoothing).
//
//   u(xi) = 1 - c1 xi^p + c2 xi^(p+1) - c3 xi^(p+2)
//   c1 = (p+1)(p+2)/2, c2 = p(p+2), c3 = p(p+1)/2
//
// which satisfies u(1) = u'(1) = 0 (smooth vanishing at the cutoff).
//
// NOTE on the paper: Eq. 12/13 print the last coefficient as p(p+2)/2 and
// flip two signs; with those values u(1) != 0, so we take them as typos of
// the standard DimeNet envelope above (CHGNet's actual implementation).
// The *optimization* the paper describes -- factoring out the common xi^p so
// only one transcendental pow is evaluated ("redundancy bypass") -- is
// preserved exactly: envelope_naive evaluates three pows, envelope_factored
// evaluates one and uses a Horner form.  Both are bit-compatible in exact
// arithmetic (see tests).
#pragma once

#include "autograd/variable.hpp"

namespace fastchg::basis {

using ag::Var;

/// Three-pow evaluation (reference CHGNet form, Eq. 12).
Var envelope_naive(const Var& xi, int p);

/// One-pow Horner evaluation (redundancy-bypass form, Eq. 13).
Var envelope_factored(const Var& xi, int p);

/// du/dxi as an op composition (used by fused-kernel backwards).
Var envelope_deriv_ops(const Var& xi, int p);

/// Scalar helpers for fused kernels and the oracle-free unit tests.
double envelope_value(double xi, int p);
double envelope_deriv(double xi, int p);

}  // namespace fastchg::basis
