// Trainable smooth Radial Bessel basis (sRBF):
//
//   sRBF_n(r) = sqrt(2/rc) * sin(freq_n * r/rc) / r * u(r/rc)
//
// freq_n are trainable, initialized to n*pi (DimeNet).  Two execution paths:
//  * reference: ~12 primitive kernels (broadcasts, sin, pows of the naive
//    envelope) -- the unfused reference-CHGNet structure;
//  * fused: one forward kernel using the factored envelope; the backward is
//    op-composed, keeping d(basis)/dr differentiable a second time (the
//    force-training path).
#pragma once

#include "basis/envelope.hpp"
#include "core/rng.hpp"
#include "nn/module.hpp"

namespace fastchg::basis {

class RadialBasis : public nn::Module {
 public:
  RadialBasis(index_t num_basis, double cutoff, int p, bool fused,
              bool factored_envelope);

  /// r: [E,1] distances -> [E, num_basis] features.
  Var forward(const Var& r) const;

  index_t num_basis() const { return nb_; }
  double cutoff() const { return cutoff_; }
  const Var& frequencies() const { return freq_; }

 private:
  Var forward_reference(const Var& r) const;
  Var forward_fused(const Var& r) const;

  index_t nb_;
  double cutoff_;
  int p_;
  bool fused_;
  bool factored_;
  Var freq_;  ///< [num_basis]
};

}  // namespace fastchg::basis
