// The serving layer's reply type, shared by the engine, the micro-batcher
// and the structure cache.  Lives in its own dependency-light header so the
// batching and caching layers can be used (and tested) without linking the
// full admission-control engine.
#pragma once

#include <vector>

#include "data/crystal.hpp"

namespace fastchg::serve {

/// One successful reply.
struct Prediction {
  double energy = 0.0;             ///< total eV
  std::vector<data::Vec3> forces;  ///< eV/A, [N]
  data::Mat3 stress{};             ///< eV/A^3
  std::vector<double> magmom;      ///< mu_B, [N]
  bool degraded = false;  ///< served by the fp32 fallback, not the int8 path
  bool cached = false;    ///< replayed from the structure cache, no forward
  int retries = 0;        ///< transient-fault retries spent
  double latency_ms = 0.0;  ///< measured + simulated (backoff, stragglers)
  // Filled by the sharded router (serve/router.hpp); inert for a
  // single-engine deployment.
  int shard = -1;          ///< engine shard that produced the reply
  bool rerouted = false;   ///< served off its affinity shard (failover)
};

}  // namespace fastchg::serve
