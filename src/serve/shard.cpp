#include "serve/shard.hpp"

#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::serve {

EngineShard::EngineShard(int id, const model::CHGNet& net, ShardConfig cfg)
    : id_(id),
      net_(net),
      cfg_(cfg),
      pool_(std::make_shared<alloc::PoolAllocator>()) {
  cfg_.engine.arena = pool_;
  engine_ = std::make_unique<InferenceEngine>(net_, cfg_.engine);
}

Result<std::size_t> EngineShard::submit(data::Crystal c, double deadline_ms) {
  alloc::ArenaScope arena(pool_);
  return engine_->submit(std::move(c), deadline_ms);
}

std::vector<Result<Prediction>> EngineShard::drain() {
  perf::TraceSpan span("serve.shard.drain", "serve");
  alloc::ArenaScope arena(pool_);
  return engine_->drain();
}

std::vector<QueuedRequest> EngineShard::trip() {
  if (health_ == ShardHealth::kDraining || health_ == ShardHealth::kDead) {
    return {};
  }
  ++trips_;
  perf::count_event("serve.shard.trip");
  health_ = ShardHealth::kDraining;
  auto_trip_pending_ = false;  // the trip consumes any pending escalation
  burst_streak_ = 0;
  return engine_->take_queue();
}

void EngineShard::restart_engine() {
  // Reconciliation before the incarnation dies: counters migrate to the
  // retired accumulators, so lifetime_stats()/lifetime_cache_stats() never
  // lose (or double-count) a request across the restart.
  retired_stats_.merge(engine_->stats());
  retired_cache_.merge(engine_->cache().snapshot_and_reset());
  engine_.reset();  // frees the old cache/replica back into the shard pool
  engine_ = std::make_unique<InferenceEngine>(net_, cfg_.engine);
  ++restarts_;
  perf::count_event("serve.shard.restart");
}

bool EngineShard::tick() {
  bool restarted = false;
  switch (health_) {
    case ShardHealth::kDraining:
      health_ = ShardHealth::kDead;
      dead_ticks_left_ = cfg_.restart_ticks;
      break;
    case ShardHealth::kDead:
      if (--dead_ticks_left_ <= 0) {
        restart_engine();
        restarted = true;
        health_ = ShardHealth::kDegraded;  // cold-cache rejoin
        degraded_ticks_left_ = cfg_.rejoin_ticks;
        last_numeric_faults_ = 0;
      }
      break;
    case ShardHealth::kDegraded:
      if (--degraded_ticks_left_ <= 0) health_ = ShardHealth::kHealthy;
      break;
    case ShardHealth::kHealthy:
      break;
  }

  // Watchdog over the live engine's own counters: a burst of numeric
  // faults within one tick flags the shard degraded (it keeps serving --
  // degraded is routable -- but operators and the router stats see it).
  // A burst sustained for trip_burst_ticks consecutive ticks escalates:
  // the shard latches auto_trip_pending() and the router trips it into
  // the ordinary kDraining -> kDead -> restart failover on this same
  // tick, instead of letting it fault every request it is handed.
  if (cfg_.degrade_fault_threshold > 0 &&
      (health_ == ShardHealth::kHealthy ||
       health_ == ShardHealth::kDegraded)) {
    const std::uint64_t now = engine_->stats().numeric_faults;
    if (now - last_numeric_faults_ >= cfg_.degrade_fault_threshold) {
      if (health_ == ShardHealth::kHealthy) {
        health_ = ShardHealth::kDegraded;
        degraded_ticks_left_ = cfg_.rejoin_ticks;
        perf::count_event("serve.shard.degraded");
      }
      ++burst_streak_;
      if (cfg_.trip_burst_ticks > 0 &&
          burst_streak_ >= cfg_.trip_burst_ticks && !auto_trip_pending_) {
        auto_trip_pending_ = true;
        ++auto_trips_;
        perf::count_event("serve.shard.auto_trip");
      }
    } else {
      burst_streak_ = 0;
    }
    last_numeric_faults_ = now;
  }

  // Watermark trim: long-lived shards return slabs beyond the tick's live
  // high water + slack, so a traffic burst doesn't pin memory forever.
  if (cfg_.pool_trim_slack != static_cast<std::size_t>(-1)) {
    pool_->trim_watermark(cfg_.pool_trim_slack);
  }
  return restarted;
}

EngineStats EngineShard::lifetime_stats() const {
  EngineStats s = retired_stats_;
  s.merge(engine_->stats());
  return s;
}

CacheStats EngineShard::lifetime_cache_stats() const {
  CacheStats s = retired_cache_;
  s.merge(engine_->cache().stats());
  return s;
}

}  // namespace fastchg::serve
