// Fuzzed request generator for robustness tests and benches: valid random
// crystals interleaved with the corruption classes the validation layer must
// reject (and the watchdogs must survive if one slips through a disabled
// check).  Deterministic given the Rng state.
#pragma once

#include "core/rng.hpp"
#include "data/generator.hpp"

namespace fastchg::serve {

/// The ways a request can be broken.  kNone yields a valid crystal.
enum class Corruption {
  kNone,
  kEmpty,            ///< zero atoms
  kBadSpecies,       ///< Z = 0 or Z > 118
  kSingularLattice,  ///< zero or duplicated lattice row
  kSkewedLattice,    ///< near-singular (ill-conditioned) cell
  kNanPosition,      ///< non-finite fractional coordinate
  kNanLattice,       ///< non-finite lattice entry
  kOverlap,          ///< two atoms on (almost) the same site
  kDenseCell,        ///< cell shrunk until the neighbor cap trips
};

/// A random crystal corrupted with probability `corrupt_prob` (the
/// corruption class is drawn uniformly from the list above, excluding
/// kNone).  Returns the applied corruption so callers can assert on the
/// expected outcome.
Corruption fuzz_crystal(Rng& rng, data::Crystal& out,
                        double corrupt_prob = 0.5,
                        const data::GeneratorConfig& gen = {});

const char* to_string(Corruption c);

}  // namespace fastchg::serve
