// Typed-error API for the inference / MD serving layer.
//
// The training path (src/train, src/parallel) uses exceptions for invariant
// violations -- a crashed trainer is restarted from a checkpoint.  A serving
// process cannot afford that: one malformed request or one poisoned model
// output must never take down the process or, worse, silently corrupt a
// trajectory.  Every serving entry point therefore returns Result<T>: either
// a value or a ServeError carrying a machine-dispatchable code plus a
// human-readable diagnostic.
//
// This header is intentionally header-only and dependency-light so the MD
// and data layers can return typed errors without linking the serve engine.
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "core/error.hpp"

namespace fastchg::serve {

/// Error taxonomy (docs/serving.md).  Codes are stable API: dispatch on the
/// code, log the message.
enum class ErrorCode {
  kInvalidInput,   ///< request rejected by validation (never reached the model)
  kNumericFault,   ///< non-finite / missing model output; watchdog abort
  kTimeout,        ///< per-request deadline exceeded
  kOverloaded,     ///< admission queue full or device unavailable after retries
  kDegraded,       ///< only a degraded-path result exists and strict mode is on
};

inline const char* to_string(ErrorCode c) {
  switch (c) {
    case ErrorCode::kInvalidInput: return "invalid_input";
    case ErrorCode::kNumericFault: return "numeric_fault";
    case ErrorCode::kTimeout:      return "timeout";
    case ErrorCode::kOverloaded:   return "overloaded";
    case ErrorCode::kDegraded:     return "degraded";
  }
  return "unknown";
}

struct ServeError {
  ErrorCode code = ErrorCode::kInvalidInput;
  std::string message;
};

/// Minimal expected<T, ServeError>.  Construction from T is success,
/// construction from ServeError is failure; value() on a failure (or error()
/// on a success) throws fastchg::Error -- callers are expected to branch on
/// ok() first, the throw only turns a misuse into a loud bug.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}                // NOLINT
  Result(ServeError error) : error_(std::move(error)) {}       // NOLINT
  static Result failure(ErrorCode code, std::string message) {
    return Result(ServeError{code, std::move(message)});
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    FASTCHG_CHECK(ok(), "Result::value() on error: " << error_->message);
    return *value_;
  }
  T& value() & {
    FASTCHG_CHECK(ok(), "Result::value() on error: " << error_->message);
    return *value_;
  }
  T&& value() && {
    FASTCHG_CHECK(ok(), "Result::value() on error: " << error_->message);
    return std::move(*value_);
  }

  const ServeError& error() const {
    FASTCHG_CHECK(!ok(), "Result::error() on success");
    return *error_;
  }
  ErrorCode code() const { return error().code; }

 private:
  std::optional<T> value_;
  std::optional<ServeError> error_;
};

/// Result<void>: default construction is success.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(ServeError error) : error_(std::move(error)) {}       // NOLINT
  static Result failure(ErrorCode code, std::string message) {
    return Result(ServeError{code, std::move(message)});
  }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const ServeError& error() const {
    FASTCHG_CHECK(!ok(), "Result::error() on success");
    return *error_;
  }
  ErrorCode code() const { return error().code; }

 private:
  std::optional<ServeError> error_;
};

}  // namespace fastchg::serve

/// Propagate the error of a Result-returning expression to the enclosing
/// Result-returning function (the ServeError converts to any Result<U>).
#define FASTCHG_SERVE_TRY(expr)                       \
  do {                                                \
    if (auto fastchg_r_ = (expr); !fastchg_r_.ok()) { \
      return fastchg_r_.error();                      \
    }                                                 \
  } while (0)
