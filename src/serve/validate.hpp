// Crystal sanity validation applied at every serving entry point (engine,
// MD, relax, examples, CLI) before a structure can reach the model.
//
// The checks mirror the ways a request can break the pipeline downstream:
// a singular lattice reaches data::inv3 and divides by zero, out-of-range
// species index past the embedding table, overlapping atoms blow up the
// oracle/basis, and a pathologically dense cell makes the neighbor list
// quadratic in memory.  Everything is rejected with a typed kInvalidInput
// error instead.
#pragma once

#include "data/crystal.hpp"
#include "serve/error.hpp"

namespace fastchg::serve {

struct ValidationLimits {
  index_t min_atoms = 1;
  index_t max_atoms = 1024;          ///< per-request size cap
  index_t max_species_z = 118;       ///< atomic numbers must be in [1, this]
  double min_volume_per_atom = 1.0;  ///< A^3; also rejects |det| ~ 0 cells
  double max_lattice_condition = 1e4;  ///< Frobenius cond(L) bound
  double min_interatomic_dist = 0.5;   ///< A, over periodic images
  double neighbor_cutoff = 6.0;        ///< A, for the density estimate
  index_t max_neighbors_per_atom = 512;  ///< estimated in-cutoff neighbor cap
};

/// Frobenius condition number ||L||_F * ||L^-1||_F; +inf for singular L.
double lattice_condition(const data::Mat3& lat);

/// Minimum distance between any two atom sites (periodic images in
/// {-1,0,1}^3 included, self-image excluded).  Assumes wrapped fractionals.
double min_interatomic_distance(const data::Crystal& c);

/// Full crystal sanity check; kInvalidInput with a diagnostic on failure.
Result<void> validate_crystal(const data::Crystal& c,
                              const ValidationLimits& lim = {});

}  // namespace fastchg::serve
