#include "serve/fuzz.hpp"

#include <cmath>
#include <limits>

namespace fastchg::serve {

const char* to_string(Corruption c) {
  switch (c) {
    case Corruption::kNone:            return "none";
    case Corruption::kEmpty:           return "empty";
    case Corruption::kBadSpecies:      return "bad_species";
    case Corruption::kSingularLattice: return "singular_lattice";
    case Corruption::kSkewedLattice:   return "skewed_lattice";
    case Corruption::kNanPosition:     return "nan_position";
    case Corruption::kNanLattice:      return "nan_lattice";
    case Corruption::kOverlap:         return "overlap";
    case Corruption::kDenseCell:       return "dense_cell";
  }
  return "unknown";
}

Corruption fuzz_crystal(Rng& rng, data::Crystal& out, double corrupt_prob,
                        const data::GeneratorConfig& gen) {
  out = data::random_crystal(rng, gen);
  if (rng.uniform() >= corrupt_prob) return Corruption::kNone;

  const auto kind = static_cast<Corruption>(rng.randint(
      static_cast<index_t>(Corruption::kEmpty),
      static_cast<index_t>(Corruption::kDenseCell)));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  switch (kind) {
    case Corruption::kEmpty:
      out.frac.clear();
      out.species.clear();
      break;
    case Corruption::kBadSpecies:
      out.species[static_cast<std::size_t>(
          rng.randint(0, out.natoms() - 1))] =
          rng.uniform() < 0.5 ? 0 : 119 + rng.randint(0, 80);
      break;
    case Corruption::kSingularLattice:
      if (rng.uniform() < 0.5) {
        out.lattice[1] = {0.0, 0.0, 0.0};          // zero row
      } else {
        out.lattice[1] = out.lattice[0];           // duplicated row
      }
      break;
    case Corruption::kSkewedLattice:
      // Rows nearly linearly dependent: b = a + eps * e1.
      out.lattice[1] = out.lattice[0];
      out.lattice[1][0] += 1e-7;
      break;
    case Corruption::kNanPosition:
      out.frac[static_cast<std::size_t>(rng.randint(0, out.natoms() - 1))]
          [static_cast<std::size_t>(rng.randint(0, 2))] = nan;
      break;
    case Corruption::kNanLattice:
      out.lattice[static_cast<std::size_t>(rng.randint(0, 2))]
                 [static_cast<std::size_t>(rng.randint(0, 2))] = nan;
      break;
    case Corruption::kOverlap:
      if (out.natoms() >= 2) {
        out.frac[1] = out.frac[0];
        out.frac[1][0] += 1e-5;  // well under any physical bond length
      }
      break;
    case Corruption::kDenseCell:
      for (auto& row : out.lattice) {
        for (double& x : row) x *= 0.12;  // ~580x density increase
      }
      break;
    case Corruption::kNone:
      break;
  }
  return kind;
}

}  // namespace fastchg::serve
