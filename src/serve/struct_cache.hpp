// Structure-fingerprint LRU cache for the serving layer.
//
// CHGNet serving traffic (MD trajectory scoring, relaxation sweeps,
// convex-hull re-ranking) is dominated by *repeated* structures: the same
// crystal arrives many times, or arrives again after a round trip through a
// client.  Graph construction (neighbor list + angle enumeration) is a
// meaningful fraction of a small-structure request, and an exact repeat
// does not need the model at all.  The cache therefore keeps two tiers per
// entry, keyed by a canonical byte-exact fingerprint of the structure:
//
//   * the built data::Sample (crystal + graph), reused by the collator so a
//     repeated structure never rebuilds its neighbor list;
//   * optionally the full Prediction of a previous successful forward,
//     replayed verbatim for exact repeats (deterministic forwards make the
//     replay bit-identical to recomputation).
//
// Eviction is strict LRU and therefore deterministic: equal request streams
// produce equal hit/miss/eviction sequences.  Tallies are mirrored into
// perf::count_event ("serve.cache.hit" / "miss" / "evict" / "result_hit")
// for the observability stack.
//
// Not internally synchronized: lookups and inserts run on the engine's
// sequential admission phase; only the fused forwards fan out to workers.
#pragma once

#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "data/dataset.hpp"
#include "serve/prediction.hpp"

namespace fastchg::serve {

struct CacheStats {
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;         ///< graph reused (includes result hits)
  std::uint64_t result_hits = 0;  ///< full Prediction replayed, no forward
  std::uint64_t misses = 0;       ///< graph built and inserted
  std::uint64_t evictions = 0;    ///< LRU entries displaced by capacity

  /// Fold another tally in (fleet-wide aggregation across shards and their
  /// retired engine incarnations; reconciliation lookups == hits + misses
  /// is preserved term by term).
  void merge(const CacheStats& o) {
    lookups += o.lookups;
    hits += o.hits;
    result_hits += o.result_hits;
    misses += o.misses;
    evictions += o.evictions;
  }
};

class StructureCache {
 public:
  /// `capacity` = max resident structures (0 disables everything: lookups
  /// build a fresh sample and insert nothing).  `cache_results` additionally
  /// retains the full Prediction for exact-repeat replay.
  StructureCache(std::size_t capacity, data::GraphConfig graph,
                 bool cache_results = true);

  /// Canonical byte-exact fingerprint: species, lattice, *wrapped*
  /// fractional coordinates and the graph cutoffs.  Two crystals with equal
  /// keys produce identical graphs and identical forwards.
  static std::string fingerprint(const data::Crystal& c,
                                 const data::GraphConfig& graph);

  struct Lookup {
    std::shared_ptr<const data::Sample> sample;  ///< always set
    /// Full-result tier hit: a previous forward's reply for this exact
    /// structure (nullptr when absent or result caching is off).
    std::shared_ptr<const Prediction> result;
    std::string key;  ///< fingerprint, for the later store_result call
  };

  /// Resolve a crystal to its built sample, reusing (and refreshing the
  /// recency of) a cached entry when present, else building the graph and
  /// inserting.  Counts one lookup and one hit or miss.
  Lookup lookup(const data::Crystal& c);

  /// Attach a successful reply to the entry for `key` (no-op when the entry
  /// was evicted in the meantime or result caching is off).  Does not touch
  /// recency: the preceding lookup already did.
  void store_result(const std::string& key, const Prediction& p);

  /// Peek without touching recency order or stats (test/diagnostic use).
  bool contains(const data::Crystal& c) const;

  const CacheStats& stats() const { return stats_; }
  /// Hand back the tallies and zero them in one step.  A restarting shard
  /// calls this on the retiring engine's cache so its counts migrate into
  /// the shard's retired accumulator -- never double-counted by a later
  /// read, never lost with the incarnation.
  CacheStats snapshot_and_reset() {
    CacheStats s = stats_;
    stats_ = CacheStats{};
    return s;
  }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }
  const data::GraphConfig& graph_config() const { return graph_; }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const data::Sample> sample;
    std::shared_ptr<const Prediction> result;
  };

  std::size_t capacity_;
  data::GraphConfig graph_;
  bool cache_results_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> entries_;
  CacheStats stats_;
};

/// Build a Sample (wrapped crystal + graph) without any cache involvement;
/// the shared path for cache misses and cache-disabled serving.
std::shared_ptr<const data::Sample> build_sample(
    const data::Crystal& c, const data::GraphConfig& graph);

}  // namespace fastchg::serve
