#include "serve/watchdog.hpp"

#include <cmath>
#include <sstream>

namespace fastchg::serve {

bool tensor_finite(const Tensor& t) {
  if (!t.defined()) return true;
  const float* p = t.data();
  const index_t n = t.numel();
  for (index_t i = 0; i < n; ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

namespace {

Result<void> fault(const char* field, const char* what) {
  std::ostringstream os;
  os << field << " output " << what;
  return Result<void>::failure(ErrorCode::kNumericFault, os.str());
}

Result<void> check_field(const ag::Var& v, const char* field) {
  if (!v.defined()) return fault(field, "missing from forward");
  if (!tensor_finite(v.value())) return fault(field, "contains a non-finite value");
  return {};
}

}  // namespace

Result<void> check_output(const model::ModelOutput& out) {
  FASTCHG_SERVE_TRY(check_field(out.energy_per_atom, "energy_per_atom"));
  FASTCHG_SERVE_TRY(check_field(out.forces, "forces"));
  FASTCHG_SERVE_TRY(check_field(out.stress, "stress"));
  // magmom is optional for serving consumers; only scan it when present.
  if (out.magmom.defined() && !tensor_finite(out.magmom.value())) {
    return fault("magmom", "contains a non-finite value");
  }
  return {};
}

EnergyDriftMonitor::EnergyDriftMonitor(double max_step_drift_per_atom,
                                       index_t natoms)
    : max_step_(max_step_drift_per_atom), natoms_(natoms) {}

void EnergyDriftMonitor::reset(double e_total) {
  e0_ = e_total;
  e_prev_ = e_total;
  has_ref_ = true;
}

double EnergyDriftMonitor::step_drift_per_atom(double e_total) const {
  if (!has_ref_ || natoms_ <= 0) return 0.0;
  return std::fabs(e_total - e_prev_) / static_cast<double>(natoms_);
}

bool EnergyDriftMonitor::admissible(double e_total) const {
  if (!enabled() || !has_ref_) return true;
  if (!std::isfinite(e_total)) return false;
  return step_drift_per_atom(e_total) <= max_step_;
}

void EnergyDriftMonitor::accept(double e_total) { e_prev_ = e_total; }

double EnergyDriftMonitor::cumulative_drift_per_atom() const {
  if (!has_ref_ || natoms_ <= 0) return 0.0;
  return std::fabs(e_prev_ - e0_) / static_cast<double>(natoms_);
}

OscillationDetector::OscillationDetector(index_t window, double min_progress)
    : window_(window < 2 ? 2 : window), min_progress_(min_progress) {}

void OscillationDetector::reset() { recent_.clear(); }

bool OscillationDetector::push(bool accepted, double energy) {
  recent_.emplace_back(accepted, energy);
  if (static_cast<index_t>(recent_.size()) > window_) recent_.pop_front();
  if (static_cast<index_t>(recent_.size()) < window_) return false;
  index_t rejected = 0;
  for (const auto& [acc, e] : recent_) {
    if (!acc) ++rejected;
  }
  if (rejected * 2 < window_) return false;
  const double e_first = recent_.front().second;
  const double e_last = recent_.back().second;
  const double progress = std::fabs(e_first - e_last);
  return progress <= min_progress_ * std::max(1.0, std::fabs(e_last));
}

}  // namespace fastchg::serve
