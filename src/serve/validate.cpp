#include "serve/validate.hpp"

#include <cmath>
#include <limits>
#include <sstream>

namespace fastchg::serve {

namespace {

Result<void> invalid(const std::string& msg) {
  return Result<void>::failure(ErrorCode::kInvalidInput, msg);
}

double frobenius(const data::Mat3& m) {
  double s = 0.0;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) s += m[i][j] * m[i][j];
  return std::sqrt(s);
}

bool mat_finite(const data::Mat3& m) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      if (!std::isfinite(m[i][j])) return false;
  return true;
}

}  // namespace

double lattice_condition(const data::Mat3& lat) {
  if (!mat_finite(lat)) return std::numeric_limits<double>::infinity();
  const double d = data::det3(lat);
  const double nl = frobenius(lat);
  // |det| <= ||L||_F^3 always; a determinant below ~eps * scale^3 means the
  // inverse is numerically meaningless -- report singular instead of
  // dividing by a denormal.
  if (std::fabs(d) <= 1e-12 * std::max(1.0, nl * nl * nl)) {
    return std::numeric_limits<double>::infinity();
  }
  return nl * frobenius(data::inv3(lat));
}

double min_interatomic_distance(const data::Crystal& c) {
  const std::vector<data::Vec3> cart = c.wrapped_cart();
  const std::size_t n = cart.size();
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      for (int a = -1; a <= 1; ++a) {
        for (int b = -1; b <= 1; ++b) {
          for (int g = -1; g <= 1; ++g) {
            if (i == j && a == 0 && b == 0 && g == 0) continue;
            const data::Vec3 shift =
                data::mat_vec(c.lattice, {static_cast<double>(a),
                                          static_cast<double>(b),
                                          static_cast<double>(g)});
            data::Vec3 d{};
            for (int k = 0; k < 3; ++k) {
              d[k] = cart[j][k] + shift[k] - cart[i][k];
            }
            best = std::min(best, data::norm(d));
          }
        }
      }
    }
  }
  return best;
}

Result<void> validate_crystal(const data::Crystal& c,
                              const ValidationLimits& lim) {
  const index_t n = c.natoms();
  if (n < lim.min_atoms || n > lim.max_atoms) {
    std::ostringstream os;
    os << "natoms " << n << " outside [" << lim.min_atoms << ", "
       << lim.max_atoms << "]";
    return invalid(os.str());
  }
  if (c.species.size() != c.frac.size()) {
    std::ostringstream os;
    os << "species/frac size mismatch: " << c.species.size() << " vs "
       << c.frac.size();
    return invalid(os.str());
  }
  if (!mat_finite(c.lattice)) return invalid("non-finite lattice entry");
  for (std::size_t i = 0; i < c.frac.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      if (!std::isfinite(c.frac[i][d])) {
        std::ostringstream os;
        os << "non-finite fractional coordinate at atom " << i;
        return invalid(os.str());
      }
    }
  }
  for (std::size_t i = 0; i < c.species.size(); ++i) {
    if (c.species[i] < 1 || c.species[i] > lim.max_species_z) {
      std::ostringstream os;
      os << "species Z=" << c.species[i] << " at atom " << i
         << " outside [1, " << lim.max_species_z << "]";
      return invalid(os.str());
    }
  }

  const double vol = c.volume();
  if (!(vol >= lim.min_volume_per_atom * static_cast<double>(n))) {
    std::ostringstream os;
    os << "cell volume " << vol << " A^3 below " << lim.min_volume_per_atom
       << " A^3/atom (singular or collapsed lattice)";
    return invalid(os.str());
  }
  const double cond = lattice_condition(c.lattice);
  if (!(cond <= lim.max_lattice_condition)) {
    std::ostringstream os;
    os << "lattice condition number " << cond << " exceeds "
       << lim.max_lattice_condition << " (near-singular cell)";
    return invalid(os.str());
  }

  // Density-based neighbor cap: expected in-cutoff neighbors per atom is
  // rho * (4/3) pi r^3; past the cap the O(N * neighbors) graph build (and
  // the dense [E, 3S] image matrix) would blow up serving memory.
  const double r = lim.neighbor_cutoff;
  const double est =
      static_cast<double>(n) / vol * (4.0 / 3.0) * 3.14159265358979 * r * r * r;
  if (est > static_cast<double>(lim.max_neighbors_per_atom)) {
    std::ostringstream os;
    os << "estimated " << est << " neighbors/atom within " << r
       << " A exceeds cap " << lim.max_neighbors_per_atom
       << " (cell too dense)";
    return invalid(os.str());
  }

  if (n >= 1) {
    // Also covers a lone atom against its own periodic image (shortest
    // lattice translation).
    const double dmin = min_interatomic_distance(c);
    if (!(dmin >= lim.min_interatomic_dist)) {
      std::ostringstream os;
      os << "minimum interatomic distance " << dmin << " A below "
         << lim.min_interatomic_dist << " A (overlapping atoms)";
      return invalid(os.str());
    }
  }
  return {};
}

}  // namespace fastchg::serve
