#include "serve/router.hpp"

#include <algorithm>
#include <sstream>

#include "perf/counters.hpp"
#include "perf/timer.hpp"
#include "perf/trace.hpp"

namespace fastchg::serve {

namespace {

// 64-bit FNV-1a: stable across platforms (unlike std::hash), cheap, and
// well-mixed enough for ring placement of byte-exact fingerprints.
std::uint64_t fnv1a(const void* data, std::size_t n,
                    std::uint64_t h = 1469598103934665603ull) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

// Avalanche finalizer (MurmurHash3 fmix64).  FNV-1a of *short* inputs --
// like the 8 bytes of (shard id, vnode index) -- clusters badly in the
// 64-bit space, which skews ring ownership to one shard; the finalizer
// spreads vnode points uniformly so each of N shards owns ~1/N of the
// keyspace and adding a shard remaps ~1/(N+1) of the keys.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::uint64_t ShardRouter::hash_key(const std::string& key) {
  return fnv1a(key.data(), key.size());
}

ShardRouter::ShardRouter(const model::CHGNet& net, RouterConfig cfg)
    : net_(net), cfg_(std::move(cfg)), injector_(cfg_.fault_plan) {
  FASTCHG_CHECK(cfg_.num_shards >= 1,
                "ShardRouter needs at least one shard, got "
                    << cfg_.num_shards);
  FASTCHG_CHECK(cfg_.vnodes >= 1,
                "ShardRouter needs at least one vnode per shard, got "
                    << cfg_.vnodes);
  for (int i = 0; i < cfg_.num_shards; ++i) add_shard();
}

// -- Ring maintenance ---------------------------------------------------

void ShardRouter::ring_insert(int id) {
  for (int v = 0; v < cfg_.vnodes; ++v) {
    // Vnode point: hash of (shard id, vnode index).  Ties (astronomically
    // unlikely) resolve to the smaller shard id for determinism.
    std::uint64_t point = fnv1a(&id, sizeof(id));
    point = mix64(fnv1a(&v, sizeof(v), point));
    auto [it, inserted] = ring_.emplace(point, id);
    if (!inserted && id < it->second) it->second = id;
  }
}

void ShardRouter::ring_erase(int id) {
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<int> ShardRouter::ring_walk(const std::string& key) const {
  std::vector<int> order;
  order.reserve(shards_.size());
  if (ring_.empty()) return order;
  const std::uint64_t h = hash_key(key);
  auto it = ring_.lower_bound(h);
  for (std::size_t steps = 0; steps < ring_.size(); ++steps) {
    if (it == ring_.end()) it = ring_.begin();
    if (std::find(order.begin(), order.end(), it->second) == order.end()) {
      order.push_back(it->second);
      if (order.size() == shards_.size()) break;
    }
    ++it;
  }
  return order;
}

// -- Shard lookup -------------------------------------------------------

EngineShard* ShardRouter::find_shard(int id) {
  for (auto& s : shards_) {
    if (s->id() == id) return s.get();
  }
  return nullptr;
}

const EngineShard* ShardRouter::find_shard(int id) const {
  for (const auto& s : shards_) {
    if (s->id() == id) return s.get();
  }
  return nullptr;
}

const EngineShard& ShardRouter::shard(int id) const {
  const EngineShard* s = find_shard(id);
  FASTCHG_CHECK(s != nullptr, "unknown shard id " << id);
  return *s;
}

std::vector<int> ShardRouter::shard_ids() const {
  std::vector<int> ids;
  ids.reserve(shards_.size());
  for (const auto& s : shards_) ids.push_back(s->id());
  return ids;
}

int ShardRouter::num_routable() const {
  int n = 0;
  for (const auto& s : shards_) n += s->routable() ? 1 : 0;
  return n;
}

std::size_t ShardRouter::queue_depth() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->engine().queue_depth();
  return n;
}

int ShardRouter::affinity_shard_for_key(const std::string& key) const {
  const auto walk = ring_walk(key);
  return walk.empty() ? -1 : walk.front();
}

int ShardRouter::affinity_shard(const data::Crystal& c) const {
  return affinity_shard_for_key(
      StructureCache::fingerprint(c, cfg_.shard.engine.graph));
}

// -- Routing ------------------------------------------------------------

int ShardRouter::try_route(data::Crystal&& c, double deadline_ms,
                           std::size_t gid, const std::vector<int>& walk,
                           int exclude, bool* rerouted) {
  int attempts_left = cfg_.max_reroute_attempts;
  bool off_affinity = false;
  for (int id : walk) {
    if (id == exclude) {
      // The tripped/removed shard counts as a refusal: whoever takes the
      // request instead serves it off-affinity.
      off_affinity = true;
      continue;
    }
    if (off_affinity) {
      if (attempts_left <= 0) break;
      --attempts_left;
      stats_.sim_backoff_ms += cfg_.reroute_backoff_ms;
    }
    EngineShard* s = find_shard(id);
    if (s != nullptr && s->routable()) {
      // Copy, not move: a queue-full rejection must leave the crystal
      // intact for the next candidate.
      auto ticket = s->submit(c, deadline_ms);
      if (ticket.ok()) {
        pending_[id].push_back(Pending{gid, off_affinity});
        if (rerouted != nullptr) *rerouted = off_affinity;
        if (off_affinity) {
          ++stats_.rerouted;
          perf::count_event("serve.reroute");
        }
        return id;
      }
    }
    off_affinity = true;  // the affinity shard (walk head) refused
    if (cfg_.strict_reroute) break;
  }
  return -1;
}

Result<std::size_t> ShardRouter::submit(data::Crystal c, double deadline_ms) {
  perf::TraceSpan span("serve.route", "serve");
  ++stats_.submitted;

  if (shards_.empty()) {
    return Result<std::size_t>::failure(ErrorCode::kOverloaded,
                                        "router has no shards");
  }

  // Global load shedding: when every routable shard's queue sits at or
  // above the watermark there is no point queueing more work anywhere.
  bool any_routable = false;
  bool all_at_watermark = true;
  for (const auto& s : shards_) {
    if (!s->routable()) continue;
    any_routable = true;
    if (s->engine().queue_depth() < cfg_.shed_watermark) {
      all_at_watermark = false;
      break;
    }
  }
  if (!any_routable) {
    ++stats_.shed;
    perf::count_event("serve.shed");
    return Result<std::size_t>::failure(ErrorCode::kOverloaded,
                                        "no routable shard (all tripped)");
  }
  if (all_at_watermark) {
    perf::TraceSpan shed_span("serve.shed", "serve");
    ++stats_.shed;
    perf::count_event("serve.shed");
    std::ostringstream msg;
    msg << "global shed: every routable shard queue >= watermark "
        << cfg_.shed_watermark;
    return Result<std::size_t>::failure(ErrorCode::kOverloaded, msg.str());
  }

  const auto walk =
      ring_walk(StructureCache::fingerprint(c, cfg_.shard.engine.graph));
  const std::size_t gid = next_gid_++;
  const int target =
      try_route(std::move(c), deadline_ms, gid, walk, /*exclude=*/-1,
                /*rerouted=*/nullptr);
  if (target < 0) {
    next_gid_ = gid;  // nothing admitted: the id is reusable
    if (cfg_.strict_reroute) {
      ++stats_.strict_degraded;
      std::ostringstream msg;
      msg << "strict affinity: shard " << (walk.empty() ? -1 : walk.front())
          << " cannot take the request";
      return Result<std::size_t>::failure(ErrorCode::kDegraded, msg.str());
    }
    ++stats_.shed;
    perf::count_event("serve.shed");
    return Result<std::size_t>::failure(
        ErrorCode::kOverloaded, "no shard with queue capacity on the walk");
  }
  ++stats_.routed;
  return gid;
}

// -- Failover -----------------------------------------------------------

void ShardRouter::failover_backlog(EngineShard& from) {
  perf::TraceSpan span("serve.failover", "serve");
  std::vector<QueuedRequest> backlog = from.trip();
  ++stats_.trips;

  auto& mirror = pending_[from.id()];
  FASTCHG_CHECK(backlog.size() == mirror.size(),
                "shard " << from.id() << " pending mirror out of sync: "
                         << backlog.size() << " queued vs " << mirror.size()
                         << " pending");
  for (std::size_t i = 0; i < backlog.size(); ++i) {
    QueuedRequest& req = backlog[i];
    const Pending rec = mirror[i];
    if (cfg_.strict_reroute) {
      ++stats_.failover_dropped;
      ++stats_.strict_degraded;
      std::ostringstream msg;
      msg << "strict affinity: shard " << from.id()
          << " tripped with the request queued";
      done_.emplace_back(rec.gid, Result<Prediction>::failure(
                                      ErrorCode::kDegraded, msg.str()));
      continue;
    }
    const auto walk = ring_walk(StructureCache::fingerprint(
        req.crystal, cfg_.shard.engine.graph));
    // Walk as a fresh route but exclude the tripped shard; anything the
    // siblings accept is by definition off-affinity while `from` is down,
    // so try_route flags it rerouted unless `from` was not the affinity
    // shard to begin with.
    const int target =
        try_route(std::move(req.crystal), req.deadline_ms, rec.gid, walk,
                  /*exclude=*/from.id(), /*rerouted=*/nullptr);
    if (target >= 0) {
      ++stats_.failovers;
      // Failover inherits the original reroute flag if it was already
      // off-affinity before the trip.
      if (rec.rerouted) pending_[target].back().rerouted = true;
    } else {
      ++stats_.failover_dropped;
      done_.emplace_back(
          rec.gid,
          Result<Prediction>::failure(
              ErrorCode::kOverloaded,
              "failover: no sibling shard with queue capacity"));
    }
  }
  mirror.clear();
}

// -- Tick ---------------------------------------------------------------

std::vector<Result<Prediction>> ShardRouter::drain() {
  perf::TraceSpan span("serve.tick", "serve");
  const std::uint64_t tick = stats_.ticks++;

  // 1. Scheduled shard faults: kDeviceFailure(device=shard index in
  //    creation order, iteration=tick) trips the shard.  Indices address
  //    the current creation-order roster so CLI plans like "fail:1@3"
  //    stay meaningful after elastic resizes.
  for (int idx : injector_.failures_at(static_cast<index_t>(tick))) {
    if (idx < 0 || idx >= static_cast<int>(shards_.size())) continue;
    EngineShard& victim = *shards_[static_cast<std::size_t>(idx)];
    if (victim.health() == ShardHealth::kDraining ||
        victim.health() == ShardHealth::kDead) {
      continue;
    }
    failover_backlog(victim);
  }

  //    Watchdog escalations latched by the previous tick's health pass
  //    close the loop here, through the same failover path a planned
  //    fault takes -- while the shard is still routable, so any requests
  //    queued on it since the escalation re-home to siblings instead of
  //    faulting.
  for (auto& s : shards_) {
    if (s->auto_trip_pending() && s->routable()) {
      perf::TraceSpan trip_span("serve.auto_trip", "serve");
      ++stats_.auto_trips;
      failover_backlog(*s);
    }
  }

  // 2. Drain every routable shard serially, measuring each shard's wall
  //    time.  Real shards run concurrently, so the tick's simulated
  //    latency is the max over shards (stragglers from the fault plan
  //    inflate their shard's contribution).
  std::vector<std::pair<std::size_t, Result<Prediction>>> replies =
      std::move(done_);
  done_.clear();
  double tick_sim_ms = 0.0;
  for (std::size_t idx = 0; idx < shards_.size(); ++idx) {
    EngineShard& s = *shards_[idx];
    if (!s.routable()) continue;
    auto& mirror = pending_[s.id()];
    if (mirror.empty()) continue;
    perf::Timer wall;
    std::vector<Result<Prediction>> out = s.drain();
    double shard_ms = wall.millis();
    shard_ms *= injector_.compute_multiplier(static_cast<int>(idx),
                                             static_cast<index_t>(tick));
    tick_sim_ms = std::max(tick_sim_ms, shard_ms);
    FASTCHG_CHECK(out.size() == mirror.size(),
                  "shard " << s.id() << " drained " << out.size()
                           << " replies for " << mirror.size()
                           << " pending requests");
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].ok()) {
        Prediction& p = out[i].value();
        p.shard = s.id();
        p.rerouted = mirror[i].rerouted;
      }
      replies.emplace_back(mirror[i].gid, std::move(out[i]));
    }
    mirror.clear();
  }
  stats_.last_tick_sim_ms = tick_sim_ms;
  stats_.sim_ms_total += tick_sim_ms;

  // 3. Advance every shard's health machine (restart countdowns, watchdog,
  //    pool watermark trim).
  for (auto& s : shards_) {
    if (s->tick()) ++stats_.restarts;
  }

  std::sort(replies.begin(), replies.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Result<Prediction>> out;
  out.reserve(replies.size());
  for (auto& [gid, r] : replies) {
    (void)gid;
    out.push_back(std::move(r));
  }
  return out;
}

// -- Elastic scaling ----------------------------------------------------

int ShardRouter::add_shard() {
  const int id = next_shard_id_++;
  shards_.push_back(std::make_unique<EngineShard>(id, net_, cfg_.shard));
  ring_insert(id);
  pending_.emplace(id, std::deque<Pending>{});
  perf::count_event("serve.shard.add");
  return id;
}

Result<void> ShardRouter::remove_shard(int id) {
  EngineShard* victim = find_shard(id);
  if (victim == nullptr) {
    std::ostringstream msg;
    msg << "unknown shard id " << id;
    return Result<void>::failure(ErrorCode::kInvalidInput, msg.str());
  }
  if (shards_.size() == 1) {
    return Result<void>::failure(ErrorCode::kOverloaded,
                                 "cannot remove the last shard");
  }
  // Leave the ring first so the failover walk cannot hand requests back.
  ring_erase(id);
  failover_backlog(*victim);
  --stats_.trips;  // administrative removal, not a fault trip
  retired_fleet_stats_.merge(victim->lifetime_stats());
  retired_fleet_cache_.merge(victim->lifetime_cache_stats());
  pending_.erase(id);
  shards_.erase(std::find_if(shards_.begin(), shards_.end(),
                             [&](const auto& s) { return s.get() == victim; }));
  perf::count_event("serve.shard.remove");
  return {};
}

// -- Fleet accounting ---------------------------------------------------

EngineStats ShardRouter::fleet_stats() const {
  EngineStats s = retired_fleet_stats_;
  for (const auto& sh : shards_) s.merge(sh->lifetime_stats());
  return s;
}

CacheStats ShardRouter::fleet_cache_stats() const {
  CacheStats s = retired_fleet_cache_;
  for (const auto& sh : shards_) s.merge(sh->lifetime_cache_stats());
  return s;
}

}  // namespace fastchg::serve
