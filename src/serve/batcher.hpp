// Dynamic micro-batching for the serving layer.
//
// The paper's core system win is amortization: batched (Alg. 2) basis
// computation and packed GEMMs replace per-sample loops.  Serving one
// crystal per forward leaves that on the table, so the micro-batcher fuses
// up to `max_batch` admitted requests into one disjoint-union data::Batch,
// runs a single CHGNet::forward over it (the existing batched-basis path --
// structures in a disjoint union never interact, so per-structure outputs
// are bit-identical to N individual forwards), and unpacks per-structure
// energy/forces/stress/magmom replies.
//
// Replica workers: independent micro-batches execute concurrently on the
// core parallel_for pool (`workers` bounds the fan-out).  Tensor kernels
// inside a worker's forward degrade to inline execution (see
// core/parallel_for.hpp nesting rules), so the fan-out owns the pool and
// results stay deterministic.
//
// Fault isolation: a numeric-watchdog trip on a fused batch bisects it --
// the halves are re-collated and re-run until the poisoned structure is
// alone, which yields kNumericFault for exactly that request while its
// batchmates still succeed.  log2(max_batch) extra forwards in the worst
// case, zero extra work on the (overwhelmingly common) clean path.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "chgnet/model.hpp"
#include "core/alloc.hpp"
#include "core/replay.hpp"
#include "serve/error.hpp"
#include "serve/prediction.hpp"

namespace fastchg::serve {

/// One admitted, validated request ready for fused execution.
struct BatchItem {
  std::shared_ptr<const data::Sample> sample;  ///< crystal + built graph
  std::size_t request_id = 0;  ///< caller-side id (labels, test seams)
};

/// Per-run tallies (merged across workers after the join).
struct BatchRunStats {
  std::uint64_t micro_batches = 0;   ///< fused forwards dispatched
  std::uint64_t served = 0;          ///< structures unpacked successfully
  std::uint64_t bisections = 0;      ///< watchdog-tripped batch splits
  std::uint64_t isolated_faults = 0; ///< size-1 kNumericFault replies

  void merge(const BatchRunStats& o) {
    micro_batches += o.micro_batches;
    served += o.served;
    bisections += o.bisections;
    isolated_faults += o.isolated_faults;
  }
};

class MicroBatcher {
 public:
  struct Config {
    index_t max_batch = 8;  ///< structures fused per forward (>= 1)
    int workers = 1;        ///< max concurrently executing micro-batches
    /// Arena the fused forwards draw from (nullptr = each worker's own
    /// thread pool).  Sharded serving points this at the shard's pool so
    /// every allocation of the shard's traffic recycles shard-locally.
    alloc::AllocatorPtr arena;
    /// Fault-injection seam (tests/benches): mutate the collated batch
    /// before its forward.  Receives the request_ids of the structures in
    /// the (sub-)batch, in structure order, so a poison can follow one
    /// request through bisection.  Never set in production.
    std::function<void(data::Batch&, const std::vector<std::size_t>&)>
        corrupt_batch;
    /// Recorded-step replay of the fused eval forward (core/replay.hpp):
    /// repeated batch topologies skip graph construction and dispatch
    /// entirely.  Gated globally by FASTCHG_REPLAY as well.
    bool replay = true;
    std::size_t replay_capacity = 16;  ///< cached programs (LRU)
  };

  MicroBatcher()
      : replay_cache_(std::make_shared<replay::ProgramCache>(
            Config{}.replay_capacity)) {}
  explicit MicroBatcher(Config cfg)
      : cfg_(std::move(cfg)),
        replay_cache_(
            std::make_shared<replay::ProgramCache>(cfg_.replay_capacity)) {}

  /// Serve every item through fused forwards; replies come back in item
  /// order, each either a Prediction or a typed error.  Thread-safe w.r.t.
  /// itself (const; all mutable state is call-local).
  std::vector<Result<Prediction>> run(const model::CHGNet& net,
                                      const std::vector<BatchItem>& items,
                                      BatchRunStats* stats = nullptr) const;

  const Config& config() const { return cfg_; }

  /// Replay program cache shared by every worker of this batcher
  /// (hit/miss/capture stats for tests and benchmarks).
  const replay::ProgramCache& replay_cache() const { return *replay_cache_; }

 private:
  /// Serve items[lo, hi) as one fused forward, bisecting on numeric faults.
  void serve_span(const model::CHGNet& net,
                  const std::vector<BatchItem>& items, std::size_t lo,
                  std::size_t hi,
                  std::vector<std::unique_ptr<Result<Prediction>>>& out,
                  BatchRunStats& stats) const;

  Config cfg_;
  /// Shared (run() is const, workers are concurrent); ProgramCache is
  /// internally synchronized and hands out per-program run leases.
  std::shared_ptr<replay::ProgramCache> replay_cache_;
};

/// Slice structure `s` of a fused forward back into a per-request reply.
/// Exposed for the equivalence tests.
Prediction unpack_structure(const model::ModelOutput& out,
                            const data::Batch& b, index_t s);

}  // namespace fastchg::serve
