#include "serve/batcher.hpp"

#include <algorithm>
#include <cstdint>
#include <sstream>

#include "autograd/ops.hpp"
#include "core/alloc.hpp"
#include "core/parallel_for.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"
#include "serve/watchdog.hpp"

namespace fastchg::serve {

namespace {

/// Key namespace for the serve replay site.  The served net's address is
/// mixed in as well: MicroBatcher::run takes the net per call, and two nets
/// (fp32 vs int8 replica) must never share a program.
constexpr std::uint64_t kServeReplaySeed = 0x5345525645ull;  // "SERVE"

/// Pointer-stability list for serve programs: parameter values (frozen at
/// serve time, baked into the program) plus the AtomRef table.
std::vector<Tensor> replay_stable(const model::CHGNet& net) {
  std::vector<Tensor> v;
  for (const ag::Var& p : net.parameters()) v.push_back(p.value());
  if (net.has_atom_ref()) v.push_back(net.atom_ref());
  return v;
}

}  // namespace

Prediction unpack_structure(const model::ModelOutput& out,
                            const data::Batch& b, index_t s) {
  const index_t n = b.natoms[static_cast<std::size_t>(s)];
  const index_t a0 = b.atom_first[static_cast<std::size_t>(s)];
  Prediction p;
  p.energy =
      static_cast<double>(out.energy_per_atom.value().data()[s]) *
      static_cast<double>(n);
  p.forces.resize(static_cast<std::size_t>(n));
  const float* f = out.forces.value().data();
  for (index_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      p.forces[static_cast<std::size_t>(i)][d] =
          static_cast<double>(f[(a0 + i) * 3 + d]);
    }
  }
  const float* st = out.stress.value().data();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      p.stress[i][j] = static_cast<double>(st[s * 9 + i * 3 + j]);
    }
  }
  if (out.magmom.defined()) {
    const float* mm = out.magmom.value().data();
    p.magmom.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      p.magmom[static_cast<std::size_t>(i)] = static_cast<double>(mm[a0 + i]);
    }
  }
  return p;
}

void MicroBatcher::serve_span(
    const model::CHGNet& net, const std::vector<BatchItem>& items,
    std::size_t lo, std::size_t hi,
    std::vector<std::unique_ptr<Result<Prediction>>>& out,
    BatchRunStats& stats) const {
  std::vector<const data::Sample*> samples;
  std::vector<std::size_t> ids;
  samples.reserve(hi - lo);
  ids.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    samples.push_back(items[i].sample.get());
    ids.push_back(items[i].request_id);
  }

  data::Batch b;
  {
    perf::TraceSpan span("serve.batch.collate", "serve");
    b = data::collate(samples, /*with_labels=*/false);
  }
  if (cfg_.corrupt_batch) cfg_.corrupt_batch(b, ids);

  // Recorded-step replay: keyed on the (possibly corrupted) batch topology
  // -- a poisoned float payload shares a clean batch's key by design, since
  // programs are value-independent; the watchdog below still catches it.
  std::uint64_t key = 0;
  replay::ProgramCache::Lease lease;
  if (cfg_.replay && replay_cache_) {
    key = data::replay_key(
        b, kServeReplaySeed ^ static_cast<std::uint64_t>(
                                  reinterpret_cast<std::uintptr_t>(&net)));
    lease = replay_cache_->acquire(key);
    if (lease.action == replay::ProgramCache::Action::kReplay &&
        !lease.program->bind(data::replay_inputs(b), replay_stable(net))) {
      replay_cache_->invalidate(key);
      lease = replay::ProgramCache::Lease{};
    }
  }

  model::ModelOutput mo;
  bool fault = false;
  std::string msg;
  try {
    if (lease.action == replay::ProgramCache::Action::kReplay) {
      perf::TraceSpan span("serve.batch.replay", "serve");
      lease.program->run();
      // Rebuild the output from the tapped slots (copies; the program's
      // tap buffers are reused by the next lease holder).
      mo.energy_per_atom = ag::ops::constant(lease.program->tap_value(0));
      mo.forces = ag::ops::constant(lease.program->tap_value(1));
      mo.stress = ag::ops::constant(lease.program->tap_value(2));
      if (lease.program->tap_count() > 3) {
        mo.magmom = ag::ops::constant(lease.program->tap_value(3));
      }
    } else if (lease.action == replay::ProgramCache::Action::kCapture) {
      replay::Recorder rec;
      for (const Tensor& t : data::replay_inputs(b)) rec.bind_input(t);
      for (const Tensor& t : replay_stable(net)) rec.expect_stable(t);
      try {
        replay::RecorderScope scope(rec);
        perf::TraceSpan span("serve.batch.forward", "serve");
        mo = net.forward(b, model::ForwardMode::kEval);
      } catch (...) {
        replay_cache_->abort_capture(key);
        throw;
      }
      rec.tap(mo.energy_per_atom.value());
      rec.tap(mo.forces.value());
      rec.tap(mo.stress.value());
      if (mo.magmom.defined()) rec.tap(mo.magmom.value());
      replay_cache_->store(key, rec.finish());
    } else {
      perf::TraceSpan span("serve.batch.forward", "serve");
      mo = net.forward(b, model::ForwardMode::kEval);
    }
    perf::TraceSpan span_wd("serve.batch.watchdog", "serve");
    if (auto w = check_output(mo); !w.ok()) {
      fault = true;
      msg = w.error().message;
    }
  } catch (const Error& e) {
    // Inputs were validated upstream, so a throw here is a serving-side
    // fault (graph/forward invariant), not a bad request.
    fault = true;
    msg = std::string("forward failed: ") + e.what();
  }

  if (!fault) {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = std::make_unique<Result<Prediction>>(
          unpack_structure(mo, b, static_cast<index_t>(i - lo)));
    }
    stats.served += hi - lo;
    return;
  }

  if (hi - lo == 1) {
    ++stats.isolated_faults;
    perf::count_event("serve.batch.isolated");
    std::ostringstream os;
    os << msg << " (request " << ids[0] << ", isolated by batch bisection)";
    out[lo] = std::make_unique<Result<Prediction>>(
        Result<Prediction>::failure(ErrorCode::kNumericFault, os.str()));
    return;
  }

  // A poisoned structure somewhere in [lo, hi): bisect until it is alone.
  // Structures in a disjoint union never interact, so the clean halves
  // reproduce their fused outputs exactly.
  ++stats.bisections;
  perf::count_event("serve.batch.bisect");
  perf::TraceSpan span("serve.batch.bisect", "serve");
  const std::size_t mid = lo + (hi - lo) / 2;
  serve_span(net, items, lo, mid, out, stats);
  serve_span(net, items, mid, hi, out, stats);
}

std::vector<Result<Prediction>> MicroBatcher::run(
    const model::CHGNet& net, const std::vector<BatchItem>& items,
    BatchRunStats* stats) const {
  const std::size_t n = items.size();
  std::vector<Result<Prediction>> replies;
  replies.reserve(n);
  if (n == 0) {
    if (stats) *stats = BatchRunStats{};
    return replies;
  }

  const std::size_t max_batch =
      cfg_.max_batch < 1 ? 1 : static_cast<std::size_t>(cfg_.max_batch);
  const std::size_t num_mb = (n + max_batch - 1) / max_batch;

  // unique_ptr slots because Result has no default construction; every slot
  // is filled exactly once by the worker owning its micro-batch.
  std::vector<std::unique_ptr<Result<Prediction>>> out(n);
  std::vector<BatchRunStats> per_mb(num_mb);

  const auto serve_mb = [&](std::size_t m) {
    // Per-worker, per-micro-batch arena: each fused forward (and any
    // bisection retries) draws from the configured arena (the shard pool
    // when sharded) or the executing worker's thread pool, so workers
    // recycle independently and consecutive ticks re-serve the previous
    // tick's blocks.
    alloc::ArenaScope arena(
        cfg_.arena ? cfg_.arena
                   : (alloc::pooling_enabled() ? alloc::thread_pool()
                                               : alloc::AllocatorPtr{}));
    const std::size_t lo = m * max_batch;
    const std::size_t hi = std::min(n, lo + max_batch);
    ++per_mb[m].micro_batches;
    serve_span(net, items, lo, hi, out, per_mb[m]);
  };

  const int workers = std::max(1, cfg_.workers);
  if (workers == 1 || num_mb == 1) {
    for (std::size_t m = 0; m < num_mb; ++m) serve_mb(m);
  } else {
    // Replica fan-out: at most `workers` micro-batches in flight (grain
    // bounds the chunk count); each worker writes only its own disjoint
    // out/per_mb slots.  Kernels inside the forwards run inline per worker
    // (nested parallel_for), so the fan-out owns the pool.
    const auto grain = static_cast<index_t>(
        (num_mb + static_cast<std::size_t>(workers) - 1) /
        static_cast<std::size_t>(workers));
    parallel_for(0, static_cast<index_t>(num_mb), std::max<index_t>(1, grain),
                 [&](index_t mlo, index_t mhi) {
                   for (index_t m = mlo; m < mhi; ++m) {
                     serve_mb(static_cast<std::size_t>(m));
                   }
                 });
  }

  BatchRunStats total;
  for (const BatchRunStats& s : per_mb) total.merge(s);
  if (stats) *stats = total;

  for (std::size_t i = 0; i < n; ++i) {
    FASTCHG_CHECK(out[i] != nullptr, "micro-batch left reply " << i << " unset");
    replies.push_back(std::move(*out[i]));
  }
  return replies;
}

}  // namespace fastchg::serve
