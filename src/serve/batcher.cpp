#include "serve/batcher.hpp"

#include <algorithm>
#include <sstream>

#include "core/alloc.hpp"
#include "core/parallel_for.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"
#include "serve/watchdog.hpp"

namespace fastchg::serve {

Prediction unpack_structure(const model::ModelOutput& out,
                            const data::Batch& b, index_t s) {
  const index_t n = b.natoms[static_cast<std::size_t>(s)];
  const index_t a0 = b.atom_first[static_cast<std::size_t>(s)];
  Prediction p;
  p.energy =
      static_cast<double>(out.energy_per_atom.value().data()[s]) *
      static_cast<double>(n);
  p.forces.resize(static_cast<std::size_t>(n));
  const float* f = out.forces.value().data();
  for (index_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      p.forces[static_cast<std::size_t>(i)][d] =
          static_cast<double>(f[(a0 + i) * 3 + d]);
    }
  }
  const float* st = out.stress.value().data();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      p.stress[i][j] = static_cast<double>(st[s * 9 + i * 3 + j]);
    }
  }
  if (out.magmom.defined()) {
    const float* mm = out.magmom.value().data();
    p.magmom.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      p.magmom[static_cast<std::size_t>(i)] = static_cast<double>(mm[a0 + i]);
    }
  }
  return p;
}

void MicroBatcher::serve_span(
    const model::CHGNet& net, const std::vector<BatchItem>& items,
    std::size_t lo, std::size_t hi,
    std::vector<std::unique_ptr<Result<Prediction>>>& out,
    BatchRunStats& stats) const {
  std::vector<const data::Sample*> samples;
  std::vector<std::size_t> ids;
  samples.reserve(hi - lo);
  ids.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    samples.push_back(items[i].sample.get());
    ids.push_back(items[i].request_id);
  }

  data::Batch b;
  {
    perf::TraceSpan span("serve.batch.collate", "serve");
    b = data::collate(samples, /*with_labels=*/false);
  }
  if (cfg_.corrupt_batch) cfg_.corrupt_batch(b, ids);

  model::ModelOutput mo;
  bool fault = false;
  std::string msg;
  try {
    perf::TraceSpan span("serve.batch.forward", "serve");
    mo = net.forward(b, model::ForwardMode::kEval);
    perf::TraceSpan span_wd("serve.batch.watchdog", "serve");
    if (auto w = check_output(mo); !w.ok()) {
      fault = true;
      msg = w.error().message;
    }
  } catch (const Error& e) {
    // Inputs were validated upstream, so a throw here is a serving-side
    // fault (graph/forward invariant), not a bad request.
    fault = true;
    msg = std::string("forward failed: ") + e.what();
  }

  if (!fault) {
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = std::make_unique<Result<Prediction>>(
          unpack_structure(mo, b, static_cast<index_t>(i - lo)));
    }
    stats.served += hi - lo;
    return;
  }

  if (hi - lo == 1) {
    ++stats.isolated_faults;
    perf::count_event("serve.batch.isolated");
    std::ostringstream os;
    os << msg << " (request " << ids[0] << ", isolated by batch bisection)";
    out[lo] = std::make_unique<Result<Prediction>>(
        Result<Prediction>::failure(ErrorCode::kNumericFault, os.str()));
    return;
  }

  // A poisoned structure somewhere in [lo, hi): bisect until it is alone.
  // Structures in a disjoint union never interact, so the clean halves
  // reproduce their fused outputs exactly.
  ++stats.bisections;
  perf::count_event("serve.batch.bisect");
  perf::TraceSpan span("serve.batch.bisect", "serve");
  const std::size_t mid = lo + (hi - lo) / 2;
  serve_span(net, items, lo, mid, out, stats);
  serve_span(net, items, mid, hi, out, stats);
}

std::vector<Result<Prediction>> MicroBatcher::run(
    const model::CHGNet& net, const std::vector<BatchItem>& items,
    BatchRunStats* stats) const {
  const std::size_t n = items.size();
  std::vector<Result<Prediction>> replies;
  replies.reserve(n);
  if (n == 0) {
    if (stats) *stats = BatchRunStats{};
    return replies;
  }

  const std::size_t max_batch =
      cfg_.max_batch < 1 ? 1 : static_cast<std::size_t>(cfg_.max_batch);
  const std::size_t num_mb = (n + max_batch - 1) / max_batch;

  // unique_ptr slots because Result has no default construction; every slot
  // is filled exactly once by the worker owning its micro-batch.
  std::vector<std::unique_ptr<Result<Prediction>>> out(n);
  std::vector<BatchRunStats> per_mb(num_mb);

  const auto serve_mb = [&](std::size_t m) {
    // Per-worker, per-micro-batch arena: each fused forward (and any
    // bisection retries) draws from the configured arena (the shard pool
    // when sharded) or the executing worker's thread pool, so workers
    // recycle independently and consecutive ticks re-serve the previous
    // tick's blocks.
    alloc::ArenaScope arena(
        cfg_.arena ? cfg_.arena
                   : (alloc::pooling_enabled() ? alloc::thread_pool()
                                               : alloc::AllocatorPtr{}));
    const std::size_t lo = m * max_batch;
    const std::size_t hi = std::min(n, lo + max_batch);
    ++per_mb[m].micro_batches;
    serve_span(net, items, lo, hi, out, per_mb[m]);
  };

  const int workers = std::max(1, cfg_.workers);
  if (workers == 1 || num_mb == 1) {
    for (std::size_t m = 0; m < num_mb; ++m) serve_mb(m);
  } else {
    // Replica fan-out: at most `workers` micro-batches in flight (grain
    // bounds the chunk count); each worker writes only its own disjoint
    // out/per_mb slots.  Kernels inside the forwards run inline per worker
    // (nested parallel_for), so the fan-out owns the pool.
    const auto grain = static_cast<index_t>(
        (num_mb + static_cast<std::size_t>(workers) - 1) /
        static_cast<std::size_t>(workers));
    parallel_for(0, static_cast<index_t>(num_mb), std::max<index_t>(1, grain),
                 [&](index_t mlo, index_t mhi) {
                   for (index_t m = mlo; m < mhi; ++m) {
                     serve_mb(static_cast<std::size_t>(m));
                   }
                 });
  }

  BatchRunStats total;
  for (const BatchRunStats& s : per_mb) total.merge(s);
  if (stats) *stats = total;

  for (std::size_t i = 0; i < n; ++i) {
    FASTCHG_CHECK(out[i] != nullptr, "micro-batch left reply " << i << " unset");
    replies.push_back(std::move(*out[i]));
  }
  return replies;
}

}  // namespace fastchg::serve
