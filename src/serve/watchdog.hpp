// Numeric watchdogs for the serving layer.
//
// FastCHGNet's decoupled Force/Stress heads mean forces are *not* guaranteed
// to be conservative derivatives of the energy, so a poisoned weight or an
// out-of-distribution structure can emit non-finite or exploding outputs
// that silently corrupt a whole MD trajectory.  These helpers catch that at
// the single place every prediction flows through:
//   * check_output       -- per-forward non-finite energy/force/stress scan
//   * EnergyDriftMonitor -- per-step total-energy change bound for MD
//   * OscillationDetector-- relax step-size thrash detection
// (the force-explosion guard is a plain threshold in MDConfig; see md.hpp).
#pragma once

#include <deque>

#include "chgnet/model.hpp"
#include "serve/error.hpp"

namespace fastchg::serve {

/// True when every element of a defined tensor is finite (an undefined
/// tensor is vacuously finite -- absence is checked separately).
bool tensor_finite(const Tensor& t);

/// Check that the heads the serving layer consumes are present and finite.
/// kNumericFault names the offending field in the message.
Result<void> check_output(const model::ModelOutput& out);

/// MD watchdog: bounds the per-step total-energy change (eV/atom).  In NVE
/// the velocity-Verlet step conserves energy to O(dt^2); a jump beyond the
/// bound means the trajectory left the physical regime (bad forces, dt too
/// large) and the integrator should back off before the state is committed.
class EnergyDriftMonitor {
 public:
  EnergyDriftMonitor() = default;
  /// max_step_drift <= 0 disables the monitor (admissible() always true).
  EnergyDriftMonitor(double max_step_drift_per_atom, index_t natoms);

  void reset(double e_total);
  bool enabled() const { return max_step_ > 0.0 && natoms_ > 0; }
  /// Would committing `e_total` as the next step stay within the bound?
  bool admissible(double e_total) const;
  /// Commit the accepted step's total energy.
  void accept(double e_total);
  /// |E - E0| per atom since reset (diagnostic only, never trips).
  double cumulative_drift_per_atom() const;
  double step_drift_per_atom(double e_total) const;

 private:
  double max_step_ = 0.0;
  index_t natoms_ = 0;
  bool has_ref_ = false;
  double e0_ = 0.0;
  double e_prev_ = 0.0;
};

/// Relax watchdog: detects step-size thrash -- the line search alternating
/// accept/reject around a point it cannot improve.  Feed every iteration's
/// (accepted, energy) pair; fires when a full window shows at least half
/// rejections and relative energy progress below `min_progress`.
class OscillationDetector {
 public:
  explicit OscillationDetector(index_t window = 8,
                               double min_progress = 1e-10);

  /// Record one iteration; true when oscillation is detected.
  bool push(bool accepted, double energy);
  void reset();

 private:
  index_t window_;
  double min_progress_;
  std::deque<std::pair<bool, double>> recent_;
};

}  // namespace fastchg::serve
