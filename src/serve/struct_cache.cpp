#include "serve/struct_cache.hpp"

#include <cstring>

#include "data/graph.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::serve {

namespace {

void append_bytes(std::string& out, const void* p, std::size_t n) {
  out.append(static_cast<const char*>(p), n);
}

void append_double(std::string& out, double v) {
  // +0.0 and -0.0 collate identically (they produce identical geometry);
  // canonicalize so the byte key agrees.
  if (v == 0.0) v = 0.0;
  append_bytes(out, &v, sizeof(v));
}

}  // namespace

std::string StructureCache::fingerprint(const data::Crystal& c,
                                        const data::GraphConfig& graph) {
  std::string key;
  const std::size_t n = c.frac.size();
  key.reserve(16 + 9 * sizeof(double) + n * (sizeof(index_t) + 3 * sizeof(double)));
  const index_t natoms = c.natoms();
  append_bytes(key, &natoms, sizeof(natoms));
  append_double(key, graph.atom_cutoff);
  append_double(key, graph.bond_cutoff);
  for (const auto& row : c.lattice) {
    for (double v : row) append_double(key, v);
  }
  for (index_t z : c.species) append_bytes(key, &z, sizeof(z));
  // Wrapped fractionals: the whole geometry pipeline (neighbor lists,
  // collation) runs on the canonical [0,1) image, so the key matches what
  // the model actually sees.  Out-of-cell copies of a structure key
  // identically whenever the wrap is exact in floating point; when it is
  // not, the wrapped geometries (and thus the forwards) genuinely differ in
  // the low bits, so keying them apart is the safe direction.
  for (const auto& f : c.frac) {
    const data::Vec3 w = data::wrap_frac(f);
    for (double v : w) append_double(key, v);
  }
  return key;
}

std::shared_ptr<const data::Sample> build_sample(
    const data::Crystal& c, const data::GraphConfig& graph) {
  auto s = std::make_shared<data::Sample>();
  s->crystal = c;
  s->graph = data::build_graph(c, graph);
  return s;
}

StructureCache::StructureCache(std::size_t capacity, data::GraphConfig graph,
                               bool cache_results)
    : capacity_(capacity), graph_(graph), cache_results_(cache_results) {}

StructureCache::Lookup StructureCache::lookup(const data::Crystal& c) {
  perf::TraceSpan span("serve.cache.lookup", "serve");
  ++stats_.lookups;
  Lookup out;
  out.key = fingerprint(c, graph_);
  if (capacity_ == 0) {
    ++stats_.misses;
    perf::count_event("serve.cache.miss");
    out.sample = build_sample(c, graph_);
    return out;
  }
  auto it = entries_.find(out.key);
  if (it != entries_.end()) {
    ++stats_.hits;
    perf::count_event("serve.cache.hit");
    lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
    out.sample = it->second->sample;
    if (cache_results_ && it->second->result) {
      ++stats_.result_hits;
      perf::count_event("serve.cache.result_hit");
      out.result = it->second->result;
    }
    return out;
  }

  ++stats_.misses;
  perf::count_event("serve.cache.miss");
  out.sample = build_sample(c, graph_);
  lru_.push_front(Entry{out.key, out.sample, nullptr});
  entries_[out.key] = lru_.begin();
  if (entries_.size() > capacity_) {
    ++stats_.evictions;
    perf::count_event("serve.cache.evict");
    entries_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return out;
}

void StructureCache::store_result(const std::string& key,
                                  const Prediction& p) {
  if (!cache_results_ || capacity_ == 0) return;
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // evicted between lookup and store
  it->second->result = std::make_shared<Prediction>(p);
}

bool StructureCache::contains(const data::Crystal& c) const {
  return entries_.count(fingerprint(c, graph_)) > 0;
}

}  // namespace fastchg::serve
