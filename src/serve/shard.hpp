// One engine shard of the sharded serving front-end (serve/router.hpp).
//
// A shard is a replication unit: its own InferenceEngine (admission queue,
// micro-batcher, structure cache, optional int8 replica), its own
// PoolAllocator -- every tensor allocation of the shard's traffic recycles
// through shard-local slabs (PR 5's arenas make this cheap) -- and a health
// state driven by a watchdog over the engine's own counters:
//
//            watchdog: numeric-fault burst            fault plan / trip()
//   +----------+  ------------------------>  . . . . . . . . . . .
//   | kHealthy | <------------------------   any live state can trip
//   +----------+   clean ticks elapse
//        ^  \
//        |   `--[trip]--> +-----------+        +-------+        +-----------+
//        |                | kDraining | -----> | kDead | -----> | kDegraded |
//        |                +-----------+ tick   +-------+ after  +-----------+
//        |             (queue failed over      restart_ticks     (cold-cache
//        |              to sibling shards)                        rejoin)
//        +-------------------------------------------------------------+
//                              rejoin ticks elapse
//
// The watchdog escalates: one burst tick degrades, a burst *sustained* for
// trip_burst_ticks consecutive ticks latches an auto-trip that the router
// converts into the same kDraining path a planned fault takes -- the
// closed loop from fault detection back into the failover machinery.
//
// kHealthy and kDegraded are routable; kDraining and kDead are not.  A trip
// surrenders the engine's queued backlog (InferenceEngine::take_queue) so
// the router can fail it over, then the shard sits dead for `restart_ticks`
// router ticks and restarts: a *new* engine with a cold cache, while the
// shard's pool and its lifetime statistics survive.  Counter reconciliation
// across restarts is exact -- the retiring engine's EngineStats/CacheStats
// are folded into retired accumulators before destruction, so fleet-wide
// `lookups == hits + misses` holds through any number of failovers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/alloc.hpp"
#include "serve/engine.hpp"

namespace fastchg::serve {

/// Health states (docs/serving.md).  Routable: kHealthy, kDegraded.
enum class ShardHealth { kHealthy, kDegraded, kDraining, kDead };

inline const char* to_string(ShardHealth h) {
  switch (h) {
    case ShardHealth::kHealthy:  return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kDraining: return "draining";
    case ShardHealth::kDead:     return "dead";
  }
  return "unknown";
}

struct ShardConfig {
  EngineConfig engine;
  /// Router ticks a tripped shard stays dead before restarting.
  int restart_ticks = 2;
  /// Ticks a restarted shard reports kDegraded (cold-cache rejoin) before
  /// returning to kHealthy.  It is routable throughout.
  int rejoin_ticks = 1;
  /// Watchdog: numeric faults observed in one tick at or above this mark
  /// the shard kDegraded for `rejoin_ticks` (0 disables the watchdog).
  std::uint64_t degrade_fault_threshold = 0;
  /// Closed-loop trip: after this many *consecutive* watchdog-burst ticks
  /// (each at or above degrade_fault_threshold) the shard latches
  /// auto_trip_pending(); the router converts that into an ordinary fault
  /// trip -- kDraining -> kDead -> restart -> cold-cache rejoin -- on the
  /// same tick, so a persistently faulting shard takes itself out of
  /// rotation instead of degrading forever.  0 disables (degrade-only);
  /// needs degrade_fault_threshold > 0 to ever fire.
  int trip_burst_ticks = 0;
  /// Watermark pool trim between ticks: keep slabs within the tick's live
  /// high water plus this slack (docs/memory.md).  SIZE_MAX disables.
  std::size_t pool_trim_slack = std::size_t{1} << 20;
};

class EngineShard {
 public:
  /// `net` must outlive the shard (all shards serve replicas of one model).
  EngineShard(int id, const model::CHGNet& net, ShardConfig cfg);

  int id() const { return id_; }
  ShardHealth health() const { return health_; }
  bool routable() const {
    return health_ == ShardHealth::kHealthy ||
           health_ == ShardHealth::kDegraded;
  }

  /// The live engine.  Valid in every health state (a dead shard's engine
  /// still answers stats queries; the router stops routing to it).
  InferenceEngine& engine() { return *engine_; }
  const InferenceEngine& engine() const { return *engine_; }

  /// Enqueue on this shard's engine under its arena.
  Result<std::size_t> submit(data::Crystal c, double deadline_ms = -1);
  /// Serve the shard's queue under its arena (one shard tick of work).
  std::vector<Result<Prediction>> drain();

  /// Fault trip: transition to kDraining and surrender the queued backlog
  /// for failover.  No-op (empty result) when already draining or dead.
  std::vector<QueuedRequest> trip();

  /// Advance the health state machine by one router tick: kDraining ->
  /// kDead, dead countdown -> restart (cold cache) -> kDegraded rejoin ->
  /// kHealthy; run the fault watchdog over the tick's counter deltas; trim
  /// the pool to the watermark.  Returns true when this tick restarted the
  /// engine.
  bool tick();

  /// Lifetime tallies: the live engine's counters plus every retired
  /// incarnation's.  Reconciliation invariants hold fleet-wide.
  EngineStats lifetime_stats() const;
  CacheStats lifetime_cache_stats() const;

  std::uint64_t restarts() const { return restarts_; }
  std::uint64_t trips() const { return trips_; }
  /// Watchdog escalations: bursts sustained for trip_burst_ticks.  The
  /// flag latches until the next trip() (normally the router's, on the
  /// tick that raised it); the counter is a lifetime tally.
  bool auto_trip_pending() const { return auto_trip_pending_; }
  std::uint64_t auto_trips() const { return auto_trips_; }
  const alloc::PoolAllocator& pool() const { return *pool_; }

 private:
  void restart_engine();

  int id_;
  const model::CHGNet& net_;
  ShardConfig cfg_;
  std::shared_ptr<alloc::PoolAllocator> pool_;
  std::unique_ptr<InferenceEngine> engine_;
  ShardHealth health_ = ShardHealth::kHealthy;
  int dead_ticks_left_ = 0;
  int degraded_ticks_left_ = 0;
  std::uint64_t restarts_ = 0;
  std::uint64_t trips_ = 0;
  // Accumulated counters of retired engine incarnations (restart
  // reconciliation), and the watchdog's delta base over the live engine.
  EngineStats retired_stats_;
  CacheStats retired_cache_;
  std::uint64_t last_numeric_faults_ = 0;
  int burst_streak_ = 0;  ///< consecutive watchdog-burst ticks
  bool auto_trip_pending_ = false;
  std::uint64_t auto_trips_ = 0;
};

}  // namespace fastchg::serve
