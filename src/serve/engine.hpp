// Robust inference engine: the serving-side wrapper around model::CHGNet.
//
// Every request flows through the same pipeline (docs/serving.md):
//
//   admission -> validation -> [injected-fault retry loop] -> cache lookup
//            -> fused micro-batch forward -> numeric watchdog / bisection
//            -> (quantized -> fp32 degradation) -> reply
//
// and every exit is a typed Result: success (possibly flagged degraded or
// cached), or kInvalidInput / kNumericFault / kTimeout / kOverloaded /
// kDegraded.  No request -- however malformed -- may crash the process or
// return a silent NaN.
//
// The queued path (`submit` + `drain`) is dynamically micro-batched: each
// tick drains up to `max_batch` admitted requests into one disjoint-union
// data::Batch and runs a single fused forward (serve/batcher.hpp), with
// independent micro-batches fanned out across `batch_workers` replica
// workers and a structure-fingerprint LRU cache (serve/struct_cache.hpp)
// short-circuiting graph construction -- and, for exact repeats, the whole
// forward.  A numeric fault inside a fused batch is bisected so only the
// poisoned request fails.  `predict` stays the synchronous single-request
// path (also the reference the equivalence tests compare against).
//
// Transient device faults are injected through parallel::FaultInjector so
// serving robustness is testable under the same seeded FaultPlans as the
// distributed trainer: request index plays the role of the plan's iteration
// on device 0.  kDeviceFailure events become transient faults retried with
// exponential backoff; kStraggler factors inflate the simulated latency and
// count against the request deadline.
#pragma once

#include <deque>
#include <memory>

#include "chgnet/model.hpp"
#include "core/alloc.hpp"
#include "fastchgnet/quantize.hpp"
#include "parallel/fault.hpp"
#include "perf/timer.hpp"
#include "serve/batcher.hpp"
#include "serve/prediction.hpp"
#include "serve/struct_cache.hpp"
#include "serve/validate.hpp"
#include "serve/watchdog.hpp"

namespace fastchg::serve {

struct EngineConfig {
  ValidationLimits limits;
  data::GraphConfig graph;
  /// Serve an int8 round-tripped replica of the model; the fp32 original is
  /// retained and any numeric fault on the quantized path falls back to it
  /// (counted, and flagged degraded on the reply).
  bool quantize = false;
  /// Strict mode: a reply that only exists via a degraded path becomes a
  /// kDegraded error instead of a flagged success.
  bool strict = false;

  // Admission control.
  std::size_t queue_capacity = 64;    ///< bounded request queue
  double default_deadline_ms = 1e12;  ///< per-request wall budget

  // Dynamic micro-batching (queued path).
  index_t max_batch = 8;   ///< structures fused per forward tick (>= 1)
  int batch_workers = 1;   ///< max concurrently executing micro-batches

  // Recorded-step replay of fused forwards (core/replay.hpp; also gated
  // globally by FASTCHG_REPLAY).  Forwarded to the micro-batcher.
  bool replay = true;
  std::size_t replay_capacity = 16;

  // Structure-fingerprint LRU cache (queued path; 0 disables).
  std::size_t cache_capacity = 0;
  bool cache_results = true;  ///< replay full replies for exact repeats

  // Retry policy for injected transient device faults.
  int max_retries = 3;
  double backoff_base_ms = 0.5;  ///< attempt k sleeps base * 2^k (simulated)
  /// Simulated per-forward device latency the straggler factor scales; the
  /// measured wall time is added on top when checking deadlines.
  double base_latency_ms = 0.0;

  /// Allocator the engine's arenas install (nullptr = the executing
  /// thread's default pool).  A sharded deployment points every engine at
  /// its shard's private PoolAllocator so replica construction, graph
  /// builds, cache entries and fused forwards all recycle through shard-
  /// local slabs (serve/shard.hpp).
  alloc::AllocatorPtr arena;

  /// Fault-injection seam forwarded to the micro-batcher (tests/benches):
  /// mutate a collated batch before its fused forward, addressed by the
  /// tick-local request slots.  Never set in production.
  std::function<void(data::Batch&, const std::vector<std::size_t>&)>
      corrupt_batch;
};

/// A request sitting in the admission queue, as surrendered by take_queue()
/// for shard failover: the crystal plus its remaining deadline budget.  The
/// queue-wait clock restarts on re-submission (failover re-arms the wait).
struct QueuedRequest {
  data::Crystal crystal;
  double deadline_ms = 0.0;
};

/// Monotonic per-engine tallies (perf::counters mirrors the fallbacks
/// globally; these stay attributable when several engines coexist).
struct EngineStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;            ///< successful replies
  std::uint64_t degraded = 0;          ///< served via fp32 fallback
  std::uint64_t cached = 0;            ///< replayed from the result cache
  std::uint64_t rejected_invalid = 0;  ///< kInvalidInput
  std::uint64_t numeric_faults = 0;    ///< kNumericFault replies
  std::uint64_t timeouts = 0;          ///< kTimeout replies
  std::uint64_t overloaded = 0;        ///< kOverloaded replies
  std::uint64_t retries = 0;           ///< transient-fault attempts retried
  std::uint64_t micro_batches = 0;     ///< fused forwards dispatched
  std::uint64_t bisections = 0;        ///< poisoned-batch splits
  std::uint64_t isolated_faults = 0;   ///< faults isolated to one request

  /// Fold another engine's tallies in (fleet-wide aggregation across shards
  /// and retired engine incarnations after shard restarts).
  void merge(const EngineStats& o) {
    submitted += o.submitted;
    served += o.served;
    degraded += o.degraded;
    cached += o.cached;
    rejected_invalid += o.rejected_invalid;
    numeric_faults += o.numeric_faults;
    timeouts += o.timeouts;
    overloaded += o.overloaded;
    retries += o.retries;
    micro_batches += o.micro_batches;
    bisections += o.bisections;
    isolated_faults += o.isolated_faults;
  }
};

class InferenceEngine {
 public:
  /// `net` must outlive the engine.  With cfg.quantize the engine clones the
  /// parameters into an int8 round-tripped replica at construction.
  InferenceEngine(const model::CHGNet& net, EngineConfig cfg = {});

  /// Validate and serve one structure synchronously.  `deadline_ms` < 0
  /// uses the config default.  Single-request reference path: no batching,
  /// no cache.
  Result<Prediction> predict(const data::Crystal& c, double deadline_ms = -1);

  // -- Admission-controlled queue interface ----------------------------
  /// Enqueue a request; kOverloaded immediately when the queue is full.
  /// On success returns the request's queue ticket.
  Result<std::size_t> submit(data::Crystal c, double deadline_ms = -1);
  /// Serve all queued requests FIFO through the micro-batched pipeline
  /// (fused forwards of up to max_batch, replica workers, structure cache).
  /// A request whose deadline expired while it sat in the queue is answered
  /// kTimeout without touching the model.  With max_batch <= 1 and the
  /// cache off this degenerates to the serial per-request pipeline.
  std::vector<Result<Prediction>> drain();
  std::size_t queue_depth() const { return queue_.size(); }
  /// Surrender the admission queue (FIFO order) without serving it: the
  /// shard-failover path hands a tripped engine's backlog to its siblings.
  /// Counts nothing -- the receiving engine accounts the re-submission.
  std::vector<QueuedRequest> take_queue();

  /// Inject transient device faults from a seeded plan (nullptr = none).
  /// The plan must outlive the engine or the next set_fault_plan call.
  void set_fault_plan(const parallel::FaultPlan* plan);

  const EngineStats& stats() const { return stats_; }
  const EngineConfig& config() const { return cfg_; }
  /// Structure-fingerprint cache behind the queued path (hit/miss/eviction
  /// tallies; capacity 0 when disabled).
  const StructureCache& cache() const { return cache_; }
  /// Mutable access for the shard-restart reconciliation path
  /// (StructureCache::snapshot_and_reset).
  StructureCache& cache() { return cache_; }
  /// Quantization report of the int8 replica (zeros when quantize = false).
  const model::QuantizationReport& quantization_report() const {
    return quant_report_;
  }
  /// The int8-round-tripped replica (nullptr when quantize = false).
  /// Exposed for diagnostics and fault-injection tests.
  model::CHGNet* quantized_replica() { return replica_.get(); }
  /// Replay program cache behind the queued path's fused forwards.
  const replay::ProgramCache& replay_cache() const {
    return batcher_.replay_cache();
  }

 private:
  /// One forward through `m` plus the numeric watchdog.
  Result<Prediction> forward_checked(const model::CHGNet& m,
                                     const data::Crystal& c) const;
  /// The allocator engine arenas install: cfg_.arena, else the thread pool.
  alloc::AllocatorPtr arena_alloc() const;
  Result<Prediction> serve_one(const data::Crystal& c, double deadline_ms,
                               double queued_ms);
  std::vector<Result<Prediction>> drain_serial();
  std::vector<Result<Prediction>> drain_batched();

  /// Admission, validation, and injected-fault handling shared by both
  /// drain paths.  On rejection fills `*reply`; on success returns the
  /// simulated pre-forward latency (backoff + stragglers) via `*sim_ms`
  /// and the retry count via `*retries`.
  bool admit(const data::Crystal& c, double deadline_ms, double waited_ms,
             double* sim_ms, int* retries,
             std::unique_ptr<Result<Prediction>>* reply);

  struct Queued {
    data::Crystal crystal;
    double deadline_ms;
    perf::Timer enqueued;
  };

  const model::CHGNet& net_;
  EngineConfig cfg_;
  std::unique_ptr<model::CHGNet> replica_;  ///< int8 round-tripped copy
  model::QuantizationReport quant_report_;
  parallel::FaultInjector injector_{nullptr};
  index_t request_seq_ = 0;  ///< fault-plan "iteration" of the next request
  std::deque<Queued> queue_;
  StructureCache cache_;
  MicroBatcher batcher_;
  EngineStats stats_;
};

}  // namespace fastchg::serve
