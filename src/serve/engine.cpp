#include "serve/engine.hpp"

#include <cmath>
#include <sstream>

#include "core/alloc.hpp"
#include "data/batch.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::serve {

InferenceEngine::InferenceEngine(const model::CHGNet& net, EngineConfig cfg)
    : net_(net),
      cfg_(cfg),
      cache_(cfg.cache_capacity, cfg.graph, cfg.cache_results),
      batcher_([&] {
        MicroBatcher::Config bc;
        bc.max_batch = cfg.max_batch < 1 ? index_t{1} : cfg.max_batch;
        bc.workers = cfg.batch_workers;
        bc.arena = cfg.arena;
        bc.corrupt_batch = cfg.corrupt_batch;
        bc.replay = cfg.replay;
        bc.replay_capacity = cfg.replay_capacity;
        return bc;
      }()) {
  if (cfg_.quantize) {
    // Replica parameters (clones + round-tripped tensors) draw from the
    // engine's arena so a shard restart re-quantizes out of warm shard
    // slabs instead of the system allocator.
    alloc::ArenaScope arena(arena_alloc());
    replica_ = std::make_unique<model::CHGNet>(net.config(), /*seed=*/0);
    replica_->copy_parameters_from(net);
    if (net.has_atom_ref()) {
      replica_->set_atom_ref(net.atom_ref().to_vector());
    }
    quant_report_ = model::quantize_for_inference(*replica_);
  }
}

alloc::AllocatorPtr InferenceEngine::arena_alloc() const {
  if (cfg_.arena) return cfg_.arena;
  return alloc::pooling_enabled() ? alloc::thread_pool()
                                  : alloc::AllocatorPtr{};
}

void InferenceEngine::set_fault_plan(const parallel::FaultPlan* plan) {
  injector_ = parallel::FaultInjector(plan);
}

Result<Prediction> InferenceEngine::forward_checked(
    const model::CHGNet& m, const data::Crystal& c) const {
  perf::TraceSpan span_fwd("serve.forward", "serve");
  // Request-scoped arena: graph build, collate and eval-mode forward all
  // recycle through the engine's arena (the shard pool when sharded, else
  // the serving thread's pool); a steady stream of same-shape requests
  // stops touching the system allocator after the first one (docs/memory.md).
  alloc::ArenaScope arena(arena_alloc());
  model::ModelOutput out;
  data::Batch b;
  try {
    auto sample = build_sample(c, cfg_.graph);
    b = data::collate({sample.get()}, /*with_labels=*/false);
    out = m.forward(b, model::ForwardMode::kEval);
  } catch (const Error& e) {
    // The request passed validation, so a throw here is a serving-side
    // fault (graph/forward invariant), not a bad request.
    return Result<Prediction>::failure(
        ErrorCode::kNumericFault, std::string("forward failed: ") + e.what());
  }
  {
    perf::TraceSpan span_wd("serve.watchdog", "serve");
    FASTCHG_SERVE_TRY(check_output(out));
  }
  return unpack_structure(out, b, 0);
}

bool InferenceEngine::admit(const data::Crystal& c, double deadline_ms,
                            double waited_ms, double* sim_ms, int* retries,
                            std::unique_ptr<Result<Prediction>>* reply) {
  {
    perf::TraceSpan span_val("serve.validate", "serve");
    if (auto v = validate_crystal(c, cfg_.limits); !v.ok()) {
      ++stats_.rejected_invalid;
      *reply = std::make_unique<Result<Prediction>>(v.error());
      return false;
    }
  }

  // Injected transient faults: this request maps to the plan's iteration
  // `seq` on device 0.  Each faulted attempt is retried after an
  // exponential backoff until the fault clears or retries run out.
  const index_t seq = request_seq_++;
  double sim = cfg_.base_latency_ms * injector_.compute_multiplier(0, seq);
  index_t pending = injector_.transient_failures_at(0, seq);
  int r = 0;
  while (pending > 0 && r < cfg_.max_retries) {
    sim += cfg_.backoff_base_ms * std::ldexp(1.0, r);
    ++r;
    --pending;
    ++stats_.retries;
    perf::count_event("serve.retry");
  }
  if (pending > 0) {
    ++stats_.overloaded;
    std::ostringstream os;
    os << "transient device fault persisted after " << r
       << " retry attempt(s) (request " << seq << ")";
    *reply = std::make_unique<Result<Prediction>>(
        Result<Prediction>::failure(ErrorCode::kOverloaded, os.str()));
    return false;
  }
  if (waited_ms + sim > deadline_ms) {
    ++stats_.timeouts;
    std::ostringstream os;
    os << "deadline " << deadline_ms << " ms exceeded before forward ("
       << waited_ms + sim << " ms elapsed)";
    *reply = std::make_unique<Result<Prediction>>(
        Result<Prediction>::failure(ErrorCode::kTimeout, os.str()));
    return false;
  }
  *sim_ms = sim;
  *retries = r;
  return true;
}

Result<Prediction> InferenceEngine::serve_one(const data::Crystal& c,
                                              double deadline_ms,
                                              double queued_ms) {
  perf::TraceSpan span_req("serve.request", "serve");
  perf::Timer timer;
  double simulated_ms = 0.0;
  int retries = 0;
  std::unique_ptr<Result<Prediction>> rejected;
  if (!admit(c, deadline_ms, queued_ms, &simulated_ms, &retries, &rejected)) {
    return std::move(*rejected);
  }
  const auto elapsed = [&] {
    return timer.millis() + simulated_ms + queued_ms;
  };

  // Forward on the serving path; a numeric fault on the quantized replica
  // degrades to the retained fp32 model instead of failing the request.
  bool degraded = false;
  Result<Prediction> r =
      forward_checked(replica_ ? *replica_ : net_, c);
  if (!r.ok() && r.code() == ErrorCode::kNumericFault && replica_) {
    perf::count_event("serve.fp32_fallback");
    degraded = true;
    r = forward_checked(net_, c);
  }
  if (!r.ok()) {
    ++stats_.numeric_faults;
    return r.error();
  }
  if (elapsed() > deadline_ms) {
    ++stats_.timeouts;
    std::ostringstream os;
    os << "deadline " << deadline_ms << " ms exceeded (" << elapsed()
       << " ms elapsed)";
    return Result<Prediction>::failure(ErrorCode::kTimeout, os.str());
  }
  if (degraded) {
    ++stats_.degraded;
    if (cfg_.strict) {
      return Result<Prediction>::failure(
          ErrorCode::kDegraded,
          "quantized path faulted; strict mode refuses the fp32 fallback "
          "reply");
    }
  }

  Prediction p = std::move(r).value();
  p.degraded = degraded;
  p.retries = retries;
  p.latency_ms = elapsed();
  ++stats_.served;
  return p;
}

Result<Prediction> InferenceEngine::predict(const data::Crystal& c,
                                            double deadline_ms) {
  ++stats_.submitted;
  const double deadline =
      deadline_ms < 0 ? cfg_.default_deadline_ms : deadline_ms;
  return serve_one(c, deadline, /*queued_ms=*/0.0);
}

Result<std::size_t> InferenceEngine::submit(data::Crystal c,
                                            double deadline_ms) {
  perf::TraceSpan span_adm("serve.admission", "serve");
  ++stats_.submitted;
  if (queue_.size() >= cfg_.queue_capacity) {
    ++stats_.overloaded;
    std::ostringstream os;
    os << "admission queue full (" << queue_.size() << "/"
       << cfg_.queue_capacity << ")";
    return Result<std::size_t>::failure(ErrorCode::kOverloaded, os.str());
  }
  const double deadline =
      deadline_ms < 0 ? cfg_.default_deadline_ms : deadline_ms;
  queue_.push_back(Queued{std::move(c), deadline, perf::Timer()});
  return queue_.size() - 1;
}

std::vector<QueuedRequest> InferenceEngine::take_queue() {
  std::vector<QueuedRequest> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    Queued q = std::move(queue_.front());
    queue_.pop_front();
    out.push_back(QueuedRequest{std::move(q.crystal), q.deadline_ms});
  }
  return out;
}

std::vector<Result<Prediction>> InferenceEngine::drain() {
  if (cfg_.max_batch > 1 || cfg_.cache_capacity > 0) return drain_batched();
  return drain_serial();
}

std::vector<Result<Prediction>> InferenceEngine::drain_serial() {
  std::vector<Result<Prediction>> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    Queued q = std::move(queue_.front());
    queue_.pop_front();
    const double waited_ms = q.enqueued.millis();
    if (waited_ms > q.deadline_ms) {
      ++stats_.timeouts;
      std::ostringstream os;
      os << "deadline " << q.deadline_ms << " ms expired in queue ("
         << waited_ms << " ms waited)";
      out.push_back(
          Result<Prediction>::failure(ErrorCode::kTimeout, os.str()));
      continue;
    }
    out.push_back(serve_one(q.crystal, q.deadline_ms, waited_ms));
  }
  return out;
}

std::vector<Result<Prediction>> InferenceEngine::drain_batched() {
  std::vector<Result<Prediction>> replies;
  replies.reserve(queue_.size());
  const std::size_t tick_cap =
      cfg_.max_batch < 1 ? 1 : static_cast<std::size_t>(cfg_.max_batch);

  while (!queue_.empty()) {
    perf::TraceSpan span_tick("serve.batch.tick", "serve");
    const std::size_t tick_n = std::min(queue_.size(), tick_cap);

    // A request that survives admission and misses the result cache.
    struct PendingReq {
      std::size_t slot;      ///< FIFO position within the tick
      data::Crystal crystal; ///< kept for the fp32 fallback re-forward
      double deadline_ms;
      double pre_ms;  ///< queue wait + simulated latency before the forward
      int retries;
      std::string key;  ///< cache fingerprint for store_result
    };
    std::vector<std::unique_ptr<Result<Prediction>>> out(tick_n);
    std::vector<PendingReq> pend;
    std::vector<BatchItem> items;
    pend.reserve(tick_n);
    items.reserve(tick_n);

    // Phase A (sequential): admission, validation, injected faults, cache.
    for (std::size_t t = 0; t < tick_n; ++t) {
      Queued q = std::move(queue_.front());
      queue_.pop_front();
      const double waited_ms = q.enqueued.millis();
      if (waited_ms > q.deadline_ms) {
        ++stats_.timeouts;
        std::ostringstream os;
        os << "deadline " << q.deadline_ms << " ms expired in queue ("
           << waited_ms << " ms waited)";
        out[t] = std::make_unique<Result<Prediction>>(
            Result<Prediction>::failure(ErrorCode::kTimeout, os.str()));
        continue;
      }
      double sim_ms = 0.0;
      int retries = 0;
      if (!admit(q.crystal, q.deadline_ms, waited_ms, &sim_ms, &retries,
                 &out[t])) {
        continue;
      }
      StructureCache::Lookup lk = cache_.lookup(q.crystal);
      if (lk.result) {
        // Exact repeat: replay the previous reply without a forward.
        Prediction p = *lk.result;
        p.cached = true;
        p.retries = retries;
        p.latency_ms = waited_ms + sim_ms;
        ++stats_.served;
        ++stats_.cached;
        out[t] = std::make_unique<Result<Prediction>>(std::move(p));
        continue;
      }
      items.push_back(BatchItem{std::move(lk.sample), t});
      pend.push_back(PendingReq{t, std::move(q.crystal), q.deadline_ms,
                                waited_ms + sim_ms, retries,
                                std::move(lk.key)});
    }

    // Phase B: one fused forward per tick (split across replica workers
    // when several micro-batches are pending), bisection on numeric faults.
    if (!pend.empty()) {
      perf::Timer fwd_timer;
      BatchRunStats bs;
      std::vector<Result<Prediction>> rs =
          batcher_.run(replica_ ? *replica_ : net_, items, &bs);
      stats_.micro_batches += bs.micro_batches;
      stats_.bisections += bs.bisections;
      stats_.isolated_faults += bs.isolated_faults;
      // The tick's forward wall time counts against every request in it.
      const double fwd_ms = fwd_timer.millis();

      // Phase C (sequential): degradation, deadlines, stats, cache store.
      for (std::size_t i = 0; i < pend.size(); ++i) {
        PendingReq& pr = pend[i];
        Result<Prediction> r = std::move(rs[i]);
        bool degraded = false;
        if (!r.ok() && r.code() == ErrorCode::kNumericFault && replica_) {
          perf::count_event("serve.fp32_fallback");
          degraded = true;
          r = forward_checked(net_, pr.crystal);
        }
        if (!r.ok()) {
          ++stats_.numeric_faults;
          out[pr.slot] = std::make_unique<Result<Prediction>>(r.error());
          continue;
        }
        const double elapsed = pr.pre_ms + fwd_ms;
        if (elapsed > pr.deadline_ms) {
          ++stats_.timeouts;
          std::ostringstream os;
          os << "deadline " << pr.deadline_ms << " ms exceeded (" << elapsed
             << " ms elapsed)";
          out[pr.slot] = std::make_unique<Result<Prediction>>(
              Result<Prediction>::failure(ErrorCode::kTimeout, os.str()));
          continue;
        }
        if (degraded) {
          ++stats_.degraded;
          if (cfg_.strict) {
            out[pr.slot] = std::make_unique<Result<Prediction>>(
                Result<Prediction>::failure(
                    ErrorCode::kDegraded,
                    "quantized path faulted; strict mode refuses the fp32 "
                    "fallback reply"));
            continue;
          }
        }
        Prediction p = std::move(r).value();
        p.degraded = degraded;
        p.retries = pr.retries;
        p.latency_ms = elapsed;
        cache_.store_result(pr.key, p);
        ++stats_.served;
        out[pr.slot] = std::make_unique<Result<Prediction>>(std::move(p));
      }
    }

    for (auto& slot : out) {
      FASTCHG_CHECK(slot != nullptr, "drain tick left a reply slot unset");
      replies.push_back(std::move(*slot));
    }
  }
  return replies;
}

}  // namespace fastchg::serve
