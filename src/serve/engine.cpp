#include "serve/engine.hpp"

#include <cmath>
#include <sstream>

#include "data/batch.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::serve {

InferenceEngine::InferenceEngine(const model::CHGNet& net, EngineConfig cfg)
    : net_(net), cfg_(cfg) {
  if (cfg_.quantize) {
    replica_ = std::make_unique<model::CHGNet>(net.config(), /*seed=*/0);
    replica_->copy_parameters_from(net);
    if (net.has_atom_ref()) {
      replica_->set_atom_ref(net.atom_ref().to_vector());
    }
    quant_report_ = model::quantize_for_inference(*replica_);
  }
}

void InferenceEngine::set_fault_plan(const parallel::FaultPlan* plan) {
  injector_ = parallel::FaultInjector(plan);
}

Result<Prediction> InferenceEngine::forward_checked(
    const model::CHGNet& m, const data::Crystal& c) const {
  perf::TraceSpan span_fwd("serve.forward", "serve");
  model::ModelOutput out;
  try {
    data::Dataset ds = data::Dataset::from_crystals({c}, cfg_.graph, {},
                                                    /*relabel=*/false);
    data::Batch b = data::collate_indices(ds, {0});
    out = m.forward(b, model::ForwardMode::kEval);
  } catch (const Error& e) {
    // The request passed validation, so a throw here is a serving-side
    // fault (graph/forward invariant), not a bad request.
    return Result<Prediction>::failure(
        ErrorCode::kNumericFault, std::string("forward failed: ") + e.what());
  }
  {
    perf::TraceSpan span_wd("serve.watchdog", "serve");
    FASTCHG_SERVE_TRY(check_output(out));
  }

  const index_t n = c.natoms();
  Prediction p;
  p.energy = static_cast<double>(out.energy_per_atom.value().data()[0]) *
             static_cast<double>(n);
  p.forces.resize(static_cast<std::size_t>(n));
  const float* f = out.forces.value().data();
  for (index_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      p.forces[static_cast<std::size_t>(i)][d] =
          static_cast<double>(f[i * 3 + d]);
    }
  }
  const float* s = out.stress.value().data();
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      p.stress[i][j] = static_cast<double>(s[i * 3 + j]);
    }
  }
  if (out.magmom.defined()) {
    const float* mm = out.magmom.value().data();
    p.magmom.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      p.magmom[static_cast<std::size_t>(i)] = static_cast<double>(mm[i]);
    }
  }
  return p;
}

Result<Prediction> InferenceEngine::serve_one(const data::Crystal& c,
                                              double deadline_ms,
                                              double queued_ms) {
  perf::TraceSpan span_req("serve.request", "serve");
  perf::Timer timer;
  double simulated_ms = 0.0;
  const auto elapsed = [&] {
    return timer.millis() + simulated_ms + queued_ms;
  };

  {
    perf::TraceSpan span_val("serve.validate", "serve");
    if (auto v = validate_crystal(c, cfg_.limits); !v.ok()) {
      ++stats_.rejected_invalid;
      return v.error();
    }
  }

  // Injected transient faults: this request maps to the plan's iteration
  // `seq` on device 0.  Each faulted attempt is retried after an
  // exponential backoff until the fault clears or retries run out.
  const index_t seq = request_seq_++;
  simulated_ms += cfg_.base_latency_ms * injector_.compute_multiplier(0, seq);
  index_t pending = injector_.transient_failures_at(0, seq);
  int retries = 0;
  while (pending > 0 && retries < cfg_.max_retries) {
    simulated_ms += cfg_.backoff_base_ms * std::ldexp(1.0, retries);
    ++retries;
    --pending;
    ++stats_.retries;
    perf::count_event("serve.retry");
  }
  if (pending > 0) {
    ++stats_.overloaded;
    std::ostringstream os;
    os << "transient device fault persisted after " << retries
       << " retry attempt(s) (request " << seq << ")";
    return Result<Prediction>::failure(ErrorCode::kOverloaded, os.str());
  }
  if (elapsed() > deadline_ms) {
    ++stats_.timeouts;
    std::ostringstream os;
    os << "deadline " << deadline_ms << " ms exceeded before forward ("
       << elapsed() << " ms elapsed)";
    return Result<Prediction>::failure(ErrorCode::kTimeout, os.str());
  }

  // Forward on the serving path; a numeric fault on the quantized replica
  // degrades to the retained fp32 model instead of failing the request.
  bool degraded = false;
  Result<Prediction> r =
      forward_checked(replica_ ? *replica_ : net_, c);
  if (!r.ok() && r.code() == ErrorCode::kNumericFault && replica_) {
    perf::count_event("serve.fp32_fallback");
    degraded = true;
    r = forward_checked(net_, c);
  }
  if (!r.ok()) {
    ++stats_.numeric_faults;
    return r.error();
  }
  if (elapsed() > deadline_ms) {
    ++stats_.timeouts;
    std::ostringstream os;
    os << "deadline " << deadline_ms << " ms exceeded (" << elapsed()
       << " ms elapsed)";
    return Result<Prediction>::failure(ErrorCode::kTimeout, os.str());
  }
  if (degraded) {
    ++stats_.degraded;
    if (cfg_.strict) {
      return Result<Prediction>::failure(
          ErrorCode::kDegraded,
          "quantized path faulted; strict mode refuses the fp32 fallback "
          "reply");
    }
  }

  Prediction p = std::move(r).value();
  p.degraded = degraded;
  p.retries = retries;
  p.latency_ms = elapsed();
  ++stats_.served;
  return p;
}

Result<Prediction> InferenceEngine::predict(const data::Crystal& c,
                                            double deadline_ms) {
  ++stats_.submitted;
  const double deadline =
      deadline_ms < 0 ? cfg_.default_deadline_ms : deadline_ms;
  return serve_one(c, deadline, /*queued_ms=*/0.0);
}

Result<std::size_t> InferenceEngine::submit(data::Crystal c,
                                            double deadline_ms) {
  perf::TraceSpan span_adm("serve.admission", "serve");
  ++stats_.submitted;
  if (queue_.size() >= cfg_.queue_capacity) {
    ++stats_.overloaded;
    std::ostringstream os;
    os << "admission queue full (" << queue_.size() << "/"
       << cfg_.queue_capacity << ")";
    return Result<std::size_t>::failure(ErrorCode::kOverloaded, os.str());
  }
  const double deadline =
      deadline_ms < 0 ? cfg_.default_deadline_ms : deadline_ms;
  queue_.push_back(Queued{std::move(c), deadline, perf::Timer()});
  return queue_.size() - 1;
}

std::vector<Result<Prediction>> InferenceEngine::drain() {
  std::vector<Result<Prediction>> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    Queued q = std::move(queue_.front());
    queue_.pop_front();
    const double waited_ms = q.enqueued.millis();
    if (waited_ms > q.deadline_ms) {
      ++stats_.timeouts;
      std::ostringstream os;
      os << "deadline " << q.deadline_ms << " ms expired in queue ("
         << waited_ms << " ms waited)";
      out.push_back(
          Result<Prediction>::failure(ErrorCode::kTimeout, os.str()));
      continue;
    }
    out.push_back(serve_one(q.crystal, q.deadline_ms, waited_ms));
  }
  return out;
}

}  // namespace fastchg::serve
