// Sharded serving front-end: a consistent-hash router over N EngineShards.
//
// This is the "millions of users" tier of the serving stack (ROADMAP): one
// InferenceEngine saturates at one admission queue and one structure cache,
// and -- worse -- is a single point of failure: a wedged engine takes every
// client with it.  The router replicates the engine into shards
// (serve/shard.hpp) and adds the three fleet-level behaviors a front-end
// owes its callers:
//
//   * Fingerprint-affinity routing.  The structure-cache geometry
//     fingerprint is hashed (FNV-1a) onto a consistent-hash ring with
//     `vnodes` virtual nodes per shard, so a repeated structure always
//     lands on the same shard and concentrates its cache hits there.
//     Adding or removing a shard remaps only ~1/N of the key space; every
//     other structure keeps its warm cache.
//
//   * Shard fault isolation + failover.  Shard faults are injected from the
//     same seeded parallel::FaultPlan the distributed trainer uses (device
//     index = shard id, iteration = router tick).  A tripped shard drains:
//     its queued backlog fails over to sibling shards (bounded attempts
//     with simulated backoff, replies flagged `rerouted`; with
//     strict_reroute the reply is a typed kDegraded instead), the shard
//     restarts with a cold cache after `restart_ticks`, and rejoins the
//     ring where its vnodes still sit.  Forwards are deterministic, so a
//     rerouted request's reply is bit-identical to its affinity shard's.
//
//   * Global load shedding.  When every routable shard's queue is at or
//     above `shed_watermark`, submit sheds with a typed kOverloaded
//     ("serve.shed") instead of queueing unboundedly -- per-shard admission
//     caps bound each queue, the watermark bounds the fleet.
//
// Virtual-time model: shards of a real deployment drain concurrently, so a
// router tick's simulated latency is the *maximum* of its shards' measured
// drain times (the same convention as the virtual GPU cluster in
// parallel/data_parallel.hpp), while wall time on this single process is
// their sum.  Benches report saturation throughput against simulated time.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "parallel/fault.hpp"
#include "serve/shard.hpp"

namespace fastchg::serve {

struct RouterConfig {
  ShardConfig shard;    ///< template for every shard (engine config inside)
  int num_shards = 1;   ///< initial shard count (>= 1)
  int vnodes = 64;      ///< virtual nodes per shard on the hash ring
  /// Global shed watermark: submit sheds (kOverloaded) when every routable
  /// shard's queue depth is at or above this.
  std::size_t shed_watermark = 48;
  /// Reroute budget: distinct sibling shards tried after the affinity shard
  /// refuses (dead, draining, or queue-full).
  int max_reroute_attempts = 2;
  /// Simulated backoff charged per reroute attempt (virtual time).
  double reroute_backoff_ms = 0.25;
  /// Strict affinity: instead of rerouting, answer a typed kDegraded when
  /// the affinity shard cannot take the request.
  bool strict_reroute = false;
  /// Seeded shard-fault schedule: kDeviceFailure(device=shard, iteration=
  /// tick) trips the shard at that router tick; kStraggler inflates the
  /// shard's simulated drain time.  nullptr = no faults.  The plan must
  /// outlive the router.
  const parallel::FaultPlan* fault_plan = nullptr;
};

struct RouterStats {
  std::uint64_t submitted = 0;        ///< submit() calls
  std::uint64_t routed = 0;           ///< accepted into some shard's queue
  std::uint64_t rerouted = 0;         ///< accepted off the affinity shard
  std::uint64_t shed = 0;             ///< global-watermark kOverloaded
  std::uint64_t strict_degraded = 0;  ///< typed kDegraded (strict_reroute)
  std::uint64_t failovers = 0;        ///< backlog requests re-homed by trips
  std::uint64_t failover_dropped = 0; ///< backlog with no sibling capacity
  std::uint64_t trips = 0;            ///< shard fault trips
  std::uint64_t auto_trips = 0;       ///< watchdog-escalated trips (subset)
  std::uint64_t restarts = 0;         ///< shard cold-cache restarts
  std::uint64_t ticks = 0;            ///< drain() calls
  double sim_backoff_ms = 0.0;        ///< accumulated reroute backoff
  double sim_ms_total = 0.0;          ///< sum of per-tick simulated times
  double last_tick_sim_ms = 0.0;      ///< max shard drain time, last tick
};

class ShardRouter {
 public:
  /// `net` must outlive the router; every shard serves a replica of it.
  ShardRouter(const model::CHGNet& net, RouterConfig cfg);

  /// Route one request to its affinity shard (failing over to siblings as
  /// configured).  Success returns a router-global request id; replies from
  /// drain() come back ordered by it.  Failures are typed: kOverloaded
  /// (shed / no capacity / no routable shard), kDegraded (strict_reroute),
  /// or the shard engine's own admission rejections.
  Result<std::size_t> submit(data::Crystal c, double deadline_ms = -1);

  /// One router tick: inject scheduled shard faults, convert latched
  /// watchdog auto-trips into fault trips, fail over tripped shards'
  /// backlogs, drain every routable shard, advance each shard's health
  /// machine, and return the tick's replies in submission order.
  std::vector<Result<Prediction>> drain();

  // -- Elastic scaling --------------------------------------------------
  /// Add a shard live; only ~1/(N+1) of the key space re-homes onto it.
  /// Returns the new shard's id.
  int add_shard();
  /// Remove a shard live: its backlog fails over, its counters migrate to
  /// the fleet's retired accumulators, its vnodes leave the ring.  Fails
  /// (kInvalidInput) for an unknown id, (kOverloaded) for the last shard.
  Result<void> remove_shard(int id);

  // -- Introspection ----------------------------------------------------
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_routable() const;
  /// Shard by id (throws on unknown id).
  const EngineShard& shard(int id) const;
  /// Ids in creation order (stable across trips, changed by add/remove).
  std::vector<int> shard_ids() const;
  const RouterStats& stats() const { return stats_; }
  /// Fleet-wide engine/cache tallies: every live shard plus every retired
  /// incarnation and removed shard.  Reconciliation invariants (e.g.
  /// cache lookups == hits + misses) hold across restarts by construction.
  EngineStats fleet_stats() const;
  CacheStats fleet_cache_stats() const;
  /// Total queued requests across live shards.
  std::size_t queue_depth() const;

  /// Affinity shard for a crystal / fingerprint key: the first live shard
  /// clockwise of the key's hash point, health ignored (health decides
  /// *routing*, not *affinity*).  Exposed for tests and benches.
  int affinity_shard(const data::Crystal& c) const;
  int affinity_shard_for_key(const std::string& key) const;

  /// Stable 64-bit FNV-1a over the fingerprint bytes (exposed for tests).
  static std::uint64_t hash_key(const std::string& key);

 private:
  struct Pending {
    std::size_t gid = 0;
    bool rerouted = false;
  };

  EngineShard* find_shard(int id);
  const EngineShard* find_shard(int id) const;
  void ring_insert(int id);
  void ring_erase(int id);
  /// Distinct shard ids clockwise from the key's point (all live shards,
  /// routable or not, each once, affinity first).
  std::vector<int> ring_walk(const std::string& key) const;
  /// Try to enqueue on the walk order: affinity first, then up to
  /// max_reroute_attempts routable siblings.  On success appends the
  /// Pending record and returns the accepting shard id; -1 when nobody
  /// accepted.  `exclude` skips a shard (the one being tripped/removed).
  int try_route(data::Crystal&& c, double deadline_ms, std::size_t gid,
                const std::vector<int>& walk, int exclude, bool* rerouted);
  /// Fail a tripped/removed shard's backlog over to siblings; requests
  /// with no taker are answered kOverloaded (or kDegraded under
  /// strict_reroute) into `done_`.
  void failover_backlog(EngineShard& from);

  const model::CHGNet& net_;
  RouterConfig cfg_;
  parallel::FaultInjector injector_{nullptr};
  std::vector<std::unique_ptr<EngineShard>> shards_;
  std::map<std::uint64_t, int> ring_;  ///< vnode point -> shard id
  std::map<int, std::deque<Pending>> pending_;  ///< shard id -> queue mirror
  /// Replies completed outside a shard drain (failover drops), delivered at
  /// the next drain() in gid order.
  std::vector<std::pair<std::size_t, Result<Prediction>>> done_;
  std::size_t next_gid_ = 0;
  int next_shard_id_ = 0;
  RouterStats stats_;
  // Counters of removed shards (fleet reconciliation).
  EngineStats retired_fleet_stats_;
  CacheStats retired_fleet_cache_;
};

}  // namespace fastchg::serve
