// Model checkpointing: save/load a Module's named parameters to a simple
// self-describing binary format (magic, count, then per-parameter name,
// shape, float32 payload).  Loading validates names and shapes strictly so
// a checkpoint can only be restored into a structurally identical model.
//
// Format v2 appends a list of named *sections* after the parameter table so
// callers can persist training state (optimizer moments, scheduler step,
// RNG streams) alongside the weights.  v1 files (weights only) stay
// readable; unknown sections are skipped by plain load_parameters, so the
// format is forward-compatible.  docs/checkpoint_format.md documents the
// byte layout.
//
// Writes are atomic: the file is written to `<path>.tmp` and renamed over
// `path` only once every byte landed, so a crash mid-save never corrupts a
// previous checkpoint.
#pragma once

#include <string>
#include <vector>

#include "nn/module.hpp"

namespace fastchg::nn {

/// A named opaque blob stored after the parameter table (format v2).
/// Encode/decode payloads with PayloadWriter / PayloadReader.
struct Section {
  std::string name;
  std::string payload;
};

/// Write all named parameters of `m` (plus optional trailing sections) to
/// `path` atomically.  Throws fastchg::Error on I/O failure.
void save_parameters(const Module& m, const std::string& path,
                     const std::vector<Section>& sections = {});

/// Restore parameters saved with save_parameters.  Accepts v1 and v2 files
/// (v2 sections are skipped).  Throws on missing file, corrupt or truncated
/// payload, trailing garbage, or any name/shape mismatch.
void load_parameters(Module& m, const std::string& path);

/// Like load_parameters but also returns the trailing sections (empty for a
/// v1 file).
std::vector<Section> load_checkpoint(Module& m, const std::string& path);

/// Little-endian append-only encoder for Section payloads.
class PayloadWriter {
 public:
  void put_u64(std::uint64_t v);
  void put_f32(float v);
  void put_f64(double v);
  void put_string(const std::string& s);
  /// dim, sizes, then the float32 data.
  void put_tensor(const Tensor& t);

  std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n);
  std::string buf_;
};

/// Decoder matching PayloadWriter; throws fastchg::Error on over-read.
class PayloadReader {
 public:
  explicit PayloadReader(const std::string& payload) : buf_(payload) {}

  std::uint64_t get_u64();
  float get_f32();
  double get_f64();
  std::string get_string();
  Tensor get_tensor();

  /// True when every byte of the payload has been consumed.
  bool done() const { return pos_ == buf_.size(); }

 private:
  void raw(void* p, std::size_t n);
  const std::string& buf_;
  std::size_t pos_ = 0;
};

}  // namespace fastchg::nn
