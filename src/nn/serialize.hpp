// Model checkpointing: save/load a Module's named parameters to a simple
// self-describing binary format (magic, count, then per-parameter name,
// shape, float32 payload).  Loading validates names and shapes strictly so
// a checkpoint can only be restored into a structurally identical model.
#pragma once

#include <string>

#include "nn/module.hpp"

namespace fastchg::nn {

/// Write all named parameters of `m` to `path`.  Throws fastchg::Error on
/// I/O failure.
void save_parameters(const Module& m, const std::string& path);

/// Restore parameters saved with save_parameters.  Throws on missing file,
/// corrupt payload, or any name/shape mismatch.
void load_parameters(Module& m, const std::string& path);

}  // namespace fastchg::nn
