#include "nn/embedding.hpp"

#include "autograd/ops.hpp"
#include "nn/init.hpp"

namespace fastchg::nn {

Embedding::Embedding(index_t num_embeddings, index_t dim, Rng& rng)
    : num_(num_embeddings), dim_(dim) {
  table_ = add_parameter(
      "table", init::xavier_uniform({num_embeddings, dim}, dim, dim, rng));
}

Var Embedding::forward(const std::vector<index_t>& ids) const {
  return ag::ops::index_select0(table_, ids);
}

}  // namespace fastchg::nn
