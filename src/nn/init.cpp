#include "nn/init.hpp"

#include <cmath>

namespace fastchg::nn::init {

Tensor xavier_uniform(Shape shape, index_t fan_in, index_t fan_out,
                      Rng& rng) {
  Tensor t = Tensor::empty(std::move(shape));
  const float a =
      std::sqrt(6.0f / static_cast<float>(std::max<index_t>(fan_in + fan_out, 1)));
  rng.fill_uniform(t, -a, a);
  return t;
}

Tensor bias_uniform(Shape shape, index_t fan_in, Rng& rng) {
  Tensor t = Tensor::empty(std::move(shape));
  const float a = 1.0f / std::sqrt(static_cast<float>(std::max<index_t>(fan_in, 1)));
  rng.fill_uniform(t, -a, a);
  return t;
}

Tensor normal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t = Tensor::empty(std::move(shape));
  rng.fill_normal(t, mean, stddev);
  return t;
}

}  // namespace fastchg::nn::init
