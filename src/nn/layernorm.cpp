#include "nn/layernorm.hpp"

#include <cmath>

#include "autograd/ops.hpp"
#include "core/replay.hpp"
#include "ops/rownorm.hpp"
#include "perf/counters.hpp"

namespace fastchg::nn {

using namespace ag::ops;
using ag::make_op_node;

namespace {
/// Fused layernorm forward loop, shared by the eager kernel and its replay
/// closure.
void layernorm_loop(index_t rows, index_t cols, float eps, const float* px,
                    const float* pg, const float* pb, float* po) {
  // Dispatched: scalar tier is this function's old body verbatim; the AVX2
  // tier reassociates the mean/var reductions (tolerance-gated class).
  ::fastchg::ops::rownorm::layernorm(rows, cols, eps, px, pg, pb, po);
}
}  // namespace

LayerNorm::LayerNorm(index_t dim, bool fused, float eps)
    : dim_(dim), fused_(fused), eps_(eps) {
  gamma_ = add_parameter("gamma", Tensor::ones({dim}));
  beta_ = add_parameter("beta", Tensor::zeros({dim}));
}

Var LayerNorm::forward(const Var& x) const {
  FASTCHG_CHECK(x.value().dim() == 2 && x.size(1) == dim_,
                "LayerNorm(" << dim_ << "): input " << shape_str(x.shape()));
  return fused_ ? layernorm_fused(x, gamma_, beta_, eps_)
                : layernorm_composite(x, gamma_, beta_, eps_);
}

Var layernorm_composite(const Var& x, const Var& gamma, const Var& beta,
                        float eps) {
  Var mu = mean_dim(x, 1, /*keepdim=*/true);              // [N,1]
  Var xc = sub(x, mu);                                    // [N,C]
  Var var = mean_dim(square(xc), 1, /*keepdim=*/true);    // [N,1]
  Var rstd = reciprocal(sqrt_op(add_scalar(var, eps)));   // [N,1]
  Var xhat = mul(xc, rstd);                               // [N,C]
  return add(mul(xhat, gamma), beta);
}

Var layernorm_fused(const Var& x, const Var& gamma, const Var& beta,
                    float eps) {
  perf::count_kernel("fused_layernorm");
  const Tensor& xv = x.value();
  const index_t rows = xv.size(0), cols = xv.size(1);
  Tensor out = Tensor::empty({rows, cols});
  layernorm_loop(rows, cols, eps, xv.data(), gamma.value().data(),
                 beta.value().data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(xv);
    const int sg = rec->note_input(gamma.value());
    const int sb = rec->note_input(beta.value());
    const int so = rec->note_output(out);
    rec->push("fused_layernorm", /*counted=*/true, {sx, sg, sb}, so,
              [rows, cols, eps, sx, sg, sb, so](float* const* S) {
                layernorm_loop(rows, cols, eps, S[sx], S[sg], S[sb], S[so]);
              });
  }
  // Backward recomputes the normalization with primitive ops so the gradient
  // is itself differentiable (double backward path).
  return make_op_node(
      "fused_layernorm", std::move(out), {x, gamma, beta},
      [x, gamma, beta, eps](const Var& g) -> std::vector<ag::Var> {
        return layernorm_backward_ops(x, gamma, beta, eps, g);
      });
}

std::vector<Var> layernorm_backward_ops(const Var& x, const Var& gamma,
                                        const Var& beta, float eps,
                                        const Var& g) {
  Var mu = mean_dim(x, 1, true);
  Var xc = sub(x, mu);
  Var var = mean_dim(square(xc), 1, true);
  Var rstd = reciprocal(sqrt_op(add_scalar(var, eps)));
  Var xhat = mul(xc, rstd);
  Var gxhat = mul(g, gamma);                     // [N,C]
  Var m1 = mean_dim(gxhat, 1, true);             // [N,1]
  Var m2 = mean_dim(mul(gxhat, xhat), 1, true);  // [N,1]
  Var gx = mul(rstd, sub(sub(gxhat, m1), mul(xhat, m2)));
  Var ggamma = reshape(sum_dim(mul(g, xhat), 0, true), gamma.shape());
  Var gbeta = reshape(sum_dim(g, 0, true), beta.shape());
  return {gx, ggamma, gbeta};
}

}  // namespace fastchg::nn
