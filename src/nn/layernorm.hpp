// Layer normalization over the last dimension of a [N, C] tensor.
//
// Two execution paths:
//  * composed (reference): mean/var/normalize/affine as ~8 primitive kernels,
//    matching the unfused reference-CHGNet implementation;
//  * fused: one forward kernel; the backward is expressed with primitive ops
//    (recomputed from the input), so it remains double-differentiable --
//    required because FastCHGNet "w/o head" still trains through dE/dx.
#pragma once

#include "nn/module.hpp"

namespace fastchg::nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(index_t dim, bool fused = false, float eps = 1e-5f);

  Var forward(const Var& x) const;
  bool fused() const { return fused_; }
  const Var& gamma() const { return gamma_; }
  const Var& beta() const { return beta_; }

 private:
  index_t dim_;
  bool fused_;
  float eps_;
  Var gamma_, beta_;
};

/// Free-function composite LN used by both the reference path and fused
/// backwards: out = (x - mean) * rstd * gamma + beta, rowwise.
Var layernorm_composite(const Var& x, const Var& gamma, const Var& beta,
                        float eps);

/// Single-kernel fused LN (forward); backward is op-composed.
Var layernorm_fused(const Var& x, const Var& gamma, const Var& beta,
                    float eps);

/// Op-composed LN backward: given upstream grad `g`, returns
/// {grad_x, grad_gamma, grad_beta}.  Shared by layernorm_fused and the fused
/// GatedMLP backward; being op-composed keeps it double-differentiable.
std::vector<Var> layernorm_backward_ops(const Var& x, const Var& gamma,
                                        const Var& beta, float eps,
                                        const Var& g);

}  // namespace fastchg::nn
