#include "nn/serialize.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "core/error.hpp"

namespace fastchg::nn {

namespace {

constexpr std::uint32_t kMagic = 0xFA57C46E;  // "FastCHGNet"
constexpr std::uint32_t kVersion = 2;         // v2: trailing sections
constexpr std::uint32_t kMinVersion = 1;      // oldest readable format

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FASTCHG_CHECK(is.good(), "checkpoint: truncated file");
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FASTCHG_CHECK(is.good(), "checkpoint: truncated file");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  FASTCHG_CHECK(n < (1u << 20), "checkpoint: implausible string length");
  std::string s(static_cast<std::size_t>(n), '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  FASTCHG_CHECK(is.good(), "checkpoint: truncated string");
  return s;
}

void expect_eof(std::istream& is, const std::string& path) {
  is.peek();
  FASTCHG_CHECK(is.eof(), "checkpoint: '"
                              << path
                              << "' has trailing bytes after the last "
                                 "record (corrupt or mixed-up file)");
}

/// Read the parameter table shared by v1 and v2.
void read_parameter_table(Module& m, std::istream& is,
                          const std::string& path) {
  auto params = m.named_parameters();
  const std::uint64_t count = read_u64(is);
  FASTCHG_CHECK(count == params.size(),
                "checkpoint: holds " << count << " parameters, model has "
                                     << params.size());
  for (auto& [name, p] : params) {
    const std::string stored_name = read_string(is);
    FASTCHG_CHECK(stored_name == name, "checkpoint: parameter '"
                                           << stored_name
                                           << "' where model expects '"
                                           << name << "'");
    const std::uint64_t dim = read_u64(is);
    Shape shape;
    for (std::uint64_t d = 0; d < dim; ++d) {
      shape.push_back(static_cast<index_t>(read_u64(is)));
    }
    Tensor& dst = p.node()->value;
    FASTCHG_CHECK(same_shape(shape, dst.shape()),
                  "checkpoint: '" << name << "' has shape "
                                  << shape_str(shape) << ", model expects "
                                  << shape_str(dst.shape()));
    is.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(dst.numel() * sizeof(float)));
    FASTCHG_CHECK(is.good(), "checkpoint: truncated payload for '" << name
                                                                   << "'");
  }
  (void)path;
}

/// Open `path`, validate the header, and return the format version.
std::uint32_t open_checkpoint(std::ifstream& is, const std::string& path) {
  is.open(path, std::ios::binary);
  FASTCHG_CHECK(is.is_open(), "checkpoint: cannot open '" << path << "'");
  FASTCHG_CHECK(read_u32(is) == kMagic,
                "checkpoint: '" << path << "' is not a FastCHGNet checkpoint");
  const std::uint32_t version = read_u32(is);
  FASTCHG_CHECK(version >= kMinVersion && version <= kVersion,
                "checkpoint: '" << path << "' has format version " << version
                                << "; this build reads versions "
                                << kMinVersion << ".." << kVersion
                                << " (rebuild or re-save the checkpoint)");
  return version;
}

std::vector<Section> read_sections(std::istream& is) {
  std::vector<Section> sections;
  const std::uint64_t count = read_u64(is);
  FASTCHG_CHECK(count < (1u << 10), "checkpoint: implausible section count");
  for (std::uint64_t i = 0; i < count; ++i) {
    Section s;
    s.name = read_string(is);
    const std::uint64_t bytes = read_u64(is);
    FASTCHG_CHECK(bytes < (1ull << 32), "checkpoint: implausible section '"
                                            << s.name << "' size " << bytes);
    s.payload.resize(static_cast<std::size_t>(bytes));
    is.read(s.payload.data(), static_cast<std::streamsize>(bytes));
    FASTCHG_CHECK(is.good(),
                  "checkpoint: truncated section '" << s.name << "'");
    sections.push_back(std::move(s));
  }
  return sections;
}

}  // namespace

void save_parameters(const Module& m, const std::string& path,
                     const std::vector<Section>& sections) {
  // Atomic write: stream everything into `<path>.tmp`, then rename over the
  // destination only after the final flush succeeded.  POSIX rename within a
  // filesystem is atomic, so readers see either the old or the new file.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    FASTCHG_CHECK(os.is_open(), "checkpoint: cannot open '" << tmp
                                                            << "' for write");
    auto params = m.named_parameters();
    write_u32(os, kMagic);
    write_u32(os, kVersion);
    write_u64(os, params.size());
    for (const auto& [name, p] : params) {
      write_string(os, name);
      const Tensor& t = p.value();
      write_u64(os, static_cast<std::uint64_t>(t.dim()));
      for (index_t d = 0; d < t.dim(); ++d) {
        write_u64(os, static_cast<std::uint64_t>(t.size(d)));
      }
      os.write(reinterpret_cast<const char*>(t.data()),
               static_cast<std::streamsize>(t.numel() * sizeof(float)));
    }
    write_u64(os, sections.size());
    for (const Section& s : sections) {
      write_string(os, s.name);
      write_string(os, s.payload);
    }
    os.flush();
    FASTCHG_CHECK(os.good(), "checkpoint: write to '" << tmp << "' failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    FASTCHG_CHECK(false, "checkpoint: cannot rename '" << tmp << "' to '"
                                                       << path << "'");
  }
}

void load_parameters(Module& m, const std::string& path) {
  std::ifstream is;
  const std::uint32_t version = open_checkpoint(is, path);
  read_parameter_table(m, is, path);
  if (version >= 2) read_sections(is);
  expect_eof(is, path);
}

std::vector<Section> load_checkpoint(Module& m, const std::string& path) {
  std::ifstream is;
  const std::uint32_t version = open_checkpoint(is, path);
  read_parameter_table(m, is, path);
  std::vector<Section> sections;
  if (version >= 2) sections = read_sections(is);
  expect_eof(is, path);
  return sections;
}

// ---------------------------------------------------------------------------
// Payload encode / decode
// ---------------------------------------------------------------------------

void PayloadWriter::raw(const void* p, std::size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

void PayloadWriter::put_u64(std::uint64_t v) { raw(&v, sizeof(v)); }
void PayloadWriter::put_f32(float v) { raw(&v, sizeof(v)); }
void PayloadWriter::put_f64(double v) { raw(&v, sizeof(v)); }

void PayloadWriter::put_string(const std::string& s) {
  put_u64(s.size());
  raw(s.data(), s.size());
}

void PayloadWriter::put_tensor(const Tensor& t) {
  put_u64(static_cast<std::uint64_t>(t.dim()));
  for (index_t d = 0; d < t.dim(); ++d) {
    put_u64(static_cast<std::uint64_t>(t.size(d)));
  }
  raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
}

void PayloadReader::raw(void* p, std::size_t n) {
  FASTCHG_CHECK(pos_ + n <= buf_.size(),
                "checkpoint: truncated section payload (want "
                    << n << " bytes at offset " << pos_ << " of "
                    << buf_.size() << ")");
  std::memcpy(p, buf_.data() + pos_, n);
  pos_ += n;
}

std::uint64_t PayloadReader::get_u64() {
  std::uint64_t v = 0;
  raw(&v, sizeof(v));
  return v;
}

float PayloadReader::get_f32() {
  float v = 0;
  raw(&v, sizeof(v));
  return v;
}

double PayloadReader::get_f64() {
  double v = 0;
  raw(&v, sizeof(v));
  return v;
}

std::string PayloadReader::get_string() {
  const std::uint64_t n = get_u64();
  FASTCHG_CHECK(n < (1u << 20), "checkpoint: implausible string length");
  std::string s(static_cast<std::size_t>(n), '\0');
  raw(s.data(), s.size());
  return s;
}

Tensor PayloadReader::get_tensor() {
  const std::uint64_t dim = get_u64();
  FASTCHG_CHECK(dim <= 8, "checkpoint: implausible tensor rank " << dim);
  Shape shape;
  for (std::uint64_t d = 0; d < dim; ++d) {
    shape.push_back(static_cast<index_t>(get_u64()));
  }
  Tensor t = Tensor::empty(shape);
  raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  return t;
}

}  // namespace fastchg::nn
