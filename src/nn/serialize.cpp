#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>

#include "core/error.hpp"

namespace fastchg::nn {

namespace {

constexpr std::uint32_t kMagic = 0xFA57C46E;  // "FastCHGNet"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

std::uint32_t read_u32(std::istream& is) {
  std::uint32_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FASTCHG_CHECK(is.good(), "checkpoint: truncated file");
  return v;
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof(v));
  FASTCHG_CHECK(is.good(), "checkpoint: truncated file");
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  FASTCHG_CHECK(n < (1u << 20), "checkpoint: implausible string length");
  std::string s(static_cast<std::size_t>(n), '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  FASTCHG_CHECK(is.good(), "checkpoint: truncated string");
  return s;
}

}  // namespace

void save_parameters(const Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  FASTCHG_CHECK(os.is_open(), "checkpoint: cannot open '" << path
                                                          << "' for write");
  auto params = m.named_parameters();
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u64(os, params.size());
  for (const auto& [name, p] : params) {
    write_string(os, name);
    const Tensor& t = p.value();
    write_u64(os, static_cast<std::uint64_t>(t.dim()));
    for (index_t d = 0; d < t.dim(); ++d) {
      write_u64(os, static_cast<std::uint64_t>(t.size(d)));
    }
    os.write(reinterpret_cast<const char*>(t.data()),
             static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  FASTCHG_CHECK(os.good(), "checkpoint: write to '" << path << "' failed");
}

void load_parameters(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  FASTCHG_CHECK(is.is_open(), "checkpoint: cannot open '" << path << "'");
  FASTCHG_CHECK(read_u32(is) == kMagic,
                "checkpoint: '" << path << "' is not a FastCHGNet checkpoint");
  const std::uint32_t version = read_u32(is);
  FASTCHG_CHECK(version == kVersion,
                "checkpoint: unsupported version " << version);
  auto params = m.named_parameters();
  const std::uint64_t count = read_u64(is);
  FASTCHG_CHECK(count == params.size(),
                "checkpoint: holds " << count << " parameters, model has "
                                     << params.size());
  for (auto& [name, p] : params) {
    const std::string stored_name = read_string(is);
    FASTCHG_CHECK(stored_name == name, "checkpoint: parameter '"
                                           << stored_name
                                           << "' where model expects '"
                                           << name << "'");
    const std::uint64_t dim = read_u64(is);
    Shape shape;
    for (std::uint64_t d = 0; d < dim; ++d) {
      shape.push_back(static_cast<index_t>(read_u64(is)));
    }
    Tensor& dst = p.node()->value;
    FASTCHG_CHECK(same_shape(shape, dst.shape()),
                  "checkpoint: '" << name << "' has shape "
                                  << shape_str(shape) << ", model expects "
                                  << shape_str(dst.shape()));
    is.read(reinterpret_cast<char*>(dst.data()),
            static_cast<std::streamsize>(dst.numel() * sizeof(float)));
    FASTCHG_CHECK(is.good(), "checkpoint: truncated payload for '" << name
                                                                   << "'");
  }
}

}  // namespace fastchg::nn
