// Module base class: owns named parameters, composes children, and supports
// the replica operations the data-parallel trainer needs (parameter
// broadcast, gradient export/import).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "autograd/variable.hpp"

namespace fastchg::nn {

using ag::Var;

class Module {
 public:
  virtual ~Module() = default;
  Module() = default;
  Module(const Module&) = delete;  // parameters are identity-bearing
  Module& operator=(const Module&) = delete;

  /// All parameters, depth-first, with dotted names ("atom_conv.mlp.w").
  std::vector<std::pair<std::string, Var>> named_parameters() const;
  std::vector<Var> parameters() const;
  index_t num_parameters() const;

  void zero_grad();

  /// Copy parameter *values* elementwise from a structurally identical
  /// module (used to broadcast the master weights to device replicas).
  void copy_parameters_from(const Module& other);

 protected:
  /// Register a trainable parameter initialized with `init`.
  Var add_parameter(std::string name, Tensor init);
  /// Register a child module; `child` must outlive this module (children are
  /// normally value members of the parent).
  void add_child(std::string name, Module* child);

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, Var>>& out) const;

  std::vector<std::pair<std::string, Var>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace fastchg::nn
