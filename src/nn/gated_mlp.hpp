// GatedMLP: phi(x) = sigmoid(LN(Fc_g(x))) ⊙ silu(LN(Fc_c(x)))   (CHGNet Eq.)
//
// Reference path: two separate linears, two op-composed layer norms, separate
// sigmoid/silu kernels -- the unfused structure of reference CHGNet.
//
// Fused path (paper Fig. 3b): the two linears are evaluated as one GEMM via
// weight concatenation, and LN + sigmoid + silu + product collapse into one
// fused activation kernel (silu is derived from the shared sigmoid as
// silu(x) = x * sigmoid(x), so the sigmoid is computed once per element).
#pragma once

#include "core/rng.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"

namespace fastchg::nn {

class GatedMLP : public Module {
 public:
  GatedMLP(index_t in, index_t out, Rng& rng, bool fused = false);

  Var forward(const Var& x) const;
  bool fused() const { return fused_; }
  index_t in_features() const { return in_; }
  index_t out_features() const { return out_; }

 private:
  Var forward_reference(const Var& x) const;
  Var forward_fused(const Var& x) const;

  index_t in_, out_;
  bool fused_;
  Linear core_fc_, gate_fc_;
  LayerNorm core_ln_, gate_ln_;
};

/// Single-kernel fused LN+sigmoid+silu+product over packed [N,2C]
/// ([core | gate] halves).  Backward is op-composed (double-differentiable).
Var gated_act_fused(const Var& packed, const Var& gamma_c, const Var& beta_c,
                    const Var& gamma_g, const Var& beta_g, float eps);

}  // namespace fastchg::nn
