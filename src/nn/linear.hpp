// Linear layers: plain, and the "packed" variant implementing the paper's
// weight-concatenation fusion (Fig. 3a): several linears that share the same
// input are evaluated as a single, larger GEMM and split afterwards.
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "nn/module.hpp"

namespace fastchg::nn {

class Linear : public Module {
 public:
  /// y = x @ W + b.  W is [in, out]; bias optional.
  Linear(index_t in, index_t out, Rng& rng, bool bias = true);

  Var forward(const Var& x) const;
  index_t in_features() const { return in_; }
  index_t out_features() const { return out_; }
  const Var& weight() const { return w_; }
  /// Undefined Var when constructed without bias.
  const Var& bias() const { return b_; }

 private:
  index_t in_, out_;
  Var w_, b_;
};

/// K linear heads over one shared input, fused into one GEMM.
/// forward() returns the packed [N, sum(outs)] tensor; head(i, packed)
/// slices out head i.  The packed evaluation launches 1 matmul (+1 bias add)
/// instead of K of each -- exactly the Fig. 3a transformation.
class PackedLinear : public Module {
 public:
  PackedLinear(index_t in, std::vector<index_t> outs, Rng& rng,
               bool bias = true);

  Var forward(const Var& x) const;
  Var head(std::size_t i, const Var& packed) const;
  std::size_t num_heads() const { return outs_.size(); }
  index_t head_size(std::size_t i) const { return outs_[i]; }

 private:
  index_t in_;
  std::vector<index_t> outs_;
  std::vector<index_t> offsets_;
  Var w_, b_;
};

}  // namespace fastchg::nn
