#include "nn/module.hpp"

#include "core/error.hpp"

namespace fastchg::nn {

Var Module::add_parameter(std::string name, Tensor init) {
  Var p(std::move(init), /*requires_grad=*/true);
  params_.emplace_back(std::move(name), p);
  return p;
}

void Module::add_child(std::string name, Module* child) {
  FASTCHG_CHECK(child != nullptr, "add_child: null child '" << name << "'");
  children_.emplace_back(std::move(name), child);
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, Var>>& out) const {
  for (const auto& [name, p] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, p);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::vector<std::pair<std::string, Var>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Var>> out;
  collect("", out);
  return out;
}

std::vector<Var> Module::parameters() const {
  std::vector<Var> out;
  for (auto& [name, p] : named_parameters()) out.push_back(p);
  return out;
}

index_t Module::num_parameters() const {
  index_t n = 0;
  for (const Var& p : parameters()) n += p.numel();
  return n;
}

void Module::zero_grad() {
  for (Var& p : parameters()) p.zero_grad();
}

void Module::copy_parameters_from(const Module& other) {
  auto dst = named_parameters();
  auto src = other.named_parameters();
  FASTCHG_CHECK(dst.size() == src.size(),
                "copy_parameters_from: " << dst.size() << " vs "
                                         << src.size() << " parameters");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    FASTCHG_CHECK(dst[i].first == src[i].first,
                  "parameter name mismatch: " << dst[i].first << " vs "
                                              << src[i].first);
    Tensor& d = dst[i].second.node()->value;
    const Tensor& s = src[i].second.value();
    FASTCHG_CHECK(same_shape(d.shape(), s.shape()),
                  "parameter shape mismatch at " << dst[i].first);
    std::copy(s.data(), s.data() + s.numel(), d.data());
  }
}

}  // namespace fastchg::nn
