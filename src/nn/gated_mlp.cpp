#include "nn/gated_mlp.hpp"

#include <cmath>

#include "autograd/ops.hpp"
#include "core/replay.hpp"
#include "ops/rownorm.hpp"
#include "perf/counters.hpp"
#include "perf/trace.hpp"

namespace fastchg::nn {

using namespace ag::ops;
using ag::make_op_node;

namespace {
constexpr float kLnEps = 1e-5f;

/// Fused gated-activation forward loop, shared by the eager kernel and its
/// replay closure.
void gated_act_loop(index_t rows, index_t c, float eps, const float* pp,
                    const float* gc, const float* bc, const float* gg,
                    const float* bg, float* po) {
  // Dispatched: scalar tier is this function's old body verbatim; the AVX2
  // tier vectorizes both half-row layernorms and the sigmoid/silu gate
  // (tolerance-gated class: reassociated reductions + polynomial exp).
  ::fastchg::ops::rownorm::gated_act(rows, c, eps, pp, gc, bc, gg, bg, po);
}
}  // namespace

GatedMLP::GatedMLP(index_t in, index_t out, Rng& rng, bool fused)
    : in_(in),
      out_(out),
      fused_(fused),
      core_fc_(in, out, rng),
      gate_fc_(in, out, rng),
      core_ln_(out),
      gate_ln_(out) {
  add_child("core_fc", &core_fc_);
  add_child("gate_fc", &gate_fc_);
  add_child("core_ln", &core_ln_);
  add_child("gate_ln", &gate_ln_);
}

Var GatedMLP::forward(const Var& x) const {
  perf::TraceSpan span("nn.gated_mlp", "nn");
  return fused_ ? forward_fused(x) : forward_reference(x);
}

Var GatedMLP::forward_reference(const Var& x) const {
  Var core = silu(core_ln_.forward(core_fc_.forward(x)));
  Var gate = sigmoid(gate_ln_.forward(gate_fc_.forward(x)));
  return mul(gate, core);
}

Var GatedMLP::forward_fused(const Var& x) const {
  // Weight concatenation (Fig. 3a): one [in, 2C] GEMM instead of two.
  Var w = cat({core_fc_.weight(), gate_fc_.weight()}, 1);
  Var b = cat({core_fc_.bias(), gate_fc_.bias()}, 0);
  Var packed = add(matmul(x, w), b);
  return gated_act_fused(packed, core_ln_.gamma(), core_ln_.beta(),
                         gate_ln_.gamma(), gate_ln_.beta(), kLnEps);
}

Var gated_act_fused(const Var& packed, const Var& gamma_c, const Var& beta_c,
                    const Var& gamma_g, const Var& beta_g, float eps) {
  perf::count_kernel("fused_gated_act");
  const Tensor& pv = packed.value();
  FASTCHG_CHECK(pv.dim() == 2 && pv.size(1) % 2 == 0,
                "gated_act_fused: packed shape " << shape_str(pv.shape()));
  const index_t rows = pv.size(0);
  const index_t c = pv.size(1) / 2;
  Tensor out = Tensor::empty({rows, c});
  gated_act_loop(rows, c, eps, pv.data(), gamma_c.value().data(),
                 beta_c.value().data(), gamma_g.value().data(),
                 beta_g.value().data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sp = rec->note_input(pv);
    const int sgc = rec->note_input(gamma_c.value());
    const int sbc = rec->note_input(beta_c.value());
    const int sgg = rec->note_input(gamma_g.value());
    const int sbg = rec->note_input(beta_g.value());
    const int so = rec->note_output(out);
    rec->push("fused_gated_act", /*counted=*/true,
              {sp, sgc, sbc, sgg, sbg}, so,
              [rows, c, eps, sp, sgc, sbc, sgg, sbg, so](float* const* S) {
                gated_act_loop(rows, c, eps, S[sp], S[sgc], S[sbc], S[sgg],
                               S[sbg], S[so]);
              });
  }
  return make_op_node(
      "fused_gated_act", std::move(out),
      {packed, gamma_c, beta_c, gamma_g, beta_g},
      [packed, gamma_c, beta_c, gamma_g, beta_g,
       eps](const Var& g) -> std::vector<Var> {
        const index_t cc = packed.size(1) / 2;
        // LN forward pieces computed once per half and shared between the
        // activation-grad chain and the LN backward formula (keeps the
        // op-composed backward cheap while staying double-differentiable).
        struct LnPieces {
          Var rstd, xhat, out;
        };
        auto ln = [eps](const Var& xpart, const Var& gamma,
                        const Var& beta) -> LnPieces {
          Var mu = mean_dim(xpart, 1, true);
          Var xc = sub(xpart, mu);
          Var var = mean_dim(square(xc), 1, true);
          Var rstd = reciprocal(sqrt_op(add_scalar(var, eps)));
          Var xhat = mul(xc, rstd);
          return {rstd, xhat, add(mul(xhat, gamma), beta)};
        };
        auto ln_backward = [](const LnPieces& p, const Var& gamma,
                              const Var& d_out) -> std::vector<Var> {
          Var gxhat = mul(d_out, gamma);
          Var m1 = mean_dim(gxhat, 1, true);
          Var m2 = mean_dim(mul(gxhat, p.xhat), 1, true);
          Var gx = mul(p.rstd, sub(sub(gxhat, m1), mul(p.xhat, m2)));
          Var ggamma = reshape(sum_dim(mul(d_out, p.xhat), 0, true),
                               gamma.shape());
          Var gbeta = reshape(sum_dim(d_out, 0, true), gamma.shape());
          return {gx, ggamma, gbeta};
        };
        Var core = narrow(packed, 1, 0, cc);
        Var gate = narrow(packed, 1, cc, cc);
        LnPieces pc = ln(core, gamma_c, beta_c);
        LnPieces pg = ln(gate, gamma_g, beta_g);
        Var cn = pc.out;
        Var gn = pg.out;
        Var s = sigmoid(cn);
        Var a = sigmoid(gn);
        Var b = mul(cn, s);  // silu(cn)
        Var g_a = mul(g, b);
        Var g_b = mul(g, a);
        // d silu / d cn = s + cn*s*(1-s);  d sigmoid / d gn = a*(1-a)
        Var d_cn = mul(g_b, add(s, mul(mul(cn, s), add_scalar(neg(s), 1.0f))));
        Var d_gn = mul(g_a, mul(a, add_scalar(neg(a), 1.0f)));
        auto core_grads = ln_backward(pc, gamma_c, d_cn);
        auto gate_grads = ln_backward(pg, gamma_g, d_gn);
        Var gpacked = cat({core_grads[0], gate_grads[0]}, 1);
        return {gpacked, core_grads[1], core_grads[2], gate_grads[1],
                gate_grads[2]};
      });
}

}  // namespace fastchg::nn
