#include "nn/linear.hpp"

#include <numeric>

#include "autograd/ops.hpp"
#include "nn/init.hpp"

namespace fastchg::nn {

using namespace ag::ops;

Linear::Linear(index_t in, index_t out, Rng& rng, bool bias)
    : in_(in), out_(out) {
  w_ = add_parameter("w", init::xavier_uniform({in, out}, in, out, rng));
  if (bias) b_ = add_parameter("b", init::bias_uniform({out}, in, rng));
}

Var Linear::forward(const Var& x) const {
  Var y = matmul(x, w_);
  if (b_.defined()) y = add(y, b_);
  return y;
}

PackedLinear::PackedLinear(index_t in, std::vector<index_t> outs, Rng& rng,
                           bool bias)
    : in_(in), outs_(std::move(outs)) {
  FASTCHG_CHECK(!outs_.empty(), "PackedLinear: no heads");
  offsets_.resize(outs_.size() + 1, 0);
  std::partial_sum(outs_.begin(), outs_.end(), offsets_.begin() + 1);
  const index_t total = offsets_.back();
  // Init each head's column block as if it were a standalone [in, out_i]
  // linear so packed and unpacked models start from the same distribution.
  Tensor w = Tensor::empty({in_, total});
  for (std::size_t h = 0; h < outs_.size(); ++h) {
    Tensor wh = init::xavier_uniform({in_, outs_[h]}, in_, outs_[h], rng);
    for (index_t r = 0; r < in_; ++r)
      std::copy(wh.data() + r * outs_[h], wh.data() + (r + 1) * outs_[h],
                w.data() + r * total + offsets_[h]);
  }
  w_ = add_parameter("w", std::move(w));
  if (bias) b_ = add_parameter("b", init::bias_uniform({total}, in_, rng));
}

Var PackedLinear::forward(const Var& x) const {
  Var y = matmul(x, w_);
  if (b_.defined()) y = add(y, b_);
  return y;
}

Var PackedLinear::head(std::size_t i, const Var& packed) const {
  FASTCHG_CHECK(i < outs_.size(), "PackedLinear: head " << i);
  return narrow(packed, 1, offsets_[i], outs_[i]);
}

}  // namespace fastchg::nn
