// Weight initialization schemes.
#pragma once

#include "core/rng.hpp"
#include "core/tensor.hpp"

namespace fastchg::nn::init {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
Tensor xavier_uniform(Shape shape, index_t fan_in, index_t fan_out, Rng& rng);

/// Kaiming-style uniform for biases: U(-1/sqrt(fan_in), 1/sqrt(fan_in)).
Tensor bias_uniform(Shape shape, index_t fan_in, Rng& rng);

Tensor normal(Shape shape, float mean, float stddev, Rng& rng);

}  // namespace fastchg::nn::init
