// Trainable lookup table (atomic-number -> node feature in CHGNet).
#pragma once

#include <vector>

#include "core/rng.hpp"
#include "nn/module.hpp"

namespace fastchg::nn {

class Embedding : public Module {
 public:
  Embedding(index_t num_embeddings, index_t dim, Rng& rng);

  /// out[k] = table[ids[k]]; differentiable w.r.t. the table.
  Var forward(const std::vector<index_t>& ids) const;
  index_t dim() const { return dim_; }
  index_t num_embeddings() const { return num_; }

 private:
  index_t num_, dim_;
  Var table_;
};

}  // namespace fastchg::nn
