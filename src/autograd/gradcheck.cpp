#include "autograd/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "autograd/ops.hpp"
#include "core/rng.hpp"

namespace fastchg::ag {

namespace {

/// Numerically differentiate scalar() w.r.t. element `i` of `leaf`'s value.
double central_diff(const std::function<double()>& scalar, Tensor& storage,
                    index_t i, float eps) {
  float* p = storage.data();
  const float orig = p[i];
  p[i] = orig + eps;
  const double fp = scalar();
  p[i] = orig - eps;
  const double fm = scalar();
  p[i] = orig;
  return (fp - fm) / (2.0 * static_cast<double>(eps));
}

GradCheckResult check_against(const std::function<Var()>& f,
                              const std::vector<Var>& leaves,
                              const std::vector<Tensor>& analytic,
                              const GradCheckOptions& opt) {
  GradCheckResult res;
  // Note: no NoGradGuard here -- f may internally call ag::grad (the
  // double-backward check does), which needs grad mode on.  The throwaway
  // graphs are freed as soon as the returned Var dies.
  auto scalar = [&]() -> double { return static_cast<double>(f().item()); };
  for (std::size_t li = 0; li < leaves.size(); ++li) {
    Tensor storage = leaves[li].node()->value;  // shared storage: perturbable
    const Tensor& a = analytic[li];
    const index_t n = storage.numel();
    const index_t stride =
        n <= opt.max_per_leaf ? 1 : (n + opt.max_per_leaf - 1) /
                                        opt.max_per_leaf;
    for (index_t i = 0; i < n; i += stride) {
      const double num = central_diff(scalar, storage, i, opt.eps);
      const double ana = a.defined() ? static_cast<double>(a.data()[i]) : 0.0;
      const double abs_err = std::fabs(num - ana);
      const double rel_err =
          abs_err / std::max(1.0, std::max(std::fabs(num), std::fabs(ana)));
      res.max_abs_err = std::max(res.max_abs_err, abs_err);
      res.max_rel_err = std::max(res.max_rel_err, rel_err);
      if (abs_err > opt.atol && rel_err > opt.rtol && res.ok) {
        res.ok = false;
        std::ostringstream os;
        os << "leaf " << li << " elem " << i << ": numeric " << num
           << " vs analytic " << ana;
        res.detail = os.str();
      }
    }
  }
  return res;
}

}  // namespace

GradCheckResult gradcheck(const std::function<Var()>& f,
                          const std::vector<Var>& leaves,
                          const GradCheckOptions& opt) {
  Var out = f();
  FASTCHG_CHECK(out.numel() == 1, "gradcheck: f must return a scalar");
  std::vector<Var> grads = grad(out, leaves);
  std::vector<Tensor> analytic;
  analytic.reserve(leaves.size());
  for (const Var& g : grads) {
    analytic.push_back(g.defined() ? g.value() : Tensor());
  }
  return check_against(f, leaves, analytic, opt);
}

GradCheckResult gradcheck_double(const std::function<Var()>& f,
                                 const std::vector<Var>& leaves,
                                 const GradCheckOptions& opt) {
  using namespace ops;
  // Fixed cotangents make h deterministic across numeric re-evaluations.
  Rng rng(1234);
  std::vector<Var> cotangents;
  cotangents.reserve(leaves.size());
  for (const Var& leaf : leaves) {
    Tensor c = Tensor::empty(leaf.shape());
    rng.fill_normal(c, 0.0f, 1.0f);
    cotangents.push_back(constant(std::move(c)));
  }
  auto h = [&]() -> Var {
    Var out = f();
    std::vector<Var> g = grad(out, leaves, Var(), /*create_graph=*/true);
    Var acc;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!g[i].defined()) continue;
      Var term = sum_all(mul(g[i], cotangents[i]));
      acc = acc.defined() ? add(acc, term) : term;
    }
    FASTCHG_CHECK(acc.defined(), "gradcheck_double: no gradient flow at all");
    return acc;
  };
  return gradcheck(h, leaves, opt);
}

}  // namespace fastchg::ag
