// Tape-based reverse-mode autograd with support for higher-order derivatives.
//
// Reference CHGNet predicts forces as F = -dE/dx and stress as the strain
// derivative of E, then trains on a loss over those derivatives -- so the
// weight update needs d(dE/dx)/dw, a *second-order* derivative.  We get this
// the same way PyTorch does: every primitive op's backward is itself
// expressed in terms of the public differentiable ops, so calling
// grad(..., /*create_graph=*/true) produces gradient Variables that carry
// their own graph and can be differentiated again.
//
// Ownership: a Var is a cheap shared handle to a Node.  A Node keeps its
// input Vars alive only while it requires grad, so releasing the loss Var
// after backward() frees the whole graph (and the memory tracker observes
// exactly the retained-intermediate footprint the paper's Fig. 8c measures).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/tensor.hpp"

namespace fastchg::ag {

struct Node;

/// Shared handle to an autograd graph node.  Value semantics; copying shares.
class Var {
 public:
  Var() = default;
  /// Wrap a tensor as a graph leaf.
  explicit Var(Tensor value, bool requires_grad = false);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  bool requires_grad() const;

  const Shape& shape() const { return value().shape(); }
  index_t numel() const { return value().numel(); }
  index_t size(index_t d) const { return value().size(d); }
  float item() const { return value().item(); }

  /// A leaf has no backward function (parameters, constants, detached vars).
  bool is_leaf() const;

  /// New leaf sharing this value, cut off from the graph.
  Var detach() const;

  /// Leaf-gradient access (populated by backward()).
  bool has_grad() const;
  const Tensor& grad() const;
  Tensor& mutable_grad();
  void zero_grad();
  void set_grad(Tensor g);

  std::shared_ptr<Node> node() const { return node_; }
  static Var from_node(std::shared_ptr<Node> n);

 private:
  std::shared_ptr<Node> node_;
};

/// Backward function: maps the incoming gradient to gradients for each input
/// (an undefined Var means "no gradient flows to that input").
using BackwardFn = std::function<std::vector<Var>(const Var& grad_out)>;

struct Node {
  Tensor value;
  bool requires_grad = false;
  const char* op = "leaf";
  std::vector<Var> inputs;   // retained only while requires_grad
  BackwardFn backward_fn;    // null for leaves
  Tensor grad;               // leaf gradient accumulator (undefined until set)
};

/// Thread-local grad mode (mirrors torch.no_grad()).  While disabled, ops
/// produce constants: no graph is recorded and intermediates die eagerly,
/// which is what makes inference (MD, evaluation) cheap.
bool grad_enabled();

class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

/// Create an interior graph node.  Used by every op implementation.
Var make_op_node(const char* op, Tensor value, std::vector<Var> inputs,
                 BackwardFn backward_fn);

/// Accumulate d(root)/d(leaf) into every reachable leaf's .grad tensor.
/// `grad_seed` defaults to ones (root is typically the scalar loss).
void backward(const Var& root, Tensor grad_seed = {},
              bool create_graph = false);

/// torch.autograd.grad analogue: derivative of `output` w.r.t. `inputs`
/// without touching leaf .grad accumulators.  With create_graph=true the
/// returned Vars are differentiable (this is the force/stress path).
/// Inputs not reachable from `output` yield undefined Vars.
std::vector<Var> grad(const Var& output, const std::vector<Var>& inputs,
                      Var grad_output = {}, bool create_graph = false);

}  // namespace fastchg::ag
