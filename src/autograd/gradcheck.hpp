// Numeric gradient verification (finite differences vs autograd).
//
// float32 finite differences are noisy; checks use central differences with
// a relatively large step and compare with mixed absolute/relative
// tolerance.  Test functions should therefore be scaled O(1).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autograd/variable.hpp"

namespace fastchg::ag {

struct GradCheckOptions {
  float eps = 1e-2f;        ///< central-difference step
  float rtol = 5e-2f;       ///< relative tolerance
  float atol = 2e-3f;       ///< absolute tolerance
  index_t max_per_leaf = 64;  ///< elements checked per leaf (subsampled)
};

struct GradCheckResult {
  bool ok = true;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string detail;  ///< first failure description
};

/// Verify d f() / d leaves against central differences.  `f` must return a
/// scalar Var (numel 1) and be a pure function of the leaves' current values.
GradCheckResult gradcheck(const std::function<Var()>& f,
                          const std::vector<Var>& leaves,
                          const GradCheckOptions& opt = {});

/// Verify second-order gradients: defines h(leaves) = sum_i <grad_i, c_i>
/// with fixed random cotangents c_i, computes dh/dleaves analytically with
/// create_graph=true, and gradchecks that.  This is exactly the structure of
/// the force-loss backward pass in reference CHGNet.
GradCheckResult gradcheck_double(const std::function<Var()>& f,
                                 const std::vector<Var>& leaves,
                                 const GradCheckOptions& opt = {});

}  // namespace fastchg::ag
