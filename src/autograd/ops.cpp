#include "autograd/ops.hpp"

#include <cmath>
#include <cstring>
#include <memory>
#include <utility>

#include "core/parallel_for.hpp"
#include "core/replay.hpp"
#include "ops/eltwise.hpp"
#include "ops/gather_scatter.hpp"
#include "ops/gemm.hpp"
#include "ops/reduce.hpp"
#include "perf/counters.hpp"

// Replay capture (core/replay.hpp): every kernel here factors its arithmetic
// into a loop helper shared verbatim between the eager call and the closure
// it pushes onto an active Recorder, so a replayed step runs byte-for-byte
// the same loops over slot-resolved pointers.  Pure aliases (reshape,
// same-shape broadcast/sum_to, single-input cat) share storage and need no
// step of their own.
//
// SIMD dispatch (src/ops/): the loop helpers route per-element arithmetic,
// GEMM, row gather/scatter and column sums through the tiered op library.
// Ops in the bit-exact class produce identical bytes at every tier;
// transcendentals and double-accumulated reductions stay pinned to the
// scalar reference (see docs/ops.md), so the fuse/replay/pool 0.0-diff
// gates hold under any FASTCHG_SIMD setting.

namespace fastchg::ag::ops {

namespace fuse = replay::fuse;
namespace sops = ::fastchg::ops;

namespace {

// --------------------------------------------------------------------------
// Broadcast classification.  Only the patterns the model needs are allowed;
// anything else throws so silent shape bugs cannot creep in.
// --------------------------------------------------------------------------
enum class BPat {
  kSame,     // identical shapes
  kAScalar,  // a has numel 1
  kBScalar,  // b has numel 1
  kARow,     // a is [C] or [1,C], b is [N,C]
  kBRow,     // b is [C] or [1,C], a is [N,C]
  kACol,     // a is [N,1], b is [N,C]
  kBCol,     // b is [N,1], a is [N,C]
};

bool is_row_of(const Shape& s, const Shape& full) {
  if (full.size() != 2) return false;
  const index_t c = full[1];
  if (s.size() == 1 && s[0] == c) return true;
  if (s.size() == 2 && s[0] == 1 && s[1] == c) return true;
  return false;
}

bool is_col_of(const Shape& s, const Shape& full) {
  return full.size() == 2 && s.size() == 2 && s[0] == full[0] && s[1] == 1;
}

BPat classify(const Tensor& a, const Tensor& b, Shape& out_shape) {
  if (same_shape(a.shape(), b.shape())) {
    out_shape = a.shape();
    return BPat::kSame;
  }
  if (a.numel() == 1) {
    out_shape = b.shape();
    return BPat::kAScalar;
  }
  if (b.numel() == 1) {
    out_shape = a.shape();
    return BPat::kBScalar;
  }
  if (is_row_of(a.shape(), b.shape())) {
    out_shape = b.shape();
    return BPat::kARow;
  }
  if (is_row_of(b.shape(), a.shape())) {
    out_shape = a.shape();
    return BPat::kBRow;
  }
  if (is_col_of(a.shape(), b.shape())) {
    out_shape = b.shape();
    return BPat::kACol;
  }
  if (is_col_of(b.shape(), a.shape())) {
    out_shape = a.shape();
    return BPat::kBCol;
  }
  FASTCHG_CHECK(false, "unsupported broadcast " << shape_str(a.shape())
                                                << " vs "
                                                << shape_str(b.shape()));
}

/// The arithmetic of every binary op, shared by the eager call and the
/// replay closure (identical instruction streams => bit-identical results).
/// rows/cols are only read for the 2-D row/col broadcast patterns.
template <class F>
void binary_loop(BPat pat, index_t rows, index_t cols, index_t n,
                 const float* pa, const float* pb, float* po, F f) {
  switch (pat) {
    case BPat::kSame:
      for (index_t i = 0; i < n; ++i) po[i] = f(pa[i], pb[i]);
      break;
    case BPat::kAScalar: {
      const float av = pa[0];
      for (index_t i = 0; i < n; ++i) po[i] = f(av, pb[i]);
      break;
    }
    case BPat::kBScalar: {
      const float bv = pb[0];
      for (index_t i = 0; i < n; ++i) po[i] = f(pa[i], bv);
      break;
    }
    case BPat::kARow:
      for (index_t r = 0; r < rows; ++r)
        for (index_t c = 0; c < cols; ++c)
          po[r * cols + c] = f(pa[c], pb[r * cols + c]);
      break;
    case BPat::kBRow:
      for (index_t r = 0; r < rows; ++r)
        for (index_t c = 0; c < cols; ++c)
          po[r * cols + c] = f(pa[r * cols + c], pb[c]);
      break;
    case BPat::kACol:
      for (index_t r = 0; r < rows; ++r) {
        const float av = pa[r];
        for (index_t c = 0; c < cols; ++c)
          po[r * cols + c] = f(av, pb[r * cols + c]);
      }
      break;
    case BPat::kBCol:
      for (index_t r = 0; r < rows; ++r) {
        const float bv = pb[r];
        for (index_t c = 0; c < cols; ++c)
          po[r * cols + c] = f(pa[r * cols + c], bv);
      }
      break;
  }
}

/// Dispatch-routing wrapper around binary_loop: the four arithmetic EOps
/// run through ops::eltwise (vectorized under the AVX2 tier, per-element
/// bit-exact at every tier); anything else falls back to the reference
/// loop.  Eager call and replay closure both come through here, so the two
/// paths keep identical instruction streams per tier.
template <class F>
void binary_loop_d(fuse::EOp eop, BPat pat, index_t rows, index_t cols,
                   index_t n, const float* pa, const float* pb, float* po,
                   F f) {
  using fuse::EOp;
  if (eop != EOp::kAdd && eop != EOp::kSub && eop != EOp::kMul &&
      eop != EOp::kDiv) {
    binary_loop(pat, rows, cols, n, pa, pb, po, f);
    return;
  }
  namespace ew = sops::eltwise;
  switch (pat) {
    case BPat::kSame:
      switch (eop) {
        case EOp::kAdd: ew::add(n, pa, pb, po); return;
        case EOp::kSub: ew::sub(n, pa, pb, po); return;
        case EOp::kMul: ew::mul(n, pa, pb, po); return;
        default: ew::div(n, pa, pb, po); return;
      }
    case BPat::kAScalar: {
      const float av = pa[0];
      switch (eop) {
        case EOp::kAdd: ew::add_s(n, pb, av, po); return;
        case EOp::kSub: ew::rsub_s(n, pb, av, po); return;
        case EOp::kMul: ew::mul_s(n, pb, av, po); return;
        default: ew::rdiv_s(n, pb, av, po); return;
      }
    }
    case BPat::kBScalar: {
      const float bv = pb[0];
      switch (eop) {
        case EOp::kAdd: ew::add_s(n, pa, bv, po); return;
        case EOp::kSub: ew::sub_s(n, pa, bv, po); return;
        case EOp::kMul: ew::mul_s(n, pa, bv, po); return;
        default: ew::div_s(n, pa, bv, po); return;
      }
    }
    case BPat::kARow:
      for (index_t r = 0; r < rows; ++r) {
        const float* q = pb + r * cols;
        float* d = po + r * cols;
        switch (eop) {
          case EOp::kAdd: ew::add(cols, pa, q, d); break;
          case EOp::kSub: ew::sub(cols, pa, q, d); break;
          case EOp::kMul: ew::mul(cols, pa, q, d); break;
          default: ew::div(cols, pa, q, d); break;
        }
      }
      return;
    case BPat::kBRow:
      for (index_t r = 0; r < rows; ++r) {
        const float* q = pa + r * cols;
        float* d = po + r * cols;
        switch (eop) {
          case EOp::kAdd: ew::add(cols, q, pb, d); break;
          case EOp::kSub: ew::sub(cols, q, pb, d); break;
          case EOp::kMul: ew::mul(cols, q, pb, d); break;
          default: ew::div(cols, q, pb, d); break;
        }
      }
      return;
    case BPat::kACol:
      for (index_t r = 0; r < rows; ++r) {
        const float av = pa[r];
        const float* q = pb + r * cols;
        float* d = po + r * cols;
        switch (eop) {
          case EOp::kAdd: ew::add_s(cols, q, av, d); break;
          case EOp::kSub: ew::rsub_s(cols, q, av, d); break;
          case EOp::kMul: ew::mul_s(cols, q, av, d); break;
          default: ew::rdiv_s(cols, q, av, d); break;
        }
      }
      return;
    case BPat::kBCol:
      for (index_t r = 0; r < rows; ++r) {
        const float bv = pb[r];
        const float* q = pa + r * cols;
        float* d = po + r * cols;
        switch (eop) {
          case EOp::kAdd: ew::add_s(cols, q, bv, d); break;
          case EOp::kSub: ew::sub_s(cols, q, bv, d); break;
          case EOp::kMul: ew::mul_s(cols, q, bv, d); break;
          default: ew::div_s(cols, q, bv, d); break;
        }
      }
      return;
  }
}

/// Addressing modes a broadcast pattern imposes on the two operands (the
/// fusion pass reads elements through the same modes the eager loop uses).
void fuse_addrs(BPat pat, index_t cols, fuse::Addr& aa, fuse::Addr& ab,
                index_t& dcols) {
  aa = fuse::Addr::kElem;
  ab = fuse::Addr::kElem;
  dcols = 0;
  switch (pat) {
    case BPat::kSame:
      break;
    case BPat::kAScalar:
      aa = fuse::Addr::kScalar;
      break;
    case BPat::kBScalar:
      ab = fuse::Addr::kScalar;
      break;
    case BPat::kARow:
      aa = fuse::Addr::kRow;
      dcols = cols;
      break;
    case BPat::kBRow:
      ab = fuse::Addr::kRow;
      dcols = cols;
      break;
    case BPat::kACol:
      aa = fuse::Addr::kCol;
      dcols = cols;
      break;
    case BPat::kBCol:
      ab = fuse::Addr::kCol;
      dcols = cols;
      break;
  }
}

template <class F>
Tensor binary_kernel(const char* name, fuse::EOp eop, const Tensor& a,
                     const Tensor& b, F f) {
  perf::count_kernel(name);
  Shape out_shape;
  const BPat pat = classify(a, b, out_shape);
  Tensor out = Tensor::empty(out_shape);
  const index_t rows = out_shape.size() == 2 ? out_shape[0] : 0;
  const index_t cols = out_shape.size() == 2 ? out_shape[1] : 0;
  const index_t n = out.numel();
  binary_loop_d(eop, pat, rows, cols, n, a.data(), b.data(), out.data(), f);
  if (auto* rec = replay::Recorder::active()) {
    const int sa = rec->note_input(a);
    const int sb = rec->note_input(b);
    const int so = rec->note_output(out);
    fuse::Addr aa, ab;
    index_t dcols;
    fuse_addrs(pat, cols, aa, ab, dcols);
    rec->push(
        name, /*counted=*/true, {sa, sb}, so,
        [eop, pat, rows, cols, n, sa, sb, so, f](float* const* S) {
          binary_loop_d(eop, pat, rows, cols, n, S[sa], S[sb], S[so], f);
        },
        fuse::ew_binary(eop, aa, ab, n, dcols));
  }
  return out;
}

template <class F>
void unary_loop(index_t n, const float* px, float* po, F f) {
  for (index_t i = 0; i < n; ++i) po[i] = f(px[i]);
}

/// Dispatch-routing wrapper around unary_loop.  Pure arithmetic EOps go
/// through ops::eltwise (bit-exact at every tier); the transcendentals
/// (exp/log/sin/cos/acos/tanh/sigmoid/silu/pow) stay pinned to the scalar
/// libm loop so their bytes never depend on the tier.
template <class F>
void unary_loop_d(fuse::EOp eop, float s0, float s1, index_t n,
                  const float* px, float* po, F f) {
  namespace ew = sops::eltwise;
  using fuse::EOp;
  switch (eop) {
    case EOp::kNeg: ew::neg(n, px, po); return;
    case EOp::kAbs: ew::abs(n, px, po); return;
    case EOp::kSquare: ew::square(n, px, po); return;
    case EOp::kRecip: ew::recip(n, px, po); return;
    case EOp::kSqrt: ew::sqrt(n, px, po); return;
    case EOp::kSign: ew::sign(n, px, po); return;
    case EOp::kAddS: ew::add_s(n, px, s0, po); return;
    case EOp::kMulS: ew::mul_s(n, px, s0, po); return;
    case EOp::kClamp: ew::clamp(n, px, s0, s1, po); return;
    case EOp::kClampMask: ew::clamp_mask(n, px, s0, s1, po); return;
    default: unary_loop(n, px, po, f); return;
  }
}

template <class F>
Tensor unary_kernel(const char* name, fuse::EOp eop, const Tensor& x, F f,
                    float s0 = 0.0f, float s1 = 0.0f) {
  perf::count_kernel(name);
  Tensor out = Tensor::empty(x.shape());
  const index_t n = x.numel();
  unary_loop_d(eop, s0, s1, n, x.data(), out.data(), f);
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(x);
    const int so = rec->note_output(out);
    rec->push(
        name, /*counted=*/true, {sx}, so,
        [eop, s0, s1, n, sx, so, f](float* const* S) {
          unary_loop_d(eop, s0, s1, n, S[sx], S[so], f);
        },
        fuse::ew_unary(eop, n, s0, s1));
  }
  return out;
}

}  // namespace

Var constant(Tensor t) { return Var(std::move(t), /*requires_grad=*/false); }

Var zeros_like(const Var& x) { return constant(Tensor::zeros(x.shape())); }
Var ones_like(const Var& x) { return constant(Tensor::ones(x.shape())); }

// ---------------------------------------------------------------------------
// binary
// ---------------------------------------------------------------------------

Var add(const Var& a, const Var& b) {
  Tensor out = binary_kernel("add", fuse::EOp::kAdd, a.value(), b.value(),
                             [](float x, float y) { return x + y; });
  Shape sa = a.shape(), sb = b.shape();
  return make_op_node("add", std::move(out), {a, b},
                      [sa, sb](const Var& g) -> std::vector<Var> {
                        return {sum_to(g, sa), sum_to(g, sb)};
                      });
}

Var sub(const Var& a, const Var& b) {
  Tensor out = binary_kernel("sub", fuse::EOp::kSub, a.value(), b.value(),
                             [](float x, float y) { return x - y; });
  Shape sa = a.shape(), sb = b.shape();
  return make_op_node("sub", std::move(out), {a, b},
                      [sa, sb](const Var& g) -> std::vector<Var> {
                        return {sum_to(g, sa), sum_to(neg(g), sb)};
                      });
}

Var mul(const Var& a, const Var& b) {
  Tensor out = binary_kernel("mul", fuse::EOp::kMul, a.value(), b.value(),
                             [](float x, float y) { return x * y; });
  Shape sa = a.shape(), sb = b.shape();
  return make_op_node("mul", std::move(out), {a, b},
                      [a, b, sa, sb](const Var& g) -> std::vector<Var> {
                        return {sum_to(mul(g, b), sa), sum_to(mul(g, a), sb)};
                      });
}

Var div(const Var& a, const Var& b) {
  Tensor out = binary_kernel("div", fuse::EOp::kDiv, a.value(), b.value(),
                             [](float x, float y) { return x / y; });
  Shape sa = a.shape(), sb = b.shape();
  Var result = make_op_node(
      "div", std::move(out), {a, b},
      [a, b, sa, sb](const Var& g) -> std::vector<Var> {
        Var ga = sum_to(div(g, b), sa);
        // d/db (a/b) = -a/b^2 = -(a/b)/b
        Var gb = sum_to(neg(div(div(mul(g, a), b), b)), sb);
        return {ga, gb};
      });
  return result;
}

// ---------------------------------------------------------------------------
// scalar
// ---------------------------------------------------------------------------

Var add_scalar(const Var& x, float s) {
  Tensor out =
      unary_kernel("add_scalar", fuse::EOp::kAddS, x.value(),
                   [s](float v) { return v + s; }, s);
  return make_op_node("add_scalar", std::move(out), {x},
                      [](const Var& g) -> std::vector<Var> { return {g}; });
}

Var mul_scalar(const Var& x, float s) {
  Tensor out =
      unary_kernel("mul_scalar", fuse::EOp::kMulS, x.value(),
                   [s](float v) { return v * s; }, s);
  return make_op_node("mul_scalar", std::move(out), {x},
                      [s](const Var& g) -> std::vector<Var> {
                        return {mul_scalar(g, s)};
                      });
}

Var pow_scalar(const Var& x, float p) {
  Tensor out = unary_kernel("pow_scalar", fuse::EOp::kPowS, x.value(),
                            [p](float v) { return std::pow(v, p); }, p);
  return make_op_node("pow_scalar", std::move(out), {x},
                      [x, p](const Var& g) -> std::vector<Var> {
                        return {mul(g, mul_scalar(pow_scalar(x, p - 1), p))};
                      });
}

// ---------------------------------------------------------------------------
// unary
// ---------------------------------------------------------------------------

Var neg(const Var& x) {
  Tensor out = unary_kernel("neg", fuse::EOp::kNeg, x.value(),
                            [](float v) { return -v; });
  return make_op_node("neg", std::move(out), {x},
                      [](const Var& g) -> std::vector<Var> {
                        return {neg(g)};
                      });
}

Var exp_op(const Var& x) {
  Tensor out =
      unary_kernel("exp", fuse::EOp::kExp, x.value(),
                   [](float v) { return std::exp(v); });
  Var y = make_op_node("exp", std::move(out), {x},
                       [x](const Var& g) -> std::vector<Var> {
                         return {mul(g, exp_op(x))};
                       });
  return y;
}

Var log_op(const Var& x) {
  Tensor out =
      unary_kernel("log", fuse::EOp::kLog, x.value(),
                   [](float v) { return std::log(v); });
  return make_op_node("log", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        return {div(g, x)};
                      });
}

Var sqrt_op(const Var& x) {
  Tensor out =
      unary_kernel("sqrt", fuse::EOp::kSqrt, x.value(),
                   [](float v) { return std::sqrt(v); });
  return make_op_node("sqrt", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        return {mul_scalar(div(g, sqrt_op(x)), 0.5f)};
                      });
}

Var sin_op(const Var& x) {
  Tensor out =
      unary_kernel("sin", fuse::EOp::kSin, x.value(),
                   [](float v) { return std::sin(v); });
  return make_op_node("sin", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        return {mul(g, cos_op(x))};
                      });
}

Var cos_op(const Var& x) {
  Tensor out =
      unary_kernel("cos", fuse::EOp::kCos, x.value(),
                   [](float v) { return std::cos(v); });
  return make_op_node("cos", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        return {neg(mul(g, sin_op(x)))};
                      });
}

Var acos_op(const Var& x) {
  Tensor out =
      unary_kernel("acos", fuse::EOp::kAcos, x.value(),
                   [](float v) { return std::acos(v); });
  return make_op_node(
      "acos", std::move(out), {x}, [x](const Var& g) -> std::vector<Var> {
        // d/dx acos(x) = -1 / sqrt(1 - x^2)
        Var denom = sqrt_op(add_scalar(neg(square(x)), 1.0f));
        return {neg(div(g, denom))};
      });
}

Var tanh_op(const Var& x) {
  Tensor out =
      unary_kernel("tanh", fuse::EOp::kTanh, x.value(),
                   [](float v) { return std::tanh(v); });
  return make_op_node("tanh", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        Var y = tanh_op(x);
                        return {mul(g, add_scalar(neg(square(y)), 1.0f))};
                      });
}

Var sigmoid(const Var& x) {
  Tensor out = unary_kernel("sigmoid", fuse::EOp::kSigmoid, x.value(), [](float v) {
    return 1.0f / (1.0f + std::exp(-v));
  });
  return make_op_node("sigmoid", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        Var s = sigmoid(x);
                        return {mul(g, mul(s, add_scalar(neg(s), 1.0f)))};
                      });
}

Var silu(const Var& x) {
  Tensor out = unary_kernel("silu", fuse::EOp::kSilu, x.value(), [](float v) {
    return v / (1.0f + std::exp(-v));
  });
  return make_op_node(
      "silu", std::move(out), {x}, [x](const Var& g) -> std::vector<Var> {
        // d/dx silu = s + x * s * (1 - s), s = sigmoid(x)
        Var s = sigmoid(x);
        Var ds = add(s, mul(mul(x, s), add_scalar(neg(s), 1.0f)));
        return {mul(g, ds)};
      });
}

Var abs_op(const Var& x) {
  Tensor out =
      unary_kernel("abs", fuse::EOp::kAbs, x.value(),
                   [](float v) { return std::fabs(v); });
  // sign(x) treated as a constant: correct almost everywhere and keeps
  // grad-of-grad well defined.
  Tensor sign = unary_kernel("sign", fuse::EOp::kSign, x.value(), [](float v) {
    return v > 0.0f ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
  });
  Var sign_c = constant(std::move(sign));
  return make_op_node("abs", std::move(out), {x},
                      [sign_c](const Var& g) -> std::vector<Var> {
                        return {mul(g, sign_c)};
                      });
}

Var reciprocal(const Var& x) {
  Tensor out = unary_kernel("reciprocal", fuse::EOp::kRecip, x.value(),
                            [](float v) { return 1.0f / v; });
  return make_op_node("reciprocal", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        Var inv = reciprocal(x);
                        return {neg(mul(g, square(inv)))};
                      });
}

Var square(const Var& x) {
  Tensor out =
      unary_kernel("square", fuse::EOp::kSquare, x.value(),
                   [](float v) { return v * v; });
  return make_op_node("square", std::move(out), {x},
                      [x](const Var& g) -> std::vector<Var> {
                        return {mul_scalar(mul(g, x), 2.0f)};
                      });
}

Var clamp(const Var& x, float lo, float hi) {
  Tensor out = unary_kernel(
      "clamp", fuse::EOp::kClamp, x.value(),
      [lo, hi](float v) { return v < lo ? lo : (v > hi ? hi : v); }, lo, hi);
  Tensor mask = unary_kernel(
      "clamp_mask", fuse::EOp::kClampMask, x.value(),
      [lo, hi](float v) { return (v >= lo && v <= hi) ? 1.0f : 0.0f; }, lo,
      hi);
  Var mask_c = constant(std::move(mask));
  return make_op_node("clamp", std::move(out), {x},
                      [mask_c](const Var& g) -> std::vector<Var> {
                        return {mul(g, mask_c)};
                      });
}

// ---------------------------------------------------------------------------
// linear algebra
// ---------------------------------------------------------------------------

namespace {
/// Zero-fill + accumulate (the zero-fill makes the loop self-contained so
/// replay can run it over recycled slab bytes).  Row-partitioned across the
/// worker pool; i-k-j loop order gives a unit-stride inner loop that
/// vectorizes well under -O3.  Partitions are disjoint rows, so results are
/// identical for any thread count.
void matmul_loop(index_t m, index_t k, index_t n, const float* pa,
                 const float* pb, float* po) {
  // ops::gemm owns the kernel now (the scalar tier is this function's old
  // body verbatim; the AVX2 tier register-tiles with FMA, tolerance-gated).
  sops::gemm::matmul(m, k, n, pa, pb, po);
}

Tensor matmul_kernel(const Tensor& a, const Tensor& b) {
  perf::count_kernel("matmul");
  FASTCHG_CHECK(a.dim() == 2 && b.dim() == 2,
                "matmul: need 2-D, got " << shape_str(a.shape()) << " @ "
                                         << shape_str(b.shape()));
  const index_t m = a.size(0), k = a.size(1), n = b.size(1);
  FASTCHG_CHECK(b.size(0) == k, "matmul: inner dims " << k << " vs "
                                                      << b.size(0));
  Tensor out = Tensor::empty({m, n});
  matmul_loop(m, k, n, a.data(), b.data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sa = rec->note_input(a);
    const int sb = rec->note_input(b);
    const int so = rec->note_output(out);
    rec->push("matmul", /*counted=*/true, {sa, sb}, so,
              [m, k, n, sa, sb, so](float* const* S) {
                matmul_loop(m, k, n, S[sa], S[sb], S[so]);
              });
  }
  return out;
}

void transpose_loop(index_t m, index_t n, const float* px, float* po) {
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) po[j * m + i] = px[i * n + j];
}

Tensor transpose_kernel(const Tensor& x) {
  perf::count_kernel("transpose");
  FASTCHG_CHECK(x.dim() == 2, "transpose: need 2-D");
  const index_t m = x.size(0), n = x.size(1);
  Tensor out = Tensor::empty({n, m});
  transpose_loop(m, n, x.data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(x);
    const int so = rec->note_output(out);
    rec->push("transpose", /*counted=*/true, {sx}, so,
              [m, n, sx, so](float* const* S) {
                transpose_loop(m, n, S[sx], S[so]);
              });
  }
  return out;
}
}  // namespace

Var matmul(const Var& a, const Var& b) {
  Tensor out = matmul_kernel(a.value(), b.value());
  return make_op_node("matmul", std::move(out), {a, b},
                      [a, b](const Var& g) -> std::vector<Var> {
                        return {matmul(g, transpose2d(b)),
                                matmul(transpose2d(a), g)};
                      });
}

Var transpose2d(const Var& x) {
  Tensor out = transpose_kernel(x.value());
  return make_op_node("transpose", std::move(out), {x},
                      [](const Var& g) -> std::vector<Var> {
                        return {transpose2d(g)};
                      });
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

namespace {
void sum_all_loop(index_t n, const float* px, float* po) {
  // Pinned scalar at every tier (serial double chain; see ops/reduce.hpp).
  po[0] = static_cast<float>(sops::reduce::sum_all(n, px));
}
}  // namespace

Var sum_all(const Var& x) {
  perf::count_kernel("sum_all");
  const index_t n = x.numel();
  Tensor out = Tensor::empty({1});
  sum_all_loop(n, x.value().data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(x.value());
    const int so = rec->note_output(out);
    rec->push(
        "sum_all", /*counted=*/true, {sx}, so,
        [n, sx, so](float* const* S) { sum_all_loop(n, S[sx], S[so]); },
        fuse::reduce_desc(fuse::EOp::kSumAll, n, 0));
  }
  Shape sx = x.shape();
  return make_op_node("sum_all", std::move(out), {x},
                      [sx](const Var& g) -> std::vector<Var> {
                        return {broadcast_to(g, sx)};
                      });
}

namespace {
void sum_dim_loop(index_t dim, index_t rows, index_t cols, const float* px,
                  float* po) {
  if (dim == 0) {
    // Column sums vectorize bit-exactly (per-column order preserved).
    sops::reduce::sum_dim0(rows, cols, px, po);
  } else {
    // Row sums are double-accumulated: pinned scalar at every tier.
    sops::reduce::sum_dim1(rows, cols, px, po);
  }
}
}  // namespace

Var sum_dim(const Var& x, index_t dim, bool keepdim) {
  perf::count_kernel("sum_dim");
  FASTCHG_CHECK(x.value().dim() == 2, "sum_dim: need 2-D, got "
                                          << shape_str(x.shape()));
  FASTCHG_CHECK(dim == 0 || dim == 1, "sum_dim: dim " << dim);
  const index_t rows = x.size(0), cols = x.size(1);
  Tensor out = (dim == 0)
                   ? Tensor::empty(keepdim ? Shape{1, cols} : Shape{cols})
                   : Tensor::empty(keepdim ? Shape{rows, 1} : Shape{rows});
  sum_dim_loop(dim, rows, cols, x.value().data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(x.value());
    const int so = rec->note_output(out);
    rec->push(
        "sum_dim", /*counted=*/true, {sx}, so,
        [dim, rows, cols, sx, so](float* const* S) {
          sum_dim_loop(dim, rows, cols, S[sx], S[so]);
        },
        fuse::reduce_desc(
            dim == 0 ? fuse::EOp::kSumDim0 : fuse::EOp::kSumDim1,
            rows * cols, cols));
  }
  Shape sx = x.shape();
  Shape mid = (dim == 0) ? Shape{1, cols} : Shape{rows, 1};
  return make_op_node("sum_dim", std::move(out), {x},
                      [sx, mid](const Var& g) -> std::vector<Var> {
                        return {broadcast_to(reshape(g, mid), sx)};
                      });
}

Var mean_dim(const Var& x, index_t dim, bool keepdim) {
  const index_t n = x.size(dim);
  return mul_scalar(sum_dim(x, dim, keepdim), 1.0f / static_cast<float>(n));
}

Var mean_all(const Var& x) {
  return mul_scalar(sum_all(x), 1.0f / static_cast<float>(x.numel()));
}

// ---------------------------------------------------------------------------
// broadcast helpers
// ---------------------------------------------------------------------------

namespace {
enum class BMode { kFill, kRow, kCol };

void broadcast_loop(BMode mode, index_t rows, index_t cols, index_t n,
                    const float* px, float* po) {
  switch (mode) {
    case BMode::kFill:
      std::fill_n(po, n, px[0]);
      break;
    case BMode::kRow:
      for (index_t r = 0; r < rows; ++r)
        std::memcpy(po + r * cols, px,
                    static_cast<std::size_t>(cols) * sizeof(float));
      break;
    case BMode::kCol:
      for (index_t r = 0; r < rows; ++r)
        std::fill_n(po + r * cols, cols, px[r]);
      break;
  }
}
}  // namespace

Var broadcast_to(const Var& x, const Shape& shape) {
  if (same_shape(x.shape(), shape)) return x;
  perf::count_kernel("broadcast");
  const Tensor& xv = x.value();
  Tensor out = Tensor::empty(shape);
  const index_t n = out.numel();
  BMode mode;
  index_t rows = 0, cols = 0;
  if (xv.numel() == 1) {
    mode = BMode::kFill;
  } else if (is_row_of(xv.shape(), shape)) {
    mode = BMode::kRow;
    rows = shape[0];
    cols = shape[1];
  } else if (is_col_of(xv.shape(), shape)) {
    mode = BMode::kCol;
    rows = shape[0];
    cols = shape[1];
  } else {
    FASTCHG_CHECK(false, "broadcast_to " << shape_str(xv.shape()) << " -> "
                                         << shape_str(shape));
  }
  broadcast_loop(mode, rows, cols, n, xv.data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(xv);
    const int so = rec->note_output(out);
    const fuse::Addr ba = mode == BMode::kFill
                              ? fuse::Addr::kScalar
                              : (mode == BMode::kRow ? fuse::Addr::kRow
                                                     : fuse::Addr::kCol);
    rec->push(
        "broadcast", /*counted=*/true, {sx}, so,
        [mode, rows, cols, n, sx, so](float* const* S) {
          broadcast_loop(mode, rows, cols, n, S[sx], S[so]);
        },
        fuse::ew_broadcast(ba, n, mode == BMode::kFill ? 0 : cols));
  }
  Shape sx = x.shape();
  return make_op_node("broadcast", std::move(out), {x},
                      [sx](const Var& g) -> std::vector<Var> {
                        return {sum_to(g, sx)};
                      });
}

Var sum_to(const Var& x, const Shape& shape) {
  if (same_shape(x.shape(), shape)) return x;
  if (numel_of(shape) == 1) return reshape(sum_all(x), shape);
  FASTCHG_CHECK(x.value().dim() == 2, "sum_to: " << shape_str(x.shape())
                                                 << " -> "
                                                 << shape_str(shape));
  if (is_row_of(shape, x.shape())) {
    Var s = sum_dim(x, 0, /*keepdim=*/true);  // [1,C]
    return same_shape(s.shape(), shape) ? s : reshape(s, shape);
  }
  if (is_col_of(shape, x.shape())) {
    return sum_dim(x, 1, /*keepdim=*/true);  // [N,1]
  }
  FASTCHG_CHECK(false, "sum_to " << shape_str(x.shape()) << " -> "
                                 << shape_str(shape));
}

// ---------------------------------------------------------------------------
// indexing
// ---------------------------------------------------------------------------

namespace {
index_t row_width(const Tensor& t) {
  FASTCHG_CHECK(t.dim() == 1 || t.dim() == 2,
                "row op: need 1-D/2-D, got " << shape_str(t.shape()));
  return t.dim() == 1 ? 1 : t.size(1);
}
}  // namespace

namespace {
void index_select_loop(const std::vector<index_t>& idx, index_t rows,
                       index_t w, const float* px, float* po) {
  const index_t k = static_cast<index_t>(idx.size());
  for (index_t r = 0; r < k; ++r) {
    const index_t src = idx[static_cast<std::size_t>(r)];
    FASTCHG_CHECK(src >= 0 && src < rows,
                  "index_select: index " << src << " out of " << rows);
  }
  sops::gather_scatter::gather_rows(k, w, idx.data(), px, po);
}

void index_add_loop(const std::vector<index_t>& idx, index_t rows, index_t w,
                    const float* ps, float* po) {
  const index_t k = static_cast<index_t>(idx.size());
  for (index_t r = 0; r < k; ++r) {
    const index_t dst = idx[static_cast<std::size_t>(r)];
    FASTCHG_CHECK(dst >= 0 && dst < rows,
                  "index_add: index " << dst << " out of " << rows);
  }
  // Zeroes po, then accumulates source rows in order r = 0..k-1: identical
  // per-column accumulation order at every tier (bit-exact class).
  sops::gather_scatter::scatter_add_rows(k, rows, w, idx.data(), ps, po);
}
}  // namespace

Var index_select0(const Var& x, std::vector<index_t> idx) {
  perf::count_kernel("index_select");
  const Tensor& xv = x.value();
  const index_t w = row_width(xv);
  const index_t rows = xv.size(0);
  const index_t k = static_cast<index_t>(idx.size());
  Shape out_shape = xv.dim() == 1 ? Shape{k} : Shape{k, w};
  Tensor out = Tensor::empty(out_shape);
  auto idx_sp = std::make_shared<std::vector<index_t>>(std::move(idx));
  index_select_loop(*idx_sp, rows, w, xv.data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(xv);
    const int so = rec->note_output(out);
    rec->push(
        "index_select", /*counted=*/true, {sx}, so,
        [idx_sp, rows, w, sx, so](float* const* S) {
          index_select_loop(*idx_sp, rows, w, S[sx], S[so]);
        },
        fuse::gather_desc(idx_sp, rows, w));
  }
  return make_op_node("index_select", std::move(out), {x},
                      [idx_sp, rows](const Var& g) -> std::vector<Var> {
                        return {index_add0(rows, *idx_sp, g)};
                      });
}

Var index_add0(index_t rows, std::vector<index_t> idx, const Var& src) {
  perf::count_kernel("index_add");
  const Tensor& sv = src.value();
  const index_t w = row_width(sv);
  const index_t k = sv.size(0);
  FASTCHG_CHECK(static_cast<index_t>(idx.size()) == k,
                "index_add: " << idx.size() << " indices for " << k
                              << " rows");
  Shape out_shape = sv.dim() == 1 ? Shape{rows} : Shape{rows, w};
  Tensor out = Tensor::empty(out_shape);
  auto idx_sp = std::make_shared<std::vector<index_t>>(std::move(idx));
  index_add_loop(*idx_sp, rows, w, sv.data(), out.data());
  if (auto* rec = replay::Recorder::active()) {
    const int ss = rec->note_input(sv);
    const int so = rec->note_output(out);
    rec->push(
        "index_add", /*counted=*/true, {ss}, so,
        [idx_sp, rows, w, ss, so](float* const* S) {
          index_add_loop(*idx_sp, rows, w, S[ss], S[so]);
        },
        fuse::scatter_desc(idx_sp, rows, w));
  }
  return make_op_node("index_add", std::move(out), {src},
                      [idx_sp](const Var& g) -> std::vector<Var> {
                        return {index_select0(g, *idx_sp)};
                      });
}

// ---------------------------------------------------------------------------
// shape ops
// ---------------------------------------------------------------------------

Var reshape(const Var& x, Shape shape) {
  // No kernel: a reshape of a contiguous tensor is free on GPU as well.
  Tensor out = x.value().reshape(shape);
  Shape sx = x.shape();
  return make_op_node("reshape", std::move(out), {x},
                      [sx](const Var& g) -> std::vector<Var> {
                        return {reshape(g, sx)};
                      });
}

Var cat(const std::vector<Var>& xs, index_t dim) {
  FASTCHG_CHECK(!xs.empty(), "cat: empty input list");
  if (xs.size() == 1) return xs[0];
  perf::count_kernel("cat");
  const index_t d = xs[0].value().dim();
  FASTCHG_CHECK((d == 1 && dim == 0) || (d == 2 && (dim == 0 || dim == 1)),
                "cat: dim " << dim << " on " << d << "-D tensors");
  Shape out_shape = xs[0].shape();
  index_t total = 0;
  for (const Var& x : xs) {
    FASTCHG_CHECK(x.value().dim() == d, "cat: rank mismatch");
    for (index_t i = 0; i < d; ++i) {
      if (i != dim) {
        FASTCHG_CHECK(x.size(i) == out_shape[static_cast<std::size_t>(i)],
                      "cat: shape mismatch at dim " << i);
      }
    }
    total += x.size(dim);
  }
  out_shape[static_cast<std::size_t>(dim)] = total;
  Tensor out = Tensor::empty(out_shape);
  float* po = out.data();
  if (dim == 0) {
    index_t off = 0;
    for (const Var& x : xs) {
      const index_t n = x.numel();
      std::memcpy(po + off, x.value().data(),
                  static_cast<std::size_t>(n) * sizeof(float));
      off += n;
    }
  } else {
    const index_t rows = out_shape[0], cols = out_shape[1];
    index_t coff = 0;
    for (const Var& x : xs) {
      const index_t c = x.size(1);
      const float* px = x.value().data();
      for (index_t r = 0; r < rows; ++r)
        std::memcpy(po + r * cols + coff, px + r * c,
                    static_cast<std::size_t>(c) * sizeof(float));
      coff += c;
    }
  }
  if (auto* rec = replay::Recorder::active()) {
    std::vector<int> sin;
    std::vector<index_t> widths;  // dim 0: numel; dim 1: cols per input
    sin.reserve(xs.size());
    widths.reserve(xs.size());
    for (const Var& x : xs) {
      sin.push_back(rec->note_input(x.value()));
      widths.push_back(dim == 0 ? x.numel() : x.size(1));
    }
    const int so = rec->note_output(out);
    const index_t rows = dim == 0 ? 0 : out_shape[0];
    const index_t cols = dim == 0 ? 0 : out_shape[1];
    rec->push("cat", /*counted=*/true, sin, so,
              [sin, widths, dim, rows, cols, so](float* const* S) {
                float* o = S[so];
                index_t off = 0;
                for (std::size_t i = 0; i < sin.size(); ++i) {
                  const float* p = S[sin[i]];
                  const index_t wdt = widths[i];
                  if (dim == 0) {
                    std::memcpy(o + off, p,
                                static_cast<std::size_t>(wdt) * sizeof(float));
                  } else {
                    for (index_t r = 0; r < rows; ++r)
                      std::memcpy(o + r * cols + off, p + r * wdt,
                                  static_cast<std::size_t>(wdt) *
                                      sizeof(float));
                  }
                  off += wdt;
                }
              });
  }
  std::vector<index_t> sizes;
  sizes.reserve(xs.size());
  for (const Var& x : xs) sizes.push_back(x.size(dim));
  return make_op_node("cat", std::move(out), xs,
                      [sizes, dim](const Var& g) -> std::vector<Var> {
                        std::vector<Var> grads;
                        grads.reserve(sizes.size());
                        index_t off = 0;
                        for (index_t s : sizes) {
                          grads.push_back(narrow(g, dim, off, s));
                          off += s;
                        }
                        return grads;
                      });
}

Var narrow(const Var& x, index_t dim, index_t start, index_t len) {
  perf::count_kernel("narrow");
  const Tensor& xv = x.value();
  const index_t d = xv.dim();
  FASTCHG_CHECK((d == 1 && dim == 0) || (d == 2 && (dim == 0 || dim == 1)),
                "narrow: dim " << dim << " on " << d << "-D tensor");
  FASTCHG_CHECK(start >= 0 && len >= 0 && start + len <= xv.size(dim),
                "narrow: [" << start << ", " << start + len << ") out of "
                            << xv.size(dim));
  Tensor out;
  const float* px = xv.data();
  const index_t w = (d == 1 || dim == 1) ? 1 : xv.size(1);
  const index_t rows = xv.size(0);
  const index_t cols = d == 2 ? xv.size(1) : 1;
  if (dim == 0) {
    out = Tensor::empty(d == 1 ? Shape{len} : Shape{len, xv.size(1)});
    std::memcpy(out.data(), px + start * w,
                static_cast<std::size_t>(len * w) * sizeof(float));
  } else {
    out = Tensor::empty({rows, len});
    float* po = out.data();
    for (index_t r = 0; r < rows; ++r)
      std::memcpy(po + r * len, px + r * cols + start,
                  static_cast<std::size_t>(len) * sizeof(float));
  }
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(xv);
    const int so = rec->note_output(out);
    rec->push("narrow", /*counted=*/true, {sx}, so,
              [dim, start, len, w, rows, cols, sx, so](float* const* S) {
                const float* p = S[sx];
                float* o = S[so];
                if (dim == 0) {
                  std::memcpy(o, p + start * w,
                              static_cast<std::size_t>(len * w) *
                                  sizeof(float));
                } else {
                  for (index_t r = 0; r < rows; ++r)
                    std::memcpy(o + r * len, p + r * cols + start,
                                static_cast<std::size_t>(len) * sizeof(float));
                }
              });
  }
  const index_t total = xv.size(dim);
  return make_op_node("narrow", std::move(out), {x},
                      [dim, start, total](const Var& g) -> std::vector<Var> {
                        return {pad_slice(g, dim, start, total)};
                      });
}

Var pad_slice(const Var& x, index_t dim, index_t start, index_t total) {
  perf::count_kernel("pad_slice");
  const Tensor& xv = x.value();
  const index_t d = xv.dim();
  FASTCHG_CHECK((d == 1 && dim == 0) || (d == 2 && (dim == 0 || dim == 1)),
                "pad_slice: dim " << dim << " on " << d << "-D tensor");
  const index_t len = xv.size(dim);
  FASTCHG_CHECK(start >= 0 && start + len <= total,
                "pad_slice: [" << start << ", " << start + len << ") into "
                               << total);
  Tensor out;
  const float* px = xv.data();
  const index_t w = (d == 1 || dim == 1) ? 1 : xv.size(1);
  const index_t rows = d == 2 ? xv.size(0) : 0;
  if (dim == 0) {
    out = Tensor::zeros(d == 1 ? Shape{total} : Shape{total, xv.size(1)});
    std::memcpy(out.data() + start * w, px,
                static_cast<std::size_t>(len * w) * sizeof(float));
  } else {
    out = Tensor::zeros({rows, total});
    float* po = out.data();
    for (index_t r = 0; r < rows; ++r)
      std::memcpy(po + r * total + start, px + r * len,
                  static_cast<std::size_t>(len) * sizeof(float));
  }
  if (auto* rec = replay::Recorder::active()) {
    const int sx = rec->note_input(xv);
    const int so = rec->note_output(out);
    const index_t on = out.numel();
    rec->push("pad_slice", /*counted=*/true, {sx}, so,
              [dim, start, len, total, w, rows, on, sx, so](float* const* S) {
                const float* p = S[sx];
                float* o = S[so];
                std::memset(o, 0, static_cast<std::size_t>(on) * sizeof(float));
                if (dim == 0) {
                  std::memcpy(o + start * w, p,
                              static_cast<std::size_t>(len * w) *
                                  sizeof(float));
                } else {
                  for (index_t r = 0; r < rows; ++r)
                    std::memcpy(o + r * total + start, p + r * len,
                                static_cast<std::size_t>(len) * sizeof(float));
                }
              });
  }
  return make_op_node("pad_slice", std::move(out), {x},
                      [dim, start, len](const Var& g) -> std::vector<Var> {
                        return {narrow(g, dim, start, len)};
                      });
}

}  // namespace fastchg::ag::ops
