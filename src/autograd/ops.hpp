// Differentiable primitive operations.
//
// Conventions:
//  * Tensors are 1-D or 2-D throughout the model code; ops enforce this.
//  * Every primitive counts exactly one "kernel launch" in fastchg::perf
//    (Fig. 8b accounting).  Composites (sum_to, mean_dim, ...) count as the
//    primitives they expand to, just like unfused GPU code.
//  * Every backward is built from these same primitives, so gradients are
//    themselves differentiable (double backward; see variable.hpp).
//  * Binary ops broadcast numpy-style but only over the patterns the model
//    needs: same shape, scalar {1}, row [1,C] or [C] vs [N,C], col [N,1] vs
//    [N,C].  Anything else is an error (loudly, not silently).
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace fastchg::ag::ops {

/// Wrap a tensor as a constant (requires_grad = false) leaf.
Var constant(Tensor t);
Var zeros_like(const Var& x);
Var ones_like(const Var& x);

// -- elementwise binary (broadcasting) --------------------------------------
Var add(const Var& a, const Var& b);
Var sub(const Var& a, const Var& b);
Var mul(const Var& a, const Var& b);
Var div(const Var& a, const Var& b);

// -- scalar ------------------------------------------------------------------
Var add_scalar(const Var& x, float s);
Var mul_scalar(const Var& x, float s);
/// x^p with real exponent (x must stay in the domain of powf).
Var pow_scalar(const Var& x, float p);

// -- elementwise unary --------------------------------------------------------
Var neg(const Var& x);
Var exp_op(const Var& x);
Var log_op(const Var& x);
Var sqrt_op(const Var& x);
Var sin_op(const Var& x);
Var cos_op(const Var& x);
/// arccos; clamp the argument yourself (see clamp) to stay differentiable.
Var acos_op(const Var& x);
Var tanh_op(const Var& x);
Var sigmoid(const Var& x);
Var silu(const Var& x);
Var abs_op(const Var& x);
Var reciprocal(const Var& x);
Var square(const Var& x);
/// Clamp to [lo, hi]; gradient is passed through inside the interval and
/// zero outside (subgradient convention).
Var clamp(const Var& x, float lo, float hi);

// -- linear algebra ------------------------------------------------------------
/// [m,k] @ [k,n] -> [m,n].
Var matmul(const Var& a, const Var& b);
Var transpose2d(const Var& x);

// -- reductions ---------------------------------------------------------------
/// Sum of all elements -> shape {1}.
Var sum_all(const Var& x);
/// Sum a 2-D tensor over `dim` (0 or 1).  keepdim keeps the reduced axis as 1.
Var sum_dim(const Var& x, index_t dim, bool keepdim = true);
Var mean_dim(const Var& x, index_t dim, bool keepdim = true);
Var mean_all(const Var& x);

// -- broadcasting helpers -------------------------------------------------------
/// Explicit broadcast of {1}, [C], [1,C], [N,1] to `shape`.
Var broadcast_to(const Var& x, const Shape& shape);
/// Reduce x back to `shape` (adjoint of broadcast_to); composite.
Var sum_to(const Var& x, const Shape& shape);

// -- indexing -------------------------------------------------------------------
/// Gather rows: out[k] = x[idx[k]].  x is [N,...], idx values in [0,N).
Var index_select0(const Var& x, std::vector<index_t> idx);
/// Scatter-add rows: out has `rows` rows; out[idx[k]] += src[k].
/// This is the message-aggregation primitive of the GNN.
Var index_add0(index_t rows, std::vector<index_t> idx, const Var& src);

// -- shape ------------------------------------------------------------------------
/// View with a new shape; no kernel, storage shared.
Var reshape(const Var& x, Shape shape);
/// Concatenate along dim 0 or 1 (2-D) or dim 0 (1-D).
Var cat(const std::vector<Var>& xs, index_t dim);
/// Contiguous slice [start, start+len) along `dim`.
Var narrow(const Var& x, index_t dim, index_t start, index_t len);
/// Adjoint of narrow: place x into a zero tensor whose `dim` has size
/// `total`, at offset `start`.
Var pad_slice(const Var& x, index_t dim, index_t start, index_t total);

// -- operators ----------------------------------------------------------------------
inline Var operator+(const Var& a, const Var& b) { return add(a, b); }
inline Var operator-(const Var& a, const Var& b) { return sub(a, b); }
inline Var operator*(const Var& a, const Var& b) { return mul(a, b); }
inline Var operator/(const Var& a, const Var& b) { return div(a, b); }
inline Var operator-(const Var& x) { return neg(x); }
inline Var operator+(const Var& a, float s) { return add_scalar(a, s); }
inline Var operator+(float s, const Var& a) { return add_scalar(a, s); }
inline Var operator-(const Var& a, float s) { return add_scalar(a, -s); }
inline Var operator-(float s, const Var& a) {
  return add_scalar(neg(a), s);
}
inline Var operator*(const Var& a, float s) { return mul_scalar(a, s); }
inline Var operator*(float s, const Var& a) { return mul_scalar(a, s); }
inline Var operator/(const Var& a, float s) { return mul_scalar(a, 1.0f / s); }

}  // namespace fastchg::ag::ops
