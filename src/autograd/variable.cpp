#include "autograd/variable.hpp"

#include <unordered_map>
#include <unordered_set>

#include "autograd/ops.hpp"
#include "core/alloc.hpp"
#include "core/replay.hpp"

namespace fastchg::ag {

namespace {

thread_local bool g_grad_enabled = true;

// Graph nodes ride the same allocator as the tensors they hold: in steady
// state a Node is a pool hit on creation and feeds the free list on graph
// teardown, alongside its value/grad storage.  Under NoGradGuard no inputs
// or backward closures are retained, so each op's Node + storage free as
// soon as the next op consumes them -- inference reuses blocks eagerly
// within the step instead of holding them to the step boundary.
std::shared_ptr<Node> new_node() {
  alloc::AllocatorPtr a = alloc::current_allocator();
  return std::allocate_shared<Node>(alloc::StlAdapter<Node>(std::move(a)));
}

}  // namespace

bool grad_enabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

Var::Var(Tensor value, bool requires_grad) {
  node_ = new_node();
  node_->value = std::move(value);
  node_->requires_grad = requires_grad && g_grad_enabled;
}

const Tensor& Var::value() const {
  FASTCHG_CHECK(defined(), "value() on undefined Var");
  return node_->value;
}

bool Var::requires_grad() const {
  return defined() && node_->requires_grad;
}

bool Var::is_leaf() const {
  FASTCHG_CHECK(defined(), "is_leaf() on undefined Var");
  return node_->backward_fn == nullptr;
}

Var Var::detach() const {
  FASTCHG_CHECK(defined(), "detach() on undefined Var");
  return Var(node_->value, /*requires_grad=*/false);
}

bool Var::has_grad() const { return defined() && node_->grad.defined(); }

const Tensor& Var::grad() const {
  FASTCHG_CHECK(has_grad(), "grad() on Var without gradient");
  return node_->grad;
}

Tensor& Var::mutable_grad() {
  FASTCHG_CHECK(defined(), "mutable_grad() on undefined Var");
  return node_->grad;
}

void Var::zero_grad() {
  if (defined() && node_->grad.defined()) node_->grad.fill_(0.0f);
}

void Var::set_grad(Tensor g) {
  FASTCHG_CHECK(defined(), "set_grad() on undefined Var");
  node_->grad = std::move(g);
}

Var Var::from_node(std::shared_ptr<Node> n) {
  Var v;
  v.node_ = std::move(n);
  return v;
}

Var make_op_node(const char* op, Tensor value, std::vector<Var> inputs,
                 BackwardFn backward_fn) {
  bool needs = false;
  if (g_grad_enabled) {
    for (const Var& in : inputs) needs = needs || in.requires_grad();
  }
  auto n = new_node();
  n->value = std::move(value);
  n->op = op;
  n->requires_grad = needs;
  if (needs) {
    n->inputs = std::move(inputs);
    n->backward_fn = std::move(backward_fn);
  }
  return Var::from_node(std::move(n));
}

namespace {

/// Iterative post-order DFS over the requires-grad subgraph; returns nodes
/// with inputs strictly before consumers.
std::vector<Node*> topo_order(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  struct Frame {
    Node* n;
    std::size_t next_input;
  };
  std::vector<Frame> stack;
  if (root->requires_grad) stack.push_back({root, 0});
  visited.insert(root);
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_input < f.n->inputs.size()) {
      const Var& in = f.n->inputs[f.next_input++];
      Node* child = in.node().get();
      if (child != nullptr && child->requires_grad &&
          visited.insert(child).second) {
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(f.n);
      stack.pop_back();
    }
  }
  return order;
}

/// Shared traversal: propagate gradients from `root` (seeded with `seed`)
/// and return the accumulator map.  When `leaves` is given, it receives
/// every leaf that received a gradient, in the deterministic order the
/// topo walk first reached it -- backward() iterates leaves through this
/// list rather than the pointer-hashed map, so the trailing
/// grad-accumulate sequence (and with it a replay capture's fingerprint
/// and slot numbering) is identical across runs.
std::unordered_map<Node*, Var> propagate(const Var& root, Var seed,
                                         bool create_graph,
                                         std::vector<Node*>* leaves) {
  FASTCHG_CHECK(root.defined(), "backward on undefined Var");
  FASTCHG_CHECK(root.requires_grad(),
                "backward on Var that does not require grad");
  std::unordered_map<Node*, Var> grads;
  grads[root.node().get()] = std::move(seed);
  if (leaves != nullptr && !root.node()->backward_fn) {
    leaves->push_back(root.node().get());
  }

  std::vector<Node*> order = topo_order(root.node().get());
  // Post-order puts producers first; walk consumers-to-producers.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* n = *it;
    auto git = grads.find(n);
    if (git == grads.end()) continue;  // unreachable from root's grad flow
    if (!n->backward_fn) continue;     // leaf: accumulated grad stays in map
    Var gout = git->second;
    std::vector<Var> gins = n->backward_fn(gout);
    FASTCHG_CHECK(gins.size() == n->inputs.size(),
                  "op " << n->op << ": backward returned " << gins.size()
                        << " grads for " << n->inputs.size() << " inputs");
    for (std::size_t i = 0; i < gins.size(); ++i) {
      if (!gins[i].defined()) continue;
      Node* in = n->inputs[i].node().get();
      if (in == nullptr || !in->requires_grad) continue;
      FASTCHG_CHECK(same_shape(gins[i].shape(), in->value.shape()),
                    "op " << n->op << ": grad shape "
                          << shape_str(gins[i].shape()) << " vs input shape "
                          << shape_str(in->value.shape()));
      Var g = create_graph ? gins[i] : gins[i].detach();
      auto [slot, inserted] = grads.try_emplace(in, g);
      if (!inserted) slot->second = ops::add(slot->second, g);
      if (inserted && leaves != nullptr && !in->backward_fn) {
        leaves->push_back(in);
      }
    }
    // Free this node's incoming gradient early unless the caller needs the
    // graph of gradients (mirrors eager gradient-buffer release on GPU).
    // Note: erase by key -- try_emplace above may have rehashed the map.
    if (!create_graph) grads.erase(n);
  }
  return grads;
}

}  // namespace

void backward(const Var& root, Tensor grad_seed, bool create_graph) {
  if (!grad_seed.defined()) grad_seed = Tensor::ones(root.shape());
  FASTCHG_CHECK(same_shape(grad_seed.shape(), root.shape()),
                "backward: seed shape " << shape_str(grad_seed.shape())
                                        << " vs root "
                                        << shape_str(root.shape()));
  Var seed(std::move(grad_seed), /*requires_grad=*/false);
  std::vector<Node*> leaves;
  auto grads = propagate(root, std::move(seed), create_graph, &leaves);
  for (Node* node : leaves) {
    auto it = grads.find(node);
    if (it == grads.end()) continue;
    const Var& g = it->second;
    if (!node->grad.defined()) {
      // First touch: transient leaves (fresh positions/strain each step)
      // land here every time and are deliberately not recorded -- a replay
      // capture runs against warm accumulators, so only the steady-state
      // `grad += g` below belongs on the tape.
      node->grad = g.value().clone();
    } else {
      node->grad.add_(g.value());
      if (auto* rec = replay::Recorder::active()) {
        rec->note_accumulate(node->grad, g.value());
      }
    }
  }
}

std::vector<Var> grad(const Var& output, const std::vector<Var>& inputs,
                      Var grad_output, bool create_graph) {
  if (!grad_output.defined()) {
    grad_output = Var(Tensor::ones(output.shape()), /*requires_grad=*/false);
  }
  // create_graph implies the propagation itself must keep per-node gradient
  // vars alive, so propagate() skips the early-release path.
  auto grads = propagate(output, grad_output, create_graph,
                         /*leaves=*/nullptr);
  std::vector<Var> out;
  out.reserve(inputs.size());
  for (const Var& in : inputs) {
    auto it = grads.find(in.node().get());
    out.push_back(it == grads.end() ? Var() : it->second);
  }
  return out;
}

}  // namespace fastchg::ag
