// Trace exporters and the perf-regression gate (docs/observability.md).
//
// Two views over perf::Trace events:
//   * Chrome trace_event JSON -- open in chrome://tracing or Perfetto; wall
//     spans and the virtual cluster's simulated lanes land in separate
//     process groups, one timeline lane per virtual device;
//   * flat per-phase summary -- count / total / mean / min / max per span
//     name, the textual analogue of Fig. 8's iteration decomposition.
//
// Plus the machine-readable bench-report format the bench_* binaries emit
// (BENCH_trace_<name>.json) and the comparison logic tools/perf_gate runs in
// CI: a fresh report regresses when a metric exceeds the checked-in baseline
// by more than the tolerance.  Metrics whose key ends in ".seconds" are
// wall-clock measurements and get their own (larger) tolerance so the gate
// survives CI machines of different speeds; all other metrics (kernel
// counts, peak bytes) are deterministic and gate tightly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "perf/trace.hpp"

namespace fastchg::perf {

// -- per-phase summary ------------------------------------------------------

struct PhaseSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_s = 0.0;
  double mean_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
};

/// Aggregate spans by name (wall and sim spans alike; durations are summed
/// on each span's own clock).  Sorted by total_s descending.
std::vector<PhaseSummary> summarize(const std::vector<TraceEvent>& events);

/// Render the summary as an aligned text table.
std::string summary_table(const std::vector<PhaseSummary>& rows);

// -- Chrome trace_event JSON ------------------------------------------------

/// Serialize events to the Chrome trace_event JSON object format.  Wall
/// spans go to pid 0 ("wall"), simulated spans to pid 1 ("virtual
/// cluster"), with thread_name metadata naming every lane ("device N" for
/// sim lanes).  Wall timestamps are rebased so the earliest wall span
/// starts at ts 0.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Write chrome_trace_json() to `path` (throws Error on I/O failure).
void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

/// Full JSON syntax check (objects, arrays, strings, numbers, literals).
/// Used by tests to validate exporter output without an external parser.
bool json_valid(const std::string& text);

// -- bench reports + regression gate ---------------------------------------

/// Flat machine-readable result of one bench run: named scalar metrics,
/// lower is better for every metric by convention.
struct BenchReport {
  std::string bench;                      ///< bench id, e.g. "fig8_iteration"
  std::map<std::string, double> metrics;  ///< key -> value (lower is better)
};

std::string bench_report_json(const BenchReport& r);
/// Parse a bench report; throws Error with a diagnostic on malformed input
/// (bad JSON, missing "bench"/"metrics", non-numeric metric).
BenchReport parse_bench_report(const std::string& json);
/// Load + parse; throws Error naming the path when missing or malformed.
BenchReport load_bench_report(const std::string& path);
/// Atomic write (tmp + rename), like the checkpoint writer.
void write_bench_report(const std::string& path, const BenchReport& r);

/// True for metrics measured in wall seconds (key ends in ".seconds").
bool is_time_metric(const std::string& key);

struct GateFinding {
  std::string metric;
  double baseline = 0.0;
  double fresh = 0.0;
  double ratio = 0.0;       ///< fresh / baseline (inf when baseline == 0)
  double tolerance = 0.0;   ///< allowed relative slack for this metric
  bool regressed = false;   ///< fresh > baseline * (1 + tolerance)
  bool missing = false;     ///< metric in baseline but absent from fresh
};

struct GateResult {
  std::vector<GateFinding> findings;  ///< one per baseline metric
  bool pass = true;                   ///< no regression, nothing missing
};

/// Compare a fresh run against the baseline.  Every baseline metric must be
/// present in the fresh report (a silently vanished metric is itself a
/// regression of coverage).  `tolerance` gates deterministic metrics;
/// `time_tolerance` gates ".seconds" metrics.
GateResult gate_compare(const BenchReport& baseline, const BenchReport& fresh,
                        double tolerance, double time_tolerance);

/// Render gate findings as an aligned text table.
std::string gate_table(const GateResult& g);

}  // namespace fastchg::perf
