#include "perf/timer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

namespace fastchg::perf {

void TimingStats::add(double seconds) { samples_.push_back(seconds); }

double TimingStats::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double TimingStats::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double TimingStats::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

double TimingStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double TimingStats::cov() const {
  const double m = mean();
  return m > 0.0 ? stddev() / m : 0.0;
}

std::string format_seconds(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
  }
  return buf;
}

}  // namespace fastchg::perf
