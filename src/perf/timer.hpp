// Wall-clock timing helpers used by the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace fastchg::perf {

/// Monotonic stopwatch.
class Timer {
 public:
  Timer() { reset(); }
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Simple accumulator for repeated timings (mean / min / max / stddev).
class TimingStats {
 public:
  void add(double seconds);
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;
  /// Coefficient of variance (stddev / mean); the paper's load-imbalance
  /// criterion (Fig. 9 reports 0.186 -> 0.064).
  double cov() const;
  const std::vector<double>& samples() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Render seconds as a human-friendly string ("12.3 ms", "1.52 s").
std::string format_seconds(double seconds);

}  // namespace fastchg::perf
