#include "perf/report.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "core/error.hpp"

namespace fastchg::perf {

namespace {

/// Minimal recursive-descent JSON reader: validates full JSON syntax and
/// exposes just enough structure (objects of strings/numbers) for the bench
/// report format.  Self-contained so the repo needs no JSON dependency.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : s_(text) {}

  bool validate() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

  // -- primitives shared with the bench-report parser --------------------
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool string(std::string* out = nullptr) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    std::string val;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char esc = s_[pos_];
        switch (esc) {
          case '"': val += '"'; break;
          case '\\': val += '\\'; break;
          case '/': val += '/'; break;
          case 'b': val += '\b'; break;
          case 'f': val += '\f'; break;
          case 'n': val += '\n'; break;
          case 'r': val += '\r'; break;
          case 't': val += '\t'; break;
          case 'u': {
            if (pos_ + 4 >= s_.size()) return false;
            for (int k = 1; k <= 4; ++k) {
              if (!std::isxdigit(static_cast<unsigned char>(s_[pos_ + k]))) {
                return false;
              }
            }
            pos_ += 4;
            val += '?';  // code point not needed by any caller
            break;
          }
          default: return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      } else {
        val += c;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    if (out) *out = std::move(val);
    return true;
  }

  bool number(double* out = nullptr) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    if (pos_ >= s_.size() || !std::isdigit(static_cast<unsigned char>(s_[pos_])))
      return false;
    while (pos_ < s_.size() && std::isdigit(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      if (pos_ >= s_.size() ||
          !std::isdigit(static_cast<unsigned char>(s_[pos_])))
        return false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_])))
        ++pos_;
    }
    if (out) *out = std::stod(s_.substr(start, pos_ - start));
    return true;
  }

  bool literal(const char* word) {
    skip_ws();
    const std::size_t n = std::char_traits<char>::length(word);
    if (s_.compare(pos_, n, word) != 0) return false;
    pos_ += n;
    return true;
  }

  bool value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string()) return false;
      if (!eat(':')) return false;
      if (!value()) return false;
    } while (eat(','));
    return eat('}');
  }

  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }

  std::size_t pos() const { return pos_; }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

void json_escape(std::ostream& os, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

void json_escape(std::ostream& os, const std::string& s) {
  json_escape(os, s.c_str());
}

/// Shortest float formatting that still round-trips (printf %g at 17 digits
/// is ugly; 12 significant digits is plenty for metrics and timestamps).
std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  // JSON has no inf/nan; clamp to a sentinel rather than emit invalid JSON.
  if (!std::isfinite(v)) return v > 0 ? "1e308" : "-1e308";
  return buf;
}

}  // namespace

// -- summary ----------------------------------------------------------------

std::vector<PhaseSummary> summarize(const std::vector<TraceEvent>& events) {
  std::map<std::string, PhaseSummary> by_name;
  for (const TraceEvent& ev : events) {
    PhaseSummary& p = by_name[ev.name];
    const double s = ev.dur_us * 1e-6;
    if (p.count == 0) {
      p.name = ev.name;
      p.min_s = s;
      p.max_s = s;
    } else {
      p.min_s = std::min(p.min_s, s);
      p.max_s = std::max(p.max_s, s);
    }
    ++p.count;
    p.total_s += s;
  }
  std::vector<PhaseSummary> rows;
  rows.reserve(by_name.size());
  for (auto& [name, p] : by_name) {
    p.mean_s = p.total_s / static_cast<double>(p.count);
    rows.push_back(std::move(p));
  }
  std::sort(rows.begin(), rows.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              return a.total_s > b.total_s;
            });
  return rows;
}

std::string summary_table(const std::vector<PhaseSummary>& rows) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-28s %8s %12s %12s %12s %12s\n", "span",
                "count", "total", "mean", "min", "max");
  os << line;
  for (const PhaseSummary& p : rows) {
    std::snprintf(line, sizeof(line),
                  "%-28s %8llu %11.4fs %11.6fs %11.6fs %11.6fs\n",
                  p.name.c_str(), static_cast<unsigned long long>(p.count),
                  p.total_s, p.mean_s, p.min_s, p.max_s);
    os << line;
  }
  return os.str();
}

// -- Chrome trace_event -----------------------------------------------------

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  // Rebase wall timestamps so the trace opens at ~0 instead of raw
  // steady_clock microseconds; sim timestamps already start at 0.
  double wall0 = std::numeric_limits<double>::max();
  for (const TraceEvent& ev : events) {
    if (ev.clock == TraceClock::kWall) wall0 = std::min(wall0, ev.ts_us);
  }
  if (wall0 == std::numeric_limits<double>::max()) wall0 = 0.0;

  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& obj) {
    if (!first) os << ',';
    first = false;
    os << '\n' << obj;
  };

  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,"
       "\"args\":{\"name\":\"wall clock\"}}");
  emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
       "\"args\":{\"name\":\"virtual cluster (simulated time)\"}}");

  // One thread_name metadata record per lane actually used.
  std::map<std::pair<int, int>, bool> lanes;  // (pid, tid) -> seen
  for (const TraceEvent& ev : events) {
    const int pid = ev.clock == TraceClock::kSim ? 1 : 0;
    auto key = std::make_pair(pid, ev.lane);
    if (lanes.emplace(key, true).second) {
      std::ostringstream m;
      m << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":" << ev.lane << ",\"args\":{\"name\":\"";
      if (pid == 1) {
        m << "device " << ev.lane;
      } else {
        m << "thread " << ev.lane;
      }
      m << "\"}}";
      emit(m.str());
    }
  }

  for (const TraceEvent& ev : events) {
    const int pid = ev.clock == TraceClock::kSim ? 1 : 0;
    const double ts =
        ev.clock == TraceClock::kWall ? ev.ts_us - wall0 : ev.ts_us;
    std::ostringstream e;
    e << "{\"name\":\"";
    json_escape(e, ev.name);
    e << "\",\"cat\":\"";
    json_escape(e, ev.cat);
    e << "\",\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << ev.lane
      << ",\"ts\":" << num(ts) << ",\"dur\":" << num(ev.dur_us)
      << ",\"args\":{\"depth\":" << ev.depth << "}}";
    emit(e.str());
  }
  os << "\n]}\n";
  return os.str();
}

void write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  FASTCHG_CHECK(f.good(), "write_chrome_trace: cannot open " << path);
  f << chrome_trace_json(events);
  FASTCHG_CHECK(f.good(), "write_chrome_trace: write failed for " << path);
}

bool json_valid(const std::string& text) {
  return JsonCursor(text).validate();
}

// -- bench reports ----------------------------------------------------------

std::string bench_report_json(const BenchReport& r) {
  std::ostringstream os;
  os << "{\n  \"bench\": \"";
  json_escape(os, r.bench);
  os << "\",\n  \"metrics\": {";
  bool first = true;
  for (const auto& [k, v] : r.metrics) {
    os << (first ? "\n" : ",\n") << "    \"";
    json_escape(os, k);
    os << "\": " << num(v);
    first = false;
  }
  os << "\n  }\n}\n";
  return os.str();
}

BenchReport parse_bench_report(const std::string& json) {
  FASTCHG_CHECK(json_valid(json),
                "bench report: malformed JSON (syntax error near byte "
                    << JsonCursor(json).pos() << ")");
  JsonCursor c(json);
  BenchReport r;
  bool have_bench = false, have_metrics = false;
  FASTCHG_CHECK(c.eat('{'), "bench report: top-level value must be an object");
  if (!c.eat('}')) {
    do {
      std::string key;
      FASTCHG_CHECK(c.string(&key), "bench report: expected object key");
      FASTCHG_CHECK(c.eat(':'), "bench report: expected ':' after key");
      if (key == "bench") {
        FASTCHG_CHECK(c.string(&r.bench),
                      "bench report: \"bench\" must be a string");
        have_bench = true;
      } else if (key == "metrics") {
        FASTCHG_CHECK(c.eat('{'),
                      "bench report: \"metrics\" must be an object");
        if (!c.eat('}')) {
          do {
            std::string mk;
            double mv = 0.0;
            FASTCHG_CHECK(c.string(&mk), "bench report: expected metric key");
            FASTCHG_CHECK(c.eat(':'), "bench report: expected ':' in metrics");
            FASTCHG_CHECK(c.number(&mv),
                          "bench report: metric \"" << mk
                              << "\" must be a number");
            r.metrics[mk] = mv;
          } while (c.eat(','));
          FASTCHG_CHECK(c.eat('}'), "bench report: unterminated metrics");
        }
        have_metrics = true;
      } else {
        FASTCHG_CHECK(c.value(), "bench report: bad value for \"" << key
                                                                  << "\"");
      }
    } while (c.eat(','));
    FASTCHG_CHECK(c.eat('}'), "bench report: unterminated object");
  }
  FASTCHG_CHECK(have_bench, "bench report: missing \"bench\" field");
  FASTCHG_CHECK(have_metrics, "bench report: missing \"metrics\" field");
  return r;
}

BenchReport load_bench_report(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  FASTCHG_CHECK(f.good(),
                "bench report: cannot open " << path
                    << " (missing baseline? see docs/observability.md)");
  std::ostringstream buf;
  buf << f.rdbuf();
  try {
    return parse_bench_report(buf.str());
  } catch (const Error& e) {
    FASTCHG_CHECK(false, "bench report " << path << ": " << e.what());
    throw;  // unreachable; FASTCHG_CHECK throws
  }
}

void write_bench_report(const std::string& path, const BenchReport& r) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    FASTCHG_CHECK(f.good(), "bench report: cannot open " << tmp);
    f << bench_report_json(r);
    FASTCHG_CHECK(f.good(), "bench report: write failed for " << tmp);
  }
  FASTCHG_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
                "bench report: rename " << tmp << " -> " << path
                                        << " failed");
}

// -- regression gate --------------------------------------------------------

bool is_time_metric(const std::string& key) {
  static const std::string suffix = ".seconds";
  return key.size() >= suffix.size() &&
         key.compare(key.size() - suffix.size(), suffix.size(), suffix) == 0;
}

GateResult gate_compare(const BenchReport& baseline, const BenchReport& fresh,
                        double tolerance, double time_tolerance) {
  GateResult g;
  for (const auto& [key, base] : baseline.metrics) {
    GateFinding f;
    f.metric = key;
    f.baseline = base;
    f.tolerance = is_time_metric(key) ? time_tolerance : tolerance;
    auto it = fresh.metrics.find(key);
    if (it == fresh.metrics.end()) {
      f.missing = true;
      g.pass = false;
    } else {
      f.fresh = it->second;
      f.ratio = base != 0.0
                    ? f.fresh / base
                    : (f.fresh == 0.0
                           ? 1.0
                           : std::numeric_limits<double>::infinity());
      f.regressed = f.fresh > base * (1.0 + f.tolerance) + 1e-12;
      if (f.regressed) g.pass = false;
    }
    g.findings.push_back(std::move(f));
  }
  return g;
}

std::string gate_table(const GateResult& g) {
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-36s %14s %14s %8s %8s  %s\n", "metric",
                "baseline", "fresh", "ratio", "tol", "verdict");
  os << line;
  for (const GateFinding& f : g.findings) {
    if (f.missing) {
      std::snprintf(line, sizeof(line), "%-36s %14.6g %14s %8s %7.0f%%  %s\n",
                    f.metric.c_str(), f.baseline, "MISSING", "-",
                    f.tolerance * 100.0, "FAIL (metric vanished)");
    } else {
      std::snprintf(line, sizeof(line), "%-36s %14.6g %14.6g %7.2fx %7.0f%%  %s\n",
                    f.metric.c_str(), f.baseline, f.fresh, f.ratio,
                    f.tolerance * 100.0,
                    f.regressed ? "FAIL (regression)"
                    : f.ratio < 0.9 ? "ok (improved)"
                                    : "ok");
    }
    os << line;
  }
  return os.str();
}

}  // namespace fastchg::perf
