// Performance accounting: kernel-launch counter and tensor-memory tracker.
//
// The paper evaluates its system optimizations partly through (i) the number
// of launched CUDA kernels (Fig. 8b) and (ii) GPU memory usage (Fig. 8c).
// On our CPU substrate every primitive tensor operation plays the role of a
// kernel launch: a fused op calls count_kernel() once, a naive op-by-op
// composition calls it once per primitive.  Tensor storage allocation /
// deallocation is routed through the memory tracker so live and peak bytes
// (including autograd intermediates) can be reported per iteration.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace fastchg::perf {

/// Global counters.  All mutation goes through the free functions below,
/// which serialize on an internal mutex: the serve layer runs independent
/// micro-batches on pool workers concurrently, so kernel launches, tensor
/// allocations and robustness events may fire from several threads at once.
/// Direct field reads are only safe when no parallel section is running
/// (benches and tests read between repetitions, which is fine).
struct Counters {
  std::uint64_t kernel_launches = 0;
  std::uint64_t bytes_live = 0;
  std::uint64_t bytes_peak = 0;
  std::uint64_t alloc_count = 0;
  // Allocator-layer accounting (core/alloc.hpp, docs/memory.md).  Unlike
  // bytes_live/bytes_peak -- which track *logical* tensor bytes regardless
  // of allocator -- these describe physical behavior: system_allocs counts
  // real heap allocations made through the Allocator layer (the
  // mallocs_per_step metric), pool_hits/pool_misses classify pooled
  // requests, and pool_slab_bytes/pool_high_water aggregate slab memory
  // held from the system across every pool in the process.
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;
  std::uint64_t system_allocs = 0;
  std::uint64_t pool_slab_bytes = 0;
  std::uint64_t pool_high_water = 0;
  /// Slab bytes returned upstream by PoolAllocator::trim()/trim_watermark()
  /// -- the long-lived-server watermark policy (docs/memory.md) aggregated
  /// across every pool in the process.
  std::uint64_t pool_trimmed_bytes = 0;
  // Recorded-step replay accounting (core/replay.hpp, docs/replay.md).
  // hits = steps executed as flat pre-planned programs, misses = cache
  // lookups that ran eager (cold key, warm-up sighting, capture in flight,
  // program busy on another thread), fallbacks = the subset of misses where
  // a cached program existed but could not be used (bind/validation failure
  // or lease contention), captures = programs recorded and stored.  Like
  // the pool counters these fire from serve workers concurrently, so they
  // live under the same mutex as every other mutation -- including reset(),
  // which zeroes the rates but NOT replay_plan_bytes: that is a gauge of
  // slab bytes currently held by live programs (analogous to bytes_live).
  std::uint64_t replay_hits = 0;
  std::uint64_t replay_misses = 0;
  std::uint64_t replay_fallbacks = 0;
  std::uint64_t replay_captures = 0;
  std::uint64_t replay_plan_bytes = 0;
  // Offline fusion accounting (core/fuse.hpp, docs/replay.md): spans fused
  // and counted kernels removed across every program captured since the
  // last reset.  Rates, not gauges: reset() zeroes them.
  std::uint64_t fuse_spans = 0;
  std::uint64_t fuse_kernels_removed = 0;
  // Per-op-name launch counts (for attribution tables in benches).
  std::map<std::string, std::uint64_t> per_op;
  bool per_op_enabled = false;
  // Robustness events (serve-layer fallbacks, MD watchdog trips, retries);
  // always on -- these fire orders of magnitude less often than kernels.
  std::map<std::string, std::uint64_t> events;

  /// Copy of the current accounting state.  Benches snapshot before and
  /// after a repetition to attribute counts to exactly that repetition.
  /// Takes the counter mutex so a snapshot is consistent even while pool
  /// workers are still recording.
  Counters snapshot() const;
  /// Reset everything a bench repetition accumulates: kernel launches,
  /// per-op map, allocation count, events, pool hit/miss/system-alloc
  /// counts, and the watermarks (bytes_peak rebased to the currently live
  /// bytes, pool_high_water to the currently held slab bytes -- live
  /// allocations and warm slabs still exist).  Without this, repetition 1
  /// inherits repetition 0's counts.  Runs under the same mutex as every
  /// mutation, so a reset can't tear pool statistics mid-update.
  void reset();
};

Counters& counters();

/// Record one "kernel launch" for op `name`.
void count_kernel(const char* name);

/// Record `n` launches at once (e.g. a serial per-sample loop).
void count_kernels(const char* name, std::uint64_t n);

void track_alloc(std::uint64_t bytes);
void track_free(std::uint64_t bytes);

/// Allocator-layer hooks (called by core/alloc.cpp only).
void track_system_alloc();               ///< one real heap allocation
void track_pool_hit();                   ///< pooled request served by a free list
void track_pool_miss();                  ///< pooled request that went upstream
void track_pool_slab(std::int64_t delta);  ///< slab bytes acquired (+) / trimmed (-)
void track_pool_trim(std::uint64_t bytes); ///< slab bytes released by a trim

/// Replay-layer hooks (called by core/replay.cpp only).
void track_replay_hit();
void track_replay_miss();
void track_replay_fallback();
void track_replay_capture();
/// Program slab acquired (+) at capture / released (-) at destruction.
void track_replay_plan_bytes(std::int64_t delta);
/// Fusion stage ran on a captured tape: spans fused, counted kernels gone.
void track_fuse(std::uint64_t spans, std::uint64_t kernels_removed);

/// Record `n` occurrences of a robustness event (e.g. "serve.fp32_fallback",
/// "md.dt_halved").  See docs/serving.md for the event vocabulary.
void count_event(const char* name, std::uint64_t n = 1);
/// Occurrences recorded for `name` (0 when never fired).
std::uint64_t event_count(const std::string& name);
/// Clear the event map.
void reset_events();

/// Reset launch counter and per-op map (memory counters are left alone).
void reset_kernels();
/// Reset the peak-memory watermark to the current live bytes.
void reset_peak();
/// Enable/disable per-op attribution (small map overhead when on).
void set_per_op(bool enabled);

}  // namespace fastchg::perf
