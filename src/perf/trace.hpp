// Hierarchical span tracer for the whole stack (DESIGN.md; docs/observability.md).
//
// The paper attributes its 8.3-GPU-day -> 1.53-h speedup through per-phase
// timing breakdowns (Fig. 8's iteration decomposition).  This tracer gives
// the reproduction the same visibility: RAII spans on the wall-clock hot
// paths (basis, interaction blocks, readout, fused GatedMLP, trainer phases,
// serve pipeline) plus explicit-timestamp spans on the *simulated* clock of
// the virtual GPU cluster (one lane per virtual device: compute, straggler
// slack, exposed all-reduce, exposed H2D, recovery).
//
// Design constraints:
//   * near-zero cost when disabled (the default): one relaxed atomic load,
//     no clock read, no allocation;
//   * thread-safe when enabled: spans may be recorded from parallel_for
//     workers and the prefetch thread; a mutex-guarded preallocated ring
//     buffer keeps recording allocation-free after enable();
//   * span names are static string literals (never owned), so recording a
//     span copies two pointers and four numbers.
//
// Exporters live in perf/report.hpp: Chrome trace_event JSON (open in
// chrome://tracing or https://ui.perfetto.dev) and a flat per-phase summary.
#pragma once

#include <cstdint>
#include <vector>

namespace fastchg::perf {

/// Which clock a span's timestamps belong to.  Wall spans are measured on
/// this machine (microseconds since trace_enable()); sim spans carry the
/// virtual cluster's simulated time.  The Chrome exporter puts each clock in
/// its own process group so the two timelines never visually interleave.
enum class TraceClock : std::uint8_t { kWall = 0, kSim = 1 };

struct TraceEvent {
  const char* name = "";  ///< static literal; NOT owned
  const char* cat = "";   ///< static literal; NOT owned
  TraceClock clock = TraceClock::kWall;
  int lane = 0;        ///< wall: thread slot; sim: virtual device id
  double ts_us = 0.0;  ///< span start (us on the event's clock)
  double dur_us = 0.0; ///< span duration (us)
  int depth = 0;       ///< nesting depth at record time (wall spans)
};

/// Global trace sink.  Disabled by default; enable() preallocates the ring
/// buffer, after which record() never allocates.  When more spans arrive
/// than the ring holds, the oldest are overwritten and dropped() counts the
/// overflow -- recording never fails and never blocks on memory.
class Trace {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  static Trace& instance();

  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  bool enabled() const;

  /// Drop all recorded events (capacity and enabled state are kept).
  void clear();
  /// Disable and release the ring buffer entirely.
  void shutdown();

  /// Record one finished span.  No-op when disabled.  Thread-safe.
  void record(const TraceEvent& ev);

  /// Chronologically sorted snapshot (by clock, then lane, then start time).
  std::vector<TraceEvent> events() const;

  /// Spans recorded since enable()/clear(), including overwritten ones.
  std::uint64_t total_recorded() const;
  /// Spans overwritten because the ring was full.
  std::uint64_t dropped() const;
  /// Current ring capacity (0 until the first enable()).
  std::size_t capacity() const;

 private:
  Trace() = default;
  struct Impl;
  Impl& impl() const;
};

// -- Free-function conveniences (the instrumentation calls these) ----------

/// One relaxed atomic load; safe to call on any hot path.
bool trace_enabled();
void trace_enable(std::size_t capacity = Trace::kDefaultCapacity);
void trace_disable();
void trace_clear();
std::vector<TraceEvent> trace_events();

/// Record a span on a virtual device's *simulated* timeline.  `start_s` and
/// `dur_s` are simulated seconds (the ledger DataParallelTrainer accounts
/// in); the exporter shows one lane per device.  No-op when disabled.
void trace_sim_span(const char* name, const char* cat, int device,
                    double start_s, double dur_s);

/// RAII wall-clock span: measures from construction to destruction and
/// records on the calling thread's lane.  `name`/`cat` must be static
/// string literals.  When tracing is disabled at construction the object is
/// inert (no clock read, nothing recorded at destruction).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "span");
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  const char* cat_;
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace fastchg::perf
