#include "perf/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>

namespace fastchg::perf {

namespace {

using steady = std::chrono::steady_clock;

/// Small dense thread ids for wall-clock lanes (thread 0 is whichever
/// thread records first -- normally the main thread).
std::atomic<int> g_next_thread_lane{0};

int this_thread_lane() {
  thread_local int lane = g_next_thread_lane.fetch_add(1);
  return lane;
}

/// Wall-span nesting depth, per thread.
thread_local int g_depth = 0;

}  // namespace

struct Trace::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::vector<TraceEvent> ring;  // preallocated at enable()
  std::size_t capacity = 0;
  std::uint64_t count = 0;  // total recorded since enable()/clear()
  steady::time_point epoch{};
};

Trace::Impl& Trace::impl() const {
  static Impl i;
  return i;
}

Trace& Trace::instance() {
  static Trace t;
  return t;
}

void Trace::enable(std::size_t capacity) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.capacity = std::max<std::size_t>(1, capacity);
  i.ring.assign(i.capacity, TraceEvent{});
  i.count = 0;
  i.epoch = steady::now();
  i.enabled.store(true, std::memory_order_release);
}

void Trace::disable() {
  impl().enabled.store(false, std::memory_order_release);
}

bool Trace::enabled() const {
  return impl().enabled.load(std::memory_order_relaxed);
}

void Trace::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  i.count = 0;
  i.epoch = steady::now();
}

void Trace::shutdown() {
  Impl& i = impl();
  i.enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(i.mu);
  i.ring.clear();
  i.ring.shrink_to_fit();
  i.capacity = 0;
  i.count = 0;
}

void Trace::record(const TraceEvent& ev) {
  Impl& i = impl();
  if (!i.enabled.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(i.mu);
  if (i.capacity == 0) return;  // enabled flag raced with shutdown()
  i.ring[static_cast<std::size_t>(i.count % i.capacity)] = ev;
  ++i.count;
}

std::vector<TraceEvent> Trace::events() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  const std::uint64_t kept =
      std::min<std::uint64_t>(i.count, i.capacity);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(kept));
  // Oldest surviving slot first, so the pre-sort order is already roughly
  // chronological even after the ring wrapped.
  const std::uint64_t first = i.count - kept;
  for (std::uint64_t k = first; k < i.count; ++k) {
    out.push_back(i.ring[static_cast<std::size_t>(k % i.capacity)]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.clock != b.clock) return a.clock < b.clock;
                     if (a.lane != b.lane) return a.lane < b.lane;
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::uint64_t Trace::total_recorded() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.count;
}

std::uint64_t Trace::dropped() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.count > i.capacity ? i.count - i.capacity : 0;
}

std::size_t Trace::capacity() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mu);
  return i.capacity;
}

bool trace_enabled() { return Trace::instance().enabled(); }
void trace_enable(std::size_t capacity) { Trace::instance().enable(capacity); }
void trace_disable() { Trace::instance().disable(); }
void trace_clear() { Trace::instance().clear(); }
std::vector<TraceEvent> trace_events() { return Trace::instance().events(); }

void trace_sim_span(const char* name, const char* cat, int device,
                    double start_s, double dur_s) {
  if (!trace_enabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.clock = TraceClock::kSim;
  ev.lane = device;
  ev.ts_us = start_s * 1e6;
  ev.dur_us = dur_s * 1e6;
  Trace::instance().record(ev);
}

// Wall timestamps are raw steady_clock microseconds (monotonic); the Chrome
// exporter rebases them to the earliest wall span so traces start near 0.
TraceSpan::TraceSpan(const char* name, const char* cat)
    : name_(name), cat_(cat) {
  if (!trace_enabled()) return;
  active_ = true;
  ++g_depth;
  start_us_ = std::chrono::duration<double, std::micro>(
                  steady::now().time_since_epoch())
                  .count();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double end_us = std::chrono::duration<double, std::micro>(
                            steady::now().time_since_epoch())
                            .count();
  --g_depth;
  TraceEvent ev;
  ev.name = name_;
  ev.cat = cat_;
  ev.clock = TraceClock::kWall;
  ev.lane = this_thread_lane();
  ev.ts_us = start_us_;
  ev.dur_us = end_us - start_us_;
  ev.depth = g_depth;
  Trace::instance().record(ev);
}

}  // namespace fastchg::perf
