#include "perf/counters.hpp"

#include <mutex>

namespace fastchg::perf {

namespace {

/// Serializes every counter mutation.  Kernel launches and tensor
/// allocations fire from pool workers when the serve layer runs independent
/// micro-batches concurrently; an uncontended lock costs tens of
/// nanoseconds against ops that touch whole tensors, so this stays cheap.
std::mutex& counters_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

Counters& counters() {
  static Counters c;
  return c;
}

Counters Counters::snapshot() const {
  std::lock_guard<std::mutex> lock(counters_mutex());
  return *this;
}

void Counters::reset() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  kernel_launches = 0;
  per_op.clear();
  alloc_count = 0;
  events.clear();
  bytes_peak = bytes_live;
  pool_hits = 0;
  pool_misses = 0;
  system_allocs = 0;
  pool_trimmed_bytes = 0;
  replay_hits = 0;
  replay_misses = 0;
  replay_fallbacks = 0;
  replay_captures = 0;
  fuse_spans = 0;
  fuse_kernels_removed = 0;
  // replay_plan_bytes is a gauge of slabs held by live programs (like
  // bytes_live), not a rate: it survives resets untouched.
  // Slabs survive resets by design (they are the warm state pooling exists
  // for); the high-water mark rebases onto them like bytes_peak does onto
  // bytes_live.
  pool_high_water = pool_slab_bytes;
}

void count_kernel(const char* name) { count_kernels(name, 1); }

void count_kernels(const char* name, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  c.kernel_launches += n;
  if (c.per_op_enabled) c.per_op[name] += n;
}

void track_alloc(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  c.bytes_live += bytes;
  c.alloc_count += 1;
  if (c.bytes_live > c.bytes_peak) c.bytes_peak = c.bytes_live;
}

void track_free(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  c.bytes_live -= (bytes <= c.bytes_live) ? bytes : c.bytes_live;
}

void track_system_alloc() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().system_allocs += 1;
}

void track_pool_hit() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().pool_hits += 1;
}

void track_pool_miss() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().pool_misses += 1;
}

void track_pool_slab(std::int64_t delta) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  if (delta >= 0) {
    c.pool_slab_bytes += static_cast<std::uint64_t>(delta);
  } else {
    const auto d = static_cast<std::uint64_t>(-delta);
    c.pool_slab_bytes -= (d <= c.pool_slab_bytes) ? d : c.pool_slab_bytes;
  }
  if (c.pool_slab_bytes > c.pool_high_water) {
    c.pool_high_water = c.pool_slab_bytes;
  }
}

void track_pool_trim(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().pool_trimmed_bytes += bytes;
}

void track_replay_hit() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().replay_hits += 1;
}

void track_replay_miss() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().replay_misses += 1;
}

void track_replay_fallback() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().replay_fallbacks += 1;
}

void track_replay_capture() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().replay_captures += 1;
}

void track_replay_plan_bytes(std::int64_t delta) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  if (delta >= 0) {
    c.replay_plan_bytes += static_cast<std::uint64_t>(delta);
  } else {
    const auto d = static_cast<std::uint64_t>(-delta);
    c.replay_plan_bytes -= (d <= c.replay_plan_bytes) ? d : c.replay_plan_bytes;
  }
}

void track_fuse(std::uint64_t spans, std::uint64_t kernels_removed) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  c.fuse_spans += spans;
  c.fuse_kernels_removed += kernels_removed;
}

void count_event(const char* name, std::uint64_t n) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().events[name] += n;
}

std::uint64_t event_count(const std::string& name) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  const Counters& c = counters();
  auto it = c.events.find(name);
  return it == c.events.end() ? 0 : it->second;
}

void reset_events() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().events.clear();
}

void reset_kernels() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  c.kernel_launches = 0;
  c.per_op.clear();
}

void reset_peak() {
  std::lock_guard<std::mutex> lock(counters_mutex());
  Counters& c = counters();
  c.bytes_peak = c.bytes_live;
}

void set_per_op(bool enabled) {
  std::lock_guard<std::mutex> lock(counters_mutex());
  counters().per_op_enabled = enabled;
}

}  // namespace fastchg::perf
