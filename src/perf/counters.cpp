#include "perf/counters.hpp"

namespace fastchg::perf {

Counters& counters() {
  static Counters c;
  return c;
}

void Counters::reset() {
  kernel_launches = 0;
  per_op.clear();
  alloc_count = 0;
  events.clear();
  bytes_peak = bytes_live;
}

void count_kernel(const char* name) { count_kernels(name, 1); }

void count_kernels(const char* name, std::uint64_t n) {
  Counters& c = counters();
  c.kernel_launches += n;
  if (c.per_op_enabled) c.per_op[name] += n;
}

void track_alloc(std::uint64_t bytes) {
  Counters& c = counters();
  c.bytes_live += bytes;
  c.alloc_count += 1;
  if (c.bytes_live > c.bytes_peak) c.bytes_peak = c.bytes_live;
}

void track_free(std::uint64_t bytes) {
  Counters& c = counters();
  c.bytes_live -= (bytes <= c.bytes_live) ? bytes : c.bytes_live;
}

void count_event(const char* name, std::uint64_t n) {
  counters().events[name] += n;
}

std::uint64_t event_count(const std::string& name) {
  const Counters& c = counters();
  auto it = c.events.find(name);
  return it == c.events.end() ? 0 : it->second;
}

void reset_events() { counters().events.clear(); }

void reset_kernels() {
  Counters& c = counters();
  c.kernel_launches = 0;
  c.per_op.clear();
}

void reset_peak() {
  Counters& c = counters();
  c.bytes_peak = c.bytes_live;
}

void set_per_op(bool enabled) { counters().per_op_enabled = enabled; }

}  // namespace fastchg::perf
