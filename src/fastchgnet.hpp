// Umbrella header: the full public API of the FastCHGNet reproduction.
//
//   #include "fastchgnet.hpp"
//
// pulls in everything a downstream application needs; individual headers
// remain available for faster incremental builds.
#pragma once

// Core substrate
#include "core/error.hpp"        // fastchg::Error, FASTCHG_CHECK
#include "core/parallel_for.hpp" // kernel threading
#include "core/rng.hpp"          // deterministic randomness
#include "core/tensor.hpp"       // dense float32 tensors
#include "perf/counters.hpp"     // kernel/memory accounting
#include "perf/timer.hpp"

// Autograd + NN
#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "autograd/variable.hpp"
#include "nn/embedding.hpp"
#include "nn/gated_mlp.hpp"
#include "nn/layernorm.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/serialize.hpp"

// Data pipeline
#include "data/batch.hpp"
#include "data/crystal.hpp"
#include "data/dataset.hpp"
#include "data/dataset_io.hpp"
#include "data/generator.hpp"
#include "data/graph.hpp"
#include "data/neighbor.hpp"
#include "data/oracle.hpp"
#include "data/prefetch.hpp"

// Model
#include "basis/envelope.hpp"
#include "basis/fourier.hpp"
#include "basis/rbf.hpp"
#include "chgnet/charge.hpp"
#include "chgnet/config.hpp"
#include "chgnet/model.hpp"
#include "fastchgnet/heads.hpp"
#include "fastchgnet/quantize.hpp"

// Training
#include "train/adam.hpp"
#include "train/atom_ref.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "train/scheduler.hpp"
#include "train/trainer.hpp"

// Multi-device
#include "parallel/bucketing.hpp"
#include "parallel/comm_model.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/sampler.hpp"
#include "parallel/scaling.hpp"

// Molecular dynamics
#include "md/md.hpp"
#include "md/observables.hpp"
#include "md/relax.hpp"
