#include "md/md.hpp"

#include <cmath>
#include <sstream>

#include "core/rng.hpp"
#include "data/batch.hpp"
#include "perf/counters.hpp"
#include "perf/timer.hpp"
#include "serve/validate.hpp"

namespace fastchg::md {

double atomic_mass(index_t z) {
  // ~2Z is a serviceable approximation across the periodic table for a
  // synthetic-species simulator (H is the only strong outlier).
  return z == 1 ? 1.008 : 2.0 * static_cast<double>(z);
}

MDSimulator::MDSimulator(const model::CHGNet& net, data::Crystal crystal,
                         MDConfig cfg, Unvalidated)
    : net_(net),
      crystal_(std::move(crystal)),
      cfg_(cfg),
      thermo_rng_(cfg.seed + 0x7e4),
      drift_(cfg.max_drift_ev_per_atom, crystal_.natoms()),
      dt_cur_(cfg.dt_fs) {
  if (cfg_.verlet_skin > 0.0) {
    verlet_.emplace(cfg_.graph, cfg_.verlet_skin);
  }
  init_velocities();
}

MDSimulator::MDSimulator(const model::CHGNet& net, data::Crystal crystal,
                         MDConfig cfg)
    : MDSimulator(net, std::move(crystal), cfg, Unvalidated{}) {
  const auto valid = serve::validate_crystal(crystal_, cfg_.limits);
  FASTCHG_CHECK(valid.ok(), "MD input rejected: " << valid.error().message);
  const auto forces = try_compute_forces();
  FASTCHG_CHECK(forces.ok(),
                "MD initial forward failed: " << forces.error().message);
  drift_.reset(total_energy());
}

serve::Result<MDSimulator> MDSimulator::create(const model::CHGNet& net,
                                               data::Crystal crystal,
                                               MDConfig cfg) {
  FASTCHG_SERVE_TRY(serve::validate_crystal(crystal, cfg.limits));
  MDSimulator sim(net, std::move(crystal), cfg, Unvalidated{});
  FASTCHG_SERVE_TRY(sim.try_compute_forces());
  sim.drift_.reset(sim.total_energy());
  return sim;
}

void MDSimulator::init_velocities() {
  const index_t n = crystal_.natoms();
  vel_.assign(static_cast<std::size_t>(n), data::Vec3{});
  force_.assign(static_cast<std::size_t>(n), data::Vec3{});
  mass_.resize(static_cast<std::size_t>(n));
  Rng rng(cfg_.seed);
  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    mass_[si] = atomic_mass(crystal_.species[si]);
    const double sigma = std::sqrt(kBoltzmann * cfg_.init_temperature_k /
                                   (mass_[si] * kAmuA2Fs2ToEv));
    for (int d = 0; d < 3; ++d) vel_[si][d] = rng.normal(0.0, sigma);
  }
  // Remove centre-of-mass drift.
  data::Vec3 p{};
  double mtot = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    for (int d = 0; d < 3; ++d) p[d] += mass_[si] * vel_[si][d];
    mtot += mass_[si];
  }
  if (mtot <= 0.0) return;
  for (index_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      vel_[static_cast<std::size_t>(i)][d] -= p[d] / mtot;
    }
  }
}

serve::Result<void> MDSimulator::try_compute_forces() {
  model::ModelOutput out;
  const bool used_verlet = verlet_.has_value();
  try {
    if (verlet_) {
      data::Sample s{crystal_, verlet_->graph(crystal_)};
      out = net_.forward(data::collate({&s}), model::ForwardMode::kEval);
    } else {
      data::Dataset ds = data::Dataset::from_crystals(
          {crystal_}, cfg_.graph, {}, /*relabel=*/false);
      out = net_.forward(data::collate_indices(ds, {0}),
                         model::ForwardMode::kEval);
    }
  } catch (const Error& e) {
    return serve::Result<void>::failure(
        serve::ErrorCode::kNumericFault,
        std::string("MD forward failed: ") + e.what());
  }
  auto check = serve::check_output(out);
  if (!check.ok() && used_verlet) {
    // Graceful degradation: a poisoned output from the skin-cached graph
    // may come from a stale candidate list; retry once on a from-scratch
    // graph before declaring a numeric fault, and drop the cache.
    ++verlet_fallbacks_;
    perf::count_event("md.verlet_fallback");
    verlet_.emplace(cfg_.graph, cfg_.verlet_skin);
    try {
      data::Dataset ds = data::Dataset::from_crystals(
          {crystal_}, cfg_.graph, {}, /*relabel=*/false);
      out = net_.forward(data::collate_indices(ds, {0}),
                         model::ForwardMode::kEval);
    } catch (const Error& e) {
      return serve::Result<void>::failure(
          serve::ErrorCode::kNumericFault,
          std::string("MD forward failed after Verlet fallback: ") + e.what());
    }
    check = serve::check_output(out);
  }
  if (!check.ok()) return check.error();

  const float* f = out.forces.value().data();
  for (index_t i = 0; i < crystal_.natoms(); ++i) {
    for (int d = 0; d < 3; ++d) {
      force_[static_cast<std::size_t>(i)][d] =
          static_cast<double>(f[i * 3 + d]);
    }
  }
  potential_ = static_cast<double>(out.energy_per_atom.value().data()[0]) *
               static_cast<double>(crystal_.natoms());
  return {};
}

double MDSimulator::fmax() const {
  double m = 0.0;
  for (const auto& f : force_) {
    for (int d = 0; d < 3; ++d) m = std::max(m, std::fabs(f[d]));
  }
  return m;
}

MDFaultSnapshot MDSimulator::make_snapshot(const std::string& reason) const {
  MDFaultSnapshot s;
  s.step = steps_;
  s.dt_fs = dt_cur_;
  s.halvings = halving_level_;
  s.potential = potential_;
  s.kinetic = kinetic_energy();
  s.temperature = temperature();
  s.fmax = fmax();
  s.reason = reason;
  return s;
}

double MDSimulator::step(index_t n) {
  const auto r = try_step(n);
  FASTCHG_CHECK(r.ok(), "MDSimulator::step: " << r.error().message);
  return r.value();
}

serve::Result<double> MDSimulator::try_step(index_t n) {
  if (n <= 0) return 0.0;
  perf::Timer timer;
  const index_t na = crystal_.natoms();
  for (index_t it = 0; it < n;) {
    // Snapshot the committed state so a faulted attempt can roll back.
    const std::vector<data::Vec3> frac0 = crystal_.frac;
    const std::vector<data::Vec3> vel0 = vel_;
    const std::vector<data::Vec3> force0 = force_;
    const double pot0 = potential_;

    const double dt = dt_cur_;
    const data::Mat3 lat_inv = data::inv3(crystal_.lattice);
    // Half-kick + drift.
    std::vector<data::Vec3> accel(static_cast<std::size_t>(na));
    for (index_t i = 0; i < na; ++i) {
      const auto si = static_cast<std::size_t>(i);
      data::Vec3 dr{};
      for (int d = 0; d < 3; ++d) {
        accel[si][d] = kAccel * force_[si][d] / mass_[si];
        dr[d] = vel_[si][d] * dt + 0.5 * accel[si][d] * dt * dt;
      }
      const data::Vec3 df = data::mat_vec(lat_inv, dr);
      for (int d = 0; d < 3; ++d) {
        double f = crystal_.frac[si][d] + df[d];
        f -= std::floor(f);  // wrap into the cell
        crystal_.frac[si][d] = f;
      }
    }
    const auto forces = try_compute_forces();
    bool faulted = !forces.ok();
    std::string reason = faulted ? forces.error().message : "";
    if (!faulted) {
      // Second half-kick with the new forces.
      for (index_t i = 0; i < na; ++i) {
        const auto si = static_cast<std::size_t>(i);
        for (int d = 0; d < 3; ++d) {
          const double a_new = kAccel * force_[si][d] / mass_[si];
          vel_[si][d] += 0.5 * (accel[si][d] + a_new) * dt;
        }
      }
      const double fm = fmax();
      if (fm > cfg_.max_force_ev_a) {
        faulted = true;
        std::ostringstream os;
        os << "force explosion: |F|max " << fm << " eV/A exceeds "
           << cfg_.max_force_ev_a;
        reason = os.str();
      } else if (drift_.enabled()) {
        const double e = total_energy();
        if (!drift_.admissible(e)) {
          faulted = true;
          std::ostringstream os;
          os << "energy drift: |dE| " << drift_.step_drift_per_atom(e)
             << " eV/atom per step exceeds " << cfg_.max_drift_ev_per_atom;
          reason = os.str();
        }
      }
    }

    if (faulted) {
      crystal_.frac = frac0;
      vel_ = vel0;
      force_ = force0;
      potential_ = pot0;
      if (halving_level_ >= cfg_.max_dt_halvings) {
        last_fault_ = make_snapshot(reason);
        perf::count_event("md.watchdog_abort");
        std::ostringstream os;
        os << "MD watchdog abort at step " << steps_ << " (dt " << dt_cur_
           << " fs after " << halving_level_ << " halvings): " << reason;
        return serve::Result<double>::failure(serve::ErrorCode::kNumericFault,
                                              os.str());
      }
      dt_cur_ *= 0.5;
      ++halving_level_;
      ++dt_halvings_total_;
      clean_streak_ = 0;
      perf::count_event("md.dt_halved");
      continue;  // retry this iteration at the reduced dt
    }

    apply_thermostat();
    drift_.accept(total_energy());
    ++steps_;
    ++it;
    // Recover dt toward the configured value after a clean streak.
    if (halving_level_ > 0 && cfg_.dt_recover_steps > 0 &&
        ++clean_streak_ >= cfg_.dt_recover_steps) {
      dt_cur_ = std::min(dt_cur_ * 2.0, cfg_.dt_fs);
      --halving_level_;
      clean_streak_ = 0;
    }
  }
  return timer.seconds() / static_cast<double>(n);
}

void MDSimulator::apply_thermostat() {
  if (cfg_.ensemble == Ensemble::kNVE) return;
  const double t0 = cfg_.target_temperature_k;
  if (cfg_.ensemble == Ensemble::kNVTBerendsen) {
    const double t = temperature();
    if (t <= 1e-12) return;
    double lam2 = 1.0 + dt_cur_ / cfg_.tau_fs * (t0 / t - 1.0);
    lam2 = std::min(1.5625, std::max(0.64, lam2));  // clamp lambda to [0.8,1.25]
    const double lam = std::sqrt(lam2);
    for (auto& v : vel_) {
      for (int d = 0; d < 3; ++d) v[d] *= lam;
    }
    return;
  }
  // Langevin (Ornstein-Uhlenbeck velocity update): exact for the chosen
  // friction, samples the canonical distribution at t0.
  const double c1 = std::exp(-cfg_.friction_fs * dt_cur_);
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    const double sigma = std::sqrt((1.0 - c1 * c1) * kBoltzmann * t0 /
                                   (mass_[i] * kAmuA2Fs2ToEv));
    for (int d = 0; d < 3; ++d) {
      vel_[i][d] = c1 * vel_[i][d] + sigma * thermo_rng_.normal();
    }
  }
}

double MDSimulator::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    ke += 0.5 * mass_[i] * data::dot(vel_[i], vel_[i]) * kAmuA2Fs2ToEv;
  }
  return ke;
}

double MDSimulator::temperature() const {
  const double dof = 3.0 * static_cast<double>(crystal_.natoms());
  if (dof == 0.0) return 0.0;
  return 2.0 * kinetic_energy() / (dof * kBoltzmann);
}

}  // namespace fastchg::md
