#include "md/md.hpp"

#include <cmath>

#include "core/rng.hpp"
#include "data/batch.hpp"
#include "perf/timer.hpp"

namespace fastchg::md {

double atomic_mass(index_t z) {
  // ~2Z is a serviceable approximation across the periodic table for a
  // synthetic-species simulator (H is the only strong outlier).
  return z == 1 ? 1.008 : 2.0 * static_cast<double>(z);
}

MDSimulator::MDSimulator(const model::CHGNet& net, data::Crystal crystal,
                         MDConfig cfg)
    : net_(net),
      crystal_(std::move(crystal)),
      cfg_(cfg),
      thermo_rng_(cfg.seed + 0x7e4) {
  if (cfg_.verlet_skin > 0.0) {
    verlet_.emplace(cfg_.graph, cfg_.verlet_skin);
  }
  const index_t n = crystal_.natoms();
  vel_.assign(static_cast<std::size_t>(n), data::Vec3{});
  force_.assign(static_cast<std::size_t>(n), data::Vec3{});
  mass_.resize(static_cast<std::size_t>(n));
  Rng rng(cfg_.seed);
  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    mass_[si] = atomic_mass(crystal_.species[si]);
    const double sigma = std::sqrt(kBoltzmann * cfg_.init_temperature_k /
                                   (mass_[si] * kAmuA2Fs2ToEv));
    for (int d = 0; d < 3; ++d) vel_[si][d] = rng.normal(0.0, sigma);
  }
  // Remove centre-of-mass drift.
  data::Vec3 p{};
  double mtot = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const auto si = static_cast<std::size_t>(i);
    for (int d = 0; d < 3; ++d) p[d] += mass_[si] * vel_[si][d];
    mtot += mass_[si];
  }
  for (index_t i = 0; i < n; ++i) {
    for (int d = 0; d < 3; ++d) {
      vel_[static_cast<std::size_t>(i)][d] -= p[d] / mtot;
    }
  }
  compute_forces();
}

void MDSimulator::compute_forces() {
  data::Batch b = [&] {
    if (verlet_) {
      data::Sample s{crystal_, verlet_->graph(crystal_)};
      return data::collate({&s});
    }
    data::Dataset ds = data::Dataset::from_crystals({crystal_}, cfg_.graph,
                                                    {}, /*relabel=*/false);
    return data::collate_indices(ds, {0});
  }();
  model::ModelOutput out = net_.forward(b, model::ForwardMode::kEval);
  const float* f = out.forces.value().data();
  for (index_t i = 0; i < crystal_.natoms(); ++i) {
    for (int d = 0; d < 3; ++d) {
      force_[static_cast<std::size_t>(i)][d] =
          static_cast<double>(f[i * 3 + d]);
    }
  }
  potential_ = static_cast<double>(out.energy_per_atom.value().data()[0]) *
               static_cast<double>(crystal_.natoms());
}

double MDSimulator::step(index_t n) {
  perf::Timer timer;
  const data::Mat3 lat_inv = data::inv3(crystal_.lattice);
  for (index_t it = 0; it < n; ++it) {
    const double dt = cfg_.dt_fs;
    const index_t na = crystal_.natoms();
    // Half-kick + drift.
    std::vector<data::Vec3> accel(static_cast<std::size_t>(na));
    for (index_t i = 0; i < na; ++i) {
      const auto si = static_cast<std::size_t>(i);
      data::Vec3 dr{};
      for (int d = 0; d < 3; ++d) {
        accel[si][d] = kAccel * force_[si][d] / mass_[si];
        dr[d] = vel_[si][d] * dt + 0.5 * accel[si][d] * dt * dt;
      }
      const data::Vec3 df = data::mat_vec(lat_inv, dr);
      for (int d = 0; d < 3; ++d) {
        double f = crystal_.frac[si][d] + df[d];
        f -= std::floor(f);  // wrap into the cell
        crystal_.frac[si][d] = f;
      }
    }
    compute_forces();
    // Second half-kick with the new forces.
    for (index_t i = 0; i < na; ++i) {
      const auto si = static_cast<std::size_t>(i);
      for (int d = 0; d < 3; ++d) {
        const double a_new = kAccel * force_[si][d] / mass_[si];
        vel_[si][d] += 0.5 * (accel[si][d] + a_new) * dt;
      }
    }
    apply_thermostat();
    ++steps_;
  }
  return timer.seconds() / static_cast<double>(n);
}

void MDSimulator::apply_thermostat() {
  if (cfg_.ensemble == Ensemble::kNVE) return;
  const double t0 = cfg_.target_temperature_k;
  if (cfg_.ensemble == Ensemble::kNVTBerendsen) {
    const double t = temperature();
    if (t <= 1e-12) return;
    double lam2 = 1.0 + cfg_.dt_fs / cfg_.tau_fs * (t0 / t - 1.0);
    lam2 = std::min(1.5625, std::max(0.64, lam2));  // clamp lambda to [0.8,1.25]
    const double lam = std::sqrt(lam2);
    for (auto& v : vel_) {
      for (int d = 0; d < 3; ++d) v[d] *= lam;
    }
    return;
  }
  // Langevin (Ornstein-Uhlenbeck velocity update): exact for the chosen
  // friction, samples the canonical distribution at t0.
  const double c1 = std::exp(-cfg_.friction_fs * cfg_.dt_fs);
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    const double sigma = std::sqrt((1.0 - c1 * c1) * kBoltzmann * t0 /
                                   (mass_[i] * kAmuA2Fs2ToEv));
    for (int d = 0; d < 3; ++d) {
      vel_[i][d] = c1 * vel_[i][d] + sigma * thermo_rng_.normal();
    }
  }
}

double MDSimulator::kinetic_energy() const {
  double ke = 0.0;
  for (std::size_t i = 0; i < vel_.size(); ++i) {
    ke += 0.5 * mass_[i] * data::dot(vel_[i], vel_[i]) * kAmuA2Fs2ToEv;
  }
  return ke;
}

double MDSimulator::temperature() const {
  const double dof = 3.0 * static_cast<double>(crystal_.natoms());
  if (dof == 0.0) return 0.0;
  return 2.0 * kinetic_energy() / (dof * kBoltzmann);
}

}  // namespace fastchg::md
