// MD observables: radial distribution function g(r) and mean-squared
// displacement (diffusion), accumulated over trajectory snapshots.
#pragma once

#include "data/crystal.hpp"

namespace fastchg::md {

/// Radial distribution function accumulated over snapshots:
///   g(r) = <histogram of pair distances> / (ideal-gas shell count)
class RdfAccumulator {
 public:
  RdfAccumulator(double r_max, index_t bins);

  void add_snapshot(const data::Crystal& c);

  /// Normalized g(r); empty until at least one snapshot was added.
  std::vector<double> g() const;
  const std::vector<double>& r_centers() const { return centers_; }
  index_t snapshots() const { return snapshots_; }

 private:
  double r_max_;
  index_t bins_;
  std::vector<double> centers_;
  std::vector<double> counts_;
  double density_sum_ = 0.0;  ///< accumulated N/V for normalization
  index_t atom_sum_ = 0;
  index_t snapshots_ = 0;
};

/// Mean-squared displacement with periodic unwrapping: successive snapshots
/// are connected by minimum-image displacements so atoms that cross the
/// cell boundary keep accumulating distance.
class MsdTracker {
 public:
  explicit MsdTracker(const data::Crystal& initial);

  void update(const data::Crystal& current);

  /// Mean over atoms of |unwrapped displacement|^2 (A^2).
  double msd() const;
  /// MSD restricted to the given atom indices (e.g. only the Li ions when
  /// measuring Li-ion diffusion, the paper's motivating application).
  double msd(const std::vector<index_t>& atoms) const;
  index_t updates() const { return updates_; }

 private:
  data::Mat3 lattice_;
  std::vector<data::Vec3> prev_frac_;
  std::vector<data::Vec3> displacement_;  ///< cartesian, unwrapped
  index_t updates_ = 0;
};

}  // namespace fastchg::md
