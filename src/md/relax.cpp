#include "md/relax.hpp"

#include <algorithm>
#include <cmath>

#include "data/batch.hpp"
#include "serve/validate.hpp"
#include "serve/watchdog.hpp"

namespace fastchg::md {

namespace {

struct ForceEval {
  double energy;
  std::vector<data::Vec3> forces;
  double fmax;
};

serve::Result<ForceEval> eval_forces(const model::CHGNet& net,
                                     const data::Crystal& c,
                                     const data::GraphConfig& gc) {
  model::ModelOutput out;
  try {
    data::Dataset ds = data::Dataset::from_crystals({c}, gc, {}, false);
    data::Batch b = data::collate_indices(ds, {0});
    out = net.forward(b, model::ForwardMode::kEval);
  } catch (const Error& e) {
    return serve::Result<ForceEval>::failure(
        serve::ErrorCode::kNumericFault,
        std::string("relax forward failed: ") + e.what());
  }
  FASTCHG_SERVE_TRY(serve::check_output(out));
  ForceEval fe;
  fe.energy = static_cast<double>(out.energy_per_atom.value().data()[0]) *
              static_cast<double>(c.natoms());
  fe.forces.resize(static_cast<std::size_t>(c.natoms()));
  fe.fmax = 0.0;
  const float* f = out.forces.value().data();
  for (index_t i = 0; i < c.natoms(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    for (int d = 0; d < 3; ++d) {
      fe.forces[si][d] = static_cast<double>(f[i * 3 + d]);
      fe.fmax = std::max(fe.fmax, std::fabs(fe.forces[si][d]));
    }
  }
  return fe;
}

}  // namespace

serve::Result<RelaxResult> try_relax(const model::CHGNet& net,
                                     data::Crystal& crystal,
                                     const RelaxConfig& cfg) {
  FASTCHG_SERVE_TRY(serve::validate_crystal(crystal, cfg.limits));
  RelaxResult res;
  const data::Mat3 lat_inv = data::inv3(crystal.lattice);
  auto first = eval_forces(net, crystal, cfg.graph);
  if (!first.ok()) return first.error();
  ForceEval fe = std::move(first).value();
  res.initial_energy = fe.energy;
  res.initial_fmax = fe.fmax;
  serve::OscillationDetector osc(cfg.osc_window > 0 ? cfg.osc_window : 2);
  double step = cfg.step;
  for (index_t it = 0; it < cfg.max_steps; ++it) {
    if (fe.fmax <= cfg.fmax_tol) break;
    data::Crystal trial = crystal;
    for (index_t i = 0; i < crystal.natoms(); ++i) {
      const auto si = static_cast<std::size_t>(i);
      data::Vec3 dr{};
      for (int d = 0; d < 3; ++d) {
        dr[d] = std::clamp(step * fe.forces[si][d], -cfg.max_disp,
                           cfg.max_disp);
      }
      const data::Vec3 df = data::mat_vec(lat_inv, dr);
      for (int d = 0; d < 3; ++d) {
        double f = trial.frac[si][d] + df[d];
        f -= std::floor(f);
        trial.frac[si][d] = f;
      }
    }
    auto trial_eval = eval_forces(net, trial, cfg.graph);
    if (!trial_eval.ok()) return trial_eval.error();
    ForceEval fe_trial = std::move(trial_eval).value();
    const bool accepted = fe_trial.energy <= fe.energy;
    if (accepted) {
      crystal = std::move(trial);
      fe = std::move(fe_trial);
      step = std::min(step * 1.2, 10 * cfg.step);  // accelerate downhill
    } else {
      step *= 0.5;  // backtrack
      if (step < 1e-5) {
        ++res.steps;
        break;
      }
    }
    ++res.steps;
    if (cfg.osc_window > 0 && osc.push(accepted, fe.energy)) {
      res.oscillating = true;
      break;
    }
  }
  // Test the final accepted state too: a run that reaches the tolerance on
  // its last iteration (or whose loop ended exactly at max_steps) must
  // still report convergence.
  res.converged = fe.fmax <= cfg.fmax_tol;
  res.final_fmax = fe.fmax;
  res.final_energy = fe.energy;
  return res;
}

RelaxResult relax(const model::CHGNet& net, data::Crystal& crystal,
                  const RelaxConfig& cfg) {
  auto r = try_relax(net, crystal, cfg);
  FASTCHG_CHECK(r.ok(), "relax: " << r.error().message);
  return std::move(r).value();
}

}  // namespace fastchg::md
