#include "md/relax.hpp"

#include <algorithm>
#include <cmath>

#include "data/batch.hpp"

namespace fastchg::md {

namespace {

struct ForceEval {
  double energy;
  std::vector<data::Vec3> forces;
  double fmax;
};

ForceEval eval_forces(const model::CHGNet& net, const data::Crystal& c,
                      const data::GraphConfig& gc) {
  data::Dataset ds = data::Dataset::from_crystals({c}, gc, {}, false);
  data::Batch b = data::collate_indices(ds, {0});
  model::ModelOutput out = net.forward(b, model::ForwardMode::kEval);
  ForceEval fe;
  fe.energy = static_cast<double>(out.energy_per_atom.value().data()[0]) *
              static_cast<double>(c.natoms());
  fe.forces.resize(static_cast<std::size_t>(c.natoms()));
  fe.fmax = 0.0;
  const float* f = out.forces.value().data();
  for (index_t i = 0; i < c.natoms(); ++i) {
    const auto si = static_cast<std::size_t>(i);
    for (int d = 0; d < 3; ++d) {
      fe.forces[si][d] = static_cast<double>(f[i * 3 + d]);
      fe.fmax = std::max(fe.fmax, std::fabs(fe.forces[si][d]));
    }
  }
  return fe;
}

}  // namespace

RelaxResult relax(const model::CHGNet& net, data::Crystal& crystal,
                  const RelaxConfig& cfg) {
  RelaxResult res;
  const data::Mat3 lat_inv = data::inv3(crystal.lattice);
  ForceEval fe = eval_forces(net, crystal, cfg.graph);
  res.initial_energy = fe.energy;
  res.initial_fmax = fe.fmax;
  double step = cfg.step;
  for (index_t it = 0; it < cfg.max_steps; ++it) {
    if (fe.fmax <= cfg.fmax_tol) {
      res.converged = true;
      break;
    }
    data::Crystal trial = crystal;
    for (index_t i = 0; i < crystal.natoms(); ++i) {
      const auto si = static_cast<std::size_t>(i);
      data::Vec3 dr{};
      for (int d = 0; d < 3; ++d) {
        dr[d] = std::clamp(step * fe.forces[si][d], -cfg.max_disp,
                           cfg.max_disp);
      }
      const data::Vec3 df = data::mat_vec(lat_inv, dr);
      for (int d = 0; d < 3; ++d) {
        double f = trial.frac[si][d] + df[d];
        f -= std::floor(f);
        trial.frac[si][d] = f;
      }
    }
    ForceEval fe_trial = eval_forces(net, trial, cfg.graph);
    if (fe_trial.energy <= fe.energy) {
      crystal = std::move(trial);
      fe = std::move(fe_trial);
      step = std::min(step * 1.2, 10 * cfg.step);  // accelerate downhill
    } else {
      step *= 0.5;  // backtrack
      if (step < 1e-5) break;
    }
    ++res.steps;
  }
  res.final_fmax = fe.fmax;
  res.final_energy = fe.energy;
  return res;
}

}  // namespace fastchg::md
