// Molecular dynamics driver (paper Sec. V-D): velocity-Verlet NVE using any
// CHGNet/FastCHGNet model as the force provider.  One structure is processed
// per step, exactly the low-GPU-utilization regime Table II measures.
//
// Robustness (docs/serving.md): inputs are validated at construction, every
// forward runs under the serve-layer numeric watchdog, and a force-explosion
// guard plus an optional per-step energy-drift monitor auto-halve dt with
// bounded retries before aborting with a diagnostic snapshot.  try_step()
// reports all of this as typed errors; step() keeps the legacy throwing API.
//
// Units: A, fs, eV, amu, K.
#pragma once

#include <optional>
#include <string>

#include "chgnet/model.hpp"
#include "data/verlet.hpp"
#include "data/dataset.hpp"
#include "serve/error.hpp"
#include "serve/validate.hpp"
#include "serve/watchdog.hpp"

namespace fastchg::md {

/// eV/(A*amu) in A/fs^2.
inline constexpr double kAccel = 9.6485332e-3;
/// Boltzmann constant, eV/K.
inline constexpr double kBoltzmann = 8.617333e-5;
/// 1 amu*(A/fs)^2 in eV.
inline constexpr double kAmuA2Fs2ToEv = 103.642696;

/// Approximate atomic mass (amu) for synthetic species Z.
double atomic_mass(index_t z);

enum class Ensemble {
  kNVE,             ///< plain velocity Verlet
  kNVTBerendsen,    ///< weak-coupling velocity rescale toward target T
  kNVTLangevin,     ///< stochastic friction + noise kick (canonical)
};

struct MDConfig {
  double dt_fs = 1.0;
  double init_temperature_k = 300.0;
  Ensemble ensemble = Ensemble::kNVE;
  double target_temperature_k = 300.0;  ///< NVT only
  double tau_fs = 100.0;                ///< Berendsen coupling time
  double friction_fs = 0.01;            ///< Langevin gamma (1/fs)
  std::uint64_t seed = 0;
  data::GraphConfig graph;  ///< neighbour cutoffs used at every rebuild
  /// Verlet-list skin (A): > 0 caches the candidate neighbour list and only
  /// filters it per step, doing a full O(N^2) rebuild when an atom has
  /// drifted more than skin/2.  0 rebuilds from scratch every step.
  double verlet_skin = 0.0;

  // --- Numeric watchdogs ---------------------------------------------
  /// Force-explosion guard: |F| component beyond this (eV/A) faults the
  /// step.  Generous by default; anything near it is unphysical.
  double max_force_ev_a = 1e4;
  /// Per-step |dE_total| bound (eV/atom) for the energy-drift monitor;
  /// <= 0 disables it (sensible only for NVE).
  double max_drift_ev_per_atom = 0.0;
  /// A faulted step restores state and retries with dt/2, at most this many
  /// halvings deep; exhausted -> typed kNumericFault with a snapshot.
  int max_dt_halvings = 4;
  /// After this many consecutive clean steps at reduced dt, dt doubles back
  /// toward dt_fs (0 pins dt at the reduced value forever).
  index_t dt_recover_steps = 16;
  /// Validation limits applied to the starting crystal.
  serve::ValidationLimits limits;
};

/// Diagnostic state captured when the watchdog aborts a trajectory.
struct MDFaultSnapshot {
  index_t step = 0;          ///< steps completed before the abort
  double dt_fs = 0.0;        ///< dt at the failing attempt
  int halvings = 0;          ///< dt halvings already spent
  double potential = 0.0;    ///< eV, last committed state
  double kinetic = 0.0;      ///< eV
  double temperature = 0.0;  ///< K
  double fmax = 0.0;         ///< eV/A, largest |F| component observed
  std::string reason;
};

class MDSimulator {
 public:
  /// Validates `crystal` and computes initial forces; throws fastchg::Error
  /// on invalid input or a poisoned model (legacy API -- prefer create()).
  MDSimulator(const model::CHGNet& net, data::Crystal crystal,
              MDConfig cfg = {});

  /// Typed-error construction: kInvalidInput for a bad crystal,
  /// kNumericFault when the initial forward is non-finite.
  static serve::Result<MDSimulator> create(const model::CHGNet& net,
                                           data::Crystal crystal,
                                           MDConfig cfg = {});

  /// Advance `n` steps; returns mean measured wall seconds per step.
  /// Throws fastchg::Error when the watchdog aborts (legacy API).
  double step(index_t n = 1);

  /// Advance `n` steps with typed errors: on a watchdog abort the committed
  /// state is the last healthy step and last_fault() holds the snapshot.
  serve::Result<double> try_step(index_t n = 1);

  const data::Crystal& crystal() const { return crystal_; }
  const std::vector<data::Vec3>& velocities() const { return vel_; }
  const std::vector<data::Vec3>& forces() const { return force_; }

  double potential_energy() const { return potential_; }
  double kinetic_energy() const;
  double total_energy() const { return potential_energy() + kinetic_energy(); }
  double temperature() const;
  index_t steps_taken() const { return steps_; }

  /// Current integration timestep (<= cfg.dt_fs after watchdog halvings).
  double dt_current() const { return dt_cur_; }
  /// Total dt halvings the watchdogs triggered over the run.
  index_t dt_halvings_total() const { return dt_halvings_total_; }
  /// Full-graph rebuilds forced by a numeric fault on the Verlet path.
  index_t verlet_fallbacks() const { return verlet_fallbacks_; }
  /// Snapshot of the aborting fault (empty while the trajectory is healthy).
  const std::optional<MDFaultSnapshot>& last_fault() const {
    return last_fault_;
  }

 private:
  struct Unvalidated {};  ///< create() tag: skip validation + initial forces
  MDSimulator(const model::CHGNet& net, data::Crystal crystal, MDConfig cfg,
              Unvalidated);

  void init_velocities();
  /// Graph rebuild + model eval forward; falls back from the Verlet cache
  /// to a full rebuild on a numeric fault before reporting one.
  serve::Result<void> try_compute_forces();
  /// Largest |F| component of the current forces (eV/A).
  double fmax() const;
  void apply_thermostat();
  MDFaultSnapshot make_snapshot(const std::string& reason) const;

  const model::CHGNet& net_;
  data::Crystal crystal_;
  MDConfig cfg_;
  Rng thermo_rng_{0};
  std::optional<data::VerletList> verlet_;
  std::vector<data::Vec3> vel_;    ///< A/fs
  std::vector<data::Vec3> force_;  ///< eV/A
  std::vector<double> mass_;       ///< amu
  double potential_ = 0.0;         ///< eV
  index_t steps_ = 0;

  serve::EnergyDriftMonitor drift_;
  double dt_cur_ = 0.0;
  int halving_level_ = 0;           ///< current depth below cfg.dt_fs
  index_t dt_halvings_total_ = 0;
  index_t clean_streak_ = 0;        ///< consecutive clean steps since halving
  index_t verlet_fallbacks_ = 0;
  std::optional<MDFaultSnapshot> last_fault_;
};

}  // namespace fastchg::md
