// Molecular dynamics driver (paper Sec. V-D): velocity-Verlet NVE using any
// CHGNet/FastCHGNet model as the force provider.  One structure is processed
// per step, exactly the low-GPU-utilization regime Table II measures.
//
// Units: A, fs, eV, amu, K.
#pragma once

#include <optional>

#include "chgnet/model.hpp"
#include "data/verlet.hpp"
#include "data/dataset.hpp"

namespace fastchg::md {

/// eV/(A*amu) in A/fs^2.
inline constexpr double kAccel = 9.6485332e-3;
/// Boltzmann constant, eV/K.
inline constexpr double kBoltzmann = 8.617333e-5;
/// 1 amu*(A/fs)^2 in eV.
inline constexpr double kAmuA2Fs2ToEv = 103.642696;

/// Approximate atomic mass (amu) for synthetic species Z.
double atomic_mass(index_t z);

enum class Ensemble {
  kNVE,             ///< plain velocity Verlet
  kNVTBerendsen,    ///< weak-coupling velocity rescale toward target T
  kNVTLangevin,     ///< stochastic friction + noise kick (canonical)
};

struct MDConfig {
  double dt_fs = 1.0;
  double init_temperature_k = 300.0;
  Ensemble ensemble = Ensemble::kNVE;
  double target_temperature_k = 300.0;  ///< NVT only
  double tau_fs = 100.0;                ///< Berendsen coupling time
  double friction_fs = 0.01;            ///< Langevin gamma (1/fs)
  std::uint64_t seed = 0;
  data::GraphConfig graph;  ///< neighbour cutoffs used at every rebuild
  /// Verlet-list skin (A): > 0 caches the candidate neighbour list and only
  /// filters it per step, doing a full O(N^2) rebuild when an atom has
  /// drifted more than skin/2.  0 rebuilds from scratch every step.
  double verlet_skin = 0.0;
};

class MDSimulator {
 public:
  MDSimulator(const model::CHGNet& net, data::Crystal crystal,
              MDConfig cfg = {});

  /// Advance `n` steps; returns mean measured wall seconds per step.
  double step(index_t n = 1);

  const data::Crystal& crystal() const { return crystal_; }
  const std::vector<data::Vec3>& velocities() const { return vel_; }
  const std::vector<data::Vec3>& forces() const { return force_; }

  double potential_energy() const { return potential_; }
  double kinetic_energy() const;
  double total_energy() const { return potential_energy() + kinetic_energy(); }
  double temperature() const;
  index_t steps_taken() const { return steps_; }

 private:
  void compute_forces();  ///< graph rebuild + model eval forward
  void apply_thermostat();

  const model::CHGNet& net_;
  data::Crystal crystal_;
  MDConfig cfg_;
  Rng thermo_rng_{0};
  std::optional<data::VerletList> verlet_;
  std::vector<data::Vec3> vel_;    ///< A/fs
  std::vector<data::Vec3> force_;  ///< eV/A
  std::vector<double> mass_;       ///< amu
  double potential_ = 0.0;         ///< eV
  index_t steps_ = 0;
};

}  // namespace fastchg::md
