#include "md/observables.hpp"

#include <cmath>

#include "core/error.hpp"
#include "data/neighbor.hpp"

namespace fastchg::md {

RdfAccumulator::RdfAccumulator(double r_max, index_t bins)
    : r_max_(r_max), bins_(bins) {
  FASTCHG_CHECK(r_max > 0 && bins > 0, "RdfAccumulator: r_max/bins");
  centers_.resize(static_cast<std::size_t>(bins));
  counts_.assign(static_cast<std::size_t>(bins), 0.0);
  const double w = r_max / static_cast<double>(bins);
  for (index_t b = 0; b < bins; ++b) {
    centers_[static_cast<std::size_t>(b)] =
        (static_cast<double>(b) + 0.5) * w;
  }
}

void RdfAccumulator::add_snapshot(const data::Crystal& c) {
  data::NeighborList nl = data::build_neighbor_list_auto(c, r_max_);
  const double w = r_max_ / static_cast<double>(bins_);
  for (index_t e = 0; e < nl.size(); ++e) {
    auto b = static_cast<std::size_t>(nl.dist[e] / w);
    if (b >= counts_.size()) continue;
    counts_[b] += 1.0;
  }
  density_sum_ += static_cast<double>(c.natoms()) / c.volume();
  atom_sum_ += c.natoms();
  ++snapshots_;
}

std::vector<double> RdfAccumulator::g() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (snapshots_ == 0) return out;
  const double w = r_max_ / static_cast<double>(bins_);
  const double mean_density =
      density_sum_ / static_cast<double>(snapshots_);
  const double mean_atoms =
      static_cast<double>(atom_sum_) / static_cast<double>(snapshots_);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double r = centers_[b];
    const double shell = 4.0 * M_PI * r * r * w;
    const double ideal =
        mean_atoms * mean_density * shell * static_cast<double>(snapshots_);
    out[b] = ideal > 0 ? counts_[b] / ideal : 0.0;
  }
  return out;
}

MsdTracker::MsdTracker(const data::Crystal& initial)
    : lattice_(initial.lattice),
      prev_frac_(initial.frac),
      displacement_(initial.frac.size(), data::Vec3{}) {}

void MsdTracker::update(const data::Crystal& current) {
  FASTCHG_CHECK(current.frac.size() == prev_frac_.size(),
                "MsdTracker: atom count changed");
  for (std::size_t i = 0; i < prev_frac_.size(); ++i) {
    data::Vec3 df;
    for (int d = 0; d < 3; ++d) {
      double delta = current.frac[i][d] - prev_frac_[i][d];
      delta -= std::round(delta);  // minimum image per step
      df[d] = delta;
    }
    const data::Vec3 dr = data::mat_vec(lattice_, df);
    for (int d = 0; d < 3; ++d) displacement_[i][d] += dr[d];
  }
  prev_frac_ = current.frac;
  ++updates_;
}

double MsdTracker::msd() const {
  if (displacement_.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& d : displacement_) acc += data::dot(d, d);
  return acc / static_cast<double>(displacement_.size());
}

double MsdTracker::msd(const std::vector<index_t>& atoms) const {
  if (atoms.empty()) return 0.0;
  double acc = 0.0;
  for (index_t i : atoms) {
    FASTCHG_CHECK(i >= 0 && i < static_cast<index_t>(displacement_.size()),
                  "msd: atom index " << i);
    acc += data::dot(displacement_[static_cast<std::size_t>(i)],
                     displacement_[static_cast<std::size_t>(i)]);
  }
  return acc / static_cast<double>(atoms.size());
}

}  // namespace fastchg::md
