// Structure relaxation: damped steepest descent on model forces with an
// adaptive step and a displacement cap (a light-weight stand-in for FIRE).
#pragma once

#include "chgnet/model.hpp"
#include "data/dataset.hpp"

namespace fastchg::md {

struct RelaxConfig {
  double fmax_tol = 0.1;     ///< eV/A convergence threshold on max |F|
  index_t max_steps = 100;
  double step = 0.02;        ///< initial step, A per unit force
  double max_disp = 0.1;     ///< per-step displacement cap, A
  data::GraphConfig graph;
};

struct RelaxResult {
  bool converged = false;
  index_t steps = 0;
  double initial_fmax = 0.0;  ///< eV/A
  double final_fmax = 0.0;    ///< eV/A
  double initial_energy = 0.0;
  double final_energy = 0.0;
};

/// Relax `crystal` in place under the model's potential-energy surface.
RelaxResult relax(const model::CHGNet& net, data::Crystal& crystal,
                  const RelaxConfig& cfg = {});

}  // namespace fastchg::md
