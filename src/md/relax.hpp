// Structure relaxation: damped steepest descent on model forces with an
// adaptive step and a displacement cap (a light-weight stand-in for FIRE).
//
// try_relax() is the typed-error entry point: the input crystal is
// validated, every forward runs under the serve-layer numeric watchdog, and
// a step-size oscillation detector stops runs that thrash around a point
// they cannot improve.  relax() keeps the legacy throwing API.
#pragma once

#include "chgnet/model.hpp"
#include "data/dataset.hpp"
#include "serve/error.hpp"
#include "serve/validate.hpp"

namespace fastchg::md {

struct RelaxConfig {
  double fmax_tol = 0.1;     ///< eV/A convergence threshold on max |F|
  index_t max_steps = 100;
  double step = 0.02;        ///< initial step, A per unit force
  double max_disp = 0.1;     ///< per-step displacement cap, A
  data::GraphConfig graph;
  /// Oscillation detector window (iterations); 0 disables it.
  index_t osc_window = 8;
  /// Input validation limits (see serve/validate.hpp).
  serve::ValidationLimits limits;
};

struct RelaxResult {
  bool converged = false;
  /// Stopped early: the line search kept flip-flopping with no energy
  /// progress (typically a noisy or non-conservative force field).
  bool oscillating = false;
  index_t steps = 0;
  double initial_fmax = 0.0;  ///< eV/A
  double final_fmax = 0.0;    ///< eV/A
  double initial_energy = 0.0;
  double final_energy = 0.0;
};

/// Relax `crystal` in place under the model's potential-energy surface.
/// kInvalidInput for a bad structure, kNumericFault when a forward emits a
/// missing or non-finite output; on error `crystal` holds the last accepted
/// (still finite) geometry.
serve::Result<RelaxResult> try_relax(const model::CHGNet& net,
                                     data::Crystal& crystal,
                                     const RelaxConfig& cfg = {});

/// Legacy API: like try_relax but throws fastchg::Error on a typed error.
RelaxResult relax(const model::CHGNet& net, data::Crystal& crystal,
                  const RelaxConfig& cfg = {});

}  // namespace fastchg::md
