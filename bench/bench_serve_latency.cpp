// Open-loop serving latency under Poisson arrivals (perf-gate wired).
//
// Closed-loop benches (submit a wave, drain, repeat) hide queueing: the
// client politely waits for the fleet.  Real front-end traffic is open
// loop -- requests arrive on their own clock whether or not the fleet is
// keeping up -- so tail latency is dominated by the queue, not the
// forward.  This bench drives the sharded router with a deterministic
// Poisson arrival process at several offered loads, including one far
// enough above the global shed watermark that load shedding must engage,
// and reports p50 / p99 / p999 sojourn (queue + service) latency in
// *simulated* time (the virtual-time convention of serve/router.hpp: a
// tick's service time is the max of its shards' measured drain times).
//
// Determinism split, as everywhere in the bench suite:
//   * the arrival process, admission ledger (submitted / served / shed)
//     and every queue-occupancy decision depend only on seeded Poisson
//     draws and queue capacities -- gated at the tight tolerance;
//   * latency percentiles are wall-derived (measured drain times), so
//     their metrics carry the ".seconds" suffix for the loose tolerance.
//
// tools/perf_gate compares BENCH_trace_serve_latency.json against
// bench/baselines/BENCH_trace_serve_latency.json in CI.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "data/generator.hpp"
#include "serve/router.hpp"

namespace fastchg::bench {
namespace {

using namespace serve;

/// Knuth's Poisson sampler: deterministic given the Rng stream, fine for
/// the per-tick means used here (< ~200).
int poisson_draw(Rng& rng, double mean) {
  const double limit = std::exp(-mean);
  double prod = rng.uniform();
  int n = 0;
  while (prod > limit) {
    prod *= rng.uniform();
    ++n;
  }
  return n;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double rank = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + (v[hi] - v[lo]) * frac;
}

struct LoadResult {
  std::string name;
  double offered = 0.0;  ///< mean arrivals per tick
  std::uint64_t arrivals = 0;
  std::uint64_t served = 0;
  std::uint64_t shed = 0;
  std::uint64_t typed_errors = 0;  ///< non-shed rejections (none expected)
  double p50_ms = 0.0, p99_ms = 0.0, p999_ms = 0.0;
  double mean_queue_ms = 0.0;
};

/// One offered-load point: Poisson(mean_per_tick) arrivals per router tick
/// against a 4-shard fleet, `ticks` ticks of simulated time at a fixed
/// `tick_ms` cadence.  Requests arriving while the fleet is behind inherit
/// the backlog delay; requests arriving when every routable queue sits at
/// the shed watermark are shed with a typed kOverloaded.
LoadResult run_load(const model::CHGNet& net, const BenchOptions& opt,
                    const std::string& name, double mean_per_tick, int ticks,
                    const std::vector<data::Crystal>& pool) {
  RouterConfig rc;
  rc.num_shards = 4;
  rc.vnodes = 128;
  rc.shard.engine.graph = bench_graph_config(opt);
  rc.shard.engine.max_batch = 8;
  rc.shard.engine.queue_capacity = 64;
  rc.shard.engine.cache_capacity = 256;
  rc.shed_watermark = 24;  // low enough that the overload point must shed
  ShardRouter router(net, rc);

  // Warm tick: first-touch slab faults, graph builds and lazy init stay
  // out of the measured drain times.
  for (int i = 0; i < 8; ++i) {
    FASTCHG_CHECK(router.submit(pool[static_cast<std::size_t>(i)]).ok(),
                  "warm submit rejected");
  }
  for (const auto& r : router.drain()) {
    FASTCHG_CHECK(r.ok(), "warm reply failed");
  }

  const double tick_ms = 25.0;  // simulated tick cadence
  Rng rng(0xA771C5 + static_cast<std::uint64_t>(mean_per_tick));
  LoadResult res;
  res.name = name;
  res.offered = mean_per_tick;

  std::vector<double> sojourn_ms;           // served requests only
  std::vector<double> arrival_offsets;      // within the current tick
  std::vector<double> in_flight_arrivals;   // arrival time per admission
  double queue_wait_sum = 0.0;
  double backlog_ms = 0.0;  // how far the fleet is behind the arrival clock
  std::size_t next_structure = 0;

  for (int t = 0; t < ticks; ++t) {
    const double tick_start = static_cast<double>(t) * tick_ms;
    const int n_arrivals = poisson_draw(rng, mean_per_tick);
    arrival_offsets.clear();
    for (int i = 0; i < n_arrivals; ++i) {
      arrival_offsets.push_back(rng.uniform(0.0, tick_ms));
    }
    // Arrival order within the tick is time order.
    std::sort(arrival_offsets.begin(), arrival_offsets.end());

    in_flight_arrivals.clear();
    for (double off : arrival_offsets) {
      ++res.arrivals;
      const data::Crystal& c = pool[next_structure++ % pool.size()];
      auto ticket = router.submit(c);
      if (ticket.ok()) {
        in_flight_arrivals.push_back(tick_start + off);
      } else if (ticket.code() == ErrorCode::kOverloaded) {
        ++res.shed;
      } else {
        ++res.typed_errors;
      }
    }

    const auto replies = router.drain();
    FASTCHG_CHECK(replies.size() == in_flight_arrivals.size(),
                  "tick returned " << replies.size() << " replies for "
                                   << in_flight_arrivals.size()
                                   << " admissions");
    // The drain starts at the tick boundary, later if the fleet is still
    // chewing through earlier ticks; every reply in the batch completes
    // when the fleet's slowest shard finishes (max-over-shards, already
    // folded into last_tick_sim_ms by the router).
    const double drain_start = tick_start + tick_ms + backlog_ms;
    const double service_ms = router.stats().last_tick_sim_ms;
    const double complete = drain_start + service_ms;
    for (std::size_t i = 0; i < replies.size(); ++i) {
      FASTCHG_CHECK(replies[i].ok(),
                    "reply failed: " << replies[i].error().message);
      ++res.served;
      sojourn_ms.push_back(complete - in_flight_arrivals[i]);
      queue_wait_sum += drain_start - in_flight_arrivals[i];
    }
    backlog_ms = std::max(0.0, backlog_ms + service_ms - tick_ms);
  }

  res.p50_ms = percentile(sojourn_ms, 0.50);
  res.p99_ms = percentile(sojourn_ms, 0.99);
  res.p999_ms = percentile(sojourn_ms, 0.999);
  res.mean_queue_ms =
      res.served > 0 ? queue_wait_sum / static_cast<double>(res.served) : 0.0;
  return res;
}

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("serve_latency", argc, argv);
  print_header("Serve latency",
               "open-loop Poisson arrivals: sojourn percentiles + shedding");

  model::CHGNet net(bench_model_config(3, opt), 17);

  Rng gen_rng(2468);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = opt.full ? 24 : 12;
  const int distinct = opt.full ? 128 : 64;
  std::vector<data::Crystal> pool;
  for (int i = 0; i < distinct; ++i) {
    pool.push_back(data::random_crystal(gen_rng, gen));
  }

  // Offered loads, in mean arrivals per 25 ms tick against a 4-shard fleet
  // with shed_watermark 24: "low" leaves queues near-empty, "mid" keeps
  // them busy but below the watermark, "overload" bursts past every
  // routable queue's watermark so global shedding must engage.
  const int ticks = opt.full ? 60 : 40;
  struct LoadSpec {
    const char* name;
    double mean;
  };
  const LoadSpec specs[] = {{"low", 8.0}, {"mid", 48.0}, {"overload", 160.0}};

  std::printf("\n%-10s %9s %9s %9s %9s %11s %11s %11s\n", "load", "arrived",
              "served", "shed", "typed", "p50 ms", "p99 ms", "p999 ms");
  std::vector<LoadResult> results;
  for (const LoadSpec& spec : specs) {
    LoadResult r = run_load(net, opt, spec.name, spec.mean, ticks, pool);
    std::printf("%-10s %9llu %9llu %9llu %9llu %11.2f %11.2f %11.2f\n",
                r.name.c_str(), static_cast<unsigned long long>(r.arrivals),
                static_cast<unsigned long long>(r.served),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.typed_errors), r.p50_ms,
                r.p99_ms, r.p999_ms);
    results.push_back(std::move(r));
  }

  // Shape checks.  Percentiles are monotone by construction; the ledger
  // must reconcile per load; shedding engages exactly where designed.
  for (const LoadResult& r : results) {
    FASTCHG_CHECK(r.arrivals == r.served + r.shed + r.typed_errors,
                  r.name << ": ledger does not reconcile");
    FASTCHG_CHECK(r.typed_errors == 0,
                  r.name << ": unexpected non-shed rejections");
    FASTCHG_CHECK(r.p50_ms <= r.p99_ms && r.p99_ms <= r.p999_ms,
                  r.name << ": percentiles not monotone");
  }
  FASTCHG_CHECK(results[0].shed == 0, "low load should never shed");
  FASTCHG_CHECK(results[2].shed > 0,
                "overload never crossed the shed watermark");
  std::printf("\nshape check: PASS (ledger reconciles, overload shed %llu "
              "of %llu)\n",
              static_cast<unsigned long long>(results[2].shed),
              static_cast<unsigned long long>(results[2].arrivals));

  // Ledger counts are pure functions of the seeded arrival process and
  // queue capacities -- tight gate.  Percentiles ride measured drain
  // times -- ".seconds" gate.
  for (const LoadResult& r : results) {
    rec.metric("latency." + r.name + ".shed", static_cast<double>(r.shed));
    rec.metric("latency." + r.name + ".served",
               static_cast<double>(r.served));
    rec.metric("latency." + r.name + ".p50.seconds", r.p50_ms / 1e3);
    rec.metric("latency." + r.name + ".p99.seconds", r.p99_ms / 1e3);
    rec.metric("latency." + r.name + ".p999.seconds", r.p999_ms / 1e3);
    rec.metric("latency." + r.name + ".mean_queue.seconds",
               r.mean_queue_ms / 1e3);
  }

  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
