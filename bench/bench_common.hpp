// Shared helpers for the per-table / per-figure benchmark binaries.
//
// Scale note: the paper runs on 32 A100s with feature width 64, basis 31 and
// the 1.58M-sample MPtrj dataset.  These benches default to a scaled-down
// but architecturally identical setting (width 32, basis 15, 5 A / 2.5 A
// cutoffs, synthetic dataset) so every binary finishes on one CPU core in
// minutes.  Pass --full for paper-sized model dimensions (much slower).
// Every binary prints the paper's reported numbers next to the measured
// ones so the shape comparison is immediate.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "chgnet/model.hpp"
#include "data/batch.hpp"
#include "data/dataset.hpp"
#include "perf/counters.hpp"
#include "perf/report.hpp"
#include "perf/trace.hpp"

namespace fastchg::bench {

struct BenchOptions {
  bool full = false;  ///< paper-sized model dims (slow)
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) opt.full = true;
  }
  return opt;
}

/// Graph cutoffs used by the benches (paper: 6 / 3; scaled: 5 / 2.5).
inline data::GraphConfig bench_graph_config(const BenchOptions& opt) {
  data::GraphConfig gc;
  if (!opt.full) {
    gc.atom_cutoff = 5.0;
    gc.bond_cutoff = 2.5;
  }
  return gc;
}

/// A model config for optimization stage `stage` at bench scale.
inline model::ModelConfig bench_model_config(int stage,
                                             const BenchOptions& opt) {
  model::ModelConfig cfg = model::ModelConfig::optimization_stage(stage);
  if (!opt.full) {
    cfg.feat_dim = 32;
    cfg.num_radial = 15;
    cfg.num_angular = 15;
  }
  const data::GraphConfig gc = bench_graph_config(opt);
  cfg.atom_cutoff = gc.atom_cutoff;
  cfg.bond_cutoff = gc.bond_cutoff;
  return cfg;
}

/// MPtrj-like synthetic dataset at bench scale.  Quick mode restricts the
/// species alphabet: MPtrj's 89 elements are learnable with 1.58M samples,
/// so a few-hundred-sample bench keeps the species count proportional
/// (otherwise every test composition is unseen and the accuracy comparison
/// measures extrapolation noise instead of convergence).
inline data::Dataset bench_dataset(index_t n, std::uint64_t seed,
                                   const BenchOptions& opt) {
  data::GeneratorConfig g;  // long-tail defaults
  if (!opt.full) g.num_species = 24;
  return data::Dataset::generate(n, seed, g, bench_graph_config(opt));
}

inline void print_header(const char* exp_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s -- %s\n", exp_id, title);
  std::printf("================================================================\n");
}

inline void print_rule() {
  std::printf("----------------------------------------------------------------\n");
}

/// Full counter reset between bench repetitions.  reset_kernels() /
/// reset_peak() alone leave the event map and allocation count accumulating
/// across reps, so rep 1 inherits rep 0's history; this clears everything a
/// repetition accumulates (the peak watermark rebases to live bytes).
inline void reset_counters() { perf::counters().reset(); }

/// Collects scalar metrics for one bench binary and writes the
/// machine-readable report `BENCH_trace_<name>.json` consumed by
/// tools/perf_gate (lower is better for every metric; keys ending in
/// ".seconds" get the gate's looser wall-clock tolerance).  With `--trace`
/// on the command line the span tracer runs for the whole bench and a
/// Chrome trace `BENCH_chrome_<name>.json` plus a per-phase summary table
/// are emitted alongside.
class BenchRecorder {
 public:
  BenchRecorder(std::string name, int argc, char** argv)
      : report_{std::move(name), {}} {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--trace") == 0) tracing_ = true;
    }
    if (tracing_) perf::trace_enable();
  }

  void metric(const std::string& key, double value) {
    report_.metrics[key] = value;
  }

  /// Write the report (and the Chrome trace when --trace was given).
  void finish() {
    const std::string path = "BENCH_trace_" + report_.bench + ".json";
    perf::write_bench_report(path, report_);
    std::printf("\nbench report -> %s (%zu metrics)\n", path.c_str(),
                report_.metrics.size());
    if (tracing_) {
      const std::vector<perf::TraceEvent> ev = perf::trace_events();
      const std::string tr = "BENCH_chrome_" + report_.bench + ".json";
      perf::write_chrome_trace(tr, ev);
      std::printf("%s", perf::summary_table(perf::summarize(ev)).c_str());
      std::printf("chrome trace -> %s (%zu spans)\n", tr.c_str(), ev.size());
      perf::trace_disable();
    }
  }

 private:
  perf::BenchReport report_;
  bool tracing_ = false;
};

}  // namespace fastchg::bench
