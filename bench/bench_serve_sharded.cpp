// Sharded serving perf + robustness fixture (perf-gate wired):
//
//   saturation : an open-loop repeat-bearing request stream pushed through
//                1 / 2 / 4 shard fleets.  Shards of a real deployment drain
//                concurrently, so the fleet's simulated latency per tick is
//                the max of its shards' measured drain times (the virtual-
//                cluster convention of parallel/data_parallel.hpp); the
//                sweep reports saturation throughput against simulated time
//                and requires the 4-shard fleet >= 2.5x the 1-shard
//                baseline.
//   battery    : the acceptance battery -- 2000 fuzzed requests (30%
//                corrupted) against a 4-shard fleet while a seeded fault
//                plan kills two shards mid-stream.  Every admitted request
//                must come back typed (zero crashes, zero silent NaN, zero
//                unaccounted), and every rerouted success must be
//                bit-identical to the single-engine answer.
//   elastic    : consistent-hash remap fraction when a 4-shard fleet grows
//                to 5 -- ~1/5 of the key space, never a full rehash.
//
// Deterministic metrics (reroutes, trips, diffs, remap fraction) gate at
// the tight tolerance; wall-derived ones use the ".seconds" suffix.
// tools/perf_gate compares BENCH_trace_serve_sharded.json against
// bench/baselines/BENCH_trace_serve_sharded.json in CI.
#include "bench_common.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "data/generator.hpp"
#include "parallel/fault.hpp"
#include "perf/timer.hpp"
#include "serve/engine.hpp"
#include "serve/fuzz.hpp"
#include "serve/router.hpp"
#include "serve/struct_cache.hpp"

namespace fastchg::bench {
namespace {

using namespace serve;

RouterConfig base_router_config(const BenchOptions& opt, int shards) {
  RouterConfig rc;
  rc.num_shards = shards;
  rc.shard.engine.graph = bench_graph_config(opt);
  rc.shard.engine.max_batch = 8;
  rc.shard.engine.queue_capacity = 64;
  rc.vnodes = 128;
  rc.shed_watermark = 1u << 20;  // saturation sweep never sheds
  return rc;
}

/// Max absolute difference between two replies (0.0 = bit-identical).
double reply_diff(const Prediction& a, const Prediction& b) {
  double d = std::fabs(a.energy - b.energy);
  if (a.forces.size() != b.forces.size() ||
      a.magmom.size() != b.magmom.size()) {
    return std::numeric_limits<double>::infinity();
  }
  for (std::size_t i = 0; i < a.forces.size(); ++i) {
    for (int k = 0; k < 3; ++k) {
      d = std::max(d, std::fabs(a.forces[i][k] - b.forces[i][k]));
    }
  }
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      d = std::max(d, std::fabs(a.stress[i][j] - b.stress[i][j]));
    }
  }
  for (std::size_t i = 0; i < a.magmom.size(); ++i) {
    d = std::max(d, std::fabs(a.magmom[i] - b.magmom[i]));
  }
  return d;
}

/// One saturation measurement: push `stream` through an N-shard fleet in
/// open-loop waves and return the simulated seconds the fleet spent
/// draining (max-over-shards per tick).
double measure_sim_seconds(const model::CHGNet& net, const BenchOptions& opt,
                           int shards, const std::vector<data::Crystal>& stream,
                           std::size_t wave) {
  RouterConfig rc = base_router_config(opt, shards);
  rc.shard.engine.cache_capacity = 0;  // uniform per-request cost
  ShardRouter router(net, rc);

  // Warm tick: first-touch slab faults and lazy init stay out of the
  // measurement.
  for (std::size_t i = 0; i < wave && i < stream.size(); ++i) {
    FASTCHG_CHECK(router.submit(stream[i]).ok(), "warm submit rejected");
  }
  for (const auto& r : router.drain()) {
    FASTCHG_CHECK(r.ok(), "warm reply failed: " << r.error().message);
  }

  const double sim_before = router.stats().sim_ms_total;
  std::size_t served = 0;
  for (std::size_t i = 0; i < stream.size();) {
    for (std::size_t j = 0; j < wave && i < stream.size(); ++j, ++i) {
      FASTCHG_CHECK(router.submit(stream[i]).ok(), "submit rejected");
    }
    for (const auto& r : router.drain()) {
      FASTCHG_CHECK(r.ok(), "reply failed: " << r.error().message);
      ++served;
    }
  }
  FASTCHG_CHECK(served == stream.size(),
                "served " << served << "/" << stream.size());
  return (router.stats().sim_ms_total - sim_before) / 1e3;
}

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("serve_sharded", argc, argv);
  print_header("Sharded serving",
               "consistent-hash routing, shard failover, load shedding");

  model::CHGNet net(bench_model_config(3, opt), 17);

  // ---------------------------------------------------------- saturation --
  const int distinct = opt.full ? 192 : 96;
  const int requests = opt.full ? 960 : 480;
  const std::size_t wave = 64;
  Rng rng(4321);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = opt.full ? 24 : 12;
  std::vector<data::Crystal> uniques;
  for (int i = 0; i < distinct; ++i) {
    uniques.push_back(data::random_crystal(rng, gen));
  }
  std::vector<data::Crystal> stream;
  for (int i = 0; i < requests; ++i) {
    stream.push_back(uniques[static_cast<std::size_t>(i * 7 % distinct)]);
  }

  std::printf("\n%-8s %14s %14s %10s\n", "shards", "sim s", "req/s (sim)",
              "speedup");
  std::map<int, double> sim_secs;
  double speedup4 = 0.0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    for (int shards : {1, 2, 4}) {
      const double s = measure_sim_seconds(net, opt, shards, stream, wave);
      auto it = sim_secs.find(shards);
      if (it == sim_secs.end() || s < it->second) sim_secs[shards] = s;
    }
    speedup4 = sim_secs[1] / sim_secs[4];
    if (speedup4 >= 2.5) break;  // wall noise can depress one attempt
  }
  for (int shards : {1, 2, 4}) {
    const double s = sim_secs[shards];
    std::printf("%-8d %14.3f %14.1f %9.2fx\n", shards, s, requests / s,
                sim_secs[1] / s);
    rec.metric("saturation.shards" + std::to_string(shards) +
                   ".per_request_sim.seconds",
               s / requests);
  }
  // Acceptance bar: 4 shards must saturate >= 2.5x the single-shard fleet.
  // Lower is better for the gate, so record the inverse speedup.
  FASTCHG_CHECK(speedup4 >= 2.5,
                "4-shard saturation speedup " << speedup4 << " < 2.5x");
  rec.metric("saturation.inverse_speedup_4shard.seconds",
             sim_secs[4] / sim_secs[1]);

  // ------------------------------------------------------------- battery --
  // 2000 fuzzed requests from a 250-structure pool (result cache absorbs
  // repeats), shard 1 killed at tick 6 and shard 3 at tick 18.  On top of
  // the planned faults, a poisoned numeric-fault burst sustained for two
  // ticks against one victim shard exercises the closed-loop watchdog:
  // degrade -> auto-trip -> backlog failover -> restart -> healthy rejoin.
  print_rule();
  const int battery_requests = 2000, battery_pool = 250;
  const std::size_t battery_wave = 50;
  RouterConfig rc = base_router_config(opt, 4);
  rc.shard.engine.cache_capacity = 512;
  rc.shard.restart_ticks = 3;
  rc.shard.degrade_fault_threshold = 1;
  rc.shard.trip_burst_ticks = 2;
  auto poison = std::make_shared<bool>(false);
  rc.shard.engine.corrupt_batch =
      [poison](data::Batch& b, const std::vector<std::size_t>&) {
        if (!*poison) return;
        float* cart = b.cart.data();
        for (index_t a = 0; a < b.num_atoms; ++a) {
          for (int d = 0; d < 3; ++d) {
            cart[a * 3 + d] = std::numeric_limits<float>::quiet_NaN();
          }
        }
      };
  parallel::FaultPlan plan = parallel::parse_fault_plan("fail:1@6,fail:3@18");
  rc.fault_plan = &plan;
  ShardRouter router(net, rc);

  InferenceEngine reference(net, [&] {
    EngineConfig ec;
    ec.graph = bench_graph_config(opt);
    return ec;
  }());
  // Single-engine reference replies, computed once per distinct structure.
  std::map<std::string, Prediction> reference_replies;

  Rng fuzz_rng(2026);
  data::GeneratorConfig fuzz_gen = gen;
  std::vector<data::Crystal> pool;
  for (int i = 0; i < battery_pool; ++i) {
    data::Crystal c;
    (void)fuzz_crystal(fuzz_rng, c, /*corrupt_prob=*/0.3, fuzz_gen);
    pool.push_back(std::move(c));
  }

  // Burst stream for the watchdog escalation: *fresh* structures (cold
  // caches force real forwards, which the poison faults) that all share one
  // victim shard's affinity, so only that shard sustains the burst while
  // its siblings stay quiet.
  Rng burst_rng(777);
  std::vector<data::Crystal> burst_pool;
  burst_pool.push_back(data::random_crystal(burst_rng, gen));
  const int victim = router.affinity_shard(burst_pool.front());
  const std::size_t burst_need = 2 * battery_wave;
  while (burst_pool.size() < burst_need) {
    data::Crystal c = data::random_crystal(burst_rng, gen);
    if (router.affinity_shard(c) == victim) burst_pool.push_back(std::move(c));
  }
  const std::uint64_t burst_first_tick = 24;  // both planned trips recovered

  std::size_t admitted = 0, replies_seen = 0, served = 0, rerouted = 0,
              typed_errors = 0, silent_nan = 0;
  double max_reroute_diff = 0.0;
  std::vector<const data::Crystal*> in_flight;  // gid order within the tick
  std::size_t burst_used = 0;
  for (int i = 0; i < battery_requests;) {
    const std::uint64_t tick = router.stats().ticks;
    const bool burst_tick =
        tick >= burst_first_tick && tick < burst_first_tick + 2;
    *poison = burst_tick;
    in_flight.clear();
    for (std::size_t j = 0; j < battery_wave && i < battery_requests;
         ++j, ++i) {
      const data::Crystal& c =
          burst_tick && burst_used < burst_pool.size()
              ? burst_pool[burst_used++]
              : pool[static_cast<std::size_t>(i * 13 % battery_pool)];
      if (router.submit(c).ok()) {
        ++admitted;
        in_flight.push_back(&c);
      } else {
        ++typed_errors;  // shed / no-capacity rejections are typed too
      }
    }
    const auto replies = router.drain();
    FASTCHG_CHECK(replies.size() == in_flight.size(),
                  "tick returned " << replies.size() << " replies for "
                                   << in_flight.size() << " admissions");
    for (std::size_t k = 0; k < replies.size(); ++k) {
      ++replies_seen;
      const auto& r = replies[k];
      if (!r.ok()) {
        ++typed_errors;
        continue;
      }
      ++served;
      const Prediction& p = r.value();
      bool finite = std::isfinite(p.energy);
      for (const auto& f : p.forces) {
        for (int d = 0; d < 3; ++d) finite = finite && std::isfinite(f[d]);
      }
      for (double m : p.magmom) finite = finite && std::isfinite(m);
      if (!finite) ++silent_nan;
      if (p.rerouted) {
        ++rerouted;
        // Bit-identical failover: compare against the single-engine answer
        // for this exact structure.
        const std::string key = StructureCache::fingerprint(
            *in_flight[k], rc.shard.engine.graph);
        auto it = reference_replies.find(key);
        if (it == reference_replies.end()) {
          auto want = reference.predict(*in_flight[k]);
          FASTCHG_CHECK(want.ok(), "reference rejected a served structure: "
                                       << want.error().message);
          it = reference_replies.emplace(key, std::move(want).value()).first;
        }
        max_reroute_diff = std::max(max_reroute_diff, reply_diff(p, it->second));
      }
    }
  }
  const std::size_t unaccounted = admitted - replies_seen;
  const RouterStats& rs = router.stats();

  std::printf("battery: %d requests, %zu admitted, %zu served, %zu typed "
              "errors\n",
              battery_requests, admitted, served, typed_errors);
  std::printf("         %zu rerouted (max diff %.3g), %llu failovers, %llu "
              "trips (%llu auto), %llu restarts, %llu shed\n",
              rerouted, max_reroute_diff,
              static_cast<unsigned long long>(rs.failovers),
              static_cast<unsigned long long>(rs.trips),
              static_cast<unsigned long long>(rs.auto_trips),
              static_cast<unsigned long long>(rs.restarts),
              static_cast<unsigned long long>(rs.shed));

  // Acceptance bars: everything admitted is answered, nothing silently NaN,
  // failover replies match the single-engine fleet bit for bit.
  FASTCHG_CHECK(unaccounted == 0, unaccounted << " requests unaccounted");
  FASTCHG_CHECK(silent_nan == 0, silent_nan << " silent-NaN successes");
  FASTCHG_CHECK(max_reroute_diff == 0.0,
                "rerouted replies diverged by " << max_reroute_diff);
  FASTCHG_CHECK(rerouted > 0, "fault plan never forced a reroute");
  FASTCHG_CHECK(rs.auto_trips == 1,
                "watchdog burst should auto-trip exactly once, saw "
                    << rs.auto_trips);
  FASTCHG_CHECK(rs.trips == 3,
                "expected 2 planned + 1 watchdog trip, saw " << rs.trips);
  FASTCHG_CHECK(rs.restarts == 3, "expected 3 restarts, saw " << rs.restarts);
  FASTCHG_CHECK(router.shard(victim).auto_trips() == 1,
                "victim shard " << victim << " never escalated");
  FASTCHG_CHECK(router.shard(victim).health() == ShardHealth::kHealthy,
                "victim shard " << victim << " did not rejoin healthy: "
                                << to_string(router.shard(victim).health()));
  const CacheStats fleet_cache = router.fleet_cache_stats();
  FASTCHG_CHECK(fleet_cache.lookups == fleet_cache.hits + fleet_cache.misses,
                "fleet cache books do not reconcile");

  // All deterministic (admission, routing and faults never read the clock).
  rec.metric("battery.unaccounted", static_cast<double>(unaccounted));
  rec.metric("battery.silent_nan", static_cast<double>(silent_nan));
  rec.metric("battery.max_reroute_diff", max_reroute_diff);
  rec.metric("battery.typed_errors", static_cast<double>(typed_errors));
  rec.metric("battery.rerouted", static_cast<double>(rerouted));
  rec.metric("battery.restarts", static_cast<double>(rs.restarts));
  rec.metric("battery.auto_trips", static_cast<double>(rs.auto_trips));

  // ------------------------------------------------------------- elastic --
  print_rule();
  ShardRouter fleet(net, base_router_config(opt, 4));
  const int keys = 400;
  std::vector<int> before;
  for (int k = 0; k < keys; ++k) {
    before.push_back(fleet.affinity_shard(uniques[
        static_cast<std::size_t>(k % distinct)]));
  }
  // NB: uniques repeat past `distinct`; dedupe by fingerprint for the
  // remap count so repeats don't bias the fraction.
  std::map<std::string, std::pair<int, int>> moved_by_key;
  (void)fleet.add_shard();
  int moved = 0, counted = 0;
  for (int k = 0; k < keys; ++k) {
    const data::Crystal& c = uniques[static_cast<std::size_t>(k % distinct)];
    const std::string key =
        StructureCache::fingerprint(c, bench_graph_config(opt));
    if (moved_by_key.count(key)) continue;
    const int now = fleet.affinity_shard(c);
    moved_by_key[key] = {before[k], now};
    ++counted;
    if (now != before[k]) ++moved;
  }
  const double remap_fraction =
      static_cast<double>(moved) / static_cast<double>(counted);
  std::printf("elastic: %d/%d keys re-homed on 4->5 scale-up (%.3f; ideal "
              "%.3f, full rehash %.3f)\n",
              moved, counted, remap_fraction, 1.0 / 5.0, 4.0 / 5.0);
  FASTCHG_CHECK(remap_fraction > 0.0 && remap_fraction < 0.45,
                "remap fraction " << remap_fraction
                                  << " outside consistent-hash bounds");
  rec.metric("elastic.remap_fraction", remap_fraction);

  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
