// Table I -- Test MAE of CHGNet (reference) vs FastCHGNet "w/o head" vs
// FastCHGNet "F/S head" on the (synthetic) MPtrj test split, plus parameter
// counts and wall-clock training time.
//
// Paper (on real MPtrj):
//   CHGNet v0.3.0     412.5K params  E 29  F 68  S 0.314  M 37
//   Fast w/o head     411.2K params  E 26  F 62  S 0.270  M 35
//   Fast F/S head     429.1K params  E 16  F 73  S 0.479  M 36
// Expected orderings: "w/o head" matches or beats reference everywhere
// (same math, larger batch + tuned LR); "F/S head" trades force/stress
// accuracy for energy accuracy and far cheaper training.
#include "bench_common.hpp"

#include "perf/timer.hpp"
#include "train/trainer.hpp"

namespace fastchg::bench {
namespace {

struct Row {
  const char* name;
  index_t params;
  train::EvalMetrics metrics;
  double train_seconds;
};

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("table1_convergence", argc, argv);
  print_header("Table I", "test MAE of CHGNet vs FastCHGNet variants");
  const index_t n = opt.full ? 1024 : 384;
  const index_t epochs = opt.full ? 30 : 14;
  data::Dataset ds = bench_dataset(n, 2025, opt);
  auto split = ds.split(0.05, 0.05, 9);
  std::printf("dataset: %lld structures (train %zu / val %zu / test %zu), "
              "%lld epochs\n",
              static_cast<long long>(ds.size()), split.train.size(),
              split.val.size(), split.test.size(),
              static_cast<long long>(epochs));

  struct Variant {
    const char* name;
    model::ModelConfig cfg;
    train::TrainConfig tc;
  };
  std::vector<Variant> variants;
  {
    // Reference CHGNet: small batch, default LR (the paper's baseline).
    Variant v{"CHGNet  (reference)", bench_model_config(0, opt), {}};
    v.tc.batch_size = 16;
    v.tc.epochs = epochs;
    v.tc.base_lr = 1e-3f;
    variants.push_back(v);
  }
  {
    // FastCHGNet w/o head: all system optimizations, derivative readout,
    // larger batch with Eq.-14-scaled LR.
    Variant v{"FastCHGNet (w/o head)", bench_model_config(2, opt), {}};
    v.tc.batch_size = 32;
    v.tc.epochs = epochs;
    v.tc.base_lr = 1e-3f;
    v.tc.scale_lr = true;
    v.tc.lr_k = 16;
    variants.push_back(v);
  }
  {
    // FastCHGNet F/S head: decoupled force/stress readout.
    Variant v{"FastCHGNet (F/S head)", bench_model_config(3, opt), {}};
    v.tc.batch_size = 32;
    v.tc.epochs = epochs;
    v.tc.base_lr = 1e-3f;
    v.tc.scale_lr = true;
    v.tc.lr_k = 16;
    variants.push_back(v);
  }

  std::vector<Row> rows;
  for (auto& v : variants) {
    std::printf("\ntraining %s ...\n", v.name);
    model::CHGNet net(v.cfg, 1234);
    train::Trainer trainer(net, v.tc);
    trainer.on_epoch = [&](index_t e, const train::EpochStats& st) {
      std::printf("  epoch %2lld  loss %.4f  (E %.4f F %.4f S %.4f M %.4f) "
                  "%.1fs\n",
                  static_cast<long long>(e), st.mean_loss, st.energy_loss,
                  st.force_loss, st.stress_loss, st.magmom_loss, st.seconds);
    };
    perf::Timer t;
    trainer.fit(ds, split.train);
    const double secs = t.seconds();
    rows.push_back(
        {v.name, net.num_parameters(), trainer.evaluate(ds, split.test), secs});
  }

  print_rule();
  std::printf("%-24s %8s %10s %10s %10s %10s %9s\n", "model", "param",
              "E(meV/at)", "F(meV/A)", "S(GPa)", "M(m.muB)", "train(s)");
  for (const Row& r : rows) {
    std::printf("%-24s %7.1fK %10.1f %10.1f %10.3f %10.1f %9.1f\n", r.name,
                r.params / 1e3, r.metrics.energy_mae_mev_atom,
                r.metrics.force_mae_mev_a, r.metrics.stress_mae_gpa,
                r.metrics.magmom_mae_mmub, r.train_seconds);
  }
  std::printf("%-24s %8s %10s %10s %10s %10s\n", "paper CHGNet v0.3.0",
              "412.5K", "29", "68", "0.314", "37");
  std::printf("%-24s %8s %10s %10s %10s %10s\n", "paper Fast w/o head",
              "411.2K", "26", "62", "0.270", "35");
  std::printf("%-24s %8s %10s %10s %10s %10s\n", "paper Fast F/S head",
              "429.1K", "16", "73", "0.479", "36");

  print_rule();
  const bool heads_have_more_params = rows[2].params > rows[1].params;
  const bool fs_forces_worse =
      rows[2].metrics.force_mae_mev_a >= rows[1].metrics.force_mae_mev_a;
  const bool fs_training_fastest =
      rows[2].train_seconds < rows[0].train_seconds &&
      rows[2].train_seconds < rows[1].train_seconds;
  std::printf("[shape %s] F/S-head adds params (%s), F/S-head forces <= "
              "w/o-head accuracy (%s), F/S-head trains fastest (%s)\n",
              (heads_have_more_params && fs_training_fastest) ? "OK"
                                                              : "MISMATCH",
              heads_have_more_params ? "yes" : "no",
              fs_forces_worse ? "yes" : "no",
              fs_training_fastest ? "yes" : "no");
  const char* keys[] = {"reference", "wo_head", "fs_head"};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rec.metric(std::string(keys[i]) + ".train.seconds",
               rows[i].train_seconds);
    rec.metric(std::string(keys[i]) + ".energy_mae_mev_atom",
               rows[i].metrics.energy_mae_mev_atom);
  }
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
