// Arena-backed tensor memory (docs/memory.md): steady-state allocation
// counts with the pool on vs off, plus pool-on == pool-off bit-exactness.
//
// The paper's Fig. 8 measures memory discipline (retained intermediates);
// our CPU analogue is *system allocations per steady-state step*: after
// warm-up, a training step or fused serve forward should be served almost
// entirely from the pool's free lists.  This bench measures:
//
//   * train.pool_{off,on}.mallocs_per_step -- Allocator-layer system
//     allocations per train step on a warmed trainer (prefetch off,
//     deterministic);
//   * train.prefetch_pool.mallocs_per_step -- per step with prefetch ON
//     and the loader collating into the trainer's step pool (the handoff);
//     must be exactly 0 once the pool saturates;
//   * serve.pool_{off,on}.mallocs_per_forward -- same per fused
//     micro-batched forward on a warmed engine;
//   * serve_int8.pool_{off,on}.mallocs_per_forward -- same through an
//     EngineShard's own pool with the quantized replica serving (the
//     sharded front-end's arena path);
//   * *.malloc_ratio -- pooled / unpooled (acceptance bar: <= 0.01);
//   * bitexact.{train,dp,serve}.max_diff -- must be exactly 0.0: the
//     allocator changes where bytes live, never their values;
//   * pool hit rates and slab high-water for the measured phases.
//
// All gated metrics are deterministic (fixed seeds, prefetch disabled,
// batch_workers=1); wall-clock metrics use the ".seconds" suffix so the
// perf gate applies its loose tolerance.  Note "mallocs" here counts
// allocations made through the Allocator layer (tensor storage + graph
// node headers), not untracked STL internals -- see docs/memory.md.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/alloc.hpp"
#include "parallel/data_parallel.hpp"
#include "perf/timer.hpp"
#include "serve/engine.hpp"
#include "serve/shard.hpp"
#include "train/trainer.hpp"

namespace fastchg {
namespace {

using bench::BenchOptions;

constexpr index_t kRows = 48;
constexpr index_t kBatch = 16;
constexpr index_t kSteps = (kRows + kBatch - 1) / kBatch;
constexpr int kWarmEpochs = 2;

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> idx(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  return idx;
}

struct PhaseCounts {
  double mallocs_per_unit = 0.0;
  double pool_hits = 0.0;
  double pool_misses = 0.0;
  double slab_high_water = 0.0;
  double seconds = 0.0;
};

/// Warmed steady-state train epoch with pooling on or off.
PhaseCounts measure_train(bool pooled, const BenchOptions& opt) {
  alloc::set_pooling_enabled(pooled);
  data::Dataset ds = bench::bench_dataset(kRows, 404, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 7);
  train::TrainConfig tc;
  tc.batch_size = kBatch;
  tc.epochs = kWarmEpochs + 1;
  tc.prefetch = false;  // keep allocation counts single-threaded deterministic
  train::Trainer trainer(net, tc);
  const std::vector<index_t> idx = all_rows(ds);

  for (int e = 0; e < kWarmEpochs; ++e) trainer.train_epoch(ds, idx, e);

  bench::reset_counters();
  perf::Timer t;
  trainer.train_epoch(ds, idx, kWarmEpochs);
  const double secs = t.seconds();
  const perf::Counters c = perf::counters().snapshot();

  PhaseCounts pc;
  pc.mallocs_per_unit =
      static_cast<double>(c.system_allocs) / static_cast<double>(kSteps);
  pc.pool_hits = static_cast<double>(c.pool_hits);
  pc.pool_misses = static_cast<double>(c.pool_misses);
  pc.slab_high_water = static_cast<double>(c.pool_high_water);
  pc.seconds = secs;
  return pc;
}

/// Prefetch handoff: the loader collates into the trainer's own step pool,
/// so batch blocks the main thread frees mid-step are re-served to the
/// background collation of step N+1.  Shuffle-driven shape variance means
/// the pool's free lists take a few epochs to cover every bucket demand
/// (each miss grows them monotonically -- the trainer pool never trims),
/// after which a steady-state epoch performs *exactly zero* system
/// allocations even with the second thread in flight.  Trains until an
/// epoch runs clean and reports that epoch's counts.
PhaseCounts measure_train_prefetch(const BenchOptions& opt,
                                   int* epochs_to_clean) {
  alloc::set_pooling_enabled(true);
  data::Dataset ds = bench::bench_dataset(kRows, 404, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 7);
  train::TrainConfig tc;
  tc.batch_size = kBatch;
  constexpr int kMaxEpochs = 12;
  tc.epochs = kMaxEpochs;
  tc.prefetch = true;
  train::Trainer trainer(net, tc);
  const std::vector<index_t> idx = all_rows(ds);

  PhaseCounts pc;
  *epochs_to_clean = kMaxEpochs;
  for (int e = 0; e < kMaxEpochs; ++e) {
    bench::reset_counters();
    perf::Timer t;
    trainer.train_epoch(ds, idx, e);
    pc.seconds = t.seconds();
    const perf::Counters c = perf::counters().snapshot();
    pc.mallocs_per_unit =
        static_cast<double>(c.system_allocs) / static_cast<double>(kSteps);
    pc.pool_hits = static_cast<double>(c.pool_hits);
    pc.pool_misses = static_cast<double>(c.pool_misses);
    pc.slab_high_water = static_cast<double>(c.pool_high_water);
    if (c.system_allocs == 0) {
      *epochs_to_clean = e + 1;
      break;
    }
  }
  return pc;
}

/// Warmed engine ticks over a fixed request stream (fused micro-batches).
PhaseCounts measure_serve(bool pooled, const BenchOptions& opt) {
  alloc::set_pooling_enabled(pooled);
  data::Dataset ds = bench::bench_dataset(16, 505, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 7);
  serve::EngineConfig cfg;
  cfg.graph = bench::bench_graph_config(opt);
  cfg.max_batch = 4;
  cfg.batch_workers = 1;  // deterministic single-worker counts
  cfg.queue_capacity = 64;
  serve::InferenceEngine engine(net, cfg);

  const auto tick = [&] {
    for (index_t i = 0; i < ds.size(); ++i) {
      auto r = engine.submit(ds[i].crystal);
      FASTCHG_CHECK(r.ok(), "bench_memory_arena: submit rejected");
    }
    for (const auto& reply : engine.drain()) {
      FASTCHG_CHECK(reply.ok(), "bench_memory_arena: serve reply failed");
    }
  };

  // Warm-up: builds graphs, primes the worker pool, and walks the replay
  // cache past its sighting + capture ticks (the capture allocates the
  // program slab; steady state must measure pure pool recycling).
  for (int i = 0; i < 3; ++i) tick();

  const std::uint64_t mb_before = engine.stats().micro_batches;
  bench::reset_counters();
  perf::Timer t;
  constexpr int kTicks = 4;
  for (int i = 0; i < kTicks; ++i) tick();
  const double secs = t.seconds();
  const perf::Counters c = perf::counters().snapshot();
  const std::uint64_t forwards = engine.stats().micro_batches - mb_before;

  PhaseCounts pc;
  pc.mallocs_per_unit = static_cast<double>(c.system_allocs) /
                        static_cast<double>(forwards > 0 ? forwards : 1);
  pc.pool_hits = static_cast<double>(c.pool_hits);
  pc.pool_misses = static_cast<double>(c.pool_misses);
  pc.slab_high_water = static_cast<double>(c.pool_high_water);
  pc.seconds = secs;
  return pc;
}

/// Int8 audit: warmed quantized-replica forwards through an EngineShard's
/// own pool (the sharded front-end's ArenaScope path).  The quantized
/// replica's tensors must recycle exactly like fp32 ones -- steady state
/// is served from the shard's free lists, ~0 system allocations.
PhaseCounts measure_serve_int8(bool pooled, const BenchOptions& opt) {
  alloc::set_pooling_enabled(pooled);
  data::Dataset ds = bench::bench_dataset(16, 909, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 7);
  serve::ShardConfig sc;
  sc.engine.graph = bench::bench_graph_config(opt);
  sc.engine.max_batch = 4;
  sc.engine.batch_workers = 1;
  sc.engine.queue_capacity = 64;
  sc.engine.cache_capacity = 0;  // every request runs the int8 forward
  sc.engine.quantize = true;
  sc.pool_trim_slack = SIZE_MAX;  // audit recycling, not the trim policy
  serve::EngineShard shard(0, net, sc);

  const auto tick = [&] {
    for (index_t i = 0; i < ds.size(); ++i) {
      auto r = shard.submit(ds[i].crystal);
      FASTCHG_CHECK(r.ok(), "bench_memory_arena: int8 submit rejected");
    }
    for (const auto& reply : shard.drain()) {
      FASTCHG_CHECK(reply.ok(), "bench_memory_arena: int8 reply failed");
    }
    FASTCHG_CHECK(shard.tick() == false,
                  "bench_memory_arena: unexpected shard restart");
  };

  // Warm-up: graphs, replica pool, quantized weights, and the replay
  // cache's sighting + capture ticks (see measure_serve).
  for (int i = 0; i < 3; ++i) tick();

  const std::uint64_t mb_before = shard.engine().stats().micro_batches;
  bench::reset_counters();
  perf::Timer t;
  constexpr int kTicks = 4;
  for (int i = 0; i < kTicks; ++i) tick();
  const double secs = t.seconds();
  const perf::Counters c = perf::counters().snapshot();
  const std::uint64_t forwards =
      shard.engine().stats().micro_batches - mb_before;

  PhaseCounts pc;
  pc.mallocs_per_unit = static_cast<double>(c.system_allocs) /
                        static_cast<double>(forwards > 0 ? forwards : 1);
  pc.pool_hits = static_cast<double>(c.pool_hits);
  pc.pool_misses = static_cast<double>(c.pool_misses);
  pc.slab_high_water = static_cast<double>(c.pool_high_water);
  pc.seconds = secs;
  return pc;
}

std::vector<float> flatten_parameters(const model::CHGNet& net) {
  std::vector<float> flat;
  for (const ag::Var& p : net.parameters()) {
    const std::vector<float> v = p.value().to_vector();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  FASTCHG_CHECK(a.size() == b.size(), "bitexact: parameter count mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return worst;
}

double bitexact_train(const BenchOptions& opt) {
  const auto run = [&](bool pooled) {
    alloc::set_pooling_enabled(pooled);
    data::Dataset ds = bench::bench_dataset(16, 606, opt);
    model::CHGNet net(bench::bench_model_config(3, opt), 19);
    train::TrainConfig tc;
    tc.batch_size = 8;
    tc.epochs = 1;
    train::Trainer trainer(net, tc);
    trainer.fit(ds, all_rows(ds));
    return flatten_parameters(net);
  };
  return max_abs_diff(run(true), run(false));
}

double bitexact_dp(const BenchOptions& opt) {
  const auto run = [&](bool pooled) {
    alloc::set_pooling_enabled(pooled);
    data::Dataset ds = bench::bench_dataset(16, 707, opt);
    parallel::DataParallelConfig cfg;
    cfg.num_devices = 2;
    cfg.global_batch = 8;
    parallel::DataParallelTrainer dp(bench::bench_model_config(3, opt), cfg,
                                     23);
    dp.train_epoch(ds, all_rows(ds), 0);
    return flatten_parameters(dp.master());
  };
  return max_abs_diff(run(true), run(false));
}

double bitexact_serve(const BenchOptions& opt) {
  const auto run = [&](bool pooled) {
    alloc::set_pooling_enabled(pooled);
    data::Dataset ds = bench::bench_dataset(10, 808, opt);
    model::CHGNet net(bench::bench_model_config(3, opt), 29);
    serve::EngineConfig cfg;
    cfg.graph = bench::bench_graph_config(opt);
    cfg.max_batch = 4;
    serve::InferenceEngine engine(net, cfg);
    std::vector<float> flat;
    for (index_t i = 0; i < ds.size(); ++i) {
      FASTCHG_CHECK(engine.submit(ds[i].crystal).ok(), "submit failed");
    }
    for (const auto& r : engine.drain()) {
      FASTCHG_CHECK(r.ok(), "serve failed");
      const serve::Prediction& p = r.value();
      flat.push_back(static_cast<float>(p.energy));
      for (const auto& f : p.forces) {
        for (int d = 0; d < 3; ++d) flat.push_back(static_cast<float>(f[d]));
      }
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          flat.push_back(static_cast<float>(p.stress[i][j]));
        }
      }
      for (double m : p.magmom) flat.push_back(static_cast<float>(m));
    }
    return flat;
  };
  return max_abs_diff(run(true), run(false));
}

}  // namespace
}  // namespace fastchg

int main(int argc, char** argv) {
  using namespace fastchg;
  const BenchOptions opt = bench::parse_options(argc, argv);
  bench::BenchRecorder rec("memory_arena", argc, argv);
  bench::print_header("MEM-ARENA",
                      "pooled allocator: steady-state mallocs + bit-exactness");

  const bool prev_pooling = alloc::pooling_enabled();

  // -- training steady state -------------------------------------------
  const PhaseCounts train_off = measure_train(false, opt);
  const PhaseCounts train_on = measure_train(true, opt);
  const double train_ratio =
      train_off.mallocs_per_unit > 0.0
          ? train_on.mallocs_per_unit / train_off.mallocs_per_unit
          : 0.0;
  std::printf("train (per step, %lld steps, warmed):\n",
              static_cast<long long>(kSteps));
  std::printf("  pool off : %10.1f system allocs/step   (%.3fs epoch)\n",
              train_off.mallocs_per_unit, train_off.seconds);
  std::printf("  pool on  : %10.1f system allocs/step   (%.3fs epoch)\n",
              train_on.mallocs_per_unit, train_on.seconds);
  std::printf("  ratio    : %10.4f   (acceptance: <= 0.01)  hits %.0f  "
              "misses %.0f  slab HW %.0f B\n",
              train_ratio, train_on.pool_hits, train_on.pool_misses,
              train_on.slab_high_water);

  // -- prefetch handoff steady state -----------------------------------
  int prefetch_epochs = 0;
  const PhaseCounts train_pf = measure_train_prefetch(opt, &prefetch_epochs);
  bench::print_rule();
  std::printf("train + prefetch handoff (loader collates into the step "
              "pool):\n");
  std::printf("  pool on  : %10.1f system allocs/step   (clean after %d "
              "epochs, %.3fs epoch)\n",
              train_pf.mallocs_per_unit, prefetch_epochs, train_pf.seconds);
  std::printf("  acceptance: exactly 0  (hits %.0f  misses %.0f  slab HW "
              "%.0f B)\n",
              train_pf.pool_hits, train_pf.pool_misses,
              train_pf.slab_high_water);

  // -- serving steady state --------------------------------------------
  const PhaseCounts serve_off = measure_serve(false, opt);
  const PhaseCounts serve_on = measure_serve(true, opt);
  const double serve_ratio =
      serve_off.mallocs_per_unit > 0.0
          ? serve_on.mallocs_per_unit / serve_off.mallocs_per_unit
          : 0.0;
  bench::print_rule();
  std::printf("serve (per fused forward, warmed engine):\n");
  std::printf("  pool off : %10.1f system allocs/forward (%.3fs)\n",
              serve_off.mallocs_per_unit, serve_off.seconds);
  std::printf("  pool on  : %10.1f system allocs/forward (%.3fs)\n",
              serve_on.mallocs_per_unit, serve_on.seconds);
  std::printf("  ratio    : %10.4f   (acceptance: <= 0.01)  hits %.0f  "
              "misses %.0f\n",
              serve_ratio, serve_on.pool_hits, serve_on.pool_misses);

  // -- int8 shard serving steady state ---------------------------------
  const PhaseCounts i8_off = measure_serve_int8(false, opt);
  const PhaseCounts i8_on = measure_serve_int8(true, opt);
  const double i8_ratio = i8_off.mallocs_per_unit > 0.0
                              ? i8_on.mallocs_per_unit / i8_off.mallocs_per_unit
                              : 0.0;
  bench::print_rule();
  std::printf("int8 shard serve (per fused forward, warmed quantized "
              "replica):\n");
  std::printf("  pool off : %10.1f system allocs/forward (%.3fs)\n",
              i8_off.mallocs_per_unit, i8_off.seconds);
  std::printf("  pool on  : %10.1f system allocs/forward (%.3fs)\n",
              i8_on.mallocs_per_unit, i8_on.seconds);
  std::printf("  ratio    : %10.4f   (acceptance: <= 0.01)  hits %.0f  "
              "misses %.0f\n",
              i8_ratio, i8_on.pool_hits, i8_on.pool_misses);

  // -- bit-exactness ----------------------------------------------------
  const double diff_train = bitexact_train(opt);
  const double diff_dp = bitexact_dp(opt);
  const double diff_serve = bitexact_serve(opt);
  bench::print_rule();
  std::printf("bit-exactness pool-on vs pool-off (must be 0.0):\n");
  std::printf("  train max|diff| = %g   dp max|diff| = %g   serve max|diff| "
              "= %g\n",
              diff_train, diff_dp, diff_serve);

  alloc::set_pooling_enabled(prev_pooling);

  const bool pass = train_ratio <= 0.01 && serve_ratio <= 0.01 &&
                    i8_ratio <= 0.01 && train_pf.mallocs_per_unit == 0.0 &&
                    diff_train == 0.0 && diff_dp == 0.0 && diff_serve == 0.0;
  std::printf("\nshape check: %s\n", pass ? "PASS" : "FAIL");

  // Gated metrics: allocation counts and bit-exactness are deterministic
  // (fixed seeds, prefetch off, one worker); timings use ".seconds".
  rec.metric("train.pool_off.mallocs_per_step", train_off.mallocs_per_unit);
  rec.metric("train.pool_on.mallocs_per_step", train_on.mallocs_per_unit);
  rec.metric("train.malloc_ratio", train_ratio);
  rec.metric("train.pool_on.misses", train_on.pool_misses);
  // Exact 0: the handoff's whole point.  (Epochs-to-clean is printed, not
  // gated -- thread interleaving can shift it by one.)
  rec.metric("train.prefetch_pool.mallocs_per_step",
             train_pf.mallocs_per_unit);
  rec.metric("serve.pool_off.mallocs_per_forward",
             serve_off.mallocs_per_unit);
  rec.metric("serve.pool_on.mallocs_per_forward", serve_on.mallocs_per_unit);
  rec.metric("serve.malloc_ratio", serve_ratio);
  rec.metric("serve.pool_on.misses", serve_on.pool_misses);
  rec.metric("serve_int8.pool_off.mallocs_per_forward",
             i8_off.mallocs_per_unit);
  rec.metric("serve_int8.pool_on.mallocs_per_forward",
             i8_on.mallocs_per_unit);
  rec.metric("serve_int8.malloc_ratio", i8_ratio);
  rec.metric("bitexact.train.max_diff", diff_train);
  rec.metric("bitexact.dp.max_diff", diff_dp);
  rec.metric("bitexact.serve.max_diff", diff_serve);
  rec.metric("train.pool_on.epoch.seconds", train_on.seconds);
  rec.metric("train.pool_off.epoch.seconds", train_off.seconds);
  rec.metric("serve.pool_on.ticks.seconds", serve_on.seconds);
  rec.finish();
  return pass ? 0 : 1;
}
