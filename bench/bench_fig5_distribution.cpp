// Fig. 5 -- The atom/bond/angle distribution of the (synthetic) MPtrj
// dataset.  The paper's point: all three counts follow a long-tail
// distribution, which is what makes naive per-device sharding imbalanced.
#include "bench_common.hpp"

namespace fastchg::bench {
namespace {

void print_histogram(const char* name,
                     const data::Dataset::Histogram& h, index_t total) {
  std::printf("\n%s distribution:\n", name);
  std::printf("%12s %8s  %s\n", "<= bin", "count", "frequency");
  index_t max_count = 1;
  for (index_t c : h.counts) max_count = std::max(max_count, c);
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const int bar = static_cast<int>(40.0 * static_cast<double>(h.counts[b]) /
                                     static_cast<double>(max_count));
    std::printf("%12.0f %8lld  ", h.edges[b],
                static_cast<long long>(h.counts[b]));
    for (int i = 0; i < bar; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("  (%lld structures total)\n", static_cast<long long>(total));
}

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig5_distribution", argc, argv);
  print_header("Fig. 5", "atom/bond/angle distribution of the dataset");
  const index_t n = opt.full ? 8192 : 2048;
  data::Dataset ds = bench_dataset(n, 20250705, opt);
  auto st = ds.distribution(16);

  print_histogram("Atoms  (N_v)", st.atoms, ds.size());
  print_histogram("Bonds  (N_b)", st.bonds, ds.size());
  print_histogram("Angles (N_a)", st.angles, ds.size());

  print_rule();
  std::printf("means: atoms %.1f  bonds %.1f  angles %.1f\n", st.mean_atoms,
              st.mean_bonds, st.mean_angles);
  std::printf("maxima: atoms %lld  bonds %lld  angles %lld\n",
              static_cast<long long>(st.max_atoms),
              static_cast<long long>(st.max_bonds),
              static_cast<long long>(st.max_angles));
  const double tail_ratio_bonds =
      static_cast<double>(st.max_bonds) / std::max(1.0, st.mean_bonds);
  std::printf("long-tail check: max/mean bonds = %.1fx (paper: strongly "
              "long-tailed; > 3x expected)\n",
              tail_ratio_bonds);
  std::printf("[shape %s] frequencies are long-tail distributed\n",
              tail_ratio_bonds > 3.0 ? "OK" : "MISMATCH");
  // Lower-is-better convention: gate on the means staying put (a generator
  // regression shows up as a drifted distribution).
  rec.metric("mean_atoms", st.mean_atoms);
  rec.metric("mean_bonds", st.mean_bonds);
  rec.metric("mean_angles", st.mean_angles);
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
