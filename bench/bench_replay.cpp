// Recorded-step replay (core/replay.hpp + core/memplan.hpp): eager vs
// replayed step cost, dispatch overhead outside the kernels, and the static
// memory plan vs the pooled allocator's high-water mark.
//
// The paper's Fig. 8 shows the training step settling into a constant
// 947-kernel schedule; replay exploits that by capturing the step once and
// re-running it as a flat closure program (the CPU analogue of a CUDA
// graph).  The kernels' arithmetic loops are byte-for-byte the same on both
// paths, so the delta between an eager and a replayed step is pure
// dispatch: autograd-graph construction, shared_ptr churn, allocator
// traffic, backward traversal.  This bench measures:
//
//   * train.{eager,replay}.step.seconds -- per-step wall time for a warmed
//     trainer with replay off vs on (identical batch topology every step,
//     so the replay leg runs the captured program from step 3 on);
//   * train.replay_over_eager.time_ratio.seconds -- replayed / eager step
//     time (acceptance: < 1.0, the step must be measurably faster);
//   * train.{eager,replay}.allocs_per_step -- Allocator-layer system
//     allocations per steady-state step (deterministic; the replay leg
//     must allocate ~nothing: no Nodes, no activation tensors);
//   * train.replay.missed_steps -- measured-phase steps that did NOT
//     replay (deterministic; must be 0 once warmed);
//   * plan.bytes / plan_vs_pool.ratio -- the captured program's exact slab
//     size vs the pooled high-water of the same eager step (acceptance:
//     ratio <= 1.0 -- a static plan can only beat first-fit recycling);
//   * serve.{eager,replay}.forward.seconds -- same comparison for the
//     fused serve forward;
//   * bitexact.{train,serve}.max_diff -- replay-on vs replay-off must
//     match bit-for-bit (0.0; the program re-runs the same loops);
//   * fuse.* -- the offline fusion stage (core/fuse.hpp) vs the raw tape:
//     counted kernels before/after fusion (acceptance: >= 25% removed),
//     fused vs unfused slab bytes (acceptance: fused <= raw), fused vs
//     unfused replayed step time (acceptance: <= 1.0), and fused-vs-unfused
//     trained weights (acceptance: max |diff| exactly 0.0).
//
// Deterministic metrics (allocation counts, missed steps, plan bytes,
// bit-exactness) gate tightly; wall-clock rows use the ".seconds" suffix.
#include <cmath>
#include <cstdio>
#include <ctime>
#include <vector>

#include "bench_common.hpp"
#include "core/alloc.hpp"
#include "core/replay.hpp"
#include "perf/timer.hpp"
#include "serve/engine.hpp"
#include "train/trainer.hpp"

namespace fastchg {
namespace {

using bench::BenchOptions;

constexpr index_t kRows = 32;
constexpr index_t kBatch = 8;
constexpr index_t kSteps = (kRows + kBatch - 1) / kBatch;
constexpr int kWarmEpochs = 2;   ///< epoch 1 sights + captures, epoch 2 replays
constexpr int kMeasureEpochs = 8;

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> idx(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  return idx;
}

/// `n` copies of one generated crystal: every batch collates to the same
/// replay key, so the replay leg reaches steady-state (pure replays) after
/// one sighting + one capture.
data::Dataset identical_rows(index_t n, std::uint64_t seed,
                             const BenchOptions& opt) {
  data::GeneratorConfig g;
  if (!opt.full) g.num_species = 24;
  data::Dataset one =
      data::Dataset::generate(1, seed, g, bench::bench_graph_config(opt));
  std::vector<data::Crystal> crystals(static_cast<std::size_t>(n),
                                      one[0].crystal);
  return data::Dataset::from_crystals(std::move(crystals),
                                      bench::bench_graph_config(opt));
}

struct TrainPhase {
  double step_seconds = 0.0;
  double allocs_per_step = 0.0;
  double missed_steps = 0.0;     ///< measured-phase steps that ran eager
  double pool_high_water = 0.0;  ///< pooled bytes high-water (eager leg)
  double plan_bytes = 0.0;       ///< live replay slabs (replay leg)
  double raw_kernels = 0.0;      ///< counted kernels on the pre-fusion tape
  double fused_kernels = 0.0;    ///< counted kernels actually replayed
};

/// Warmed steady-state train epochs with replay on or off (pooling on for
/// both: replay is measured against the strongest eager baseline).
TrainPhase measure_train(bool replay_on, const BenchOptions& opt,
                         bool fuse_on = true) {
  replay::set_replay_enabled(replay_on);
  replay::fuse::set_fuse_enabled(fuse_on);
  alloc::set_pooling_enabled(true);
  data::Dataset ds = identical_rows(kRows, 404, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 7);
  train::TrainConfig tc;
  tc.batch_size = kBatch;
  tc.epochs = kWarmEpochs + kMeasureEpochs;
  tc.prefetch = false;  // keep the measured loop single-threaded
  train::Trainer trainer(net, tc);
  const std::vector<index_t> idx = all_rows(ds);

  for (int e = 0; e < kWarmEpochs; ++e) trainer.train_epoch(ds, idx, e);

  const std::uint64_t hits_before = trainer.replay_cache().stats().hits;
  bench::reset_counters();
  // Per-epoch timing, best epoch kept: scheduler noise only ever adds
  // time, so the min is the robust estimate of the steady-state step.
  double best_epoch = 0.0;
  for (int e = 0; e < kMeasureEpochs; ++e) {
    perf::Timer t;
    trainer.train_epoch(ds, idx, kWarmEpochs + e);
    const double s = t.seconds();
    if (e == 0 || s < best_epoch) best_epoch = s;
  }
  const perf::Counters c = perf::counters().snapshot();
  const double steps = static_cast<double>(kSteps * kMeasureEpochs);

  TrainPhase ph;
  ph.step_seconds = best_epoch / static_cast<double>(kSteps);
  ph.allocs_per_step = static_cast<double>(c.system_allocs) / steps;
  const std::uint64_t hits =
      trainer.replay_cache().stats().hits - hits_before;
  ph.missed_steps =
      replay_on ? steps - static_cast<double>(hits) : 0.0;
  ph.pool_high_water = static_cast<double>(c.pool_high_water);
  ph.plan_bytes = static_cast<double>(c.replay_plan_bytes);
  for (const auto& p : trainer.replay_cache().programs()) {
    ph.raw_kernels += static_cast<double>(p->raw_counted_kernels());
    ph.fused_kernels += static_cast<double>(p->counted_kernels());
  }
  return ph;
}

struct FusePhase {
  double raw_step_seconds = 0.0;    ///< best epoch, tape captured fuse-off
  double fused_step_seconds = 0.0;  ///< best epoch, tape captured fuse-on
  double raw_plan_bytes = 0.0;
  double fused_plan_bytes = 0.0;
};

/// Process CPU seconds: immune to preemption by other tenants on a shared
/// host, which dominates the wall-clock noise of a ~1% comparison.  The
/// worker pool sleeps on a condition variable between parallel_for calls,
/// so idle helpers do not inflate this.
double cpu_seconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// Fused vs raw-tape step time, interleaved epoch-by-epoch on two warmed
/// trainers.  Back-to-back legs drift apart (turbo decay, thermal
/// throttling make later legs measurably slower on the same work), so the
/// two tapes alternate within one loop and slow drift hits both equally;
/// CPU time + min-of-epochs squeezes out the remaining scheduler noise.
/// The fuse flag only matters at capture time -- each trainer keeps the
/// tape captured during its own warm-up -- but it is still pinned around
/// every epoch in case a mid-measure invalidation forces a recapture.
FusePhase measure_fuse_pair(const BenchOptions& opt) {
  replay::set_replay_enabled(true);
  alloc::set_pooling_enabled(true);
  data::Dataset ds = identical_rows(kRows, 404, opt);
  model::CHGNet net_raw(bench::bench_model_config(3, opt), 7);
  model::CHGNet net_fused(bench::bench_model_config(3, opt), 7);
  train::TrainConfig tc;
  tc.batch_size = kBatch;
  tc.epochs = kWarmEpochs + kMeasureEpochs;
  tc.prefetch = false;
  train::Trainer tr_raw(net_raw, tc);
  train::Trainer tr_fused(net_fused, tc);
  const std::vector<index_t> idx = all_rows(ds);

  replay::fuse::set_fuse_enabled(false);
  for (int e = 0; e < kWarmEpochs; ++e) tr_raw.train_epoch(ds, idx, e);
  replay::fuse::set_fuse_enabled(true);
  for (int e = 0; e < kWarmEpochs; ++e) tr_fused.train_epoch(ds, idx, e);

  double best_raw = 0.0;
  double best_fused = 0.0;
  const auto raw_epoch = [&](int e) {
    replay::fuse::set_fuse_enabled(false);
    const double t0 = cpu_seconds();
    tr_raw.train_epoch(ds, idx, kWarmEpochs + e);
    const double s = cpu_seconds() - t0;
    if (e == 0 || s < best_raw) best_raw = s;
  };
  const auto fused_epoch = [&](int e) {
    replay::fuse::set_fuse_enabled(true);
    const double t0 = cpu_seconds();
    tr_fused.train_epoch(ds, idx, kWarmEpochs + e);
    const double s = cpu_seconds() - t0;
    if (e == 0 || s < best_fused) best_fused = s;
  };
  for (int e = 0; e < kMeasureEpochs; ++e) {
    // ABBA: whichever leg runs second inherits a cache polluted by the
    // other's slab, so the disadvantage alternates instead of compounding.
    if (e % 2 == 0) {
      raw_epoch(e);
      fused_epoch(e);
    } else {
      fused_epoch(e);
      raw_epoch(e);
    }
  }

  FusePhase fp;
  fp.raw_step_seconds = best_raw / static_cast<double>(kSteps);
  fp.fused_step_seconds = best_fused / static_cast<double>(kSteps);
  for (const auto& p : tr_raw.replay_cache().programs()) {
    fp.raw_plan_bytes += static_cast<double>(p->plan_bytes());
  }
  for (const auto& p : tr_fused.replay_cache().programs()) {
    fp.fused_plan_bytes += static_cast<double>(p->plan_bytes());
  }
  return fp;
}

struct ServePhase {
  double forward_seconds = 0.0;
  double allocs_per_forward = 0.0;
};

/// Warmed engine ticks over an identical-topology request stream: with
/// replay on, every fused forward after the warm-up replays one program.
ServePhase measure_serve(bool replay_on, const BenchOptions& opt) {
  replay::set_replay_enabled(replay_on);
  alloc::set_pooling_enabled(true);
  data::Dataset ds = identical_rows(8, 505, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 7);
  serve::EngineConfig cfg;
  cfg.graph = bench::bench_graph_config(opt);
  cfg.max_batch = 8;
  cfg.batch_workers = 1;   // deterministic single-worker counts
  cfg.cache_capacity = 0;  // the result cache would short-circuit replay
  serve::InferenceEngine engine(net, cfg);

  const auto tick = [&] {
    for (index_t i = 0; i < ds.size(); ++i) {
      auto r = engine.submit(ds[i].crystal);
      FASTCHG_CHECK(r.ok(), "bench_replay: submit rejected");
    }
    for (const auto& reply : engine.drain()) {
      FASTCHG_CHECK(reply.ok(), "bench_replay: serve reply failed");
    }
  };

  for (int i = 0; i < 3; ++i) tick();  // warm: graphs, pool, sight + capture

  const std::uint64_t mb_before = engine.stats().micro_batches;
  bench::reset_counters();
  perf::Timer t;
  constexpr int kTicks = 8;
  for (int i = 0; i < kTicks; ++i) tick();
  const double secs = t.seconds();
  const perf::Counters c = perf::counters().snapshot();
  const std::uint64_t forwards = engine.stats().micro_batches - mb_before;

  ServePhase ph;
  ph.forward_seconds = secs / static_cast<double>(forwards > 0 ? forwards : 1);
  ph.allocs_per_forward = static_cast<double>(c.system_allocs) /
                          static_cast<double>(forwards > 0 ? forwards : 1);
  return ph;
}

std::vector<float> flatten_parameters(const model::CHGNet& net) {
  std::vector<float> flat;
  for (const ag::Var& p : net.parameters()) {
    const std::vector<float> v = p.value().to_vector();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

double max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  FASTCHG_CHECK(a.size() == b.size(), "bitexact: result size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, static_cast<double>(std::fabs(a[i] - b[i])));
  }
  return worst;
}

double bitexact_train(const BenchOptions& opt) {
  const auto run = [&](bool replay_on) {
    replay::set_replay_enabled(replay_on);
    replay::fuse::set_fuse_enabled(true);
    data::Dataset ds = identical_rows(16, 606, opt);
    model::CHGNet net(bench::bench_model_config(3, opt), 19);
    train::TrainConfig tc;
    tc.batch_size = 4;
    tc.epochs = 3;  // 12 steps: eager, capture, then replays
    train::Trainer trainer(net, tc);
    trainer.fit(ds, all_rows(ds));
    return flatten_parameters(net);
  };
  return max_abs_diff(run(true), run(false));
}

/// Fused vs unfused replay must train to bit-identical weights (the fused
/// closures evaluate the same float expressions in the same order).
double bitexact_fuse(const BenchOptions& opt) {
  const auto run = [&](bool fuse_on) {
    replay::set_replay_enabled(true);
    replay::fuse::set_fuse_enabled(fuse_on);
    data::Dataset ds = identical_rows(16, 707, opt);
    model::CHGNet net(bench::bench_model_config(3, opt), 23);
    train::TrainConfig tc;
    tc.batch_size = 4;
    tc.epochs = 3;
    train::Trainer trainer(net, tc);
    trainer.fit(ds, all_rows(ds));
    return flatten_parameters(net);
  };
  return max_abs_diff(run(true), run(false));
}

double bitexact_serve(const BenchOptions& opt) {
  data::Dataset ds = identical_rows(6, 808, opt);
  model::CHGNet net(bench::bench_model_config(3, opt), 29);
  const auto run = [&](bool replay_on) {
    replay::set_replay_enabled(replay_on);
    replay::fuse::set_fuse_enabled(true);
    serve::EngineConfig cfg;
    cfg.graph = bench::bench_graph_config(opt);
    cfg.max_batch = 6;
    cfg.cache_capacity = 0;
    serve::InferenceEngine engine(net, cfg);
    std::vector<float> flat;
    for (int tick = 0; tick < 4; ++tick) {
      for (index_t i = 0; i < ds.size(); ++i) {
        FASTCHG_CHECK(engine.submit(ds[i].crystal).ok(), "submit failed");
      }
      for (const auto& r : engine.drain()) {
        FASTCHG_CHECK(r.ok(), "serve failed");
        const serve::Prediction& p = r.value();
        flat.push_back(static_cast<float>(p.energy));
        for (const auto& f : p.forces) {
          for (int d = 0; d < 3; ++d) flat.push_back(static_cast<float>(f[d]));
        }
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            flat.push_back(static_cast<float>(p.stress[i][j]));
          }
        }
        for (double m : p.magmom) flat.push_back(static_cast<float>(m));
      }
    }
    return flat;
  };
  return max_abs_diff(run(true), run(false));
}

}  // namespace
}  // namespace fastchg

int main(int argc, char** argv) {
  using namespace fastchg;
  const BenchOptions opt = bench::parse_options(argc, argv);
  bench::BenchRecorder rec("replay", argc, argv);
  bench::print_header("REPLAY",
                      "recorded-step replay: dispatch overhead + static plan");

  const bool prev_pooling = alloc::pooling_enabled();
  const bool prev_replay = replay::replay_enabled();
  const bool prev_fuse = replay::fuse::fuse_enabled();

  // -- training step: eager vs replayed --------------------------------
  const TrainPhase eager = measure_train(false, opt);
  const TrainPhase replayed = measure_train(true, opt);
  const double time_ratio = eager.step_seconds > 0.0
                                ? replayed.step_seconds / eager.step_seconds
                                : 1.0;
  std::printf("train step (identical topology, warmed, %lld steps "
              "measured):\n",
              static_cast<long long>(kSteps * kMeasureEpochs));
  std::printf("  eager    : %10.3f ms/step   %8.1f allocs/step\n",
              1e3 * eager.step_seconds, eager.allocs_per_step);
  std::printf("  replay   : %10.3f ms/step   %8.1f allocs/step   "
              "(missed %g)\n",
              1e3 * replayed.step_seconds, replayed.allocs_per_step,
              replayed.missed_steps);
  std::printf("  ratio    : %10.3f   (acceptance: < 1.0 -- dispatch "
              "overhead removed)\n",
              time_ratio);

  // -- static plan vs pooled high-water --------------------------------
  const double plan_ratio =
      eager.pool_high_water > 0.0
          ? replayed.plan_bytes / eager.pool_high_water
          : 0.0;
  bench::print_rule();
  std::printf("static memory plan vs pooled eager step:\n");
  std::printf("  plan bytes      : %12.0f  (exact offsets, one slab)\n",
              replayed.plan_bytes);
  std::printf("  pool high-water : %12.0f  (first-fit recycling)\n",
              eager.pool_high_water);
  std::printf("  ratio           : %12.4f  (acceptance: <= 1.0)\n",
              plan_ratio);

  // -- offline fusion: fused vs raw tape -------------------------------
  const FusePhase fp = measure_fuse_pair(opt);
  const double kernel_ratio =
      replayed.raw_kernels > 0.0
          ? replayed.fused_kernels / replayed.raw_kernels
          : 1.0;
  const double fuse_time_ratio =
      fp.raw_step_seconds > 0.0
          ? fp.fused_step_seconds / fp.raw_step_seconds
          : 1.0;
  const double diff_fuse = bitexact_fuse(opt);
  bench::print_rule();
  std::printf("offline fusion (replayed step, fused vs raw tape):\n");
  std::printf("  kernels  : %10.0f raw  -> %8.0f fused   (ratio %.4f, "
              "acceptance: <= 0.75)\n",
              replayed.raw_kernels, replayed.fused_kernels, kernel_ratio);
  std::printf("  plan     : %10.0f raw  -> %8.0f fused bytes   "
              "(acceptance: fused <= raw)\n",
              fp.raw_plan_bytes, fp.fused_plan_bytes);
  std::printf("  step     : %10.3f raw  -> %8.3f fused ms/step   "
              "(ratio %.3f, acceptance: <= 1.02)\n",
              1e3 * fp.raw_step_seconds, 1e3 * fp.fused_step_seconds,
              fuse_time_ratio);
  std::printf("  bitexact : max|diff| = %g   (must be 0.0)\n", diff_fuse);

  // -- fused serve forward ---------------------------------------------
  const ServePhase serve_eager = measure_serve(false, opt);
  const ServePhase serve_replay = measure_serve(true, opt);
  const double serve_ratio =
      serve_eager.forward_seconds > 0.0
          ? serve_replay.forward_seconds / serve_eager.forward_seconds
          : 1.0;
  bench::print_rule();
  std::printf("fused serve forward (warmed engine):\n");
  std::printf("  eager    : %10.3f ms/forward   %8.1f allocs/forward\n",
              1e3 * serve_eager.forward_seconds,
              serve_eager.allocs_per_forward);
  std::printf("  replay   : %10.3f ms/forward   %8.1f allocs/forward\n",
              1e3 * serve_replay.forward_seconds,
              serve_replay.allocs_per_forward);
  std::printf("  ratio    : %10.3f\n", serve_ratio);

  // -- bit-exactness ----------------------------------------------------
  const double diff_train = bitexact_train(opt);
  const double diff_serve = bitexact_serve(opt);
  bench::print_rule();
  std::printf("bit-exactness replay-on vs replay-off (must be 0.0):\n");
  std::printf("  train max|diff| = %g   serve max|diff| = %g\n", diff_train,
              diff_serve);

  alloc::set_pooling_enabled(prev_pooling);
  replay::set_replay_enabled(prev_replay);
  replay::fuse::set_fuse_enabled(prev_fuse);

  const bool pass = time_ratio < 1.0 && plan_ratio <= 1.0 &&
                    replayed.missed_steps == 0.0 && diff_train == 0.0 &&
                    diff_serve == 0.0 && kernel_ratio <= 0.75 &&
                    fp.fused_plan_bytes <= fp.raw_plan_bytes &&
                    // Interleaved CPU-time min-of-epochs still jitters ~1%;
                    // fusion must not slow the step beyond that noise floor.
                    fuse_time_ratio <= 1.02 && diff_fuse == 0.0;
  std::printf("\nshape check: %s\n", pass ? "PASS" : "FAIL");

  // Deterministic rows gate tightly; wall-clock rows carry ".seconds".
  rec.metric("train.eager.step.seconds", eager.step_seconds);
  rec.metric("train.replay.step.seconds", replayed.step_seconds);
  rec.metric("train.replay_over_eager.time_ratio.seconds", time_ratio);
  rec.metric("train.eager.allocs_per_step", eager.allocs_per_step);
  rec.metric("train.replay.allocs_per_step", replayed.allocs_per_step);
  rec.metric("train.replay.missed_steps", replayed.missed_steps);
  rec.metric("plan.bytes", replayed.plan_bytes);
  rec.metric("plan_vs_pool.ratio", plan_ratio);
  rec.metric("serve.eager.forward.seconds", serve_eager.forward_seconds);
  rec.metric("serve.replay.forward.seconds", serve_replay.forward_seconds);
  rec.metric("serve.replay.allocs_per_forward",
             serve_replay.allocs_per_forward);
  rec.metric("bitexact.train.max_diff", diff_train);
  rec.metric("bitexact.serve.max_diff", diff_serve);
  rec.metric("fuse.kernels.raw", replayed.raw_kernels);
  rec.metric("fuse.kernels.fused", replayed.fused_kernels);
  rec.metric("fuse.kernel_reduction.ratio", kernel_ratio);
  rec.metric("fuse.plan.raw_bytes", fp.raw_plan_bytes);
  rec.metric("fuse.plan.fused_bytes", fp.fused_plan_bytes);
  rec.metric("fuse.step_over_raw.time_ratio.seconds", fuse_time_ratio);
  rec.metric("bitexact.fuse.max_diff", diff_fuse);
  rec.finish();
  return pass ? 0 : 1;
}
