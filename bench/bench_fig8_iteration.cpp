// Fig. 8 -- Average iteration time (a), launched-kernel count (b) and memory
// usage (c) under step-by-step system optimization, at batch sizes 16/32/64
// on a single device.
//
// Stages match the paper's walk:
//   0  reference CHGNet
//   1  + parallel computation of basis        (paper: 2.06-2.52x speedup)
//   2  + kernel fusion & redundancy bypass    (paper: 1.08-1.18x, mem /1.05-1.07)
//   3  + force/stress decoupling              (paper: 1.88-2x,   mem /3.38-3.50)
// Total: 4.43-5.62x time, 12.72-20.16x kernels, 3.59x memory.
#include "bench_common.hpp"

#include "autograd/ops.hpp"
#include "perf/counters.hpp"
#include "perf/timer.hpp"
#include "train/loss.hpp"

namespace fastchg::bench {
namespace {

struct Measurement {
  double seconds = 0.0;
  std::uint64_t kernels = 0;
  std::uint64_t peak_bytes = 0;
};

Measurement measure_iteration(model::CHGNet& net, const data::Batch& b,
                              int reps) {
  Measurement m;
  for (int r = 0; r < reps; ++r) {
    net.zero_grad();
    reset_counters();
    perf::Timer t;
    model::ModelOutput out = net.forward(b, model::ForwardMode::kTrain);
    train::LossResult loss = train::chgnet_loss(out, b);
    ag::backward(loss.total);
    m.seconds += t.seconds();
    m.kernels = perf::counters().kernel_launches;
    m.peak_bytes = std::max(m.peak_bytes, perf::counters().bytes_peak);
  }
  m.seconds /= reps;
  return m;
}

const char* kStageNames[4] = {
    "reference CHGNet", "+ parallel basis (Alg.2)",
    "+ fusion & redundancy bypass", "+ F/S decoupling"};

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig8_iteration", argc, argv);
  print_header("Fig. 8", "iteration time / kernel count / memory, "
                         "step-by-step optimization");
  const int reps = opt.full ? 3 : 2;
  const std::vector<index_t> batches = {16, 32, 64};
  data::Dataset ds = bench_dataset(64, 88, opt);

  // One model per stage (identical architecture dims; switches differ).
  std::vector<std::unique_ptr<model::CHGNet>> nets;
  for (int stage = 0; stage < 4; ++stage) {
    nets.push_back(
        std::make_unique<model::CHGNet>(bench_model_config(stage, opt), 17));
  }

  // results[stage][batch index]
  Measurement res[4][3];
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    std::vector<index_t> rows;
    for (index_t i = 0; i < batches[bi]; ++i) rows.push_back(i);
    data::Batch b = data::collate_indices(ds, rows);
    std::printf("\nbatch %lld: atoms %lld, bonds %lld, angles %lld\n",
                static_cast<long long>(batches[bi]),
                static_cast<long long>(b.num_atoms),
                static_cast<long long>(b.num_edges),
                static_cast<long long>(b.num_angles));
    for (int stage = 0; stage < 4; ++stage) {
      res[stage][bi] = measure_iteration(*nets[stage], b, reps);
      std::printf("  stage %d %-32s  %8.3f s  %8llu kernels  %7.1f MB\n",
                  stage, kStageNames[stage], res[stage][bi].seconds,
                  static_cast<unsigned long long>(res[stage][bi].kernels),
                  res[stage][bi].peak_bytes / 1048576.0);
      const std::string key = "stage" + std::to_string(stage) + ".batch" +
                              std::to_string(batches[bi]);
      rec.metric(key + ".seconds", res[stage][bi].seconds);
      rec.metric(key + ".kernels",
                 static_cast<double>(res[stage][bi].kernels));
      rec.metric(key + ".peak_bytes",
                 static_cast<double>(res[stage][bi].peak_bytes));
    }
  }

  print_rule();
  std::printf("(a) iteration-time speedups vs reference (paper totals: "
              "4.43-5.62x)\n");
  std::printf("%8s %14s %14s %14s %14s\n", "batch", "par.basis",
              "+fusion", "+decouple", "total");
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    std::printf("%8lld %13.2fx %13.2fx %13.2fx %13.2fx\n",
                static_cast<long long>(batches[bi]),
                res[0][bi].seconds / res[1][bi].seconds,
                res[1][bi].seconds / res[2][bi].seconds,
                res[2][bi].seconds / res[3][bi].seconds,
                res[0][bi].seconds / res[3][bi].seconds);
  }
  std::printf("    paper:        2.06-2.52x     1.08-1.18x     1.88-2.00x"
              "     4.43-5.62x\n");

  print_rule();
  std::printf("(b) kernel-launch reduction vs reference (paper: "
              "12.72-20.16x)\n");
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    std::printf("%8lld  %llu -> %llu kernels  (%.2fx reduction)\n",
                static_cast<long long>(batches[bi]),
                static_cast<unsigned long long>(res[0][bi].kernels),
                static_cast<unsigned long long>(res[3][bi].kernels),
                static_cast<double>(res[0][bi].kernels) /
                    static_cast<double>(res[3][bi].kernels));
  }

  print_rule();
  std::printf("(c) memory: fusion reduction (paper 1.05-1.07x), decoupling "
              "reduction (paper 3.38-3.50x), total (paper 3.59x)\n");
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    const double basis_bump = static_cast<double>(res[1][bi].peak_bytes) /
                              static_cast<double>(res[0][bi].peak_bytes);
    const double fusion = static_cast<double>(res[1][bi].peak_bytes) /
                          static_cast<double>(res[2][bi].peak_bytes);
    const double decouple = static_cast<double>(res[2][bi].peak_bytes) /
                            static_cast<double>(res[3][bi].peak_bytes);
    const double total = static_cast<double>(res[0][bi].peak_bytes) /
                         static_cast<double>(res[3][bi].peak_bytes);
    std::printf("%8lld  par.basis %.2fx (paper: slight increase)  fusion "
                "/%.2f  decouple /%.2f  total /%.2f\n",
                static_cast<long long>(batches[bi]), basis_bump, fusion,
                decouple, total);
  }

  print_rule();
  bool shape_ok = true;
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    shape_ok = shape_ok && res[0][bi].seconds > res[3][bi].seconds * 2.0;
    shape_ok = shape_ok && res[0][bi].kernels > res[3][bi].kernels * 4;
    shape_ok = shape_ok && res[2][bi].peak_bytes > res[3][bi].peak_bytes * 2;
  }
  std::printf("[shape %s] every stage helps; decoupling dominates time+"
              "memory; batching dominates kernel count\n",
              shape_ok ? "OK" : "MISMATCH");
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
