// Table II -- One-step molecular-dynamics time of CHGNet vs FastCHGNet on
// the LiMnO2 / LiTiPO5 / Li9Co7O16 benchmark structures.
//
// Paper: speedups 2.86x / 2.63x / 3.03x; the speedup is lower than in
// training because a single structure cannot saturate the device.
//
// This binary uses google-benchmark for the per-step timing loops, then
// prints the paper-style summary table.
#include <benchmark/benchmark.h>

#include <map>

#include "bench_common.hpp"
#include "md/md.hpp"

namespace fastchg::bench {
namespace {

struct Setup {
  std::unique_ptr<model::CHGNet> ref;
  std::unique_ptr<model::CHGNet> fast;
  std::map<std::string, data::Crystal> crystals;
  std::map<std::string, double> mean_step_s;  // "model/crystal" -> seconds
};

Setup& setup() {
  static Setup s = [] {
    Setup st;
    BenchOptions opt;  // bench dims; Table II uses the paper's 6/3 cutoffs
    model::ModelConfig ref_cfg = bench_model_config(0, opt);
    model::ModelConfig fast_cfg = bench_model_config(3, opt);
    ref_cfg.atom_cutoff = fast_cfg.atom_cutoff = 6.0;
    ref_cfg.bond_cutoff = fast_cfg.bond_cutoff = 3.0;
    st.ref = std::make_unique<model::CHGNet>(ref_cfg, 42);
    st.fast = std::make_unique<model::CHGNet>(fast_cfg, 42);
    for (const char* name : {"LiMnO2", "LiTiPO5", "Li9Co7O16"}) {
      st.crystals.emplace(name, data::make_reference_structure(name));
    }
    return st;
  }();
  return s;
}

void md_step_benchmark(benchmark::State& state, const std::string& model_name,
                       const std::string& crystal_name) {
  Setup& st = setup();
  const model::CHGNet& net = model_name == "CHGNet" ? *st.ref : *st.fast;
  md::MDConfig cfg;
  cfg.dt_fs = 0.5;
  cfg.graph.atom_cutoff = 6.0;
  cfg.graph.bond_cutoff = 3.0;
  if (model_name == "FastCHGNet+Verlet") cfg.verlet_skin = 1.0;
  md::MDSimulator sim(net, st.crystals.at(crystal_name), cfg);
  double total = 0.0;
  index_t steps = 0;
  for (auto _ : state) {
    total += sim.step(1);
    ++steps;
  }
  st.mean_step_s[model_name + "/" + crystal_name] =
      total / static_cast<double>(std::max<index_t>(steps, 1));
}

int run(int argc, char** argv) {
  BenchRecorder rec("table2_md", argc, argv);
  // google-benchmark rejects unknown command-line flags, so drop ours
  // before Initialize sees them.
  int bargc = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") != 0 &&
        std::strcmp(argv[i], "--full") != 0) {
      argv[bargc++] = argv[i];
    }
  }
  argc = bargc;
  setup();
  for (const char* crystal : {"LiMnO2", "LiTiPO5", "Li9Co7O16"}) {
    for (const char* model_name :
         {"CHGNet", "FastCHGNet", "FastCHGNet+Verlet"}) {
      benchmark::RegisterBenchmark(
          (std::string(model_name) + "/" + crystal).c_str(),
          [model_name, crystal](benchmark::State& s) {
            md_step_benchmark(s, model_name, crystal);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(3);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  print_header("Table II", "one-step MD time, CHGNet vs FastCHGNet");
  std::printf("%-12s %6s %7s %7s %11s %12s %9s | %s\n", "crystal", "atoms",
              "bonds", "angles", "CHGNet(s)", "FastCHG(s)", "speedup",
              "paper spd");
  const double paper[] = {2.86, 2.63, 3.03};
  int idx = 0;
  bool shape_ok = true;
  Setup& st = setup();
  for (const char* crystal : {"LiMnO2", "LiTiPO5", "Li9Co7O16"}) {
    data::GraphConfig gc;  // 6 / 3 A
    data::GraphData g = data::build_graph(st.crystals.at(crystal), gc);
    const double t_ref = st.mean_step_s.at(std::string("CHGNet/") + crystal);
    const double t_fast =
        st.mean_step_s.at(std::string("FastCHGNet/") + crystal);
    const double t_verlet =
        st.mean_step_s.at(std::string("FastCHGNet+Verlet/") + crystal);
    const double spd = t_ref / t_fast;
    shape_ok = shape_ok && spd > 1.5;
    std::printf("%-12s %6lld %7lld %7lld %11.4f %12.4f %8.2fx | %9.2fx"
                "   (+Verlet cache: %.4f s, %.2fx)\n",
                crystal, static_cast<long long>(g.num_atoms),
                static_cast<long long>(g.num_edges()),
                static_cast<long long>(g.num_angles()), t_ref, t_fast, spd,
                paper[idx], t_verlet, t_ref / t_verlet);
    rec.metric(std::string(crystal) + ".chgnet_step.seconds", t_ref);
    rec.metric(std::string(crystal) + ".fastchgnet_step.seconds", t_fast);
    ++idx;
  }
  print_rule();
  std::printf("[shape %s] FastCHGNet inference clearly faster on every "
              "structure (paper: 2.63-3.03x)\n",
              shape_ok ? "OK" : "MISMATCH");
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
