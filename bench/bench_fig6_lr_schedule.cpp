// Fig. 6 -- Large-batch convergence with the default learning rate vs the
// Eq.-14-scaled learning rate (init_LR = batch/k * base).
//
// Paper: batch 2048, 30 epochs; default LR converges to
// E 24 / F 90 / S 0.543 / M 48, the scaled LR to E 15 / F 72 / S 0.476 /
// M 35 -- i.e. the scaled LR wins on every property.
// Bench scale: batch 128 with k chosen to give the same ~8x LR ratio the
// paper's 2048-vs-default comparison has.
#include "bench_common.hpp"

#include "train/trainer.hpp"

namespace fastchg::bench {
namespace {

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig6_lr_schedule", argc, argv);
  print_header("Fig. 6", "large-batch convergence: default vs scaled LR");
  const index_t n = opt.full ? 2048 : 512;
  const index_t epochs = opt.full ? 30 : 10;
  const index_t batch = 128;
  data::Dataset ds = bench_dataset(n, 606, opt);
  auto split = ds.split(0.0, 0.1, 3);
  std::printf("dataset %lld, batch %lld, epochs %lld\n",
              static_cast<long long>(ds.size()),
              static_cast<long long>(batch), static_cast<long long>(epochs));

  struct Run {
    const char* name;
    bool scale;
    std::vector<train::EvalMetrics> per_epoch;
    train::EvalMetrics final{};
  };
  std::vector<Run> runs = {{"default LR (red)", false, {}, {}},
                           {"Eq.14-scaled LR (blue)", true, {}, {}}};

  for (Run& r : runs) {
    model::CHGNet net(bench_model_config(3, opt), 777);
    train::TrainConfig tc;
    tc.batch_size = batch;
    tc.epochs = epochs;
    tc.base_lr = 3e-4f;
    tc.scale_lr = r.scale;
    tc.lr_k = 16;  // batch/k = 8x, matching the paper's 2048/256 regime
    train::Trainer trainer(net, tc);
    std::printf("\n%s (init LR %.2e):\n", r.name, trainer.initial_lr());
    for (index_t e = 0; e < epochs; ++e) {
      trainer.train_epoch(ds, split.train, e);
      train::EvalMetrics m = trainer.evaluate(ds, split.test);
      r.per_epoch.push_back(m);
      std::printf("  epoch %2lld  E %6.1f meV/at  F %6.1f meV/A  "
                  "S %6.3f GPa  M %6.1f m.muB\n",
                  static_cast<long long>(e), m.energy_mae_mev_atom,
                  m.force_mae_mev_a, m.stress_mae_gpa, m.magmom_mae_mmub);
    }
    r.final = r.per_epoch.back();
  }

  print_rule();
  std::printf("%-26s %10s %10s %10s %10s\n", "run", "E(meV/at)", "F(meV/A)",
              "S(GPa)", "M(m.muB)");
  for (const Run& r : runs) {
    std::printf("%-26s %10.1f %10.1f %10.3f %10.1f\n", r.name,
                r.final.energy_mae_mev_atom, r.final.force_mae_mev_a,
                r.final.stress_mae_gpa, r.final.magmom_mae_mmub);
  }
  std::printf("%-26s %10s %10s %10s %10s\n", "paper default", "24", "90",
              "0.543", "48");
  std::printf("%-26s %10s %10s %10s %10s\n", "paper scaled", "15", "72",
              "0.476", "35");

  print_rule();
  int wins = 0;
  if (runs[1].final.energy_mae_mev_atom < runs[0].final.energy_mae_mev_atom)
    ++wins;
  if (runs[1].final.force_mae_mev_a < runs[0].final.force_mae_mev_a) ++wins;
  if (runs[1].final.stress_mae_gpa < runs[0].final.stress_mae_gpa) ++wins;
  if (runs[1].final.magmom_mae_mmub < runs[0].final.magmom_mae_mmub) ++wins;
  std::printf("[shape %s] scaled LR wins on %d/4 properties "
              "(paper: 4/4)\n", wins >= 3 ? "OK" : "MISMATCH", wins);
  rec.metric("scaled.energy_mae_mev_atom", runs[1].final.energy_mae_mev_atom);
  rec.metric("scaled.force_mae_mev_a", runs[1].final.force_mae_mev_a);
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
