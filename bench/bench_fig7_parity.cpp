// Fig. 7 -- Parity of model predictions vs the (synthetic-) DFT ground
// truth for energy and force, with R^2, for CHGNet and FastCHGNet.
//
// Paper: FastCHGNet has a higher R^2 than CHGNet for energy, slightly lower
// for force (the decoupled force head trades force fidelity for speed).
#include "bench_common.hpp"

#include "train/trainer.hpp"

namespace fastchg::bench {
namespace {

void print_parity(const char* title,
                  const std::vector<std::pair<float, float>>& pairs,
                  std::size_t n_show) {
  std::printf("\n%s parity sample (prediction vs DFT):\n", title);
  const std::size_t stride = std::max<std::size_t>(1, pairs.size() / n_show);
  std::printf("%14s %14s %10s\n", "DFT", "prediction", "error");
  for (std::size_t i = 0; i < pairs.size(); i += stride) {
    std::printf("%14.4f %14.4f %10.4f\n", pairs[i].second, pairs[i].first,
                pairs[i].first - pairs[i].second);
  }
}

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig7_parity", argc, argv);
  print_header("Fig. 7", "energy/force parity vs DFT (R^2)");
  const index_t n = opt.full ? 1024 : 352;
  const index_t epochs = opt.full ? 24 : 12;
  data::Dataset ds = bench_dataset(n, 707, opt);
  auto split = ds.split(0.0, 0.1, 5);

  struct Entry {
    const char* name;
    int stage;
    double e_r2, f_r2;
    train::RegressionStats e_pairs, f_pairs;
  };
  std::vector<Entry> entries;
  entries.push_back({"CHGNet (reference)", 0, 0, 0, {}, {}});
  entries.push_back({"FastCHGNet (F/S head)", 3, 0, 0, {}, {}});

  for (Entry& e : entries) {
    std::printf("\ntraining %s ...\n", e.name);
    model::CHGNet net(bench_model_config(e.stage, opt), 55);
    train::TrainConfig tc;
    tc.batch_size = 32;
    tc.epochs = epochs;
    tc.base_lr = 1e-3f;
    train::Trainer trainer(net, tc);
    trainer.fit(ds, split.train);
    e.e_pairs.keep_pairs(true);
    e.f_pairs.keep_pairs(true);
    train::EvalMetrics m = train::evaluate_model(net, ds, split.test, 32,
                                                 &e.e_pairs, &e.f_pairs);
    e.e_r2 = m.energy_r2;
    e.f_r2 = m.force_r2;
    print_parity("energy (eV/atom)", e.e_pairs.pairs(), 12);
  }

  print_rule();
  std::printf("%-24s %12s %12s\n", "model", "energy R^2", "force R^2");
  for (const Entry& e : entries) {
    std::printf("%-24s %12.4f %12.4f\n", e.name, e.e_r2, e.f_r2);
  }
  std::printf("(paper: FastCHGNet energy R^2 > CHGNet; force R^2 slightly "
              "lower)\n");

  print_rule();
  const bool both_fit = entries[0].e_r2 > 0.5 && entries[1].e_r2 > 0.5 &&
                        entries[0].f_r2 > 0.5 && entries[1].f_r2 > 0.5;
  std::printf("[shape %s] both models fit the oracle (all R^2 > 0.5); "
              "relative force-R^2 ordering: %s\n",
              both_fit ? "OK" : "MISMATCH",
              entries[1].f_r2 <= entries[0].f_r2
                  ? "FastCHGNet lower (as in paper)"
                  : "FastCHGNet higher");
  // Gate keys are lower-is-better, so store 1 - R^2 (misfit).
  rec.metric("fastchgnet.energy_misfit", 1.0 - entries[1].e_r2);
  rec.metric("fastchgnet.force_misfit", 1.0 - entries[1].f_r2);
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
