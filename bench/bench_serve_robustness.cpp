// Serving-layer robustness under fire (ISSUE acceptance bench): >= 1000
// fuzzed inference requests plus watchdog-supervised MD, all driven under a
// seeded parallel::FaultPlan.  The bar is zero crashes and zero silent NaN:
// every reply is either a finite prediction or a typed ServeError, and the
// recovery / degradation machinery reports how often each rung fired.
#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "md/md.hpp"
#include "parallel/fault.hpp"
#include "perf/counters.hpp"
#include "perf/timer.hpp"
#include "serve/engine.hpp"
#include "serve/fuzz.hpp"

namespace fastchg::bench {
namespace {

const char* code_name(serve::ErrorCode c) { return serve::to_string(c); }

int run(int argc, char** argv) {
  using namespace serve;
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("serve_robustness", argc, argv);
  print_header("Serving robustness",
               "fuzzed + fault-injected requests, typed errors only");

  const int requests = opt.full ? 4000 : 1000;
  model::ModelConfig mcfg = bench_model_config(3, opt);
  model::CHGNet net(mcfg, 17);

  EngineConfig cfg;
  cfg.graph = bench_graph_config(opt);
  cfg.quantize = true;
  cfg.base_latency_ms = 0.05;
  cfg.default_deadline_ms = 1e6;
  InferenceEngine eng(net, cfg);

  // Seeded fault schedule over the request stream: ~3% transient device
  // faults, ~2% stragglers.  Identical seed -> identical run.
  const parallel::FaultPlan plan = parallel::FaultPlan::random(
      /*seed=*/99, /*num_devices=*/1, /*iterations=*/requests,
      /*failure_prob=*/0.03, /*straggler_prob=*/0.02);
  eng.set_fault_plan(&plan);
  perf::reset_events();

  Rng rng(4242);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = opt.full ? 24 : 12;

  std::map<Corruption, int> sent;
  std::map<ErrorCode, int> errors;
  int ok = 0, degraded_ok = 0, retried_ok = 0;
  bool silent_nan = false, untyped = false;
  perf::Timer wall;
  for (int i = 0; i < requests; ++i) {
    data::Crystal c;
    const Corruption kind = fuzz_crystal(rng, c, 0.4, gen);
    ++sent[kind];
    try {
      auto r = eng.predict(c);
      if (r.ok()) {
        ++ok;
        const Prediction& p = r.value();
        if (p.degraded) ++degraded_ok;
        if (p.retries > 0) ++retried_ok;
        bool finite = std::isfinite(p.energy);
        for (const auto& f : p.forces) {
          for (int d = 0; d < 3; ++d) finite = finite && std::isfinite(f[d]);
        }
        if (!finite) silent_nan = true;
      } else {
        ++errors[r.code()];
      }
    } catch (...) {
      untyped = true;  // a throw escaping predict() is a failed bar
    }
  }
  const double wall_s = wall.seconds();

  std::printf("\n%d requests in %.2f s (%.2f ms/req, corruption rate 40%%)\n",
              requests, wall_s, 1e3 * wall_s / requests);
  std::printf("\nrequest mix:\n");
  for (const auto& [kind, n] : sent) {
    std::printf("  %-18s %6d\n", to_string(kind), n);
  }
  std::printf("\noutcomes:\n");
  std::printf("  %-18s %6d  (%d degraded, %d after retries)\n", "served", ok,
              degraded_ok, retried_ok);
  for (const auto& [code, n] : errors) {
    std::printf("  %-18s %6d\n", code_name(code), n);
  }

  const EngineStats& st = eng.stats();
  std::printf("\nengine stats: submitted %llu served %llu invalid %llu "
              "numeric %llu timeout %llu overloaded %llu retries %llu\n",
              static_cast<unsigned long long>(st.submitted),
              static_cast<unsigned long long>(st.served),
              static_cast<unsigned long long>(st.rejected_invalid),
              static_cast<unsigned long long>(st.numeric_faults),
              static_cast<unsigned long long>(st.timeouts),
              static_cast<unsigned long long>(st.overloaded),
              static_cast<unsigned long long>(st.retries));

  // -- Degradation ladder: corrupt the int8 replica in place (as a bad
  //    weight transfer would) and keep serving -- every reply must come
  //    back finite via the retained fp32 model, flagged degraded.
  print_rule();
  std::printf("quantized-replica corruption: serving must degrade to fp32\n");
  eng.set_fault_plan(nullptr);
  if (auto* replica = eng.quantized_replica()) {
    auto params = replica->named_parameters();
    for (auto& [name, p] : params) {
      p.node()->value.fill_(std::numeric_limits<float>::quiet_NaN());
    }
  }
  int degraded_served = 0, degraded_failed = 0;
  const int degraded_requests = 25;
  for (int i = 0; i < degraded_requests; ++i) {
    data::Crystal c = data::random_crystal(rng, gen);
    auto r = eng.predict(c);
    if (r.ok() && r.value().degraded && std::isfinite(r.value().energy)) {
      ++degraded_served;
    } else if (!r.ok() && r.code() != ErrorCode::kInvalidInput) {
      ++degraded_failed;
    }
  }
  std::printf("  %d/%d replies served degraded-but-finite (%d hard "
              "failures)\n", degraded_served, degraded_requests,
              degraded_failed);

  // -- MD watchdog under an aggressive timestep: the dt-halving ladder must
  //    keep the trajectory alive (or abort with a typed snapshot), never
  //    crash or emit NaN state.
  print_rule();
  std::printf("MD watchdog: 16-step NVE at dt = 8x nominal, drift-bounded\n");
  Rng md_rng(7);
  data::GeneratorConfig md_gen;
  md_gen.min_atoms = 4;
  md_gen.max_atoms = 8;
  int md_ok = 0, md_abort = 0;
  bool md_nan = false;
  const int md_runs = opt.full ? 16 : 8;
  for (int i = 0; i < md_runs; ++i) {
    md::MDConfig mc;
    mc.dt_fs = 8.0;
    mc.graph = cfg.graph;
    mc.init_temperature_k = 300.0;
    mc.max_drift_ev_per_atom = 0.05;
    mc.max_dt_halvings = 6;
    mc.seed = static_cast<std::uint64_t>(i);
    auto made = md::MDSimulator::create(
        net, data::random_crystal(md_rng, md_gen), mc);
    if (!made.ok()) continue;
    md::MDSimulator sim = std::move(made).value();
    auto r = sim.try_step(16);
    if (r.ok()) ++md_ok; else ++md_abort;
    if (!std::isfinite(sim.total_energy())) md_nan = true;
  }
  std::printf("  trajectories: %d completed, %d typed aborts, dt halvings "
              "%llu\n", md_ok, md_abort,
              static_cast<unsigned long long>(
                  perf::event_count("md.dt_halved")));

  // -- Micro-batched serving throughput (ISSUE acceptance): the batched
  //    pipeline at max_batch=8 must sustain >= 2x the single-request path's
  //    requests/sec on an identical stream, with per-request outputs
  //    equivalent within 1e-10.  The stream models repeat-heavy inference
  //    traffic (idempotent retries, clients re-querying the same structure):
  //    each unique crystal appears four times in a deterministic shuffle.
  //    Both paths see the exact same request order; the batched pipeline
  //    exploits the repeats via the structure cache while fusion amortizes
  //    the unique forwards, and every reply -- cached replays included --
  //    must match the single-request answer.
  print_rule();
  std::printf("micro-batched serving: batched pipeline vs single-request\n");
  const int batch_requests = opt.full ? 512 : 256;
  const int batch_uniques = batch_requests / 4;
  Rng brng(808);
  std::vector<data::Crystal> uniques;
  uniques.reserve(static_cast<std::size_t>(batch_uniques));
  for (int i = 0; i < batch_uniques; ++i) {
    uniques.push_back(data::random_crystal(brng, gen));
  }
  std::vector<data::Crystal> stream;
  stream.reserve(static_cast<std::size_t>(batch_requests));
  for (int i = 0; i < batch_requests; ++i) {
    stream.push_back(uniques[static_cast<std::size_t>(i) % uniques.size()]);
  }
  for (std::size_t i = stream.size(); i > 1; --i) {  // seeded Fisher-Yates
    const std::size_t j =
        static_cast<std::size_t>(brng.uniform(0.0, static_cast<double>(i)));
    std::swap(stream[i - 1], stream[j < i ? j : i - 1]);
  }

  EngineConfig base_cfg;
  base_cfg.graph = cfg.graph;
  base_cfg.queue_capacity = 8;
  EngineConfig single_cfg = base_cfg;
  single_cfg.max_batch = 1;  // serial per-request drain path, no cache
  EngineConfig fused_cfg = base_cfg;
  fused_cfg.max_batch = 8;
  fused_cfg.cache_capacity = static_cast<std::size_t>(batch_uniques);

  const auto pump = [&](InferenceEngine& e) {
    std::vector<Prediction> out;
    out.reserve(stream.size());
    for (std::size_t i = 0; i < stream.size();) {
      for (std::size_t j = 0; j < 8 && i < stream.size(); ++j, ++i) {
        (void)e.submit(stream[i]);
      }
      for (auto& r : e.drain()) out.push_back(std::move(r).value());
    }
    return out;
  };

  InferenceEngine single_eng(net, single_cfg);
  perf::Timer single_wall;
  const std::vector<Prediction> single_out = pump(single_eng);
  const double single_s = single_wall.seconds();

  InferenceEngine fused_eng(net, fused_cfg);
  perf::Timer fused_wall;
  const std::vector<Prediction> fused_out = pump(fused_eng);
  const double fused_s = fused_wall.seconds();

  double max_diff = 0.0;
  for (std::size_t i = 0; i < single_out.size(); ++i) {
    const Prediction& a = single_out[i];
    const Prediction& b = fused_out[i];
    max_diff = std::max(max_diff, std::fabs(a.energy - b.energy));
    for (std::size_t k = 0; k < a.forces.size(); ++k) {
      for (int d = 0; d < 3; ++d) {
        max_diff = std::max(max_diff, std::fabs(a.forces[k][d] - b.forces[k][d]));
      }
    }
    for (int r = 0; r < 3; ++r) {
      for (int c2 = 0; c2 < 3; ++c2) {
        max_diff = std::max(max_diff, std::fabs(a.stress[r][c2] - b.stress[r][c2]));
      }
    }
    for (std::size_t k = 0; k < a.magmom.size(); ++k) {
      max_diff = std::max(max_diff, std::fabs(a.magmom[k] - b.magmom[k]));
    }
  }
  const double speedup = single_s / fused_s;
  std::printf("  single-request  %6.1f req/s (%.2f ms/req)\n",
              batch_requests / single_s, 1e3 * single_s / batch_requests);
  std::printf("  batched (8+cache) %6.1f req/s (%.2f ms/req)  %.2fx  "
              "[%llu micro-batches, %llu result hits]\n",
              batch_requests / fused_s, 1e3 * fused_s / batch_requests,
              speedup,
              static_cast<unsigned long long>(
                  fused_eng.stats().micro_batches),
              static_cast<unsigned long long>(
                  fused_eng.cache().stats().result_hits));
  std::printf("  per-request max |batched - single| = %.3e (bar: 1e-10)\n",
              max_diff);
  const bool batch_pass = speedup >= 2.0 && max_diff <= 1e-10 &&
                          single_out.size() == fused_out.size();

  // -- Fuzzed stream through the batched queue: the bisection machinery
  //    must keep every reply typed while batches carry corrupted requests.
  print_rule();
  std::printf("fuzzed stream through the micro-batched queue (cache on)\n");
  EngineConfig fz_cfg = fused_cfg;
  fz_cfg.cache_capacity = 32;
  InferenceEngine fz_eng(net, fz_cfg);
  fz_eng.set_fault_plan(&plan);
  Rng fz_rng(909);
  const int fz_requests = opt.full ? 1000 : 400;
  int fz_replies = 0, fz_ok = 0;
  bool fz_untyped = false;
  for (int i = 0; i < fz_requests && !fz_untyped;) {
    try {
      for (int j = 0; j < 8 && i < fz_requests; ++j, ++i) {
        data::Crystal c;
        (void)fuzz_crystal(fz_rng, c, 0.4, gen);
        (void)fz_eng.submit(std::move(c));
      }
      for (const auto& r : fz_eng.drain()) {
        ++fz_replies;
        if (r.ok()) ++fz_ok;
      }
    } catch (...) {
      fz_untyped = true;
    }
  }
  std::printf("  %d fuzzed requests -> %d typed replies (%d served); "
              "bisections %llu, isolated faults %llu, cache hits %llu\n",
              fz_requests, fz_replies, fz_ok,
              static_cast<unsigned long long>(fz_eng.stats().bisections),
              static_cast<unsigned long long>(fz_eng.stats().isolated_faults),
              static_cast<unsigned long long>(fz_eng.cache().stats().hits));

  print_rule();
  std::printf("recovery / degradation event counters:\n");
  for (const char* ev : {"serve.retry", "serve.fp32_fallback",
                         "md.dt_halved", "md.watchdog_abort",
                         "md.verlet_fallback"}) {
    std::printf("  %-22s %llu\n", ev,
                static_cast<unsigned long long>(perf::event_count(ev)));
  }

  const bool pass = !untyped && !silent_nan && !md_nan &&
                    degraded_served > 0 && degraded_failed == 0 &&
                    batch_pass && !fz_untyped;
  std::printf("\n[shape %s] zero crashes, zero silent NaN across %d fuzzed "
              "requests + %d MD trajectories; fused batching %.2fx "
              "(bar: 2x) at max diff %.1e\n",
              pass ? "OK" : "MISMATCH", requests, md_runs, speedup, max_diff);
  rec.metric("per_request.seconds", wall_s / requests);
  rec.metric("hard_failures", static_cast<double>(degraded_failed));
  rec.metric("silent_nan", silent_nan ? 1.0 : 0.0);
  rec.metric("untyped_throws", untyped ? 1.0 : 0.0);
  rec.metric("batched.per_request.seconds", fused_s / batch_requests);
  // Lower is better for the gate: batched wall over single wall (<= 0.5
  // means the 2x acceptance bar holds) and the equivalence gap.
  rec.metric("batched_over_single.ratio", fused_s / single_s);
  rec.metric("batched.equiv.max_abs_diff", max_diff);
  rec.finish();
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
