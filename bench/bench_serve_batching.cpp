// Micro-batched serving perf fixture (perf-gate wired): a fixed seeded
// stream of valid crystals served three ways --
//
//   single : max_batch=1, one forward per request (the baseline the paper's
//            batching argument is made against)
//   fused  : max_batch=8, disjoint-union forwards (Alg. 2 batched basis +
//            packed GEMMs amortize per-forward dispatch)
//   cached : fused + structure cache, stream replayed so every repeat is a
//            full-result hit (no forward at all)
//
// Kernel-launch and cache-hit counts are deterministic (workers=1, fixed
// seeds) and gate at the tight tolerance; wall-clock metrics use the
// ".seconds" suffix for the loose tolerance.  tools/perf_gate compares the
// emitted BENCH_trace_serve_batching.json against
// bench/baselines/BENCH_trace_serve_batching.json in CI.
#include "bench_common.hpp"

#include <vector>

#include "data/generator.hpp"
#include "perf/timer.hpp"
#include "serve/engine.hpp"

namespace fastchg::bench {
namespace {

int run(int argc, char** argv) {
  using namespace serve;
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("serve_batching", argc, argv);
  print_header("Serving micro-batch perf",
               "fused forwards + structure cache vs single-request serving");

  const int requests = opt.full ? 256 : 96;
  model::CHGNet net(bench_model_config(3, opt), 17);

  Rng rng(4321);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = opt.full ? 24 : 12;
  std::vector<data::Crystal> stream;
  stream.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    stream.push_back(data::random_crystal(rng, gen));
  }

  EngineConfig base;
  base.graph = bench_graph_config(opt);
  base.queue_capacity = 8;

  struct Mode {
    const char* name;
    index_t max_batch;
    std::size_t cache_capacity;
    int rounds;  ///< stream repetitions (cached mode replays the stream)
  };
  const Mode modes[] = {
      {"single", 1, 0, 1},
      {"fused", 8, 0, 1},
      {"cached", 8, 256, 2},
  };

  std::printf("\n%-8s %10s %14s %12s %12s\n", "mode", "req/s", "kernels/req",
              "peak MiB", "result hits");
  double single_kernels_per_req = 0.0, fused_kernels_per_req = 0.0;
  for (const Mode& m : modes) {
    EngineConfig cfg = base;
    cfg.max_batch = m.max_batch;
    cfg.cache_capacity = m.cache_capacity;
    InferenceEngine eng(net, cfg);

    reset_counters();
    perf::Timer wall;
    std::size_t served = 0;
    for (int round = 0; round < m.rounds; ++round) {
      for (std::size_t i = 0; i < stream.size();) {
        for (std::size_t j = 0; j < 8 && i < stream.size(); ++j, ++i) {
          (void)eng.submit(stream[i]);
        }
        for (const auto& r : eng.drain()) served += r.ok() ? 1 : 0;
      }
    }
    const double secs = wall.seconds();
    const perf::Counters snap = perf::counters().snapshot();
    const std::size_t total = stream.size() * static_cast<std::size_t>(m.rounds);
    FASTCHG_CHECK(served == total, m.name << " served " << served << "/"
                                          << total);

    const double kernels_per_req =
        static_cast<double>(snap.kernel_launches) / static_cast<double>(total);
    if (std::string(m.name) == "single") single_kernels_per_req = kernels_per_req;
    if (std::string(m.name) == "fused") fused_kernels_per_req = kernels_per_req;
    std::printf("%-8s %10.1f %14.1f %12.2f %12llu\n", m.name,
                total / secs, kernels_per_req,
                static_cast<double>(snap.bytes_peak) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(eng.cache().stats().result_hits));

    const std::string p(m.name);
    rec.metric(p + ".per_request.seconds", secs / static_cast<double>(total));
    rec.metric(p + ".kernels_per_request", kernels_per_req);
    rec.metric(p + ".peak_bytes", static_cast<double>(snap.bytes_peak));
    if (m.cache_capacity > 0) {
      // Second pass over the stream must be pure result replay: misses only
      // on the first pass.  Lower is better: forwards the cache failed to
      // elide.
      rec.metric("cached.forwards",
                 static_cast<double>(eng.stats().micro_batches));
    }
  }

  // Deterministic amortization ratio (kernel launches, not wall time): the
  // paper's Fig. 8b argument applied to serving.  Lower is better; ~1/8 of
  // the single-request count when fusion amortizes perfectly.
  rec.metric("fused_over_single.kernel_ratio",
             fused_kernels_per_req / single_kernels_per_req);
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
