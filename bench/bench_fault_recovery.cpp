// Fault tolerance -- checkpoint overhead and elastic-recovery cost on the
// virtual cluster.  No paper figure maps 1:1 here; the reference points are
// the paper's scale claims (32 GPUs, 1.5 h wall): at that scale a failure
// per epoch is routine, so recovery must cost iterations, not the run.
//
// Part 1 measures full-state checkpoint save/resume latency and file size.
// Part 2 sweeps device failures (kill 0/1/2/4 of 8 mid-epoch) and reports
// the simulated epoch time, the recovery surcharge, and the rescaled LR.
#include "bench_common.hpp"

#include <cmath>
#include <filesystem>

#include "parallel/data_parallel.hpp"
#include "parallel/fault.hpp"
#include "perf/timer.hpp"
#include "train/trainer.hpp"

namespace fastchg::bench {
namespace {

int run(int argc, char** argv) {
  using namespace parallel;
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fault_recovery", argc, argv);
  print_header("Fault recovery",
               "checkpoint overhead + elastic recovery cost, 8 devices");

  const index_t n = opt.full ? 512 : 128;
  data::Dataset ds = bench_dataset(n, 515, opt);
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) rows[static_cast<std::size_t>(i)] = i;
  model::ModelConfig mcfg = bench_model_config(3, opt);

  // -- Part 1: checkpoint save / resume latency vs one epoch of training.
  model::CHGNet net(mcfg, 1);
  train::TrainConfig tc;
  tc.batch_size = 16;
  tc.epochs = 2;
  train::Trainer trainer(net, tc);
  const train::EpochStats ep = trainer.train_epoch(ds, rows, 0);

  const std::string path =
      (std::filesystem::temp_directory_path() / "fastchg_bench_ckpt.bin")
          .string();
  constexpr int kReps = 10;
  perf::Timer t_save;
  for (int r = 0; r < kReps; ++r) trainer.save_checkpoint(path);
  const double save_s = t_save.seconds() / kReps;
  const auto file_bytes = std::filesystem::file_size(path);

  model::CHGNet net2(mcfg, 2);
  train::Trainer restored(net2, tc);
  perf::Timer t_load;
  for (int r = 0; r < kReps; ++r) restored.resume(path);
  const double load_s = t_load.seconds() / kReps;
  std::filesystem::remove(path);

  std::printf("\nfull-state checkpoint (weights + Adam moments + RNG):\n");
  std::printf("  file size        : %.2f MiB (%lld params)\n",
              static_cast<double>(file_bytes) / (1024.0 * 1024.0),
              static_cast<long long>(net.num_parameters()));
  std::printf("  save latency     : %.2f ms (atomic tmp+rename)\n",
              1e3 * save_s);
  std::printf("  resume latency   : %.2f ms\n", 1e3 * load_s);
  std::printf("  one train epoch  : %.2f s -> save every epoch costs "
              "%.3f%% overhead\n",
              ep.seconds, 100.0 * save_s / std::max(1e-9, ep.seconds));
  rec.metric("checkpoint.save.seconds", save_s);
  rec.metric("checkpoint.resume.seconds", load_s);
  rec.metric("checkpoint.file_bytes", static_cast<double>(file_bytes));

  // -- Part 2: elastic recovery. Kill k of 8 devices mid-epoch and compare
  //    the simulated epoch cost against the failure-free run.
  print_rule();
  std::printf("elastic recovery, 8 virtual devices, global batch 32:\n");
  std::printf("%8s %10s %12s %12s %10s %12s\n", "killed", "alive",
              "sim epoch(s)", "recovery(s)", "LR", "divergence");
  double baseline_s = 0.0;
  bool shape_ok = true;
  for (int kills : {0, 1, 2, 4}) {
    DataParallelConfig pc;
    pc.num_devices = 8;
    pc.global_batch = 32;
    pc.scale_lr = true;
    DataParallelTrainer dp(mcfg, pc, 3);
    std::string spec;
    for (int k = 0; k < kills; ++k) {
      // Correlated failure (a host with 2*k+1 odd-numbered devices dies)
      // after the first iteration.
      if (!spec.empty()) spec += ",";
      spec += "fail:" + std::to_string(2 * k + 1) + "@1";
    }
    const FaultPlan plan =
        spec.empty() ? FaultPlan{} : parse_fault_plan(spec);
    const EpochResult r =
        dp.train_epoch(ds, rows, 0, plan.empty() ? nullptr : &plan);
    if (kills == 0) baseline_s = r.simulated_seconds;
    const float div = dp.replica_divergence();
    std::printf("%8d %10d %12.3f %12.2e %10.2e %12.3g\n", kills,
                dp.num_alive(), r.simulated_seconds, r.recovery_seconds,
                static_cast<double>(dp.effective_lr()),
                static_cast<double>(div));
    shape_ok = shape_ok && dp.num_alive() == 8 - kills && div == 0.0f &&
               std::isfinite(r.mean_loss) &&
               (kills == 0 || r.recovery_seconds > 0.0);
    const std::string key = "kills" + std::to_string(kills);
    rec.metric(key + ".sim_epoch.seconds", r.simulated_seconds);
    rec.metric(key + ".recovery.seconds", r.recovery_seconds);
  }

  print_rule();
  std::printf("baseline epoch %.3f s; failures add recovery cost but the "
              "epoch always completes on the survivors\n", baseline_s);
  std::printf("[shape %s] kills shrink the ring, replicas stay bit-identical,"
              " recovery is charged\n", shape_ok ? "OK" : "MISMATCH");
  rec.finish();
  return shape_ok ? 0 : 1;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
