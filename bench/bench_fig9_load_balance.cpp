// Fig. 9 -- Per-device workload (feature number) per iteration under the
// default sampler vs the load-balance sampler, 4 devices.
// Paper: coefficient of variance drops 0.186 -> 0.064.
#include "bench_common.hpp"

#include "parallel/sampler.hpp"

namespace fastchg::bench {
namespace {

int run(int argc, char** argv) {
  using namespace parallel;
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig9_load_balance", argc, argv);
  print_header("Fig. 9", "feature number of default vs load-balance sampler");

  data::Dataset ds = bench_dataset(opt.full ? 4096 : 1024, 414, opt);
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) rows[i] = i;
  const auto loads = sample_workloads(ds);

  SamplerConfig cfg;
  cfg.num_devices = 4;
  cfg.global_batch = 32;  // paper: default mini-batch 32 on 4 GPUs
  cfg.seed = 7;

  ShardPlan def = default_sharding(rows, loads, cfg);
  ShardPlan bal = load_balance_sharding(rows, loads, cfg);
  BalanceStats sdef = analyze_plan(def, loads);
  BalanceStats sbal = analyze_plan(bal, loads);

  std::printf("\nper-iteration device loads (first 16 iterations), "
              "feature number = atoms+bonds+angles:\n");
  std::printf("%6s | %28s | %28s\n", "iter", "default (min..max across dev)",
              "load-balance (min..max)");
  const index_t show =
      std::min<index_t>(16, static_cast<index_t>(sdef.per_device_load.size()));
  for (index_t i = 0; i < show; ++i) {
    auto mm = [](const std::vector<index_t>& v) {
      auto [lo, hi] = std::minmax_element(v.begin(), v.end());
      return std::pair<index_t, index_t>(*lo, *hi);
    };
    auto [dlo, dhi] = mm(sdef.per_device_load[i]);
    auto [blo, bhi] = mm(sbal.per_device_load[i]);
    std::printf("%6lld | %12lld .. %12lld | %12lld .. %12lld\n",
                static_cast<long long>(i), static_cast<long long>(dlo),
                static_cast<long long>(dhi), static_cast<long long>(blo),
                static_cast<long long>(bhi));
  }

  print_rule();
  std::printf("coefficient of variance (mean over iterations):\n");
  std::printf("  default sampler      : %.3f   (paper: 0.186)\n",
              sdef.mean_cov);
  std::printf("  load-balance sampler : %.3f   (paper: 0.064)\n",
              sbal.mean_cov);
  std::printf("  reduction            : %.1fx  (paper: 2.9x)\n",
              sdef.mean_cov / std::max(1e-12, sbal.mean_cov));
  std::printf("  spread (max-min)     : default %lld, balanced %lld\n",
              static_cast<long long>(sdef.max_load - sdef.min_load),
              static_cast<long long>(sbal.max_load - sbal.min_load));
  std::printf("[shape %s] load-balance sampler cuts CoV several-fold\n",
              sbal.mean_cov < 0.6 * sdef.mean_cov ? "OK" : "MISMATCH");
  rec.metric("default.mean_cov", sdef.mean_cov);
  rec.metric("balanced.mean_cov", sbal.mean_cov);
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
