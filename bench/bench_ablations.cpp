// Ablations (DESIGN.md Sec. 6) -- not a paper table, but the design choices
// the paper asserts without isolating:
//   A. dependency elimination (Eq. 10 vs Eq. 11): accuracy after identical
//      training + per-iteration time;
//   B. packed shared-input linears (Fig. 3a): GEMM count;
//   C. data prefetch: epoch wall time with/without the background loader;
//   D. int8 weight quantization (Sec. VII future work): accuracy cost;
//   E. envelope factoring (Eq. 13): transcendental-op count.
#include "bench_common.hpp"

#include "autograd/ops.hpp"
#include "basis/envelope.hpp"
#include "core/parallel_for.hpp"
#include "fastchgnet/quantize.hpp"
#include "perf/counters.hpp"
#include "perf/timer.hpp"
#include "train/trainer.hpp"

namespace fastchg::bench {
namespace {

int run(int argc, char** argv) {
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("ablations", argc, argv);
  print_header("Ablations", "design choices the paper asserts, isolated");

  data::Dataset ds = bench_dataset(opt.full ? 512 : 192, 321, opt);
  auto split = ds.split(0.0, 0.15, 4);

  // ---- A: dependency elimination --------------------------------------
  std::printf("\n[A] dependency elimination (Eq. 10 vs Eq. 11)\n");
  struct DepRow {
    const char* name;
    double e_mae, f_mae;
    double iter_s;
  };
  std::vector<DepRow> dep_rows;
  for (const bool eliminate : {false, true}) {
    model::ModelConfig cfg = bench_model_config(3, opt);
    cfg.dependency_elimination = eliminate;
    model::CHGNet net(cfg, 99);
    train::TrainConfig tc;
    tc.batch_size = 16;
    tc.epochs = opt.full ? 12 : 6;
    tc.base_lr = 1e-3f;
    train::Trainer trainer(net, tc);
    auto hist = trainer.fit(ds, split.train);
    double iter_s = 0.0;
    index_t iters = 0;
    for (const auto& h : hist) {
      iter_s += h.seconds;
      iters += h.iterations;
    }
    auto m = trainer.evaluate(ds, split.test);
    dep_rows.push_back({eliminate ? "Eq. 11 (stale, concurrent)"
                                  : "Eq. 10 (sequential)",
                        m.energy_mae_mev_atom, m.force_mae_mev_a,
                        iter_s / static_cast<double>(iters)});
  }
  std::printf("  %-28s %12s %12s %12s\n", "block", "E(meV/at)", "F(meV/A)",
              "s/iter");
  for (const auto& r : dep_rows) {
    std::printf("  %-28s %12.1f %12.1f %12.3f\n", r.name, r.e_mae, r.f_mae,
                r.iter_s);
  }
  rec.metric("dep_eq10.iter.seconds", dep_rows[0].iter_s);
  rec.metric("dep_eq11.iter.seconds", dep_rows[1].iter_s);
  const double acc_ratio = dep_rows[1].e_mae / dep_rows[0].e_mae;
  std::printf("  paper claim: 'does not affect accuracy' -- measured E-MAE "
              "ratio %.2f\n", acc_ratio);

  // ---- B: packed linears -----------------------------------------------
  std::printf("\n[B] shared-input GEMM packing (Fig. 3a)\n");
  data::Batch b = data::collate_indices(ds, split.train[0] < ds.size()
                                                ? std::vector<index_t>(
                                                      split.train.begin(),
                                                      split.train.begin() + 8)
                                                : std::vector<index_t>{0});
  for (const bool packed : {false, true}) {
    model::ModelConfig cfg = bench_model_config(3, opt);
    cfg.packed_linears = packed;
    model::CHGNet net(cfg, 5);
    reset_counters();
    perf::set_per_op(true);
    (void)net.forward(b, model::ForwardMode::kEval);
    const auto matmuls = perf::counters().per_op["matmul"];
    std::printf("  %-10s matmul launches per forward: %llu\n",
                packed ? "packed" : "unpacked",
                static_cast<unsigned long long>(matmuls));
    rec.metric(packed ? "packed.matmul_launches" : "unpacked.matmul_launches",
               static_cast<double>(matmuls));
    perf::set_per_op(false);
    reset_counters();
  }

  // ---- C: prefetch ------------------------------------------------------
  std::printf("\n[C] data prefetch (background collation)\n");
  for (const bool prefetch : {false, true}) {
    model::ModelConfig cfg = bench_model_config(3, opt);
    model::CHGNet net(cfg, 6);
    train::TrainConfig tc;
    tc.batch_size = 16;
    tc.epochs = 1;
    tc.prefetch = prefetch;
    train::Trainer trainer(net, tc);
    perf::Timer t;
    trainer.fit(ds, split.train);
    std::printf("  prefetch %-3s epoch wall time: %.2fs\n",
                prefetch ? "on" : "off", t.seconds());
  }
  std::printf("  (gains require spare cores; this host has %d worker(s))\n",
              num_threads());

  // ---- D: int8 quantization ---------------------------------------------
  std::printf("\n[D] int8 weight quantization (Sec. VII future work)\n");
  {
    model::ModelConfig cfg = bench_model_config(3, opt);
    model::CHGNet net(cfg, 7);
    train::TrainConfig tc;
    tc.batch_size = 16;
    tc.epochs = opt.full ? 12 : 6;
    tc.base_lr = 1e-3f;
    train::Trainer trainer(net, tc);
    trainer.fit(ds, split.train);
    auto fp32 = trainer.evaluate(ds, split.test);
    auto rep = model::quantize_for_inference(net);
    auto int8 = trainer.evaluate(ds, split.test);
    std::printf("  %-6s E %.1f meV/at, F %.1f meV/A\n", "fp32",
                fp32.energy_mae_mev_atom, fp32.force_mae_mev_a);
    std::printf("  %-6s E %.1f meV/at, F %.1f meV/A  (%.2fx smaller "
                "payload)\n",
                "int8", int8.energy_mae_mev_atom, int8.force_mae_mev_a,
                rep.fp32_bytes / rep.int8_bytes);
  }

  // ---- E: envelope factoring ---------------------------------------------
  std::printf("\n[E] envelope redundancy bypass (Eq. 12 -> Eq. 13)\n");
  {
    ag::Var xi(Tensor::full({4096, 1}, 0.5f), false);
    reset_counters();
    perf::set_per_op(true);
    (void)basis::envelope_naive(xi, 8);
    const auto naive_pows = perf::counters().per_op["pow_scalar"];
    const auto naive_total = perf::counters().kernel_launches;
    reset_counters();
    (void)basis::envelope_factored(xi, 8);
    const auto fact_pows = perf::counters().per_op["pow_scalar"];
    const auto fact_total = perf::counters().kernel_launches;
    perf::set_per_op(false);
    reset_counters();
    rec.metric("envelope.naive.kernels", static_cast<double>(naive_total));
    rec.metric("envelope.factored.kernels", static_cast<double>(fact_total));
    std::printf("  naive:    %llu kernels, %llu pow evaluations\n",
                static_cast<unsigned long long>(naive_total),
                static_cast<unsigned long long>(naive_pows));
    std::printf("  factored: %llu kernels, %llu pow evaluations "
                "(bit-equal output; see tests)\n",
                static_cast<unsigned long long>(fact_total),
                static_cast<unsigned long long>(fact_pows));
  }

  print_rule();
  std::printf("[shape %s] Eq. 11 keeps accuracy within 1.5x of Eq. 10 and "
              "packing reduces GEMM launches\n",
              (acc_ratio < 1.5 && acc_ratio > 0.6) ? "OK" : "MISMATCH");
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
