// SIMD op library microbenchmarks (src/ops/, docs/ops.md): per-kernel
// GFLOP/s for the scalar reference tier vs the AVX2+FMA tier, on the op
// shapes the training step and the fused serve forward actually run
// (feature width 32-64, basis 15, few-thousand-edge graphs).
//
// Emitted metrics (BENCH_trace_ops.json, gated by tools/perf_gate):
//
//   * ops.<kernel>.{scalar,avx2}.seconds -- best-of-reps wall time for a
//     fixed workload (loose ".seconds" tolerance);
//   * ops.<kernel>.avx2_over_scalar.time_ratio.seconds -- AVX2 / scalar
//     time (lower is better; < 0.5 means the >= 2x acceptance bar holds);
//   * ops.avx2_unavailable -- 0 when the host+build run the AVX2 kernels,
//     1 otherwise (deterministic: catches a build regression that silently
//     drops the -mavx2 translation units or the cpuid probe).
//
// The stdout table prints GFLOP/s per kernel family next to the speedup so
// the >= 2x on >= 3 vectorized families acceptance is immediate.
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "basis/envelope.hpp"
#include "bench_common.hpp"
#include "ops/basis.hpp"
#include "ops/dispatch.hpp"
#include "ops/eltwise.hpp"
#include "ops/gather_scatter.hpp"
#include "ops/gemm.hpp"
#include "ops/reduce.hpp"
#include "ops/rownorm.hpp"
#include "perf/timer.hpp"

namespace fastchg {
namespace {

constexpr int kReps = 12;

std::vector<float> random_vec(std::mt19937& rng, index_t n, float lo,
                              float hi) {
  std::uniform_real_distribution<float> d(lo, hi);
  std::vector<float> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = d(rng);
  return v;
}

/// Best-of-kReps wall time of fn() (scheduler noise only ever adds time).
template <typename F>
double best_seconds(F&& fn) {
  double best = 1e30;
  for (int r = 0; r < kReps; ++r) {
    perf::Timer t;
    fn();
    const double s = t.seconds();
    if (s < best) best = s;
  }
  return best;
}

struct FamilyRow {
  const char* name;
  double flops;    ///< per invocation
  double scalar_s;
  double avx2_s;
};

void print_row(const FamilyRow& r) {
  const double gs = r.flops / r.scalar_s * 1e-9;
  const double gv = r.flops / r.avx2_s * 1e-9;
  std::printf("  %-14s %9.2f GF/s -> %9.2f GF/s   speedup %5.2fx\n", r.name,
              gs, gv, r.scalar_s / r.avx2_s);
}

}  // namespace

int bench_ops_main(int argc, char** argv) {
  bench::BenchRecorder rec("ops", argc, argv);
  bench::print_header("OPS", "SIMD op library: scalar vs AVX2 GFLOP/s");
  std::printf("host AVX2+FMA: %s (active tier: %s)\n",
              ops::avx2_supported() ? "yes" : "no",
              ops::tier_name(ops::active_tier()));
  rec.metric("ops.avx2_unavailable", ops::avx2_supported() ? 0.0 : 1.0);

  std::mt19937 rng(20260808u);
  std::vector<FamilyRow> rows;

  {  // eltwise: L1-resident chunks (the fused-span interpreter's working
     // set is a 256-float register file), many invocations
    const index_t n = 1 << 11;
    const int inner = 512;
    auto a = random_vec(rng, n, -2.0f, 2.0f);
    auto b = random_vec(rng, n, 0.5f, 2.0f);
    std::vector<float> o(a.size());
    const double flops = static_cast<double>(n) * inner;
    const double ss = best_seconds([&] {
      for (int i = 0; i < inner; ++i) {
        ops::eltwise::scalar::mul(n, a.data(), b.data(), o.data());
      }
    });
    const double sv = best_seconds([&] {
      for (int i = 0; i < inner; ++i) {
        ops::eltwise::avx2::mul(n, a.data(), b.data(), o.data());
      }
    });
    rows.push_back({"eltwise.mul", flops, ss, sv});
    const double as = best_seconds([&] {
      for (int i = 0; i < inner; ++i) {
        ops::eltwise::scalar::axpy(n, 0.37f, a.data(), o.data());
      }
    });
    const double av = best_seconds([&] {
      for (int i = 0; i < inner; ++i) {
        ops::eltwise::avx2::axpy(n, 0.37f, a.data(), o.data());
      }
    });
    rows.push_back({"eltwise.axpy", 2.0 * flops, as, av});
  }

  {  // gemm: GatedMLP-shaped [batch*atoms, C] x [C, 2C]
    const index_t m = 256, k = 64, n = 128;
    auto a = random_vec(rng, m * k, -1.0f, 1.0f);
    auto b = random_vec(rng, k * n, -1.0f, 1.0f);
    std::vector<float> o(static_cast<std::size_t>(m * n));
    const double flops = 2.0 * static_cast<double>(m) * k * n;
    const double ss = best_seconds(
        [&] { ops::gemm::scalar::matmul(m, k, n, a.data(), b.data(), o.data()); });
    const double sv = best_seconds(
        [&] { ops::gemm::avx2::matmul(m, k, n, a.data(), b.data(), o.data()); });
    rows.push_back({"gemm", flops, ss, sv});
  }

  {  // basis.srbf: bench-scale edge set, basis 15
    const index_t e = 4096, nb = 15;
    auto r = random_vec(rng, e, 0.5f, 4.9f);
    std::vector<float> freq(static_cast<std::size_t>(nb));
    for (index_t i = 0; i < nb; ++i) {
      freq[static_cast<std::size_t>(i)] =
          static_cast<float>(M_PI) * static_cast<float>(i + 1);
    }
    std::vector<float> o(static_cast<std::size_t>(e * nb));
    const float rc = 5.0f;
    const float c = std::sqrt(2.0f / rc);
    // ~4 flops per sin-element (mul + poly eval amortized): use element
    // count as the "flop" unit so the ratio is the honest comparison.
    const double flops = static_cast<double>(e) * nb;
    const double ss = best_seconds([&] {
      ops::basis::scalar::srbf(e, nb, rc, c, 6, &basis::envelope_value,
                               r.data(), freq.data(), o.data());
    });
    const double sv = best_seconds([&] {
      ops::basis::avx2::srbf(e, nb, rc, c, 6, &basis::envelope_value,
                             r.data(), freq.data(), o.data());
    });
    rows.push_back({"basis.srbf", flops, ss, sv});
  }

  {  // basis.fourier: bench-scale angle set, order 7 (nb = 15)
    const index_t g = 8192, order = 7;
    auto t = random_vec(rng, g, 0.0f, static_cast<float>(M_PI));
    std::vector<float> o(static_cast<std::size_t>(g * (2 * order + 1)));
    const float c0 = 1.0f / std::sqrt(2.0f * static_cast<float>(M_PI));
    const float cinv = 1.0f / std::sqrt(static_cast<float>(M_PI));
    const double flops = static_cast<double>(g) * (2 * order + 1);
    const double ss = best_seconds([&] {
      ops::basis::scalar::fourier(g, order, c0, cinv, t.data(), o.data());
    });
    const double sv = best_seconds([&] {
      ops::basis::avx2::fourier(g, order, c0, cinv, t.data(), o.data());
    });
    rows.push_back({"basis.fourier", flops, ss, sv});
  }

  {  // rownorm.layernorm: feature-width rows
    const index_t r = 2048, c = 64;
    auto x = random_vec(rng, r * c, -2.0f, 2.0f);
    auto g = random_vec(rng, c, 0.5f, 1.5f);
    auto b = random_vec(rng, c, -0.5f, 0.5f);
    std::vector<float> o(static_cast<std::size_t>(r * c));
    const double flops = 7.0 * static_cast<double>(r) * c;
    const double ss = best_seconds([&] {
      ops::rownorm::scalar::layernorm(r, c, 1e-5f, x.data(), g.data(),
                                      b.data(), o.data());
    });
    const double sv = best_seconds([&] {
      ops::rownorm::avx2::layernorm(r, c, 1e-5f, x.data(), g.data(), b.data(),
                                    o.data());
    });
    rows.push_back({"rownorm.ln", flops, ss, sv});
  }

  {  // gather/scatter: message aggregation shape (many edges, width 32)
    const index_t k = 8192, nodes = 1024, w = 32;
    auto s = random_vec(rng, k * w, -1.0f, 1.0f);
    std::uniform_int_distribution<index_t> pick(0, nodes - 1);
    std::vector<index_t> idx(static_cast<std::size_t>(k));
    for (auto& i : idx) i = pick(rng);
    std::vector<float> o(static_cast<std::size_t>(nodes * w));
    const double flops = static_cast<double>(k) * w;
    const double ss = best_seconds([&] {
      ops::gather_scatter::scalar::scatter_add_rows(k, nodes, w, idx.data(),
                                                    s.data(), o.data());
    });
    const double sv = best_seconds([&] {
      ops::gather_scatter::avx2::scatter_add_rows(k, nodes, w, idx.data(),
                                                  s.data(), o.data());
    });
    rows.push_back({"scatter_add", flops, ss, sv});
  }

  {  // reduce.sum_dim0: gradient column sums
    const index_t r = 4096, c = 64;
    auto x = random_vec(rng, r * c, -1.0f, 1.0f);
    std::vector<float> o(static_cast<std::size_t>(c));
    const double flops = static_cast<double>(r) * c;
    const double ss = best_seconds(
        [&] { ops::reduce::scalar::sum_dim0(r, c, x.data(), o.data()); });
    const double sv = best_seconds(
        [&] { ops::reduce::avx2::sum_dim0(r, c, x.data(), o.data()); });
    rows.push_back({"reduce.dim0", flops, ss, sv});
  }

  bench::print_rule();
  std::printf("  %-14s %-24s\n", "kernel", "scalar -> avx2");
  int families_2x = 0;
  for (const FamilyRow& r : rows) {
    print_row(r);
    const double ratio = r.avx2_s / r.scalar_s;
    if (ratio < 0.5) ++families_2x;
    const std::string base = std::string("ops.") + r.name;
    rec.metric(base + ".scalar.seconds", r.scalar_s);
    rec.metric(base + ".avx2.seconds", r.avx2_s);
    rec.metric(base + ".avx2_over_scalar.time_ratio.seconds", ratio);
  }
  bench::print_rule();
  std::printf("  families at >= 2x: %d of %zu (acceptance: >= 3)\n",
              families_2x, rows.size());

  rec.finish();
  return 0;
}

}  // namespace fastchg

int main(int argc, char** argv) { return fastchg::bench_ops_main(argc, argv); }
