// Fig. 10 -- Strong and weak scaling of FastCHGNet on the virtual cluster.
//
// Paper (strong, global batch 2048, baseline 4 GPUs):
//   8 GPUs: 1.65x speedup (82.5% eff), 16: 3.18x (79.5%), 32: 5.26x (66%).
// Paper (weak, 512 samples/GPU): efficiencies 91.5% / 84.6% / 74.6%.
//
// Method (DESIGN.md Sec. 2): calibrate a per-sample cost model from real
// measured iterations of the actual FastCHGNet on this machine, rescale the
// throughput to A100-equivalent (so one 4-GPU iteration over 2048 samples
// costs ~1.25 s, the figure implied by the paper's epoch times), then
// simulate the exact shard assignments + ring all-reduce + straggler model.
//
// Beyond the paper: the sweep continues to 64-256 virtual devices under
// both the flat and the two-level hierarchical all-reduce, tracking the
// load-balance sampler's CoV and the per-phase comm breakdown, and reports
// where the comm model says scaling dies (efficiency < 50%).
#include "bench_common.hpp"

#include <cmath>

#include "parallel/scaling.hpp"

namespace fastchg::bench {
namespace {

void print_points(const char* title,
                  const std::vector<parallel::ScalingPoint>& pts,
                  const double paper_speedup[], const double paper_eff[]) {
  print_rule();
  std::printf("%s\n", title);
  std::printf("%8s %14s %10s %12s | %12s %12s\n", "GPUs", "epoch(s)",
              "speedup", "efficiency", "paper spd", "paper eff");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::printf("%8d %14.1f %9.2fx %11.1f%% | %11.2fx %11.1f%%\n",
                pts[i].devices, pts[i].epoch_seconds, pts[i].speedup,
                100.0 * pts[i].efficiency, paper_speedup[i],
                100.0 * paper_eff[i]);
  }
}

void print_extended(const char* title,
                    const std::vector<parallel::ScalingPoint>& hier,
                    const std::vector<parallel::ScalingPoint>& flat) {
  print_rule();
  std::printf("%s\n", title);
  std::printf("%8s %12s %10s %8s %8s | %10s %10s %10s | %10s\n", "GPUs",
              "epoch(s)", "eff", "comm%", "CoV", "rs(us)", "ring(us)",
              "bcast(us)", "flat/hier");
  for (std::size_t i = 0; i < hier.size(); ++i) {
    const auto& h = hier[i];
    const double ratio =
        flat[i].epoch_seconds / std::max(h.epoch_seconds, 1e-30);
    std::printf("%8d %12.1f %9.1f%% %7.1f%% %8.3f | %10.1f %10.1f %10.1f "
                "| %9.3fx\n",
                h.devices, h.epoch_seconds, 100.0 * h.efficiency,
                100.0 * h.comm_fraction, h.load_cov,
                1e6 * h.reduce_scatter_s, 1e6 * h.leader_ring_s,
                1e6 * h.broadcast_s, ratio);
  }
}

/// Deterministic sampler-balance CoV: coefficient of variation of the
/// integer workload proxy across the devices of each iteration, averaged
/// over the plan.  Pure integer arithmetic on the seeded shard plan, so it
/// gates at the tight tolerance (unlike the calibrated-seconds CoV).
double plan_load_cov(const parallel::ShardPlan& plan,
                     const std::vector<index_t>& loads) {
  double cov_sum = 0.0;
  for (const auto& shards : plan.iterations) {
    double sum = 0.0, sumsq = 0.0;
    for (const auto& shard : shards) {
      double l = 0.0;
      for (index_t r : shard) l += static_cast<double>(loads[static_cast<std::size_t>(r)]);
      sum += l;
      sumsq += l * l;
    }
    const double np = static_cast<double>(shards.size());
    const double mean = sum / np;
    if (mean > 0.0) {
      cov_sum += std::sqrt(std::max(0.0, sumsq / np - mean * mean)) / mean;
    }
  }
  return cov_sum / static_cast<double>(plan.iterations.size());
}

int run(int argc, char** argv) {
  using namespace parallel;
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig10_scaling", argc, argv);
  print_header("Fig. 10", "strong & weak scaling on the virtual cluster");

  // 1. Calibrate the cost model on real iterations of FastCHGNet.
  data::Dataset calib = bench_dataset(64, 1001, opt);
  model::CHGNet net(bench_model_config(3, opt), 3);
  std::printf("calibrating per-sample cost model on real iterations...\n");
  CostModel cm = calibrate_cost_model(net, calib, {4, 8, 16, 32}, 2, 9);
  std::printf("  t = %.3e + %.3e*atoms + %.3e*bonds + %.3e*angles  [s]\n",
              cm.fixed, cm.per_atom, cm.per_bond, cm.per_angle);

  // 2. Large synthetic workload set (one epoch's worth of global batches).
  //    Weak scaling at 32 devices needs >= 32 * per_device_batch samples;
  //    quick mode scales the per-device batch down to keep generation fast.
  const index_t pool = opt.full ? 16384 : 4096;
  data::Dataset ds = bench_dataset(pool, 1002, opt);

  // 3. Rescale substrate throughput to A100-equivalent: the paper's epoch
  //    times imply ~1.25 s per 2048-sample iteration on 4 A100s.
  ScalingConfig cfg;
  cfg.strong_global_batch = 2048;
  cfg.weak_per_device_batch = opt.full ? 512 : 128;
  {
    ScalingConfig probe = cfg;
    probe.compute_scale = 1.0;
    probe.straggler_sigma = 0.0;
    probe.device_counts = {4};
    auto p4 = strong_scaling(cm, ds, tensor_bytes(net.num_parameters()),
                             probe);
    cfg.compute_scale = 1.25 / p4[0].iter_seconds;
    std::printf("throughput rescale: substrate iter %.2f s -> A100-equiv "
                "1.25 s (scale %.3e)\n",
                p4[0].iter_seconds, cfg.compute_scale);
  }

  const std::uint64_t model_bytes = tensor_bytes(net.num_parameters());
  auto strong = strong_scaling(cm, ds, model_bytes, cfg);
  const double paper_strong_spd[] = {1.0, 1.65, 3.18, 5.26};
  const double paper_strong_eff[] = {1.0, 0.825, 0.795, 0.66};
  print_points("(a) strong scaling, global batch 2048", strong,
               paper_strong_spd, paper_strong_eff);

  auto weak = weak_scaling(cm, ds, model_bytes, cfg);
  const double paper_weak_spd[] = {1.0, 0.915, 0.846, 0.746};
  const double paper_weak_eff[] = {1.0, 0.915, 0.846, 0.746};
  print_points("(b) weak scaling, 512 samples/GPU", weak, paper_weak_spd,
               paper_weak_eff);

  // 4. Beyond the paper: 64-256 virtual devices, hierarchical vs flat.
  ScalingConfig xcfg = cfg;
  xcfg.device_counts = {4, 8, 16, 32, 64, 128, 256};
  auto xstrong = strong_scaling(cm, ds, model_bytes, xcfg);
  ScalingConfig xflat = xcfg;
  xflat.comm.hierarchical = false;
  auto xstrong_flat = strong_scaling(cm, ds, model_bytes, xflat);
  print_extended("(c) extended strong scaling, two-level all-reduce "
                 "(flat/hier = epoch-time ratio under the flat ring)",
                 xstrong, xstrong_flat);

  // Weak scaling past 32 devices needs per-device batch small enough that
  // 256 * batch fits the sample pool.
  ScalingConfig wcfg = xcfg;
  wcfg.weak_per_device_batch = opt.full ? 64 : 16;
  wcfg.device_counts = {32, 64, 128, 256};
  auto xweak = weak_scaling(cm, ds, model_bytes, wcfg);
  ScalingConfig wflat = wcfg;
  wflat.comm.hierarchical = false;
  auto xweak_flat = weak_scaling(cm, ds, model_bytes, wflat);
  print_extended("(d) extended weak scaling (efficiency relative to 32 "
                 "devices)",
                 xweak, xweak_flat);

  // Where does the comm model say scaling dies?  First extended-strong
  // point under 50% efficiency: per-device compute shrinks ~1/P while the
  // exposed per-bucket latency term keeps growing with the leader-ring
  // hops, so past this point adding devices buys almost nothing.
  int death = 0;
  for (const auto& p : xstrong) {
    if (p.efficiency < 0.5) {
      death = p.devices;
      break;
    }
  }
  print_rule();
  if (death > 0) {
    std::printf("scaling death (strong eff < 50%%): %d devices\n", death);
  } else {
    std::printf("scaling death (strong eff < 50%%): not reached by %d "
                "devices\n",
                xcfg.device_counts.back());
  }

  for (const auto& p : strong) {
    rec.metric("strong.gpus" + std::to_string(p.devices) + ".epoch.seconds",
               p.epoch_seconds);
  }
  for (const auto& p : weak) {
    rec.metric("weak.gpus" + std::to_string(p.devices) + ".epoch.seconds",
               p.epoch_seconds);
  }
  for (const auto& p : xstrong) {
    if (p.devices < 64) continue;
    rec.metric("strongx.gpus" + std::to_string(p.devices) +
                   ".epoch.seconds",
               p.epoch_seconds);
  }
  for (const auto& p : xweak) {
    rec.metric("weakx.gpus" + std::to_string(p.devices) + ".epoch.seconds",
               p.epoch_seconds);
  }
  // The comm-model terms are pure functions of (model bytes, ring size,
  // CommConfig) -- deterministic, gated at the tight tolerance.
  for (std::size_t i = 0; i < xstrong.size(); ++i) {
    const auto& h = xstrong[i];
    if (h.devices < 32) continue;
    const std::string tag = "gpus" + std::to_string(h.devices);
    rec.metric("comm.hier." + tag + ".us",
               1e6 * (h.comm_bandwidth_s + h.comm_latency_s));
    rec.metric("comm.flat." + tag + ".us",
               1e6 * (xstrong_flat[i].comm_bandwidth_s +
                      xstrong_flat[i].comm_latency_s));
  }
  const auto& top = xstrong.back();
  rec.metric("comm.hier.gpus256.reduce_scatter.us",
             1e6 * top.reduce_scatter_s);
  rec.metric("comm.hier.gpus256.leader_ring.us", 1e6 * top.leader_ring_s);
  rec.metric("comm.hier.gpus256.broadcast.us", 1e6 * top.broadcast_s);

  // Deterministic sampler-balance CoV from the integer workload proxy.
  {
    const std::vector<index_t> rows_all = [&] {
      std::vector<index_t> r(static_cast<std::size_t>(ds.size()));
      for (index_t i = 0; i < ds.size(); ++i) r[static_cast<std::size_t>(i)] = i;
      return r;
    }();
    const std::vector<index_t> loads = sample_workloads(ds);
    for (int p : {64, 256}) {
      SamplerConfig scfg;
      scfg.num_devices = p;
      scfg.global_batch = 2048;
      scfg.seed = xcfg.seed;
      ShardPlan plan = load_balance_sharding(rows_all, loads, scfg);
      rec.metric("cov.loadbalance.gpus" + std::to_string(p),
                 plan_load_cov(plan, loads));
    }
  }

  print_rule();
  bool shape_ok = true;
  for (std::size_t i = 1; i < strong.size(); ++i) {
    shape_ok = shape_ok && strong[i].speedup > strong[i - 1].speedup;
    shape_ok = shape_ok &&
               strong[i].speedup <
                   static_cast<double>(strong[i].devices) / 4.0;  // sublinear
  }
  shape_ok = shape_ok && strong.back().efficiency < strong[1].efficiency;
  shape_ok = shape_ok && weak.back().efficiency < 1.0;
  // Extended-sweep invariants: the two-level schedule must beat the flat
  // ring once the ring spans nodes, and by a growing margin.
  for (std::size_t i = 0; i < xstrong.size(); ++i) {
    if (xstrong[i].devices <= 4) continue;
    shape_ok =
        shape_ok && xstrong_flat[i].epoch_seconds > xstrong[i].epoch_seconds;
  }
  std::printf("[shape %s] monotone sub-linear strong speedup with decaying "
              "efficiency; weak efficiency below 100%%; hierarchical beats "
              "flat past one node\n",
              shape_ok ? "OK" : "MISMATCH");
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
