// Fig. 10 -- Strong and weak scaling of FastCHGNet on the virtual cluster.
//
// Paper (strong, global batch 2048, baseline 4 GPUs):
//   8 GPUs: 1.65x speedup (82.5% eff), 16: 3.18x (79.5%), 32: 5.26x (66%).
// Paper (weak, 512 samples/GPU): efficiencies 91.5% / 84.6% / 74.6%.
//
// Method (DESIGN.md Sec. 2): calibrate a per-sample cost model from real
// measured iterations of the actual FastCHGNet on this machine, rescale the
// throughput to A100-equivalent (so one 4-GPU iteration over 2048 samples
// costs ~1.25 s, the figure implied by the paper's epoch times), then
// simulate the exact shard assignments + ring all-reduce + straggler model.
#include "bench_common.hpp"

#include "parallel/scaling.hpp"

namespace fastchg::bench {
namespace {

void print_points(const char* title, const std::vector<parallel::ScalingPoint>& pts,
                  const double paper_speedup[], const double paper_eff[]) {
  print_rule();
  std::printf("%s\n", title);
  std::printf("%8s %14s %10s %12s | %12s %12s\n", "GPUs", "epoch(s)",
              "speedup", "efficiency", "paper spd", "paper eff");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::printf("%8d %14.1f %9.2fx %11.1f%% | %11.2fx %11.1f%%\n",
                pts[i].devices, pts[i].epoch_seconds, pts[i].speedup,
                100.0 * pts[i].efficiency, paper_speedup[i],
                100.0 * paper_eff[i]);
  }
}

int run(int argc, char** argv) {
  using namespace parallel;
  BenchOptions opt = parse_options(argc, argv);
  BenchRecorder rec("fig10_scaling", argc, argv);
  print_header("Fig. 10", "strong & weak scaling on the virtual cluster");

  // 1. Calibrate the cost model on real iterations of FastCHGNet.
  data::Dataset calib = bench_dataset(64, 1001, opt);
  model::CHGNet net(bench_model_config(3, opt), 3);
  std::printf("calibrating per-sample cost model on real iterations...\n");
  CostModel cm = calibrate_cost_model(net, calib, {4, 8, 16, 32}, 2, 9);
  std::printf("  t = %.3e + %.3e*atoms + %.3e*bonds + %.3e*angles  [s]\n",
              cm.fixed, cm.per_atom, cm.per_bond, cm.per_angle);

  // 2. Large synthetic workload set (one epoch's worth of global batches).
  //    Weak scaling at 32 devices needs >= 32 * per_device_batch samples;
  //    quick mode scales the per-device batch down to keep generation fast.
  const index_t pool = opt.full ? 16384 : 4096;
  data::Dataset ds = bench_dataset(pool, 1002, opt);

  // 3. Rescale substrate throughput to A100-equivalent: the paper's epoch
  //    times imply ~1.25 s per 2048-sample iteration on 4 A100s.
  ScalingConfig cfg;
  cfg.strong_global_batch = 2048;
  cfg.weak_per_device_batch = opt.full ? 512 : 128;
  {
    ScalingConfig probe = cfg;
    probe.compute_scale = 1.0;
    probe.straggler_sigma = 0.0;
    probe.device_counts = {4};
    auto p4 = strong_scaling(cm, ds, tensor_bytes(net.num_parameters()),
                             probe);
    cfg.compute_scale = 1.25 / p4[0].iter_seconds;
    std::printf("throughput rescale: substrate iter %.2f s -> A100-equiv "
                "1.25 s (scale %.3e)\n",
                p4[0].iter_seconds, cfg.compute_scale);
  }

  const std::uint64_t model_bytes = tensor_bytes(net.num_parameters());
  auto strong = strong_scaling(cm, ds, model_bytes, cfg);
  const double paper_strong_spd[] = {1.0, 1.65, 3.18, 5.26};
  const double paper_strong_eff[] = {1.0, 0.825, 0.795, 0.66};
  print_points("(a) strong scaling, global batch 2048", strong,
               paper_strong_spd, paper_strong_eff);

  auto weak = weak_scaling(cm, ds, model_bytes, cfg);
  const double paper_weak_spd[] = {1.0, 0.915, 0.846, 0.746};
  const double paper_weak_eff[] = {1.0, 0.915, 0.846, 0.746};
  print_points("(b) weak scaling, 512 samples/GPU", weak, paper_weak_spd,
               paper_weak_eff);

  for (const auto& p : strong) {
    rec.metric("strong.gpus" + std::to_string(p.devices) + ".epoch.seconds",
               p.epoch_seconds);
  }
  for (const auto& p : weak) {
    rec.metric("weak.gpus" + std::to_string(p.devices) + ".epoch.seconds",
               p.epoch_seconds);
  }

  print_rule();
  bool shape_ok = true;
  for (std::size_t i = 1; i < strong.size(); ++i) {
    shape_ok = shape_ok && strong[i].speedup > strong[i - 1].speedup;
    shape_ok = shape_ok &&
               strong[i].speedup <
                   static_cast<double>(strong[i].devices) / 4.0;  // sublinear
  }
  shape_ok = shape_ok && strong.back().efficiency < strong[1].efficiency;
  shape_ok = shape_ok && weak.back().efficiency < 1.0;
  std::printf("[shape %s] monotone sub-linear strong speedup with decaying "
              "efficiency; weak efficiency below 100%% and above strong\n",
              shape_ok ? "OK" : "MISMATCH");
  rec.finish();
  return 0;
}

}  // namespace
}  // namespace fastchg::bench

int main(int argc, char** argv) { return fastchg::bench::run(argc, argv); }
