// perf_gate -- CI regression gate over bench reports (docs/observability.md).
//
//   perf_gate <baseline.json> <fresh.json> [--tolerance T] [--time-tolerance T]
//
// Compares a fresh BENCH_trace_*.json against the checked-in baseline in
// bench/baselines/.  Every metric is lower-is-better; a fresh value above
// baseline * (1 + tolerance) is a regression.  Metrics whose key ends in
// ".seconds" are wall-clock and gated with the (much looser) time tolerance
// so the gate survives CI machines of different speeds; everything else
// (kernel counts, peak bytes, CoV) is deterministic and gated tightly.
//
// Exit codes: 0 pass, 1 regression (or a metric missing from the fresh
// report), 2 malformed or missing input file.
#include <cstdio>
#include <cstring>
#include <string>

#include "core/error.hpp"
#include "perf/report.hpp"

namespace {

double parse_double_flag(int argc, char** argv, const char* flag,
                         double fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::stod(argv[i + 1]);
  }
  return fallback;
}

int usage() {
  std::fprintf(stderr,
               "usage: perf_gate <baseline.json> <fresh.json> "
               "[--tolerance T] [--time-tolerance T]\n"
               "  compares bench reports (lower is better); exits 1 on "
               "regression, 2 on bad input\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fastchg;
  if (argc < 3 || argv[1][0] == '-' || argv[2][0] == '-') return usage();
  const double tolerance = parse_double_flag(argc, argv, "--tolerance", 0.25);
  const double time_tolerance =
      parse_double_flag(argc, argv, "--time-tolerance", 2.0);

  perf::BenchReport baseline, fresh;
  try {
    baseline = perf::load_bench_report(argv[1]);
    fresh = perf::load_bench_report(argv[2]);
  } catch (const Error& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_gate: %s\n", e.what());
    return 2;
  }
  if (baseline.bench != fresh.bench) {
    std::fprintf(stderr,
                 "perf_gate: bench mismatch: baseline is '%s', fresh is "
                 "'%s'\n", baseline.bench.c_str(), fresh.bench.c_str());
    return 2;
  }

  const perf::GateResult g =
      perf::gate_compare(baseline, fresh, tolerance, time_tolerance);
  std::printf("perf_gate: bench '%s', %zu metric(s), tolerance %.0f%% "
              "(time %.0f%%)\n", baseline.bench.c_str(), g.findings.size(),
              100.0 * tolerance, 100.0 * time_tolerance);
  std::printf("%s", perf::gate_table(g).c_str());
  if (!g.pass) {
    std::fprintf(stderr, "perf_gate: FAIL -- regression against %s\n",
                 argv[1]);
    return 1;
  }
  std::printf("perf_gate: PASS\n");
  return 0;
}
