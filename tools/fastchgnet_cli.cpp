// fastchgnet -- command-line interface to the library.
//
//   fastchgnet generate --n 512 --seed 7 --out stats        dataset statistics
//   fastchgnet train    --n 256 --epochs 8 --fast           train + evaluate
//   fastchgnet dp       --devices 8 --fault-plan fail:3@2   data-parallel train
//   fastchgnet md       --crystal LiMnO2 --steps 50         run MD
//   fastchgnet relax    --seed 5                            relax a structure
//   fastchgnet charges  --seed 5                            infer charges
//   fastchgnet serve    --requests 200 --quantize           robust inference
//   fastchgnet serve    --shards 4 --fault-plan fail:1@3    sharded failover
//   fastchgnet trace dp --devices 4 --fault-plan slow:1@2*3#2   span tracing
//   fastchgnet info                                         build/config info
//
// Every subcommand prints human-readable output; flags have sensible
// defaults so `fastchgnet train` alone gives a working demo.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "chgnet/charge.hpp"
#include "chgnet/model.hpp"
#include "core/parallel_for.hpp"
#include "data/generator.hpp"
#include "md/md.hpp"
#include "md/observables.hpp"
#include "md/relax.hpp"
#include "nn/serialize.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/fault.hpp"
#include "perf/counters.hpp"
#include "perf/report.hpp"
#include "perf/trace.hpp"
#include "serve/engine.hpp"
#include "serve/fuzz.hpp"
#include "serve/router.hpp"
#include "train/trainer.hpp"

namespace fastchg::cli {
namespace {

/// Minimal --key value parser; flags without a value store "1".
std::map<std::string, std::string> parse_flags(int argc, char** argv,
                                               int first) {
  std::map<std::string, std::string> flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    arg = arg.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      flags[arg] = argv[++i];
    } else {
      flags[arg] = "1";
    }
  }
  return flags;
}

index_t flag_i(const std::map<std::string, std::string>& f,
               const std::string& key, index_t fallback) {
  auto it = f.find(key);
  return it == f.end() ? fallback
                       : static_cast<index_t>(std::stoll(it->second));
}

bool flag_b(const std::map<std::string, std::string>& f,
            const std::string& key) {
  return f.count(key) > 0;
}

model::ModelConfig cli_model_config(
    const std::map<std::string, std::string>& flags) {
  model::ModelConfig cfg = flag_b(flags, "reference")
                               ? model::ModelConfig::reference()
                               : model::ModelConfig::fast();
  cfg.feat_dim = flag_i(flags, "width", 24);
  cfg.num_radial = flag_i(flags, "radial", 11);
  cfg.num_angular = cfg.num_radial;
  cfg.num_layers = flag_i(flags, "layers", 3);
  return cfg;
}

int cmd_info() {
  std::printf("FastCHGNet C++ reproduction\n");
  std::printf("  worker threads : %d (FASTCHG_NUM_THREADS overrides)\n",
              num_threads());
  model::CHGNet fast(model::ModelConfig::fast(), 0);
  model::CHGNet ref(model::ModelConfig::reference(), 0);
  std::printf("  FastCHGNet params (paper dims): %lld\n",
              static_cast<long long>(fast.num_parameters()));
  std::printf("  CHGNet params (paper dims)    : %lld\n",
              static_cast<long long>(ref.num_parameters()));
  std::printf("  see DESIGN.md / EXPERIMENTS.md for the paper mapping\n");
  return 0;
}

int cmd_generate(const std::map<std::string, std::string>& flags) {
  const index_t n = flag_i(flags, "n", 512);
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 7));
  std::printf("generating %lld oracle-labelled structures (seed %llu)...\n",
              static_cast<long long>(n),
              static_cast<unsigned long long>(seed));
  data::Dataset ds = data::Dataset::generate(n, seed);
  auto st = ds.distribution(12);
  std::printf("mean atoms %.1f  bonds %.1f  angles %.1f\n", st.mean_atoms,
              st.mean_bonds, st.mean_angles);
  std::printf("max  atoms %lld  bonds %lld  angles %lld (long tail)\n",
              static_cast<long long>(st.max_atoms),
              static_cast<long long>(st.max_bonds),
              static_cast<long long>(st.max_angles));
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  const index_t n = flag_i(flags, "n", 192);
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 7));
  data::GeneratorConfig gen;
  gen.num_species = 24;
  data::Dataset ds = data::Dataset::generate(n, seed, gen);
  auto split = ds.split(0.0, 0.1, 1);

  model::CHGNet net(cli_model_config(flags), seed);
  std::printf("model %s, %lld parameters\n", net.config().tag().c_str(),
              static_cast<long long>(net.num_parameters()));
  train::TrainConfig tc;
  tc.batch_size = flag_i(flags, "batch", 16);
  tc.epochs = flag_i(flags, "epochs", 6);
  tc.base_lr = 1e-3f;
  train::Trainer trainer(net, tc);
  if (auto it = flags.find("resume"); it != flags.end()) {
    trainer.resume(it->second);
    std::printf("resumed from %s at epoch %lld (global step %lld)\n",
                it->second.c_str(),
                static_cast<long long>(trainer.next_epoch()),
                static_cast<long long>(trainer.global_step()));
  }
  const index_t ckpt_every = flag_i(flags, "checkpoint-every", 0);
  std::string ckpt_path;
  if (auto it = flags.find("checkpoint"); it != flags.end()) {
    ckpt_path = it->second;
  }
  trainer.on_epoch = [&](index_t e, const train::EpochStats& st) {
    std::printf("epoch %2lld  loss %.4f  (%.1fs)\n",
                static_cast<long long>(e), st.mean_loss, st.seconds);
    if (!ckpt_path.empty() && ckpt_every > 0 && (e + 1) % ckpt_every == 0) {
      trainer.save_checkpoint(ckpt_path);
      std::printf("  checkpoint -> %s\n", ckpt_path.c_str());
    }
  };
  trainer.fit(ds, split.train);
  if (!ckpt_path.empty()) {
    trainer.save_checkpoint(ckpt_path);
    std::printf("checkpoint -> %s\n", ckpt_path.c_str());
  }
  train::EvalMetrics m = trainer.evaluate(ds, split.test);
  std::printf("test MAE: E %.1f meV/atom  F %.1f meV/A  S %.3f GPa  "
              "M %.1f m.muB\n",
              m.energy_mae_mev_atom, m.force_mae_mev_a, m.stress_mae_gpa,
              m.magmom_mae_mmub);
  if (auto it = flags.find("save"); it != flags.end()) {
    nn::save_parameters(net, it->second);
    std::printf("checkpoint saved to %s\n", it->second.c_str());
  }
  return 0;
}

int cmd_dp(const std::map<std::string, std::string>& flags) {
  const index_t n = flag_i(flags, "n", 128);
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 7));
  const index_t epochs = flag_i(flags, "epochs", 4);
  data::GeneratorConfig gen;
  gen.num_species = 24;
  data::Dataset ds = data::Dataset::generate(n, seed, gen);
  std::vector<index_t> rows(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) rows[static_cast<std::size_t>(i)] = i;

  parallel::DataParallelConfig pc;
  pc.num_devices = static_cast<int>(flag_i(flags, "devices", 4));
  pc.global_batch = flag_i(flags, "batch", 8 * pc.num_devices);
  pc.seed = seed;
  if (auto it = flags.find("comm"); it != flags.end()) {
    if (it->second == "flat") {
      pc.comm.hierarchical = false;
    } else if (it->second == "hier") {
      pc.comm.hierarchical = true;
    } else {
      std::fprintf(stderr, "--comm must be 'flat' or 'hier', got '%s'\n",
                   it->second.c_str());
      return 2;
    }
  }
  parallel::DataParallelTrainer dp(cli_model_config(flags), pc, seed);
  std::printf("data-parallel training on %d virtual devices, "
              "global batch %lld, LR %.2e, %s all-reduce\n",
              dp.num_devices(), static_cast<long long>(pc.global_batch),
              dp.effective_lr(),
              pc.comm.hierarchical ? "hierarchical" : "flat");

  parallel::FaultPlan plan;
  if (auto it = flags.find("fault-plan"); it != flags.end()) {
    plan = parallel::parse_fault_plan(it->second);
    std::printf("fault plan: %zu event(s) injected into the first epoch\n",
                plan.events.size());
  }
  index_t start = 0;
  if (auto it = flags.find("resume"); it != flags.end()) {
    start = dp.resume(it->second);
    std::printf("resumed from %s at epoch %lld (%d/%d devices alive)\n",
                it->second.c_str(), static_cast<long long>(start),
                dp.num_alive(), dp.num_devices());
  }
  const index_t ckpt_every = flag_i(flags, "checkpoint-every", 0);
  std::string ckpt_path;
  if (auto it = flags.find("checkpoint"); it != flags.end()) {
    ckpt_path = it->second;
  }
  for (index_t e = start; e < epochs; ++e) {
    const parallel::FaultPlan* faults =
        (e == start && !plan.empty()) ? &plan : nullptr;
    parallel::EpochResult r = dp.train_epoch(ds, rows, e, faults);
    std::printf("epoch %2lld  loss %.4f  sim %.2fs  wall %.1fs  alive %d",
                static_cast<long long>(e), r.mean_loss, r.simulated_seconds,
                r.measured_seconds, dp.num_alive());
    if (!r.failed_devices.empty()) {
      std::printf("  failed:");
      for (int d : r.failed_devices) std::printf(" %d", d);
      std::printf("  recovery %.2fs  new LR %.2e", r.recovery_seconds,
                  dp.effective_lr());
    }
    if (!r.joined_devices.empty()) {
      std::printf("  joined:");
      for (int d : r.joined_devices) std::printf(" %d", d);
      std::printf("  join %.2fs  new LR %.2e", r.join_seconds,
                  dp.effective_lr());
    }
    if (r.skipped_steps > 0) {
      std::printf("  skipped %lld", static_cast<long long>(r.skipped_steps));
    }
    std::printf("\n");
    if (!ckpt_path.empty() && ckpt_every > 0 && (e + 1) % ckpt_every == 0) {
      dp.save_checkpoint(ckpt_path, e + 1);
      std::printf("  checkpoint -> %s\n", ckpt_path.c_str());
    }
  }
  const float divergence = dp.replica_divergence();
  std::printf("replica divergence: %.3g (0 = DDP invariant holds)\n",
              static_cast<double>(divergence));
  if (!ckpt_path.empty()) {
    dp.save_checkpoint(ckpt_path, epochs);
    std::printf("checkpoint -> %s\n", ckpt_path.c_str());
  }
  // Non-zero exit so CI fault-plan runs actually guard the invariant.
  if (divergence != 0.0f) {
    std::fprintf(stderr, "DDP invariant violated: replicas diverged\n");
    return 1;
  }
  return 0;
}

int cmd_md(const std::map<std::string, std::string>& flags) {
  const index_t steps = flag_i(flags, "steps", 50);
  std::string crystal_name = "LiMnO2";
  if (auto it = flags.find("crystal"); it != flags.end()) {
    crystal_name = it->second;
  }
  data::Crystal c = data::make_reference_structure(crystal_name);
  model::CHGNet net(cli_model_config(flags), 42);
  md::MDConfig cfg;
  cfg.dt_fs = 0.25;
  cfg.init_temperature_k = 300.0;
  if (flag_b(flags, "nvt")) {
    cfg.ensemble = md::Ensemble::kNVTLangevin;
    cfg.target_temperature_k =
        static_cast<double>(flag_i(flags, "temperature", 300));
  }
  // Typed-error entry point: a bad structure or a poisoned model is a
  // diagnostic message and exit code, never a crash or a NaN trajectory.
  auto made = md::MDSimulator::create(net, c, cfg);
  if (!made.ok()) {
    std::fprintf(stderr, "md rejected [%s]: %s\n",
                 serve::to_string(made.code()), made.error().message.c_str());
    return 2;
  }
  md::MDSimulator sim = std::move(made).value();
  md::RdfAccumulator rdf(5.0, 20);
  md::MsdTracker msd(sim.crystal());
  std::printf("%8s %12s %12s %10s %10s\n", "step", "E_tot(eV)", "T(K)",
              "MSD(A^2)", "s/step");
  double per_step = 0.0;
  for (index_t done = 0; done < steps; done += 10) {
    auto r = sim.try_step(std::min<index_t>(10, steps - done));
    if (!r.ok()) {
      std::fprintf(stderr, "md aborted [%s]: %s\n",
                   serve::to_string(r.code()), r.error().message.c_str());
      if (sim.last_fault().has_value()) {
        const md::MDFaultSnapshot& s = *sim.last_fault();
        std::fprintf(stderr,
                     "  snapshot: step %lld, dt %.4f fs, |F|max %.3g eV/A, "
                     "T %.1f K\n",
                     static_cast<long long>(s.step), s.dt_fs, s.fmax,
                     s.temperature);
      }
      return 2;
    }
    per_step = r.value();
    rdf.add_snapshot(sim.crystal());
    msd.update(sim.crystal());
    std::printf("%8lld %12.4f %12.1f %10.4f %10.4f\n",
                static_cast<long long>(sim.steps_taken()),
                sim.total_energy(), sim.temperature(), msd.msd(), per_step);
  }
  std::printf("g(r) peak: ");
  auto g = rdf.g();
  std::size_t best = 0;
  for (std::size_t b = 1; b < g.size(); ++b) {
    if (g[b] > g[best]) best = b;
  }
  std::printf("r = %.2f A (g = %.2f)\n", rdf.r_centers()[best], g[best]);
  return 0;
}

int cmd_relax(const std::map<std::string, std::string>& flags) {
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 5));
  Rng rng(seed);
  data::GeneratorConfig gen;
  gen.min_atoms = 4;
  gen.max_atoms = 10;
  data::Crystal c = data::random_crystal(rng, gen);
  model::CHGNet net(cli_model_config(flags), 42);
  md::RelaxConfig rc;
  rc.max_steps = flag_i(flags, "steps", 60);
  auto r = md::try_relax(net, c, rc);
  if (!r.ok()) {
    std::fprintf(stderr, "relax failed [%s]: %s\n",
                 serve::to_string(r.code()), r.error().message.c_str());
    return 2;
  }
  const md::RelaxResult& res = r.value();
  std::printf("relaxed %lld atoms in %lld steps: E %.4f -> %.4f eV, "
              "|F|max %.3f -> %.3f eV/A (%s)\n",
              static_cast<long long>(c.natoms()),
              static_cast<long long>(res.steps), res.initial_energy,
              res.final_energy, res.initial_fmax, res.final_fmax,
              res.converged    ? "converged"
              : res.oscillating ? "stopped: oscillating"
                                : "not converged");
  return 0;
}

/// `fastchgnet serve --shards N` (N > 1): the fuzzed request stream flows
/// through the sharded front-end instead of a single engine.  The fault
/// plan becomes a *shard* fault schedule (fail:SHARD@TICK trips that shard,
/// slow:SHARD@TICK*F inflates its simulated drain time); tripped shards
/// fail their backlog over to siblings and restart with a cold cache.
int cmd_serve_sharded(const std::map<std::string, std::string>& flags,
                      const model::CHGNet& net, serve::EngineConfig ecfg,
                      const parallel::FaultPlan& plan) {
  const index_t requests = flag_i(flags, "requests", 200);
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 5));

  serve::RouterConfig rc;
  rc.shard.engine = ecfg;
  rc.num_shards = static_cast<int>(flag_i(flags, "shards", 2));
  rc.vnodes = static_cast<int>(flag_i(flags, "vnodes", 64));
  rc.shed_watermark =
      static_cast<std::size_t>(flag_i(flags, "shed-watermark", 48));
  rc.strict_reroute = flag_b(flags, "strict-affinity");
  rc.shard.restart_ticks =
      static_cast<int>(flag_i(flags, "restart-ticks", 2));
  if (!plan.empty()) rc.fault_plan = &plan;
  serve::ShardRouter router(net, rc);
  std::printf("sharded serving: %d shards, %d vnodes/shard, shed "
              "watermark %zu%s\n",
              router.num_shards(), rc.vnodes, rc.shed_watermark,
              rc.strict_reroute ? ", strict affinity" : "");
  if (!plan.empty()) {
    std::printf("shard fault plan: %zu event(s) over the router ticks\n",
                plan.events.size());
  }

  Rng rng(seed);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = 12;
  std::map<std::string, index_t> outcomes;
  // Submit in waves of one full fleet batch, then tick the router: each
  // drain fuses every shard's queue, trips/restarts scheduled shards, and
  // fails tripped backlogs over to siblings.
  const index_t wave =
      std::max<index_t>(1, static_cast<index_t>(router.num_shards()) *
                               ecfg.max_batch);
  index_t in_wave = 0;
  const auto tick = [&] {
    for (const auto& r : router.drain()) {
      ++outcomes[r.ok() ? (r.value().rerouted ? "served (rerouted)"
                                              : "served")
                        : serve::to_string(r.code())];
    }
    in_wave = 0;
  };
  for (index_t i = 0; i < requests; ++i) {
    data::Crystal c;
    (void)serve::fuzz_crystal(rng, c, 0.3, gen);
    auto ticket = router.submit(std::move(c));
    if (!ticket.ok()) {
      ++outcomes[serve::to_string(ticket.code())];
    } else if (++in_wave >= wave) {
      tick();
    }
  }
  tick();
  // Idle ticks let draining/dead shards finish their restart countdown so
  // the health roll-up below reflects the steady state, not mid-recovery.
  for (int i = 0; i < rc.shard.restart_ticks + 2; ++i) tick();

  std::printf("%lld fuzzed requests (30%% corrupted):\n",
              static_cast<long long>(requests));
  for (const auto& [k, n] : outcomes) {
    std::printf("  %-18s %6lld\n", k.c_str(), static_cast<long long>(n));
  }
  const serve::RouterStats& rs = router.stats();
  std::printf("router: routed %llu  rerouted %llu  failovers %llu "
              "(dropped %llu)  shed %llu  trips %llu  restarts %llu\n",
              static_cast<unsigned long long>(rs.routed),
              static_cast<unsigned long long>(rs.rerouted),
              static_cast<unsigned long long>(rs.failovers),
              static_cast<unsigned long long>(rs.failover_dropped),
              static_cast<unsigned long long>(rs.shed),
              static_cast<unsigned long long>(rs.trips),
              static_cast<unsigned long long>(rs.restarts));
  const serve::EngineStats fleet = router.fleet_stats();
  std::printf("fleet: served %llu  invalid %llu  numeric %llu  "
              "micro-batches %llu  isolated faults %llu\n",
              static_cast<unsigned long long>(fleet.served),
              static_cast<unsigned long long>(fleet.rejected_invalid),
              static_cast<unsigned long long>(fleet.numeric_faults),
              static_cast<unsigned long long>(fleet.micro_batches),
              static_cast<unsigned long long>(fleet.isolated_faults));
  if (ecfg.cache_capacity > 0) {
    const serve::CacheStats cs = router.fleet_cache_stats();
    std::printf("fleet cache: lookups %llu = hits %llu + misses %llu  "
                "evictions %llu\n",
                static_cast<unsigned long long>(cs.hits + cs.misses),
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.evictions));
  }
  std::printf("shard health:");
  for (int id : router.shard_ids()) {
    std::printf("  #%d %s (q %zu)", id,
                serve::to_string(router.shard(id).health()),
                router.shard(id).engine().queue_depth());
  }
  std::printf("\n");
  return 0;
}

int cmd_serve(const std::map<std::string, std::string>& flags) {
  const index_t requests = flag_i(flags, "requests", 200);
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 5));
  model::CHGNet net(cli_model_config(flags), 42);

  serve::EngineConfig cfg;
  cfg.quantize = flag_b(flags, "quantize");
  cfg.strict = flag_b(flags, "strict");
  cfg.default_deadline_ms =
      static_cast<double>(flag_i(flags, "deadline-ms", 1000000));
  cfg.max_batch = flag_i(flags, "max-batch", 8);
  cfg.batch_workers = static_cast<int>(flag_i(flags, "batch-workers", 1));
  cfg.cache_capacity =
      static_cast<std::size_t>(flag_i(flags, "cache-capacity", 0));

  parallel::FaultPlan plan;
  if (auto it = flags.find("fault-plan"); it != flags.end()) {
    plan = parallel::parse_fault_plan(it->second);
  }
  if (flag_i(flags, "shards", 1) > 1) {
    return cmd_serve_sharded(flags, net, cfg, plan);
  }

  serve::InferenceEngine eng(net, cfg);
  if (!plan.empty()) {
    eng.set_fault_plan(&plan);
    std::printf("fault plan: %zu transient event(s) over the request "
                "stream\n", plan.events.size());
  }
  if (cfg.quantize) {
    const model::QuantizationReport& q = eng.quantization_report();
    std::printf("serving int8 replica (max |err| %.2e, %lld non-finite "
                "weight(s) clamped), fp32 retained for fallback\n",
                q.max_abs_error, static_cast<long long>(q.nonfinite));
  }

  Rng rng(seed);
  data::GeneratorConfig gen;
  gen.min_atoms = 2;
  gen.max_atoms = 12;
  std::map<std::string, index_t> outcomes;
  const auto record = [&](const serve::Result<serve::Prediction>& r) {
    ++outcomes[r.ok() ? (r.value().cached     ? "served (cached)"
                         : r.value().degraded ? "served (degraded)"
                                              : "served")
                      : serve::to_string(r.code())];
  };
  // Requests flow through the queued micro-batched pipeline: submit until a
  // full tick is queued, then drain (fused forward of up to max-batch
  // structures, structure cache, bisection fault isolation).
  const bool batched = cfg.max_batch > 1 || cfg.cache_capacity > 0;
  for (index_t i = 0; i < requests; ++i) {
    data::Crystal c;
    (void)serve::fuzz_crystal(rng, c, 0.3, gen);
    if (!batched) {
      record(eng.predict(c));
      continue;
    }
    auto ticket = eng.submit(std::move(c));
    if (!ticket.ok()) {
      ++outcomes[serve::to_string(ticket.code())];
      continue;
    }
    if (eng.queue_depth() >= static_cast<std::size_t>(cfg.max_batch)) {
      for (const auto& r : eng.drain()) record(r);
    }
  }
  for (const auto& r : eng.drain()) record(r);
  std::printf("%lld fuzzed requests (30%% corrupted):\n",
              static_cast<long long>(requests));
  for (const auto& [k, n] : outcomes) {
    std::printf("  %-18s %6lld\n", k.c_str(), static_cast<long long>(n));
  }
  const serve::EngineStats& st = eng.stats();
  std::printf("stats: served %llu  invalid %llu  numeric %llu  timeout %llu"
              "  overloaded %llu  retries %llu  degraded %llu\n",
              static_cast<unsigned long long>(st.served),
              static_cast<unsigned long long>(st.rejected_invalid),
              static_cast<unsigned long long>(st.numeric_faults),
              static_cast<unsigned long long>(st.timeouts),
              static_cast<unsigned long long>(st.overloaded),
              static_cast<unsigned long long>(st.retries),
              static_cast<unsigned long long>(st.degraded));
  std::printf("recovery events: retry %llu  fp32_fallback %llu\n",
              static_cast<unsigned long long>(
                  perf::event_count("serve.retry")),
              static_cast<unsigned long long>(
                  perf::event_count("serve.fp32_fallback")));
  std::printf("batching: micro-batches %llu  bisections %llu  isolated "
              "faults %llu\n",
              static_cast<unsigned long long>(st.micro_batches),
              static_cast<unsigned long long>(st.bisections),
              static_cast<unsigned long long>(st.isolated_faults));
  if (cfg.cache_capacity > 0) {
    const serve::CacheStats& cs = eng.cache().stats();
    std::printf("cache: hits %llu (result replays %llu)  misses %llu  "
                "evictions %llu  resident %zu/%zu\n",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.result_hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.evictions),
                eng.cache().size(), eng.cache().capacity());
  }
  return 0;
}

int cmd_charges(const std::map<std::string, std::string>& flags) {
  const auto seed = static_cast<std::uint64_t>(flag_i(flags, "seed", 5));
  Rng rng(seed);
  data::GeneratorConfig gen;
  gen.min_atoms = 6;
  gen.max_atoms = 10;
  data::Crystal c = data::random_crystal(rng, gen);
  data::Oracle oracle;
  oracle.label(c);
  auto res = model::infer_charges(c.species, c.magmom);
  std::printf("%6s %8s %10s %10s\n", "atom", "Z", "magmom", "oxidation");
  for (index_t i = 0; i < c.natoms(); ++i) {
    std::printf("%6lld %8lld %10.3f %+10d\n", static_cast<long long>(i),
                static_cast<long long>(c.species[i]), c.magmom[i],
                res.oxidation[i]);
  }
  std::printf("total charge %+d (%s), assignment penalty %.3f mu_B\n",
              res.total_charge, res.neutral ? "neutral" : "not neutral",
              res.penalty);
  return 0;
}

/// `fastchgnet trace <train|dp|serve|md> [--flags]`: run the target
/// subcommand with the span tracer on, then write a Chrome trace_event JSON
/// (open in chrome://tracing or Perfetto) and print the per-phase summary.
/// `--trace-out PATH` overrides the default `trace_<target>.json`; the
/// target's own flags pass through unchanged.
int cmd_trace(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: fastchgnet trace <train|dp|serve|md> [--flags]\n");
    return 1;
  }
  const std::string target = argv[2];
  auto flags = parse_flags(argc, argv, 3);
  perf::trace_enable(static_cast<std::size_t>(
      flag_i(flags, "trace-capacity",
             static_cast<index_t>(perf::Trace::kDefaultCapacity))));
  int rc;
  if (target == "train") {
    rc = cmd_train(flags);
  } else if (target == "dp") {
    rc = cmd_dp(flags);
  } else if (target == "md") {
    rc = cmd_md(flags);
  } else if (target == "serve") {
    rc = cmd_serve(flags);
  } else {
    std::fprintf(stderr, "trace: unknown target '%s' "
                 "(expected train, dp, serve or md)\n", target.c_str());
    perf::trace_disable();
    return 1;
  }

  const std::vector<perf::TraceEvent> events = perf::trace_events();
  std::string out = "trace_" + target + ".json";
  if (auto it = flags.find("trace-out"); it != flags.end()) out = it->second;
  perf::write_chrome_trace(out, events);
  std::printf("\n%s", perf::summary_table(perf::summarize(events)).c_str());
  std::printf("chrome trace -> %s (%zu spans", out.c_str(), events.size());
  if (perf::Trace::instance().dropped() > 0) {
    std::printf(", %llu dropped -- raise --trace-capacity",
                static_cast<unsigned long long>(
                    perf::Trace::instance().dropped()));
  }
  std::printf(")\n");
  perf::trace_disable();
  return rc;
}

int usage() {
  std::printf(
      "usage: fastchgnet <command> [--flags]\n"
      "  info                          build and model info\n"
      "  generate --n N --seed S       dataset statistics\n"
      "  train --n N --epochs E [--reference] [--save PATH]\n"
      "        [--checkpoint PATH --checkpoint-every K] [--resume PATH]\n"
      "  dp --devices D --epochs E [--fault-plan \"fail:3@2,join:3@6\"]\n"
      "        [--comm flat|hier] (all-reduce cost model, default hier)\n"
      "        [--checkpoint PATH --checkpoint-every K] [--resume PATH]\n"
      "  md --crystal NAME --steps N [--nvt --temperature T]\n"
      "  relax --seed S --steps N\n"
      "  charges --seed S              infer oxidation states from magmoms\n"
      "  serve --requests N [--quantize --strict --deadline-ms D]\n"
      "        [--max-batch B --batch-workers W --cache-capacity C]\n"
      "        [--fault-plan \"fail:0@3\"]   fuzzed robust-inference demo\n"
      "        [--shards S --vnodes V --shed-watermark Q --restart-ticks R\n"
      "         --strict-affinity]  S > 1 serves through the shard router;\n"
      "        the fault plan then trips shards (fail:SHARD@TICK)\n"
      "  trace <train|dp|serve|md> [--trace-out PATH] [target flags]\n"
      "        run the target with span tracing on; writes a Chrome trace\n");
  return 1;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  auto flags = parse_flags(argc, argv, 2);
  try {
    if (cmd == "info") return cmd_info();
    if (cmd == "generate") return cmd_generate(flags);
    if (cmd == "train") return cmd_train(flags);
    if (cmd == "dp") return cmd_dp(flags);
    if (cmd == "md") return cmd_md(flags);
    if (cmd == "relax") return cmd_relax(flags);
    if (cmd == "charges") return cmd_charges(flags);
    if (cmd == "serve") return cmd_serve(flags);
    if (cmd == "trace") return cmd_trace(argc, argv);
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    // Last-ditch guard (bad flag values, std::stoll, allocation): report
    // and exit instead of aborting with an uncaught exception.
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}

}  // namespace
}  // namespace fastchg::cli

int main(int argc, char** argv) { return fastchg::cli::run(argc, argv); }
