// Arena/pool integration tests across the training, data-parallel and
// serving hot paths (docs/memory.md):
//
//   * leak sentinels: tracked *logical* live bytes return exactly to the
//     pre-step baseline after backward() + releasing the loss Var, and
//     after each serve engine tick -- pooling recycles physical blocks, so
//     without this check a retained-graph leak would hide inside warm
//     slabs;
//   * cross-device pool isolation in DataParallelTrainer (every replica
//     tensor attributed to its own device pool);
//   * pool-on == pool-off bit-exactness (max |diff| = 0.0) for a train
//     step, a dp step, and a fused serve forward: the allocator changes
//     where bytes live, never their values.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "autograd/variable.hpp"
#include "core/alloc.hpp"
#include "data/batch.hpp"
#include "data/dataset.hpp"
#include "parallel/data_parallel.hpp"
#include "perf/counters.hpp"
#include "serve/engine.hpp"
#include "train/loss.hpp"
#include "train/trainer.hpp"

namespace fastchg {
namespace {

class MemoryArenaTest : public ::testing::Test {
 protected:
  void SetUp() override { prev_ = alloc::pooling_enabled(); }
  void TearDown() override { alloc::set_pooling_enabled(prev_); }

 private:
  bool prev_ = true;
};

model::ModelConfig tiny_config() {
  model::ModelConfig cfg;
  cfg.feat_dim = 12;
  cfg.num_radial = 7;
  cfg.num_angular = 7;
  cfg.num_layers = 2;
  return cfg;
}

data::Dataset small_dataset(index_t n = 16, std::uint64_t seed = 77) {
  data::GeneratorConfig g;
  g.min_atoms = 3;
  g.max_atoms = 8;
  return data::Dataset::generate(n, seed, g);
}

std::vector<index_t> all_rows(const data::Dataset& ds) {
  std::vector<index_t> idx(static_cast<std::size_t>(ds.size()));
  for (index_t i = 0; i < ds.size(); ++i) {
    idx[static_cast<std::size_t>(i)] = i;
  }
  return idx;
}

// One manual train step: forward, loss, backward.  Everything allocated by
// the step dies when the scope closes, except leaf gradients -- which the
// caller warms up once so steady-state steps accumulate in place.
void run_manual_step(model::CHGNet& net, const data::Batch& b) {
  model::ModelOutput out = net.forward(b, model::ForwardMode::kTrain);
  train::LossResult loss =
      train::chgnet_loss(out, b, train::LossWeights{}, 0.1f);
  ag::backward(loss.total);
}

TEST_F(MemoryArenaTest, TrainStepLiveBytesReturnToBaseline) {
  alloc::set_pooling_enabled(true);
  data::Dataset ds = small_dataset();
  model::CHGNet net(tiny_config(), 5);
  data::Batch b = data::collate_indices(ds, all_rows(ds));

  // Warm-up step materializes lazy state (leaf .grad tensors) once.
  run_manual_step(net, b);

  const std::uint64_t baseline = perf::counters().snapshot().bytes_live;
  for (int step = 0; step < 3; ++step) {
    alloc::ArenaScope arena;
    run_manual_step(net, b);
    // Graph + activations + loss released here, at the step boundary.
  }
  EXPECT_EQ(perf::counters().snapshot().bytes_live, baseline)
      << "train step retained tensor storage past the step boundary";
}

TEST_F(MemoryArenaTest, ServeTickLiveBytesReturnToBaseline) {
  alloc::set_pooling_enabled(true);
  model::CHGNet net(tiny_config(), 6);
  serve::EngineConfig cfg;
  cfg.cache_capacity = 0;  // a cache legitimately retains tensors
  cfg.replay = false;      // ditto: captured programs retain their slab
  serve::InferenceEngine engine(net, cfg);
  data::Dataset ds = small_dataset(6, 99);

  // Warm tick.
  for (index_t i = 0; i < ds.size(); ++i) {
    ASSERT_TRUE(engine.submit(ds[i].crystal).ok());
  }
  (void)engine.drain();

  const std::uint64_t baseline = perf::counters().snapshot().bytes_live;
  for (int tick = 0; tick < 3; ++tick) {
    for (index_t i = 0; i < ds.size(); ++i) {
      ASSERT_TRUE(engine.submit(ds[i].crystal).ok());
    }
    std::vector<serve::Result<serve::Prediction>> replies = engine.drain();
    for (const auto& r : replies) ASSERT_TRUE(r.ok());
    replies.clear();
    EXPECT_EQ(perf::counters().snapshot().bytes_live, baseline)
        << "serve tick " << tick << " retained tensor storage";
  }
}

TEST_F(MemoryArenaTest, DataParallelDevicePoolsAreIsolated) {
  alloc::set_pooling_enabled(true);
  parallel::DataParallelConfig cfg;
  cfg.num_devices = 3;
  cfg.global_batch = 6;
  parallel::DataParallelTrainer dp(tiny_config(), cfg, 11);

  for (int d = 0; d < cfg.num_devices; ++d) {
    const alloc::Allocator* pool = dp.device_pool(d).get();
    for (const ag::Var& p : dp.replica(d).parameters()) {
      EXPECT_EQ(p.value().source_allocator(), pool)
          << "device " << d << " parameter not in its own pool";
    }
    for (int other = 0; other < cfg.num_devices; ++other) {
      if (other == d) continue;
      EXPECT_NE(pool, dp.device_pool(other).get());
    }
  }

  // After a training epoch the invariant still holds: per-device arenas
  // never let a replica's tensors migrate into a sibling's pool.
  data::Dataset ds = small_dataset(12, 13);
  dp.train_epoch(ds, all_rows(ds), 0);
  for (int d = 0; d < cfg.num_devices; ++d) {
    const alloc::Allocator* pool = dp.device_pool(d).get();
    for (const ag::Var& p : dp.replica(d).parameters()) {
      EXPECT_EQ(p.value().source_allocator(), pool);
    }
  }
}

std::vector<float> flatten_parameters(const model::CHGNet& net) {
  std::vector<float> flat;
  for (const ag::Var& p : net.parameters()) {
    const std::vector<float> v = p.value().to_vector();
    flat.insert(flat.end(), v.begin(), v.end());
  }
  return flat;
}

float max_abs_diff(const std::vector<float>& a, const std::vector<float>& b) {
  EXPECT_EQ(a.size(), b.size());
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    worst = std::max(worst, std::fabs(a[i] - b[i]));
  }
  return worst;
}

std::vector<float> train_with_pooling(bool pooled) {
  alloc::set_pooling_enabled(pooled);
  data::Dataset ds = small_dataset(16, 21);
  model::CHGNet net(tiny_config(), 9);
  train::TrainConfig tc;
  tc.batch_size = 8;
  tc.epochs = 2;
  train::Trainer trainer(net, tc);
  data::Dataset const& dsr = ds;
  std::vector<index_t> idx = all_rows(dsr);
  trainer.fit(ds, idx);
  return flatten_parameters(net);
}

TEST_F(MemoryArenaTest, TrainStepBitExactPoolOnVsOff) {
  const std::vector<float> pooled = train_with_pooling(true);
  const std::vector<float> system = train_with_pooling(false);
  EXPECT_EQ(max_abs_diff(pooled, system), 0.0f);
}

std::vector<float> dp_train_with_pooling(bool pooled) {
  alloc::set_pooling_enabled(pooled);
  data::Dataset ds = small_dataset(16, 31);
  parallel::DataParallelConfig cfg;
  cfg.num_devices = 2;
  cfg.global_batch = 8;
  parallel::DataParallelTrainer dp(tiny_config(), cfg, 17);
  dp.train_epoch(ds, all_rows(ds), 0);
  return flatten_parameters(dp.master());
}

TEST_F(MemoryArenaTest, DataParallelStepBitExactPoolOnVsOff) {
  const std::vector<float> pooled = dp_train_with_pooling(true);
  const std::vector<float> system = dp_train_with_pooling(false);
  EXPECT_EQ(max_abs_diff(pooled, system), 0.0f);
}

std::vector<serve::Prediction> serve_with_pooling(bool pooled) {
  alloc::set_pooling_enabled(pooled);
  model::CHGNet net(tiny_config(), 23);
  serve::EngineConfig cfg;
  cfg.max_batch = 4;  // forces fused multi-structure forwards
  serve::InferenceEngine engine(net, cfg);
  data::Dataset ds = small_dataset(10, 41);
  for (index_t i = 0; i < ds.size(); ++i) {
    EXPECT_TRUE(engine.submit(ds[i].crystal).ok());
  }
  std::vector<serve::Prediction> preds;
  for (auto& r : engine.drain()) {
    EXPECT_TRUE(r.ok());
    if (r.ok()) preds.push_back(r.value());
  }
  return preds;
}

TEST_F(MemoryArenaTest, FusedServeForwardBitExactPoolOnVsOff) {
  const std::vector<serve::Prediction> pooled = serve_with_pooling(true);
  const std::vector<serve::Prediction> system = serve_with_pooling(false);
  ASSERT_EQ(pooled.size(), system.size());
  for (std::size_t i = 0; i < pooled.size(); ++i) {
    EXPECT_EQ(pooled[i].energy, system[i].energy);
    ASSERT_EQ(pooled[i].forces.size(), system[i].forces.size());
    for (std::size_t a = 0; a < pooled[i].forces.size(); ++a) {
      for (int d = 0; d < 3; ++d) {
        EXPECT_EQ(pooled[i].forces[a][d], system[i].forces[a][d]);
      }
    }
    for (int r = 0; r < 3; ++r) {
      for (int c = 0; c < 3; ++c) {
        EXPECT_EQ(pooled[i].stress[r][c], system[i].stress[r][c]);
      }
    }
    ASSERT_EQ(pooled[i].magmom.size(), system[i].magmom.size());
    for (std::size_t a = 0; a < pooled[i].magmom.size(); ++a) {
      EXPECT_EQ(pooled[i].magmom[a], system[i].magmom[a]);
    }
  }
}

}  // namespace
}  // namespace fastchg
