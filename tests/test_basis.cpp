// Tests for the basis functions: envelope (Eq. 12 vs Eq. 13 equivalence),
// smooth radial Bessel (reference vs fused, gradients, double backward),
// Fourier angular basis (reference vs fused, gradients).
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "basis/envelope.hpp"
#include "basis/fourier.hpp"
#include "basis/rbf.hpp"
#include "perf/counters.hpp"

namespace fastchg::basis {
namespace {

using namespace ag::ops;
using ag::GradCheckOptions;
using ag::gradcheck;
using ag::gradcheck_double;
using ag::Var;

void expect_close(const Tensor& a, const Tensor& b, float tol = 1e-5f) {
  ASSERT_TRUE(same_shape(a.shape(), b.shape()));
  for (index_t i = 0; i < a.numel(); ++i) {
    ASSERT_NEAR(a.data()[i], b.data()[i], tol) << "elem " << i;
  }
}

// ---------------------------------------------------------------------------
// envelope
// ---------------------------------------------------------------------------

class EnvelopeP : public ::testing::TestWithParam<int> {};

TEST_P(EnvelopeP, NaiveEqualsFactored) {
  const int p = GetParam();
  std::vector<float> xs;
  for (int i = 1; i <= 40; ++i) xs.push_back(0.025f * static_cast<float>(i));
  Var x(Tensor::from_vector(xs, {static_cast<index_t>(xs.size()), 1}), false);
  expect_close(envelope_naive(x, p).value(),
               envelope_factored(x, p).value(), 2e-5f);
}

TEST_P(EnvelopeP, VanishesSmoothlyAtCutoff) {
  const int p = GetParam();
  EXPECT_NEAR(envelope_value(1.0, p), 0.0, 1e-12);
  EXPECT_NEAR(envelope_deriv(1.0, p), 0.0, 1e-9);
  EXPECT_NEAR(envelope_value(0.0, p), 1.0, 1e-12);
}

TEST_P(EnvelopeP, DerivOpsMatchesFiniteDifference) {
  const int p = GetParam();
  for (double xi : {0.2, 0.5, 0.8, 0.95}) {
    const double h = 1e-6;
    const double fd =
        (envelope_value(xi + h, p) - envelope_value(xi - h, p)) / (2 * h);
    EXPECT_NEAR(envelope_deriv(xi, p), fd, 1e-5) << "xi=" << xi;
    Var x(Tensor::scalar(static_cast<float>(xi)), false);
    EXPECT_NEAR(envelope_deriv_ops(x, p).item(), fd, 1e-2) << "xi=" << xi;
  }
}

INSTANTIATE_TEST_SUITE_P(SmoothingP, EnvelopeP, ::testing::Values(4, 6, 8));

TEST(Envelope, FactoredUsesFewerPowKernels) {
  Var x(Tensor::full({64, 1}, 0.5f), false);
  perf::reset_kernels();
  perf::set_per_op(true);
  (void)envelope_naive(x, 8);
  const auto naive_pows = perf::counters().per_op["pow_scalar"];
  perf::reset_kernels();
  (void)envelope_factored(x, 8);
  const auto fact_pows = perf::counters().per_op["pow_scalar"];
  EXPECT_EQ(naive_pows, 3u);
  EXPECT_EQ(fact_pows, 1u);
  perf::set_per_op(false);
  perf::reset_kernels();
}

// ---------------------------------------------------------------------------
// radial basis
// ---------------------------------------------------------------------------

Var random_r(index_t n, Rng& rng, float lo = 1.5f, float hi = 5.5f,
             bool rg = false) {
  Tensor t = Tensor::empty({n, 1});
  rng.fill_uniform(t, lo, hi);
  return Var(std::move(t), rg);
}

TEST(RadialBasis, FusedMatchesReference) {
  Rng rng(1);
  RadialBasis ref(31, 6.0, 8, /*fused=*/false, /*factored=*/false);
  RadialBasis fast(31, 6.0, 8, /*fused=*/true, /*factored=*/true);
  Var r = random_r(40, rng);
  expect_close(ref.forward(r).value(), fast.forward(r).value(), 2e-5f);
}

TEST(RadialBasis, FusedIsOneKernel) {
  Rng rng(2);
  RadialBasis ref(31, 6.0, 8, false, false);
  RadialBasis fast(31, 6.0, 8, true, true);
  Var r = random_r(40, rng);
  perf::reset_kernels();
  (void)fast.forward(r);
  EXPECT_EQ(perf::counters().kernel_launches, 1u);
  perf::reset_kernels();
  (void)ref.forward(r);
  EXPECT_GT(perf::counters().kernel_launches, 10u);
  perf::reset_kernels();
}

TEST(RadialBasis, ValuesMatchClosedForm) {
  RadialBasis rb(4, 6.0, 8, false, false);
  const float r = 2.5f;
  Var rv(Tensor::from_vector({r}, {1, 1}), false);
  Tensor out = rb.forward(rv).value();
  const float c = std::sqrt(2.0f / 6.0f);
  const double u = envelope_value(r / 6.0, 8);
  for (index_t n = 0; n < 4; ++n) {
    const float freq = static_cast<float>(M_PI) * static_cast<float>(n + 1);
    const float expect =
        c * std::sin(freq * r / 6.0f) / r * static_cast<float>(u);
    EXPECT_NEAR(out.data()[n], expect, 1e-5f);
  }
}

TEST(RadialBasis, ReferenceGradCheck) {
  Rng rng(3);
  RadialBasis rb(7, 6.0, 8, false, false);
  Var r = random_r(10, rng, 2.0f, 5.0f, true);
  GradCheckOptions opt;
  auto res = gradcheck(
      [&] { return sum_all(square(rb.forward(r))); },
      {r, rb.frequencies()}, opt);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(RadialBasis, FusedGradCheck) {
  Rng rng(4);
  RadialBasis rb(7, 6.0, 8, true, true);
  Var r = random_r(10, rng, 2.0f, 5.0f, true);
  GradCheckOptions opt;
  auto res = gradcheck(
      [&] { return sum_all(square(rb.forward(r))); },
      {r, rb.frequencies()}, opt);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(RadialBasis, FusedAndReferenceGradsAgree) {
  Rng rng(5);
  RadialBasis ref(9, 6.0, 8, false, false);
  RadialBasis fast(9, 6.0, 8, true, true);
  Var r1 = random_r(20, rng, 2.0f, 5.0f, true);
  Var r2 = Var(r1.value().clone(), true);
  ag::backward(sum_all(square(ref.forward(r1))));
  ag::backward(sum_all(square(fast.forward(r2))));
  expect_close(r1.grad(), r2.grad(), 5e-4f);
}

TEST(RadialBasis, FusedDoubleBackward) {
  // The force-training path differentiates d(basis)/dr a second time.
  Rng rng(6);
  RadialBasis rb(5, 6.0, 8, true, true);
  Var r = random_r(6, rng, 2.0f, 5.0f, true);
  GradCheckOptions opt;
  opt.rtol = 8e-2f;
  auto res = gradcheck_double(
      [&] { return sum_all(square(rb.forward(r))); }, {r}, opt);
  EXPECT_TRUE(res.ok) << res.detail;
}

// ---------------------------------------------------------------------------
// angular basis
// ---------------------------------------------------------------------------

Var random_theta(index_t n, Rng& rng, bool rg = false) {
  Tensor t = Tensor::empty({n, 1});
  rng.fill_uniform(t, 0.2f, 2.9f);
  return Var(std::move(t), rg);
}

TEST(AngularBasis, FusedMatchesReference) {
  Rng rng(7);
  AngularBasis ref(31, false), fast(31, true);
  Var th = random_theta(25, rng);
  expect_close(ref.forward(th).value(), fast.forward(th).value(), 1e-5f);
}

TEST(AngularBasis, RejectsEvenBasisCount) {
  EXPECT_THROW(AngularBasis(30, false), Error);
}

TEST(AngularBasis, FusedKernelCount) {
  Rng rng(8);
  AngularBasis ref(31, false), fast(31, true);
  Var th = random_theta(25, rng);
  perf::reset_kernels();
  (void)fast.forward(th);
  EXPECT_EQ(perf::counters().kernel_launches, 1u);
  perf::reset_kernels();
  (void)ref.forward(th);
  EXPECT_GT(perf::counters().kernel_launches, 30u);
  perf::reset_kernels();
}

TEST(AngularBasis, FirstComponentsClosedForm) {
  AngularBasis ab(5, true);
  const float t = 1.3f;
  Var th(Tensor::from_vector({t}, {1, 1}), false);
  Tensor out = ab.forward(th).value();
  const float isp = 1.0f / std::sqrt(static_cast<float>(M_PI));
  EXPECT_NEAR(out.data()[0], 1.0f / std::sqrt(2.0f * M_PI), 1e-6f);
  EXPECT_NEAR(out.data()[1], std::cos(t) * isp, 1e-6f);
  EXPECT_NEAR(out.data()[2], std::cos(2 * t) * isp, 1e-6f);
  EXPECT_NEAR(out.data()[3], std::sin(t) * isp, 1e-6f);
  EXPECT_NEAR(out.data()[4], std::sin(2 * t) * isp, 1e-6f);
}

TEST(AngularBasis, FusedGradCheck) {
  Rng rng(9);
  AngularBasis ab(9, true);
  Var th = random_theta(8, rng, true);
  GradCheckOptions opt;
  auto res = gradcheck(
      [&] { return sum_all(square(ab.forward(th))); }, {th}, opt);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AngularBasis, ReferenceGradCheck) {
  Rng rng(10);
  AngularBasis ab(9, false);
  Var th = random_theta(8, rng, true);
  GradCheckOptions opt;
  auto res = gradcheck(
      [&] { return sum_all(square(ab.forward(th))); }, {th}, opt);
  EXPECT_TRUE(res.ok) << res.detail;
}

TEST(AngularBasis, FusedDoubleBackward) {
  Rng rng(11);
  AngularBasis ab(7, true);
  Var th = random_theta(5, rng, true);
  GradCheckOptions opt;
  opt.rtol = 8e-2f;
  auto res = gradcheck_double(
      [&] { return sum_all(square(ab.forward(th))); }, {th}, opt);
  EXPECT_TRUE(res.ok) << res.detail;
}

}  // namespace
}  // namespace fastchg::basis
