// Unit tests for autograd primitives: forward values, first-order gradients
// (numeric gradcheck), and second-order gradients (double backward), which
// the reference CHGNet training path depends on.
#include <gtest/gtest.h>

#include <cmath>

#include "autograd/gradcheck.hpp"
#include "autograd/ops.hpp"
#include "core/rng.hpp"

namespace fastchg::ag {
namespace {

using namespace ops;

Var leaf(const std::vector<float>& v, Shape shape) {
  return Var(Tensor::from_vector(v, std::move(shape)), true);
}

Var random_leaf(Shape shape, Rng& rng, float lo = -1.0f, float hi = 1.0f) {
  Tensor t = Tensor::empty(std::move(shape));
  rng.fill_uniform(t, lo, hi);
  return Var(std::move(t), true);
}

// ---------------------------------------------------------------------------
// forward values
// ---------------------------------------------------------------------------

TEST(OpsForward, AddSameShape) {
  Var a = leaf({1, 2}, {2}), b = leaf({10, 20}, {2});
  EXPECT_EQ(add(a, b).value().to_vector(), (std::vector<float>{11, 22}));
}

TEST(OpsForward, BroadcastRowAndCol) {
  Var m = leaf({1, 2, 3, 4, 5, 6}, {2, 3});
  Var row = leaf({10, 20, 30}, {3});
  Var col = leaf({100, 200}, {2, 1});
  EXPECT_EQ(add(m, row).value().to_vector(),
            (std::vector<float>{11, 22, 33, 14, 25, 36}));
  EXPECT_EQ(add(m, col).value().to_vector(),
            (std::vector<float>{101, 102, 103, 204, 205, 206}));
}

TEST(OpsForward, BroadcastScalar) {
  Var m = leaf({1, 2}, {2});
  Var s = leaf({5}, {1});
  EXPECT_EQ(mul(m, s).value().to_vector(), (std::vector<float>{5, 10}));
}

TEST(OpsForward, UnsupportedBroadcastThrows) {
  Var a = leaf({1, 2, 3}, {3});
  Var b = leaf({1, 2}, {2});
  EXPECT_THROW(add(a, b), Error);
}

TEST(OpsForward, MatmulKnownValues) {
  Var a = leaf({1, 2, 3, 4}, {2, 2});
  Var b = leaf({5, 6, 7, 8}, {2, 2});
  EXPECT_EQ(matmul(a, b).value().to_vector(),
            (std::vector<float>{19, 22, 43, 50}));
}

TEST(OpsForward, TransposeRoundTrip) {
  Var a = leaf({1, 2, 3, 4, 5, 6}, {2, 3});
  Var t = transpose2d(a);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_EQ(transpose2d(t).value().to_vector(), a.value().to_vector());
}

TEST(OpsForward, Reductions) {
  Var a = leaf({1, 2, 3, 4, 5, 6}, {2, 3});
  EXPECT_FLOAT_EQ(sum_all(a).item(), 21.0f);
  EXPECT_EQ(sum_dim(a, 0).value().to_vector(), (std::vector<float>{5, 7, 9}));
  EXPECT_EQ(sum_dim(a, 1).value().to_vector(), (std::vector<float>{6, 15}));
  EXPECT_EQ(mean_dim(a, 1).value().to_vector(), (std::vector<float>{2, 5}));
}

TEST(OpsForward, IndexSelectAndAdd) {
  Var x = leaf({1, 2, 3, 4, 5, 6}, {3, 2});
  Var sel = index_select0(x, {2, 0, 2});
  EXPECT_EQ(sel.value().to_vector(), (std::vector<float>{5, 6, 1, 2, 5, 6}));
  Var acc = index_add0(2, {0, 1, 1}, sel);
  EXPECT_EQ(acc.value().to_vector(), (std::vector<float>{5, 6, 6, 8}));
}

TEST(OpsForward, IndexOutOfRangeThrows) {
  Var x = leaf({1, 2}, {2, 1});
  EXPECT_THROW(index_select0(x, {2}), Error);
  EXPECT_THROW(index_add0(1, {1}, x), Error);
}

TEST(OpsForward, CatNarrowPad) {
  Var a = leaf({1, 2}, {1, 2});
  Var b = leaf({3, 4, 5, 6}, {2, 2});
  Var c0 = cat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (Shape{3, 2}));
  EXPECT_EQ(narrow(c0, 0, 1, 2).value().to_vector(), b.value().to_vector());
  Var c1 = cat({b, b}, 1);
  EXPECT_EQ(c1.shape(), (Shape{2, 4}));
  EXPECT_EQ(narrow(c1, 1, 2, 2).value().to_vector(), b.value().to_vector());
  Var p = pad_slice(a, 0, 1, 3);
  EXPECT_EQ(p.value().to_vector(), (std::vector<float>{0, 0, 1, 2, 0, 0}));
}

TEST(OpsForward, ActivationValues) {
  Var x = leaf({0.0f}, {1});
  EXPECT_FLOAT_EQ(sigmoid(x).item(), 0.5f);
  EXPECT_FLOAT_EQ(silu(x).item(), 0.0f);
  EXPECT_FLOAT_EQ(tanh_op(x).item(), 0.0f);
  Var y = leaf({2.0f}, {1});
  EXPECT_NEAR(silu(y).item(), 2.0f / (1.0f + std::exp(-2.0f)), 1e-6f);
}

TEST(OpsForward, ClampValuesAndMask) {
  Var x = leaf({-2, 0.5f, 2}, {3});
  EXPECT_EQ(clamp(x, -1, 1).value().to_vector(),
            (std::vector<float>{-1, 0.5f, 1}));
}

// ---------------------------------------------------------------------------
// gradients (numeric verification)
// ---------------------------------------------------------------------------

class GradCheckCase : public ::testing::Test {
 protected:
  Rng rng{20240601};
  GradCheckOptions opt;
  void expect_ok(const GradCheckResult& r) {
    EXPECT_TRUE(r.ok) << r.detail << " (abs " << r.max_abs_err << ", rel "
                      << r.max_rel_err << ")";
  }
};

TEST_F(GradCheckCase, BinaryOpsSameShape) {
  Var a = random_leaf({3, 4}, rng, 0.5f, 1.5f);
  Var b = random_leaf({3, 4}, rng, 0.5f, 1.5f);
  expect_ok(gradcheck([&] { return sum_all(mul(add(a, b), sub(a, b))); },
                      {a, b}, opt));
  expect_ok(gradcheck([&] { return sum_all(div(a, b)); }, {a, b}, opt));
}

TEST_F(GradCheckCase, BroadcastGrads) {
  Var m = random_leaf({4, 3}, rng);
  Var row = random_leaf({3}, rng);
  Var col = random_leaf({4, 1}, rng);
  Var s = random_leaf({1}, rng, 0.5f, 1.0f);
  expect_ok(gradcheck(
      [&] { return sum_all(mul(add(m, row), mul(col, s))); },
      {m, row, col, s}, opt));
}

TEST_F(GradCheckCase, MatmulGrad) {
  Var a = random_leaf({3, 5}, rng);
  Var b = random_leaf({5, 2}, rng);
  expect_ok(gradcheck([&] { return sum_all(square(matmul(a, b))); }, {a, b},
                      opt));
}

TEST_F(GradCheckCase, UnaryChain) {
  Var x = random_leaf({8}, rng, 0.2f, 0.9f);
  expect_ok(gradcheck(
      [&] {
        return sum_all(mul(sin_op(x), exp_op(neg(square(x)))));
      },
      {x}, opt));
  expect_ok(gradcheck([&] { return sum_all(log_op(add_scalar(square(x), 1))); },
                      {x}, opt));
  expect_ok(gradcheck([&] { return sum_all(sqrt_op(add_scalar(x, 1))); }, {x},
                      opt));
}

TEST_F(GradCheckCase, ActivationGrads) {
  Var x = random_leaf({12}, rng, -2.0f, 2.0f);
  expect_ok(gradcheck([&] { return sum_all(sigmoid(x)); }, {x}, opt));
  expect_ok(gradcheck([&] { return sum_all(silu(x)); }, {x}, opt));
  expect_ok(gradcheck([&] { return sum_all(tanh_op(x)); }, {x}, opt));
}

TEST_F(GradCheckCase, AcosGrad) {
  Var x = random_leaf({6}, rng, -0.7f, 0.7f);
  expect_ok(gradcheck([&] { return sum_all(acos_op(x)); }, {x}, opt));
}

TEST_F(GradCheckCase, PowAndReciprocal) {
  Var x = random_leaf({6}, rng, 0.5f, 1.5f);
  expect_ok(gradcheck([&] { return sum_all(pow_scalar(x, 3.0f)); }, {x}, opt));
  expect_ok(gradcheck([&] { return sum_all(reciprocal(x)); }, {x}, opt));
}

TEST_F(GradCheckCase, ReductionGrads) {
  Var x = random_leaf({4, 3}, rng);
  expect_ok(gradcheck([&] { return sum_all(square(sum_dim(x, 0))); }, {x},
                      opt));
  expect_ok(gradcheck([&] { return sum_all(square(sum_dim(x, 1))); }, {x},
                      opt));
  expect_ok(gradcheck([&] { return mean_all(square(x)); }, {x}, opt));
}

TEST_F(GradCheckCase, IndexGrads) {
  Var x = random_leaf({5, 2}, rng);
  std::vector<index_t> idx{4, 0, 0, 3, 2, 2};
  expect_ok(gradcheck(
      [&] { return sum_all(square(index_select0(x, idx))); }, {x}, opt));
  expect_ok(gradcheck(
      [&] {
        Var msgs = index_select0(x, idx);
        Var agg = index_add0(3, {0, 1, 2, 0, 1, 2}, msgs);
        return sum_all(square(agg));
      },
      {x}, opt));
}

TEST_F(GradCheckCase, CatNarrowGrads) {
  Var a = random_leaf({2, 3}, rng);
  Var b = random_leaf({2, 3}, rng);
  expect_ok(gradcheck(
      [&] { return sum_all(square(cat({a, b}, 0))); }, {a, b}, opt));
  expect_ok(gradcheck(
      [&] { return sum_all(square(narrow(cat({a, b}, 1), 1, 2, 3))); },
      {a, b}, opt));
}

TEST_F(GradCheckCase, ReshapeGrad) {
  Var x = random_leaf({2, 6}, rng);
  expect_ok(gradcheck(
      [&] { return sum_all(square(reshape(x, {3, 4}))); }, {x}, opt));
}

// ---------------------------------------------------------------------------
// second-order (double backward) -- the force-training code path
// ---------------------------------------------------------------------------

TEST_F(GradCheckCase, DoubleBackwardPolynomial) {
  Var x = random_leaf({4}, rng, 0.3f, 1.0f);
  expect_ok(gradcheck_double(
      [&] { return sum_all(mul(pow_scalar(x, 3.0f), sin_op(x))); }, {x},
      opt));
}

TEST_F(GradCheckCase, DoubleBackwardMatmulChain) {
  Var w = random_leaf({3, 3}, rng);
  Var x = random_leaf({2, 3}, rng);
  expect_ok(gradcheck_double(
      [&] { return sum_all(silu(matmul(x, w))); }, {w, x}, opt));
}

TEST_F(GradCheckCase, DoubleBackwardThroughGather) {
  Var x = random_leaf({4, 2}, rng);
  std::vector<index_t> idx{0, 1, 3, 3};
  expect_ok(gradcheck_double(
      [&] {
        Var m = index_select0(x, idx);
        return sum_all(square(index_add0(2, {0, 1, 0, 1}, m)));
      },
      {x}, opt));
}

TEST_F(GradCheckCase, ForceLikeSecondOrderLoss) {
  // Mimics the reference-CHGNet structure: E = f(pos, w); F = -dE/dpos;
  // loss = sum(F^2) must be differentiable w.r.t. w.
  Var pos = random_leaf({5, 3}, rng, -1.0f, 1.0f);
  Var w = random_leaf({3, 3}, rng);
  auto energy = [&]() -> Var {
    Var h = tanh_op(matmul(pos, w));
    return sum_all(square(h));
  };
  auto loss = [&]() -> Var {
    Var e = energy();
    std::vector<Var> g = grad(e, {pos}, Var(), /*create_graph=*/true);
    Var force = neg(g[0]);
    return sum_all(square(force));
  };
  expect_ok(gradcheck(loss, {w}, opt));
}

// ---------------------------------------------------------------------------
// engine behaviour
// ---------------------------------------------------------------------------

TEST(Engine, BackwardAccumulatesIntoLeaves) {
  Var x(Tensor::from_vector({2, 3}, {2}), true);
  Var y = sum_all(square(x));
  backward(y);
  EXPECT_FLOAT_EQ(x.grad().to_vector()[0], 4.0f);
  EXPECT_FLOAT_EQ(x.grad().to_vector()[1], 6.0f);
  backward(sum_all(square(x)));  // accumulates
  EXPECT_FLOAT_EQ(x.grad().to_vector()[0], 8.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad().to_vector()[0], 0.0f);
}

TEST(Engine, DiamondGraphAccumulation) {
  Var x(Tensor::scalar(3.0f), true);
  Var a = mul_scalar(x, 2.0f);
  Var y = add(mul(a, x), a);  // y = 2x^2 + 2x; dy/dx = 4x + 2 = 14
  backward(y);
  EXPECT_FLOAT_EQ(x.grad().item(), 14.0f);
}

TEST(Engine, GradDoesNotTouchLeafGrad) {
  Var x(Tensor::scalar(2.0f), true);
  Var y = square(x);
  std::vector<Var> g = grad(y, {x});
  EXPECT_FLOAT_EQ(g[0].item(), 4.0f);
  EXPECT_FALSE(x.has_grad());
}

TEST(Engine, UnreachableInputGivesUndefinedGrad) {
  Var x(Tensor::scalar(2.0f), true);
  Var z(Tensor::scalar(5.0f), true);
  std::vector<Var> g = grad(square(x), {x, z});
  EXPECT_TRUE(g[0].defined());
  EXPECT_FALSE(g[1].defined());
}

TEST(Engine, NoGradGuardProducesConstants) {
  Var x(Tensor::scalar(2.0f), true);
  {
    NoGradGuard ng;
    Var y = square(x);
    EXPECT_FALSE(y.requires_grad());
  }
  EXPECT_TRUE(square(x).requires_grad());
}

TEST(Engine, DetachCutsGraph) {
  Var x(Tensor::scalar(2.0f), true);
  Var y = square(x).detach();
  EXPECT_FALSE(y.requires_grad());
  EXPECT_FLOAT_EQ(y.item(), 4.0f);
}

TEST(Engine, BackwardOnNonScalarWithSeed) {
  Var x(Tensor::from_vector({1, 2, 3}, {3}), true);
  Var y = square(x);
  backward(y, Tensor::from_vector({1, 0, 2}, {3}));
  EXPECT_EQ(x.grad().to_vector(), (std::vector<float>{2, 0, 12}));
}

TEST(Engine, SecondOrderKnownValue) {
  // y = x^3, dy/dx = 3x^2, d2y/dx2 = 6x; at x=2: 24... checked via grad of
  // grad contracted with ones.
  Var x(Tensor::scalar(2.0f), true);
  Var y = pow_scalar(x, 3.0f);
  std::vector<Var> g1 = grad(y, {x}, Var(), /*create_graph=*/true);
  EXPECT_FLOAT_EQ(g1[0].item(), 12.0f);
  std::vector<Var> g2 = grad(g1[0], {x});
  EXPECT_FLOAT_EQ(g2[0].item(), 12.0f);  // d(3x^2)/dx = 6x = 12
}

}  // namespace
}  // namespace fastchg::ag
